package main

import (
	"encoding/json"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/tools/dmlint/internal/analysis"
)

func TestReadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.txt")
	content := "# recorded debt\n\nnopanic repro/internal/foo 2\nvalueswitch repro/internal/bar 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatalf("readBaseline: %v", err)
	}
	if got["nopanic repro/internal/foo"] != 2 || got["valueswitch repro/internal/bar"] != 1 {
		t.Errorf("baseline = %v", got)
	}

	if err := os.WriteFile(path, []byte("too few fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Error("malformed baseline line did not error")
	}

	missing, err := readBaseline(filepath.Join(dir, "nope.txt"))
	if err != nil || len(missing) != 0 {
		t.Errorf("missing baseline file: got %v, %v; want empty, nil", missing, err)
	}
}

func TestReportAppliesBaseline(t *testing.T) {
	diag := func(line int) analysis.Diagnostic {
		return analysis.Diagnostic{
			Analyzer: "nopanic",
			Pos:      token.Position{Filename: "/root/x/f.go", Line: line, Column: 1},
			Message:  "m",
		}
	}
	baseline := map[string]int{"nopanic repro/x": 2}
	if failed := report("/root/x", "repro/x", []analysis.Diagnostic{diag(1), diag(2)}, baseline, false); failed {
		t.Error("findings within the baseline count should not fail the run")
	}
	if failed := report("/root/x", "repro/x", []analysis.Diagnostic{diag(1), diag(2), diag(3)}, baseline, false); !failed {
		t.Error("findings beyond the baseline count must fail the run")
	}
	if failed := report("/root/x", "repro/x", nil, baseline, false); failed {
		t.Error("no findings must never fail")
	}
}

func TestReportJSON(t *testing.T) {
	diag := analysis.Diagnostic{
		Analyzer: "nopanic",
		Pos:      token.Position{Filename: "/root/x/f.go", Line: 7, Column: 3},
		Message:  "panic in internal/",
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	failed := report("/root/x", "repro/x", []analysis.Diagnostic{diag}, nil, true)
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("unbaselined finding must fail in json mode too")
	}
	var got jsonFinding
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("output %q is not one JSON object per line: %v", out, err)
	}
	want := jsonFinding{File: "f.go", Line: 7, Col: 3, Analyzer: "nopanic", Message: "panic in internal/"}
	if got != want {
		t.Errorf("json finding = %+v, want %+v", got, want)
	}
}
