// Command dmlint runs the project's custom static analyzers over the module:
//
//	go run ./tools/dmlint ./...
//
// It type-checks every matched package with the standard library's go/types
// (export data comes from `go list -export`; no external analysis framework
// is required) and applies the checks in tools/dmlint/internal/checks.
// Findings print as file:line:col: analyzer: message and make the run exit
// nonzero. With -json, each finding instead prints as one JSON object per
// line ({"file","line","col","analyzer","message","baselined"}), for editor
// and CI integration.
//
// Known pre-existing findings can be recorded in tools/dmlint/baseline.txt
// as "<analyzer> <import path> <count>" lines: a package's findings for an
// analyzer are tolerated up to the recorded count (and still printed, marked
// as baselined), so new violations fail the build while the recorded debt is
// burned down deliberately. The baseline is meant to be empty: whenever it
// holds any budget, dmlint prints a warning to stderr so the debt stays
// visible. Inline suppression uses
// //dmlint:allow <analyzer> — <justification>.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/tools/dmlint/internal/analysis"
	"repro/tools/dmlint/internal/checks"
	"repro/tools/dmlint/internal/load"
)

// extraPackages are listed alongside the module patterns so their export
// data is available; the check fixtures and future analyzers may import any
// of them.
var extraPackages = []string{"fmt", "errors", "strings", "time", "sync", "os", "sort", "strconv"}

func main() {
	baselinePath := flag.String("baseline", "", "baseline file (default <module>/tools/dmlint/baseline.txt)")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(patterns, *baselinePath, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "dmlint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, baselinePath string, jsonOut bool) error {
	root, err := load.ModuleRoot()
	if err != nil {
		return err
	}
	if baselinePath == "" {
		baselinePath = filepath.Join(root, "tools", "dmlint", "baseline.txt")
	}
	baseline, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	if n := len(baseline); n > 0 {
		fmt.Fprintf(os.Stderr, "dmlint: warning: baseline carries %d budget line(s); the target is an empty baseline — burn the debt down\n", n)
	}

	metas, roots, err := load.List(root, append(append([]string{}, patterns...), extraPackages...)...)
	if err != nil {
		return err
	}

	failed := false
	for _, path := range roots {
		meta := metas[path]
		if meta.Standard || len(meta.GoFiles) == 0 {
			continue
		}
		pkg, err := load.TypeCheck(meta, metas)
		if err != nil {
			return err
		}
		var diags []analysis.Diagnostic
		diags = append(diags, analysis.MalformedAllows(pkg.Fset, pkg.Files)...)
		for _, a := range checks.All {
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				return fmt.Errorf("%s: %s: %v", a.Name, path, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		if report(root, path, diags, baseline, jsonOut) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// jsonFinding is the -json record shape, one object per line.
type jsonFinding struct {
	File      string `json:"file"` // module-relative when possible
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined"`
}

// report prints a package's findings, applying the baseline, and reports
// whether any finding exceeds it.
func report(root, pkgPath string, diags []analysis.Diagnostic, baseline map[string]int, jsonOut bool) bool {
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	enc := json.NewEncoder(os.Stdout)
	failed := false
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			pos.Filename = rel
		}
		key := d.Analyzer + " " + pkgPath
		baselined := counts[d.Analyzer] <= baseline[key]
		if !baselined {
			failed = true
		}
		if jsonOut {
			enc.Encode(jsonFinding{ //nolint:errcheck // stdout encode of plain strings cannot fail
				File:      pos.Filename,
				Line:      pos.Line,
				Col:       pos.Column,
				Analyzer:  d.Analyzer,
				Message:   d.Message,
				Baselined: baselined,
			})
			continue
		}
		if baselined {
			fmt.Printf("%s:%d:%d: %s: %s (baselined)\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
			continue
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	return failed
}

// readBaseline parses "<analyzer> <import path> <count>" lines; # starts a
// comment, blank lines are skipped. A missing file is an empty baseline.
func readBaseline(path string) (map[string]int, error) {
	out := make(map[string]int)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want \"<analyzer> <import path> <count>\", got %q", path, lineNo, line)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, lineNo, fields[2])
		}
		out[fields[0]+" "+fields[1]] = n
	}
	return out, sc.Err()
}
