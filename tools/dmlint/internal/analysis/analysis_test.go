package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

func a() int {
	//dmlint:allow nopanic
	return 1
}

//dmlint:allow lockcheck — caller holds the lock for the whole scan.
func b() int {
	return 2
}

func c() int {
	return 3 //dmlint:allow wrapcheck — same-line justification.
}

func d() int {
	//dmlint:allow valueswitch: colon separator reads naturally too.
	return 4
}
`

func parseAllowSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestMalformedAllows(t *testing.T) {
	fset, files := parseAllowSrc(t)
	diags := MalformedAllows(fset, files)
	if len(diags) != 1 {
		t.Fatalf("got %d malformed-allow findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "dmlint" || d.Pos.Line != 4 {
		t.Errorf("finding = %s, want dmlint finding on line 4", d)
	}
	if !strings.Contains(d.Message, "justification") {
		t.Errorf("message %q does not mention the missing justification", d.Message)
	}
}

func TestSuppression(t *testing.T) {
	fset, files := parseAllowSrc(t)
	decls := files[0].Decls
	bodyPos := func(i int) token.Pos {
		return decls[i].(*ast.FuncDecl).Body.List[0].Pos()
	}

	cases := []struct {
		name       string
		analyzer   string
		pos        token.Pos
		suppressed bool
	}{
		{"func-doc allow covers the body", "lockcheck", bodyPos(1), true},
		{"func-doc allow is analyzer-specific", "nopanic", bodyPos(1), false},
		{"same-line allow", "wrapcheck", bodyPos(2), true},
		{"preceding-line allow with colon", "valueswitch", bodyPos(3), true},
		{"unannotated site", "wrapcheck", bodyPos(0), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pass := NewPass(&Analyzer{Name: tc.analyzer}, fset, files, nil, nil)
			pass.Reportf(tc.pos, "probe")
			got := len(pass.Diagnostics()) == 0
			if got != tc.suppressed {
				t.Errorf("suppressed = %v, want %v", got, tc.suppressed)
			}
		})
	}
}
