// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check run over
// one type-checked package (a Pass), reporting positioned diagnostics. It
// exists because this repository builds with the standard library only; the
// surface is kept close to the upstream one so the checkers could migrate to
// a real vettool with mechanical changes.
//
// Suppression: a finding is dropped when an annotation of the form
//
//	//dmlint:allow <analyzer> — <justification>
//
// appears on the same line, on the line directly above, or in the doc
// comment of the enclosing function. The justification is mandatory; an
// allow annotation without one is itself reported as a finding so it cannot
// silently rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags  []Diagnostic
	allows *allowIndex
}

// NewPass prepares a pass, indexing the package's suppression annotations.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		allows:   indexAllows(fset, files),
	}
}

// Reportf records a finding at pos unless an allow annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allows.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings that survived suppression, plus one
// synthetic finding per malformed allow annotation.
func (p *Pass) Diagnostics() []Diagnostic {
	return p.diags
}

// MalformedAllows reports allow annotations missing a justification; the
// driver surfaces them once per package (not once per analyzer).
func MalformedAllows(fset *token.FileSet, files []*ast.File) []Diagnostic {
	idx := indexAllows(fset, files)
	out := make([]Diagnostic, 0, len(idx.malformed))
	for _, pos := range idx.malformed {
		out = append(out, Diagnostic{
			Analyzer: "dmlint",
			Pos:      pos,
			Message:  "dmlint:allow annotation needs a justification (//dmlint:allow <analyzer> — <why>)",
		})
	}
	return out
}

// allowIndex records where suppression annotations apply.
type allowIndex struct {
	// lines maps filename:line to the analyzer names allowed there.
	lines map[string]map[string]bool
	// funcs lists function body ranges whose doc comment carries an allow.
	funcs []funcAllow
	// malformed lists annotations without a justification.
	malformed []token.Position
}

type funcAllow struct {
	file       string
	start, end int // line range, inclusive
	analyzer   string
}

// allowRE matches "//dmlint:allow <analyzer> <separator> <justification>".
// The separator is any run of punctuation/space so both "—" and ":" read
// naturally; the justification must be non-empty.
var allowRE = regexp.MustCompile(`^//dmlint:allow\s+([A-Za-z0-9_]+)\s*(?:[-—:,]\s*)?(.*)$`)

func indexAllows(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{lines: make(map[string]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					idx.malformed = append(idx.malformed, pos)
					continue
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if idx.lines[key] == nil {
					idx.lines[key] = make(map[string]bool)
				}
				idx.lines[key][m[1]] = true
			}
		}
		filename := fset.Position(f.Pos()).Filename
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					continue // malformed ones were recorded above
				}
				idx.funcs = append(idx.funcs, funcAllow{
					file:     filename,
					start:    fset.Position(fd.Pos()).Line,
					end:      fset.Position(fd.End()).Line,
					analyzer: m[1],
				})
			}
		}
	}
	return idx
}

func (idx *allowIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set := idx.lines[fmt.Sprintf("%s:%d", pos.Filename, line)]; set[analyzer] {
			return true
		}
	}
	for _, fa := range idx.funcs {
		if fa.analyzer == analyzer && fa.file == pos.Filename && fa.start <= pos.Line && pos.Line <= fa.end {
			return true
		}
	}
	return false
}
