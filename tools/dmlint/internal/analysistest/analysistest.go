// Package analysistest runs one dmlint analyzer over a fixture package and
// checks its findings against // want "regex" comments in the fixture
// source — a stdlib-only miniature of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory of .go files forming one package. Every line that
// should be flagged carries a trailing comment:
//
//	doSomething() // want "part of the expected message"
//
// The quoted string is a regular expression matched against the diagnostic
// message. The harness fails the test for every expectation with no matching
// finding on its line and for every finding with no expectation.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"repro/tools/dmlint/internal/analysis"
	"repro/tools/dmlint/internal/load"
)

// wantRE matches `// want "regex"` at the end of a comment's text.
var wantRE = regexp.MustCompile(`//\s*want\s+("(?:[^"\\]|\\.)*")`)

// expectation is one // want annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run type-checks the fixture in srcDir as a package with the given import
// path (scoped analyzers key off the path), runs the analyzer, and matches
// findings against the fixture's want annotations. Export data for the
// fixture's imports is resolved with go list.
func Run(t *testing.T, srcDir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	diags, fset, files := run(t, srcDir, importPath, a)
	checkExpectations(t, fset, files, diags)
}

func run(t *testing.T, srcDir, importPath string, a *analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	root, err := load.ModuleRoot()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	fset, files := parseFixture(t, srcDir)
	metas := map[string]*load.Meta{}
	imports := fixtureImports(files)
	if len(imports) > 0 {
		metas, _, err = load.List(root, imports...)
		if err != nil {
			t.Fatalf("go list %v: %v", imports, err)
		}
	}
	pkg, err := load.CheckFiles(importPath, fset, files, metas)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", srcDir, err)
	}
	pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	return pass.Diagnostics(), fset, files
}

func parseFixture(t *testing.T, srcDir string) (*token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s holds no .go files", srcDir)
	}
	return fset, files
}

// fixtureImports collects the fixture's imported paths, so go list resolves
// exactly what the fixture needs.
func fixtureImports(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	expectations := collectWants(t, fset, files)
	for i := range diags {
		d := &diags[i]
		matched := false
		for _, e := range expectations {
			if e.met || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, e := range expectations {
		if !e.met {
			t.Errorf("%s:%d: expected a finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", fset.Position(c.Pos()), m[1], err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pattern, err)
				}
				pos := fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}
