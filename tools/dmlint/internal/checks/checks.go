// Package checks holds the dmlint analyzers: the project-specific invariants
// that plain go vet cannot express — provider mutex discipline, error-chain
// preservation, rowset.Value switch exhaustiveness, the no-panic rule for
// library packages, and the dataflow invariants of the streaming engine:
// cursor-close obligations, context propagation, span pairing, and plan
// immutability.
package checks

import "repro/tools/dmlint/internal/analysis"

// All lists every analyzer the dmlint driver runs, in output order.
var All = []*analysis.Analyzer{
	BatchOwn,
	CursorClose,
	CtxFlow,
	LockCheck,
	MetricName,
	NoPanic,
	PlanImmut,
	SpanPair,
	ValueSwitch,
	WrapCheck,
}
