// Package checks holds the dmlint analyzers: the project-specific invariants
// that plain go vet cannot express — provider mutex discipline, error-chain
// preservation, rowset.Value switch exhaustiveness, and the no-panic rule
// for library packages.
package checks

import "repro/tools/dmlint/internal/analysis"

// All lists every analyzer the dmlint driver runs, in output order.
var All = []*analysis.Analyzer{
	LockCheck,
	NoPanic,
	ValueSwitch,
	WrapCheck,
}
