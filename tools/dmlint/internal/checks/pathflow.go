package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/dmlint/internal/analysis"
)

// This file implements the intra-procedural path walker shared by the
// cursorclose and spanpair analyzers. Both enforce the same shape of
// invariant — "a resource acquired here must reach its release on every
// path out of the function" — over different resources (rowset.Cursor,
// *obs.Span).
//
// The walker is a conservative abstract interpreter over the statement
// tree: it tracks local variables bound to a resource-producing call and
// follows every syntactic path (if/else, switch/select cases, loop
// bodies), reporting a diagnostic at each return (or fall-off-the-end)
// where a tracked resource is still live. Ownership transfers — passing
// the resource to another call, returning it, storing it in a field,
// slice, map, or closure — resolve the obligation: whoever received the
// value owns its release (the documented Cursor contract). Error-paired
// acquisitions (`c, err := f()`) are dropped inside the `err != nil`
// branch, matching Go's convention that a failed constructor returns a
// nil resource. The analysis is intentionally intra-procedural and
// syntactic: no SSA, no interprocedural summaries — the repository's
// operator constructors are written so local reasoning is enough.

// resourceSpec parameterizes the walker over one resource kind.
type resourceSpec interface {
	// noun names the resource in diagnostics ("cursor", "span").
	noun() string
	// hint suggests the idiomatic fix in diagnostics.
	hint() string
	// acquires reports whether result i of call hands the caller a
	// resource it must release.
	acquires(p *analysis.Pass, call *ast.CallExpr, i int) bool
	// releases returns the identifiers this call releases (the receiver
	// of c.Close(), the argument of t.EndSpan(sp)); the walker filters
	// them against its tracked set.
	releases(p *analysis.Pass, call *ast.CallExpr) []*ast.Ident
}

// resVar is one live obligation: a local bound to an unreleased resource.
type resVar struct {
	name string
	pos  token.Pos    // acquisition site
	err  types.Object // paired error result, nil if none
}

// resState maps a local's object to its live obligation. Presence in the
// map means "still owes a release on this path".
type resState map[types.Object]*resVar

func (s resState) clone() resState {
	out := make(resState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// flowWalker walks one function body for one resource kind.
type flowWalker struct {
	pass *analysis.Pass
	spec resourceSpec
}

// checkResourceFlow runs spec's obligation analysis over every function
// and function literal in the package.
func checkResourceFlow(p *analysis.Pass, spec resourceSpec) {
	w := &flowWalker{pass: p, spec: spec}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.checkBody(fd.Body)
			// Function literals get their own walk with a fresh state:
			// resources they acquire are their own obligation, while the
			// enclosing walk treats captured outer resources as
			// transferred.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w.checkBody(fl.Body)
				}
				return true
			})
		}
	}
}

func (w *flowWalker) checkBody(body *ast.BlockStmt) {
	st := make(resState)
	terminated := w.walk(body.List, st)
	if !terminated {
		w.reportLive(st, body.Rbrace, "function end")
	}
}

// reportLive flags every obligation still live at pos.
func (w *flowWalker) reportLive(st resState, pos token.Pos, where string) {
	for _, rv := range st {
		w.pass.Reportf(pos, "%s %s (acquired at line %d) is not released on this path (%s); %s",
			w.spec.noun(), rv.name, w.pass.Fset.Position(rv.pos).Line, where, w.spec.hint())
	}
}

// walk interprets stmts in order, mutating st. It returns true when the
// path terminates (return, panic, branch) before reaching the end.
func (w *flowWalker) walk(stmts []ast.Stmt, st resState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *flowWalker) walkStmt(s ast.Stmt, st resState) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				w.handleBinding(vs.Names, vs.Values, vs.Pos(), st)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanicCall(w.pass, call) {
			w.scanExpr(s.X, true, st)
			return true
		}
		w.scanExpr(s.X, true, st)
	case *ast.DeferStmt:
		// A deferred release resolves the obligation from this point on;
		// any other deferred call (including closures capturing the
		// resource) transfers ownership to the deferred body.
		w.applyReleases(s.Call, st)
		w.scanExpr(s.Call, true, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, true, st)
		}
		w.reportLive(st, s.Pos(), "return")
		return true
	case *ast.IfStmt:
		return w.walkIf(s, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, false, st)
		}
		return w.walkClauses(s.Body, st, !switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		// `switch x := c.(type)` aliases c; treat as a transfer so the
		// per-case binding owns it.
		w.walkStmt(s.Assign, st)
		return w.walkClauses(s.Body, st, !switchHasDefault(s.Body))
	case *ast.SelectStmt:
		return w.walkClauses(s.Body, st, false)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, false, st)
		}
		w.walkLoopBody(s.Body, st)
		if s.Post != nil {
			w.walkStmt(s.Post, st.clone())
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X, false, st)
		w.walkLoopBody(s.Body, st)
	case *ast.GoStmt:
		w.scanExpr(s.Call, true, st)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, false, st)
		w.scanExpr(s.Value, true, st)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, false, st)
	case *ast.BlockStmt:
		return w.walk(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; treated as
		// silent terminators (conservative: may under-report, never
		// over-reports).
		return true
	}
	return false
}

// walkLoopBody interprets a loop body once. Obligations acquired inside
// the body must be resolved by its end — a resource still live when the
// iteration wraps around leaks once per row.
func (w *flowWalker) walkLoopBody(body *ast.BlockStmt, st resState) {
	inner := st.clone()
	terminated := w.walk(body.List, inner)
	if !terminated {
		acquiredInside := make(resState)
		for obj, rv := range inner {
			if _, preexisting := st[obj]; !preexisting {
				acquiredInside[obj] = rv
			}
		}
		w.reportLive(acquiredInside, body.Rbrace, "end of loop iteration")
	}
	// Releases of outer obligations inside the body are not credited: the
	// body may execute zero times, so the outer path still owes them.
}

func (w *flowWalker) walkIf(s *ast.IfStmt, st resState) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, st)
	}
	w.scanExpr(s.Cond, false, st)

	thenSt := st.clone()
	var elseSt resState
	if s.Else != nil {
		elseSt = st.clone()
	} else {
		elseSt = st.clone() // fall-through path
	}
	w.applyNilGuards(s.Cond, thenSt, elseSt)

	thenTerm := w.walk(s.Body.List, thenSt)
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.walkStmt(s.Else, elseSt)
	}

	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		replaceState(st, elseSt)
	case elseTerm:
		replaceState(st, thenSt)
	default:
		// Both fall through: an obligation survives if it is live on
		// either path.
		merged := unionState(thenSt, elseSt)
		replaceState(st, merged)
	}
	return false
}

// applyNilGuards models the two conventions that make an obligation
// conditionally dead: `if err != nil` (the paired constructor failed, so
// the resource is nil) and `if c == nil` (the resource itself is nil).
func (w *flowWalker) applyNilGuards(cond ast.Expr, thenSt, elseSt resState) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	var id *ast.Ident
	if i, ok := ast.Unparen(be.X).(*ast.Ident); ok && isNilIdent(w.pass, be.Y) {
		id = i
	} else if i, ok := ast.Unparen(be.Y).(*ast.Ident); ok && isNilIdent(w.pass, be.X) {
		id = i
	}
	if id == nil {
		return
	}
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	// nilSide is the state on the path where the compared value is nil.
	nilSide := thenSt
	if be.Op == token.NEQ {
		nilSide = elseSt
	}
	// The resource itself compared against nil: it is nil on nilSide.
	delete(nilSide, obj)
	// The paired error compared against nil: the acquisition failed on
	// the side where err is NON-nil.
	errSide := elseSt
	if be.Op == token.NEQ {
		errSide = thenSt
	}
	for robj, rv := range errSide {
		if rv.err == obj {
			delete(errSide, robj)
		}
	}
}

func isNilIdent(p *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && p.Info.Uses[id] == types.Universe.Lookup("nil")
}

// walkClauses forks the state per case/comm clause and merges the
// survivors. withImplicitDefault adds the entry state as an extra
// surviving path (a switch without default may match nothing).
func (w *flowWalker) walkClauses(body *ast.BlockStmt, st resState, withImplicitDefault bool) bool {
	var survivors []resState
	for _, c := range body.List {
		clauseSt := st.clone()
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, false, clauseSt)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, clauseSt)
			}
			stmts = c.Body
		}
		if !w.walk(stmts, clauseSt) {
			survivors = append(survivors, clauseSt)
		}
	}
	if withImplicitDefault {
		survivors = append(survivors, st.clone())
	}
	if len(survivors) == 0 {
		return true
	}
	merged := survivors[0]
	for _, s := range survivors[1:] {
		merged = unionState(merged, s)
	}
	replaceState(st, merged)
	return false
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func unionState(a, b resState) resState {
	out := a.clone()
	for k, v := range b {
		out[k] = v
	}
	return out
}

func replaceState(dst, src resState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// handleAssign processes acquisitions, releases, transfers, and live-var
// overwrites in one assignment.
func (w *flowWalker) handleAssign(s *ast.AssignStmt, st resState) {
	names := make([]*ast.Ident, len(s.Lhs))
	for i, l := range s.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			names[i] = id
		} else {
			// Field/index targets transfer anything assigned into them;
			// the RHS scan below handles that. Scanning the base
			// expression catches releases in index expressions.
			w.scanExpr(l, false, st)
		}
	}
	w.handleBinding(names, s.Rhs, s.Pos(), st)
}

// handleBinding is the shared core of := / = / var bindings: names[i]
// receives values[i] (or result i of a single multi-value call).
func (w *flowWalker) handleBinding(names []*ast.Ident, values []ast.Expr, pos token.Pos, st resState) {
	// Single call on the RHS: its results may acquire.
	if len(values) == 1 {
		if call, ok := ast.Unparen(values[0]).(*ast.CallExpr); ok {
			w.scanExpr(call, true, st) // args may transfer/release first
			w.bindCallResults(names, call, pos, st)
			return
		}
	}
	for i, v := range values {
		// `_ = c` discards a bare identifier without handing it anywhere:
		// not a transfer, the obligation stays live.
		blankLHS := i < len(names) && names[i] != nil && names[i].Name == "_"
		_, bareIdent := ast.Unparen(v).(*ast.Ident)
		w.scanExpr(v, !(blankLHS && bareIdent), st)
		if i < len(names) && names[i] != nil {
			w.maybeOverwrite(names[i], pos, st)
		}
	}
	// n := v aliasing is handled by scanExpr treating the RHS ident as a
	// transfer, so the alias owns the obligation conservatively.
	if len(values) == 1 && len(names) > 1 {
		for _, n := range names {
			if n != nil {
				w.maybeOverwrite(n, pos, st)
			}
		}
	}
}

// bindCallResults tracks acquisitions produced by call into names and
// flags overwrites of still-live obligations.
func (w *flowWalker) bindCallResults(names []*ast.Ident, call *ast.CallExpr, pos token.Pos, st resState) {
	// Locate a paired error result, if the call has one.
	var errObj types.Object
	if tv, ok := w.pass.Info.Types[call]; ok {
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tuple.Len() && i < len(names); i++ {
				if names[i] == nil || names[i].Name == "_" {
					continue
				}
				if isErrorType(tuple.At(i).Type()) {
					errObj = w.pass.Info.Defs[names[i]]
					if errObj == nil {
						errObj = w.pass.Info.Uses[names[i]]
					}
				}
			}
		}
	}
	for i, n := range names {
		if !w.spec.acquires(w.pass, call, i) {
			if n != nil {
				w.maybeOverwrite(n, pos, st)
			}
			continue
		}
		if n == nil {
			// Assigned into a field, slice, or map: ownership transfers
			// to that holder.
			continue
		}
		if n.Name == "_" {
			w.pass.Reportf(pos, "%s returned by this call is discarded without being released; %s",
				w.spec.noun(), w.spec.hint())
			continue
		}
		w.maybeOverwrite(n, pos, st)
		obj := w.pass.Info.Defs[n]
		if obj == nil {
			obj = w.pass.Info.Uses[n]
		}
		if obj == nil {
			continue
		}
		st[obj] = &resVar{name: n.Name, pos: n.Pos(), err: errObj}
	}
}

// maybeOverwrite reports when an assignment clobbers a variable whose
// obligation is still live — the old resource becomes unreachable.
func (w *flowWalker) maybeOverwrite(n *ast.Ident, pos token.Pos, st resState) {
	obj := w.pass.Info.Uses[n]
	if obj == nil {
		return
	}
	if rv, live := st[obj]; live {
		w.pass.Reportf(pos, "%s %s (acquired at line %d) is overwritten while still unreleased; %s",
			w.spec.noun(), rv.name, w.pass.Fset.Position(rv.pos).Line, w.spec.hint())
		delete(st, obj)
	}
}

// applyReleases resolves the obligations this call releases.
func (w *flowWalker) applyReleases(call *ast.CallExpr, st resState) bool {
	any := false
	for _, id := range w.spec.releases(w.pass, call) {
		obj := w.pass.Info.Uses[id]
		if obj == nil {
			continue
		}
		if _, live := st[obj]; live {
			delete(st, obj)
			any = true
		}
	}
	return any
}

// scanExpr applies releases and ownership transfers inside an expression.
// transfer reports whether a bare tracked identifier in this position
// hands the resource to someone else (RHS of an assignment, a call
// argument, a return value, a composite-literal element) as opposed to
// merely being used (a nil comparison, a method receiver).
func (w *flowWalker) scanExpr(e ast.Expr, transfer bool, st resState) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		if !transfer {
			return
		}
		if obj := w.pass.Info.Uses[e]; obj != nil {
			delete(st, obj) // ownership handed off
		}
	case *ast.CallExpr:
		w.applyReleases(e, st)
		// A method call on a tracked resource (c.Next(), sp.SetLabel())
		// is a use, not a transfer; anything else passing the resource
		// as an argument transfers it.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := w.pass.Info.Uses[id]; obj != nil {
					if _, live := st[obj]; live {
						for _, a := range e.Args {
							w.scanExpr(a, true, st)
						}
						return
					}
				}
			}
		}
		w.scanExpr(e.Fun, false, st)
		for _, a := range e.Args {
			w.scanExpr(a, true, st)
		}
	case *ast.ParenExpr:
		w.scanExpr(e.X, transfer, st)
	case *ast.SelectorExpr:
		// c.field in a transfer position aliases through the base.
		w.scanExpr(e.X, transfer, st)
	case *ast.StarExpr:
		w.scanExpr(e.X, transfer, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			w.scanExpr(e.X, true, st)
		} else {
			w.scanExpr(e.X, transfer, st)
		}
	case *ast.BinaryExpr:
		// Comparisons and arithmetic use values without consuming them.
		w.scanExpr(e.X, false, st)
		w.scanExpr(e.Y, false, st)
	case *ast.IndexExpr:
		w.scanExpr(e.X, false, st)
		w.scanExpr(e.Index, false, st)
	case *ast.SliceExpr:
		w.scanExpr(e.X, false, st)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, transfer, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.scanExpr(el, true, st)
		}
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value, true, st)
	case *ast.FuncLit:
		// Capturing a tracked resource in a closure transfers ownership
		// to the closure (deferred cleanups, goroutine bodies).
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := w.pass.Info.Uses[id]; obj != nil {
					delete(st, obj)
				}
			}
			return true
		})
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func isPanicCall(p *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	obj := p.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// lookupInterface resolves a named interface type from an imported
// package (or the package under analysis itself), returning nil when the
// package is not in the import graph — in which case the dependent
// analyzer has nothing to check.
func lookupInterface(p *analysis.Pass, pkgPath, name string) *types.Interface {
	var scope *types.Scope
	if p.Pkg.Path() == pkgPath {
		scope = p.Pkg.Scope()
	} else {
		for _, imp := range p.Pkg.Imports() {
			if imp.Path() == pkgPath {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return nil
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}

// resultType returns the type of result i of call, or nil.
func resultType(p *analysis.Pass, call *ast.CallExpr, i int) types.Type {
	tv, ok := p.Info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if i < t.Len() {
			return t.At(i).Type()
		}
		return nil
	default:
		if i == 0 {
			return t
		}
		return nil
	}
}
