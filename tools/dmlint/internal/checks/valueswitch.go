package checks

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// ValueSwitch reports type switches over rowset.Value that neither cover
// every canonical value kind nor provide a default clause. rowset.Value has
// exactly seven canonical dynamic types (the rowset package's Normalize
// contract): nil, int64, float64, string, bool, time.Time, and
// *rowset.Rowset. A switch silently skipping one of them turns a data bug
// into a no-op; this check forces each switch to either enumerate the kinds
// or say what happens otherwise.
var ValueSwitch = &analysis.Analyzer{
	Name: "valueswitch",
	Doc:  "type switches over rowset.Value must cover all value kinds or have a default",
	Run:  runValueSwitch,
}

// valueKinds are the canonical dynamic types of a rowset.Value, keyed by the
// string a case type renders to.
var valueKinds = []string{
	"nil",
	"int64",
	"float64",
	"string",
	"bool",
	"time.Time",
	"*repro/internal/rowset.Rowset",
}

func runValueSwitch(p *analysis.Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			x := typeSwitchSubject(sw)
			if x == nil || !isRowsetValue(p.Info.Types[x].Type) {
				return true
			}
			covered := make(map[string]bool)
			for _, stmt := range sw.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					return true // default clause: the switch says what happens otherwise
				}
				for _, te := range cc.List {
					if id, ok := te.(*ast.Ident); ok && id.Name == "nil" {
						covered["nil"] = true
						continue
					}
					if t := p.Info.Types[te].Type; t != nil {
						covered[typeKey(t)] = true
					}
				}
			}
			var missing []string
			for _, k := range valueKinds {
				if !covered[k] {
					missing = append(missing, displayKind(k))
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				p.Reportf(sw.Pos(), "type switch over rowset.Value misses %s; add the missing cases or a default clause",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// typeSwitchSubject extracts the switched-on expression from the assign part
// of a type switch (`switch v := x.(type)` or `switch x.(type)`).
func typeSwitchSubject(sw *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch a := sw.Assign.(type) {
	case *ast.ExprStmt:
		e = a.X
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			e = a.Rhs[0]
		}
	}
	ta, ok := e.(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}

// isRowsetValue reports whether t is the named type repro/internal/rowset.Value.
func isRowsetValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Value" && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/rowset"
}

// typeKey canonicalizes a case type for comparison against valueKinds.
func typeKey(t types.Type) string {
	return types.TypeString(t, nil)
}

// displayKind renders a kind for the diagnostic message.
func displayKind(k string) string {
	if k == "*repro/internal/rowset.Rowset" {
		return "*rowset.Rowset"
	}
	return k
}
