package checks

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// LockCheck enforces the mutex discipline a package declares with a guard
// annotation:
//
//	//dmlint:guard mu: Provider.models, modelEntry.cases, core.Model.Trained
//
// Every function in the annotated package that touches a guarded field must
// acquire the named mutex somewhere in its body (a textual <x>.mu.Lock() or
// <x>.mu.RLock() call — the static approximation of "holds the lock"),
// carry a "Locked" name suffix declaring the caller holds it, or be
// explicitly allowlisted with //dmlint:allow lockcheck. A package may declare
// several guards (one annotation per mutex, e.g. a catalog commit mutex and
// a session registry mutex); each guarded field is checked against its own
// mutex. Packages without a guard annotation are not checked.
var LockCheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "guarded model state must be read under the provider mutex",
	Run:  runLockCheck,
}

// guardRE matches "//dmlint:guard <mutex>: <Type.Field, ...>".
var guardRE = regexp.MustCompile(`^//\s*dmlint:guard\s+(\w+)\s*:\s*(.+)$`)

// guardSpec is one parsed guard annotation.
type guardSpec struct {
	mutex  string
	fields []guardField
}

// guardField names one guarded struct field, optionally qualified by the
// defining package's name (for types from other packages, e.g. core.Model).
type guardField struct {
	pkg   string // "" = the annotated package itself
	typ   string
	field string
}

func runLockCheck(p *analysis.Pass) error {
	specs := parseGuards(p.Files)
	if len(specs) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") || strings.HasSuffix(fd.Name.Name, "locked") {
				continue // declared lock-transfer convention: caller holds the mutex
			}
			for _, spec := range specs {
				if acquiresMutex(fd.Body, spec.mutex) {
					continue
				}
				spec := spec
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					gf, ok := guardedAccess(p, spec, sel)
					if !ok {
						return true
					}
					p.Reportf(sel.Sel.Pos(), "%s accesses %s without holding %s; lock it, use a *Locked helper, or annotate with //dmlint:allow lockcheck",
						fd.Name.Name, gf, spec.mutex)
					return true
				})
			}
		}
	}
	return nil
}

// parseGuards collects guard annotations from every comment in the package:
// one spec per distinct mutex name, merging multiple annotations for the
// same mutex. Specs come back in first-seen order so diagnostics are
// deterministic.
func parseGuards(files []*ast.File) []*guardSpec {
	var specs []*guardSpec
	byMutex := make(map[string]*guardSpec)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := guardRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				spec := byMutex[m[1]]
				if spec == nil {
					spec = &guardSpec{mutex: m[1]}
					byMutex[m[1]] = spec
					specs = append(specs, spec)
				}
				for _, entry := range strings.Split(m[2], ",") {
					parts := strings.Split(strings.TrimSpace(entry), ".")
					switch len(parts) {
					case 2:
						spec.fields = append(spec.fields, guardField{typ: parts[0], field: parts[1]})
					case 3:
						spec.fields = append(spec.fields, guardField{pkg: parts[0], typ: parts[1], field: parts[2]})
					}
				}
			}
		}
	}
	return specs
}

// acquiresMutex reports whether body contains a call to <anything>.<mutex>.Lock
// or .RLock — the textual approximation of holding the lock for the duration
// of the function.
func acquiresMutex(body *ast.BlockStmt, mutex string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == mutex {
			found = true
			return false
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == mutex {
			found = true
			return false
		}
		return true
	})
	return found
}

// guardedAccess reports whether sel reads or writes a guarded field,
// returning its display name.
func guardedAccess(p *analysis.Pass, spec *guardSpec, sel *ast.SelectorExpr) (string, bool) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	for _, gf := range spec.fields {
		if gf.field != sel.Sel.Name || gf.typ != obj.Name() {
			continue
		}
		if gf.pkg == "" {
			if obj.Pkg() == p.Pkg {
				return gf.typ + "." + gf.field, true
			}
			continue
		}
		if obj.Pkg() != nil && obj.Pkg().Name() == gf.pkg {
			return gf.pkg + "." + gf.typ + "." + gf.field, true
		}
	}
	return "", false
}
