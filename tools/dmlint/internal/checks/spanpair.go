package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// SpanPair enforces the obs span discipline from PR4, until now prose
// only:
//
//  1. Every span begun with Trace.StartSpan/StartSpanStage is ended —
//     t.EndSpan(sp) plain or deferred — on every path out of the
//     function, or its ownership is handed to another holder (a
//     traced-cursor wrapper, a struct field). A span left open on an
//     error or cancellation path corrupts the statement's span tree.
//  2. Worker goroutines never touch the statement-owned trace: a
//     function literal launched with `go` or handed to the par worker
//     pool must not reference a *obs.Trace or *obs.Span captured from
//     the enclosing statement goroutine. Fan-out is recorded in span
//     labels by the owner instead.
//
// Scoped to repro/internal/.
var SpanPair = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "obs spans must be ended on all paths and never escape to workers",
	Run:  runSpanPair,
}

type spanSpec struct{}

func (spanSpec) noun() string { return "span" }
func (spanSpec) hint() string {
	return "defer t.EndSpan(sp), end it on this path, or hand it to an owner"
}

func (spanSpec) acquires(p *analysis.Pass, call *ast.CallExpr, i int) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "StartSpan" && sel.Sel.Name != "StartSpanStage" {
		return false
	}
	return isObsType(resultType(p, call, i), "Span")
}

func (spanSpec) releases(_ *analysis.Pass, call *ast.CallExpr) []*ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "EndSpan" {
		return nil
	}
	var out []*ast.Ident
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			out = append(out, id)
		}
	}
	return out
}

// isObsType reports whether t is *obs.<name> (or obs.<name>) for the
// repro/internal/obs package.
func isObsType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/obs"
}

func runSpanPair(p *analysis.Pass) error {
	if !strings.HasPrefix(p.Pkg.Path(), "repro/internal/") {
		return nil
	}
	if p.Pkg.Path() == "repro/internal/obs" {
		return nil // the trace implementation manipulates its own stack
	}
	checkResourceFlow(p, spanSpec{})
	checkWorkerTraceEscape(p)
	return nil
}

// checkWorkerTraceEscape reports references to captured *obs.Trace or
// *obs.Span values inside function literals that run on another
// goroutine: `go func(){...}` bodies and literals passed to the
// repro/internal/par worker pool.
func checkWorkerTraceEscape(p *analysis.Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					reportTraceCaptures(p, fl, "goroutine")
				}
			case *ast.CallExpr:
				if !isParCall(p, n) {
					return true
				}
				for _, a := range n.Args {
					if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
						reportTraceCaptures(p, fl, "par worker")
					}
				}
			}
			return true
		})
	}
}

// isParCall reports whether call invokes a function from the par package.
func isParCall(p *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "repro/internal/par"
}

// reportTraceCaptures flags identifiers inside fl whose object is a
// Trace or Span declared outside the literal — statement-owned tracing
// state leaking onto a worker goroutine.
func reportTraceCaptures(p *analysis.Pass, fl *ast.FuncLit, where string) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if !isObsType(obj.Type(), "Trace") && !isObsType(obj.Type(), "Span") {
			return true
		}
		// Declared inside the literal (its own params or locals) is fine.
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		p.Reportf(id.Pos(), "%s %s is captured by a %s function literal; the trace is owned by the statement goroutine (record fan-out in span labels instead)",
			strings.ToLower(typeShortName(obj.Type())), id.Name, where)
		return true
	})
}

func typeShortName(t types.Type) string {
	if isObsType(t, "Trace") {
		return "Trace"
	}
	return "Span"
}
