package checks

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// WrapCheck reports fmt.Errorf calls in repro/internal/... that format an
// error operand with a verb other than %w. Formatting an error with %v (or
// %s) flattens it to text and severs the errors.Is/errors.As chain; callers
// downstream can no longer match sentinel or typed errors.
var WrapCheck = &analysis.Analyzer{
	Name: "wrapcheck",
	Doc:  "require %w when fmt.Errorf formats an error operand",
	Run:  runWrapCheck,
}

func runWrapCheck(p *analysis.Pass) error {
	if !strings.HasPrefix(p.Pkg.Path(), "repro/internal/") {
		return nil
	}
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(p.Info, call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(p.Info, call.Args[0])
			if !ok {
				return true // dynamic format string: nothing to check
			}
			verbs := formatVerbs(format)
			operands := call.Args[1:]
			for i, verb := range verbs {
				if i >= len(operands) {
					break // malformed call; gofmt/vet territory, not ours
				}
				if verb == 'w' || verb == '*' {
					continue
				}
				t := p.Info.Types[operands[i]].Type
				if t == nil {
					continue
				}
				if types.Implements(t, errorIface) {
					p.Reportf(operands[i].Pos(), "error operand formatted with %%%c; use %%w so the error chain survives errors.Is/As", verb)
				}
			}
			return true
		})
	}
	return nil
}

// isPkgFunc reports whether fun resolves to the named package-level function.
func isPkgFunc(info *types.Info, fun ast.Expr, pkg, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == pkg
}

// constantString extracts a compile-time constant string value.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns one entry per format operand, in order: the verb rune
// for conversions, or '*' for a width/precision argument.
func formatVerbs(format string) []rune {
	var out []rune
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		// Flags.
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// Width and precision, either digits or '*' (which consumes an arg).
		scanNum := func() {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		if i < len(format) && format[i] == '*' {
			out = append(out, '*')
			i++
		} else {
			scanNum()
		}
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				out = append(out, '*')
				i++
			} else {
				scanNum()
			}
		}
		if i >= len(format) {
			break
		}
		verb := rune(format[i])
		i++
		if verb == '%' {
			continue
		}
		out = append(out, verb)
	}
	return out
}
