package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// CursorClose proves that every rowset.Cursor a function acquires — from
// (*Rowset).Cursor(), (*Table).Cursor(), rowset.CursorOf, or any operator
// constructor whose result implements the Cursor interface — reaches
// Close on every path out of the function, including error returns and
// early TOP/cancellation exits. Passing a cursor to another call,
// returning it, or storing it in a field/slice/map/closure transfers
// ownership (the PR5 Cursor contract: whoever holds the cursor closes
// it); `c, err := f()` acquisitions are exempt inside the `err != nil`
// branch, where the cursor is nil by convention. The check is scoped to
// repro/internal/ — the streaming executor's highest-risk leak class.
var CursorClose = &analysis.Analyzer{
	Name: "cursorclose",
	Doc:  "every acquired rowset.Cursor must reach Close on all paths",
	Run:  runCursorClose,
}

type cursorSpec struct {
	iface *types.Interface
}

func (cursorSpec) noun() string { return "cursor" }
func (cursorSpec) hint() string {
	return "defer Close, close it on this path, or hand it to an owner"
}

func (s cursorSpec) acquires(p *analysis.Pass, call *ast.CallExpr, i int) bool {
	t := resultType(p, call, i)
	if t == nil {
		return false
	}
	return types.Implements(t, s.iface)
}

func (cursorSpec) releases(_ *analysis.Pass, call *ast.CallExpr) []*ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return []*ast.Ident{id}
}

func runCursorClose(p *analysis.Pass) error {
	if !strings.HasPrefix(p.Pkg.Path(), "repro/internal/") {
		return nil
	}
	iface := lookupInterface(p, "repro/internal/rowset", "Cursor")
	if iface == nil {
		return nil // package does not touch cursors
	}
	checkResourceFlow(p, cursorSpec{iface: iface})
	return nil
}
