package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// NoPanic reports panic calls in library packages (repro/internal/...).
// Library code must return errors; the only sanctioned panics are documented
// corruption paths carrying a //dmlint:allow nopanic annotation, and
// test-support packages (package name ending in "test"), which exist to
// panic on behalf of tests.
var NoPanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in library packages outside documented corruption paths",
	Run:  runNoPanic,
}

func runNoPanic(p *analysis.Pass) error {
	path := p.Pkg.Path()
	if !strings.HasPrefix(path, "repro/internal/") || strings.HasSuffix(p.Pkg.Name(), "test") {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if b, ok := obj.(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			p.Reportf(call.Pos(), "panic in library package %s: return an error instead (documented corruption paths may carry //dmlint:allow nopanic)", path)
			return true
		})
	}
	return nil
}
