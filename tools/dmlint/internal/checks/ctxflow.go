package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// CtxFlow enforces context propagation through the engine (the PR3
// contract: cancellation must reach every scan loop and wire read).
// Three rules, all scoped to repro/internal/ non-test packages:
//
//  1. context.Background() and context.TODO() are forbidden: library
//     code never originates a context — it receives one from cmd/ or a
//     test. Deprecated context-less wrappers carry an explicit
//     //dmlint:allow ctxflow with justification.
//  2. An exported function that accepts a context.Context must actually
//     use it (a parameter that is silently dropped breaks cancellation
//     while advertising it; `_ = ctx` does not count).
//  3. A function that has a context in scope must not call the
//     context-less variant of a method or function when a *Context
//     variant exists (e.g. calling Execute where ExecuteContext is
//     available drops the caller's deadline on the floor).
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must be accepted and propagated, never originated in internal/",
	Run:  runCtxFlow,
}

func runCtxFlow(p *analysis.Pass) error {
	if !strings.HasPrefix(p.Pkg.Path(), "repro/internal/") {
		return nil
	}
	if strings.HasSuffix(p.Pkg.Name(), "test") {
		return nil // test-support packages own their contexts
	}
	for _, f := range p.Files {
		checkNoBackground(p, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParam(p, fd)
			if ctxParam != nil {
				if fd.Name.IsExported() && !usesObject(p, fd.Body, ctxParam) {
					p.Reportf(fd.Name.Pos(), "%s accepts a context.Context but never uses it; propagate it into calls and cancellation checks", fd.Name.Name)
				}
				checkDroppedContext(p, fd)
			}
		}
	}
	return nil
}

// checkNoBackground reports context.Background()/context.TODO() calls.
func checkNoBackground(p *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			p.Reportf(call.Pos(), "context.%s() in internal/: accept a context.Context from the caller instead", fn.Name())
		}
		return true
	})
}

// contextParam returns the object of fd's context.Context parameter.
func contextParam(p *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// usesObject reports whether body references obj outside a blank
// assignment (`_ = ctx` is documentation, not propagation).
func usesObject(p *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok && isBlankDiscard(as, p, obj) {
			return false // skip the discard's subtree
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

// isBlankDiscard matches `_ = obj` exactly.
func isBlankDiscard(as *ast.AssignStmt, p *analysis.Pass, obj types.Object) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name != "_" {
		return false
	}
	rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident)
	return ok && p.Info.Uses[rhs] == obj
}

// checkDroppedContext reports calls to M(...) made while a context is in
// scope when the callee also provides MContext(ctx, ...): the caller is
// discarding its own cancellation signal.
func checkDroppedContext(p *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if strings.HasSuffix(name, "Context") {
			return true
		}
		variant := name + "Context"
		switch callee := p.Info.Uses[sel.Sel].(type) {
		case *types.Func:
			sig, ok := callee.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() != nil {
				// Method: look the *Context variant up on the receiver.
				obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, p.Pkg, variant)
				if fnTakesContext(obj) {
					p.Reportf(call.Pos(), "%s drops the in-scope context; call %s instead", name, variant)
				}
				return true
			}
			// Package-level function: look in the defining package.
			if callee.Pkg() != nil {
				if fnTakesContext(callee.Pkg().Scope().Lookup(variant)) {
					p.Reportf(call.Pos(), "%s drops the in-scope context; call %s instead", name, variant)
				}
			}
		}
		return true
	})
}

// fnTakesContext reports whether obj is a function whose first parameter
// is a context.Context.
func fnTakesContext(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}
