package checks

import (
	"path/filepath"
	"testing"

	"repro/tools/dmlint/internal/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, fixture("nopanic"), "repro/internal/nopanicfixture", NoPanic)
}

func TestNoPanicExemptsToolPackages(t *testing.T) {
	// Same panicking shape, but outside repro/internal/: no findings, so the
	// fixture carries no want annotations.
	analysistest.Run(t, fixture("nopanic_tools"), "repro/tools/toolfixture", NoPanic)
}

func TestNoPanicExemptsTestSupportPackages(t *testing.T) {
	analysistest.Run(t, fixture("nopanic_testpkg"), "repro/internal/fixturetest", NoPanic)
}

func TestWrapCheck(t *testing.T) {
	analysistest.Run(t, fixture("wrapcheck"), "repro/internal/wrapfixture", WrapCheck)
}

func TestValueSwitch(t *testing.T) {
	analysistest.Run(t, fixture("valueswitch"), "repro/internal/vswitchfixture", ValueSwitch)
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, fixture("metricname"), "repro/internal/metricfixture", MetricName)
}

func TestMetricNameExemptsTestSupportPackages(t *testing.T) {
	analysistest.Run(t, fixture("metricname_testpkg"), "repro/internal/metricfixturetest", MetricName)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, fixture("lockcheck"), "repro/internal/lockfixture", LockCheck)
}

func TestBatchOwn(t *testing.T) {
	analysistest.Run(t, fixture("batchown"), "repro/internal/batchfixture", BatchOwn)
}

func TestCursorClose(t *testing.T) {
	analysistest.Run(t, fixture("cursorclose"), "repro/internal/cursorfixture", CursorClose)
}

func TestCursorCloseSkipsExternalPackages(t *testing.T) {
	// Outside repro/internal/ the analyzer is silent: same fixture, no
	// findings expected, so any report fails as unexpected.
	analysistest.Run(t, fixture("cursorclose_external"), "repro/tools/cursortoolfixture", CursorClose)
}

func TestSpanPair(t *testing.T) {
	analysistest.Run(t, fixture("spanpair"), "repro/internal/spanfixture", SpanPair)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, fixture("ctxflow"), "repro/internal/ctxfixture", CtxFlow)
}

func TestCtxFlowExemptsTestSupportPackages(t *testing.T) {
	analysistest.Run(t, fixture("ctxflow_testpkg"), "repro/internal/ctxfixturetest", CtxFlow)
}

func TestPlanImmut(t *testing.T) {
	analysistest.Run(t, fixture("planimmut"), "repro/internal/immutfixture", PlanImmut)
}

func TestLockCheckMultipleGuards(t *testing.T) {
	analysistest.Run(t, fixture("lockcheck_multi"), "repro/internal/lockmultifixture", LockCheck)
}

func TestLockCheckSkipsUnguardedPackages(t *testing.T) {
	analysistest.Run(t, fixture("lockcheck_unguarded"), "repro/internal/unguardedfixture", LockCheck)
}
