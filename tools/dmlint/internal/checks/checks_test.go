package checks

import (
	"path/filepath"
	"testing"

	"repro/tools/dmlint/internal/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, fixture("nopanic"), "repro/internal/nopanicfixture", NoPanic)
}

func TestNoPanicExemptsToolPackages(t *testing.T) {
	// Same panicking shape, but outside repro/internal/: no findings, so the
	// fixture carries no want annotations.
	analysistest.Run(t, fixture("nopanic_tools"), "repro/tools/toolfixture", NoPanic)
}

func TestNoPanicExemptsTestSupportPackages(t *testing.T) {
	analysistest.Run(t, fixture("nopanic_testpkg"), "repro/internal/fixturetest", NoPanic)
}

func TestWrapCheck(t *testing.T) {
	analysistest.Run(t, fixture("wrapcheck"), "repro/internal/wrapfixture", WrapCheck)
}

func TestValueSwitch(t *testing.T) {
	analysistest.Run(t, fixture("valueswitch"), "repro/internal/vswitchfixture", ValueSwitch)
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, fixture("lockcheck"), "repro/internal/lockfixture", LockCheck)
}

func TestLockCheckSkipsUnguardedPackages(t *testing.T) {
	analysistest.Run(t, fixture("lockcheck_unguarded"), "repro/internal/unguardedfixture", LockCheck)
}
