package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// BatchOwn enforces the Batch ownership rule of the vectorized cursor
// contract (rowset.BatchCursor): the Batch returned by NextBatch — and its
// Rows/Sel slices — is producer-owned scratch, valid only until the next
// NextBatch or Close. A consumer that stores the batch (or either slice)
// into a field, slice element, map, package variable, channel, or composite
// literal aliases a buffer the producer will overwrite, which corrupts data
// at a distance with no race for the detector to see. Individual Row values
// ARE retainable (engine rows are immutable), so element-copying appends
// (`append(dst, b.Rows...)`) and `b.Row(i)` escapes are fine; it is the
// slice identity that must not outlive the pull.
//
// Methods named NextBatch are exempt: producers legitimately keep their
// reused buffers in fields and return them.
var BatchOwn = &analysis.Analyzer{
	Name: "batchown",
	Doc:  "a Batch from NextBatch must not be retained past the next NextBatch/Close",
	Run:  runBatchOwn,
}

func runBatchOwn(p *analysis.Pass) error {
	if !strings.HasPrefix(p.Pkg.Path(), "repro/internal/") {
		return nil
	}
	if p.Pkg.Path() == "repro/internal/rowset" {
		// The contract's home package hosts the adapters (RowCursor's
		// batchRowCursor) whose whole job is to hold the current batch
		// between their own pulls — they ARE the pull loop the rule
		// protects, which a per-function analysis cannot see.
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "NextBatch" {
				continue
			}
			checkBatchOwn(p, fd)
		}
	}
	return nil
}

func checkBatchOwn(p *analysis.Pass, fd *ast.FuncDecl) {
	tainted := collectBatchVars(p, fd)
	if len(tainted) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				rhs := pairedRhs(x, i)
				if rhs == nil || !batchRef(p, tainted, rhs) {
					continue
				}
				if isLocalIdent(p, lhs) {
					continue // local alias: taint propagation covers it
				}
				p.Reportf(rhs.Pos(), "batch slice from NextBatch stored outside the pull loop: the producer overwrites it on the next NextBatch; copy the rows out (append(dst, b.Rows...) or b.Row(i))")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
				for i, arg := range x.Args[1:] {
					if !batchRef(p, tainted, arg) {
						continue
					}
					// append(dst, b.Rows...) copies the Row headers out of the
					// producer's buffer — that is the sanctioned idiom.
					if x.Ellipsis != token.NoPos && i+1 == len(x.Args)-1 && isBatchSliceSel(arg) {
						continue
					}
					p.Reportf(arg.Pos(), "batch slice from NextBatch appended by reference: the producer overwrites it on the next NextBatch; append its elements (b.Rows...) instead")
				}
			}
		case *ast.SendStmt:
			if batchRef(p, tainted, x.Value) {
				p.Reportf(x.Value.Pos(), "batch from NextBatch sent on a channel: the receiver sees a buffer the producer overwrites on the next NextBatch; copy the rows out first")
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if batchRef(p, tainted, v) {
					p.Reportf(v.Pos(), "batch from NextBatch captured in a composite literal: the value aliases a buffer the producer overwrites on the next NextBatch; copy the rows out first")
				}
			}
		}
		return true
	})
}

// collectBatchVars seeds the tainted set with variables assigned from a
// NextBatch call, then propagates through plain local aliasing assignments
// (`rows := b.Rows`) to a fixpoint.
func collectBatchVars(p *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Seed: b, err := x.NextBatch() (or b := / b = forms).
			if len(as.Rhs) == 1 && isNextBatchCall(as.Rhs[0]) {
				if taintIdent(p, tainted, as.Lhs[0]) {
					changed = true
				}
				return true
			}
			// Propagate: local := b / local := b.Rows / local = b.Sel.
			for i, lhs := range as.Lhs {
				rhs := pairedRhs(as, i)
				if rhs == nil || !batchRef(p, tainted, rhs) {
					continue
				}
				if taintIdent(p, tainted, lhs) {
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// pairedRhs returns the RHS expression feeding as.Lhs[i], or nil when the
// assignment is a multi-value unpacking (function call, map read) whose
// components cannot alias a batch slice wholesale.
func pairedRhs(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	return nil
}

func isNextBatchCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "NextBatch"
}

// batchRef reports whether e denotes a tainted batch or one of its slices:
// a tainted identifier, or a .Rows/.Sel selection on one.
func batchRef(p *analysis.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return tainted[p.Info.ObjectOf(x)]
	case *ast.SelectorExpr:
		if x.Sel.Name != "Rows" && x.Sel.Name != "Sel" {
			return false
		}
		return batchRef(p, tainted, x.X)
	}
	return false
}

// isBatchSliceSel reports whether e is a .Rows/.Sel selection (as opposed to
// a bare batch variable) — the only forms a sanctioned splat-append can take.
func isBatchSliceSel(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && (sel.Sel.Name == "Rows" || sel.Sel.Name == "Sel")
}

// taintIdent adds the object behind e (a plain, function-local identifier)
// to the tainted set, reporting whether the set grew.
func taintIdent(p *analysis.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil || tainted[obj] {
		return false
	}
	if v, ok := obj.(*types.Var); !ok || v.Parent() == p.Pkg.Scope() {
		return false // only function-local variables participate
	}
	tainted[obj] = true
	return true
}

// isLocalIdent reports whether lhs is a plain function-local identifier —
// the one assignment target that does not publish the batch.
func isLocalIdent(p *analysis.Pass, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := p.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	return ok && v.Parent() != p.Pkg.Scope()
}
