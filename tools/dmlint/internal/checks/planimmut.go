package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// PlanImmut enforces the immutability contract of types marked
//
//	//dmlint:immutable
//
// in their doc comment (compiled plans published to internal/plancache:
// one plan serves concurrent executions, so any post-construction write
// is a data race the epoch guard cannot see). Within the defining
// package:
//
//   - Fields of a marked type may be written only inside a constructor —
//     a function whose results include the marked type (compileSQL,
//     clone helpers). Everywhere else, mutation must go through cloning.
//   - Non-constructor functions must not return a reference-typed field
//     (slice, map, pointer) of a marked type directly, and must not take
//     a field's address: both alias the shared plan's innards to a
//     caller who may mutate them.
//
// The marker is checked in the type's defining package, where its
// unexported fields are reachable; cross-package writes are impossible
// for unexported fields and covered by the compiler.
var PlanImmut = &analysis.Analyzer{
	Name: "planimmut",
	Doc:  "types marked //dmlint:immutable reject writes and aliasing outside constructors",
	Run:  runPlanImmut,
}

func runPlanImmut(p *analysis.Pass) error {
	marked := collectImmutableTypes(p)
	if len(marked) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isCtor := isConstructor(p, fd, marked)
			checkImmutableWrites(p, fd, marked, isCtor)
		}
	}
	return nil
}

// collectImmutableTypes gathers the named types whose declaration carries
// the //dmlint:immutable marker.
func collectImmutableTypes(p *analysis.Pass) map[*types.TypeName]bool {
	marked := make(map[*types.TypeName]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declMarked := hasImmutableMarker(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !declMarked && !hasImmutableMarker(ts.Doc) && !hasImmutableMarker(ts.Comment) {
					continue
				}
				if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
					marked[tn] = true
				}
			}
		}
	}
	return marked
}

func hasImmutableMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "dmlint:immutable" {
			return true
		}
	}
	return false
}

// isConstructor reports whether fd's results include a marked type —
// the convention that makes a function part of the construction phase
// (compile functions, clone helpers).
func isConstructor(p *analysis.Pass, fd *ast.FuncDecl, marked map[*types.TypeName]bool) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		if tn := namedTypeName(tv.Type); tn != nil && marked[tn] {
			return true
		}
	}
	return false
}

// namedTypeName unwraps pointers and returns the *types.TypeName behind
// t, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// checkImmutableWrites reports field writes and aliasing escapes of
// marked types inside fd.
func checkImmutableWrites(p *analysis.Pass, fd *ast.FuncDecl, marked map[*types.TypeName]bool, isCtor bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if isCtor {
				return true
			}
			for _, lhs := range n.Lhs {
				if tn, field := immutableFieldAccess(p, lhs, marked); tn != nil {
					p.Reportf(lhs.Pos(), "write to field %s of immutable type %s outside a constructor; clone the %s instead",
						field, tn.Name(), tn.Name())
				}
			}
		case *ast.IncDecStmt:
			if isCtor {
				return true
			}
			if tn, field := immutableFieldAccess(p, n.X, marked); tn != nil {
				p.Reportf(n.X.Pos(), "write to field %s of immutable type %s outside a constructor; clone the %s instead",
					field, tn.Name(), tn.Name())
			}
		case *ast.UnaryExpr:
			if isCtor {
				return true
			}
			if n.Op.String() != "&" {
				return true
			}
			if tn, field := immutableFieldAccess(p, n.X, marked); tn != nil {
				p.Reportf(n.Pos(), "address of field %s aliases immutable type %s; copy the value instead",
					field, tn.Name())
			}
		case *ast.ReturnStmt:
			if isCtor {
				return true
			}
			for _, r := range n.Results {
				tn, field := immutableFieldAccess(p, r, marked)
				if tn == nil {
					continue
				}
				if tv, ok := p.Info.Types[r]; ok && isReferenceType(tv.Type) {
					p.Reportf(r.Pos(), "returning reference field %s aliases immutable type %s; return a copy",
						field, tn.Name())
				}
			}
		}
		return true
	})
}

// immutableFieldAccess reports whether expr selects a field of a marked
// type, returning the type and field name.
func immutableFieldAccess(p *analysis.Pass, expr ast.Expr, marked map[*types.TypeName]bool) (*types.TypeName, string) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	tn := namedTypeName(s.Recv())
	if tn == nil || !marked[tn] {
		return nil, ""
	}
	return tn, sel.Sel.Name
}

// isReferenceType reports whether t shares underlying storage when
// copied: slices, maps, pointers, and channels.
func isReferenceType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}
