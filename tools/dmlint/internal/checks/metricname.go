package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/dmlint/internal/analysis"
)

// MetricName reports metric registrations whose name (or vec label key) is a
// string literal or locally computed value instead of a constant from the
// obs package's name catalog (names.go). The catalog is what keeps the
// dimensional surface coherent: every name appears once, gets HELP text,
// renders under one Prometheus family, and is greppable from a dashboard
// back to the registration site. An inline literal silently forks a second
// spelling of the same metric — or a metric with no catalog entry at all.
//
// The rule applies to Registry.Counter, Registry.Gauge, Registry.Histogram,
// Registry.CounterVec, and Registry.HistogramVec call sites in
// repro/internal/... packages; the obs package itself (which declares the
// catalog and tests the registry with throwaway names) is exempt, as are
// test-support packages.
var MetricName = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "metric registrations must use name constants from the obs catalog",
	Run:  runMetricName,
}

// metricMethods maps registry method names to how many leading string
// arguments must come from the catalog (name for scalars; name and label key
// for vecs).
var metricMethods = map[string]int{
	"Counter":      1,
	"Gauge":        1,
	"Histogram":    1,
	"CounterVec":   2,
	"HistogramVec": 2,
}

const obsPkgPath = "repro/internal/obs"

func runMetricName(p *analysis.Pass) error {
	path := p.Pkg.Path()
	if !strings.HasPrefix(path, "repro/internal/") || path == obsPkgPath {
		return nil
	}
	if strings.HasSuffix(p.Pkg.Name(), "test") {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			nargs, ok := metricMethods[sel.Sel.Name]
			if !ok || !isObsRegistry(p.Info.Types[sel.X].Type) {
				return true
			}
			for i := 0; i < nargs && i < len(call.Args); i++ {
				arg := call.Args[i]
				if isObsConst(p.Info, arg) {
					continue
				}
				what := "name"
				if i == 1 {
					what = "label key"
				}
				p.Reportf(arg.Pos(), "metric %s passed to Registry.%s must be a constant from %s (names.go), not %s",
					what, sel.Sel.Name, obsPkgPath, describeArg(arg))
			}
			return true
		})
	}
	return nil
}

// isObsRegistry reports whether t is repro/internal/obs.Registry or a
// pointer to it.
func isObsRegistry(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath
}

// isObsConst reports whether the expression resolves to a constant declared
// in the obs package. Selector form (obs.MetricFoo) is the normal spelling;
// a bare identifier covers dot-imports and aliases within obs-adjacent code.
func isObsConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return false
	}
	obj := info.Uses[id]
	c, ok := obj.(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Path() == obsPkgPath
}

// describeArg names the offending argument shape for the diagnostic.
func describeArg(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return "a string literal"
	case *ast.BinaryExpr:
		return "a computed string"
	case *ast.CallExpr:
		return "a computed string"
	case *ast.Ident:
		return "identifier " + e.Name
	case *ast.SelectorExpr:
		return "identifier " + e.Sel.Name
	}
	return "a non-constant expression"
}
