// Package ctxfixturetest is a test-support package (name ends in
// "test"): ctxflow leaves it alone, so the Background call below carries
// no want annotation.
package ctxfixturetest

import "context"

func MustContext() context.Context {
	return context.Background()
}
