// Package cursorfixture exercises the cursorclose analyzer: every
// acquired rowset.Cursor must reach Close (or an ownership transfer) on
// every path out of the function.
package cursorfixture

import (
	"errors"

	"repro/internal/rowset"
)

func open() rowset.Cursor { return nil }

func openErr() (rowset.Cursor, error) { return nil, nil }

func sink(c rowset.Cursor) {}

type holder struct {
	cur rowset.Cursor
}

func leakEarlyReturn(b bool) error {
	c := open()
	if b {
		return errors.New("early") // want "cursor c .*not released"
	}
	return c.Close()
}

func leakAtEnd() {
	c := open()
	_ = c != nil
} // want "cursor c .*not released"

func leakSwitch(k int) error {
	c := open()
	switch k {
	case 0:
		return c.Close()
	case 1:
		return nil // want "cursor c .*not released"
	}
	return c.Close()
}

func leakOverwrite() error {
	c := open()
	c = open() // want "cursor c .*overwritten while still unreleased"
	return c.Close()
}

func leakDiscard() {
	_ = open() // want "cursor returned by this call is discarded"
}

func leakLoop(items []int) {
	for range items {
		c := open()
		if c == nil {
			continue
		}
	} // want "cursor c .*end of loop iteration"
}

func goodDefer() error {
	c := open()
	defer c.Close()
	return nil
}

func goodErrPath() error {
	c, err := openErr()
	if err != nil {
		return err
	}
	defer c.Close()
	return nil
}

func goodNilGuard() {
	c := open()
	if c != nil {
		_ = c.Close()
	}
}

func goodBothBranches(b bool) error {
	c := open()
	if b {
		return c.Close()
	}
	return c.Close()
}

func goodTransferReturn() rowset.Cursor {
	c := open()
	return c
}

func goodTransferArg() {
	c := open()
	sink(c)
}

func goodTransferField(h *holder) {
	h.cur = open()
}

func goodWrap() rowset.Cursor {
	c := open()
	c2 := c // aliasing hands the obligation to c2
	return c2
}

func goodLoopClose(items []int) error {
	for range items {
		c := open()
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

// goodAllowed documents an ownership scheme the analyzer cannot see.
//
//dmlint:allow cursorclose — fixture: the harness closes this cursor.
func goodAllowed() {
	c := open()
	_ = c != nil
}
