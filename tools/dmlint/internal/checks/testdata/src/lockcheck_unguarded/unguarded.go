// Package unguardedfixture has no //dmlint:guard annotation, so lockcheck
// skips it entirely — even though it reads a mutex-adjacent field.
package unguardedfixture

import "sync"

type cache struct {
	mu   sync.Mutex
	data map[string]string
}

func (c *cache) get(k string) string {
	return c.data[k]
}
