// Package lockfixture exercises the lockcheck analyzer: functions touching
// guarded fields must acquire the declared mutex, carry a Locked suffix, or
// be explicitly allowlisted.
package lockfixture

import "sync"

// registry owns the guarded catalogue.
type registry struct {
	//dmlint:guard mu: registry.entries
	mu      sync.RWMutex
	entries map[string]int
}

func (r *registry) bad(name string) int {
	return r.entries[name] // want "without holding mu"
}

func (r *registry) badWrite(name string, v int) {
	r.entries[name] = v // want "accesses registry.entries"
}

func (r *registry) goodRead(name string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[name]
}

func (r *registry) goodWrite(name string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[name] = v
}

// lookupLocked declares the lock-transfer convention: the caller holds r.mu.
func (r *registry) lookupLocked(name string) int {
	return r.entries[name]
}

// allowed is reached only from goodRead's critical section.
//
//dmlint:allow lockcheck — fixture: only reachable while the caller holds r.mu.
func (r *registry) allowed(name string) int {
	return r.entries[name]
}

func (r *registry) cleanUnguardedField() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return 0
}
