// Package metricfixture exercises the metricname analyzer: registry
// registrations must take their metric names (and vec label keys) from the
// obs package's catalog constants, never inline literals.
package metricfixture

import (
	"repro/internal/obs"
)

const localName = "locally_declared_total"

func register(r *obs.Registry, dynamic string) {
	r.Counter(obs.MetricStatementsTotal)                      // catalog constant: fine
	r.Histogram(obs.MetricStatementLatency)                   // fine
	r.Gauge(obs.MetricAdmissionInFlight)                      // fine
	r.CounterVec(obs.MetricStatementsByClass, obs.LabelClass) // fine
	r.HistogramVec(obs.MetricLatencyByClass, obs.LabelClass)  // fine
	r.Counter("inline_literal_total")                         // want "must be a constant from repro/internal/obs .* a string literal"
	r.Histogram("inline_hist_us")                             // want "must be a constant from repro/internal/obs"
	r.Gauge("inline_gauge")                                   // want "must be a constant from repro/internal/obs"
	r.Counter(localName)                                      // want "must be a constant from repro/internal/obs .* identifier localName"
	r.Counter(dynamic)                                        // want "must be a constant from repro/internal/obs .* identifier dynamic"
	r.Counter(obs.MetricStatementsTotal + "_fork")            // want "must be a constant from repro/internal/obs .* a computed string"
	r.CounterVec(obs.MetricStatementsByOrigin, "origin")      // want "label key .* must be a constant from repro/internal/obs .* a string literal"
	r.HistogramVec("inline_vec_us", obs.LabelClass)           // want "must be a constant from repro/internal/obs .* a string literal"
	notARegistry{}.Counter("free")                            // different receiver type: not our rule
	//dmlint:allow metricname — fixture: sanctioned one-off registration.
	r.Counter("suppressed_total")
}

// notARegistry has the same method shape but is not obs.Registry; calls on it
// are out of scope.
type notARegistry struct{}

func (notARegistry) Counter(name string) {}
