// Package metricfixturetest mimics a test-support package (name ends in
// "test"): throwaway metric names are fine there, so the analyzer stays
// silent and this fixture carries no want annotations.
package metricfixturetest

import (
	"repro/internal/obs"
)

func register(r *obs.Registry) {
	r.Counter("scratch_total")
	r.CounterVec("scratch_by_label", "label")
}
