// Package immutfixture exercises the planimmut analyzer: a type marked
// //dmlint:immutable accepts field writes only inside constructors
// (functions whose results include the type) and must not leak aliasable
// reference fields.
package immutfixture

// box is a compiled artifact shared across concurrent executions.
//
//dmlint:immutable
type box struct {
	name string
	hits int
	deps []int
}

// mutable has no marker: writes anywhere are fine.
type mutable struct {
	n int
}

// newBox is a constructor (returns *box): writes allowed.
func newBox(name string, deps []int) *box {
	b := &box{}
	b.name = name
	b.deps = deps
	return b
}

// withName clones — also a constructor by signature.
func (b *box) withName(name string) *box {
	nb := &box{deps: b.deps}
	nb.name = name
	return nb
}

func badWrite(b *box) {
	b.name = "x" // want "write to field name of immutable type box"
}

func badIncrement(b *box) {
	b.hits++ // want "write to field hits of immutable type box"
}

func badAliasReturn(b *box) []int {
	return b.deps // want "returning reference field deps aliases immutable type box"
}

func badAddr(b *box) *string {
	return &b.name // want "address of field name aliases immutable type box"
}

func goodRead(b *box) string {
	return b.name
}

func goodValueReturn(b *box) int {
	return b.hits
}

func goodUnmarked(m *mutable) {
	m.n = 7
}

// goodAllowed is a sanctioned migration shim.
//
//dmlint:allow planimmut — fixture: migration shim, deleted next PR.
func goodAllowed(b *box) {
	b.name = "y"
}
