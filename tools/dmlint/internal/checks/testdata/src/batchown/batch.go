// Package batchfixture exercises the batchown analyzer: a Batch returned
// by NextBatch (and its Rows/Sel slices) is producer-owned scratch and must
// not be retained past the next NextBatch/Close — storing it to a field,
// element, channel, or composite literal is a finding; copying the rows out
// (splat append, b.Row(i)) is the sanctioned idiom.
package batchfixture

import "repro/internal/rowset"

func open() rowset.BatchCursor { return nil }

type sink struct {
	last rowset.Batch
	rows []rowset.Row
	sel  []int
	all  [][]rowset.Row
}

// producer's own NextBatch legitimately returns its reused field buffer.
func (s *sink) NextBatch() (rowset.Batch, error) {
	return rowset.Batch{Rows: s.rows, Sel: s.sel}, nil
}

func leakBatchField(s *sink) error {
	bc := open()
	b, err := bc.NextBatch()
	if err != nil {
		return err
	}
	s.last = b // want "stored outside the pull loop"
	return nil
}

func leakRowsField(s *sink) {
	bc := open()
	b, _ := bc.NextBatch()
	s.rows = b.Rows // want "stored outside the pull loop"
}

func leakSelField(s *sink) {
	bc := open()
	b, _ := bc.NextBatch()
	s.sel = b.Sel // want "stored outside the pull loop"
}

func leakThroughAlias(s *sink) {
	bc := open()
	b, _ := bc.NextBatch()
	rows := b.Rows
	s.rows = rows // want "stored outside the pull loop"
}

func leakAppendByReference(s *sink) {
	bc := open()
	b, _ := bc.NextBatch()
	s.all = append(s.all, b.Rows) // want "appended by reference"
}

func leakChannelSend(ch chan rowset.Batch) {
	bc := open()
	b, _ := bc.NextBatch()
	ch <- b // want "sent on a channel"
}

func leakCompositeLit() *sink {
	bc := open()
	b, _ := bc.NextBatch()
	return &sink{last: b} // want "captured in a composite literal"
}

func goodSplatAppend(s *sink) {
	bc := open()
	for {
		b, err := bc.NextBatch()
		if err != nil || b.Empty() {
			return
		}
		s.rows = append(s.rows, b.Rows...) // copies the Row headers: fine
	}
}

func goodRowRetention(s *sink) {
	bc := open()
	b, _ := bc.NextBatch()
	for i := 0; i < b.Len(); i++ {
		s.rows = append(s.rows, b.Row(i)) // individual rows are retainable
	}
}

func goodLocalUse() int {
	bc := open()
	n := 0
	for {
		b, err := bc.NextBatch()
		if err != nil || b.Empty() {
			return n
		}
		rows := b.Rows // local alias, consumed before the next pull
		n += len(rows)
	}
}
