// Package wrapfixture exercises the wrapcheck analyzer: fmt.Errorf with an
// error operand must use %w so the chain survives errors.Is/As.
package wrapfixture

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func flaggedV(err error) error {
	return fmt.Errorf("open config: %v", err) // want "use %w"
}

func flaggedS(err error) error {
	return fmt.Errorf("step %d failed: %s", 3, err) // want "use %w"
}

func flaggedSentinel() error {
	return fmt.Errorf("lookup: %v", errSentinel) // want "use %w"
}

func cleanWrap(err error) error {
	return fmt.Errorf("open config: %w", err)
}

func cleanNonError(name string) error {
	return fmt.Errorf("no table named %q (%d candidates)", name, 0)
}

func cleanDynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}

func cleanStarWidth(err error) error {
	return fmt.Errorf("pad %*d: %w", 8, 42, err)
}

func cleanPercentLiteral(err error) error {
	return fmt.Errorf("100%% failure: %w", err)
}
