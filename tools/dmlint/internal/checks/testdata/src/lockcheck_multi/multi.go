// Package lockmultifixture exercises lockcheck with two guard annotations in
// one package: each guarded field is checked against its own mutex, and
// holding the other guard's mutex does not count.
package lockmultifixture

import "sync"

// catalog is swapped under commitMu.
type catalog struct {
	//dmlint:guard commitMu: catalog.models
	commitMu sync.Mutex
	models   map[string]int
}

// session owns a per-consumer registry under its own mu.
type session struct {
	//dmlint:guard mu: session.prepared
	mu       sync.Mutex
	prepared map[string]int
}

func (c *catalog) bad(name string) int {
	return c.models[name] // want "without holding commitMu"
}

func (c *catalog) good(name string) int {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	return c.models[name]
}

func (s *session) bad(name string) int {
	return s.prepared[name] // want "without holding mu"
}

func (s *session) good(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prepared[name]
}

// crossLock holds the wrong guard: commitMu does not cover session.prepared.
func crossLock(c *catalog, s *session, name string) int {
	c.commitMu.Lock()
	defer c.commitMu.Unlock()
	return c.models[name] + s.prepared[name] // want "without holding mu"
}
