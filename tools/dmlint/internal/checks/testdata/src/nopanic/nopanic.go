// Package nopanicfixture exercises the nopanic analyzer: library packages
// under repro/internal/ must return errors instead of panicking.
package nopanicfixture

import "errors"

func bad() {
	panic("boom") // want "panic in library package"
}

func badNested() error {
	f := func() {
		panic(errors.New("inner")) // want "return an error instead"
	}
	f()
	return nil
}

func clean() error {
	return errors.New("handled")
}

// sanctioned documents a corruption path the rule permits.
//
//dmlint:allow nopanic — fixture: documented corruption path, state already torn.
func sanctioned() {
	panic("corrupt")
}

func cleanShadowed() {
	// A shadowing identifier is not the builtin and must not be flagged.
	panic := func(string) {}
	panic("not the builtin")
}
