// Package vswitchfixture exercises the valueswitch analyzer: type switches
// over rowset.Value must cover all seven value kinds or carry a default.
package vswitchfixture

import (
	"time"

	"repro/internal/rowset"
)

func flaggedPartial(v rowset.Value) string {
	switch v.(type) { // want "misses .*time.Time"
	case int64:
		return "long"
	case string:
		return "text"
	}
	return ""
}

func flaggedBound(v rowset.Value) string {
	switch x := v.(type) { // want "add the missing cases or a default clause"
	case string:
		return x
	}
	return ""
}

func cleanDefault(v rowset.Value) string {
	switch v.(type) {
	case int64:
		return "long"
	default:
		return "other"
	}
}

func cleanExhaustive(v rowset.Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case int64:
		return "long"
	case float64:
		return "double"
	case string:
		return "text"
	case bool:
		return "bool"
	case time.Time:
		return "date"
	case *rowset.Rowset:
		return "table"
	}
	return ""
}

func cleanNotValue(v any) string {
	// The subject is plain any, not rowset.Value: out of scope.
	switch v.(type) {
	case int64:
		return "long"
	}
	return ""
}
