// Package fixturetest has a name ending in "test": it exists to panic on
// behalf of tests, so the nopanic rule exempts it even under repro/internal/.
package fixturetest

func MustDo(err error) {
	if err != nil {
		panic(err)
	}
}
