// Package ctxfixture exercises the ctxflow analyzer: no
// context.Background()/TODO() in internal/, no silently dropped context
// parameters, and no calls to a context-less variant when a *Context
// one exists.
package ctxfixture

import "context"

type engine struct{}

func (e *engine) Exec(q string) error { return nil }

func (e *engine) ExecContext(ctx context.Context, q string) error { return ctx.Err() }

func (e *engine) Close() error { return nil }

func badBackground() {
	ctx := context.Background() // want "context.Background"
	_ = ctx
}

func badTODO() {
	_ = context.TODO() // want "context.TODO"
}

func BadUnused(ctx context.Context) { // want "accepts a context.Context but never uses it"
	_ = ctx
}

func GoodUsed(ctx context.Context, e *engine) error {
	return e.ExecContext(ctx, "q")
}

func GoodUnexportedUnused(e *engine) error {
	// Unexported helpers without a context are fine; this one exists so
	// the fixture has a context-free call with no *Context variant.
	return e.Close()
}

func BadDropped(ctx context.Context, e *engine) error {
	if err := e.ExecContext(ctx, "warm"); err != nil {
		return err
	}
	return e.Exec("q") // want "Exec drops the in-scope context; call ExecContext"
}

// GoodAllowed is a deprecated wrapper kept for callers that have no
// context.
//
//dmlint:allow ctxflow — fixture: deprecated context-less wrapper.
func GoodAllowed() {
	_ = context.Background()
}
