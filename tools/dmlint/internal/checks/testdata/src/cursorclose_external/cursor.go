// Package cursortoolfixture holds the same leak shape as the cursorclose
// fixture but lives outside repro/internal/, where the analyzer is
// silent — so this file carries no want annotations.
package cursortoolfixture

import "repro/internal/rowset"

func open() rowset.Cursor { return nil }

func leakEarlyReturn(b bool) error {
	c := open()
	if b {
		return nil
	}
	return c.Close()
}
