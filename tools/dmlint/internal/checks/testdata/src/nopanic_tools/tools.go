// Package toolfixture sits outside repro/internal/ — the nopanic rule does
// not apply, so nothing here is flagged.
package toolfixture

func tool() {
	panic("command-line tools may panic")
}
