// Package spanfixture exercises the spanpair analyzer: spans must be
// ended on every path, and the statement-owned trace must never be
// captured by a worker goroutine.
package spanfixture

import (
	"context"
	"errors"

	"repro/internal/obs"
	"repro/internal/par"
)

func work() {}

func leakOnError(t *obs.Trace, b bool) error {
	sp := t.StartSpan("scan", "cases")
	if b {
		return errors.New("cancelled") // want "span sp .*not released"
	}
	t.EndSpan(sp)
	return nil
}

func leakAtEnd(t *obs.Trace) {
	sp := t.StartSpan("scan", "cases")
	_ = sp
} // want "span sp .*not released"

func goodDefer(t *obs.Trace) {
	sp := t.StartSpan("scan", "cases")
	defer t.EndSpan(sp)
	work()
}

func goodBothPaths(t *obs.Trace, b bool) error {
	sp := t.StartSpanStage(obs.Stage(0), "scan", "cases")
	if b {
		t.EndSpan(sp)
		return nil
	}
	t.EndSpan(sp)
	return nil
}

func goodTransfer(t *obs.Trace) {
	sp := t.StartSpan("scan", "cases")
	adopt(sp)
}

func adopt(sp *obs.Span) {}

func badGoroutineCapture(t *obs.Trace) {
	sp := t.StartSpan("scan", "cases")
	go func() {
		_ = sp // want "span sp is captured by a goroutine"
	}()
	t.EndSpan(sp)
}

func badTraceCapture(t *obs.Trace) error {
	return par.ForEachCtx(context.TODO(), 4, 2, func(i int) error {
		_ = t // want "trace t is captured by a par worker"
		return nil
	})
}

func goodWorkerOwnSpan(t *obs.Trace) {
	sp := t.StartSpan("scan", "cases")
	defer t.EndSpan(sp)
	go func() {
		work() // creates no spans, touches no trace: fine
	}()
}

// goodAllowedCapture documents a sanctioned exception.
//
//dmlint:allow spanpair — fixture: single-worker fallback runs on the statement goroutine.
func goodAllowedCapture(t *obs.Trace) {
	sp := t.StartSpan("scan", "cases")
	go func() {
		t.EndSpan(sp)
	}()
}
