// Package load lists and type-checks the module's packages without any
// dependency outside the standard library. It drives `go list -export -deps
// -json` to obtain each package's source files and the compiler's export
// data for every dependency, then type-checks with go/types using a gc
// importer whose lookup opens those export files. This is the stdlib
// replacement for golang.org/x/tools/go/packages, which this repository
// deliberately does not vendor.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Meta is the subset of `go list -json` output the checker needs.
type Meta struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Deps       []string
	DepOnly    bool
	Standard   bool
	Error      *ListError
}

// ListError is go list's per-package error report.
type ListError struct {
	Err string
}

// List runs `go list -e -export -deps -json` in dir for the given patterns
// and returns every reported package keyed by import path, plus the root
// (non-dependency) import paths in sorted order.
func List(dir string, patterns ...string) (map[string]*Meta, []string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	metas := make(map[string]*Meta)
	var roots []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		m := new(Meta)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		metas[m.ImportPath] = m
		if !m.DepOnly {
			roots = append(roots, m.ImportPath)
		}
	}
	sort.Strings(roots)
	return metas, roots, nil
}

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Meta  *Meta
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Importer returns a go/types importer that resolves compiled import data
// from the export files go list reported.
func Importer(fset *token.FileSet, metas map[string]*Meta) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		m, ok := metas[path]
		if !ok || m.Export == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(m.Export)
	})
}

// TypeCheck parses and type-checks the package described by meta, resolving
// its imports through the export data in metas.
func TypeCheck(meta *Meta, metas map[string]*Meta) (*Package, error) {
	if meta.Error != nil {
		return nil, fmt.Errorf("load: %s: %s", meta.ImportPath, meta.Error.Err)
	}
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", meta.ImportPath, err)
		}
		files = append(files, f)
	}
	return check(meta, fset, files, Importer(fset, metas))
}

// CheckFiles type-checks an explicit file set under the given import path —
// the entry point the fixture test harness uses for testdata packages that
// are not part of the module's build graph.
func CheckFiles(importPath string, fset *token.FileSet, files []*ast.File, metas map[string]*Meta) (*Package, error) {
	return check(&Meta{ImportPath: importPath, Name: packageName(files)}, fset, files, Importer(fset, metas))
}

func packageName(files []*ast.File) string {
	if len(files) > 0 {
		return files[0].Name.Name
	}
	return ""
}

func check(meta *Meta, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := conf.Check(meta.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: %s: type errors:\n\t%s", meta.ImportPath, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("load: %s: %v", meta.ImportPath, err)
	}
	return &Package{Meta: meta, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// ModuleRoot returns the directory containing the enclosing module's go.mod.
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("load: go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("load: not inside a module")
	}
	return filepath.Dir(gomod), nil
}
