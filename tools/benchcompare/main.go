// Command benchcompare diffs two dmbench -json reports (BENCH_PR*.json) and
// fails when any workload regresses in rows/sec by more than the allowed
// percentage. CI runs it as `make bench-compare` so a PR cannot silently give
// back throughput an earlier PR banked.
//
// Usage:
//
//	benchcompare -base BENCH_PR4.json -new BENCH_PR5.json [-max-regression 10]
//
// Workloads present in only one report are listed but never fail the run, so
// adding a workload does not require backfilling old baselines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	SchemaVersion int        `json:"schema_version"`
	Scale         int        `json:"scale"`
	Workloads     []workload `json:"workloads"`
}

type workload struct {
	Name       string  `json:"name"`
	Rows       int64   `json:"rows"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	basePath := flag.String("base", "", "baseline report (required)")
	newPath := flag.String("new", "", "candidate report (required)")
	maxRegression := flag.Float64("max-regression", 10, "largest tolerated rows/sec drop, percent")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	if base.Scale != cand.Scale {
		fmt.Fprintf(os.Stderr, "benchcompare: scale mismatch (base %d, new %d); ratios are not comparable\n",
			base.Scale, cand.Scale)
		os.Exit(1)
	}

	baseline := make(map[string]workload, len(base.Workloads))
	for _, w := range base.Workloads {
		baseline[w.Name] = w
	}

	failed := false
	fmt.Printf("%-16s %14s %14s %8s\n", "workload", "base rows/s", "new rows/s", "ratio")
	for _, w := range cand.Workloads {
		b, ok := baseline[w.Name]
		if !ok {
			fmt.Printf("%-16s %14s %14.0f %8s  (new workload)\n", w.Name, "-", w.RowsPerSec, "-")
			continue
		}
		delete(baseline, w.Name)
		ratio := w.RowsPerSec / b.RowsPerSec
		verdict := ""
		if ratio < 1-*maxRegression/100 {
			verdict = fmt.Sprintf("  REGRESSION (> %.0f%%)", *maxRegression)
			failed = true
		}
		fmt.Printf("%-16s %14.0f %14.0f %7.2fx%s\n", w.Name, b.RowsPerSec, w.RowsPerSec, ratio, verdict)
	}
	for name := range baseline {
		fmt.Printf("%-16s  (missing from %s)\n", name, *newPath)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcompare: rows/sec regression beyond %.0f%% — failing\n", *maxRegression)
		os.Exit(1)
	}
}
