GO ?= go

.PHONY: build test vet race bench-parallel check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector, including the concurrent
# predict-vs-retrain stress test in internal/provider.
race:
	$(GO) test -race ./...

# One pass of the parallel PREDICTION JOIN benchmark (workers=1/2/4/8),
# reporting rows/sec. Numbers are recorded in EXPERIMENTS.md.
bench-parallel:
	$(GO) test -run '^$$' -bench BenchmarkPredictionJoinParallel -benchtime=1x .

check: vet race bench-parallel
