GO ?= go

.PHONY: build test vet race bench-parallel bench-smoke bench-json bench-compare loadsmoke lint vulncheck check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full suite under the race detector, including the concurrent
# predict-vs-retrain stress test in internal/provider.
race:
	$(GO) test -race ./...

# One pass of the parallel PREDICTION JOIN benchmark (workers=1/2/4/8),
# reporting rows/sec. Numbers are recorded in EXPERIMENTS.md.
bench-parallel:
	$(GO) test -run '^$$' -bench BenchmarkPredictionJoinParallel -benchtime=1x .

# Instrumentation-overhead guard: fails when enabling the obs registry slows
# the PREDICTION JOIN scan by more than 10% over WithObsRegistry(nil). The
# instrumented side runs with the flight recorder considering every statement
# and the metrics-history ticker snapshotting, so the 10% budget prices in
# the whole recorder+history pipeline.
bench-smoke:
	BENCH_SMOKE=1 $(GO) test -run TestObsOverheadSmoke -v .

# Machine-readable benchmark report (schema documented in EXPERIMENTS.md).
# Overwrites BENCH_PR10.json with a single fresh run; the checked-in report
# is a per-workload best-of-N composite (see EXPERIMENTS.md "PR10"), so only
# commit a regeneration deliberately.
bench-json:
	$(GO) run ./cmd/dmbench -scale 500 -json BENCH_PR10.json

# Regression gate: diff the recorded reports. Fails on a >10% rows/sec drop
# in any workload (tools/benchcompare). Both baselines were measured on the
# same host in interleaved runs (EXPERIMENTS.md "PR10"); deliberately NOT a
# dependency of bench-json — a single fresh run on a noisy shared host would
# flap the gate, so re-measure with bench-json only when conditions allow.
bench-compare:
	$(GO) run ./tools/benchcompare -base BENCH_PR9.json -new BENCH_PR10.json -max-regression 10

# Concurrency smoke: five seconds of mixed dmload traffic (8 reader
# connections + a training loop) against an in-process dmserver. Fails on
# any statement error or zero throughput. -slo surfaces over-budget
# statements with their wire-correlated seq; -check-recorder then asserts
# $SYSTEM.DM_FLIGHT_RECORDER is non-empty and joins DM_QUERY_LOG on SEQ.
# No latency-ratio gate here: CI hosts are too small for stable
# tail-latency comparisons (the ratio is measured and recorded in
# EXPERIMENTS.md instead).
loadsmoke:
	$(GO) run ./cmd/dmload -conns 8 -duration 5s -scale 200 -slo 250ms -check-recorder

# Project-specific static analysis (tools/dmlint) plus formatting and vet.
# dmlint type-checks the module with the stdlib toolchain and enforces the
# invariants documented in DESIGN.md § Static analysis.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:" $$unformatted; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./tools/dmlint ./...

# Known-vulnerability scan. Gated on the binary being present: the scan
# needs network access for the vuln DB, so offline/sandboxed builds skip it
# rather than fail.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

check: lint vulncheck race bench-parallel
