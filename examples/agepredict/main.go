// Agepredict runs the paper's running example — the [Age Prediction] model
// of Sections 3.2 and 3.3 — end to end against the synthetic customer
// warehouse, executing the statements as the paper prints them: the CREATE
// with nested [Product Purchases] and RELATED TO, the INSERT INTO fed by a
// SHAPE statement, and the PREDICTION JOIN with its three-way ON clause.
//
//	go run ./examples/agepredict
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/provider"
	"repro/internal/rowset"
	"repro/internal/workload"
)

const customers = 2000

func main() {
	p, err := provider.New()
	if err != nil {
		log.Fatal(err)
	}
	sess := p.NewSession()
	if _, err := workload.Populate(p.DB, workload.Config{Customers: customers, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Warehouse: %d customers across Customers/Sales/Cars tables.\n\n", customers)

	// Section 3.2 — define the model (the paper's listing, comments included).
	create := `CREATE MINING MODEL [Age Prediction] (
		%Name of Model
		[Customer ID] LONG KEY,
		[Gender] TEXT DISCRETE,
		[Age] DOUBLE DISCRETIZED PREDICT, %prediction column
		[Product Purchases] TABLE(
			[Product Name] TEXT KEY,
			[Quantity] DOUBLE NORMAL CONTINUOUS,
			[Product Type] TEXT DISCRETE RELATED TO [Product Name]
		)) USING [Decision_Trees_101] %Mining Algorithm used`
	must(sess, create)
	fmt.Println("CREATE MINING MODEL [Age Prediction] — ok")

	// Section 3.3 — populate it from a SHAPE-assembled caseset.
	insert := `INSERT INTO [Age Prediction] ([Customer ID], [Gender], [Age],
		[Product Purchases]([Product Name], [Quantity], [Product Type]))
	SHAPE
		{SELECT [Customer ID], [Gender], [Age] FROM Customers ORDER BY [Customer ID]}
		APPEND (
			{SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales ORDER BY [CustID]}
			RELATE [Customer ID] To [CustID]) AS [Product Purchases]`
	rs := must(sess, insert)
	fmt.Printf("INSERT INTO — consumed %v cases\n\n", rs.Row(0)[0])

	// Section 3.3 — predict age for customers whose age is "unknown".
	predict := `SELECT TOP 8 t.[Customer ID], [Age Prediction].[Age],
		PredictProbability([Age]) AS prob
	FROM [Age Prediction]
	PREDICTION JOIN (SHAPE {
		SELECT [Customer ID], [Gender] FROM Customers ORDER BY [Customer ID]}
		APPEND ({SELECT [CustID], [Product Name], [Quantity] FROM Sales ORDER BY [CustID]}
		RELATE [Customer ID] To [CustID]) AS [Product Purchases]) as t
	ON [Age Prediction].Gender = t.Gender and
		[Age Prediction].[Product Purchases].[Product Name] = t.[Product Purchases].[Product Name] and
		[Age Prediction].[Product Purchases].[Quantity] = t.[Product Purchases].[Quantity]`
	rs = must(sess, predict)
	fmt.Println("PREDICTION JOIN — first 8 customers, predicted age bucket:")
	fmt.Print(rs.String())

	// The richer output Section 3.2.4 describes: the full histogram.
	rs = must(sess, `SELECT PredictHistogram([Age]) AS histogram
	FROM [Age Prediction] NATURAL PREDICTION JOIN
		(SHAPE {SELECT 1 AS [Customer ID], 'Male' AS Gender}
		 APPEND ({SELECT 1 AS CustID, 'Beer' AS [Product Name], 6.0 AS Quantity}
			RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t`)
	fmt.Println("\nHistogram for a male beer-buyer (Section 3.2.4's \"wealth of information\"):")
	fmt.Print(rs.Row(0)[0].(*rowset.Rowset).String())

	// Browse the model (Section 3.3).
	rs = must(sess, "SELECT * FROM [Age Prediction].CONTENT")
	fmt.Printf("\nModel content: %d browsable nodes (SELECT * FROM [Age Prediction].CONTENT)\n", rs.Len())
}

func must(s *provider.Session, cmd string) *rowset.Rowset {
	rs, err := s.Execute(context.Background(), cmd)
	if err != nil {
		log.Fatalf("%v\nstatement:\n%s", err, cmd)
	}
	return rs
}
