// Sqldriver shows the provider through database/sql — the Go counterpart of
// the paper's thesis that mining should live behind the data-access API
// developers already use. No provider types appear below the import block:
// everything happens through sql.DB, strings, and Scan.
//
//	go run ./examples/sqldriver
package main

import (
	"database/sql"
	"fmt"
	"log"

	_ "repro/internal/dmdriver" // registers the "oledbdm" driver
)

func main() {
	db, err := sql.Open("oledbdm", "memory:example")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	exec := func(q string, args ...any) sql.Result {
		res, err := db.Exec(q, args...)
		if err != nil {
			log.Fatalf("%v\nstatement: %s", err, q)
		}
		return res
	}

	// Stage relational data with placeholders, like any Go database app.
	exec("CREATE TABLE Visits (UserID LONG, Country TEXT, Pages DOUBLE, Converted TEXT)")
	seed := []struct {
		id        int64
		country   string
		pages     float64
		converted string
	}{}
	for i := int64(1); i <= 400; i++ {
		country, pages, conv := "DE", 3.0+float64(i%7), "no"
		if i%3 == 0 {
			country = "US"
			pages += 9
			conv = "yes"
		}
		seed = append(seed, struct {
			id        int64
			country   string
			pages     float64
			converted string
		}{i, country, pages, conv})
	}
	stmt, err := db.Prepare("INSERT INTO Visits VALUES (?, ?, ?, ?)")
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range seed {
		if _, err := stmt.Exec(s.id, s.country, s.pages, s.converted); err != nil {
			log.Fatal(err)
		}
	}
	stmt.Close()

	// Mining models are just more statements.
	exec(`CREATE MINING MODEL [Conversion] (
		[UserID] LONG KEY,
		[Country] TEXT DISCRETE,
		[Pages] DOUBLE CONTINUOUS,
		[Converted] TEXT DISCRETE PREDICT
	) USING [Naive_Bayes]`)
	res := exec(`INSERT INTO [Conversion] ([UserID], [Country], [Pages], [Converted])
		SELECT UserID, Country, Pages, Converted FROM Visits`)
	n, _ := res.RowsAffected()
	fmt.Printf("Trained [Conversion] on %d visits.\n\n", n)

	// Predictions scan like any query — with placeholders in the input.
	rows, err := db.Query(`SELECT t.Country, t.Pages,
			Predict([Converted]) AS will_convert,
			PredictProbability([Converted], 'yes') AS p_yes
		FROM [Conversion] NATURAL PREDICTION JOIN
			(SELECT ? AS Country, ? AS Pages) AS t`, "US", 12.0)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var country, pred string
		var pages, pYes float64
		if err := rows.Scan(&country, &pages, &pred, &pYes); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("visitor from %s reading %.0f pages → converts? %s (P(yes)=%.2f)\n",
			country, pages, pred, pYes)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// Schema rowsets answer "what can this provider do?" over the same API.
	var svc, desc string
	var p1, p2, p3 bool
	srows, err := db.Query("SELECT * FROM $SYSTEM.MINING_SERVICES")
	if err != nil {
		log.Fatal(err)
	}
	defer srows.Close()
	fmt.Println("\nInstalled mining services:")
	for srows.Next() {
		if err := srows.Scan(&svc, &desc, &p1, &p2, &p3); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %s\n", svc, desc)
	}
}
