// Segmentation clusters the customer warehouse — the paper's "segmentation"
// capability — and shows the two things the API makes easy: assigning new
// cases to clusters with the Cluster()/ClusterProbability() prediction
// functions, and browsing cluster profiles through the content rowset.
//
//	go run ./examples/segmentation
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/provider"
	"repro/internal/rowset"
	"repro/internal/workload"
)

func main() {
	p, err := provider.New()
	if err != nil {
		log.Fatal(err)
	}
	sess := p.NewSession()
	if _, err := workload.Populate(p.DB, workload.Config{Customers: 3000, Seed: 3}); err != nil {
		log.Fatal(err)
	}

	must(sess, `CREATE MINING MODEL [Customer Segments] (
		[Customer ID] LONG KEY,
		[Age] DOUBLE CONTINUOUS,
		[Product Purchases] TABLE([Product Name] TEXT KEY)
	) USING [Clustering] (CLUSTER_COUNT = 3, SEED = 7)`)

	must(sess, `INSERT INTO [Customer Segments] ([Customer ID], [Age],
		[Product Purchases]([Product Name]))
	SHAPE {SELECT [Customer ID], Age FROM Customers ORDER BY [Customer ID]}
	APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
		RELATE [Customer ID] TO [CustID]) AS [Product Purchases]`)
	fmt.Println("Clustered 3000 customers into 3 segments.")

	// Assign archetypal new customers to segments.
	fmt.Println("\nSegment assignment for three new customers:")
	for _, c := range []struct {
		desc  string
		age   float64
		items []string
	}{
		{"22-year-old beer+chips buyer", 22, []string{"Beer", "Chips"}},
		{"39-year-old milk+diapers buyer", 39, []string{"Milk", "Diapers"}},
		{"50-year-old wine+laptop buyer", 50, []string{"Wine", "Laptop"}},
	} {
		stageBasket(sess, c.items)
		rs := must(sess, fmt.Sprintf(`SELECT Cluster() AS segment, ClusterProbability() AS prob
		FROM [Customer Segments] NATURAL PREDICTION JOIN
			(SHAPE {SELECT 1 AS [Customer ID], %g AS Age}
			 APPEND ({SELECT CustID, [Product Name] FROM BasketInput ORDER BY CustID}
				RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t`, c.age))
		fmt.Printf("  %-32s → %v (p=%.2f)\n", c.desc, rs.Row(0)[0], rs.Row(0)[1])
	}

	// Browse cluster profiles.
	content := must(sess, "SELECT * FROM [Customer Segments].CONTENT")
	fmt.Println("\nCluster profiles (top features per centroid):")
	typeOrd, _ := content.Schema().Lookup("NODE_TYPE")
	capOrd, _ := content.Schema().Lookup("NODE_CAPTION")
	supOrd, _ := content.Schema().Lookup("NODE_SUPPORT")
	distOrd, _ := content.Schema().Lookup("NODE_DISTRIBUTION")
	for _, r := range content.Rows() {
		if r[typeOrd] != int64(5) { // NodeCluster
			continue
		}
		fmt.Printf("  %v (%.0f customers):\n", r[capOrd], r[supOrd])
		dist := r[distOrd].(*rowset.Rowset)
		for i := 0; i < dist.Len() && i < 4; i++ {
			fmt.Printf("    %v (weight %.2f)\n", dist.Row(i)[0], dist.Row(i)[2])
		}
	}
}

func stageBasket(sess *provider.Session, items []string) {
	if _, err := sess.Execute(context.Background(), "DELETE FROM BasketInput"); err != nil {
		must(sess, "CREATE TABLE BasketInput (CustID LONG, [Product Name] TEXT)")
	}
	for _, it := range items {
		must(sess, fmt.Sprintf("INSERT INTO BasketInput VALUES (1, '%s')", it))
	}
}

func must(s *provider.Session, cmd string) *rowset.Rowset {
	rs, err := s.Execute(context.Background(), cmd)
	if err != nil {
		log.Fatalf("%v\nstatement:\n%s", err, cmd)
	}
	return rs
}
