// Marketbasket builds the paper's "set of products that the customer is
// likely to buy" scenario (Section 3.2.4): an association model over the
// nested [Product Purchases] table, mined with Apriori, queried through
// Predict on the TABLE column and browsed as itemsets and rules.
//
//	go run ./examples/marketbasket
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/provider"
	"repro/internal/rowset"
	"repro/internal/workload"
)

func main() {
	p, err := provider.New()
	if err != nil {
		log.Fatal(err)
	}
	sess := p.NewSession()
	if _, err := workload.Populate(p.DB, workload.Config{Customers: 3000, Seed: 7}); err != nil {
		log.Fatal(err)
	}

	must(sess, `CREATE MINING MODEL [Market Baskets] (
		[Customer ID] LONG KEY,
		[Product Purchases] TABLE(
			[Product Name] TEXT KEY,
			[Product Type] TEXT DISCRETE RELATED TO [Product Name]
		) PREDICT
	) USING [Association_Rules] (MINIMUM_SUPPORT = 0.05, MINIMUM_PROBABILITY = 0.5)`)

	must(sess, `INSERT INTO [Market Baskets] ([Customer ID],
		[Product Purchases]([Product Name], [Product Type]))
	SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
	APPEND ({SELECT CustID, [Product Name], [Product Type] FROM Sales ORDER BY CustID}
		RELATE [Customer ID] TO [CustID]) AS [Product Purchases]`)
	fmt.Println("Trained [Market Baskets] over 3000 customer baskets.")

	// Recommendations for three different baskets. Each basket is staged in
	// a scratch table and fed to the model as a nested SHAPE input.
	must(sess, "CREATE TABLE BasketInput (CustID LONG, [Product Name] TEXT)")
	for _, basket := range [][]string{
		{"Beer"},
		{"Milk", "Bread"},
		{"Wine", "Laptop"},
	} {
		must(sess, "DELETE FROM BasketInput")
		for _, item := range basket {
			must(sess, fmt.Sprintf("INSERT INTO BasketInput VALUES (1, '%s')", item))
		}
		rs := must(sess, `SELECT Predict([Product Purchases], 3) AS recs
		FROM [Market Baskets] NATURAL PREDICTION JOIN
			(SHAPE {SELECT 1 AS [Customer ID]}
			 APPEND ({SELECT CustID, [Product Name] FROM BasketInput ORDER BY CustID}
				RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t`)
		recs := rs.Row(0)[0].(*rowset.Rowset)
		fmt.Printf("\nBasket %v → top recommendations:\n%s", basket, recs.String())
	}

	// Browse the rule base (Section 3.3: content as a graph; here rules).
	content := must(sess, "SELECT * FROM [Market Baskets].CONTENT")
	fmt.Printf("\nRule/itemset content nodes: %d. Strongest rules:\n", content.Len())
	typeOrd, _ := content.Schema().Lookup("NODE_TYPE")
	capOrd, _ := content.Schema().Lookup("NODE_CAPTION")
	scoreOrd, _ := content.Schema().Lookup("NODE_SCORE")
	shown := 0
	for _, r := range content.Rows() {
		if r[typeOrd] == int64(6) && shown < 5 { // NodeRule
			fmt.Printf("  %-28s confidence %.2f\n", r[capOrd], r[scoreOrd])
			shown++
		}
	}
}

func must(s *provider.Session, cmd string) *rowset.Rowset {
	rs, err := s.Execute(context.Background(), cmd)
	if err != nil {
		log.Fatalf("%v\nstatement:\n%s", err, cmd)
	}
	return rs
}
