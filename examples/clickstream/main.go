// Clickstream demonstrates the paper's "sequence analysis" capability: a
// Sequence_Analysis model over a nested TABLE whose rows are ordered by a
// SEQUENCE_TIME column. The model learns page-to-page transitions from
// session logs and predicts where a live session is headed.
//
//	go run ./examples/clickstream
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/provider"
	"repro/internal/rowset"
)

func main() {
	p, err := provider.New()
	if err != nil {
		log.Fatal(err)
	}
	sess := p.NewSession()

	// Session logs: most sessions follow home → search → product →
	// checkout, with some wandering back to search.
	must(sess, "CREATE TABLE Visits (SessionID LONG, Step LONG, Page TEXT)")
	rng := rand.New(rand.NewSource(17))
	var b strings.Builder
	b.WriteString("INSERT INTO Visits VALUES ")
	first := true
	write := func(session, step int, page string) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "(%d, %d, '%s')", session, step, page)
	}
	for s := 1; s <= 500; s++ {
		page, step := "home", 0
		write(s, step, page)
		for page != "checkout" && step < 8 {
			step++
			switch page {
			case "home":
				page = "search"
			case "search":
				if rng.Float64() < 0.75 {
					page = "product"
				} else {
					page = "home"
				}
			case "product":
				switch {
				case rng.Float64() < 0.55:
					page = "checkout"
				case rng.Float64() < 0.5:
					page = "search"
				default:
					page = "product"
				}
			}
			write(s, step, page)
		}
	}
	must(sess, b.String())

	must(sess, `CREATE MINING MODEL [Navigation] (
		[SessionID] LONG KEY,
		[Pages] TABLE(
			[Page] TEXT KEY,
			[Step] LONG SEQUENCE_TIME
		) PREDICT
	) USING [Sequence_Analysis]`)
	must(sess, `INSERT INTO [Navigation] ([SessionID], [Pages]([Page], [Step]))
	SHAPE {SELECT DISTINCT SessionID FROM Visits ORDER BY SessionID}
	APPEND ({SELECT SessionID AS SID, Page, Step FROM Visits ORDER BY SID}
		RELATE [SessionID] TO [SID]) AS [Pages]`)
	fmt.Println("Trained [Navigation] on 500 sessions.")

	// Where is a session headed from each page?
	must(sess, "CREATE TABLE Live (SID LONG, Page TEXT, Step LONG)")
	for _, trail := range [][]string{
		{"home"},
		{"home", "search"},
		{"home", "search", "product"},
	} {
		must(sess, "DELETE FROM Live")
		for i, pg := range trail {
			must(sess, fmt.Sprintf("INSERT INTO Live VALUES (1, '%s', %d)", pg, i))
		}
		rs := must(sess, `SELECT Predict([Pages], 2) AS nxt FROM [Navigation]
		NATURAL PREDICTION JOIN
			(SHAPE {SELECT 1 AS SessionID}
			 APPEND ({SELECT SID, Page, Step FROM Live ORDER BY SID}
				RELATE [SessionID] TO [SID]) AS [Pages]) AS t`)
		nxt := rs.Row(0)[0].(*rowset.Rowset)
		fmt.Printf("\nsession so far %v → likely next:\n%s", trail, nxt.String())
	}

	// The learned transition graph, straight from model content.
	content := must(sess, "SELECT * FROM [Navigation].CONTENT")
	fmt.Println("\nTransition graph (per-state distributions):")
	typeOrd, _ := content.Schema().Lookup("NODE_TYPE")
	capOrd, _ := content.Schema().Lookup("NODE_CAPTION")
	distOrd, _ := content.Schema().Lookup("NODE_DISTRIBUTION")
	for _, r := range content.Rows() {
		if r[typeOrd] != int64(3) { // state nodes
			continue
		}
		dist := r[distOrd].(*rowset.Rowset)
		if dist.Len() == 0 {
			continue
		}
		fmt.Printf("  %-10v", r[capOrd])
		for i := 0; i < dist.Len() && i < 3; i++ {
			fmt.Printf("  %v (%.2f)", dist.Row(i)[0], dist.Row(i)[2])
		}
		fmt.Println()
	}
}

func must(s *provider.Session, cmd string) *rowset.Rowset {
	rs, err := s.Execute(context.Background(), cmd)
	if err != nil {
		log.Fatalf("%v\nstatement:\n%.300s", err, cmd)
	}
	return rs
}
