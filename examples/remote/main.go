// Remote reproduces Figure 1 of the paper in one process: a provider served
// over TCP by dmserver (the "analysis server"), and an application that
// only ever sees the wire — every statement, including model training and
// prediction, travels as command text and comes back as a rowset.
//
//	go run ./examples/remote
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/dmclient"
	"repro/internal/dmserver"
	"repro/internal/provider"
	"repro/internal/workload"
)

func main() {
	// Server side: a provider with the demo warehouse, exposed on a socket.
	p, err := provider.New()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workload.Populate(p.DB, workload.Config{Customers: 1000, Seed: 9}); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := dmserver.New(p)
	go func() {
		if err := srv.Serve(l); err != nil {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	fmt.Printf("analysis server listening on %s\n\n", l.Addr())

	// Client side: a pure consumer of the OLE DB DM command surface.
	c, err := dmclient.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	for _, cmd := range []string{
		`CREATE MINING MODEL [Remote Gender] (
			[Customer ID] LONG KEY,
			[Age] DOUBLE CONTINUOUS,
			[Gender] TEXT DISCRETE PREDICT
		) USING [Naive_Bayes]`,
		`INSERT INTO [Remote Gender] ([Customer ID], [Age], [Gender])
			SELECT [Customer ID], Age, Gender FROM Customers`,
	} {
		if _, err := c.Execute(cmd); err != nil {
			log.Fatalf("%v\nstatement: %s", err, cmd)
		}
	}
	fmt.Println("model created and trained over the wire")

	rs, err := c.Execute(`SELECT t.Age, Predict([Gender]) AS gender,
			PredictProbability([Gender]) AS prob
		FROM [Remote Gender] NATURAL PREDICTION JOIN
			(SELECT 52.0 AS Age) AS t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nremote prediction:")
	fmt.Print(rs.String())

	models, err := c.Execute("SELECT * FROM $SYSTEM.MINING_MODELS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver catalog:")
	fmt.Print(models.String())
}
