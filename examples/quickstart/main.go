// Quickstart: the mining-model lifecycle in a dozen statements.
//
// The paper's pitch is that a developer who knows SQL already knows how to
// mine: define a model like a table, INSERT training data into it, SELECT
// predictions out of it. This example does exactly that with an in-memory
// provider and a tiny hand-written dataset.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/provider"
)

func main() {
	p, err := provider.New()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sess := p.NewSession()

	steps := []string{
		// 1. Relational data, plain SQL.
		`CREATE TABLE Players (ID LONG, Hours DOUBLE, Plan TEXT, Churned TEXT)`,
		`INSERT INTO Players VALUES
			(1, 2.0, 'free', 'yes'), (2, 1.5, 'free', 'yes'), (3, 3.0, 'free', 'yes'),
			(4, 1.0, 'free', 'yes'), (5, 2.5, 'free', 'no'),
			(6, 30.0, 'pro', 'no'), (7, 42.0, 'pro', 'no'), (8, 25.0, 'pro', 'no'),
			(9, 38.0, 'pro', 'no'), (10, 31.0, 'pro', 'yes')`,

		// 2. A mining model is created like a table (Section 3.2).
		`CREATE MINING MODEL [Churn] (
			[ID] LONG KEY,
			[Hours] DOUBLE CONTINUOUS,
			[Plan] TEXT DISCRETE,
			[Churned] TEXT DISCRETE PREDICT
		) USING [Decision_Trees]`,

		// 3. Populated with INSERT INTO (Section 3.3).
		`INSERT INTO [Churn] ([ID], [Hours], [Plan], [Churned])
			SELECT ID, Hours, Plan, Churned FROM Players`,
	}
	for _, s := range steps {
		if _, err := sess.Execute(ctx, s); err != nil {
			log.Fatalf("%v\nstatement: %s", err, s)
		}
	}

	// 4. Predictions come from a PREDICTION JOIN (Section 3.3).
	rs, err := sess.Execute(ctx, `SELECT
			t.[Plan],
			Predict([Churned]) AS will_churn,
			PredictProbability([Churned]) AS confidence
		FROM [Churn] NATURAL PREDICTION JOIN
			(SELECT 'free' AS [Plan], 2.0 AS Hours) AS t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Prediction for a 2h/week free-plan player:")
	fmt.Print(rs.String())

	// 5. The model itself is browsable (Section 3.3's CONTENT).
	content, err := sess.Execute(ctx, `SELECT * FROM [Churn].CONTENT`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nModel content graph: %d nodes. First rows:\n", content.Len())
	lines := strings.SplitN(content.String(), "\n", 7)
	fmt.Println(strings.Join(lines[:len(lines)-1], "\n"))
}
