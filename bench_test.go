// Package repro_test holds the benchmark harness: one BenchmarkE<n>_* per
// experiment in DESIGN.md's index, wrapping the same code paths as
// cmd/dmbench, plus micro-benchmarks for the hot provider paths. Run with
//
//	go test -bench=. -benchmem
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"

	"repro/internal/content"
	"repro/internal/dmclient"
	"repro/internal/dmserver"
	"repro/internal/dmx"
	"repro/internal/experiments"
	"repro/internal/provider"
	"repro/internal/provider/providertest"
	"repro/internal/rowset"
	"repro/internal/shape"
	"repro/internal/workload"
)

const benchScale = 1000

// benchWarehouse builds a provider over the synthetic warehouse once per
// benchmark.
func benchWarehouse(b *testing.B, n int) *provider.Provider {
	b.Helper()
	p := providertest.MustNew()
	if _, err := workload.Populate(p.DB, workload.Config{Customers: n, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	return p
}

func mustExecB(b *testing.B, p *provider.Provider, cmd string) *rowset.Rowset {
	b.Helper()
	rs, err := p.ExecuteContext(context.Background(), cmd)
	if err != nil {
		b.Fatalf("Execute(%.60q): %v", cmd, err)
	}
	return rs
}

const benchCreateAge = `CREATE MINING MODEL [Bench Age] (
	[Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
	[Age] DOUBLE DISCRETIZED PREDICT,
	[Product Purchases] TABLE([Product Name] TEXT KEY)
) USING [Decision_Trees]`

const benchInsertAge = `INSERT INTO [Bench Age] ([Customer ID], [Gender], [Age], [Product Purchases]([Product Name]))
SHAPE {SELECT [Customer ID], Gender, Age FROM Customers ORDER BY [Customer ID]}
APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
	RELATE [Customer ID] TO [CustID]) AS [Product Purchases]`

// trainedAgeModel returns a provider with [Bench Age] populated.
func trainedAgeModel(b *testing.B, n int) *provider.Provider {
	b.Helper()
	p := benchWarehouse(b, n)
	mustExecB(b, p, benchCreateAge)
	mustExecB(b, p, benchInsertAge)
	return p
}

// ---------- E1: Table 1 — caseset vs flattened join ----------

func BenchmarkE1_CasesetVsJoin(b *testing.B) {
	p := benchWarehouse(b, benchScale)
	b.Run("FlattenedJoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustExecB(b, p, `SELECT c.[Customer ID], s.[Product Name], k.Car
				FROM Customers c
				JOIN Sales s ON c.[Customer ID] = s.CustID
				LEFT JOIN Cars k ON k.CustID = c.[Customer ID]`)
		}
	})
	b.Run("ShapedCaseset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := shape.ExecuteString(p.Engine, workload.PaperShape); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- E2: in-provider vs export pipeline ----------

func BenchmarkE2_InDBvsExport(b *testing.B) {
	b.Run("InProvider", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := benchWarehouse(b, benchScale)
			mustExecB(b, p, benchCreateAge)
			b.StartTimer()
			mustExecB(b, p, benchInsertAge)
		}
	})
	b.Run("ExportCSV", func(b *testing.B) {
		p := benchWarehouse(b, benchScale)
		dir := b.TempDir()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := workload.ExportCSV(p.DB, dir, "Customers", "Sales")
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(n)
		}
	})
}

// ---------- E3: training throughput per service ----------

func benchTrain(b *testing.B, create, insert string) {
	p := benchWarehouse(b, benchScale)
	mustExecB(b, p, create)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mustExecB(b, p, "DELETE FROM "+modelNameOf(create))
		b.StartTimer()
		mustExecB(b, p, insert)
	}
}

func modelNameOf(create string) string {
	// create statements here always read "CREATE MINING MODEL [name] (".
	start := bytes.IndexByte([]byte(create), '[')
	end := bytes.IndexByte([]byte(create), ']')
	return create[start : end+1]
}

func BenchmarkE3_TrainDecisionTrees(b *testing.B) {
	benchTrain(b, benchCreateAge, benchInsertAge)
}

func BenchmarkE3_TrainNaiveBayes(b *testing.B) {
	benchTrain(b, `CREATE MINING MODEL [Bench NB] (
		[Customer ID] LONG KEY, [Age] DOUBLE CONTINUOUS, [Gender] TEXT DISCRETE PREDICT
	) USING [Naive_Bayes]`,
		`INSERT INTO [Bench NB] ([Customer ID], [Age], [Gender])
		SELECT [Customer ID], Age, Gender FROM Customers`)
}

func BenchmarkE3_TrainClustering(b *testing.B) {
	benchTrain(b, `CREATE MINING MODEL [Bench KM] (
		[Customer ID] LONG KEY, [Gender] TEXT DISCRETE, [Age] DOUBLE CONTINUOUS
	) USING [Clustering] (CLUSTER_COUNT = 3)`,
		`INSERT INTO [Bench KM] ([Customer ID], [Gender], [Age])
		SELECT [Customer ID], Gender, Age FROM Customers`)
}

func BenchmarkE3_TrainAssociationRules(b *testing.B) {
	benchTrain(b, `CREATE MINING MODEL [Bench AR] (
		[Customer ID] LONG KEY,
		[Product Purchases] TABLE([Product Name] TEXT KEY) PREDICT
	) USING [Association_Rules] (MINIMUM_SUPPORT = 0.02)`,
		`INSERT INTO [Bench AR] ([Customer ID], [Product Purchases]([Product Name]))
		SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
		APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
			RELATE [Customer ID] TO [CustID]) AS [Product Purchases]`)
}

// ---------- E4: prediction join ----------

func BenchmarkE4_PredictionJoinOn(b *testing.B) {
	p := trainedAgeModel(b, benchScale)
	q := `SELECT t.[Customer ID], Predict([Age]) FROM [Bench Age]
		PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t
		ON [Bench Age].Gender = t.Gender`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, p, q)
	}
}

func BenchmarkE4_PredictionJoinNatural(b *testing.B) {
	p := trainedAgeModel(b, benchScale)
	q := `SELECT t.[Customer ID], Predict([Age]) FROM [Bench Age]
		NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, p, q)
	}
}

func BenchmarkE4_PredictionSingleCase(b *testing.B) {
	p := trainedAgeModel(b, benchScale)
	q := `SELECT Predict([Age]) FROM [Bench Age]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, p, q)
	}
}

// ---------- E5: content and PMML ----------

func BenchmarkE5_ContentRowset(b *testing.B) {
	p := trainedAgeModel(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, p, "SELECT * FROM [Bench Age].CONTENT")
	}
}

func BenchmarkE5_PMMLEncode(b *testing.B) {
	p := trainedAgeModel(b, benchScale)
	m, err := p.Model("Bench Age")
	if err != nil {
		b.Fatal(err)
	}
	root := m.Trained.Content()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := content.WriteXML(&buf, "Bench Age", "Decision_Trees", m.CaseCount, root); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// ---------- E6: discretization ----------

func BenchmarkE6_Discretize(b *testing.B) {
	for _, method := range []string{"EQUAL_RANGES", "EQUAL_AREAS", "ENTROPY"} {
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := benchWarehouse(b, benchScale)
				create := fmt.Sprintf(`CREATE MINING MODEL [Bench D] (
					[Customer ID] LONG KEY, [Gender] TEXT DISCRETE PREDICT,
					[Age] DOUBLE DISCRETIZED(%s, 4) PREDICT
				) USING [Decision_Trees]`, method)
				mustExecB(b, p, create)
				b.StartTimer()
				mustExecB(b, p, `INSERT INTO [Bench D] ([Customer ID], [Gender], [Age])
					SELECT [Customer ID], Gender, Age FROM Customers`)
			}
		})
	}
}

// ---------- E7: case assembly ----------

func BenchmarkE7_CaseAssembly(b *testing.B) {
	p := benchWarehouse(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := shape.ExecuteString(p.Engine, workload.PaperShape)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != benchScale {
			b.Fatalf("cases = %d", rs.Len())
		}
	}
}

// ---------- E8: cross-algorithm accuracy (fixed-work measurement) ----------

func BenchmarkE8_Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(context.Background(), "E8", experiments.Config{Scale: 600, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- E9: transport overhead ----------

func BenchmarkE9_Server(b *testing.B) {
	p := trainedAgeModel(b, benchScale)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := dmserver.New(p)
	srv.Logf = func(string, ...any) {}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()
	c, err := dmclient.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	q := `SELECT Predict([Age]) FROM [Bench Age]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`
	b.Run("InProcess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustExecB(b, p, q)
		}
	})
	b.Run("TCP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------- E10: the paper's running example ----------

func BenchmarkE10_PaperLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(context.Background(), "E10", experiments.Config{Scale: 300, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- parallel PREDICTION JOIN (worker-pool scan) ----------

// BenchmarkPredictionJoinParallel measures batch-scoring throughput of the
// chunked worker-pool scan against the sequential baseline, on a large
// source with nested-table inputs. rows/sec is reported explicitly so the
// EXPERIMENTS.md before/after record is read straight off the output.
func BenchmarkPredictionJoinParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := providertest.MustNew(provider.WithParallelism(workers))
			if _, err := workload.Populate(p.DB, workload.Config{Customers: benchScale, Seed: 1}); err != nil {
				b.Fatal(err)
			}
			mustExecB(b, p, benchCreateAge)
			mustExecB(b, p, benchInsertAge)
			q := `SELECT t.[Customer ID], Predict([Age]), PredictProbability([Age]) FROM [Bench Age]
				NATURAL PREDICTION JOIN (
					SHAPE {SELECT [Customer ID], Gender FROM Customers ORDER BY [Customer ID]}
					APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
						RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t`
			b.ResetTimer()
			var rows int
			for i := 0; i < b.N; i++ {
				rs := mustExecB(b, p, q)
				rows += rs.Len()
			}
			b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// ---------- micro-benchmarks for hot paths ----------

func BenchmarkMicroSQLSelectWhere(b *testing.B) {
	p := benchWarehouse(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, p, "SELECT [Customer ID], Age FROM Customers WHERE Age > 30")
	}
}

func BenchmarkMicroSQLGroupBy(b *testing.B) {
	p := benchWarehouse(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, p, "SELECT Gender, COUNT(*), AVG(Age) FROM Customers GROUP BY Gender")
	}
}

func BenchmarkMicroHashJoin(b *testing.B) {
	p := benchWarehouse(b, benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecB(b, p, `SELECT c.[Customer ID], s.[Product Name]
			FROM Customers c JOIN Sales s ON c.[Customer ID] = s.CustID`)
	}
}

func BenchmarkMicroRowsetCodec(b *testing.B) {
	p := benchWarehouse(b, benchScale)
	tbl, err := p.DB.Table("Sales")
	if err != nil {
		b.Fatal(err)
	}
	rs := tbl.Scan()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := rs.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := rowset.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkMicroDMXParse(b *testing.B) {
	isModel := func(string) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dmx.Parse(benchCreateAge, isModel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroShapeParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := shape.ParseString(workload.PaperShape); err != nil {
			b.Fatal(err)
		}
	}
}
