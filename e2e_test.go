// End-to-end tests for the command binaries: dmsql and dmserver are compiled
// with the local toolchain and driven exactly as a user would drive them —
// scripts over stdin/-f for the shell, a TCP client against the server.
package repro_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dmclient"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// builtBinary compiles cmd/<name> once per test run and returns its path.
func builtBinary(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "oledbdm-bin")
		if buildErr != nil {
			return
		}
		for _, b := range []string{"dmsql", "dmserver", "dmbench"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, b), "./cmd/"+b)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				buildDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("build: %v\n%s", buildErr, buildDir)
	}
	return filepath.Join(buildDir, name)
}

func TestDMSQLScriptFile(t *testing.T) {
	bin := builtBinary(t, "dmsql")
	script := filepath.Join(t.TempDir(), "s.dmx")
	if err := os.WriteFile(script, []byte(`
		CREATE TABLE People (id LONG, color TEXT, class TEXT);
		INSERT INTO People VALUES
			(1,'red','hi'), (2,'blue','lo'), (3,'red','hi'), (4,'blue','lo'),
			(5,'red','hi'), (6,'blue','lo'), (7,'red','hi'), (8,'blue','lo');
		CREATE MINING MODEL [CM] ([id] LONG KEY, [color] TEXT DISCRETE,
			[class] TEXT DISCRETE PREDICT) USING [Naive_Bayes];
		INSERT INTO [CM] ([id], [color], [class]) SELECT id, color, class FROM People;
		SELECT Predict([class]) AS p FROM [CM]
			NATURAL PREDICTION JOIN (SELECT 'red' AS color) AS t;
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-f", script).CombinedOutput()
	if err != nil {
		t.Fatalf("dmsql: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hi") {
		t.Errorf("output missing prediction:\n%s", out)
	}
}

func TestDMSQLStdinAndShellCommands(t *testing.T) {
	bin := builtBinary(t, "dmsql")
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader("\\help\nSELECT 40 + 2 AS answer;\n\\models\n\\quit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dmsql: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "42") {
		t.Errorf("arithmetic missing:\n%s", s)
	}
	if !strings.Contains(s, "MODEL_NAME") {
		t.Errorf("\\models output missing:\n%s", s)
	}
}

func TestDMSQLPersistenceDir(t *testing.T) {
	bin := builtBinary(t, "dmsql")
	dir := t.TempDir()
	run := func(script string) string {
		cmd := exec.Command(bin, "-dir", dir)
		cmd.Stdin = strings.NewReader(script)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("dmsql: %v\n%s", err, out)
		}
		return string(out)
	}
	run("CREATE TABLE T (x LONG);\nINSERT INTO T VALUES (7);\n\\save\n")
	out := run("SELECT * FROM T;\n")
	if !strings.Contains(out, "7") {
		t.Errorf("persisted table missing after restart:\n%s", out)
	}
}

func TestDMServerBinary(t *testing.T) {
	bin := builtBinary(t, "dmserver")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-demo", "50")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Parse "dmserver listening on <addr>".
	var addr string
	sc := bufio.NewScanner(stdout)
	deadline := time.After(20 * time.Second)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				got <- strings.TrimSpace(line[i+len("listening on "):])
				return
			}
		}
	}()
	select {
	case addr = <-got:
	case <-deadline:
		t.Fatal("server did not report its address")
	}

	c, err := dmclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Execute("SELECT COUNT(*) FROM Customers")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Row(0)[0] != int64(50) {
		t.Errorf("demo customers = %v", rs.Row(0))
	}
}

func TestDMBenchBinary(t *testing.T) {
	bin := builtBinary(t, "dmbench")
	out, err := exec.Command(bin, "-exp", "e1", "-scale", "100").CombinedOutput()
	if err != nil {
		t.Fatalf("dmbench: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "E1") || !strings.Contains(s, "12") {
		t.Errorf("E1 output unexpected:\n%s", s)
	}
	out, err = exec.Command(bin, "-list").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "E10") {
		t.Errorf("dmbench -list: %v\n%s", err, out)
	}
}
