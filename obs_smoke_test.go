package repro_test

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/provider"
	"repro/internal/provider/providertest"
	"repro/internal/workload"
)

// maxObsOverhead is the instrumentation budget: enabling observability may
// not slow the PREDICTION JOIN scan by more than this fraction.
const maxObsOverhead = 0.10

// TestObsOverheadSmoke compares batch-scoring throughput with observability
// enabled against the same provider built with WithObsRegistry(nil), and
// fails when the instrumented run is more than 10% slower. The instrumented
// side runs the whole surface — counters, vecs, the flight recorder on every
// statement, and the metrics-history ticker snapshotting concurrently — so
// the budget covers the full recorder+history pipeline, not just counter
// increments. Guarded by BENCH_SMOKE=1 (run via `make bench-smoke`) so
// routine `go test ./...` stays fast and free of timing-sensitive assertions.
func TestObsOverheadSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 (or run `make bench-smoke`) to check instrumentation overhead")
	}

	const scale = 400
	q := `SELECT t.[Customer ID], Predict([Age]), PredictProbability([Age]) FROM [Bench Age]
		NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t`

	build := func(reg *obs.Registry) *provider.Provider {
		p := providertest.MustNew(provider.WithObsRegistry(reg))
		if _, err := workload.Populate(p.DB, workload.Config{Customers: scale, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ExecuteContext(context.Background(), benchCreateAge); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ExecuteContext(context.Background(), benchInsertAge); err != nil {
			t.Fatal(err)
		}
		return p
	}

	measure := func(p *provider.Provider) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.ExecuteContext(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}

	plain := build(nil)
	instrumented := build(obs.NewRegistry(0))
	// Snapshot aggressively: at the default 5s interval a short benchmark
	// round might never see a tick, and the gate is meant to price the
	// history collector in.
	stop := instrumented.Obs().StartHistoryTicker(50 * time.Millisecond)
	defer stop()

	// Interleave several rounds and keep each side's best time, which damps
	// scheduler and GC noise far better than one long run per side.
	const rounds = 3
	best := func(p *provider.Provider) float64 {
		min := measure(p)
		for i := 1; i < rounds; i++ {
			if v := measure(p); v < min {
				min = v
			}
		}
		return min
	}
	basePer := best(plain)
	obsPer := best(instrumented)

	overhead := (obsPer - basePer) / basePer
	t.Logf("plain %.0f ns/op, instrumented %.0f ns/op, overhead %+.2f%%",
		basePer, obsPer, overhead*100)
	if overhead > maxObsOverhead {
		t.Fatalf("observability overhead %.1f%% exceeds the %.0f%% budget",
			overhead*100, maxObsOverhead*100)
	}
}
