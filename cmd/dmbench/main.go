// Command dmbench regenerates every experiment in DESIGN.md's index
// (E1–E10): the paper's Table 1, its running example, and the measurements
// behind each of its performance and design claims. EXPERIMENTS.md records
// representative output of this binary.
//
// Usage:
//
//	dmbench                 # run everything at the default scale
//	dmbench -exp e2,e8      # run a subset
//	dmbench -scale 10000    # more customers
//	dmbench -list           # list experiments
//	dmbench -json out.json  # benchmark workloads, machine-readable report
//
// -json skips the experiments and instead times the benchmark workloads
// (sql-scan, scan-wide-filter, group-by-agg, shape-caseset, train, ...), writing a BenchReport
// JSON file whose schema EXPERIMENTS.md documents.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (e1..e10) or 'all'")
	scale := flag.Int("scale", 2000, "base customer count for synthetic workloads")
	seed := flag.Int64("seed", 1, "workload generation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "benchmark workloads and write a JSON report to this path")
	flag.Parse()

	if *jsonPath != "" {
		report, err := experiments.RunBench(context.Background(), experiments.Config{Scale: *scale, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		for _, w := range report.Workloads {
			fmt.Printf("%-14s %8d rows  %10.0f rows/sec  p50 %7dus  p95 %7dus\n",
				w.Name, w.Rows, w.RowsPerSec, w.P50Micros, w.P95Micros)
		}
		fmt.Printf("wrote %s (scale %d, %d iterations/workload)\n",
			*jsonPath, report.Scale, report.Iterations)
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	var ids []string
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}

	start := time.Now()
	for _, id := range ids {
		r, err := experiments.Run(context.Background(), strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
	}
	fmt.Printf("-- %d experiment(s), scale %d, total %s --\n",
		len(ids), *scale, time.Since(start).Round(time.Millisecond))
}
