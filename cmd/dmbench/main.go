// Command dmbench regenerates every experiment in DESIGN.md's index
// (E1–E10): the paper's Table 1, its running example, and the measurements
// behind each of its performance and design claims. EXPERIMENTS.md records
// representative output of this binary.
//
// Usage:
//
//	dmbench                 # run everything at the default scale
//	dmbench -exp e2,e8      # run a subset
//	dmbench -scale 10000    # more customers
//	dmbench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs (e1..e10) or 'all'")
	scale := flag.Int("scale", 2000, "base customer count for synthetic workloads")
	seed := flag.Int64("seed", 1, "workload generation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	var ids []string
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}

	start := time.Now()
	for _, id := range ids {
		r, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(r.String())
	}
	fmt.Printf("-- %d experiment(s), scale %d, total %s --\n",
		len(ids), *scale, time.Since(start).Round(time.Millisecond))
}
