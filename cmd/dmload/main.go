// Dmload is a pgbench-style traffic generator for the mining provider: it
// drives a dmserver over TCP with a mixed DMX workload (point predictions,
// point SELECTs, $SYSTEM rowset reads) from many concurrent connections and
// reports throughput plus per-class p50/p95/p99 latency.
//
// The run has two equal phases. Phase one ("idle") is readers only; phase
// two ("training") adds trainer connections that drop, re-create, and
// retrain [Load Train] in a loop, so catalog snapshots keep swapping while
// reads are in flight. The headline number is the ratio of read p95 latency
// between the phases — on the snapshot/epoch provider it should stay small,
// because readers never block on training.
//
// By default dmload starts an in-process dmserver over a seeded synthetic
// warehouse and tears it down afterwards; -addr points it at an external
// server instead (which must already hold the workload warehouse, e.g.
// dmserver -demo).
//
//	go run ./cmd/dmload -conns 8 -duration 10s
//	go run ./cmd/dmload -conns 16 -rate 2000 -json load.json
//	go run ./cmd/dmload -merge BENCH_PR8.json -check-ratio 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dmclient"
	"repro/internal/dmserver"
	"repro/internal/experiments"
	"repro/internal/provider"
	"repro/internal/rowset"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "", "drive an existing dmserver at this address (default: start one in-process)")
		conns       = flag.Int("conns", 8, "reader connections")
		trainConns  = flag.Int("train-conns", 1, "trainer connections during the training phase")
		duration    = flag.Duration("duration", 10*time.Second, "total run time, split evenly between the idle and training phases")
		scale       = flag.Int("scale", 500, "customers in the seeded warehouse (in-process server only)")
		seed        = flag.Int64("seed", 1, "workload seed: data generation and statement mix")
		mix         = flag.String("mix", "5:3:2", "predict:select:system read mix weights")
		rate        = flag.Float64("rate", 0, "open-loop aggregate target in ops/sec (0 = closed loop)")
		maxInflight = flag.Int("max-inflight", 0, "per-connection admission bound (in-process server only, 0 = unbounded)")
		jsonPath    = flag.String("json", "", "write the LoadReport as JSON to this file")
		mergePath   = flag.String("merge", "", "merge the LoadReport into this dmbench BenchReport JSON file")
		checkRatio  = flag.Float64("check-ratio", 0, "fail unless training-phase read p95 is within this factor of idle p95 (0 = no check)")
		slo         = flag.Duration("slo", 0, "log statements slower than this with their server seq (0 = off)")
		checkRec    = flag.Bool("check-recorder", false, "after the run, assert $SYSTEM.DM_FLIGHT_RECORDER is non-empty and joins DM_QUERY_LOG on SEQ")
	)
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	if *conns < 1 {
		fatal(fmt.Errorf("dmload: -conns must be at least 1"))
	}

	target := *addr
	if target == "" {
		stop, bound, err := startServer(*scale, *seed, *maxInflight)
		if err != nil {
			fatal(err)
		}
		defer stop()
		target = bound
		fmt.Printf("in-process dmserver on %s (scale %d, seed %d)\n", target, *scale, *seed)
	}

	if err := setupModels(target); err != nil {
		fatal(err)
	}

	cfg := phaseConfig{
		addr:      target,
		conns:     *conns,
		duration:  *duration / 2,
		seed:      *seed,
		customers: *scale,
		weights:   weights,
		rate:      *rate,
		slo:       *slo,
	}
	fmt.Printf("phase 1/2: idle — %d readers, %v\n", cfg.conns, cfg.duration)
	idle := runPhase(cfg)
	cfg.trainConns = *trainConns
	fmt.Printf("phase 2/2: training — %d readers + %d trainers, %v\n", cfg.conns, cfg.trainConns, cfg.duration)
	training := runPhase(cfg)

	report := buildReport(*conns, *trainConns, *scale, *seed, *rate, idle, training)
	printReport(report)
	printSlow(*slo, idle, training)

	if *checkRec {
		if err := checkFlightRecorder(target); err != nil {
			fatal(err)
		}
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *mergePath != "" {
		if err := mergeBench(*mergePath, report); err != nil {
			fatal(err)
		}
		fmt.Printf("merged load section into %s\n", *mergePath)
	}

	switch {
	case report.Ops == 0:
		fatal(fmt.Errorf("dmload: zero operations completed"))
	case report.Errors > 0:
		fatal(fmt.Errorf("dmload: %d operations failed", report.Errors))
	case *checkRatio > 0 && report.TrainingReadP95Ratio > *checkRatio:
		fatal(fmt.Errorf("dmload: training-phase read p95 is %.2fx idle (limit %.1fx)",
			report.TrainingReadP95Ratio, *checkRatio))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// parseMix reads "predict:select:system" weights.
func parseMix(s string) (workload.MixWeights, error) {
	var w workload.MixWeights
	if n, err := fmt.Sscanf(strings.TrimSpace(s), "%d:%d:%d", &w.Predict, &w.Select, &w.System); err != nil || n != 3 {
		return w, fmt.Errorf("dmload: bad -mix %q, want predict:select:system (e.g. 5:3:2)", s)
	}
	if w.Predict < 0 || w.Select < 0 || w.System < 0 || w.Predict+w.Select+w.System == 0 {
		return w, fmt.Errorf("dmload: -mix weights must be non-negative and not all zero")
	}
	return w, nil
}

// startServer builds the in-process provider + seeded warehouse and serves
// it on a loopback TCP port, returning a shutdown func and the bound address.
func startServer(scale int, seed int64, maxInflight int) (func(), string, error) {
	var opts []provider.Option
	if maxInflight > 0 {
		opts = append(opts, provider.WithMaxInFlight(maxInflight))
	}
	p, err := provider.New(opts...)
	if err != nil {
		return nil, "", err
	}
	if _, err := workload.Populate(p.DB, workload.Config{Customers: scale, Seed: seed}); err != nil {
		return nil, "", err
	}
	// Point reads should measure statement processing, not table scans.
	tbl, err := p.DB.Table("Customers")
	if err != nil {
		return nil, "", err
	}
	if err := tbl.CreateIndex("Customer ID"); err != nil {
		return nil, "", err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := dmserver.New(p)
	go srv.Serve(l)                                       //nolint:errcheck
	return func() { srv.Close() }, l.Addr().String(), nil //nolint:errcheck
}

// setupModels (re-)creates and trains the harness models over the wire, so
// the same sequence works for in-process and external servers alike.
func setupModels(addr string) error {
	c, err := dmclient.New(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for _, m := range []string{workload.LoadModelName, workload.LoadTrainName} {
		c.Execute(fmt.Sprintf("DROP MINING MODEL [%s]", m)) //nolint:errcheck // absent on first run
	}
	for _, stmt := range workload.LoadSetupStatements() {
		if _, err := c.Execute(stmt); err != nil {
			return fmt.Errorf("dmload setup: %w\nstatement:\n%s", err, stmt)
		}
	}
	return nil
}

// phaseConfig parameterizes one measurement phase.
type phaseConfig struct {
	addr       string
	conns      int
	trainConns int
	duration   time.Duration
	seed       int64
	customers  int
	weights    workload.MixWeights
	rate       float64       // aggregate open-loop ops/sec; 0 = closed loop
	slo        time.Duration // per-statement latency SLO; 0 = no slow logging
}

// phaseResult aggregates every worker's samples for one phase.
type phaseResult struct {
	elapsed time.Duration
	byKind  map[workload.OpKind][]time.Duration
	errors  int64
	busy    int64
	slow    []slowStmt
}

// slowStmt is one statement that missed the -slo budget (or failed): its
// server-assigned query-log seq is the handle for pulling the statement's
// DM_QUERY_LOG / DM_FLIGHT_RECORDER rows afterwards.
type slowStmt struct {
	seq     int64
	kind    workload.OpKind
	elapsed time.Duration
	errMsg  string
}

// runPhase drives the configured connections until the phase deadline and
// collects latency samples. Closed loop: each connection issues its next
// operation as soon as the previous one completes. Open loop (-rate): a
// dispatcher emits arrival ticks at the target rate and latency is measured
// from the scheduled arrival, so queueing delay counts against the server.
func runPhase(cfg phaseConfig) phaseResult {
	start := time.Now()
	deadline := start.Add(cfg.duration)

	var arrivals chan time.Time
	if cfg.rate > 0 {
		arrivals = make(chan time.Time, cfg.conns)
		go func() {
			interval := time.Duration(float64(time.Second) / cfg.rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			defer close(arrivals)
			for now := range tick.C {
				if now.After(deadline) {
					return
				}
				select {
				case arrivals <- now:
				default: // every connection busy: shed, the tick is lost
				}
			}
		}()
	}

	results := make([]workerStats, cfg.conns+cfg.trainConns)
	var wg sync.WaitGroup
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = readWorker(cfg, i, deadline, arrivals)
		}(i)
	}
	for i := 0; i < cfg.trainConns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[cfg.conns+i] = trainWorker(cfg, deadline)
		}(i)
	}
	wg.Wait()

	res := phaseResult{elapsed: time.Since(start), byKind: map[workload.OpKind][]time.Duration{}}
	for _, r := range results {
		for k, ds := range r.byKind {
			res.byKind[k] = append(res.byKind[k], ds...)
		}
		res.errors += r.errors
		res.busy += r.busy
		res.slow = append(res.slow, r.slow...)
	}
	return res
}

type workerStats struct {
	byKind map[workload.OpKind][]time.Duration
	errors int64
	busy   int64
	slo    time.Duration
	slow   []slowStmt
}

// readWorker runs the deterministic read mix on one connection until the
// deadline. Each worker's mix is seeded from (run seed, worker index) so
// runs are reproducible and workers do not issue identical streams.
func readWorker(cfg phaseConfig, idx int, deadline time.Time, arrivals <-chan time.Time) workerStats {
	st := workerStats{byKind: map[workload.OpKind][]time.Duration{}, slo: cfg.slo}
	c, err := dmclient.New(cfg.addr)
	if err != nil {
		st.errors++
		return st
	}
	defer c.Close()
	mix := workload.NewLoadMix(cfg.seed+int64(idx)*7919, cfg.customers, cfg.weights)
	for {
		var begin time.Time
		if arrivals != nil {
			at, ok := <-arrivals
			if !ok {
				return st
			}
			begin = at
		} else {
			begin = time.Now()
			if begin.After(deadline) {
				return st
			}
		}
		op := mix.Next()
		if runOp(c, op, &st) {
			st.byKind[op.Kind] = append(st.byKind[op.Kind], time.Since(begin))
		}
	}
}

// trainWorker loops full retrains of [Load Train] on its own connection.
func trainWorker(cfg phaseConfig, deadline time.Time) workerStats {
	st := workerStats{byKind: map[workload.OpKind][]time.Duration{}, slo: cfg.slo}
	c, err := dmclient.New(cfg.addr)
	if err != nil {
		st.errors++
		return st
	}
	defer c.Close()
	for {
		begin := time.Now()
		if begin.After(deadline) {
			return st
		}
		op := workload.TrainOp()
		if runOp(c, op, &st) {
			st.byKind[op.Kind] = append(st.byKind[op.Kind], time.Since(begin))
		}
	}
}

// runOp executes one operation's statements in order; it reports whether the
// whole unit succeeded. Admission-control busy rejections are intentional
// load shedding and counted separately from errors. With -slo set, any
// statement over budget (or failing) is recorded with the server's query-log
// seq from the stats trailer, so it can be pulled back out of
// $SYSTEM.DM_QUERY_LOG / DM_FLIGHT_RECORDER by key after the run.
func runOp(c *dmclient.Client, op workload.Op, st *workerStats) bool {
	for _, stmt := range op.Statements {
		begin := time.Now()
		_, err := c.Execute(stmt)
		took := time.Since(begin)
		if err != nil {
			busy := strings.Contains(err.Error(), "session is busy")
			if busy {
				st.busy++
			} else {
				st.errors++
			}
			if st.slo > 0 && !busy {
				st.slow = append(st.slow, slowStmt{seq: trailerSeq(c), kind: op.Kind, elapsed: took, errMsg: err.Error()})
			}
			return false
		}
		if st.slo > 0 && took > st.slo {
			st.slow = append(st.slow, slowStmt{seq: trailerSeq(c), kind: op.Kind, elapsed: took})
		}
	}
	return true
}

// trailerSeq reads the last statement's seq from the client's stats trailer
// (0 when the server did not report one).
func trailerSeq(c *dmclient.Client) int64 {
	if stats, ok := c.Stats(); ok {
		return stats.Seq
	}
	return 0
}

// printSlow reports the statements that missed the SLO, worst first, capped
// so a badly misconfigured budget does not flood the terminal.
func printSlow(slo time.Duration, phases ...phaseResult) {
	if slo == 0 {
		return
	}
	var all []slowStmt
	for _, ph := range phases {
		all = append(all, ph.slow...)
	}
	if len(all) == 0 {
		fmt.Printf("slo: all statements within %v\n", slo)
		return
	}
	sortSlowDesc(all)
	const maxLines = 20
	fmt.Printf("slo: %d statements over %v (worst %d shown; look rows up by seq in $SYSTEM.DM_FLIGHT_RECORDER)\n",
		len(all), slo, min(maxLines, len(all)))
	for i, s := range all {
		if i == maxLines {
			break
		}
		line := fmt.Sprintf("  seq=%-8d %-8s %9dµ", s.seq, s.kind, s.elapsed.Microseconds())
		if s.errMsg != "" {
			line += " error: " + s.errMsg
		}
		fmt.Println(line)
	}
}

func sortSlowDesc(ss []slowStmt) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].elapsed > ss[j].elapsed })
}

// checkFlightRecorder pulls $SYSTEM.DM_FLIGHT_RECORDER and DM_QUERY_LOG over
// the wire after the run and performs the client-side join: the recorder must
// hold records, and its SEQ values must intersect the query log's (the log is
// a FIFO ring, so old retained records may legitimately have scrolled out of
// it — an empty intersection, not a partial one, is the failure).
func checkFlightRecorder(addr string) error {
	c, err := dmclient.New(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	rec, err := c.Execute("SELECT * FROM $SYSTEM.DM_FLIGHT_RECORDER")
	if err != nil {
		return fmt.Errorf("dmload: -check-recorder: %w", err)
	}
	if rec.Len() == 0 {
		return fmt.Errorf("dmload: -check-recorder: DM_FLIGHT_RECORDER is empty after the run")
	}
	qlog, err := c.Execute("SELECT * FROM $SYSTEM.DM_QUERY_LOG")
	if err != nil {
		return fmt.Errorf("dmload: -check-recorder: %w", err)
	}
	logSeqs := map[int64]bool{}
	for i := 0; i < qlog.Len(); i++ {
		if seq, ok := seqValue(qlog, i); ok {
			logSeqs[seq] = true
		}
	}
	// The recorder rowset renders one row per span node; dedupe to distinct
	// statements before joining.
	recSeqs := map[int64]bool{}
	for i := 0; i < rec.Len(); i++ {
		if seq, ok := seqValue(rec, i); ok {
			recSeqs[seq] = true
		}
	}
	joined := 0
	for seq := range recSeqs {
		if logSeqs[seq] {
			joined++
		}
	}
	if joined == 0 {
		return fmt.Errorf("dmload: -check-recorder: no DM_FLIGHT_RECORDER SEQ joins DM_QUERY_LOG (%d recorder statements, %d log rows)",
			len(recSeqs), qlog.Len())
	}
	fmt.Printf("flight recorder: %d retained statements, %d join DM_QUERY_LOG on SEQ\n", len(recSeqs), joined)
	return nil
}

// seqValue reads row i's SEQ column as an int64.
func seqValue(rs *rowset.Rowset, i int) (int64, bool) {
	v, err := rs.Value(i, "SEQ")
	if err != nil {
		return 0, false
	}
	n, ok := v.(int64)
	return n, ok
}

// readSamples pools a phase's read-class samples (everything but train).
func readSamples(r phaseResult) []time.Duration {
	var all []time.Duration
	for k, ds := range r.byKind {
		if k != workload.OpTrain {
			all = append(all, ds...)
		}
	}
	return all
}

func buildReport(conns, trainConns, scale int, seed int64, rate float64, idle, training phaseResult) *workload.LoadReport {
	rep := &workload.LoadReport{
		Connections:      conns,
		TrainConnections: trainConns,
		Scale:            scale,
		Seed:             seed,
		Seconds:          (idle.elapsed + training.elapsed).Seconds(),
		OpenLoopRate:     rate,
		Errors:           idle.errors + training.errors,
		BusyRejections:   idle.busy + training.busy,
	}

	// Per-kind classes pool both phases; per-phase read aggregates carry the
	// idle-vs-training comparison.
	elapsed := idle.elapsed + training.elapsed
	for _, kind := range []workload.OpKind{workload.OpPredict, workload.OpSelect, workload.OpSystem, workload.OpTrain} {
		samples := append(append([]time.Duration{}, idle.byKind[kind]...), training.byKind[kind]...)
		if len(samples) == 0 {
			continue
		}
		rep.Classes = append(rep.Classes, workload.SummarizeClass(string(kind), samples, elapsed))
		rep.Ops += int64(len(samples))
	}

	idleReads := workload.SummarizeClass("read-idle", readSamples(idle), idle.elapsed)
	trainReads := workload.SummarizeClass("read-training", readSamples(training), training.elapsed)
	rep.Classes = append(rep.Classes, idleReads, trainReads)
	rep.ReadP95IdleMicros = idleReads.P95Micros
	rep.ReadP95TrainingMicros = trainReads.P95Micros
	if idleReads.P95Micros > 0 {
		rep.TrainingReadP95Ratio = float64(trainReads.P95Micros) / float64(idleReads.P95Micros)
	}
	if s := rep.Seconds; s > 0 {
		rep.OpsPerSec = float64(rep.Ops) / s
	}
	return rep
}

func printReport(rep *workload.LoadReport) {
	fmt.Printf("\n%d ops in %.1fs (%.0f ops/sec), %d errors, %d busy rejections\n",
		rep.Ops, rep.Seconds, rep.OpsPerSec, rep.Errors, rep.BusyRejections)
	fmt.Printf("%-14s %10s %12s %10s %10s %10s\n", "class", "ops", "ops/sec", "p50", "p95", "p99")
	for _, c := range rep.Classes {
		fmt.Printf("%-14s %10d %12.1f %9dµ %9dµ %9dµ\n",
			c.Name, c.Ops, c.OpsPerSec, c.P50Micros, c.P95Micros, c.P99Micros)
	}
	fmt.Printf("read p95: idle %dµs, training %dµs — ratio %.2fx\n",
		rep.ReadP95IdleMicros, rep.ReadP95TrainingMicros, rep.TrainingReadP95Ratio)
}

func writeJSON(path string, rep *workload.LoadReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// mergeBench attaches the load report to an existing dmbench BenchReport
// file (its workloads untouched), so one BENCH_PR8.json carries both the
// single-statement throughput numbers and the concurrency-harness result.
func mergeBench(path string, rep *workload.LoadReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("dmload: -merge target: %w (run `make bench-json` first)", err)
	}
	var bench experiments.BenchReport
	if err := json.Unmarshal(data, &bench); err != nil {
		return fmt.Errorf("dmload: -merge target %s: %w", path, err)
	}
	bench.Load = rep
	out, err := json.MarshalIndent(&bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
