// Command dmserver runs the provider as a network service — the analysis
// server of Figure 1 in the paper. Clients connect with cmd/dmsql -connect
// or the internal/dmclient package.
//
// Usage:
//
//	dmserver -addr :7700 -dir ./data [-init setup.dmx] [-demo 1000] [-http :7780]
//
// -init executes a script before serving (schema + models). -demo populates
// the synthetic customer warehouse with the given number of customers.
// -http starts an HTTP diagnostics listener (off by default) serving
// /metrics (Prometheus text), /healthz, and /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/dmserver"
	"repro/internal/lex"
	"repro/internal/provider"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	dir := flag.String("dir", "", "persistence directory")
	initScript := flag.String("init", "", "script file executed before serving")
	demo := flag.Int("demo", 0, "populate the synthetic customer warehouse with N customers")
	idle := flag.Duration("idle-timeout", dmserver.DefaultIdleTimeout,
		"drop connections idle for this long between requests; <=0 disables")
	slow := flag.Duration("slow-query", 0,
		"log statements whose server-side execution exceeds this; 0 disables")
	httpAddr := flag.String("http", "",
		"HTTP diagnostics listen address (/metrics, /healthz, /debug/pprof); empty disables")
	maxInFlight := flag.Int("max-inflight", 0,
		"per-connection in-flight statement limit; excess waits, then gets a busy error; <=0 disables")
	historyInterval := flag.Duration("history-interval", 0,
		"metrics-history snapshot interval for $SYSTEM.DM_METRICS_HISTORY; 0 = default, <0 disables")
	flag.Parse()

	var opts []provider.Option
	if *dir != "" {
		opts = append(opts, provider.WithDirectory(*dir))
	}
	if *maxInFlight > 0 {
		opts = append(opts, provider.WithMaxInFlight(*maxInFlight))
	}
	p, err := provider.New(opts...)
	if err != nil {
		log.Fatalf("provider: %v", err)
	}

	if *demo > 0 {
		if _, err := workload.Populate(p.DB, workload.Config{Customers: *demo, Seed: 1}); err != nil {
			log.Fatalf("demo data: %v", err)
		}
		log.Printf("populated synthetic warehouse with %d customers", *demo)
	}
	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatalf("init script: %v", err)
		}
		stmts, err := lex.SplitStatements(string(src))
		if err != nil {
			log.Fatalf("init script: %v", err)
		}
		sess := p.NewSession(provider.WithSessionOrigin("init-script"))
		for _, s := range stmts {
			if _, err := sess.Execute(context.Background(), s); err != nil {
				log.Fatalf("init statement %.60q: %v", s, err)
			}
		}
		sess.Close()
		log.Printf("executed %d init statements", len(stmts))
	}

	if *httpAddr != "" {
		// Bind synchronously so a bad address fails at startup, then serve
		// in the background; the wire listener is the process's lifetime.
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("http diagnostics: %v", err)
		}
		fmt.Printf("dmserver diagnostics on http://%s/metrics\n", hl.Addr())
		go func() {
			if err := http.Serve(hl, dmserver.DiagnosticsHandler(p.Obs())); err != nil {
				log.Printf("http diagnostics: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	s := dmserver.New(p)
	if *idle <= 0 {
		s.IdleTimeout = -1
	} else {
		s.IdleTimeout = *idle
	}
	s.SlowQuery = *slow
	s.HistoryInterval = *historyInterval
	// Print the bound address (not the flag) so -addr :0 is usable.
	fmt.Printf("dmserver listening on %s\n", l.Addr())
	if err := s.Serve(l); err != nil {
		log.Fatal(err)
	}
}
