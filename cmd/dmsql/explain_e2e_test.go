package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dmclient"
	"repro/internal/dmserver"
	"repro/internal/provider"
	"repro/internal/workload"
)

// explainScript trains a model over the synthetic warehouse and then asks
// for its prediction-join plan with measurements.
const explainScript = `CREATE MINING MODEL [E2E Age] (
	[Customer ID] LONG KEY,
	Gender TEXT DISCRETE,
	Age DOUBLE DISCRETIZED PREDICT
) USING Decision_Trees;
INSERT INTO [E2E Age] ([Customer ID], [Gender], [Age])
SELECT [Customer ID], Gender, Age FROM Customers;
EXPLAIN ANALYZE SELECT t.[Customer ID], [E2E Age].Age FROM [E2E Age]
NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t;
`

// TestExplainAnalyzeOverWire drives EXPLAIN ANALYZE of a PREDICTION JOIN
// through the full stack: dmsql shell loop → dmclient → wire protocol →
// dmserver → provider, asserting the span-tree rowset comes back with
// measured operators.
func TestExplainAnalyzeOverWire(t *testing.T) {
	p, err := provider.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Populate(p.DB, workload.Config{Customers: 50, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := dmserver.New(p)
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })

	c, err := dmclient.New(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	path := filepath.Join(t.TempDir(), "explain.dmx")
	if err := os.WriteFile(path, []byte(explainScript), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var stderr string
	stdout := captureStdout(t, func() {
		stderr = captureStderr(t, func() {
			run(f, &shell{exec: c, remote: c}, false)
		})
	})
	if stderr != "" {
		t.Fatalf("script wrote to stderr:\n%s", stderr)
	}
	// The span-tree rowset came back over the wire with its schema intact
	// and the prediction operators measured.
	for _, want := range []string{
		"SPAN_ID", "PARENT_ID", "OPERATOR", "ELAPSED_US", "ROWS",
		"statement", "caseset", "predict", "model=E2E Age",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q\nstdout:\n%s", want, stdout)
		}
	}
	// Exactly one NULL: the root span's PARENT_ID. Any more means a span
	// came back unmeasured.
	if n := strings.Count(stdout, "NULL"); n != 1 {
		t.Errorf("EXPLAIN ANALYZE output has %d NULLs, want 1 (root PARENT_ID):\n%s", n, stdout)
	}
}

// captureStdout swaps os.Stdout for a temp file around fn and returns what
// was written.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = tmp
	defer func() {
		os.Stdout = orig
		tmp.Close()
	}()
	fn()
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
