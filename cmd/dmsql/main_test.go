package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/provider"
)

// script drives the shell exactly as `dmsql -f script.dmx` would: schema and
// model DDL first, then four statements that are each semantically invalid
// and must be rejected by the binder — before execution, which would have
// failed differently (the model is never trained, so reaching the executor
// would report an untrained model, not a positioned diagnostic).
const script = `CREATE TABLE Customers ([Customer ID] LONG, Gender TEXT, Age DOUBLE);
CREATE MINING MODEL [Age Prediction] (
	[Customer ID] LONG KEY,
	Gender TEXT DISCRETE,
	Age DOUBLE DISCRETIZED PREDICT,
	[Product Purchases] TABLE(
		[Product Name] TEXT KEY,
		Quantity DOUBLE CONTINUOUS
	)
) USING Decision_Trees;
SELECT Predict([Shoe Size]) FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT Gender FROM Customers) AS t;
SELECT PredictSupport([Product Purchases]) FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT Gender FROM Customers) AS t;
SELECT Cluster(Age) FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT Gender FROM Customers) AS t;
SELECT Predict(Age) FROM [Age Prediction] PREDICTION JOIN (SELECT [Customer ID], Gender AS Age FROM Customers) AS t ON [Age Prediction].[Age] = t.[Age];
`

// TestScriptSurfacesBindDiagnostics runs the shell loop over a script file
// and checks that every bind-time error reaches stderr as a positioned
// diagnostic. This is the end-to-end path a user sees: parse → bind →
// reject, with line:column offsets into the statement they typed.
func TestScriptSurfacesBindDiagnostics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "script.dmx")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	p, err := provider.New()
	if err != nil {
		t.Fatalf("provider.New: %v", err)
	}

	stderr := captureStderr(t, func() {
		run(f, &shell{exec: localExec{s: p.NewSession()}, local: p}, false)
	})

	for _, want := range []string{
		`error: 1:16: unknown column "Shoe Size" in model Age Prediction`,
		`error: 1:23: PREDICTSUPPORT: column "Product Purchases" of model Age Prediction is a TABLE column`,
		`error: 1:8: CLUSTER takes 0 arguments, got 1`,
		"incompatible types",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q\nstderr:\n%s", want, stderr)
		}
	}
	// The model was never trained: had any of the four statements reached the
	// executor, stderr would name the untrained model instead of a position.
	if strings.Contains(stderr, "not populated") || strings.Contains(stderr, "untrained") {
		t.Errorf("a statement reached the executor past the binder\nstderr:\n%s", stderr)
	}
}

// TestScriptExecutesValidStatements is the control: a well-formed script
// produces no diagnostics on stderr.
func TestScriptExecutesValidStatements(t *testing.T) {
	const ok = "CREATE TABLE T (A LONG);\nINSERT INTO T VALUES (1), (2);\nSELECT A FROM T;\n"
	path := filepath.Join(t.TempDir(), "ok.dmx")
	if err := os.WriteFile(path, []byte(ok), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	p, err := provider.New()
	if err != nil {
		t.Fatalf("provider.New: %v", err)
	}
	stderr := captureStderr(t, func() {
		run(f, &shell{exec: localExec{s: p.NewSession()}, local: p}, false)
	})
	if stderr != "" {
		t.Errorf("clean script wrote to stderr:\n%s", stderr)
	}
}

// captureStderr swaps os.Stderr for a temp file around fn and returns what
// was written. The shell's rowset output on stdout is left alone.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stderr
	os.Stderr = tmp
	defer func() {
		os.Stderr = orig
		tmp.Close()
	}()
	fn()
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
