// Command dmsql is an interactive shell for the OLE DB DM provider: type
// DMX and SQL statements terminated by ';' and see rowset results. It can
// run against an in-process provider (optionally persisted with -dir) or a
// remote dmserver (-connect).
//
// Usage:
//
//	dmsql                      # in-memory provider, interactive
//	dmsql -dir ./data          # persisted provider
//	dmsql -connect :7700       # remote provider
//	dmsql -f script.dmx        # execute a script file, then exit
//	echo "SELECT 1;" | dmsql   # execute stdin, then exit
//
// -timing prints per-statement elapsed time; in remote mode the figure is
// the server-side execution time from the protocol's stats trailer.
//
// Shell commands: \help, \tables, \views, \models, \d <model>, \save, \quit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dmclient"
	"repro/internal/lex"
	"repro/internal/provider"
	"repro/internal/rowset"
)

// executor abstracts local and remote providers.
type executor interface {
	Execute(command string) (*rowset.Rowset, error)
}

// localExec adapts a provider session to the executor interface: the shell
// is one interactive consumer, so it gets one session for its lifetime.
type localExec struct {
	s *provider.Session
}

func (l localExec) Execute(command string) (*rowset.Rowset, error) {
	return l.s.Execute(context.Background(), command)
}

// shell bundles the execution target with display options.
type shell struct {
	exec   executor
	local  *provider.Provider // nil in remote mode
	remote *dmclient.Client   // nil in local mode
	timing bool
}

func main() {
	dir := flag.String("dir", "", "persistence directory for the in-process provider")
	connect := flag.String("connect", "", "address of a remote dmserver (host:port)")
	file := flag.String("f", "", "script file to execute instead of reading stdin")
	timing := flag.Bool("timing", false, "print per-statement elapsed time (server-side in remote mode)")
	flag.Parse()

	sh := &shell{timing: *timing}
	switch {
	case *connect != "":
		c, err := dmclient.New(*connect)
		if err != nil {
			fatal("connect: %v", err)
		}
		defer c.Close()
		sh.exec, sh.remote = c, c
	default:
		var opts []provider.Option
		if *dir != "" {
			opts = append(opts, provider.WithDirectory(*dir))
		}
		p, err := provider.New(opts...)
		if err != nil {
			fatal("provider: %v", err)
		}
		sh.local = p
		sh.exec = localExec{s: p.NewSession(provider.WithSessionOrigin("dmsql"))}
	}

	in := os.Stdin
	interactive := *file == "" && isTerminal()
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("open script: %v", err)
		}
		defer f.Close()
		in = f
	}

	if interactive {
		fmt.Println("dmsql — OLE DB for Data Mining shell. \\help for help, \\quit to exit.")
	}
	run(in, sh, interactive)
}

func run(in *os.File, sh *shell, interactive bool) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("dm> ")
		} else {
			fmt.Print("..> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !shellCommand(trimmed, sh) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmts, err := lex.SplitStatements(buf.String())
			if err == nil && endsComplete(buf.String()) {
				buf.Reset()
				for _, s := range stmts {
					execute(sh, s)
				}
			} else if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				buf.Reset()
			}
		}
		prompt()
	}
	// Flush a trailing statement without ';'.
	if s := strings.TrimSpace(buf.String()); s != "" {
		execute(sh, s)
	}
}

// endsComplete reports whether the buffered text ends at a statement
// boundary (its last non-space token region closes with ';').
func endsComplete(src string) bool {
	toks, err := lex.Tokenize(src)
	if err != nil || len(toks) < 2 {
		return false
	}
	return toks[len(toks)-2].IsPunct(";")
}

func execute(sh *shell, stmt string) {
	start := time.Now()
	rs, err := sh.exec.Execute(stmt)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	fmt.Print(rs.String())
	fmt.Printf("(%d rows)\n", rs.Len())
	if sh.timing {
		// In remote mode prefer the server's own execution time over the
		// round trip, when the protocol's stats trailer reported one. The
		// trailer's seq is the statement's DM_QUERY_LOG/DM_FLIGHT_RECORDER
		// join key — print it so a slow statement can be looked up later.
		var seq int64
		if sh.remote != nil {
			if stats, ok := sh.remote.Stats(); ok {
				elapsed, seq = stats.Elapsed, stats.Seq
			}
		}
		if seq > 0 {
			fmt.Printf("Time: %s (seq %d)\n", elapsed.Round(time.Microsecond), seq)
		} else {
			fmt.Printf("Time: %s\n", elapsed.Round(time.Microsecond))
		}
	}
}

// shellCommand handles backslash commands; returns false to exit.
func shellCommand(cmd string, sh *shell) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\help", "\\h":
		fmt.Println(`statements end with ';'. Shell commands:
  \tables        list relational tables (local provider only)
  \views         list views (local provider only)
  \models        list mining models
  \d <model>     show a model's definition (DDL)
  \save          persist tables (requires -dir)
  \quit          exit`)
	case "\\tables":
		if sh.local == nil {
			fmt.Fprintln(os.Stderr, "\\tables needs a local provider")
			break
		}
		for _, n := range sh.local.DB.Names() {
			fmt.Println(n)
		}
	case "\\views":
		if sh.local == nil {
			fmt.Fprintln(os.Stderr, "\\views needs a local provider")
			break
		}
		for _, n := range sh.local.Engine.ViewNames() {
			fmt.Println(n)
		}
	case "\\models":
		rs, err := sh.exec.Execute("SELECT * FROM $SYSTEM.MINING_MODELS")
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Print(rs.String())
	case "\\d":
		if len(fields) < 2 {
			fmt.Fprintln(os.Stderr, "usage: \\d <model>")
			break
		}
		if sh.local == nil {
			fmt.Fprintln(os.Stderr, "\\d needs a local provider")
			break
		}
		m, err := sh.local.Model(strings.Join(fields[1:], " "))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Println(m.Def.DDL())
	case "\\save":
		if sh.local == nil {
			fmt.Fprintln(os.Stderr, "\\save needs a local provider")
			break
		}
		if err := sh.local.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Println("saved")
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (try \\help)\n", fields[0])
	}
	return true
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
