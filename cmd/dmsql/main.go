// Command dmsql is an interactive shell for the OLE DB DM provider: type
// DMX and SQL statements terminated by ';' and see rowset results. It can
// run against an in-process provider (optionally persisted with -dir) or a
// remote dmserver (-connect).
//
// Usage:
//
//	dmsql                      # in-memory provider, interactive
//	dmsql -dir ./data          # persisted provider
//	dmsql -connect :7700       # remote provider
//	dmsql -f script.dmx        # execute a script file, then exit
//	echo "SELECT 1;" | dmsql   # execute stdin, then exit
//
// Shell commands: \help, \tables, \views, \models, \d <model>, \save, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dmclient"
	"repro/internal/lex"
	"repro/internal/provider"
	"repro/internal/rowset"
)

// executor abstracts local and remote providers.
type executor interface {
	Execute(command string) (*rowset.Rowset, error)
}

func main() {
	dir := flag.String("dir", "", "persistence directory for the in-process provider")
	connect := flag.String("connect", "", "address of a remote dmserver (host:port)")
	file := flag.String("f", "", "script file to execute instead of reading stdin")
	flag.Parse()

	var exec executor
	var local *provider.Provider
	switch {
	case *connect != "":
		c, err := dmclient.Dial(*connect)
		if err != nil {
			fatal("connect: %v", err)
		}
		defer c.Close()
		exec = c
	default:
		var opts []provider.Option
		if *dir != "" {
			opts = append(opts, provider.WithDirectory(*dir))
		}
		p, err := provider.New(opts...)
		if err != nil {
			fatal("provider: %v", err)
		}
		local = p
		exec = p
	}

	in := os.Stdin
	interactive := *file == "" && isTerminal()
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("open script: %v", err)
		}
		defer f.Close()
		in = f
	}

	if interactive {
		fmt.Println("dmsql — OLE DB for Data Mining shell. \\help for help, \\quit to exit.")
	}
	run(in, exec, local, interactive)
}

func run(in *os.File, exec executor, local *provider.Provider, interactive bool) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("dm> ")
		} else {
			fmt.Print("..> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !shellCommand(trimmed, exec, local) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmts, err := lex.SplitStatements(buf.String())
			if err == nil && endsComplete(buf.String()) {
				buf.Reset()
				for _, s := range stmts {
					execute(exec, s)
				}
			} else if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				buf.Reset()
			}
		}
		prompt()
	}
	// Flush a trailing statement without ';'.
	if s := strings.TrimSpace(buf.String()); s != "" {
		execute(exec, s)
	}
}

// endsComplete reports whether the buffered text ends at a statement
// boundary (its last non-space token region closes with ';').
func endsComplete(src string) bool {
	toks, err := lex.Tokenize(src)
	if err != nil || len(toks) < 2 {
		return false
	}
	return toks[len(toks)-2].IsPunct(";")
}

func execute(exec executor, stmt string) {
	rs, err := exec.Execute(stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	fmt.Print(rs.String())
	fmt.Printf("(%d rows)\n", rs.Len())
}

// shellCommand handles backslash commands; returns false to exit.
func shellCommand(cmd string, exec executor, local *provider.Provider) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit", "\\exit":
		return false
	case "\\help", "\\h":
		fmt.Println(`statements end with ';'. Shell commands:
  \tables        list relational tables (local provider only)
  \views         list views (local provider only)
  \models        list mining models
  \d <model>     show a model's definition (DDL)
  \save          persist tables (requires -dir)
  \quit          exit`)
	case "\\tables":
		if local == nil {
			fmt.Fprintln(os.Stderr, "\\tables needs a local provider")
			break
		}
		for _, n := range local.DB.Names() {
			fmt.Println(n)
		}
	case "\\views":
		if local == nil {
			fmt.Fprintln(os.Stderr, "\\views needs a local provider")
			break
		}
		for _, n := range local.Engine.ViewNames() {
			fmt.Println(n)
		}
	case "\\models":
		rs, err := exec.Execute("SELECT * FROM $SYSTEM.MINING_MODELS")
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Print(rs.String())
	case "\\d":
		if len(fields) < 2 {
			fmt.Fprintln(os.Stderr, "usage: \\d <model>")
			break
		}
		if local == nil {
			fmt.Fprintln(os.Stderr, "\\d needs a local provider")
			break
		}
		m, err := local.Model(strings.Join(fields[1:], " "))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Println(m.Def.DDL())
	case "\\save":
		if local == nil {
			fmt.Fprintln(os.Stderr, "\\save needs a local provider")
			break
		}
		if err := local.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			break
		}
		fmt.Println("saved")
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s (try \\help)\n", fields[0])
	}
	return true
}

func isTerminal() bool {
	info, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
