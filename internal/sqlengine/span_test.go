package sqlengine

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
)

func spanKinds(root *obs.Span) string {
	var kinds []string
	root.Walk(func(sp *obs.Span, depth int) {
		kinds = append(kinds, sp.Kind)
	})
	return strings.Join(kinds, ",")
}

// TestQueryContextSpans: one span per executor node, nested under the select,
// with row counts from the actual operator outputs.
func TestQueryContextSpans(t *testing.T) {
	e := NewEngine(storage.NewDatabase())
	for _, s := range []string{
		"CREATE TABLE T (ID LONG, G TEXT)",
		"INSERT INTO T VALUES (1, 'a')",
		"INSERT INTO T VALUES (2, 'b')",
		"INSERT INTO T VALUES (3, 'a')",
		"CREATE TABLE U (ID LONG, X DOUBLE)",
		"INSERT INTO U VALUES (1, 1.5)",
		"INSERT INTO U VALUES (2, 2.5)",
	} {
		if _, err := e.Exec(s); err != nil {
			t.Fatal(err)
		}
	}

	tr := obs.NewTrace("q", "")
	ctx := obs.WithTrace(t.Context(), tr)
	if _, err := e.ExecContext(ctx, "SELECT T.G, U.X FROM T JOIN U ON T.ID = U.ID WHERE T.ID > 0 ORDER BY U.X"); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if len(root.Children) != 1 || root.Children[0].Kind != "select" {
		t.Fatalf("root children = %s", spanKinds(root))
	}
	sel := root.Children[0]
	want := map[string]int64{"scan": -1, "join": 2, "filter": 2, "project": 2, "sort": 2}
	got := map[string]int64{}
	for _, c := range sel.Children {
		got[c.Kind] = c.Rows
	}
	for k, rows := range want {
		r, ok := got[k]
		if !ok {
			t.Errorf("select has no %q child (children: %s)", k, spanKinds(sel))
			continue
		}
		if rows >= 0 && r != rows {
			t.Errorf("%s span rows = %d, want %d", k, r, rows)
		}
	}
	if sel.Rows != 2 {
		t.Errorf("select span rows = %d, want 2", sel.Rows)
	}

	// Aggregates swap project/sort for a group-by node.
	tr2 := obs.NewTrace("q2", "")
	if _, err := e.ExecContext(obs.WithTrace(t.Context(), tr2), "SELECT G, COUNT(*) FROM T GROUP BY G"); err != nil {
		t.Fatal(err)
	}
	if kinds := spanKinds(tr2.Root()); kinds != "statement,select,scan,group-by" {
		t.Errorf("aggregate spans = %s", kinds)
	}
}

// TestPlanSpanMirrorsExecution: the plan-only tree names the same operators,
// in the same order, as the spans an actual run records.
func TestPlanSpanMirrorsExecution(t *testing.T) {
	e := NewEngine(storage.NewDatabase())
	for _, s := range []string{
		"CREATE TABLE T (ID LONG, G TEXT)",
		"INSERT INTO T VALUES (1, 'a')",
	} {
		if _, err := e.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		"SELECT G FROM T WHERE ID = 1 ORDER BY G",
		"SELECT G, COUNT(*) FROM T GROUP BY G",
		"SELECT A.G FROM T AS A, T AS B",
	} {
		st, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		sel := st.(*SelectStmt)
		tr := obs.NewTrace("q", "")
		if _, err := e.ExecContext(obs.WithTrace(t.Context(), tr), q); err != nil {
			t.Fatal(err)
		}
		executed := spanKinds(tr.Root().Children[0])
		planned := spanKinds(sel.PlanSpan())
		if executed != planned {
			t.Errorf("query %q: plan %s != executed %s", q, planned, executed)
		}
	}
}
