package sqlengine

// Streaming projection. The projection plan — which items are plain column
// passthroughs, which need evaluation, how each ORDER BY key is obtained — is
// compiled once per statement; the per-row loop then does no name resolution
// and no allocation beyond the output row itself.

import (
	"strings"

	"repro/internal/rowset"
)

// orderPlanEntry says how to produce one ORDER BY key for a row: either copy
// a projected output value (alias references resolve against the projection,
// like the old per-row orderKeys lookup) or evaluate an expression against
// the source row.
type orderPlanEntry struct {
	outOrd int // >= 0: key is out[outOrd]
	expr   Expr
}

// projectCursor evaluates SELECT items over its source rows. When ORDER BY is
// present it also computes the row's sort keys, exposed via lastKeys so the
// sort drain can collect rows and keys in one pass.
type projectCursor struct {
	src    rowset.Cursor
	items  []SelectItem
	ords   []int // source ordinal per item; -1 = computed (evaluate per row)
	schema *rowset.Schema
	env    *Env

	orderPlan []orderPlanEntry
	lastKeys  rowset.Row

	// identity short-circuits projection entirely: the item list is exactly
	// the source columns in order (SELECT * over one table), so source rows
	// pass through unshaped. The engine never mutates stored rows (UPDATE
	// clones before writing), so sharing them with the result is safe.
	identity bool
}

// newProjectCursor compiles the projection. Column references that fail to
// resolve are left as computed items rather than rejected here: the old
// executor surfaced resolution errors only when a row was actually evaluated,
// so a query over an empty table must still succeed.
func newProjectCursor(src rowset.Cursor, items []SelectItem, names []string, order []OrderItem) (*projectCursor, error) {
	srcSchema := src.Schema()
	p := &projectCursor{
		src:   src,
		items: items,
		ords:  make([]int, len(items)),
		env:   &Env{Schema: srcSchema},
	}
	identity := len(items) == srcSchema.Len()
	for i, it := range items {
		p.ords[i] = -1
		if cr, ok := it.Expr.(*ColumnRef); ok {
			if ord, err := ResolveColumn(srcSchema, cr.Qualifier, cr.Name); err == nil {
				p.ords[i] = ord
			}
		}
		if p.ords[i] != i {
			identity = false
		}
	}
	p.identity = identity

	// Provisional output schema: declared types for direct column references,
	// TypeNull placeholders for computed items (outputSchema refines those
	// from values after the drain).
	cols := make([]rowset.Column, len(items))
	for i := range items {
		col := rowset.Column{Name: names[i], Type: rowset.TypeNull}
		if o := p.ords[i]; o >= 0 {
			col.Type = srcSchema.Column(o).Type
			col.Nested = srcSchema.Column(o).Nested
		}
		cols[i] = col
	}
	schema, err := rowset.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	p.schema = schema

	if len(order) > 0 {
		p.orderPlan = make([]orderPlanEntry, len(order))
		for i, o := range order {
			p.orderPlan[i] = orderPlanEntry{outOrd: -1, expr: o.Expr}
			if cr, ok := o.Expr.(*ColumnRef); ok && cr.Qualifier == "" {
				for j, n := range names {
					if strings.EqualFold(n, cr.Name) {
						p.orderPlan[i] = orderPlanEntry{outOrd: j}
						break
					}
				}
			}
		}
	}
	return p, nil
}

func (p *projectCursor) Next() (rowset.Row, error) {
	r, err := p.src.Next()
	if err != nil || r == nil {
		return r, err
	}
	var out rowset.Row
	if p.identity {
		out = r
	} else {
		p.env.Row = r
		out = make(rowset.Row, len(p.items))
		for i, it := range p.items {
			if o := p.ords[i]; o >= 0 {
				out[i] = r[o] // already canonical: coerced on insert or normalized upstream
				continue
			}
			v, err := Eval(it.Expr, p.env)
			if err != nil {
				return nil, err
			}
			out[i] = rowset.Normalize(v)
		}
	}
	if len(p.orderPlan) > 0 {
		keys := make(rowset.Row, len(p.orderPlan))
		p.env.Row = r
		for i, pe := range p.orderPlan {
			if pe.outOrd >= 0 {
				keys[i] = out[pe.outOrd]
				continue
			}
			v, err := Eval(pe.expr, p.env)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		p.lastKeys = keys
	}
	return out, nil
}

func (p *projectCursor) Schema() *rowset.Schema { return p.schema }
func (p *projectCursor) Close() error           { return p.src.Close() }
func (p *projectCursor) Size() int              { return cursorSize(p.src) }

// descFlags extracts the per-key descending flags for rowset.SortByKeys.
func descFlags(order []OrderItem) []bool {
	d := make([]bool, len(order))
	for i, o := range order {
		d[i] = o.Desc
	}
	return d
}

// drainWithKeys pulls the projection to exhaustion, collecting output rows
// and their parallel sort keys (read off proj after each pull — cur may be a
// tracing wrapper around proj).
func drainWithKeys(cur rowset.Cursor, proj *projectCursor) ([]rowset.Row, []rowset.Row, error) {
	defer cur.Close() //nolint:errcheck // Close after exhaustion is a no-op
	var outs, keys []rowset.Row
	for {
		r, err := cur.Next()
		if err != nil {
			return nil, nil, err
		}
		if r == nil {
			return outs, keys, nil
		}
		outs = append(outs, r)
		keys = append(keys, proj.lastKeys)
	}
}
