package sqlengine

// Streaming projection. The projection plan — which items are plain column
// passthroughs, which need evaluation, how each ORDER BY key is obtained — is
// compiled once per statement; the per-row loop then does no name resolution
// and no allocation beyond the output row itself.

import (
	"strings"

	"repro/internal/rowset"
)

// orderPlanEntry says how to produce one ORDER BY key for a row: either copy
// a projected output value (alias references resolve against the projection,
// like the old per-row orderKeys lookup) or evaluate an expression against
// the source row.
type orderPlanEntry struct {
	outOrd int // >= 0: key is out[outOrd]
	expr   Expr
}

// projectCursor evaluates SELECT items over its source rows. When ORDER BY is
// present it also computes the row's sort keys, exposed via lastKeys so the
// sort drain can collect rows and keys in one pass.
type projectCursor struct {
	src    rowset.Cursor
	items  []SelectItem
	ords   []int // source ordinal per item; -1 = computed (evaluate per row)
	schema *rowset.Schema
	env    *Env

	orderPlan []orderPlanEntry
	lastKeys  rowset.Row

	// keyOrds non-nil means every ORDER BY key is a projected output column
	// (keys[k] == out[keyOrds[k]]): the cursor skips per-row key work
	// entirely and the sort drain gathers keys from the output rows after
	// the drain (zero-copy views in the single-key case).
	keyOrds []int

	// identity short-circuits projection entirely: the item list is exactly
	// the source columns in order (SELECT * over one table), so source rows
	// pass through unshaped. The engine never mutates stored rows (UPDATE
	// clones before writing), so sharing them with the result is safe.
	identity bool

	// batch mode state: the batched source, the reused output-row buffer,
	// and the per-batch sort keys (parallel to the last returned batch's
	// live rows; read via batchKeys before the next pull, like lastKeys).
	bsrc   rowset.BatchCursor
	outBuf []rowset.Row
	keyBuf []rowset.Row
}

// newProjectCursor compiles the projection. Column references that fail to
// resolve are left as computed items rather than rejected here: the old
// executor surfaced resolution errors only when a row was actually evaluated,
// so a query over an empty table must still succeed.
func newProjectCursor(src rowset.Cursor, items []SelectItem, names []string, order []OrderItem) (*projectCursor, error) {
	srcSchema := src.Schema()
	p := &projectCursor{
		src:   src,
		items: items,
		ords:  make([]int, len(items)),
		env:   &Env{Schema: srcSchema},
	}
	identity := len(items) == srcSchema.Len()
	for i, it := range items {
		p.ords[i] = -1
		if cr, ok := it.Expr.(*ColumnRef); ok {
			if ord, err := ResolveColumn(srcSchema, cr.Qualifier, cr.Name); err == nil {
				p.ords[i] = ord
			}
		}
		if p.ords[i] != i {
			identity = false
		}
	}
	p.identity = identity

	// Provisional output schema: declared types for direct column references,
	// TypeNull placeholders for computed items (outputSchema refines those
	// from values after the drain).
	cols := make([]rowset.Column, len(items))
	for i := range items {
		col := rowset.Column{Name: names[i], Type: rowset.TypeNull}
		if o := p.ords[i]; o >= 0 {
			col.Type = srcSchema.Column(o).Type
			col.Nested = srcSchema.Column(o).Nested
		}
		cols[i] = col
	}
	schema, err := rowset.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	p.schema = schema

	if len(order) > 0 {
		p.orderPlan = make([]orderPlanEntry, len(order))
		allOut := true
		for i, o := range order {
			p.orderPlan[i] = orderPlanEntry{outOrd: -1, expr: o.Expr}
			if cr, ok := o.Expr.(*ColumnRef); ok && cr.Qualifier == "" {
				for j, n := range names {
					if strings.EqualFold(n, cr.Name) {
						p.orderPlan[i] = orderPlanEntry{outOrd: j}
						break
					}
				}
			}
			if p.orderPlan[i].outOrd < 0 {
				allOut = false
			}
		}
		if allOut {
			p.keyOrds = make([]int, len(p.orderPlan))
			for i, pe := range p.orderPlan {
				p.keyOrds[i] = pe.outOrd
			}
			p.orderPlan = nil
		}
	}
	return p, nil
}

// keysForOrds gathers ORDER BY key rows from projected output columns after
// the drain (the keyOrds fast path). Single-key ORDER BY — the common case —
// produces zero-copy one-column views into the output rows.
func keysForOrds(outs []rowset.Row, ords []int) []rowset.Row {
	keys := make([]rowset.Row, len(outs))
	if len(ords) == 1 {
		o := ords[0]
		for i, r := range outs {
			keys[i] = r[o : o+1 : o+1]
		}
		return keys
	}
	w := len(ords)
	arena := make(rowset.Row, len(outs)*w)
	for i, r := range outs {
		k := arena[i*w : (i+1)*w : (i+1)*w]
		for j, o := range ords {
			k[j] = r[o]
		}
		keys[i] = k
	}
	return keys
}

func (p *projectCursor) Next() (rowset.Row, error) {
	r, err := p.src.Next()
	if err != nil || r == nil {
		return r, err
	}
	out, err := p.projectRow(r)
	if err != nil {
		return nil, err
	}
	if len(p.orderPlan) > 0 {
		keys, err := p.keysFor(out, r)
		if err != nil {
			return nil, err
		}
		p.lastKeys = keys
	}
	return out, nil
}

// projectRow shapes one source row into an output row (nil error only).
func (p *projectCursor) projectRow(r rowset.Row) (rowset.Row, error) {
	if p.identity {
		return r, nil
	}
	out := make(rowset.Row, len(p.items))
	if err := p.projectInto(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// projectInto shapes one source row into the caller-provided output row (the
// batch path carves output rows out of one per-batch arena allocation).
func (p *projectCursor) projectInto(r, out rowset.Row) error {
	p.env.Row = r
	for i, it := range p.items {
		if o := p.ords[i]; o >= 0 {
			out[i] = r[o] // already canonical: coerced on insert or normalized upstream
			continue
		}
		v, err := Eval(it.Expr, p.env)
		if err != nil {
			return err
		}
		out[i] = rowset.Normalize(v)
	}
	return nil
}

// keysFor computes the ORDER BY keys for one output row and its source row.
func (p *projectCursor) keysFor(out, src rowset.Row) (rowset.Row, error) {
	keys := make(rowset.Row, len(p.orderPlan))
	if err := p.keysInto(out, src, keys); err != nil {
		return nil, err
	}
	return keys, nil
}

// keysInto fills the caller-provided key row for one output/source row pair.
func (p *projectCursor) keysInto(out, src, keys rowset.Row) error {
	p.env.Row = src
	for i, pe := range p.orderPlan {
		if pe.outOrd >= 0 {
			keys[i] = out[pe.outOrd]
			continue
		}
		v, err := Eval(pe.expr, p.env)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	return nil
}

// NextBatch projects a whole source batch. Identity projections with no
// ORDER BY pass the source batch through untouched (selection vector and
// all); otherwise output rows are assembled into a reused buffer. When an
// order plan is active, batchKeys() exposes the keys for the returned
// batch's live rows, valid until the next pull.
func (p *projectCursor) NextBatch() (rowset.Batch, error) {
	if p.bsrc == nil {
		p.bsrc = rowset.BatchCursorOf(p.src)
	}
	b, err := p.bsrc.NextBatch()
	if err != nil || b.Empty() {
		return b, err
	}
	if p.identity && p.orderPlan == nil {
		return b, nil
	}
	n := b.Len()
	// Output rows and key rows are carved out of one fresh arena allocation
	// per batch instead of one per row. The arenas must be fresh (not reused
	// buffers): downstream drains retain the individual rows.
	kk := len(p.orderPlan)
	var keyArena rowset.Row
	if p.orderPlan != nil {
		p.keyBuf = p.keyBuf[:0]
		keyArena = make(rowset.Row, n*kk)
	}
	if p.identity {
		for i := 0; i < n; i++ {
			r := b.Row(i)
			keys := keyArena[i*kk : (i+1)*kk : (i+1)*kk]
			if err := p.keysInto(r, r, keys); err != nil {
				return rowset.Batch{}, err
			}
			p.keyBuf = append(p.keyBuf, keys)
		}
		return b, nil
	}
	if cap(p.outBuf) < n {
		p.outBuf = make([]rowset.Row, 0, n)
	}
	p.outBuf = p.outBuf[:0]
	w := len(p.items)
	arena := make(rowset.Row, n*w)
	for i := 0; i < n; i++ {
		r := b.Row(i)
		out := arena[i*w : (i+1)*w : (i+1)*w]
		if err := p.projectInto(r, out); err != nil {
			return rowset.Batch{}, err
		}
		p.outBuf = append(p.outBuf, out)
		if p.orderPlan != nil {
			keys := keyArena[i*kk : (i+1)*kk : (i+1)*kk]
			if err := p.keysInto(out, r, keys); err != nil {
				return rowset.Batch{}, err
			}
			p.keyBuf = append(p.keyBuf, keys)
		}
	}
	return rowset.Batch{Rows: p.outBuf}, nil
}

// batchKeys returns the ORDER BY keys parallel to the live rows of the batch
// last returned by NextBatch.
func (p *projectCursor) batchKeys() []rowset.Row { return p.keyBuf }

func (p *projectCursor) Schema() *rowset.Schema { return p.schema }
func (p *projectCursor) Close() error           { return p.src.Close() }
func (p *projectCursor) Size() int              { return cursorSize(p.src) }

// descFlags extracts the per-key descending flags for rowset.SortByKeys.
func descFlags(order []OrderItem) []bool {
	d := make([]bool, len(order))
	for i, o := range order {
		d[i] = o.Desc
	}
	return d
}

// drainWithKeys pulls the projection to exhaustion, collecting output rows
// and their parallel sort keys (read off proj after each pull — cur may be a
// tracing wrapper around proj). Batch-capable pipelines drain batch-at-a-time,
// reading proj.batchKeys() after each batch; batches reports how many batches
// flowed (0 on the row path).
func drainWithKeys(cur rowset.Cursor, proj *projectCursor) (outs, keys []rowset.Row, batches int64, err error) {
	defer cur.Close() //nolint:errcheck // Close after exhaustion is a no-op
	keyed := len(proj.orderPlan) > 0
	n := cursorSize(cur)
	if n > 0 {
		outs = make([]rowset.Row, 0, n) // upper bound: filters shrink it
		if keyed {
			keys = make([]rowset.Row, 0, n)
		}
	}
	if bc, ok := cur.(rowset.BatchCursor); ok && (n < 0 || n > smallDrainSize) {
		for {
			b, err := bc.NextBatch()
			if err != nil {
				return nil, nil, batches, err
			}
			if b.Empty() {
				break
			}
			batches++
			n := b.Len()
			for i := 0; i < n; i++ {
				outs = append(outs, b.Row(i))
			}
			if keyed {
				keys = append(keys, proj.batchKeys()...)
			}
		}
	} else {
		for {
			r, err := cur.Next()
			if err != nil {
				return nil, nil, 0, err
			}
			if r == nil {
				break
			}
			outs = append(outs, r)
			if keyed {
				keys = append(keys, proj.lastKeys)
			}
		}
	}
	// keyOrds fast path: no keys flowed per row; gather them from the
	// projected output columns in one pass.
	if proj.keyOrds != nil {
		keys = keysForOrds(outs, proj.keyOrds)
	}
	return outs, keys, batches, nil
}
