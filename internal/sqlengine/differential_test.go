package sqlengine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rowset"
	"repro/internal/storage"
)

// TestDifferentialWhere compares the engine's WHERE evaluation against an
// independent oracle implemented directly in test code, over randomly
// generated tables and predicates. Any divergence is a bug in the parser,
// the evaluator, or the oracle — all three are simple enough to eyeball.
func TestDifferentialWhere(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		db := storage.NewDatabase()
		e := NewEngine(db)
		if _, err := e.Exec("CREATE TABLE T (a LONG, b DOUBLE, s TEXT)"); err != nil {
			t.Fatal(err)
		}
		type row struct {
			a    int64
			b    float64
			s    string
			bNil bool
		}
		n := 20 + rng.Intn(60)
		rows := make([]row, n)
		tbl, _ := db.Table("T")
		for i := range rows {
			r := row{
				a:    int64(rng.Intn(10)),
				b:    float64(rng.Intn(100)) / 4,
				s:    string(rune('a' + rng.Intn(4))),
				bNil: rng.Float64() < 0.15,
			}
			rows[i] = r
			var bv rowset.Value = r.b
			if r.bNil {
				bv = nil
			}
			if err := tbl.Insert(rowset.Row{r.a, bv, r.s}); err != nil {
				t.Fatal(err)
			}
		}

		// Random predicate from a tiny grammar.
		type pred struct {
			sql    string
			oracle func(row) bool
		}
		leaf := func() pred {
			switch rng.Intn(5) {
			case 0:
				k := int64(rng.Intn(10))
				return pred{fmt.Sprintf("a = %d", k), func(r row) bool { return r.a == k }}
			case 1:
				k := int64(rng.Intn(10))
				return pred{fmt.Sprintf("a < %d", k), func(r row) bool { return r.a < k }}
			case 2:
				k := float64(rng.Intn(100)) / 4
				return pred{fmt.Sprintf("b >= %g", k), func(r row) bool { return !r.bNil && r.b >= k }}
			case 3:
				c := string(rune('a' + rng.Intn(4)))
				return pred{fmt.Sprintf("s = '%s'", c), func(r row) bool { return r.s == c }}
			default:
				return pred{"b IS NULL", func(r row) bool { return r.bNil }}
			}
		}
		combine := func(p, q pred) pred {
			if rng.Intn(2) == 0 {
				return pred{fmt.Sprintf("(%s) AND (%s)", p.sql, q.sql),
					func(r row) bool { return p.oracle(r) && q.oracle(r) }}
			}
			return pred{fmt.Sprintf("(%s) OR (%s)", p.sql, q.sql),
				func(r row) bool { return p.oracle(r) || q.oracle(r) }}
		}
		p := leaf()
		for d := 0; d < rng.Intn(3); d++ {
			p = combine(p, leaf())
		}

		got, err := e.Exec("SELECT COUNT(*) FROM T WHERE " + p.sql)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, p.sql, err)
		}
		want := 0
		for _, r := range rows {
			if p.oracle(r) {
				want++
			}
		}
		if got.Row(0)[0] != int64(want) {
			t.Errorf("trial %d: WHERE %s → engine %v, oracle %d", trial, p.sql, got.Row(0)[0], want)
		}
	}
}

// TestDifferentialAggregates cross-checks GROUP BY aggregates against a
// direct computation.
func TestDifferentialAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	db := storage.NewDatabase()
	e := NewEngine(db)
	if _, err := e.Exec("CREATE TABLE G (k TEXT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("G")
	sums := map[string]float64{}
	counts := map[string]int64{}
	mins := map[string]float64{}
	for i := 0; i < 300; i++ {
		k := string(rune('p' + rng.Intn(3)))
		v := rng.Float64() * 50
		if err := tbl.Insert(rowset.Row{k, v}); err != nil {
			t.Fatal(err)
		}
		sums[k] += v
		counts[k]++
		if cur, ok := mins[k]; !ok || v < cur {
			mins[k] = v
		}
	}
	rs, err := e.Exec("SELECT k, COUNT(*), SUM(v), MIN(v), AVG(v) FROM G GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != len(counts) {
		t.Fatalf("groups = %d want %d", rs.Len(), len(counts))
	}
	for _, r := range rs.Rows() {
		k := r[0].(string)
		if r[1] != counts[k] {
			t.Errorf("%s COUNT = %v want %d", k, r[1], counts[k])
		}
		if d := r[2].(float64) - sums[k]; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s SUM = %v want %v", k, r[2], sums[k])
		}
		if r[3] != mins[k] {
			t.Errorf("%s MIN = %v want %v", k, r[3], mins[k])
		}
		wantAvg := sums[k] / float64(counts[k])
		if d := r[4].(float64) - wantAvg; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s AVG = %v want %v", k, r[4], wantAvg)
		}
	}
}

// TestDifferentialJoin cross-checks the hash equi-join against a nested-loop
// oracle.
func TestDifferentialJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := storage.NewDatabase()
	e := NewEngine(db)
	if _, err := e.Exec("CREATE TABLE L (id LONG)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec("CREATE TABLE R (id LONG)"); err != nil {
		t.Fatal(err)
	}
	lt, _ := db.Table("L")
	rt, _ := db.Table("R")
	var ls, rs []int64
	for i := 0; i < 80; i++ {
		v := int64(rng.Intn(15))
		ls = append(ls, v)
		lt.Insert(rowset.Row{v}) //nolint:errcheck
	}
	for i := 0; i < 60; i++ {
		v := int64(rng.Intn(15))
		rs = append(rs, v)
		rt.Insert(rowset.Row{v}) //nolint:errcheck
	}
	want := 0
	for _, l := range ls {
		for _, r := range rs {
			if l == r {
				want++
			}
		}
	}
	got, err := e.Exec("SELECT COUNT(*) FROM L JOIN R ON L.id = R.id")
	if err != nil {
		t.Fatal(err)
	}
	if got.Row(0)[0] != int64(want) {
		t.Errorf("join count = %v want %d", got.Row(0)[0], want)
	}
	// LEFT JOIN row count: matches plus unmatched left rows.
	matched := map[int64]bool{}
	for _, r := range rs {
		matched[r] = true
	}
	leftWant := 0
	for _, l := range ls {
		cnt := 0
		for _, r := range rs {
			if l == r {
				cnt++
			}
		}
		if cnt == 0 {
			leftWant++
		} else {
			leftWant += cnt
		}
	}
	got, err = e.Exec("SELECT COUNT(*) FROM L LEFT JOIN R ON L.id = R.id")
	if err != nil {
		t.Fatal(err)
	}
	if got.Row(0)[0] != int64(leftWant) {
		t.Errorf("left join count = %v want %d", got.Row(0)[0], leftWant)
	}
}
