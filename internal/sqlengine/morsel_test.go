package sqlengine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rowset"
	"repro/internal/storage"
)

// forcedEngine builds a second engine over an identical database with the
// morsel-parallel path forced on: every eligible statement fans out over
// 16-row morsels on 4 workers regardless of table size or core count, so the
// parallel operators run even on the small differential fixtures and on
// single-core hosts.
func forcedEngine(t *testing.T) *Engine {
	t.Helper()
	e := differentialDB(t)
	e.Vec = VecConfig{Force: true, Workers: 4, MorselSize: 16}
	return e
}

// TestDifferentialThreeWay is the three-way oracle for the batch/morsel
// rewrite: every fixture runs through (1) the pre-rewrite materialized
// executor, (2) the sequential batch-vectorized pipeline, and (3) the forced
// morsel-parallel path, and all three must agree byte-for-byte — same column
// names, same declared types, same rows in the same order. Morsel-order
// merging makes even the parallel path's row order identical, so no fixture
// needs an unordered comparison.
func TestDifferentialThreeWay(t *testing.T) {
	seq := differentialDB(t)
	par := forcedEngine(t)
	reg := obs.NewRegistry(0)
	par.Instrument(reg)
	for _, q := range differentialFixtures {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: parse: %v", q, err)
		}
		sel := stmt.(*SelectStmt)
		want, err := oracleQuery(seq, sel)
		if err != nil {
			t.Fatalf("%s: oracle: %v", q, err)
		}
		got, err := seq.Query(sel)
		if err != nil {
			t.Fatalf("%s: sequential engine: %v", q, err)
		}
		diffRowsets(t, q+" [sequential]", got, want)

		pstmt, err := Parse(q) // fresh AST: plans must not leak state across engines
		if err != nil {
			t.Fatalf("%s: parse: %v", q, err)
		}
		pgot, err := par.Query(pstmt.(*SelectStmt))
		if err != nil {
			t.Fatalf("%s: parallel engine: %v", q, err)
		}
		diffRowsets(t, q+" [parallel]", pgot, want)
	}
	// The forced engine must actually have exercised the morsel path: the
	// corpus contains plenty of single-table order-insensitive fixtures.
	if n := reg.Counter(obs.MetricSQLParallelScansTotal).Value(); n == 0 {
		t.Fatal("forced engine never took the morsel path over the fixture corpus")
	}
	if n := reg.Counter(obs.MetricSQLMorselsTotal).Value(); n == 0 {
		t.Fatal("forced engine dispatched no morsels")
	}
}

// TestDifferentialErrorsAgreeParallel mirrors TestDifferentialErrorsAgree on
// the forced-parallel engine: eligibility checks must hand malformed
// statements back to the sequential path so error text stays identical.
func TestDifferentialErrorsAgreeParallel(t *testing.T) {
	seq := differentialDB(t)
	par := forcedEngine(t)
	for _, q := range []string{
		"SELECT nope FROM C",
		"SELECT name FROM C WHERE nope = 'rome'",
		"SELECT *, COUNT(*) FROM C",
		"SELECT STDEV(nope) FROM C",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: parse: %v", q, err)
		}
		_, sErr := seq.Query(stmt.(*SelectStmt))
		stmt, _ = Parse(q)
		_, pErr := par.Query(stmt.(*SelectStmt))
		if sErr == nil || pErr == nil {
			t.Errorf("%s: sequential err=%v, parallel err=%v (want both non-nil)", q, sErr, pErr)
			continue
		}
		if sErr.Error() != pErr.Error() {
			t.Errorf("%s: error mismatch\n  sequential: %v\n  parallel:   %v", q, sErr, pErr)
		}
	}
}

// TestMorselEligibility pins down which statements take the parallel path:
// order-insensitive single-table scans and mergeable aggregations go
// parallel; ORDER BY, DISTINCT, DISTINCT aggregates, two-pass aggregates,
// joins, views, and index-pushdown probes stay sequential.
func TestMorselEligibility(t *testing.T) {
	cases := []struct {
		q        string
		parallel bool
	}{
		{"SELECT name FROM C WHERE age > 30", true},
		{"SELECT TOP 5 name FROM C", true},
		{"SELECT city, COUNT(*), SUM(score), AVG(age), MIN(id), MAX(id) FROM C GROUP BY city", true},
		{"SELECT COUNT(*) FROM C", true},
		{"SELECT city, COUNT(*) FROM C GROUP BY city ORDER BY city", true}, // sort is post-grouping
		{"SELECT name FROM C ORDER BY age", false},
		{"SELECT DISTINCT city FROM C", false},
		{"SELECT COUNT(DISTINCT city) FROM C", false},
		{"SELECT STDEV(score) FROM C", false},
		{"SELECT VAR(score) FROM C", false},
		{"SELECT C.name FROM C JOIN O ON C.id = O.cid", false},
		// A scan over a view stays sequential, but materializing the view's
		// body (itself an eligible single-table SELECT) parallelizes, so the
		// counter legitimately ticks.
		{"SELECT id FROM V", true},
		{"SELECT name FROM C WHERE city = 'rome'", false},          // index pushdown wins
		{"SELECT name FROM C WHERE city = 'rome' OR id = 1", true}, // OR blocks pushdown
	}
	for _, c := range cases {
		e := forcedEngine(t)
		reg := obs.NewRegistry(0)
		e.Instrument(reg)
		if _, err := e.Exec(c.q); err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		got := reg.Counter(obs.MetricSQLParallelScansTotal).Value() > 0
		if got != c.parallel {
			t.Errorf("%s: parallel=%v, want %v", c.q, got, c.parallel)
		}
	}
}

// TestMorselCancellation: a pre-cancelled context aborts the morsel path
// before (or promptly after) the fan-out, same contract as the sequential
// pipeline's cancelCursor.
func TestMorselCancellation(t *testing.T) {
	e := forcedEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecContext(ctx, "SELECT city, COUNT(*) FROM C GROUP BY city"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := e.ExecContext(ctx, "SELECT name FROM C WHERE age > 20"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMorselSpanShape: the parallel path emits the same span kinds in the
// same order as the sequential pipeline (scan → filter → group-by/project),
// with the scan label carrying the fan-out so EXPLAIN ANALYZE shows it.
func TestMorselSpanShape(t *testing.T) {
	e := forcedEngine(t)
	tr := obs.NewTrace("q", "")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := e.ExecContext(ctx, "SELECT city, COUNT(*) FROM C WHERE age > 20 GROUP BY city"); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root == nil || len(root.Children) == 0 {
		t.Fatal("no trace recorded")
	}
	sel := root.Children[0]
	var kinds []string
	for _, c := range sel.Children {
		kinds = append(kinds, c.Kind)
	}
	want := []string{"scan", "filter", "group-by"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("span kinds = %v, want %v", kinds, want)
	}
	scan := sel.Children[0]
	if !strings.Contains(scan.Label, "morsels=") || !strings.Contains(scan.Label, "workers=4") {
		t.Errorf("scan label %q missing morsel fan-out", scan.Label)
	}
}

// TestBuildKeysParallelMatchesSequential: the parallel hash-join key
// precompute produces exactly the sequential keys (buildKeys is order- and
// content-deterministic regardless of worker count).
func TestBuildKeysParallelMatchesSequential(t *testing.T) {
	n := parallelKeyMin + 123
	rows := make([]rowset.Row, n)
	for i := range rows {
		var v rowset.Value = int64(i % 97)
		if i%13 == 0 {
			v = nil
		}
		rows[i] = rowset.Row{v}
	}
	seq := buildKeys(rows, 0, 1)
	par := buildKeys(rows, 0, 4)
	if len(seq) != len(par) {
		t.Fatalf("len %d != %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("key %d: %q != %q", i, seq[i], par[i])
		}
	}
	for i, r := range rows {
		if (r[0] == nil) != (seq[i] == "") {
			t.Fatalf("row %d: nil-key invariant broken", i)
		}
	}
}

// TestMorselFiltersLargeTable pushes a table past DefaultBatchSize and the
// morsel size so multi-batch, multi-morsel merging is exercised with a
// filter's selection vectors in play.
func TestMorselFiltersLargeTable(t *testing.T) {
	db := storage.NewDatabase()
	seq := NewEngine(db)
	if _, err := seq.Exec("CREATE TABLE T (id LONG, g TEXT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	n := 3*rowset.DefaultBatchSize + 77
	for i := 0; i < n; i++ {
		var v rowset.Value = float64(i%7) * 0.5
		if i%19 == 0 {
			v = nil
		}
		if err := tbl.Insert(rowset.Row{int64(i), string(rune('a' + i%5)), v}); err != nil {
			t.Fatal(err)
		}
	}
	par := NewEngine(db)
	par.Vec = VecConfig{Force: true, Workers: 4, MorselSize: 512}
	for _, q := range []string{
		"SELECT id, v FROM T WHERE id > 100 AND g = 'c'",
		"SELECT g, COUNT(*), SUM(v), MIN(v), MAX(id), AVG(v) FROM T WHERE v IS NOT NULL GROUP BY g",
		"SELECT COUNT(*) FROM T WHERE v IS NULL",
		"SELECT TOP 10 id FROM T WHERE g = 'b'",
	} {
		sGot, err := seq.Exec(q)
		if err != nil {
			t.Fatalf("%s: sequential: %v", q, err)
		}
		pGot, err := par.Exec(q)
		if err != nil {
			t.Fatalf("%s: parallel: %v", q, err)
		}
		diffRowsets(t, q, pGot, sGot)
	}
}
