// Package sqlengine implements the SQL subset the provider depends on: the
// SELECT queries embedded in SHAPE statements and prediction joins, plus the
// DDL/DML needed to stage training data (CREATE TABLE, INSERT, UPDATE,
// DELETE, DROP). It parses to an AST, resolves names, and executes against
// the storage engine, producing rowsets.
//
// Supported SELECT shape:
//
//	SELECT [DISTINCT] [TOP n] items
//	FROM t [alias] [ {INNER|LEFT} JOIN u [alias] ON cond ]* [ , v ]*
//	[WHERE cond] [GROUP BY exprs] [HAVING cond]
//	[ORDER BY exprs [ASC|DESC]]
//
// with aggregates COUNT/SUM/AVG/MIN/MAX, scalar functions, and the usual
// operator set including LIKE, IN, BETWEEN, and IS [NOT] NULL.
package sqlengine

import (
	"fmt"
	"strings"

	"repro/internal/lex"
	"repro/internal/rowset"
)

// Expr is a SQL expression tree node.
type Expr interface {
	fmt.Stringer
	expr()
}

// ColumnRef names a column, optionally qualified: [Qualifier.]Name.
type ColumnRef struct {
	Qualifier string
	Name      string
	// Pos is the source position of the reference's first token; the zero
	// value means "unknown" (synthesized nodes). Used by diagnostics only —
	// execution never depends on it.
	Pos lex.Pos
}

func (*ColumnRef) expr() {}

func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return fmt.Sprintf("[%s].[%s]", c.Qualifier, c.Name)
	}
	return "[" + c.Name + "]"
}

// Full returns the qualified name used for resolution.
func (c *ColumnRef) Full() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value (number, string, boolean, or NULL).
type Literal struct {
	Val rowset.Value
}

func (*Literal) expr() {}

func (l *Literal) String() string {
	if s, ok := l.Val.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return rowset.FormatValue(l.Val)
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators in precedence groups (low to high): OR; AND; comparisons;
// additive; multiplicative.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpConcat
)

var binOpNames = map[BinaryOp]string{
	OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpLike: "LIKE", OpAdd: "+", OpSub: "-",
	OpMul: "*", OpDiv: "/", OpConcat: "||",
}

// Binary applies Op to L and R.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (*Binary) expr() {}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, binOpNames[b.Op], b.R)
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (*Unary) expr() {}

func (u *Unary) String() string { return fmt.Sprintf("(%s %s)", u.Op, u.X) }

// IsNull tests x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

func (*IsNull) expr() {}

func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.X)
	}
	return fmt.Sprintf("(%s IS NULL)", n.X)
}

// In tests x [NOT] IN (list) or x [NOT] IN (SELECT ...).
type In struct {
	X      Expr
	List   []Expr
	Negate bool
	// Subquery, when set, supplies the list at execution time (the engine
	// resolves it via ResolveSubqueries before evaluation).
	Subquery *SelectStmt
}

func (*In) expr() {}

func (in *In) String() string {
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	if in.Subquery != nil {
		return fmt.Sprintf("(%s %s (<subquery>))", in.X, op)
	}
	items := make([]string, len(in.List))
	for i, e := range in.List {
		items[i] = e.String()
	}
	return fmt.Sprintf("(%s %s (%s))", in.X, op, strings.Join(items, ", "))
}

// Between tests x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

func (*Between) expr() {}

func (b *Between) String() string {
	op := "BETWEEN"
	if b.Negate {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", b.X, op, b.Lo, b.Hi)
}

// FuncCall is a scalar or aggregate function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool // COUNT(DISTINCT x)
	// Pos is the source position of the function name token; zero when the
	// node was synthesized rather than parsed.
	Pos lex.Pos
}

func (*FuncCall) expr() {}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(args, ", "))
}

// SelectItem is one projection item: an expression with an optional alias, or
// a star (optionally qualified: t.*).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	Qualifier string // for t.*
}

func (s SelectItem) String() string {
	if s.Star {
		if s.Qualifier != "" {
			return s.Qualifier + ".*"
		}
		return "*"
	}
	if s.Alias != "" {
		return fmt.Sprintf("%s AS [%s]", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// JoinKind enumerates join types.
type JoinKind int

// Join kinds. Cross joins come from comma-separated FROM lists.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// TableRef is one FROM-clause source with how it joins to the sources before
// it (the first entry's Kind/On are ignored).
type TableRef struct {
	Name  string
	Alias string
	Kind  JoinKind
	On    Expr
}

// AliasOrName returns the name the source is referenced by.
func (t TableRef) AliasOrName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Statement is any executable SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Top      int // 0 = no limit
	Items    []SelectItem
	From     []TableRef // empty means a FROM-less scalar select
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
}

func (*SelectStmt) stmt() {}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name    string
	Columns []rowset.Column
}

func (*CreateTableStmt) stmt() {}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...),(...) or
// INSERT INTO name [(cols)] SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Query   *SelectStmt
}

func (*InsertStmt) stmt() {}

// DeleteStmt is DELETE FROM name [WHERE cond].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// UpdateStmt is UPDATE name SET col=expr[, ...] [WHERE cond].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col=expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

func (*UpdateStmt) stmt() {}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
}

func (*DropTableStmt) stmt() {}
