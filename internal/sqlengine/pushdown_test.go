package sqlengine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/rowset"
	"repro/internal/storage"
)

func pushScans(t *testing.T, e *Engine, refs ...TableRef) []*compiledScan {
	t.Helper()
	scans := make([]*compiledScan, len(refs))
	for i, ref := range refs {
		cs, err := e.resolveScan(ref)
		if err != nil {
			t.Fatalf("resolveScan(%s): %v", ref.Name, err)
		}
		scans[i] = cs
	}
	return scans
}

func eq(l, r Expr) Expr  { return &Binary{Op: OpEq, L: l, R: r} }
func and(l, r Expr) Expr { return &Binary{Op: OpAnd, L: l, R: r} }
func col(q, n string) Expr {
	return &ColumnRef{Qualifier: q, Name: n}
}
func lit(v rowset.Value) Expr { return &Literal{Val: v} }

// TestPushdownApplies covers the shapes that must reach the index: a bare
// equality, either operand order, and the pushed conjunct being removed from
// the residual while the rest of the conjunction survives.
func TestPushdownApplies(t *testing.T) {
	e := differentialDB(t)

	scans := pushScans(t, e, TableRef{Name: "C"})
	res := planPushdown(eq(col("", "city"), lit("rome")), scans)
	if res != nil {
		t.Errorf("residual = %v, want nil", res)
	}
	if p := scans[0].pushed; p == nil || p.col != "city" || p.val != "rome" {
		t.Errorf("pushed = %+v, want city=rome", scans[0].pushed)
	}

	// Literal on the left, plus a residual conjunct.
	scans = pushScans(t, e, TableRef{Name: "C"})
	rest := &Binary{Op: OpGt, L: col("", "age"), R: lit(int64(30))}
	res = planPushdown(and(eq(lit("oslo"), col("", "city")), rest), scans)
	if scans[0].pushed == nil || scans[0].pushed.val != "oslo" {
		t.Errorf("pushed = %+v, want city=oslo", scans[0].pushed)
	}
	if res != rest {
		t.Errorf("residual = %v, want the age conjunct", res)
	}

	// A second equality on the same scan stays in the residual: one probe
	// per scan.
	scans = pushScans(t, e, TableRef{Name: "C"})
	res = planPushdown(and(eq(col("", "city"), lit("rome")), eq(col("", "city"), lit("oslo"))), scans)
	if scans[0].pushed == nil || res == nil {
		t.Errorf("pushed = %+v residual = %v, want one pushed + one residual", scans[0].pushed, res)
	}

	// Inner-join right side is eligible.
	scans = pushScans(t, e, TableRef{Name: "C"}, TableRef{Name: "O", Kind: JoinInner,
		On: eq(col("C", "id"), col("O", "cid"))})
	res = planPushdown(eq(col("O", "cid"), lit(int64(3))), scans)
	if res != nil || scans[1].pushed == nil || scans[1].pushed.col != "cid" {
		t.Errorf("inner-join right side: residual = %v pushed = %+v", res, scans[1].pushed)
	}
}

// TestPushdownRefusals covers every soundness rule in planPushdown: each
// refused shape must leave the scan unpushed and the predicate intact for the
// filter operator (or its error reporting).
func TestPushdownRefusals(t *testing.T) {
	e := differentialDB(t)
	cases := []struct {
		name  string
		refs  []TableRef
		where Expr
	}{
		{"or-not-a-conjunct", []TableRef{{Name: "C"}},
			&Binary{Op: OpOr, L: eq(col("", "city"), lit("rome")), R: eq(col("", "city"), lit("oslo"))}},
		{"non-equality", []TableRef{{Name: "C"}},
			&Binary{Op: OpGt, L: col("", "city"), R: lit("rome")}},
		{"null-literal", []TableRef{{Name: "C"}}, eq(col("", "city"), lit(nil))},
		{"column-to-column", []TableRef{{Name: "C"}}, eq(col("", "city"), col("", "name"))},
		{"no-index", []TableRef{{Name: "C"}}, eq(col("", "name"), lit("n01"))},
		{"type-family-mismatch", []TableRef{{Name: "C"}}, eq(col("", "city"), lit(int64(3)))},
		{"unknown-column", []TableRef{{Name: "C"}}, eq(col("", "bogus"), lit("rome"))},
		{"view-source", []TableRef{{Name: "V"}}, eq(col("", "city"), lit("rome"))},
		{"ambiguous-self-join", []TableRef{{Name: "C", Alias: "a"}, {Name: "C", Alias: "b", Kind: JoinCross}},
			eq(col("", "city"), lit("rome"))},
		{"left-join-null-side", []TableRef{{Name: "C"}, {Name: "O", Kind: JoinLeft,
			On: eq(col("C", "id"), col("O", "cid"))}},
			eq(col("O", "cid"), lit(int64(3)))},
	}
	for _, tc := range cases {
		scans := pushScans(t, e, tc.refs...)
		res := planPushdown(tc.where, scans)
		for i, cs := range scans {
			if cs.pushed != nil {
				t.Errorf("%s: scan %d pushed %+v, want refusal", tc.name, i, cs.pushed)
			}
		}
		if res == nil {
			t.Errorf("%s: residual is nil, want predicate preserved", tc.name)
		}
	}
}

// TestIndexableEq pins the type-family matrix, DATE refusal in particular:
// index buckets key dates at nanosecond precision while Compare collapses to
// seconds, so a date probe could miss rows a post-scan filter would keep.
func TestIndexableEq(t *testing.T) {
	now := time.Now()
	cases := []struct {
		ct   rowset.Type
		v    rowset.Value
		want bool
	}{
		{rowset.TypeLong, int64(3), true},
		{rowset.TypeLong, 3.5, true},
		{rowset.TypeDouble, int64(3), true},
		{rowset.TypeDouble, 3.5, true},
		{rowset.TypeText, "x", true},
		{rowset.TypeBool, true, true},
		{rowset.TypeText, int64(3), false},
		{rowset.TypeLong, "3", false},
		{rowset.TypeBool, int64(1), false},
		{rowset.TypeDate, now, false},
		{rowset.TypeDate, "2020-01-01", false},
		{rowset.TypeNull, "x", false},
	}
	for _, tc := range cases {
		if got := indexableEq(tc.ct, tc.v); got != tc.want {
			t.Errorf("indexableEq(%v, %v (%T)) = %v, want %v", tc.ct, tc.v, tc.v, got, tc.want)
		}
	}
}

// skewedJoinTables builds a tiny table and a big one sharing a key domain.
func skewedJoinTables(b *testing.B, small, big int) (*Engine, []rowset.Row, []rowset.Row, *rowset.Schema, *rowset.Schema) {
	b.Helper()
	db := storage.NewDatabase()
	e := NewEngine(db)
	if _, err := e.Exec("CREATE TABLE S (k LONG, tag TEXT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := e.Exec("CREATE TABLE B (k LONG, payload TEXT)"); err != nil {
		b.Fatal(err)
	}
	st, _ := db.Table("S")
	bt, _ := db.Table("B")
	for i := 0; i < small; i++ {
		if err := st.Insert(rowset.Row{int64(i), fmt.Sprintf("t%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < big; i++ {
		// Keys span 4x the small table's domain: 3 of 4 big rows match
		// nothing, the selective shape where hashing the big side is pure
		// waste.
		if err := bt.Insert(rowset.Row{int64(i % (small * 4)), fmt.Sprintf("p%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	return e, st.Scan().Rows(), bt.Scan().Rows(), st.Schema(), bt.Schema()
}

// BenchmarkSkewedJoinBuildSide measures the hash-join build-side choice on a
// skewed join (8 rows against 20000): "small" builds the hash table on the
// tiny input (what newJoinCursor picks when the small side is on the left),
// "big" is the old unconditional build-on-right behaviour.
func BenchmarkSkewedJoinBuildSide(b *testing.B) {
	_, smallRows, bigRows, ss, bs := skewedJoinTables(b, 8, 20000)
	on := eq(col("S", "k"), col("B", "k"))
	qualify := func(s *rowset.Schema, alias string) *rowset.Schema {
		cols := make([]rowset.Column, s.Len())
		for i, c := range s.Columns {
			cols[i] = rowset.Column{Name: alias + "." + c.Name, Type: c.Type, Nested: c.Nested}
		}
		return rowset.MustSchema(cols...)
	}
	sq, bq := qualify(ss, "S"), qualify(bs, "B")

	run := func(b *testing.B, mk func() (rowset.Cursor, error)) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := mk()
			if err != nil {
				b.Fatal(err)
			}
			rows, err := drainRows(c)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) != len(bigRows)/4 {
				b.Fatalf("join yielded %d rows, want %d", len(rows), len(bigRows)/4)
			}
		}
	}
	b.Run("build-small", func(b *testing.B) {
		run(b, func() (rowset.Cursor, error) {
			c, _, err := newJoinCursor(newSliceCursor(sq, smallRows), newSliceCursor(bq, bigRows), JoinInner, on, -1, -1)
			return c, err
		})
	})
	b.Run("build-big", func(b *testing.B) {
		run(b, func() (rowset.Cursor, error) {
			// Forced build-on-right with the big input on the right: the
			// pre-rewrite executor's only strategy.
			schema, err := concatSchemas(sq, bq)
			if err != nil {
				return nil, err
			}
			lo, ro, ok := equiJoinOrdinals(on, sq, bq)
			if !ok {
				return nil, fmt.Errorf("not an equi-join")
			}
			return &hashJoinStream{
				left: newSliceCursor(sq, smallRows), right: newSliceCursor(bq, bigRows),
				schema: schema, lo: lo, ro: ro,
			}, nil
		})
	})
}

// BenchmarkSkewedJoinSQL is the same skew through the full SQL pipeline, with
// the small table on the left — the order the build-side heuristic improves.
func BenchmarkSkewedJoinSQL(b *testing.B) {
	e, _, bigRows, _, _ := skewedJoinTables(b, 8, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := e.Exec("SELECT S.tag, B.payload FROM S JOIN B ON S.k = B.k")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != len(bigRows)/4 {
			b.Fatalf("join yielded %d rows, want %d", rs.Len(), len(bigRows)/4)
		}
	}
}
