package sqlengine

import (
	"strings"
	"testing"

	"repro/internal/lex"
	"repro/internal/rowset"
)

func mustParseSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	st, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", q, st)
	}
	return sel
}

func TestParseParamPlaceholders(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t WHERE x = ? AND y = @low AND z BETWEEN @low AND ?")
	ps := CollectParams(sel)
	if len(ps) != 4 {
		t.Fatalf("params = %d, want 4", len(ps))
	}
	// CollectParams returns source order.
	wantNames := []string{"", "low", "low", ""}
	for i, p := range ps {
		if p.Name != wantNames[i] {
			t.Errorf("param %d name = %q, want %q", i, p.Name, wantNames[i])
		}
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].TokPos <= ps[i-1].TokPos {
			t.Errorf("params out of source order at %d", i)
		}
	}
}

func TestParseParamSkipsQuoted(t *testing.T) {
	sel := mustParseSelect(t, "SELECT '?' FROM t WHERE x = ? AND y = 'a@b'")
	if n := len(CollectParams(sel)); n != 1 {
		t.Errorf("params = %d, want 1 ('?' in string and '@' in string are text)", n)
	}
}

func TestAssignOrdinalsPositional(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t WHERE x = ? AND y = ?")
	slots, err := AssignParams(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 {
		t.Fatalf("slots = %d, want 2", len(slots))
	}
	ps := CollectParams(sel)
	if ps[0].Ordinal != 0 || ps[1].Ordinal != 1 {
		t.Errorf("ordinals = %d, %d", ps[0].Ordinal, ps[1].Ordinal)
	}
}

func TestAssignOrdinalsNamedShareSlots(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t WHERE x = @v OR y = @V OR z = @other")
	slots, err := AssignParams(sel)
	if err != nil {
		t.Fatal(err)
	}
	// @v and @V are one parameter (names fold); @other is a second.
	if len(slots) != 2 {
		t.Fatalf("slots = %d, want 2 (%v)", len(slots), slots)
	}
	ps := CollectParams(sel)
	if ps[0].Ordinal != 0 || ps[1].Ordinal != 0 || ps[2].Ordinal != 1 {
		t.Errorf("ordinals = %d, %d, %d, want 0, 0, 1", ps[0].Ordinal, ps[1].Ordinal, ps[2].Ordinal)
	}
}

func TestAssignOrdinalsRejectsMixedStyles(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t WHERE x = ? AND y = @v")
	if _, err := AssignParams(sel); err == nil || !strings.Contains(err.Error(), "mix") {
		t.Errorf("mixed placeholder styles must error, got %v", err)
	}
}

func TestBindStatementClonesNotMutates(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t WHERE x = ? AND y > ?")
	if _, err := AssignParams(sel); err != nil {
		t.Fatal(err)
	}
	bound, err := BindStatement(sel, []rowset.Value{int64(7), "s"})
	if err != nil {
		t.Fatal(err)
	}
	bsel := bound.(*SelectStmt)
	if bsel == sel {
		t.Fatal("BindStatement must clone, not mutate")
	}
	// The bound tree carries literals...
	if n := len(CollectParams(bsel)); n != 0 {
		t.Errorf("bound statement still has %d params", n)
	}
	// ...while the original keeps its placeholders (it is shared plan state).
	if n := len(CollectParams(sel)); n != 2 {
		t.Errorf("original statement params = %d, want 2", n)
	}
	var lits []rowset.Value
	walkStatementExprs(bsel, func(e Expr) {
		if l, ok := e.(*Literal); ok {
			lits = append(lits, l.Val)
		}
	})
	found := 0
	for _, v := range lits {
		if v == int64(7) || v == "s" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("bound literals = %v, want 7 and \"s\"", lits)
	}
}

func TestBindStatementArity(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t WHERE x = ?")
	if _, err := AssignParams(sel); err != nil {
		t.Fatal(err)
	}
	if _, err := BindStatement(sel, nil); err == nil {
		t.Error("binding zero args over one param must error")
	}
}

func TestInferParamTypes(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t WHERE id = ? AND name LIKE ? AND age BETWEEN ? AND ?")
	slots, err := AssignParams(sel)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]rowset.Type{"id": rowset.TypeLong, "age": rowset.TypeDouble}
	InferParamTypes(sel, slots, func(cr *ColumnRef) (rowset.Type, bool) {
		tt, ok := types[strings.ToLower(cr.Name)]
		return tt, ok
	})
	want := []rowset.Type{rowset.TypeLong, rowset.TypeText, rowset.TypeDouble, rowset.TypeDouble}
	for i, s := range slots {
		if s.Type != want[i] {
			t.Errorf("slot %d type = %v, want %v", i, s.Type, want[i])
		}
	}
}

func TestReferencedTables(t *testing.T) {
	sel := mustParseSelect(t,
		"SELECT a FROM T JOIN U ON T.id = U.id WHERE x IN (SELECT y FROM V)")
	got := ReferencedTables(sel)
	want := map[string]bool{"t": true, "u": true, "v": true}
	if len(got) != len(want) {
		t.Fatalf("tables = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected table %q", n)
		}
	}
}

func TestParamLabel(t *testing.T) {
	if l := (ParamSlot{Name: "v"}).Label(2); l != "@v" {
		t.Errorf("named label = %q", l)
	}
	if l := (ParamSlot{}).Label(2); l != "3" {
		t.Errorf("positional label = %q (1-based position)", l)
	}
}

// countPlaceholderTokens is the oracle for the fuzz test. A '?' punct token
// can only ever parse as a parameter, so its count is exact. An '@name'
// identifier token is merely an upper bound: grammar positions that take a
// bare identifier (an alias, for example "SELECT 0 @x") consume it as a
// plain name instead.
func countPlaceholderTokens(q string) (exact, bound int, ok bool) {
	toks, err := lex.Tokenize(q)
	if err != nil {
		return 0, 0, false
	}
	for _, tk := range toks {
		if tk.Kind == lex.Punct && tk.Text == "?" {
			exact++
		}
		if tk.Kind == lex.Ident && !tk.Quoted && len(tk.Text) > 1 && strings.HasPrefix(tk.Text, "@") {
			bound++
		}
	}
	return exact, exact + bound, true
}

// FuzzParamBind drives the placeholder machinery with arbitrary statement
// text: whatever parses must collect exactly the placeholder tokens the
// lexer sees (quoted '?' is text), ordinal assignment must be total or fail
// cleanly, and binding with matching arity must never panic or leave a
// parameter behind.
func FuzzParamBind(f *testing.F) {
	for _, seed := range []string{
		"SELECT a FROM t WHERE x = ?",
		"SELECT a FROM t WHERE x = ? AND y = ?",
		"SELECT a FROM t WHERE name = 'O''Brien' AND x = ?",
		"SELECT '?' FROM t WHERE x = ?",
		"SELECT a FROM t WHERE x = @p AND y = @p",
		"SELECT a FROM [t?] WHERE [x?] = ?",
		"SELECT a FROM t WHERE x = ? AND y = @mixed",
		"SELECT a FROM t WHERE x IN (?, ?, ?)",
		"SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE z = ?)",
		"INSERT INTO t VALUES (?, 'it''s', ?)",
		"UPDATE t SET a = ? WHERE b = ?",
		"DELETE FROM t WHERE a = ?",
		"SELECT a FROM t WHERE x = '?' || '@y'",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, q string) {
		st, err := Parse(q)
		if err != nil || st == nil {
			return
		}
		ps := CollectParams(st)
		if exact, bound, ok := countPlaceholderTokens(q); ok {
			if len(ps) < exact || len(ps) > bound {
				t.Fatalf("CollectParams = %d, lexer sees [%d,%d] placeholders in %q", len(ps), exact, bound, q)
			}
		}
		slots, err := AssignParams(st)
		if err != nil {
			return // mixed styles: a clean, expected failure
		}
		for _, p := range ps {
			if p.Ordinal < 0 || p.Ordinal >= len(slots) {
				t.Fatalf("param ordinal %d out of range [0,%d) in %q", p.Ordinal, len(slots), q)
			}
		}
		args := make([]rowset.Value, len(slots))
		for i := range args {
			args[i] = int64(i)
		}
		bound, err := BindStatement(st, args)
		if err != nil {
			t.Fatalf("BindStatement(%q): %v", q, err)
		}
		if n := len(CollectParams(bound)); n != 0 {
			t.Fatalf("bound statement of %q still has %d params", q, n)
		}
		// Underbinding must fail, not panic (when there is at least one slot).
		if len(slots) > 0 {
			if _, err := BindStatement(st, args[:len(args)-1]); err == nil {
				t.Fatalf("underbinding %q must error", q)
			}
		}
	})
}
