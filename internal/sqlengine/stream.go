package sqlengine

// This file is the streaming (Volcano-style) SELECT executor: the FROM/WHERE/
// project/sort/distinct/TOP pipeline is compiled into a chain of pull-based
// rowset.Cursor operators, and rows flow through one at a time instead of
// being materialized into a fresh Rowset at every operator boundary.
//
// Operators that pipeline: scan, filter, equi-join probe side, projection,
// DISTINCT, and TOP (which stops pulling — and therefore stops all upstream
// work — after N rows). Operators that materialize, because their semantics
// require seeing every input row first: ORDER BY, GROUP BY, and the hash-join
// build side.
//
// Scans are index-aware: a WHERE conjunct of the form `col = literal` whose
// column resolves to exactly one FROM entry with a hash index is answered by
// storage.Table.LookupEqualRows (O(bucket) instead of O(table)) and removed
// from the residual filter. Pushdown is deliberately conservative — see
// planPushdown for the soundness rules.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rowset"
	"repro/internal/storage"
)

// ---------- generic cursors ----------

// sliceCursor streams a pre-built row slice under an arbitrary schema. Rows
// are shared, never copied.
type sliceCursor struct {
	schema *rowset.Schema
	rows   []rowset.Row
	i      int
}

func newSliceCursor(schema *rowset.Schema, rows []rowset.Row) *sliceCursor {
	return &sliceCursor{schema: schema, rows: rows}
}

func (c *sliceCursor) Next() (rowset.Row, error) {
	if c.i >= len(c.rows) {
		return nil, nil
	}
	r := c.rows[c.i]
	c.i++
	return r, nil
}

func (c *sliceCursor) Schema() *rowset.Schema { return c.schema }

func (c *sliceCursor) Close() error {
	c.i = len(c.rows)
	c.rows = nil
	return nil
}

// Size reports the exact number of rows the cursor will yield.
func (c *sliceCursor) Size() int { return len(c.rows) }

// NextBatch yields zero-copy subslices of the backing rows.
func (c *sliceCursor) NextBatch() (rowset.Batch, error) {
	if c.i >= len(c.rows) {
		return rowset.Batch{}, nil
	}
	hi := c.i + rowset.DefaultBatchSize
	if hi > len(c.rows) {
		hi = len(c.rows)
	}
	b := rowset.Batch{Rows: c.rows[c.i:hi]}
	c.i = hi
	return b, nil
}

// schemaCursor renames a stream's schema (table columns -> "alias.column")
// without touching the rows.
type schemaCursor struct {
	src    rowset.Cursor
	schema *rowset.Schema
	bsrc   rowset.BatchCursor
}

func (c *schemaCursor) Next() (rowset.Row, error) { return c.src.Next() }
func (c *schemaCursor) Schema() *rowset.Schema    { return c.schema }
func (c *schemaCursor) Close() error              { return c.src.Close() }
func (c *schemaCursor) Size() int                 { return cursorSize(c.src) }

func (c *schemaCursor) NextBatch() (rowset.Batch, error) {
	if c.bsrc == nil {
		c.bsrc = rowset.BatchCursorOf(c.src)
	}
	return c.bsrc.NextBatch()
}

// cancelCursor threads context cancellation into the pull pipeline: Next
// polls ctx.Done() every pollEvery rows, so a cancelled statement stops
// pulling — and therefore stops every upstream operator — mid-stream
// instead of running the scan to completion. QueryContext inserts it only
// when the context is actually cancellable (Done() != nil), keeping the
// common Background path allocation- and branch-free.
type cancelCursor struct {
	src  rowset.Cursor
	ctx  context.Context
	done <-chan struct{}
	n    uint

	// batch mode: upstream batches are doled out in sub-batch windows of at
	// most pollEvery rows, with a poll before each window, so cancellation
	// latency stays at the row path's bound instead of stretching by the
	// batch size.
	bsrc    rowset.BatchCursor
	pending rowset.Batch
	wlo     int
}

// pollEvery is the row stride between cancellation polls: frequent enough
// that a runaway join aborts promptly, sparse enough that the select adds
// no measurable per-row cost.
const pollEvery = 64

func (c *cancelCursor) Next() (rowset.Row, error) {
	if c.n%pollEvery == 0 {
		select {
		case <-c.done:
			return nil, c.ctx.Err()
		default:
		}
	}
	c.n++
	return c.src.Next()
}

func (c *cancelCursor) NextBatch() (rowset.Batch, error) {
	if c.bsrc == nil {
		c.bsrc = rowset.BatchCursorOf(c.src)
	}
	for {
		// One poll per loop turn: before the first window of every upstream
		// batch (which also aborts a pre-cancelled statement before any row
		// flows) and again before each subsequent window.
		select {
		case <-c.done:
			return rowset.Batch{}, c.ctx.Err()
		default:
		}
		if c.wlo < c.pending.Len() {
			hi := c.wlo + pollEvery
			if hi > c.pending.Len() {
				hi = c.pending.Len()
			}
			b := c.pending.Slice(c.wlo, hi)
			c.wlo = hi
			return b, nil
		}
		b, err := c.bsrc.NextBatch()
		if err != nil || b.Empty() {
			return b, err
		}
		c.pending, c.wlo = b, 0
	}
}

func (c *cancelCursor) Schema() *rowset.Schema { return c.src.Schema() }
func (c *cancelCursor) Close() error           { return c.src.Close() }
func (c *cancelCursor) Size() int              { return cursorSize(c.src) }

// sized is implemented by cursors that know exactly how many rows they will
// yield (table snapshots, slices, materialized views). Join planning uses it
// to pick the smaller hash-join build side.
type sized interface{ Size() int }

// cursorSize returns the cursor's exact cardinality, or -1 when unknown.
func cursorSize(c rowset.Cursor) int {
	if s, ok := c.(sized); ok {
		return s.Size()
	}
	return -1
}

// smallDrainSize is the source cardinality below which drains stay
// row-at-a-time even over a batch-capable pipeline: the batch path's fixed
// per-statement setup (adapter wrappers, selection vectors, output arenas)
// costs more than the per-row interface calls it amortizes. Indexed point
// lookups — whose probe gives an exact size hint of a few rows — are the
// case that matters.
const smallDrainSize = 64

// drainRows pulls a cursor to exhaustion, returning the yielded rows. The
// cursor is closed in every case. Batch-capable cursors drain batch-at-a-time
// (one interface call per batch instead of per row); live rows are copied out
// of the producer-owned batches, which is safe to retain because engine rows
// are immutable.
func drainRows(c rowset.Cursor) ([]rowset.Row, error) {
	rows, _, err := drainRowsCounted(c)
	return rows, err
}

// drainRowsCounted is drainRows reporting how many batches flowed (0 on the
// row path), for the engine's sql_batches_total counter.
func drainRowsCounted(c rowset.Cursor) ([]rowset.Row, int64, error) {
	defer c.Close() //nolint:errcheck // Close after exhaustion is a no-op
	var rows []rowset.Row
	n := cursorSize(c)
	if n > 0 {
		rows = make([]rowset.Row, 0, n) // upper bound: filters shrink it
	}
	if bc, ok := c.(rowset.BatchCursor); ok && (n < 0 || n > smallDrainSize) {
		var batches int64
		for {
			b, err := bc.NextBatch()
			if err != nil {
				return nil, batches, err
			}
			if b.Empty() {
				return rows, batches, nil
			}
			batches++
			if b.Sel == nil {
				rows = append(rows, b.Rows...)
			} else {
				for _, i := range b.Sel {
					rows = append(rows, b.Rows[i])
				}
			}
		}
	}
	for {
		r, err := c.Next()
		if err != nil {
			return nil, 0, err
		}
		if r == nil {
			return rows, 0, nil
		}
		rows = append(rows, r)
	}
}

// ---------- span accounting ----------

// opCursor decorates an operator cursor with span accounting: the rows that
// actually flow through the operator, and — only under EXPLAIN ANALYZE's
// detailed mode, because it costs two clock reads per row — the operator's
// inclusive time (its own work plus upstream pulls). The span was opened and
// closed at pipeline build time; its Rows/Elapsed fields are patched when the
// stream ends, which is before anyone reads the tree (EXPLAIN ANALYZE reads
// after execution, DM_TRACE retains trees only after the statement finishes).
type opCursor struct {
	src     rowset.Cursor
	sp      *obs.Span
	rows    int64
	timed   bool
	elapsed time.Duration

	bsrc    rowset.BatchCursor
	batches int64
	labeled bool
}

// traced wraps c with span accounting, or returns c unchanged when the
// statement is untraced (sp nil) so untraced execution pays nothing.
func traced(c rowset.Cursor, sp *obs.Span, timed bool) rowset.Cursor {
	if sp == nil {
		return c
	}
	return &opCursor{src: c, sp: sp, timed: timed}
}

func (o *opCursor) Next() (rowset.Row, error) {
	var start time.Time
	if o.timed {
		start = time.Now()
	}
	r, err := o.src.Next()
	if o.timed {
		o.elapsed += time.Since(start)
	}
	if r != nil {
		o.rows++
	} else {
		o.flush()
	}
	return r, err
}

// NextBatch accounts batch pulls the same way Next accounts rows, and also
// counts batches so the span label can record the operator's batch fan-in.
func (o *opCursor) NextBatch() (rowset.Batch, error) {
	if o.bsrc == nil {
		o.bsrc = rowset.BatchCursorOf(o.src)
	}
	var start time.Time
	if o.timed {
		start = time.Now()
	}
	b, err := o.bsrc.NextBatch()
	if o.timed {
		o.elapsed += time.Since(start)
	}
	if !b.Empty() {
		o.rows += int64(b.Len())
		o.batches++
	} else {
		o.flush()
	}
	return b, err
}

func (o *opCursor) Schema() *rowset.Schema { return o.src.Schema() }

func (o *opCursor) Close() error {
	o.flush()
	return o.src.Close()
}

func (o *opCursor) Size() int { return cursorSize(o.src) }

func (o *opCursor) flush() {
	o.sp.Rows = o.rows
	if o.timed {
		o.sp.Elapsed = o.elapsed
	}
	if o.batches > 0 && !o.labeled {
		o.labeled = true
		label := fmt.Sprintf("batches=%d", o.batches)
		if o.sp.Label != "" {
			label = o.sp.Label + " " + label
		}
		o.sp.SetLabel(label)
	}
}

// ---------- filter ----------

type filterCursor struct {
	src  rowset.Cursor
	cond Expr // nil passes everything (the whole WHERE was pushed into a scan)
	env  *Env

	// pred is the compiled form of cond when the predicate compiler admits
	// it (see pred.go): same rows pass, no Env, no error paths.
	pred func(rowset.Row) bool

	bsrc rowset.BatchCursor
	sel  []int
}

func newFilterCursor(src rowset.Cursor, cond Expr) *filterCursor {
	c := &filterCursor{src: src, cond: cond, env: &Env{Schema: src.Schema()}}
	if cond != nil {
		c.pred, _ = compilePred(cond, src.Schema())
	}
	return c
}

func (c *filterCursor) Next() (rowset.Row, error) {
	for {
		r, err := c.src.Next()
		if err != nil || r == nil {
			return r, err
		}
		if c.cond == nil {
			return r, nil
		}
		if c.pred != nil {
			if c.pred(r) {
				return r, nil
			}
			continue
		}
		c.env.Row = r
		v, err := Eval(c.cond, c.env)
		if err != nil {
			return nil, err
		}
		ok, err := Truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			return r, nil
		}
	}
}

// NextBatch filters a whole upstream batch with a selection vector: survivors
// are marked, not copied. The returned batch aliases the upstream batch's
// rows, which stay valid until this cursor's next pull — exactly the window
// the ownership rule grants the consumer.
func (c *filterCursor) NextBatch() (rowset.Batch, error) {
	if c.bsrc == nil {
		c.bsrc = rowset.BatchCursorOf(c.src)
	}
	for {
		b, err := c.bsrc.NextBatch()
		if err != nil || b.Empty() {
			return b, err
		}
		if c.cond == nil {
			return b, nil
		}
		sel := c.sel[:0]
		if c.pred != nil {
			if b.Sel == nil {
				for i, r := range b.Rows {
					if c.pred(r) {
						sel = append(sel, i)
					}
				}
			} else {
				for _, i := range b.Sel {
					if c.pred(b.Rows[i]) {
						sel = append(sel, i)
					}
				}
			}
		} else {
			n := b.Len()
			for i := 0; i < n; i++ {
				r := b.Row(i)
				c.env.Row = r
				v, err := Eval(c.cond, c.env)
				if err != nil {
					return rowset.Batch{}, err
				}
				ok, err := Truthy(v)
				if err != nil {
					return rowset.Batch{}, err
				}
				if !ok {
					continue
				}
				if b.Sel == nil {
					sel = append(sel, i)
				} else {
					sel = append(sel, b.Sel[i])
				}
			}
		}
		c.sel = sel
		if len(sel) == 0 {
			continue // fully filtered batch: keep pulling
		}
		return rowset.Batch{Rows: b.Rows, Sel: sel}, nil
	}
}

func (c *filterCursor) Schema() *rowset.Schema { return c.src.Schema() }
func (c *filterCursor) Close() error           { return c.src.Close() }

// Size forwards the source's cardinality as an upper bound (the filter can
// only shrink it) — callers of cursorSize already treat it as a hint.
func (c *filterCursor) Size() int { return cursorSize(c.src) }

// ---------- limit / distinct ----------

type limitCursor struct {
	src rowset.Cursor
	n   int
}

func (c *limitCursor) Next() (rowset.Row, error) {
	if c.n <= 0 {
		// Early exit: release upstream state without draining it.
		return nil, c.src.Close()
	}
	r, err := c.src.Next()
	if r != nil {
		c.n--
	}
	return r, err
}

func (c *limitCursor) Schema() *rowset.Schema { return c.src.Schema() }
func (c *limitCursor) Close() error           { return c.src.Close() }

type distinctCursor struct {
	src     rowset.Cursor
	seen    map[string]struct{}
	scratch []byte
}

func newDistinctCursor(src rowset.Cursor) *distinctCursor {
	return &distinctCursor{src: src, seen: make(map[string]struct{})}
}

func (c *distinctCursor) Next() (rowset.Row, error) {
	for {
		r, err := c.src.Next()
		if err != nil || r == nil {
			return r, err
		}
		buf := c.scratch[:0]
		for _, v := range r {
			buf = rowset.AppendKey(buf, v)
			buf = append(buf, '|')
		}
		c.scratch = buf
		if _, dup := c.seen[string(buf)]; dup {
			continue
		}
		c.seen[string(buf)] = struct{}{}
		return r, nil
	}
}

func (c *distinctCursor) Schema() *rowset.Schema { return c.src.Schema() }
func (c *distinctCursor) Close() error           { return c.src.Close() }

// ---------- scans and pushdown ----------

// pushedEq is a `col = literal` predicate applied at the scan through the
// table's hash index instead of in the filter operator.
type pushedEq struct {
	col string // bare column name in the table schema
	val rowset.Value
}

// compiledScan is one FROM entry resolved against the catalog before any
// cursor opens: its qualified schema, the backing table or materialized view,
// and (after planPushdown) an optional index-applied equality.
type compiledScan struct {
	ref    TableRef
	schema *rowset.Schema
	tbl    *storage.Table // nil for views
	view   *rowset.Rowset // nil for tables
	pushed *pushedEq

	// estimate is the scan's expected output cardinality: exact for views and
	// unpushed table scans, rows/distinct from table statistics for pushed
	// equalities. Join planning falls back to it when exact cursor sizes are
	// unavailable.
	estimate int
}

// TableSource resolves name to a base table, reporting false when the name
// is unknown or names a view (views shadow tables in FROM resolution). It
// lets higher layers — the shape service's RELATE planner — ask whether an
// index-backed lookup would read the same rows a FROM clause would.
func (e *Engine) TableSource(name string) (*storage.Table, bool) {
	if _, ok := e.views.get(name); ok {
		return nil, false
	}
	tbl, err := e.DB.Table(name)
	if err != nil {
		return nil, false
	}
	return tbl, true
}

func (e *Engine) resolveScan(ref TableRef) (*compiledScan, error) {
	cs := &compiledScan{ref: ref}
	var base *rowset.Schema
	if view, ok := e.views.get(ref.Name); ok {
		// Views are registered only after their query validates, and can
		// reference only pre-existing views, so expansion cannot cycle.
		vr, err := e.Query(view)
		if err != nil {
			return nil, fmt.Errorf("sqlengine: view %s: %w", ref.Name, err)
		}
		cs.view = vr
		cs.estimate = vr.Len()
		base = vr.Schema()
	} else {
		tbl, err := e.DB.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		cs.tbl = tbl
		cs.estimate = tbl.Len()
		base = tbl.Schema()
	}
	q := ref.AliasOrName()
	cols := make([]rowset.Column, base.Len())
	for i, c := range base.Columns {
		cols[i] = rowset.Column{Name: q + "." + c.Name, Type: c.Type, Nested: c.Nested}
	}
	schema, err := rowset.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("sqlengine: %w (duplicate alias %q?)", err, q)
	}
	cs.schema = schema
	return cs, nil
}

// open builds the scan's cursor and records its span. Rows pass through
// shared and un-renormalized: table rows were coerced on insert, view rows
// were normalized when the view query materialized.
func (cs *compiledScan) open(t *obs.Trace, detailed bool) (rowset.Cursor, error) {
	sp := t.StartSpan("scan", cs.label())
	var cur rowset.Cursor
	switch {
	case cs.view != nil:
		cur = newSliceCursor(cs.schema, cs.view.Rows())
	case cs.pushed != nil:
		rows, err := cs.tbl.LookupEqualRows(cs.pushed.col, cs.pushed.val)
		if err != nil {
			t.EndSpan(sp)
			return nil, err
		}
		cur = newSliceCursor(cs.schema, rows)
	default:
		cur = &schemaCursor{src: cs.tbl.Cursor(), schema: cs.schema}
	}
	sp.SetRows(int64(cursorSize(cur)))
	t.EndSpan(sp)
	return traced(cur, sp, detailed), nil
}

// label renders the scan for span output: the FROM alias, the pushed index
// column (if any), and the cardinality estimate.
func (cs *compiledScan) label() string {
	label := cs.ref.AliasOrName()
	if cs.pushed != nil {
		label += " index=" + cs.pushed.col
	}
	return fmt.Sprintf("%s est=%d", label, cs.estimate)
}

// planPushdown splits the WHERE conjunction and pushes eligible equality
// conjuncts into their scans, returning the residual predicate (nil when
// everything was pushed). When several conjuncts could use an index on the
// same scan, the planner picks the most selective one by estimated output
// cardinality (rows / distinct values, from table statistics), breaking ties
// toward the earliest conjunct. A conjunct is eligible only when ALL of these
// hold, each protecting an equivalence with evaluating the predicate
// post-scan:
//
//   - it has the shape `column = literal` (either order) with a non-NULL
//     literal — NULL never equals anything, and rows the index would drop for
//     a NULL probe are exactly the rows three-valued logic drops;
//   - the column resolves in exactly one FROM entry — if it resolves in
//     several, evaluation would fail with an ambiguity error, which pushdown
//     must not mask;
//   - that entry is a table (not a view) with a hash index on the column —
//     without an index the scan fallback does the same linear work the filter
//     operator would, so there is nothing to win;
//   - the entry is the first FROM item or joins with a non-LEFT join —
//     filtering the null-supplied side of a LEFT JOIN before the join would
//     turn dropped rows into NULL-extended ones;
//   - the literal's type matches the column's family (see indexableEq) —
//     index buckets are keyed by rowset.Key, which distinguishes some values
//     that Compare-based predicate equality does not (bool vs number, DATE at
//     sub-second precision), so cross-family probes could miss rows.
func planPushdown(where Expr, scans []*compiledScan) Expr {
	if where == nil {
		return nil
	}
	conjuncts := splitAnd(where)
	type candidate struct {
		scan int
		eq   pushedEq
		est  int
	}
	cands := make([]*candidate, len(conjuncts))
	chosen := make(map[int]int) // scan index → index of its cheapest candidate conjunct
	for i, c := range conjuncts {
		si, eq, ok := matchPush(c, scans)
		if !ok {
			continue
		}
		est := scans[si].tbl.Stats().EqEstimate(eq.col)
		cands[i] = &candidate{scan: si, eq: eq, est: est}
		if j, have := chosen[si]; !have || est < cands[j].est {
			chosen[si] = i
		}
	}
	residual := conjuncts[:0]
	for i, c := range conjuncts {
		if cd := cands[i]; cd != nil && chosen[cd.scan] == i {
			cs := scans[cd.scan]
			cs.pushed = &cd.eq
			cs.estimate = cd.est
			continue
		}
		residual = append(residual, c)
	}
	return joinAnd(residual)
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

func joinAnd(list []Expr) Expr {
	if len(list) == 0 {
		return nil
	}
	out := list[0]
	for _, e := range list[1:] {
		out = &Binary{Op: OpAnd, L: out, R: e}
	}
	return out
}

// matchPush tests one conjunct against the pushdown soundness rules without
// committing it, returning the target scan and the index probe it would
// become. Choosing among competing candidates for one scan is planPushdown's
// job.
func matchPush(c Expr, scans []*compiledScan) (int, pushedEq, bool) {
	b, ok := c.(*Binary)
	if !ok || b.Op != OpEq {
		return 0, pushedEq{}, false
	}
	var cr *ColumnRef
	var lit *Literal
	if x, ok := b.L.(*ColumnRef); ok {
		if l, ok := b.R.(*Literal); ok {
			cr, lit = x, l
		}
	} else if x, ok := b.R.(*ColumnRef); ok {
		if l, ok := b.L.(*Literal); ok {
			cr, lit = x, l
		}
	}
	if cr == nil {
		return 0, pushedEq{}, false
	}
	val := rowset.Normalize(lit.Val)
	if val == nil {
		return 0, pushedEq{}, false
	}
	target, ord := -1, -1
	for i, cs := range scans {
		if o, err := ResolveColumn(cs.schema, cr.Qualifier, cr.Name); err == nil {
			if target >= 0 {
				return 0, pushedEq{}, false // ambiguous across FROM entries
			}
			target, ord = i, o
		}
	}
	if target < 0 {
		return 0, pushedEq{}, false // unknown column: leave it for the filter to report
	}
	cs := scans[target]
	if cs.tbl == nil {
		return 0, pushedEq{}, false
	}
	if target > 0 && cs.ref.Kind == JoinLeft {
		return 0, pushedEq{}, false
	}
	col := cs.schema.Column(ord)
	if !indexableEq(col.Type, val) {
		return 0, pushedEq{}, false
	}
	bare := col.Name
	if dot := strings.LastIndex(bare, "."); dot >= 0 {
		bare = bare[dot+1:]
	}
	if !cs.tbl.HasIndex(bare) {
		return 0, pushedEq{}, false
	}
	return target, pushedEq{col: bare, val: val}, true
}

// indexableEq reports whether probing an index bucket for v is equivalent to
// evaluating `col = v` on every row. Index buckets use rowset.Key, predicate
// equality uses rowset.Compare; the two agree within a type family but Key is
// finer across families (bool vs number) and for DATE (Key keeps nanoseconds,
// Compare collapses to seconds), so only same-family scalar probes push.
func indexableEq(colType rowset.Type, v rowset.Value) bool {
	switch colType {
	case rowset.TypeLong, rowset.TypeDouble:
		switch v.(type) {
		case int64, float64:
			return true
		default:
			return false
		}
	case rowset.TypeText:
		_, ok := v.(string)
		return ok
	case rowset.TypeBool:
		_, ok := v.(bool)
		return ok
	case rowset.TypeNull, rowset.TypeDate, rowset.TypeTable:
		// TypeDate: Key/Compare disagree below one second. TypeTable and
		// untyped columns: equality is not meaningful for index probes.
	}
	return false
}

// buildSourceCursor compiles the FROM clause into one cursor whose columns
// are qualified "alias.column", recording scan and join spans in the same
// order PlanSpan declares them. It returns the residual WHERE predicate after
// index pushdown.
func (e *Engine) buildSourceCursor(t *obs.Trace, sel *SelectStmt) (rowset.Cursor, Expr, error) {
	if len(sel.From) == 0 {
		// FROM-less SELECT evaluates items once against an empty row.
		return newSliceCursor(rowset.MustSchema(), []rowset.Row{{}}), sel.Where, nil
	}
	detailed := t.Detailed()
	scans := make([]*compiledScan, len(sel.From))
	for i, ref := range sel.From {
		cs, err := e.resolveScan(ref)
		if err != nil {
			return nil, nil, err
		}
		scans[i] = cs
	}
	residual := planPushdown(sel.Where, scans)

	acc, err := scans[0].open(t, detailed)
	if err != nil {
		return nil, nil, err
	}
	accEst := scans[0].estimate
	for _, cs := range scans[1:] {
		right, err := cs.open(t, detailed)
		if err != nil {
			acc.Close() //nolint:errcheck // already failing
			return nil, nil, err
		}
		jc, strategy, err := newJoinCursor(acc, right, cs.ref.Kind, cs.ref.On, accEst, cs.estimate)
		if err != nil {
			acc.Close()   //nolint:errcheck // already failing
			right.Close() //nolint:errcheck // already failing
			return nil, nil, err
		}
		// Large hash-join builds precompute their keys on parallel workers.
		switch hj := jc.(type) {
		case *hashJoinStream:
			hj.workers = e.vecWorkers()
		case *hashJoinBuildLeft:
			hj.workers = e.vecWorkers()
		}
		sp := t.StartSpan("join", joinLabel(cs.ref.Kind, strategy))
		t.EndSpan(sp)
		acc = traced(jc, sp, detailed)
		accEst = joinEstimate(accEst, cs.estimate, cs.ref.Kind)
	}
	return acc, residual, nil
}

// joinLabel renders a join span label: the join kind plus the strategy the
// planner picked ("build=left", "build=right", or "loop").
func joinLabel(kind JoinKind, strategy string) string {
	if strategy == "" {
		return joinKindLabel(kind)
	}
	return joinKindLabel(kind) + " " + strategy
}

// joinEstimate propagates cardinality estimates across one join step. It is
// deliberately coarse: cross joins multiply, equi and general joins keep the
// larger input (a safe upper bound for one-to-many key joins). A negative
// input marks an unknown and poisons the result.
func joinEstimate(l, r int, kind JoinKind) int {
	if l < 0 || r < 0 {
		return -1
	}
	if kind == JoinCross {
		return l * r
	}
	if l > r {
		return l
	}
	return r
}
