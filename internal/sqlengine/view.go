package sqlengine

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/rowset"
)

// Views implement the paper's Section 3.1 prescription: "in order to use
// data mining, a key step is to be able to pull the information related to
// an entity into a single rowset using views". CREATE VIEW stores a named
// SELECT; FROM clauses resolve view names before table names, so SHAPE
// inner queries (and anything else) can consume them transparently.

// CreateViewStmt is CREATE VIEW name AS SELECT ...
type CreateViewStmt struct {
	Name  string
	Query *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// DropViewStmt is DROP VIEW name.
type DropViewStmt struct {
	Name string
}

func (*DropViewStmt) stmt() {}

// viewCatalog stores view definitions on the engine.
type viewCatalog struct {
	mu    sync.RWMutex
	views map[string]*SelectStmt
}

func (vc *viewCatalog) get(name string) (*SelectStmt, bool) {
	vc.mu.RLock()
	defer vc.mu.RUnlock()
	v, ok := vc.views[strings.ToLower(name)]
	return v, ok
}

func (vc *viewCatalog) put(name string, q *SelectStmt) error {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.views == nil {
		vc.views = make(map[string]*SelectStmt)
	}
	key := strings.ToLower(name)
	if _, dup := vc.views[key]; dup {
		return fmt.Errorf("sqlengine: view %q already exists", name)
	}
	vc.views[key] = q
	return nil
}

func (vc *viewCatalog) drop(name string) error {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := vc.views[key]; !ok {
		return fmt.Errorf("sqlengine: no view named %q", name)
	}
	delete(vc.views, key)
	return nil
}

// ViewNames lists defined views, for shell introspection.
func (e *Engine) ViewNames() []string {
	e.views.mu.RLock()
	defer e.views.mu.RUnlock()
	out := make([]string, 0, len(e.views.views))
	for k := range e.views.views {
		out = append(out, k)
	}
	return out
}

// execCreateView registers a view after checking that its query runs.
func (e *Engine) execCreateView(st *CreateViewStmt) (*rowset.Rowset, error) {
	if _, err := e.DB.Table(st.Name); err == nil {
		return nil, fmt.Errorf("sqlengine: a table named %q already exists", st.Name)
	}
	// Validate eagerly: a view that cannot run is a user error now, not at
	// first use.
	if _, err := e.Query(st.Query); err != nil {
		return nil, fmt.Errorf("sqlengine: view %q: %w", st.Name, err)
	}
	if err := e.views.put(st.Name, st.Query); err != nil {
		return nil, err
	}
	return affected(0)
}
