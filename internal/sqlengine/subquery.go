package sqlengine

import "fmt"

// Uncorrelated subqueries: scalar (SELECT ...) expressions, x IN (SELECT ...)
// and EXISTS (SELECT ...). The engine resolves them once per statement,
// before row-at-a-time evaluation, by executing the inner query and grafting
// its result into the expression tree as literals. Correlated subqueries
// (inner references to outer columns) are out of scope and surface as
// unknown-column errors from the inner query.

// Subquery is a parenthesized SELECT used as a scalar expression.
type Subquery struct {
	Query *SelectStmt
}

func (*Subquery) expr() {}

func (s *Subquery) String() string { return "(<subquery>)" }

// Exists is EXISTS (SELECT ...).
type Exists struct {
	Query *SelectStmt
}

func (*Exists) expr() {}

func (e *Exists) String() string { return "EXISTS (<subquery>)" }

// ResolveSubqueries executes every subquery in the expression once and
// returns a tree with the results substituted. Expressions without
// subqueries are returned unchanged (and unallocated).
func (e *Engine) ResolveSubqueries(expr Expr) (Expr, error) {
	if expr == nil || !containsSubquery(expr) {
		return expr, nil
	}
	return e.resolveSub(expr)
}

func containsSubquery(expr Expr) bool {
	switch x := expr.(type) {
	case *Subquery, *Exists:
		return true
	case *Binary:
		return containsSubquery(x.L) || containsSubquery(x.R)
	case *Unary:
		return containsSubquery(x.X)
	case *IsNull:
		return containsSubquery(x.X)
	case *Between:
		return containsSubquery(x.X) || containsSubquery(x.Lo) || containsSubquery(x.Hi)
	case *In:
		if x.Subquery != nil || containsSubquery(x.X) {
			return true
		}
		for _, it := range x.List {
			if containsSubquery(it) {
				return true
			}
		}
	case *FuncCall:
		for _, a := range x.Args {
			if containsSubquery(a) {
				return true
			}
		}
	}
	return false
}

func (e *Engine) resolveSub(expr Expr) (Expr, error) {
	switch x := expr.(type) {
	case *Subquery:
		rs, err := e.Query(x.Query)
		if err != nil {
			return nil, err
		}
		if rs.Schema().Len() != 1 {
			return nil, fmt.Errorf("sqlengine: scalar subquery returns %d columns", rs.Schema().Len())
		}
		switch rs.Len() {
		case 0:
			return &Literal{Val: nil}, nil
		case 1:
			return &Literal{Val: rs.Row(0)[0]}, nil
		}
		return nil, fmt.Errorf("sqlengine: scalar subquery returned %d rows", rs.Len())
	case *Exists:
		rs, err := e.Query(x.Query)
		if err != nil {
			return nil, err
		}
		return &Literal{Val: rs.Len() > 0}, nil
	case *In:
		out := &In{Negate: x.Negate}
		var err error
		out.X, err = e.resolveSub(x.X)
		if err != nil {
			return nil, err
		}
		if x.Subquery != nil {
			rs, err := e.Query(x.Subquery)
			if err != nil {
				return nil, err
			}
			if rs.Schema().Len() != 1 {
				return nil, fmt.Errorf("sqlengine: IN subquery returns %d columns", rs.Schema().Len())
			}
			for _, r := range rs.Rows() {
				out.List = append(out.List, &Literal{Val: r[0]})
			}
			return out, nil
		}
		for _, it := range x.List {
			ri, err := e.resolveSub(it)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, ri)
		}
		return out, nil
	case *Binary:
		l, err := e.resolveSub(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.resolveSub(x.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r}, nil
	case *Unary:
		in, err := e.resolveSub(x.X)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: in}, nil
	case *IsNull:
		in, err := e.resolveSub(x.X)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: in, Negate: x.Negate}, nil
	case *Between:
		bx, err := e.resolveSub(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := e.resolveSub(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := e.resolveSub(x.Hi)
		if err != nil {
			return nil, err
		}
		return &Between{X: bx, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Pos: x.Pos}
		for _, a := range x.Args {
			ra, err := e.resolveSub(a)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	}
	return expr, nil
}

// resolveStatementSubqueries rewrites every expression position of a SELECT.
func (e *Engine) resolveStatementSubqueries(sel *SelectStmt) (*SelectStmt, error) {
	needs := false
	for _, it := range sel.Items {
		if !it.Star && containsSubquery(it.Expr) {
			needs = true
		}
	}
	needs = needs || containsSubquery(sel.Where) || containsSubquery(sel.Having)
	for _, g := range sel.GroupBy {
		needs = needs || containsSubquery(g)
	}
	for _, o := range sel.OrderBy {
		needs = needs || containsSubquery(o.Expr)
	}
	if !needs {
		return sel, nil
	}
	out := *sel
	out.Items = append([]SelectItem(nil), sel.Items...)
	for i := range out.Items {
		if out.Items[i].Star {
			continue
		}
		r, err := e.ResolveSubqueries(out.Items[i].Expr)
		if err != nil {
			return nil, err
		}
		out.Items[i].Expr = r
	}
	var err error
	if out.Where, err = e.ResolveSubqueries(sel.Where); err != nil {
		return nil, err
	}
	if out.Having, err = e.ResolveSubqueries(sel.Having); err != nil {
		return nil, err
	}
	out.GroupBy = append([]Expr(nil), sel.GroupBy...)
	for i := range out.GroupBy {
		if out.GroupBy[i], err = e.ResolveSubqueries(out.GroupBy[i]); err != nil {
			return nil, err
		}
	}
	out.OrderBy = append([]OrderItem(nil), sel.OrderBy...)
	for i := range out.OrderBy {
		if out.OrderBy[i].Expr, err = e.ResolveSubqueries(out.OrderBy[i].Expr); err != nil {
			return nil, err
		}
	}
	return &out, nil
}
