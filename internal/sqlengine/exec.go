package sqlengine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/rowset"
	"repro/internal/storage"
)

// Engine executes SQL statements against a storage database, plus the
// engine-level view catalog.
type Engine struct {
	DB    *storage.Database
	views viewCatalog

	// Vec tunes the batch/morsel execution paths; the zero value means
	// sensible defaults (GOMAXPROCS workers, storage.DefaultMorselSize
	// morsels, parallelism only for tables past the size threshold).
	Vec VecConfig

	// Metric handles resolved by Instrument; nil-safe no-ops until then, so
	// an uninstrumented engine pays nothing.
	stmts    *obs.Counter
	stmtErrs *obs.Counter
	rowsOut  *obs.Counter
	batches  *obs.Counter
	morsels  *obs.Counter
	parScans *obs.Counter

	// ddlHook, when set, is called with the object name after every
	// successful CREATE/DROP of a table or view — the provider's plan cache
	// hangs invalidation off it.
	ddlHook func(name string)
}

// SetDDLHook registers fn to run after every successful table or view
// CREATE/DROP, receiving the object's name. Call before serving statements;
// the hook is not synchronized.
func (e *Engine) SetDDLHook(fn func(name string)) { e.ddlHook = fn }

func (e *Engine) notifyDDL(name string) {
	if e.ddlHook != nil {
		e.ddlHook(name)
	}
}

// NewEngine wraps db.
func NewEngine(db *storage.Database) *Engine {
	return &Engine{DB: db}
}

// Instrument resolves the engine's metric handles against reg, exposing
// sql_statements_total, sql_errors_total, and sql_rows_out_total through the
// $SYSTEM.DM_PROVIDER_METRICS rowset. A nil registry leaves the engine
// uninstrumented.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.stmts = reg.Counter(obs.MetricSQLStatementsTotal)
	e.stmtErrs = reg.Counter(obs.MetricSQLErrorsTotal)
	e.rowsOut = reg.Counter(obs.MetricSQLRowsOutTotal)
	e.batches = reg.Counter(obs.MetricSQLBatchesTotal)
	e.morsels = reg.Counter(obs.MetricSQLMorselsTotal)
	e.parScans = reg.Counter(obs.MetricSQLParallelScansTotal)
}

// Exec parses and executes one SQL statement. Every statement returns a
// rowset; DML statements return a single-row ([rows affected]) result.
func (e *Engine) Exec(sql string) (*rowset.Rowset, error) {
	return e.ExecContext(context.Background(), sql) //dmlint:allow ctxflow — documented context-free convenience form; ExecContext is the primary API.
}

// ExecContext is Exec threading a context: when ctx carries an obs.Trace,
// SELECT execution records per-operator spans (scan, join, filter, group-by,
// sort, project) under the statement's span tree.
func (e *Engine) ExecContext(ctx context.Context, sql string) (*rowset.Rowset, error) {
	stmt, err := Parse(sql)
	if err != nil {
		e.stmts.Inc()
		e.stmtErrs.Inc()
		return nil, err
	}
	return e.ExecStmtContext(ctx, stmt)
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(stmt Statement) (*rowset.Rowset, error) {
	return e.ExecStmtContext(context.Background(), stmt) //dmlint:allow ctxflow — documented context-free convenience form; ExecStmtContext is the primary API.
}

// ExecStmtContext executes a parsed statement, recording operator spans on
// the trace carried by ctx (if any).
func (e *Engine) ExecStmtContext(ctx context.Context, stmt Statement) (*rowset.Rowset, error) {
	rs, err := e.execStmt(ctx, stmt)
	e.stmts.Inc()
	if err != nil {
		e.stmtErrs.Inc()
	} else if rs != nil {
		e.rowsOut.Add(int64(rs.Len()))
	}
	return rs, err
}

func (e *Engine) execStmt(ctx context.Context, stmt Statement) (*rowset.Rowset, error) {
	switch st := stmt.(type) {
	case *SelectStmt:
		return e.QueryContext(ctx, st)
	case *CreateTableStmt:
		schema, err := rowset.NewSchema(st.Columns...)
		if err != nil {
			return nil, err
		}
		if _, err := e.DB.CreateTable(st.Name, schema); err != nil {
			return nil, err
		}
		e.notifyDDL(st.Name)
		return affected(0)
	case *InsertStmt:
		return e.execInsert(st)
	case *DeleteStmt:
		return e.execDelete(st)
	case *UpdateStmt:
		return e.execUpdate(st)
	case *DropTableStmt:
		if err := e.DB.DropTable(st.Name); err != nil {
			return nil, err
		}
		e.notifyDDL(st.Name)
		return affected(0)
	case *CreateViewStmt:
		rs, err := e.execCreateView(st)
		if err == nil {
			e.notifyDDL(st.Name)
		}
		return rs, err
	case *DropViewStmt:
		if err := e.views.drop(st.Name); err != nil {
			return nil, err
		}
		e.notifyDDL(st.Name)
		return affected(0)
	}
	return nil, fmt.Errorf("sqlengine: unsupported statement %T", stmt)
}

func affected(n int) (*rowset.Rowset, error) {
	rs := rowset.New(rowset.MustSchema(rowset.Column{Name: "rows affected", Type: rowset.TypeLong}))
	if err := rs.AppendVals(int64(n)); err != nil {
		return nil, err
	}
	return rs, nil
}

// ---------- SELECT ----------

// Query executes a SELECT and returns the result rowset.
func (e *Engine) Query(sel *SelectStmt) (*rowset.Rowset, error) {
	return e.QueryContext(context.Background(), sel) //dmlint:allow ctxflow — documented context-free convenience form; QueryContext is the primary API.
}

// needsAggregate reports whether the SELECT runs through the aggregation
// operator: explicit GROUP BY / HAVING, or an aggregate call in the items.
func needsAggregate(sel *SelectStmt) bool {
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return true
	}
	for _, it := range sel.Items {
		if !it.Star && ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// QueryContext executes a SELECT as a pull-based cursor pipeline: scans
// (index-aware when a WHERE equality can be pushed down), streaming joins,
// filter, projection, DISTINCT, and TOP pipeline row-at-a-time; only ORDER
// BY, GROUP BY, and hash-join build sides materialize, because their
// semantics need the whole input. TOP therefore stops upstream work as soon
// as it has its rows.
//
// Each executor node records one span — scan, join, filter, group-by, sort,
// project — on the trace carried by ctx; the spans are created in plan order
// up front and their row counts (plus per-operator time under EXPLAIN
// ANALYZE's detailed mode) are filled in as the stream drains. With no trace
// the span plumbing is nil no-ops and nothing allocates.
func (e *Engine) QueryContext(ctx context.Context, sel *SelectStmt) (*rowset.Rowset, error) {
	t := obs.FromContext(ctx)
	spSel := t.StartSpan("select", "")
	defer t.EndSpan(spSel)
	sel, err := e.resolveStatementSubqueries(sel)
	if err != nil {
		return nil, err
	}
	// Order-insensitive single-table statements over large tables take the
	// morsel-parallel path (see morsel.go); everything else runs the
	// sequential (but batch-vectorized) pipeline below.
	if out, handled, err := e.tryMorsel(ctx, t, sel); handled {
		if err != nil {
			return nil, err
		}
		spSel.SetRows(int64(out.Len()))
		return out, nil
	}
	detailed := t.Detailed()
	src, residual, err := e.buildSourceCursor(t, sel)
	if err != nil {
		return nil, err
	}
	if done := ctx.Done(); done != nil {
		// Cancellable statement: poll ctx between row batches so a Close'd
		// server or timed-out client stops the scan mid-stream. The wrap
		// sits above the joins, so one poll point covers the whole source
		// pipeline.
		src = &cancelCursor{src: src, ctx: ctx, done: done}
	}
	if sel.Where != nil {
		// The filter span exists whenever the statement has a WHERE, even if
		// index pushdown consumed every conjunct (residual == nil) — the plan
		// shape must not depend on which indexes happened to exist.
		spF := t.StartSpan("filter", "")
		t.EndSpan(spF)
		if residual != nil || spF != nil {
			src = traced(newFilterCursor(src, residual), spF, detailed)
		}
	}
	var out *rowset.Rowset
	if needsAggregate(sel) {
		sp := t.StartSpan("group-by", "")
		out, err = e.aggregate(sel, src)
		src.Close() //nolint:errcheck // engine cursors fail only via Next
		if err != nil {
			t.EndSpan(sp)
			return nil, err
		}
		sp.SetRows(int64(out.Len()))
		t.EndSpan(sp)
		out, err = finishMaterialized(out, sel)
	} else {
		out, err = e.projectStream(t, sel, src)
	}
	if err != nil {
		return nil, err
	}
	spSel.SetRows(int64(out.Len()))
	return out, nil
}

// finishMaterialized applies DISTINCT and TOP to an already-materialized
// result (the aggregation path).
func finishMaterialized(out *rowset.Rowset, sel *SelectStmt) (*rowset.Rowset, error) {
	if !sel.Distinct && (sel.Top <= 0 || out.Len() <= sel.Top) {
		return out, nil
	}
	var cur rowset.Cursor = out.Cursor()
	if sel.Distinct {
		cur = newDistinctCursor(cur)
	}
	if sel.Top > 0 {
		cur = &limitCursor{src: cur, n: sel.Top}
	}
	return rowset.FromCursor(cur)
}

// projectStream runs the non-aggregating tail of the pipeline: projection,
// then ORDER BY (the one materializing step, and only when present), then
// streaming DISTINCT and TOP, and finally adopts the drained rows into the
// result rowset without re-normalizing them.
func (e *Engine) projectStream(t *obs.Trace, sel *SelectStmt, src rowset.Cursor) (*rowset.Rowset, error) {
	detailed := t.Detailed()
	items, err := expandStars(sel.Items, src.Schema())
	if err != nil {
		src.Close() //nolint:errcheck // already failing
		return nil, err
	}
	names := outputNames(items)
	srcSchema := src.Schema()
	spProj := t.StartSpan("project", "")
	t.EndSpan(spProj)
	proj, err := newProjectCursor(src, items, names, sel.OrderBy)
	if err != nil {
		src.Close() //nolint:errcheck // already failing
		return nil, err
	}
	cur := traced(proj, spProj, detailed)
	if len(sel.OrderBy) > 0 {
		spSort := t.StartSpan("sort", "")
		outs, keys, batches, err := drainWithKeys(cur, proj)
		if err != nil {
			t.EndSpan(spSort)
			return nil, err
		}
		e.batches.Add(batches)
		rowset.SortByKeys(outs, keys, descFlags(sel.OrderBy))
		spSort.SetRows(int64(len(outs)))
		t.EndSpan(spSort)
		cur = newSliceCursor(proj.Schema(), outs)
	}
	if sel.Distinct {
		cur = newDistinctCursor(cur)
	}
	if sel.Top > 0 {
		cur = &limitCursor{src: cur, n: sel.Top}
	}
	rows, batches, err := drainRowsCounted(cur)
	if err != nil {
		return nil, err
	}
	e.batches.Add(batches)
	schema, err := outputSchema(items, names, srcSchema, rows)
	if err != nil {
		return nil, err
	}
	// Rows are already canonical (projection normalizes computed values), so
	// the result adopts them without another pass.
	return rowset.Adopt(schema, rows), nil
}

// joinKindLabel names a join kind for span labels.
func joinKindLabel(k JoinKind) string {
	switch k {
	case JoinLeft:
		return "left"
	case JoinCross:
		return "cross"
	}
	return "inner"
}

// PlanSpan renders the SELECT's executor plan as a span tree without running
// it: the same operator nodes, in the same order, that QueryContext would
// record on a trace — scan/join per FROM entry, filter, then group-by or
// project (+sort). Elapsed and Rows stay zero; EXPLAIN renders them as NULL.
func (sel *SelectStmt) PlanSpan() *obs.Span {
	sp := obs.NewSpan("select", "")
	for i, ref := range sel.From {
		sp.Add(obs.NewSpan("scan", ref.AliasOrName()))
		if i > 0 {
			sp.Add(obs.NewSpan("join", joinKindLabel(ref.Kind)))
		}
	}
	if sel.Where != nil {
		sp.Add(obs.NewSpan("filter", ""))
	}
	if needsAggregate(sel) {
		sp.Add(obs.NewSpan("group-by", ""))
	} else {
		sp.Add(obs.NewSpan("project", ""))
		if len(sel.OrderBy) > 0 {
			sp.Add(obs.NewSpan("sort", ""))
		}
	}
	return sp
}

// PlanSpan is the SELECT's cost-annotated executor plan: the span tree
// sel.PlanSpan() declares, with scan labels carrying index-pushdown choices
// and cardinality estimates ("cust index=id est=1") and join labels the
// build-side decision ("inner build=left") — the same choices QueryContext
// would make right now against the live catalog and table statistics. Falls
// back to the shape-only sel.PlanSpan() when the catalog cannot resolve the
// statement (EXPLAIN must not fail where execution would explain better).
func (e *Engine) PlanSpan(sel *SelectStmt) *obs.Span {
	if len(sel.From) == 0 {
		return sel.PlanSpan()
	}
	scans := make([]*compiledScan, len(sel.From))
	for i, ref := range sel.From {
		cs, err := e.resolveScan(ref)
		if err != nil {
			return sel.PlanSpan()
		}
		scans[i] = cs
	}
	planPushdown(sel.Where, scans)
	sp := obs.NewSpan("select", "")
	accSchema := scans[0].schema
	accEst := scans[0].estimate
	for i, cs := range scans {
		sp.Add(obs.NewSpan("scan", cs.label()))
		if i == 0 {
			continue
		}
		strategy := "loop"
		if cs.ref.Kind != JoinCross {
			if _, _, ok := equiJoinOrdinals(cs.ref.On, accSchema, cs.schema); ok {
				if buildLeft(-1, -1, accEst, cs.estimate) {
					strategy = "build=left"
				} else {
					strategy = "build=right"
				}
			}
		}
		sp.Add(obs.NewSpan("join", joinLabel(cs.ref.Kind, strategy)))
		if joined, err := concatSchemas(accSchema, cs.schema); err == nil {
			accSchema = joined
		}
		accEst = joinEstimate(accEst, cs.estimate, cs.ref.Kind)
	}
	if sel.Where != nil {
		sp.Add(obs.NewSpan("filter", ""))
	}
	if needsAggregate(sel) {
		sp.Add(obs.NewSpan("group-by", ""))
	} else {
		sp.Add(obs.NewSpan("project", ""))
		if len(sel.OrderBy) > 0 {
			sp.Add(obs.NewSpan("sort", ""))
		}
	}
	return sp
}

func concatSchemas(a, b *rowset.Schema) (*rowset.Schema, error) {
	cols := make([]rowset.Column, 0, a.Len()+b.Len())
	cols = append(cols, a.Columns...)
	cols = append(cols, b.Columns...)
	return rowset.NewSchema(cols...)
}

// equiJoinOrdinals recognizes "a.x = b.y" ON clauses where the two refs
// resolve to opposite sides, returning the left and right ordinals.
func equiJoinOrdinals(on Expr, left, right *rowset.Schema) (int, int, bool) {
	b, ok := on.(*Binary)
	if !ok || b.Op != OpEq {
		return 0, 0, false
	}
	lc, ok1 := b.L.(*ColumnRef)
	rc, ok2 := b.R.(*ColumnRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if lo, err := ResolveColumn(left, lc.Qualifier, lc.Name); err == nil {
		if ro, err := ResolveColumn(right, rc.Qualifier, rc.Name); err == nil {
			return lo, ro, true
		}
	}
	if lo, err := ResolveColumn(left, rc.Qualifier, rc.Name); err == nil {
		if ro, err := ResolveColumn(right, lc.Qualifier, lc.Name); err == nil {
			return lo, ro, true
		}
	}
	return 0, 0, false
}

// ---------- projection helpers ----------

// expandStars replaces * and q.* items with explicit column refs.
func expandStars(items []SelectItem, schema *rowset.Schema) ([]SelectItem, error) {
	out := make([]SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range schema.Columns {
			name := c.Name
			if it.Qualifier != "" && !strings.HasPrefix(strings.ToLower(name), strings.ToLower(it.Qualifier)+".") {
				continue
			}
			matched = true
			bare := name
			if dot := strings.LastIndex(bare, "."); dot >= 0 {
				bare = bare[dot+1:]
			}
			out = append(out, SelectItem{
				Expr:  &ColumnRef{Name: name},
				Alias: bare,
			})
		}
		if it.Qualifier != "" && !matched {
			return nil, fmt.Errorf("sqlengine: unknown qualifier %q in %s.*", it.Qualifier, it.Qualifier)
		}
	}
	return out, nil
}

// outputNames assigns unique output column names.
func outputNames(items []SelectItem) []string {
	names := make([]string, len(items))
	seen := make(map[string]int)
	for i, it := range items {
		var n string
		switch {
		case it.Alias != "":
			n = it.Alias
		default:
			if cr, ok := it.Expr.(*ColumnRef); ok {
				n = cr.Name
			} else {
				n = it.Expr.String()
			}
		}
		key := strings.ToLower(n)
		if c, dup := seen[key]; dup {
			seen[key] = c + 1
			n = fmt.Sprintf("%s_%d", n, c+1)
			key = strings.ToLower(n)
		}
		seen[key] = 1
		names[i] = n
	}
	return names
}

// outputSchema infers output column types: declared types for direct column
// references, value-based inference otherwise.
func outputSchema(items []SelectItem, names []string, srcSchema *rowset.Schema, rows []rowset.Row) (*rowset.Schema, error) {
	cols := make([]rowset.Column, len(items))
	for i, it := range items {
		col := rowset.Column{Name: names[i], Type: rowset.TypeNull}
		if cr, ok := it.Expr.(*ColumnRef); ok {
			if ord, err := ResolveColumn(srcSchema, cr.Qualifier, cr.Name); err == nil {
				col.Type = srcSchema.Column(ord).Type
				col.Nested = srcSchema.Column(ord).Nested
			}
		}
		if col.Type == rowset.TypeNull {
			for _, r := range rows {
				if r[i] != nil {
					col.Type = rowset.TypeOf(r[i])
					if nested, ok := r[i].(*rowset.Rowset); ok {
						col.Nested = nested.Schema()
					}
					break
				}
			}
		}
		cols[i] = col
	}
	return rowset.NewSchema(cols...)
}

// orderKeys evaluates ORDER BY expressions for one row (the aggregation path;
// the streaming path precompiles this lookup into an order plan). Each key
// expression resolves first against the projected output (aliases), then the
// source row.
func orderKeys(order []OrderItem, items []SelectItem, names []string, out rowset.Row, srcEnv *Env) (rowset.Row, error) {
	if len(order) == 0 {
		return nil, nil
	}
	keys := make(rowset.Row, len(order))
	for i, o := range order {
		// Alias reference?
		if cr, ok := o.Expr.(*ColumnRef); ok && cr.Qualifier == "" {
			found := false
			for j, n := range names {
				if strings.EqualFold(n, cr.Name) {
					keys[i] = out[j]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := Eval(o.Expr, srcEnv)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// ---------- DML ----------

func (e *Engine) execInsert(st *InsertStmt) (*rowset.Rowset, error) {
	tbl, err := e.DB.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()

	// Map the statement's column list to table ordinals.
	ords := make([]int, 0, len(st.Columns))
	if len(st.Columns) > 0 {
		for _, c := range st.Columns {
			i, ok := schema.Lookup(c)
			if !ok {
				return nil, fmt.Errorf("sqlengine: table %s has no column %q", st.Table, c)
			}
			ords = append(ords, i)
		}
	} else {
		for i := 0; i < schema.Len(); i++ {
			ords = append(ords, i)
		}
	}

	buildRow := func(vals rowset.Row) (rowset.Row, error) {
		if len(vals) != len(ords) {
			return nil, fmt.Errorf("sqlengine: INSERT has %d values for %d columns", len(vals), len(ords))
		}
		full := make(rowset.Row, schema.Len())
		for i, o := range ords {
			full[o] = vals[i]
		}
		return full, nil
	}

	n := 0
	if st.Query != nil {
		res, err := e.Query(st.Query)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows() {
			full, err := buildRow(r)
			if err != nil {
				return nil, err
			}
			if err := tbl.Insert(full); err != nil {
				return nil, err
			}
			n++
		}
		return affected(n)
	}
	env := &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}
	for _, exprs := range st.Rows {
		vals := make(rowset.Row, len(exprs))
		for i, ex := range exprs {
			v, err := Eval(ex, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		full, err := buildRow(vals)
		if err != nil {
			return nil, err
		}
		if err := tbl.Insert(full); err != nil {
			return nil, err
		}
		n++
	}
	return affected(n)
}

func (e *Engine) execDelete(st *DeleteStmt) (*rowset.Rowset, error) {
	tbl, err := e.DB.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Where == nil {
		n := tbl.Len()
		tbl.Truncate()
		return affected(n)
	}
	cur := tbl.Cursor()
	defer cur.Close() //nolint:errcheck // table cursors never fail to close
	env := &Env{Schema: tbl.Schema()}
	var keep []rowset.Row
	removed := 0
	for {
		r, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		env.Row = r
		v, err := Eval(st.Where, env)
		if err != nil {
			return nil, err
		}
		ok, err := Truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			removed++
		} else {
			keep = append(keep, r)
		}
	}
	if err := tbl.Replace(keep); err != nil {
		return nil, err
	}
	return affected(removed)
}

func (e *Engine) execUpdate(st *UpdateStmt) (*rowset.Rowset, error) {
	tbl, err := e.DB.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	env := &Env{Schema: schema}
	setOrds := make([]int, len(st.Set))
	for i, sc := range st.Set {
		o, ok := schema.Lookup(sc.Column)
		if !ok {
			return nil, fmt.Errorf("sqlengine: table %s has no column %q", st.Table, sc.Column)
		}
		setOrds[i] = o
	}
	cur := tbl.Cursor()
	defer cur.Close() //nolint:errcheck // table cursors never fail to close
	rows := make([]rowset.Row, 0, cursorSize(cur))
	n := 0
	for {
		r, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		match := true
		env.Row = r
		if st.Where != nil {
			v, err := Eval(st.Where, env)
			if err != nil {
				return nil, err
			}
			match, err = Truthy(v)
			if err != nil {
				return nil, err
			}
		}
		if !match {
			rows = append(rows, r)
			continue
		}
		nr := r.Clone()
		for j, sc := range st.Set {
			v, err := Eval(sc.Value, env)
			if err != nil {
				return nil, err
			}
			nr[setOrds[j]] = v
		}
		rows = append(rows, nr)
		n++
	}
	if err := tbl.Replace(rows); err != nil {
		return nil, err
	}
	return affected(n)
}
