package sqlengine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/rowset"
	"repro/internal/storage"
)

// Engine executes SQL statements against a storage database, plus the
// engine-level view catalog.
type Engine struct {
	DB    *storage.Database
	views viewCatalog

	// Metric handles resolved by Instrument; nil-safe no-ops until then, so
	// an uninstrumented engine pays nothing.
	stmts    *obs.Counter
	stmtErrs *obs.Counter
	rowsOut  *obs.Counter
}

// NewEngine wraps db.
func NewEngine(db *storage.Database) *Engine {
	return &Engine{DB: db}
}

// Instrument resolves the engine's metric handles against reg, exposing
// sql_statements_total, sql_errors_total, and sql_rows_out_total through the
// $SYSTEM.DM_PROVIDER_METRICS rowset. A nil registry leaves the engine
// uninstrumented.
func (e *Engine) Instrument(reg *obs.Registry) {
	e.stmts = reg.Counter("sql_statements_total")
	e.stmtErrs = reg.Counter("sql_errors_total")
	e.rowsOut = reg.Counter("sql_rows_out_total")
}

// Exec parses and executes one SQL statement. Every statement returns a
// rowset; DML statements return a single-row ([rows affected]) result.
func (e *Engine) Exec(sql string) (*rowset.Rowset, error) {
	return e.ExecContext(context.Background(), sql)
}

// ExecContext is Exec threading a context: when ctx carries an obs.Trace,
// SELECT execution records per-operator spans (scan, join, filter, group-by,
// sort, project) under the statement's span tree.
func (e *Engine) ExecContext(ctx context.Context, sql string) (*rowset.Rowset, error) {
	stmt, err := Parse(sql)
	if err != nil {
		e.stmts.Inc()
		e.stmtErrs.Inc()
		return nil, err
	}
	return e.ExecStmtContext(ctx, stmt)
}

// ExecStmt executes a parsed statement.
func (e *Engine) ExecStmt(stmt Statement) (*rowset.Rowset, error) {
	return e.ExecStmtContext(context.Background(), stmt)
}

// ExecStmtContext executes a parsed statement, recording operator spans on
// the trace carried by ctx (if any).
func (e *Engine) ExecStmtContext(ctx context.Context, stmt Statement) (*rowset.Rowset, error) {
	rs, err := e.execStmt(ctx, stmt)
	e.stmts.Inc()
	if err != nil {
		e.stmtErrs.Inc()
	} else if rs != nil {
		e.rowsOut.Add(int64(rs.Len()))
	}
	return rs, err
}

func (e *Engine) execStmt(ctx context.Context, stmt Statement) (*rowset.Rowset, error) {
	switch st := stmt.(type) {
	case *SelectStmt:
		return e.QueryContext(ctx, st)
	case *CreateTableStmt:
		schema, err := rowset.NewSchema(st.Columns...)
		if err != nil {
			return nil, err
		}
		if _, err := e.DB.CreateTable(st.Name, schema); err != nil {
			return nil, err
		}
		return affected(0)
	case *InsertStmt:
		return e.execInsert(st)
	case *DeleteStmt:
		return e.execDelete(st)
	case *UpdateStmt:
		return e.execUpdate(st)
	case *DropTableStmt:
		if err := e.DB.DropTable(st.Name); err != nil {
			return nil, err
		}
		return affected(0)
	case *CreateViewStmt:
		return e.execCreateView(st)
	case *DropViewStmt:
		if err := e.views.drop(st.Name); err != nil {
			return nil, err
		}
		return affected(0)
	}
	return nil, fmt.Errorf("sqlengine: unsupported statement %T", stmt)
}

func affected(n int) (*rowset.Rowset, error) {
	rs := rowset.New(rowset.MustSchema(rowset.Column{Name: "rows affected", Type: rowset.TypeLong}))
	if err := rs.AppendVals(int64(n)); err != nil {
		return nil, err
	}
	return rs, nil
}

// ---------- SELECT ----------

// Query executes a SELECT and returns the result rowset.
func (e *Engine) Query(sel *SelectStmt) (*rowset.Rowset, error) {
	return e.QueryContext(context.Background(), sel)
}

// QueryContext executes a SELECT, recording one span per executor node —
// scan, join, filter, group-by, sort, project — on the trace carried by ctx.
// With no trace the span calls are nil no-ops and nothing allocates.
func (e *Engine) QueryContext(ctx context.Context, sel *SelectStmt) (*rowset.Rowset, error) {
	t := obs.FromContext(ctx)
	spSel := t.StartSpan("select", "")
	defer t.EndSpan(spSel)
	sel, err := e.resolveStatementSubqueries(sel)
	if err != nil {
		return nil, err
	}
	src, err := e.buildSource(t, sel.From)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		sp := t.StartSpan("filter", "")
		src, err = filterRowset(src, sel.Where)
		if err != nil {
			t.EndSpan(sp)
			return nil, err
		}
		sp.SetRows(int64(src.Len()))
		t.EndSpan(sp)
	}
	needAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	if !needAgg {
		for _, it := range sel.Items {
			if !it.Star && ContainsAggregate(it.Expr) {
				needAgg = true
				break
			}
		}
	}
	var out *rowset.Rowset
	if needAgg {
		sp := t.StartSpan("group-by", "")
		out, err = e.aggregate(sel, src)
		if err == nil {
			sp.SetRows(int64(out.Len()))
		}
		t.EndSpan(sp)
	} else {
		out, err = e.project(t, sel, src)
	}
	if err != nil {
		return nil, err
	}
	if sel.Distinct {
		out = distinct(out)
	}
	if sel.Top > 0 && out.Len() > sel.Top {
		trimmed := rowset.New(out.Schema())
		for i := 0; i < sel.Top; i++ {
			if err := trimmed.Append(out.Row(i)); err != nil {
				return nil, err
			}
		}
		out = trimmed
	}
	spSel.SetRows(int64(out.Len()))
	return out, nil
}

// buildSource scans and joins the FROM clause into one rowset whose columns
// are qualified "alias.column" so references resolve unambiguously. Each
// table scan and each join records a span on t.
func (e *Engine) buildSource(t *obs.Trace, from []TableRef) (*rowset.Rowset, error) {
	if len(from) == 0 {
		// FROM-less SELECT evaluates items once against an empty row.
		rs := rowset.New(rowset.MustSchema())
		if err := rs.AppendVals(); err != nil {
			return nil, err
		}
		return rs, nil
	}
	acc, err := e.scanTraced(t, from[0])
	if err != nil {
		return nil, err
	}
	for _, ref := range from[1:] {
		right, err := e.scanTraced(t, ref)
		if err != nil {
			return nil, err
		}
		sp := t.StartSpan("join", joinKindLabel(ref.Kind))
		acc, err = join(acc, right, ref.Kind, ref.On)
		if err != nil {
			t.EndSpan(sp)
			return nil, err
		}
		sp.SetRows(int64(acc.Len()))
		t.EndSpan(sp)
	}
	return acc, nil
}

// scanTraced wraps scanQualified in a "scan" span labelled with the table (or
// view) name.
func (e *Engine) scanTraced(t *obs.Trace, ref TableRef) (*rowset.Rowset, error) {
	sp := t.StartSpan("scan", ref.AliasOrName())
	rs, err := e.scanQualified(ref)
	if err != nil {
		t.EndSpan(sp)
		return nil, err
	}
	sp.SetRows(int64(rs.Len()))
	t.EndSpan(sp)
	return rs, nil
}

// joinKindLabel names a join kind for span labels.
func joinKindLabel(k JoinKind) string {
	switch k {
	case JoinLeft:
		return "left"
	case JoinCross:
		return "cross"
	}
	return "inner"
}

// PlanSpan renders the SELECT's executor plan as a span tree without running
// it: the same operator nodes, in the same order, that QueryContext would
// record on a trace — scan/join per FROM entry, filter, then group-by or
// project (+sort). Elapsed and Rows stay zero; EXPLAIN renders them as NULL.
func (sel *SelectStmt) PlanSpan() *obs.Span {
	sp := obs.NewSpan("select", "")
	for i, ref := range sel.From {
		sp.Add(obs.NewSpan("scan", ref.AliasOrName()))
		if i > 0 {
			sp.Add(obs.NewSpan("join", joinKindLabel(ref.Kind)))
		}
	}
	if sel.Where != nil {
		sp.Add(obs.NewSpan("filter", ""))
	}
	needAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	if !needAgg {
		for _, it := range sel.Items {
			if !it.Star && ContainsAggregate(it.Expr) {
				needAgg = true
				break
			}
		}
	}
	if needAgg {
		sp.Add(obs.NewSpan("group-by", ""))
	} else {
		sp.Add(obs.NewSpan("project", ""))
		if len(sel.OrderBy) > 0 {
			sp.Add(obs.NewSpan("sort", ""))
		}
	}
	return sp
}

func (e *Engine) scanQualified(ref TableRef) (*rowset.Rowset, error) {
	var scan *rowset.Rowset
	if view, ok := e.views.get(ref.Name); ok {
		// Views are registered only after their query validates, and can
		// reference only pre-existing views, so expansion cannot cycle.
		vr, err := e.Query(view)
		if err != nil {
			return nil, fmt.Errorf("sqlengine: view %s: %w", ref.Name, err)
		}
		scan = vr
	} else {
		tbl, err := e.DB.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		scan = tbl.Scan()
	}
	q := ref.AliasOrName()
	cols := make([]rowset.Column, scan.Schema().Len())
	for i, c := range scan.Schema().Columns {
		cols[i] = rowset.Column{Name: q + "." + c.Name, Type: c.Type, Nested: c.Nested}
	}
	schema, err := rowset.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("sqlengine: %w (duplicate alias %q?)", err, q)
	}
	return rowset.FromRows(schema, scan.Rows())
}

func concatSchemas(a, b *rowset.Schema) (*rowset.Schema, error) {
	cols := make([]rowset.Column, 0, a.Len()+b.Len())
	cols = append(cols, a.Columns...)
	cols = append(cols, b.Columns...)
	return rowset.NewSchema(cols...)
}

// join combines two qualified rowsets. Equi-joins on column pairs use a hash
// join; everything else falls back to a filtered nested loop.
func join(left, right *rowset.Rowset, kind JoinKind, on Expr) (*rowset.Rowset, error) {
	schema, err := concatSchemas(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	out := rowset.New(schema)
	appendJoined := func(l, r rowset.Row) error {
		row := make(rowset.Row, 0, len(l)+len(r))
		row = append(row, l...)
		row = append(row, r...)
		return out.Append(row)
	}
	nullRight := make(rowset.Row, right.Schema().Len())

	if kind == JoinCross {
		for _, l := range left.Rows() {
			for _, r := range right.Rows() {
				if err := appendJoined(l, r); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	// Hash-join fast path: ON is a single equality between one column from
	// each side.
	if lo, ro, ok := equiJoinOrdinals(on, left.Schema(), right.Schema()); ok {
		ht := make(map[string][]rowset.Row, right.Len())
		for _, r := range right.Rows() {
			if r[ro] == nil {
				continue // NULL never matches in an equi-join
			}
			k := rowset.Key(r[ro])
			ht[k] = append(ht[k], r)
		}
		for _, l := range left.Rows() {
			var matches []rowset.Row
			if l[lo] != nil {
				matches = ht[rowset.Key(l[lo])]
			}
			if len(matches) == 0 {
				if kind == JoinLeft {
					if err := appendJoined(l, nullRight); err != nil {
						return nil, err
					}
				}
				continue
			}
			for _, r := range matches {
				if err := appendJoined(l, r); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	// General nested loop.
	env := &Env{Schema: schema}
	probe := make(rowset.Row, 0, schema.Len())
	for _, l := range left.Rows() {
		matched := false
		for _, r := range right.Rows() {
			probe = probe[:0]
			probe = append(probe, l...)
			probe = append(probe, r...)
			env.Row = probe
			v, err := Eval(on, env)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				if err := appendJoined(l, r); err != nil {
					return nil, err
				}
			}
		}
		if !matched && kind == JoinLeft {
			if err := appendJoined(l, nullRight); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// equiJoinOrdinals recognizes "a.x = b.y" ON clauses where the two refs
// resolve to opposite sides, returning the left and right ordinals.
func equiJoinOrdinals(on Expr, left, right *rowset.Schema) (int, int, bool) {
	b, ok := on.(*Binary)
	if !ok || b.Op != OpEq {
		return 0, 0, false
	}
	lc, ok1 := b.L.(*ColumnRef)
	rc, ok2 := b.R.(*ColumnRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if lo, err := ResolveColumn(left, lc.Qualifier, lc.Name); err == nil {
		if ro, err := ResolveColumn(right, rc.Qualifier, rc.Name); err == nil {
			return lo, ro, true
		}
	}
	if lo, err := ResolveColumn(left, rc.Qualifier, rc.Name); err == nil {
		if ro, err := ResolveColumn(right, lc.Qualifier, lc.Name); err == nil {
			return lo, ro, true
		}
	}
	return 0, 0, false
}

func filterRowset(src *rowset.Rowset, cond Expr) (*rowset.Rowset, error) {
	out := rowset.New(src.Schema())
	env := &Env{Schema: src.Schema()}
	for _, r := range src.Rows() {
		env.Row = r
		v, err := Eval(cond, env)
		if err != nil {
			return nil, err
		}
		ok, err := Truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := out.Append(r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ---------- projection (no aggregation) ----------

func (e *Engine) project(t *obs.Trace, sel *SelectStmt, src *rowset.Rowset) (*rowset.Rowset, error) {
	items, err := expandStars(sel.Items, src.Schema())
	if err != nil {
		return nil, err
	}
	names := outputNames(items)
	env := &Env{Schema: src.Schema()}

	// Compute output values and ORDER BY keys per row.
	spProj := t.StartSpan("project", "")
	type sortableRow struct {
		out  rowset.Row
		keys rowset.Row
	}
	rows := make([]sortableRow, 0, src.Len())
	for _, r := range src.Rows() {
		env.Row = r
		out := make(rowset.Row, len(items))
		for i, it := range items {
			v, err := Eval(it.Expr, env)
			if err != nil {
				t.EndSpan(spProj)
				return nil, err
			}
			out[i] = v
		}
		keys, err := orderKeys(sel.OrderBy, items, names, out, env)
		if err != nil {
			t.EndSpan(spProj)
			return nil, err
		}
		rows = append(rows, sortableRow{out: out, keys: keys})
	}
	sortRows := make([]rowset.Row, len(rows))
	keyRows := make([]rowset.Row, len(rows))
	for i, sr := range rows {
		sortRows[i], keyRows[i] = sr.out, sr.keys
	}
	spProj.SetRows(int64(len(rows)))
	t.EndSpan(spProj)
	if len(sel.OrderBy) > 0 {
		spSort := t.StartSpan("sort", "")
		sortByKeys(sortRows, keyRows, sel.OrderBy)
		spSort.SetRows(int64(len(sortRows)))
		t.EndSpan(spSort)
	}

	schema, err := outputSchema(items, names, src.Schema(), sortRows)
	if err != nil {
		return nil, err
	}
	return rowset.FromRows(schema, sortRows)
}

// expandStars replaces * and q.* items with explicit column refs.
func expandStars(items []SelectItem, schema *rowset.Schema) ([]SelectItem, error) {
	out := make([]SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range schema.Columns {
			name := c.Name
			if it.Qualifier != "" && !strings.HasPrefix(strings.ToLower(name), strings.ToLower(it.Qualifier)+".") {
				continue
			}
			matched = true
			bare := name
			if dot := strings.LastIndex(bare, "."); dot >= 0 {
				bare = bare[dot+1:]
			}
			out = append(out, SelectItem{
				Expr:  &ColumnRef{Name: name},
				Alias: bare,
			})
		}
		if it.Qualifier != "" && !matched {
			return nil, fmt.Errorf("sqlengine: unknown qualifier %q in %s.*", it.Qualifier, it.Qualifier)
		}
	}
	return out, nil
}

// outputNames assigns unique output column names.
func outputNames(items []SelectItem) []string {
	names := make([]string, len(items))
	seen := make(map[string]int)
	for i, it := range items {
		var n string
		switch {
		case it.Alias != "":
			n = it.Alias
		default:
			if cr, ok := it.Expr.(*ColumnRef); ok {
				n = cr.Name
			} else {
				n = it.Expr.String()
			}
		}
		key := strings.ToLower(n)
		if c, dup := seen[key]; dup {
			seen[key] = c + 1
			n = fmt.Sprintf("%s_%d", n, c+1)
			key = strings.ToLower(n)
		}
		seen[key] = 1
		names[i] = n
	}
	return names
}

// outputSchema infers output column types: declared types for direct column
// references, value-based inference otherwise.
func outputSchema(items []SelectItem, names []string, srcSchema *rowset.Schema, rows []rowset.Row) (*rowset.Schema, error) {
	cols := make([]rowset.Column, len(items))
	for i, it := range items {
		col := rowset.Column{Name: names[i], Type: rowset.TypeNull}
		if cr, ok := it.Expr.(*ColumnRef); ok {
			if ord, err := ResolveColumn(srcSchema, cr.Qualifier, cr.Name); err == nil {
				col.Type = srcSchema.Column(ord).Type
				col.Nested = srcSchema.Column(ord).Nested
			}
		}
		if col.Type == rowset.TypeNull {
			for _, r := range rows {
				if r[i] != nil {
					col.Type = rowset.TypeOf(r[i])
					if nested, ok := r[i].(*rowset.Rowset); ok {
						col.Nested = nested.Schema()
					}
					break
				}
			}
		}
		cols[i] = col
	}
	return rowset.NewSchema(cols...)
}

// orderKeys evaluates ORDER BY expressions for one row. Each key expression
// resolves first against the projected output (aliases), then the source row.
func orderKeys(order []OrderItem, items []SelectItem, names []string, out rowset.Row, srcEnv *Env) (rowset.Row, error) {
	if len(order) == 0 {
		return nil, nil
	}
	keys := make(rowset.Row, len(order))
	for i, o := range order {
		// Alias reference?
		if cr, ok := o.Expr.(*ColumnRef); ok && cr.Qualifier == "" {
			found := false
			for j, n := range names {
				if strings.EqualFold(n, cr.Name) {
					keys[i] = out[j]
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		v, err := Eval(o.Expr, srcEnv)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func sortByKeys(rows []rowset.Row, keys []rowset.Row, order []OrderItem) {
	if len(order) == 0 {
		return
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for k, o := range order {
			c := rowset.Compare(keys[a][k], keys[b][k])
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	tmpR := make([]rowset.Row, len(rows))
	for i, j := range idx {
		tmpR[i] = rows[j]
	}
	copy(rows, tmpR)
}

func distinct(rs *rowset.Rowset) *rowset.Rowset {
	out := rowset.New(rs.Schema())
	seen := make(map[string]bool, rs.Len())
	for _, r := range rs.Rows() {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(rowset.Key(v))
			b.WriteByte('|')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			// Append is safe: rows came from a valid rowset.
			_ = out.Append(r)
		}
	}
	return out
}

// ---------- DML ----------

func (e *Engine) execInsert(st *InsertStmt) (*rowset.Rowset, error) {
	tbl, err := e.DB.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()

	// Map the statement's column list to table ordinals.
	ords := make([]int, 0, len(st.Columns))
	if len(st.Columns) > 0 {
		for _, c := range st.Columns {
			i, ok := schema.Lookup(c)
			if !ok {
				return nil, fmt.Errorf("sqlengine: table %s has no column %q", st.Table, c)
			}
			ords = append(ords, i)
		}
	} else {
		for i := 0; i < schema.Len(); i++ {
			ords = append(ords, i)
		}
	}

	buildRow := func(vals rowset.Row) (rowset.Row, error) {
		if len(vals) != len(ords) {
			return nil, fmt.Errorf("sqlengine: INSERT has %d values for %d columns", len(vals), len(ords))
		}
		full := make(rowset.Row, schema.Len())
		for i, o := range ords {
			full[o] = vals[i]
		}
		return full, nil
	}

	n := 0
	if st.Query != nil {
		res, err := e.Query(st.Query)
		if err != nil {
			return nil, err
		}
		for _, r := range res.Rows() {
			full, err := buildRow(r)
			if err != nil {
				return nil, err
			}
			if err := tbl.Insert(full); err != nil {
				return nil, err
			}
			n++
		}
		return affected(n)
	}
	env := &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}
	for _, exprs := range st.Rows {
		vals := make(rowset.Row, len(exprs))
		for i, ex := range exprs {
			v, err := Eval(ex, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		full, err := buildRow(vals)
		if err != nil {
			return nil, err
		}
		if err := tbl.Insert(full); err != nil {
			return nil, err
		}
		n++
	}
	return affected(n)
}

func (e *Engine) execDelete(st *DeleteStmt) (*rowset.Rowset, error) {
	tbl, err := e.DB.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Where == nil {
		n := tbl.Len()
		tbl.Truncate()
		return affected(n)
	}
	scan := tbl.Scan()
	env := &Env{Schema: scan.Schema()}
	var keep []rowset.Row
	removed := 0
	for _, r := range scan.Rows() {
		env.Row = r
		v, err := Eval(st.Where, env)
		if err != nil {
			return nil, err
		}
		ok, err := Truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			removed++
		} else {
			keep = append(keep, r)
		}
	}
	if err := tbl.Replace(keep); err != nil {
		return nil, err
	}
	return affected(removed)
}

func (e *Engine) execUpdate(st *UpdateStmt) (*rowset.Rowset, error) {
	tbl, err := e.DB.Table(st.Table)
	if err != nil {
		return nil, err
	}
	scan := tbl.Scan()
	schema := scan.Schema()
	env := &Env{Schema: schema}
	setOrds := make([]int, len(st.Set))
	for i, sc := range st.Set {
		o, ok := schema.Lookup(sc.Column)
		if !ok {
			return nil, fmt.Errorf("sqlengine: table %s has no column %q", st.Table, sc.Column)
		}
		setOrds[i] = o
	}
	rows := make([]rowset.Row, scan.Len())
	n := 0
	for i, r := range scan.Rows() {
		match := true
		env.Row = r
		if st.Where != nil {
			v, err := Eval(st.Where, env)
			if err != nil {
				return nil, err
			}
			match, err = Truthy(v)
			if err != nil {
				return nil, err
			}
		}
		if !match {
			rows[i] = r
			continue
		}
		nr := r.Clone()
		for j, sc := range st.Set {
			v, err := Eval(sc.Value, env)
			if err != nil {
				return nil, err
			}
			nr[setOrds[j]] = v
		}
		rows[i] = nr
		n++
	}
	if err := tbl.Replace(rows); err != nil {
		return nil, err
	}
	return affected(n)
}
