package sqlengine

import (
	"strings"
	"testing"
)

func TestCreateViewAndSelect(t *testing.T) {
	e := newTestEngine(t)
	mustQuery(t, e, `CREATE VIEW Adults AS
		SELECT [Customer ID] AS ID, Age FROM Customers WHERE Age >= 30`)
	rs := mustQuery(t, e, "SELECT COUNT(*) FROM Adults")
	if rs.Row(0)[0] != int64(2) {
		t.Errorf("view rows = %v", rs.Row(0))
	}
	// Views join with tables.
	rs = mustQuery(t, e, `SELECT a.ID, s.[Product Name]
		FROM Adults a JOIN Sales s ON a.ID = s.CustID ORDER BY a.ID, s.[Product Name]`)
	if rs.Len() != 5 { // cust 1: 4 products, cust 3: 1 product
		t.Errorf("view join rows = %d", rs.Len())
	}
	// Views are live: new qualifying base rows appear.
	mustQuery(t, e, "INSERT INTO Customers VALUES (9, 'Male', 'Grey', 70)")
	rs = mustQuery(t, e, "SELECT COUNT(*) FROM Adults")
	if rs.Row(0)[0] != int64(3) {
		t.Errorf("view after insert = %v", rs.Row(0))
	}
}

func TestViewOverView(t *testing.T) {
	e := newTestEngine(t)
	mustQuery(t, e, "CREATE VIEW V1 AS SELECT [Customer ID] AS ID, Age FROM Customers")
	mustQuery(t, e, "CREATE VIEW V2 AS SELECT ID FROM V1 WHERE Age > 30")
	rs := mustQuery(t, e, "SELECT COUNT(*) FROM V2")
	if rs.Row(0)[0] != int64(2) {
		t.Errorf("stacked views = %v", rs.Row(0))
	}
}

func TestViewErrors(t *testing.T) {
	e := newTestEngine(t)
	// View over a missing table fails at create time.
	if _, err := e.Exec("CREATE VIEW Bad AS SELECT x FROM NoSuchTable"); err == nil {
		t.Error("invalid view must fail eagerly")
	}
	// Self-reference fails at create time (name not yet resolvable).
	if _, err := e.Exec("CREATE VIEW SelfRef AS SELECT * FROM SelfRef"); err == nil {
		t.Error("self-referencing view must fail")
	}
	mustQuery(t, e, "CREATE VIEW V AS SELECT Gender FROM Customers")
	if _, err := e.Exec("CREATE VIEW V AS SELECT Age FROM Customers"); err == nil {
		t.Error("duplicate view must fail")
	}
	if _, err := e.Exec("CREATE VIEW Customers AS SELECT 1"); err == nil ||
		!strings.Contains(err.Error(), "table") {
		t.Errorf("view shadowing a table must fail: %v", err)
	}
	mustQuery(t, e, "DROP VIEW V")
	if _, err := e.Exec("SELECT * FROM V"); err == nil {
		t.Error("dropped view must be gone")
	}
	if _, err := e.Exec("DROP VIEW V"); err == nil {
		t.Error("double drop must fail")
	}
	if names := e.ViewNames(); len(names) != 0 {
		t.Errorf("views left: %v", names)
	}
}

func TestViewInShapeSource(t *testing.T) {
	// The paper's Section 3.1 use: a view pulls entity data together, SHAPE
	// consumes it. Exercised through the engine used by shape.
	e := newTestEngine(t)
	mustQuery(t, e, `CREATE VIEW CustomerBase AS
		SELECT [Customer ID], Gender FROM Customers WHERE Age IS NOT NULL`)
	rs := mustQuery(t, e, "SELECT * FROM CustomerBase ORDER BY [Customer ID]")
	if rs.Len() != 3 {
		t.Errorf("view base rows = %d", rs.Len())
	}
}
