package sqlengine

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rowset"
)

func evalStr(t *testing.T, src string, env *Env) rowset.Value {
	t.Helper()
	if env == nil {
		env = &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}
	}
	v, err := Eval(mustParseExpr(src), env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestThreeValuedLogic(t *testing.T) {
	// SQL 3VL truth tables, NULL written as NULL.
	cases := []struct {
		src  string
		want rowset.Value
	}{
		{"TRUE AND NULL", nil},
		{"FALSE AND NULL", false},
		{"NULL AND NULL", nil},
		{"TRUE OR NULL", true},
		{"FALSE OR NULL", nil},
		{"NULL OR NULL", nil},
		{"NOT NULL", nil},
		{"NULL = NULL", nil},
		{"NULL <> 1", nil},
		{"NULL + 1", nil},
		{"NULL IS NULL", true},
		{"NULL IS NOT NULL", false},
		{"1 IN (NULL, 2)", nil},  // not found, NULL present → unknown
		{"2 IN (NULL, 2)", true}, // found → true regardless of NULL
		{"NULL IN (1, 2)", nil},
		{"NULL BETWEEN 1 AND 2", nil},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, nil); got != c.want {
			t.Errorf("%s = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	// The right side errors, but short-circuiting never evaluates it.
	env := &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}
	v, err := Eval(mustParseExpr("FALSE AND NOSUCHFUNC(1)"), env)
	if err != nil || v != false {
		t.Errorf("FALSE AND <err> = %v, %v", v, err)
	}
	v, err = Eval(mustParseExpr("TRUE OR NOSUCHFUNC(1)"), env)
	if err != nil || v != true {
		t.Errorf("TRUE OR <err> = %v, %v", v, err)
	}
}

func TestLogicalTypeErrors(t *testing.T) {
	// Note: TRUE OR <non-bool> short-circuits before typing the right side,
	// so the error cases below all force right-side evaluation.
	for _, src := range []string{"1 AND TRUE", "FALSE OR 'x'", "TRUE AND 1", "NOT 3"} {
		if _, err := Eval(mustParseExpr(src), &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}); err == nil {
			t.Errorf("%s must error", src)
		}
	}
}

func TestConcatOperator(t *testing.T) {
	if v := evalStr(t, "'a' || 'b' || 'c'", nil); v != "abc" {
		t.Errorf("concat = %v", v)
	}
	if v := evalStr(t, "'n=' || 5", nil); v != "n=5" {
		t.Errorf("mixed concat = %v", v)
	}
}

func TestTruthy(t *testing.T) {
	if ok, err := Truthy(true); !ok || err != nil {
		t.Error("Truthy(true)")
	}
	if ok, err := Truthy(nil); ok || err != nil {
		t.Error("Truthy(NULL)")
	}
	if _, err := Truthy(int64(1)); err == nil {
		t.Error("Truthy(number) must error")
	}
}

func TestLikeMatchCases(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "HELLO", true}, // case-insensitive
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true}, // _ _ cover 'e','l'
		{"hello", "h___lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%%", true},
		{"ab", "a%b%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

// Properties of LIKE: s LIKE s, s LIKE '%', s LIKE s+'%' prefix truncation.
func TestLikeProperties(t *testing.T) {
	// likeMatch folds case per rune; keep inputs ASCII so byte slicing in
	// the property cannot split a rune.
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '%' || r == '_' || r > 126 || r < 32 {
				return 'x'
			}
			return r
		}, s)
	}
	f := func(raw string) bool {
		s := clean(raw)
		if !likeMatch(s, s) {
			return false
		}
		if !likeMatch(s, "%") {
			return false
		}
		if len(s) > 1 {
			if !likeMatch(s, s[:1]+"%") {
				return false
			}
			if !likeMatch(s, "%"+s[len(s)-1:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestResolveColumnQualified(t *testing.T) {
	schema := rowset.MustSchema(
		rowset.Column{Name: "c.Age", Type: rowset.TypeDouble},
		rowset.Column{Name: "s.Age", Type: rowset.TypeDouble},
		rowset.Column{Name: "s.Qty", Type: rowset.TypeDouble},
	)
	if i, err := ResolveColumn(schema, "c", "Age"); err != nil || i != 0 {
		t.Errorf("c.Age = %d, %v", i, err)
	}
	if i, err := ResolveColumn(schema, "", "Qty"); err != nil || i != 2 {
		t.Errorf("bare Qty = %d, %v", i, err)
	}
	if _, err := ResolveColumn(schema, "", "Age"); err == nil {
		t.Error("bare Age must be ambiguous")
	}
	if _, err := ResolveColumn(schema, "x", "Age"); err == nil {
		t.Error("unknown qualifier must fail")
	}
}

func TestExternalHook(t *testing.T) {
	env := &Env{
		Schema: rowset.MustSchema(rowset.Column{Name: "a", Type: rowset.TypeLong}),
		Row:    rowset.Row{int64(1)},
		External: func(q, n string) (rowset.Value, bool, error) {
			if q == "m" && n == "magic" {
				return int64(99), true, nil
			}
			if n == "boom" {
				return nil, false, fmt.Errorf("boom")
			}
			return nil, false, nil
		},
	}
	if v, err := Eval(mustParseExpr("m.magic + a"), env); err != nil || v != int64(100) {
		t.Errorf("external = %v, %v", v, err)
	}
	if _, err := Eval(mustParseExpr("boom"), env); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("external error = %v", err)
	}
	if _, err := Eval(mustParseExpr("unknown"), env); err == nil {
		t.Error("unhandled external ref must fall through to error")
	}
}

func TestFuncsHook(t *testing.T) {
	env := &Env{
		Schema: rowset.MustSchema(),
		Row:    rowset.Row{},
		Funcs: func(f *FuncCall, env *Env) (rowset.Value, bool, error) {
			if f.Name == "ANSWER" {
				return int64(42), true, nil
			}
			return nil, false, nil
		},
	}
	if v, err := Eval(mustParseExpr("ANSWER() * 2"), env); err != nil || v != int64(84) {
		t.Errorf("funcs hook = %v, %v", v, err)
	}
	// Unhandled names still reach builtins.
	if v, err := Eval(mustParseExpr("UPPER('x')"), env); err != nil || v != "X" {
		t.Errorf("builtin fallthrough = %v, %v", v, err)
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	env := &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}
	for _, src := range []string{
		"LEN(1)",
		"LEN('a', 'b')",
		"UPPER(3)",
		"SUBSTRING('x', 'a', 1)",
		"ABS('x')",
		"ROUND('x')",
		"IIF(1, 2, 3)", // condition not boolean
	} {
		if _, err := Eval(mustParseExpr(src), env); err == nil {
			t.Errorf("%s must error", src)
		}
	}
	// NULL-propagating scalar functions.
	for _, src := range []string{"LEN(NULL)", "UPPER(NULL)", "ABS(NULL)", "FLOOR(NULL)"} {
		if v := evalStr(t, src, nil); v != nil {
			t.Errorf("%s = %v, want NULL", src, v)
		}
	}
}

func TestSubstringEdges(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"SUBSTRING('hello', 1, 2)", "he"},
		{"SUBSTRING('hello', 4, 10)", "lo"},
		{"SUBSTRING('hello', 99, 2)", ""},
		{"SUBSTRING('hello', 0, 2)", "he"}, // clamped to start
		{"SUBSTRING('hello', 2, 0)", ""},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, nil); got != c.want {
			t.Errorf("%s = %q want %q", c.src, got, c.want)
		}
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	env := &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}
	for _, src := range []string{"'a' + 1", "1 - 'b'", "-'x'"} {
		if _, err := Eval(mustParseExpr(src), env); err == nil {
			t.Errorf("%s must error", src)
		}
	}
}

func TestLikeRequiresText(t *testing.T) {
	env := &Env{Schema: rowset.MustSchema(), Row: rowset.Row{}}
	if _, err := Eval(mustParseExpr("1 LIKE 'x'"), env); err == nil {
		t.Error("LIKE on numbers must error")
	}
	if v := evalStr(t, "NULL LIKE 'x'", nil); v != nil {
		t.Error("NULL LIKE propagates NULL")
	}
}
