package sqlengine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
)

// costEngine builds SMALL (5 rows) and BIG (100 rows, 50 distinct G values,
// 100 distinct ID values) with indexes on BIG.ID and BIG.G.
func costEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(storage.NewDatabase())
	steps := []string{
		"CREATE TABLE SMALL (ID LONG, V TEXT)",
		"CREATE TABLE BIG (ID LONG, G TEXT)",
	}
	for _, s := range steps {
		if _, err := e.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO SMALL VALUES (%d, 'v%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	var ins strings.Builder
	ins.WriteString("INSERT INTO BIG VALUES ")
	for i := 1; i <= 100; i++ {
		if i > 1 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, 'g%d')", i, i%50)
	}
	if _, err := e.Exec(ins.String()); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"ID", "G"} {
		tbl, err := e.DB.Table("BIG")
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.CreateIndex(col); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// findSpans flattens a span tree to kind → labels.
func findSpans(root *obs.Span, kind string) []string {
	var out []string
	root.Walk(func(sp *obs.Span, depth int) {
		if sp.Kind == kind {
			out = append(out, sp.Label)
		}
	})
	return out
}

func runTraced(t *testing.T, e *Engine, q string) *obs.Span {
	t.Helper()
	tr := obs.NewTrace(q, "")
	if _, err := e.ExecContext(obs.WithTrace(t.Context(), tr), q); err != nil {
		t.Fatal(err)
	}
	return tr.Root()
}

// TestJoinBuildSideIsCostBased: the hash join builds on whichever input the
// stats say is smaller, regardless of join order in the statement text.
func TestJoinBuildSideIsCostBased(t *testing.T) {
	e := costEngine(t)
	// Small table on the left: build left, stream the big probe side.
	root := runTraced(t, e, "SELECT SMALL.V, BIG.G FROM SMALL JOIN BIG ON SMALL.ID = BIG.ID")
	joins := findSpans(root, "join")
	if len(joins) != 1 || !strings.Contains(joins[0], "build=left") {
		t.Errorf("small-left join label = %v, want build=left", joins)
	}
	// Small table on the right: build right.
	root = runTraced(t, e, "SELECT SMALL.V, BIG.G FROM BIG JOIN SMALL ON BIG.ID = SMALL.ID")
	joins = findSpans(root, "join")
	if len(joins) != 1 || !strings.Contains(joins[0], "build=right") {
		t.Errorf("small-right join label = %v, want build=right", joins)
	}
}

// TestScanSpanCarriesEstimate: scan labels surface the planner's cardinality
// estimate, shrunk by index pushdown.
func TestScanSpanCarriesEstimate(t *testing.T) {
	e := costEngine(t)
	root := runTraced(t, e, "SELECT G FROM BIG")
	scans := findSpans(root, "scan")
	if len(scans) != 1 || !strings.Contains(scans[0], "est=100") {
		t.Errorf("full scan label = %v, want est=100", scans)
	}
	// An indexed point predicate shrinks the estimate to rows/distinct.
	root = runTraced(t, e, "SELECT G FROM BIG WHERE ID = 7")
	scans = findSpans(root, "scan")
	if len(scans) != 1 || !strings.Contains(scans[0], "index=ID") || !strings.Contains(scans[0], "est=1") {
		t.Errorf("indexed scan label = %v, want index=ID est=1", scans)
	}
}

// TestPushdownPicksMostSelectiveIndex: with two indexed equality conjuncts on
// one scan, the planner pushes the one whose distinct count promises fewer
// rows (ID: 100 distinct → est 1) and leaves the other (G: 50 distinct →
// est 2) as a residual filter.
func TestPushdownPicksMostSelectiveIndex(t *testing.T) {
	e := costEngine(t)
	for _, q := range []string{
		"SELECT G FROM BIG WHERE G = 'g7' AND ID = 7",
		"SELECT G FROM BIG WHERE ID = 7 AND G = 'g7'",
	} {
		root := runTraced(t, e, q)
		scans := findSpans(root, "scan")
		if len(scans) != 1 || !strings.Contains(scans[0], "index=ID") {
			t.Errorf("%q scan label = %v, want index=ID (most selective) regardless of conjunct order", q, scans)
		}
	}
}

// TestCostPlanSpanMirrorsExecution: Engine.PlanSpan (the EXPLAIN surface)
// reports the same build-side and pushdown decisions execution makes.
func TestCostPlanSpanMirrorsExecution(t *testing.T) {
	e := costEngine(t)
	for _, q := range []string{
		"SELECT SMALL.V, BIG.G FROM BIG JOIN SMALL ON BIG.ID = SMALL.ID",
		"SELECT G FROM BIG WHERE G = 'g7' AND ID = 7",
	} {
		st, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		planned := e.PlanSpan(st.(*SelectStmt))
		root := runTraced(t, e, q)
		for _, kind := range []string{"scan", "join"} {
			plan, exec := findSpans(planned, kind), findSpans(root.Children[0], kind)
			if len(plan) != len(exec) {
				t.Errorf("%q %s spans: plan %v != executed %v", q, kind, plan, exec)
				continue
			}
			for i := range plan {
				// Executed spans may append runtime-only annotations
				// ("batches=N") after the planned label; the planning
				// decisions themselves must match exactly.
				if !strings.HasPrefix(exec[i], plan[i]) {
					t.Errorf("%q %s label: plan %q is not a prefix of executed %q", q, kind, plan[i], exec[i])
				}
			}
		}
	}
}
