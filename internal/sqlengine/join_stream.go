package sqlengine

// Streaming join operators. All three preserve the exact output order of the
// old materialized join (left-major: left rows in their scan order, each
// followed by its matches in right scan order) so results stay byte-identical:
//
//   - hashJoinStream: equi-join that builds a hash table over the right input
//     and probes left rows one at a time — the probe side never materializes.
//   - hashJoinBuildLeft: equi-join that builds over the LEFT input when a
//     cardinality hint proves it is the smaller side. Building left while
//     emitting left-major forces full materialization, so this strategy is
//     chosen only when the build-side saving (a smaller hash table) is known,
//     not guessed.
//   - loopJoin: cross joins and general ON expressions; materializes the right
//     side once and streams the left.

import (
	"repro/internal/par"
	"repro/internal/rowset"
	"repro/internal/storage"
)

// newJoinCursor picks a join strategy for one FROM step, reporting the choice
// ("build=left", "build=right", or "loop") for span labels. Exact cursor
// sizes decide the hash-join build side when both are known; otherwise the
// planner's cardinality estimates (lest/rest, negative = unknown) stand in,
// turning the build-side choice into a cost-based decision instead of a
// build-right default. Both inputs are owned by the returned cursor (closed
// on Close or exhaustion); on error the caller still owns them.
func newJoinCursor(left, right rowset.Cursor, kind JoinKind, on Expr, lest, rest int) (rowset.Cursor, string, error) {
	schema, err := concatSchemas(left.Schema(), right.Schema())
	if err != nil {
		return nil, "", err
	}
	if kind != JoinCross {
		if lo, ro, ok := equiJoinOrdinals(on, left.Schema(), right.Schema()); ok {
			if buildLeft(cursorSize(left), cursorSize(right), lest, rest) {
				return &hashJoinBuildLeft{
					left: left, right: right, schema: schema,
					lo: lo, ro: ro, leftOuter: kind == JoinLeft,
				}, "build=left", nil
			}
			return &hashJoinStream{
				left: left, right: right, schema: schema,
				lo: lo, ro: ro, leftOuter: kind == JoinLeft,
				nullRight: make(rowset.Row, right.Schema().Len()),
			}, "build=right", nil
		}
	}
	lj := &loopJoin{
		left: left, right: right, schema: schema,
		env:       &Env{Schema: schema},
		nullRight: make(rowset.Row, right.Schema().Len()),
	}
	if kind != JoinCross {
		lj.on = on
		lj.leftOuter = kind == JoinLeft
	}
	return lj, "loop", nil
}

// buildLeft decides the hash-join build side: exact cursor sizes win, the
// planner's estimates fill in for unknowns, and build-right remains the
// default when neither side's cardinality is established.
func buildLeft(ls, rs, lest, rest int) bool {
	if ls < 0 {
		ls = lest
	}
	if rs < 0 {
		rs = rest
	}
	return ls >= 0 && rs >= 0 && ls < rs
}

// joinRows concatenates a left and right half into one output row.
func joinRows(l, r rowset.Row) rowset.Row {
	row := make(rowset.Row, 0, len(l)+len(r))
	row = append(row, l...)
	return append(row, r...)
}

// hashJoinStream drains the right side into a hash table on first pull, then
// streams left rows through it. NULL keys never match (SQL equi-join
// semantics), matching the filter the build loop applies.
type hashJoinStream struct {
	left, right rowset.Cursor
	schema      *rowset.Schema
	lo, ro      int
	leftOuter   bool
	nullRight   rowset.Row
	workers     int // parallel key workers for the build side (0 = sequential)

	built    bool
	ht       map[string][]rowset.Row
	pendLeft rowset.Row
	pend     []rowset.Row
	pi       int
	scratch  []byte

	bleft  rowset.BatchCursor
	outBuf []rowset.Row
}

func (j *hashJoinStream) build() error {
	rows, err := drainRows(j.right)
	if err != nil {
		return err
	}
	keys := buildKeys(rows, j.ro, j.workers)
	j.ht = make(map[string][]rowset.Row, len(rows))
	for i, r := range rows {
		if r[j.ro] == nil {
			continue // NULL never matches in an equi-join
		}
		j.ht[keys[i]] = append(j.ht[keys[i]], r)
	}
	j.built = true
	return nil
}

// parallelKeyMin is the build-side row count below which computing hash keys
// on parallel workers costs more than it saves.
const parallelKeyMin = 4096

// buildKeys precomputes each row's join key ("" for NULL, which the insert
// loops skip). Key rendering is the CPU-bound part of a hash-join build, so
// large build sides compute keys on parallel workers over contiguous ranges;
// the hash-table INSERTION afterward stays sequential in row order, keeping
// bucket order — and therefore probe output order — identical to a
// sequential build.
func buildKeys(rows []rowset.Row, ord, workers int) []string {
	keys := make([]string, len(rows))
	fill := func(lo, hi int) {
		var scratch []byte
		for i := lo; i < hi; i++ {
			if v := rows[i][ord]; v != nil {
				scratch = rowset.AppendKey(scratch[:0], v)
				keys[i] = string(scratch)
			}
		}
	}
	if workers > 1 && len(rows) >= parallelKeyMin {
		ms := storage.MorselRanges(len(rows), 0)
		// fn never returns an error, so neither does ForEach.
		_ = par.ForEach(len(ms), workers, func(mi int) error {
			fill(ms[mi].Lo, ms[mi].Hi)
			return nil
		})
		return keys
	}
	fill(0, len(rows))
	return keys
}

func (j *hashJoinStream) Next() (rowset.Row, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		if j.pi < len(j.pend) {
			r := joinRows(j.pendLeft, j.pend[j.pi])
			j.pi++
			return r, nil
		}
		l, err := j.left.Next()
		if err != nil || l == nil {
			return nil, err
		}
		var matches []rowset.Row
		if l[j.lo] != nil {
			// map[string(bytes)] probes compile without materializing the key.
			matches = j.ht[string(rowset.AppendKey(j.scratch[:0], l[j.lo]))]
		}
		if len(matches) == 0 {
			if j.leftOuter {
				return joinRows(l, j.nullRight), nil
			}
			continue
		}
		j.pendLeft, j.pend, j.pi = l, matches, 0
	}
}

// NextBatch probes a whole left batch against the hash table, assembling the
// joined rows into a reused output buffer. A batch's worth of probes per
// interface call; the joined rows themselves are freshly allocated (they are
// result rows, retained by consumers).
func (j *hashJoinStream) NextBatch() (rowset.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return rowset.Batch{}, err
		}
	}
	if j.bleft == nil {
		j.bleft = rowset.BatchCursorOf(j.left)
	}
	for {
		b, err := j.bleft.NextBatch()
		if err != nil || b.Empty() {
			return b, err
		}
		out := j.outBuf[:0]
		n := b.Len()
		for i := 0; i < n; i++ {
			l := b.Row(i)
			var matches []rowset.Row
			if l[j.lo] != nil {
				matches = j.ht[string(rowset.AppendKey(j.scratch[:0], l[j.lo]))]
			}
			if len(matches) == 0 {
				if j.leftOuter {
					out = append(out, joinRows(l, j.nullRight))
				}
				continue
			}
			for _, r := range matches {
				out = append(out, joinRows(l, r))
			}
		}
		j.outBuf = out
		if len(out) == 0 {
			continue // no left row in this batch matched: keep pulling
		}
		return rowset.Batch{Rows: out}, nil
	}
}

func (j *hashJoinStream) Schema() *rowset.Schema { return j.schema }

func (j *hashJoinStream) Close() error {
	j.pend, j.pendLeft, j.ht = nil, nil, nil
	err := j.left.Close()
	if rerr := j.right.Close(); err == nil {
		err = rerr
	}
	return err
}

// hashJoinBuildLeft builds the hash table over the left (smaller) side,
// mapping keys to left row positions, then drains the right side once,
// collecting each left row's matches. Output is emitted left-major afterward,
// so the result order is identical to probing left-to-right.
type hashJoinBuildLeft struct {
	left, right rowset.Cursor
	schema      *rowset.Schema
	lo, ro      int
	leftOuter   bool
	workers     int // parallel key workers for the build side (0 = sequential)

	out []rowset.Row
	oi  int
	ran bool
}

func (j *hashJoinBuildLeft) run() error {
	defer j.left.Close()  //nolint:errcheck // drained to exhaustion
	defer j.right.Close() //nolint:errcheck // drained to exhaustion
	j.ran = true

	leftRows, err := drainRows(j.left)
	if err != nil {
		return err
	}
	keys := buildKeys(leftRows, j.lo, j.workers)
	ht := make(map[string][]int, len(leftRows))
	for i, l := range leftRows {
		if l[j.lo] == nil {
			continue // NULL never matches
		}
		ht[keys[i]] = append(ht[keys[i]], i)
	}
	matches := make([][]rowset.Row, len(leftRows))
	var scratch []byte
	brc := rowset.BatchCursorOf(j.right)
	for {
		b, err := brc.NextBatch()
		if err != nil {
			return err
		}
		if b.Empty() {
			break
		}
		n := b.Len()
		for i := 0; i < n; i++ {
			r := b.Row(i)
			if r[j.ro] == nil {
				continue
			}
			for _, li := range ht[string(rowset.AppendKey(scratch[:0], r[j.ro]))] {
				matches[li] = append(matches[li], r)
			}
		}
	}
	var nullRight rowset.Row
	if j.leftOuter {
		nullRight = make(rowset.Row, j.right.Schema().Len())
	}
	for i, l := range leftRows {
		if len(matches[i]) == 0 {
			if j.leftOuter {
				j.out = append(j.out, joinRows(l, nullRight))
			}
			continue
		}
		for _, r := range matches[i] {
			j.out = append(j.out, joinRows(l, r))
		}
	}
	return nil
}

func (j *hashJoinBuildLeft) Next() (rowset.Row, error) {
	if !j.ran {
		if err := j.run(); err != nil {
			return nil, err
		}
	}
	if j.oi >= len(j.out) {
		return nil, nil
	}
	r := j.out[j.oi]
	j.oi++
	return r, nil
}

// NextBatch streams the materialized output in zero-copy windows.
func (j *hashJoinBuildLeft) NextBatch() (rowset.Batch, error) {
	if !j.ran {
		if err := j.run(); err != nil {
			return rowset.Batch{}, err
		}
	}
	if j.oi >= len(j.out) {
		return rowset.Batch{}, nil
	}
	hi := j.oi + rowset.DefaultBatchSize
	if hi > len(j.out) {
		hi = len(j.out)
	}
	b := rowset.Batch{Rows: j.out[j.oi:hi]}
	j.oi = hi
	return b, nil
}

func (j *hashJoinBuildLeft) Schema() *rowset.Schema { return j.schema }

func (j *hashJoinBuildLeft) Close() error {
	j.oi, j.out = 0, nil
	err := j.left.Close()
	if rerr := j.right.Close(); err == nil {
		err = rerr
	}
	return err
}

// loopJoin handles cross joins (on == nil: every pair) and arbitrary ON
// expressions. The right side is materialized once; left rows stream through
// it with a reusable probe row for ON evaluation.
type loopJoin struct {
	left, right rowset.Cursor
	schema      *rowset.Schema
	on          Expr
	leftOuter   bool
	env         *Env
	nullRight   rowset.Row

	built     bool
	rightRows []rowset.Row
	cur       rowset.Row
	ri        int
	matched   bool
	probe     rowset.Row
}

func (j *loopJoin) Next() (rowset.Row, error) {
	if !j.built {
		rows, err := drainRows(j.right)
		if err != nil {
			return nil, err
		}
		j.rightRows = rows
		j.probe = make(rowset.Row, 0, j.schema.Len())
		j.built = true
	}
	for {
		if j.cur == nil {
			l, err := j.left.Next()
			if err != nil || l == nil {
				return nil, err
			}
			j.cur, j.ri, j.matched = l, 0, false
		}
		for j.ri < len(j.rightRows) {
			r := j.rightRows[j.ri]
			j.ri++
			if j.on == nil {
				return joinRows(j.cur, r), nil
			}
			j.probe = append(append(j.probe[:0], j.cur...), r...)
			j.env.Row = j.probe
			v, err := Eval(j.on, j.env)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			if ok {
				j.matched = true
				return joinRows(j.cur, r), nil
			}
		}
		l := j.cur
		j.cur = nil
		if !j.matched && j.leftOuter {
			return joinRows(l, j.nullRight), nil
		}
	}
}

func (j *loopJoin) Schema() *rowset.Schema { return j.schema }

func (j *loopJoin) Close() error {
	j.rightRows, j.cur = nil, nil
	err := j.left.Close()
	if rerr := j.right.Close(); err == nil {
		err = rerr
	}
	return err
}

// compile-time interface checks
var (
	_ rowset.Cursor      = (*hashJoinStream)(nil)
	_ rowset.Cursor      = (*hashJoinBuildLeft)(nil)
	_ rowset.Cursor      = (*loopJoin)(nil)
	_ rowset.BatchCursor = (*hashJoinStream)(nil)
	_ rowset.BatchCursor = (*hashJoinBuildLeft)(nil)
)
