package sqlengine

import (
	"strings"

	"repro/internal/lex"
	"repro/internal/rowset"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	s := lex.NewScanner(src)
	stmt, err := ParseStatement(s)
	if err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, lex.Errorf(s.Peek(), "unexpected input after statement: %s", s.Peek())
	}
	return stmt, nil
}

// ParseStatement parses one statement from the scanner, leaving trailing
// input in place (the DMX parser embeds SQL SELECTs this way).
func ParseStatement(s *lex.Scanner) (Statement, error) {
	switch {
	case s.Peek().Is("SELECT"):
		return ParseSelect(s)
	case s.Peek().Is("CREATE"):
		return parseCreateTable(s)
	case s.Peek().Is("INSERT"):
		return parseInsert(s)
	case s.Peek().Is("DELETE"):
		return parseDelete(s)
	case s.Peek().Is("UPDATE"):
		return parseUpdate(s)
	case s.Peek().Is("DROP"):
		return parseDropTable(s)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return nil, lex.Errorf(s.Peek(), "expected a SQL statement, found %s", s.Peek())
}

// ParseSelect parses a SELECT statement from the scanner.
func ParseSelect(s *lex.Scanner) (*SelectStmt, error) {
	if err := s.Expect("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if s.Accept("DISTINCT") {
		sel.Distinct = true
	}
	if s.Accept("TOP") {
		t, err := s.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind != lex.Number {
			return nil, lex.Errorf(t, "expected number after TOP, found %s", t)
		}
		n, err := t.Int()
		if err != nil || n < 0 {
			return nil, lex.Errorf(t, "invalid TOP count %q", t.Text)
		}
		sel.Top = int(n)
	}
	for {
		item, err := parseSelectItem(s)
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !s.AcceptPunct(",") {
			break
		}
	}
	if s.Accept("FROM") {
		refs, err := parseFrom(s)
		if err != nil {
			return nil, err
		}
		sel.From = refs
	}
	if s.Accept("WHERE") {
		e, err := ParseExpr(s)
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if s.AcceptSeq("GROUP", "BY") {
		for {
			e, err := ParseExpr(s)
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !s.AcceptPunct(",") {
				break
			}
		}
	}
	if s.Accept("HAVING") {
		e, err := ParseExpr(s)
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if s.AcceptSeq("ORDER", "BY") {
		for {
			e, err := ParseExpr(s)
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if s.Accept("DESC") {
				item.Desc = true
			} else {
				s.Accept("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !s.AcceptPunct(",") {
				break
			}
		}
	}
	return sel, nil
}

func parseSelectItem(s *lex.Scanner) (SelectItem, error) {
	if s.AcceptPunct("*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident.* — needs lookahead; try expression first and
	// special-case a column ref followed by ".*".
	e, err := ParseExpr(s)
	if err != nil {
		return SelectItem{}, err
	}
	if cr, ok := e.(*ColumnRef); ok && cr.Qualifier == "" && s.Peek().IsPunct(".") {
		// Saw "ident ." — only legal continuation here is "*".
		s.AcceptPunct(".")
		if err := s.ExpectPunct("*"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Star: true, Qualifier: cr.Name}, nil
	}
	item := SelectItem{Expr: e}
	if s.Accept("AS") {
		name, err := s.Name()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if t := s.Peek(); t.Kind == lex.Ident && !isClauseKeyword(t) {
		// Implicit alias: SELECT a b
		s.Next()
		item.Alias = t.Text
	}
	return item, nil
}

// isClauseKeyword reports whether an identifier token begins a clause and so
// cannot be an implicit alias.
func isClauseKeyword(t lex.Token) bool {
	if t.Quoted {
		return false
	}
	switch strings.ToUpper(t.Text) {
	case "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "INNER", "LEFT", "JOIN",
		"ON", "UNION", "APPEND", "RELATE", "AS", "PREDICTION", "NATURAL", "TO", "BY":
		return true
	}
	return false
}

func parseFrom(s *lex.Scanner) ([]TableRef, error) {
	var refs []TableRef
	first, err := parseTableRef(s)
	if err != nil {
		return nil, err
	}
	refs = append(refs, first)
	for {
		switch {
		case s.AcceptPunct(","):
			r, err := parseTableRef(s)
			if err != nil {
				return nil, err
			}
			r.Kind = JoinCross
			refs = append(refs, r)
		case s.Peek().Is("JOIN") || s.Peek().Is("INNER") || s.Peek().Is("LEFT"):
			kind := JoinInner
			if s.Accept("LEFT") {
				kind = JoinLeft
				s.Accept("OUTER")
			} else {
				s.Accept("INNER")
			}
			if err := s.Expect("JOIN"); err != nil {
				return nil, err
			}
			r, err := parseTableRef(s)
			if err != nil {
				return nil, err
			}
			r.Kind = kind
			if err := s.Expect("ON"); err != nil {
				return nil, err
			}
			on, err := ParseExpr(s)
			if err != nil {
				return nil, err
			}
			r.On = on
			refs = append(refs, r)
		default:
			return refs, s.Err()
		}
	}
}

func parseTableRef(s *lex.Scanner) (TableRef, error) {
	name, err := s.Name()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if s.Accept("AS") {
		a, err := s.Name()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if t := s.Peek(); t.Kind == lex.Ident && !isClauseKeyword(t) {
		s.Next()
		ref.Alias = t.Text
	}
	return ref, nil
}

func parseCreateTable(s *lex.Scanner) (Statement, error) {
	if err := s.Expect("CREATE"); err != nil {
		return nil, err
	}
	if s.Accept("VIEW") {
		name, err := s.Name()
		if err != nil {
			return nil, err
		}
		if err := s.Expect("AS"); err != nil {
			return nil, err
		}
		q, err := ParseSelect(s)
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Query: q}, nil
	}
	if err := s.Expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := s.Name()
	if err != nil {
		return nil, err
	}
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	var cols []rowset.Column
	for {
		cname, err := s.Name()
		if err != nil {
			return nil, err
		}
		tt, err := s.Next()
		if err != nil {
			return nil, err
		}
		if tt.Kind != lex.Ident {
			return nil, lex.Errorf(tt, "expected column type, found %s", tt)
		}
		typ, ok := rowset.ParseType(tt.Text)
		if !ok || typ == rowset.TypeTable {
			return nil, lex.Errorf(tt, "unknown column type %q", tt.Text)
		}
		// Swallow optional length suffix: VARCHAR(80).
		if s.AcceptPunct("(") {
			if _, err := s.Next(); err != nil {
				return nil, err
			}
			if err := s.ExpectPunct(")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, rowset.Column{Name: cname, Type: typ})
		if s.AcceptPunct(",") {
			continue
		}
		break
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name, Columns: cols}, nil
}

func parseInsert(s *lex.Scanner) (Statement, error) {
	if err := s.Expect("INSERT"); err != nil {
		return nil, err
	}
	if err := s.Expect("INTO"); err != nil {
		return nil, err
	}
	name, err := s.Name()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if s.AcceptPunct("(") {
		for {
			c, err := s.Name()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !s.AcceptPunct(",") {
				break
			}
		}
		if err := s.ExpectPunct(")"); err != nil {
			return nil, err
		}
	}
	if s.Accept("VALUES") {
		for {
			if err := s.ExpectPunct("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := ParseExpr(s)
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !s.AcceptPunct(",") {
					break
				}
			}
			if err := s.ExpectPunct(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !s.AcceptPunct(",") {
				break
			}
		}
		return ins, nil
	}
	if s.Peek().Is("SELECT") {
		q, err := ParseSelect(s)
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	return nil, lex.Errorf(s.Peek(), "expected VALUES or SELECT, found %s", s.Peek())
}

func parseDelete(s *lex.Scanner) (Statement, error) {
	if err := s.Expect("DELETE"); err != nil {
		return nil, err
	}
	if err := s.Expect("FROM"); err != nil {
		return nil, err
	}
	name, err := s.Name()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: name}
	if s.Accept("WHERE") {
		e, err := ParseExpr(s)
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func parseUpdate(s *lex.Scanner) (Statement, error) {
	if err := s.Expect("UPDATE"); err != nil {
		return nil, err
	}
	name, err := s.Name()
	if err != nil {
		return nil, err
	}
	if err := s.Expect("SET"); err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: name}
	for {
		col, err := s.Name()
		if err != nil {
			return nil, err
		}
		if err := s.ExpectPunct("="); err != nil {
			return nil, err
		}
		e, err := ParseExpr(s)
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, SetClause{Column: col, Value: e})
		if !s.AcceptPunct(",") {
			break
		}
	}
	if s.Accept("WHERE") {
		e, err := ParseExpr(s)
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

func parseDropTable(s *lex.Scanner) (Statement, error) {
	if err := s.Expect("DROP"); err != nil {
		return nil, err
	}
	if s.Accept("VIEW") {
		name, err := s.Name()
		if err != nil {
			return nil, err
		}
		return &DropViewStmt{Name: name}, nil
	}
	if err := s.Expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := s.Name()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

// ParseExpr parses an expression with full operator precedence. Exported for
// reuse by the DMX parser (prediction-join ON clauses, UDF arguments).
func ParseExpr(s *lex.Scanner) (Expr, error) {
	return parseOr(s)
}

func parseOr(s *lex.Scanner) (Expr, error) {
	l, err := parseAnd(s)
	if err != nil {
		return nil, err
	}
	for s.Accept("OR") {
		r, err := parseAnd(s)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func parseAnd(s *lex.Scanner) (Expr, error) {
	l, err := parseNot(s)
	if err != nil {
		return nil, err
	}
	for s.Accept("AND") {
		r, err := parseNot(s)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func parseNot(s *lex.Scanner) (Expr, error) {
	if s.Accept("NOT") {
		x, err := parseNot(s)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return parseComparison(s)
}

func parseComparison(s *lex.Scanner) (Expr, error) {
	l, err := parseAdditive(s)
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if s.Accept("IS") {
		neg := s.Accept("NOT")
		if err := s.Expect("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	neg := false
	if s.Peek().Is("NOT") {
		// Only consume NOT if followed by IN/BETWEEN/LIKE.
		if s.AcceptSeq("NOT", "IN") {
			return parseInList(s, l, true)
		}
		if s.AcceptSeq("NOT", "BETWEEN") {
			return parseBetween(s, l, true)
		}
		if s.AcceptSeq("NOT", "LIKE") {
			r, err := parseAdditive(s)
			if err != nil {
				return nil, err
			}
			return &Unary{Op: "NOT", X: &Binary{Op: OpLike, L: l, R: r}}, nil
		}
	}
	if s.Accept("IN") {
		return parseInList(s, l, neg)
	}
	if s.Accept("BETWEEN") {
		return parseBetween(s, l, neg)
	}
	if s.Accept("LIKE") {
		r, err := parseAdditive(s)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpLike, L: l, R: r}, nil
	}
	ops := []struct {
		text string
		op   BinaryOp
	}{
		{"<=", OpLe}, {">=", OpGe}, {"<>", OpNe}, {"!=", OpNe},
		{"=", OpEq}, {"<", OpLt}, {">", OpGt},
	}
	for _, o := range ops {
		if s.AcceptPunct(o.text) {
			r, err := parseAdditive(s)
			if err != nil {
				return nil, err
			}
			return &Binary{Op: o.op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func parseInList(s *lex.Scanner, l Expr, neg bool) (Expr, error) {
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	if s.Peek().Is("SELECT") {
		sub, err := ParseSelect(s)
		if err != nil {
			return nil, err
		}
		if err := s.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return &In{X: l, Negate: neg, Subquery: sub}, nil
	}
	var list []Expr
	for {
		e, err := ParseExpr(s)
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !s.AcceptPunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	return &In{X: l, List: list, Negate: neg}, nil
}

func parseBetween(s *lex.Scanner, l Expr, neg bool) (Expr, error) {
	lo, err := parseAdditive(s)
	if err != nil {
		return nil, err
	}
	if err := s.Expect("AND"); err != nil {
		return nil, err
	}
	hi, err := parseAdditive(s)
	if err != nil {
		return nil, err
	}
	return &Between{X: l, Lo: lo, Hi: hi, Negate: neg}, nil
}

func parseAdditive(s *lex.Scanner) (Expr, error) {
	l, err := parseMultiplicative(s)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case s.AcceptPunct("+"):
			r, err := parseMultiplicative(s)
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case s.AcceptPunct("-"):
			r, err := parseMultiplicative(s)
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		case s.AcceptPunct("||"):
			r, err := parseMultiplicative(s)
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpConcat, L: l, R: r}
		default:
			return l, s.Err()
		}
	}
}

func parseMultiplicative(s *lex.Scanner) (Expr, error) {
	l, err := parseUnary(s)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case s.AcceptPunct("*"):
			r, err := parseUnary(s)
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case s.AcceptPunct("/"):
			r, err := parseUnary(s)
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		default:
			return l, s.Err()
		}
	}
}

func parseUnary(s *lex.Scanner) (Expr, error) {
	if s.AcceptPunct("-") {
		x, err := parseUnary(s)
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			switch v := lit.Val.(type) {
			case int64:
				return &Literal{Val: -v}, nil
			case float64:
				return &Literal{Val: -v}, nil
			default:
				// Non-numeric literal: negate at evaluation time via Unary.
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	s.AcceptPunct("+")
	return parsePrimary(s)
}

func parsePrimary(s *lex.Scanner) (Expr, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	t := s.Peek()
	switch t.Kind {
	case lex.Number:
		s.Next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := t.Float()
			if err != nil {
				return nil, lex.Errorf(t, "bad number %q", t.Text)
			}
			return &Literal{Val: f}, nil
		}
		n, err := t.Int()
		if err != nil {
			f, ferr := t.Float()
			if ferr != nil {
				return nil, lex.Errorf(t, "bad number %q", t.Text)
			}
			return &Literal{Val: f}, nil
		}
		return &Literal{Val: n}, nil
	case lex.String:
		s.Next()
		return &Literal{Val: t.Text}, nil
	case lex.Punct:
		if t.Text == "?" {
			s.Next()
			return &Param{Ordinal: -1, TokPos: t.Pos, Pos: t.Position()}, nil
		}
		if t.Text == "(" {
			s.Next()
			if s.Peek().Is("SELECT") {
				sub, err := ParseSelect(s)
				if err != nil {
					return nil, err
				}
				if err := s.ExpectPunct(")"); err != nil {
					return nil, err
				}
				return &Subquery{Query: sub}, nil
			}
			e, err := ParseExpr(s)
			if err != nil {
				return nil, err
			}
			if err := s.ExpectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case lex.Ident:
		if !t.Quoted && len(t.Text) > 1 && strings.HasPrefix(t.Text, "@") {
			s.Next()
			return &Param{Ordinal: -1, Name: t.Text[1:], TokPos: t.Pos, Pos: t.Position()}, nil
		}
		if !t.Quoted {
			switch strings.ToUpper(t.Text) {
			case "NULL":
				s.Next()
				return &Literal{Val: nil}, nil
			case "TRUE":
				s.Next()
				return &Literal{Val: true}, nil
			case "FALSE":
				s.Next()
				return &Literal{Val: false}, nil
			}
			if strings.EqualFold(t.Text, "EXISTS") {
				s.Next()
				if err := s.ExpectPunct("("); err != nil {
					return nil, err
				}
				sub, err := ParseSelect(s)
				if err != nil {
					return nil, err
				}
				if err := s.ExpectPunct(")"); err != nil {
					return nil, err
				}
				return &Exists{Query: sub}, nil
			}
			// Clause keywords cannot start an expression; a column that
			// really has such a name must be [bracketed].
			if isClauseKeyword(t) {
				return nil, lex.Errorf(t, "expected expression, found %s", t)
			}
		}
		s.Next()
		// Function call?
		if !t.Quoted && s.Peek().IsPunct("(") {
			return parseFuncCall(s, t.Text, t.Position())
		}
		// Dotted column reference: a.b (qualifier.name). Deeper paths
		// (a.b.c) fold the prefix into the qualifier.
		name := t.Text
		qual := ""
		for s.Peek().IsPunct(".") {
			// Don't consume ".*" — that belongs to the select-item parser.
			restore := s.Mark()
			s.AcceptPunct(".")
			if s.Peek().IsPunct("*") {
				restore()
				break
			}
			part, err := s.Name()
			if err != nil {
				return nil, err
			}
			if qual == "" {
				qual = name
			} else {
				qual = qual + "." + name
			}
			name = part
		}
		return &ColumnRef{Qualifier: qual, Name: name, Pos: t.Position()}, nil
	}
	return nil, lex.Errorf(t, "expected expression, found %s", t)
}

func parseFuncCall(s *lex.Scanner, name string, namePos lex.Pos) (Expr, error) {
	if err := s.ExpectPunct("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: strings.ToUpper(name), Pos: namePos}
	if s.AcceptPunct("*") {
		f.Star = true
		if err := s.ExpectPunct(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if s.AcceptPunct(")") {
		return f, nil
	}
	if s.Accept("DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := ParseExpr(s)
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !s.AcceptPunct(",") {
			break
		}
	}
	if err := s.ExpectPunct(")"); err != nil {
		return nil, err
	}
	return f, nil
}
