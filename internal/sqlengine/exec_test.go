package sqlengine

import (
	"strings"
	"testing"

	"repro/internal/rowset"
	"repro/internal/storage"
)

// newTestEngine builds the paper's running schema: Customers, Sales (product
// purchases), and Cars (car ownership) — the 3-table example of Section 3.1.
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(storage.NewDatabase())
	stmts := []string{
		"CREATE TABLE Customers ([Customer ID] LONG, Gender TEXT, [Hair Color] TEXT, Age DOUBLE)",
		"CREATE TABLE Sales (CustID LONG, [Product Name] TEXT, Quantity DOUBLE, [Product Type] TEXT)",
		"CREATE TABLE Cars (CustID LONG, Car TEXT, Probability DOUBLE)",
		"INSERT INTO Customers VALUES (1, 'Male', 'Black', 35), (2, 'Female', 'Brown', 28), (3, 'Male', NULL, 52)",
		`INSERT INTO Sales VALUES
			(1, 'TV', 1, 'Electronic'), (1, 'VCR', 1, 'Electronic'),
			(1, 'Ham', 2, 'Food'), (1, 'Beer', 6, 'Beverage'),
			(2, 'TV', 1, 'Electronic'), (3, 'Beer', 12, 'Beverage')`,
		"INSERT INTO Cars VALUES (1, 'Truck', 1.0), (1, 'Van', 0.5), (2, 'Sedan', 1.0)",
	}
	for _, s := range stmts {
		if _, err := e.Exec(s); err != nil {
			t.Fatalf("setup %q: %v", s, err)
		}
	}
	return e
}

func mustQuery(t *testing.T, e *Engine, sql string) *rowset.Rowset {
	t.Helper()
	rs, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return rs
}

func TestSelectStar(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT * FROM Customers")
	if rs.Len() != 3 || rs.Schema().Len() != 4 {
		t.Fatalf("got %dx%d", rs.Len(), rs.Schema().Len())
	}
	// Star output uses bare names, not qualified ones.
	if _, ok := rs.Schema().Lookup("Gender"); !ok {
		t.Errorf("schema = %v", rs.Schema().Names())
	}
}

func TestSelectWhereOrder(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT [Customer ID], Age FROM Customers WHERE Age > 30 ORDER BY Age DESC")
	if rs.Len() != 2 {
		t.Fatalf("rows = %d", rs.Len())
	}
	if rs.Row(0)[1] != 52.0 || rs.Row(1)[1] != 35.0 {
		t.Errorf("order wrong: %v", rs.Rows())
	}
}

func TestSelectExpressionProjection(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT [Customer ID], Age * 2 AS DoubleAge, UPPER(Gender) AS G FROM Customers ORDER BY [Customer ID]")
	if rs.Row(0)[1] != 70.0 || rs.Row(0)[2] != "MALE" {
		t.Errorf("row 0 = %v", rs.Row(0))
	}
	if _, ok := rs.Schema().Lookup("DoubleAge"); !ok {
		t.Errorf("alias missing: %v", rs.Schema().Names())
	}
}

func TestSelectOrderByAlias(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT [Customer ID], Age + 0 AS A FROM Customers ORDER BY A")
	if rs.Row(0)[0] != int64(2) { // youngest first
		t.Errorf("order by alias wrong: %v", rs.Rows())
	}
}

func TestInnerJoinHashPath(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT c.[Customer ID], s.[Product Name]
		FROM Customers c JOIN Sales s ON c.[Customer ID] = s.CustID
		ORDER BY c.[Customer ID], s.[Product Name]`)
	if rs.Len() != 6 {
		t.Fatalf("join rows = %d want 6", rs.Len())
	}
	if rs.Row(0)[1] != "Beer" || rs.Row(5)[1] != "Beer" {
		t.Errorf("join content: %v", rs.Rows())
	}
}

func TestPaperTwelveRowJoin(t *testing.T) {
	// Section 3.1: joining the 3 tables for customer 1 yields
	// 4 purchases x 2 cars = 8 rows for customer 1, plus 1x1 for customer 2;
	// the paper's example (4 purchases, 3 extra attrs) quotes 12 rows for a
	// single customer with 4 products and... the flattened join of all of
	// customer 1's info. Here: customer 1 contributes 4*2 = 8 rows.
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT c.[Customer ID]
		FROM Customers c
		JOIN Sales s ON c.[Customer ID] = s.CustID
		JOIN Cars k ON k.CustID = c.[Customer ID]
		WHERE c.[Customer ID] = 1`)
	if rs.Len() != 8 {
		t.Errorf("flattened join = %d rows, want 8", rs.Len())
	}
}

func TestLeftJoin(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT c.[Customer ID], k.Car FROM Customers c
		LEFT JOIN Cars k ON c.[Customer ID] = k.CustID ORDER BY c.[Customer ID]`)
	// Customer 3 has no car: NULL row preserved.
	if rs.Len() != 4 {
		t.Fatalf("left join rows = %d want 4", rs.Len())
	}
	last := rs.Row(3)
	if last[0] != int64(3) || last[1] != nil {
		t.Errorf("unmatched row = %v", last)
	}
}

func TestCrossJoin(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT c.[Customer ID], k.Car FROM Customers c, Cars k")
	if rs.Len() != 9 {
		t.Errorf("cross join = %d want 9", rs.Len())
	}
}

func TestNonEquiJoinFallback(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT c.[Customer ID], k.CustID FROM Customers c
		JOIN Cars k ON c.[Customer ID] < k.CustID`)
	// c1 < k2(x1): custID 1 < 2 → 1 row (cars of cust 2: Sedan) ... compute:
	// cars rows CustID: 1,1,2. c1: k=2 → 1 match. c2: none. c3: none.
	if rs.Len() != 1 {
		t.Errorf("theta join = %d rows: %v", rs.Len(), rs.Rows())
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT Gender, COUNT(*) AS n, AVG(Age) AS avg_age, MIN(Age) AS lo, MAX(Age) AS hi
		FROM Customers GROUP BY Gender ORDER BY Gender`)
	if rs.Len() != 2 {
		t.Fatalf("groups = %d", rs.Len())
	}
	f := rs.Row(0) // Female
	m := rs.Row(1) // Male
	if f[0] != "Female" || f[1] != int64(1) || f[2] != 28.0 {
		t.Errorf("female group = %v", f)
	}
	if m[1] != int64(2) || m[2] != 43.5 || m[3] != 35.0 || m[4] != 52.0 {
		t.Errorf("male group = %v", m)
	}
}

func TestAggregateNoGroupBy(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT COUNT(*), SUM(Quantity), COUNT(DISTINCT [Product Name]) FROM Sales")
	r := rs.Row(0)
	if r[0] != int64(6) || r[1] != 23.0 || r[2] != int64(4) {
		t.Errorf("aggregates = %v", r)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT COUNT(*), SUM(Age) FROM Customers WHERE Age > 1000")
	r := rs.Row(0)
	if r[0] != int64(0) || r[1] != nil {
		t.Errorf("empty aggregates = %v", r)
	}
}

func TestHaving(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT CustID, COUNT(*) AS n FROM Sales GROUP BY CustID HAVING COUNT(*) > 1 ORDER BY CustID`)
	if rs.Len() != 1 || rs.Row(0)[0] != int64(1) || rs.Row(0)[1] != int64(4) {
		t.Errorf("having = %v", rs.Rows())
	}
}

func TestCountNullSkipped(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT COUNT([Hair Color]) FROM Customers")
	if rs.Row(0)[0] != int64(2) {
		t.Errorf("COUNT skips NULL: %v", rs.Row(0))
	}
}

func TestDistinctAndTop(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT DISTINCT [Product Type] FROM Sales ORDER BY [Product Type]")
	if rs.Len() != 3 {
		t.Errorf("distinct = %v", rs.Rows())
	}
	rs = mustQuery(t, e, "SELECT TOP 2 [Customer ID] FROM Customers ORDER BY Age DESC")
	if rs.Len() != 2 || rs.Row(0)[0] != int64(3) {
		t.Errorf("top = %v", rs.Rows())
	}
}

func TestWherePredicates(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM Customers WHERE [Hair Color] IS NULL", 1},
		{"SELECT * FROM Customers WHERE [Hair Color] IS NOT NULL", 2},
		{"SELECT * FROM Customers WHERE Gender IN ('Male')", 2},
		{"SELECT * FROM Customers WHERE Gender NOT IN ('Male')", 1},
		{"SELECT * FROM Customers WHERE Age BETWEEN 30 AND 40", 1},
		{"SELECT * FROM Customers WHERE Age NOT BETWEEN 30 AND 40", 2},
		{"SELECT * FROM Sales WHERE [Product Name] LIKE 'B%'", 2},
		{"SELECT * FROM Sales WHERE [Product Name] LIKE '_V%'", 2},
		{"SELECT * FROM Sales WHERE [Product Name] NOT LIKE 'B%'", 4},
		{"SELECT * FROM Customers WHERE NOT (Age > 30)", 1},
	}
	for _, c := range cases {
		rs := mustQuery(t, e, c.sql)
		if rs.Len() != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, rs.Len(), c.want)
		}
	}
}

func TestNullComparisonFiltersOut(t *testing.T) {
	e := newTestEngine(t)
	// NULL = NULL is NULL, which is not true, so customer 3 is excluded.
	rs := mustQuery(t, e, "SELECT * FROM Customers WHERE [Hair Color] = [Hair Color]")
	if rs.Len() != 2 {
		t.Errorf("NULL equality rows = %d want 2", rs.Len())
	}
}

func TestFromLessSelect(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT 1 + 2 AS three, 'x' AS s")
	if rs.Len() != 1 || rs.Row(0)[0] != int64(3) || rs.Row(0)[1] != "x" {
		t.Errorf("scalar select = %v", rs.Rows())
	}
}

func TestInsertSelect(t *testing.T) {
	e := newTestEngine(t)
	mustQuery(t, e, "CREATE TABLE Adults ([Customer ID] LONG, Age DOUBLE)")
	rs := mustQuery(t, e, "INSERT INTO Adults SELECT [Customer ID], Age FROM Customers WHERE Age >= 30")
	if rs.Row(0)[0] != int64(2) {
		t.Errorf("affected = %v", rs.Row(0))
	}
	got := mustQuery(t, e, "SELECT COUNT(*) FROM Adults")
	if got.Row(0)[0] != int64(2) {
		t.Errorf("inserted = %v", got.Row(0))
	}
}

func TestInsertPartialColumns(t *testing.T) {
	e := newTestEngine(t)
	mustQuery(t, e, "INSERT INTO Customers ([Customer ID], Gender) VALUES (9, 'Male')")
	rs := mustQuery(t, e, "SELECT Age FROM Customers WHERE [Customer ID] = 9")
	if rs.Len() != 1 || rs.Row(0)[0] != nil {
		t.Errorf("missing columns must be NULL: %v", rs.Rows())
	}
}

func TestDeleteWhere(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "DELETE FROM Sales WHERE [Product Type] = 'Electronic'")
	if rs.Row(0)[0] != int64(3) {
		t.Errorf("deleted = %v", rs.Row(0))
	}
	left := mustQuery(t, e, "SELECT COUNT(*) FROM Sales")
	if left.Row(0)[0] != int64(3) {
		t.Errorf("remaining = %v", left.Row(0))
	}
	// Unconditional delete truncates.
	rs = mustQuery(t, e, "DELETE FROM Sales")
	if rs.Row(0)[0] != int64(3) {
		t.Errorf("truncate affected = %v", rs.Row(0))
	}
}

func TestUpdate(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "UPDATE Customers SET Age = Age + 1 WHERE Gender = 'Male'")
	if rs.Row(0)[0] != int64(2) {
		t.Errorf("updated = %v", rs.Row(0))
	}
	got := mustQuery(t, e, "SELECT Age FROM Customers WHERE [Customer ID] = 1")
	if got.Row(0)[0] != 36.0 {
		t.Errorf("age after update = %v", got.Row(0))
	}
}

func TestDropTable(t *testing.T) {
	e := newTestEngine(t)
	mustQuery(t, e, "DROP TABLE Cars")
	if _, err := e.Exec("SELECT * FROM Cars"); err == nil {
		t.Error("select from dropped table must fail")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := newTestEngine(t)
	_, err := e.Exec("SELECT CustID FROM Sales s JOIN Cars k ON s.CustID = k.CustID")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous ref error = %v", err)
	}
}

func TestUnknownColumnAndTable(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Exec("SELECT nope FROM Customers"); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := e.Exec("SELECT * FROM NoSuchTable"); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := e.Exec("SELECT x.* FROM Customers c"); err == nil {
		t.Error("unknown qualifier must fail")
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT 1 / 0")
	if rs.Row(0)[0] != nil {
		t.Errorf("1/0 = %v, want NULL", rs.Row(0)[0])
	}
}

func TestIntegerArithmeticStaysIntegral(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT 2 + 3, 2 * 3, 7 - 4, 7 / 2")
	r := rs.Row(0)
	if r[0] != int64(5) || r[1] != int64(6) || r[2] != int64(3) {
		t.Errorf("int arith = %v", r)
	}
	if r[3] != 3.5 {
		t.Errorf("division promotes to double: %v", r[3])
	}
}

func TestScalarFunctions(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT LEN('abc'), LOWER('AbC'), TRIM(' x '), SUBSTRING('hello', 2, 3),
		ABS(-4), ROUND(2.567, 2), FLOOR(2.9), CEILING(2.1), SQRT(9.0),
		COALESCE(NULL, NULL, 7), IIF(1 < 2, 'yes', 'no')`)
	r := rs.Row(0)
	want := rowset.Row{int64(3), "abc", "x", "ell", int64(4), 2.57, 2.0, 3.0, 3.0, int64(7), "yes"}
	for i, w := range want {
		if r[i] != w {
			t.Errorf("func %d = %#v want %#v", i, r[i], w)
		}
	}
	if _, err := e.Exec("SELECT NOSUCHFUNC(1)"); err == nil {
		t.Error("unknown function must fail")
	}
}

func TestStdevVar(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT VAR(Age), STDEV(Age) FROM Customers")
	r := rs.Row(0)
	// Ages 35, 28, 52: mean 38.333..., sample var = ((35-m)^2+(28-m)^2+(52-m)^2)/2
	v := r[0].(float64)
	if v < 151 || v > 153 {
		t.Errorf("VAR = %v", v)
	}
	sd := r[1].(float64)
	if sd < 12.2 || sd > 12.4 {
		t.Errorf("STDEV = %v", sd)
	}
}

func TestAggregateInExpression(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT MAX(Age) - MIN(Age) AS spread FROM Customers")
	if rs.Row(0)[0] != 24.0 {
		t.Errorf("spread = %v", rs.Row(0))
	}
}
