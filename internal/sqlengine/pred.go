package sqlengine

// Predicate compilation for the vectorized filter. A restricted WHERE grammar
// — comparisons between a column and a literal, IS [NOT] NULL, BETWEEN and IN
// over literals, and AND/OR/NOT combinations of those — compiles to a closure
// tree that evaluates three-valued logic directly over source rows: no Env,
// no per-row name resolution, and no error paths (the compiler only admits
// forms whose evaluation cannot fail: comparisons go through rowset.Compare,
// which is total, and the logical connectives only ever see BOOL or NULL
// operands). Anything outside the grammar falls back to Eval, so the two
// paths agree row-for-row; the three-way differential oracle enforces parity.

import "repro/internal/rowset"

// tv is a three-valued truth value.
type tv int8

const (
	tvFalse tv = iota
	tvTrue
	tvNull
)

// pred3 evaluates one predicate node over a row in three-valued logic.
type pred3 func(r rowset.Row) tv

// compilePred compiles cond against schema into a pass/fail row predicate
// (a row passes iff the condition evaluates to exactly TRUE, matching
// Truthy). ok=false means the condition is outside the compilable grammar.
func compilePred(cond Expr, schema *rowset.Schema) (func(r rowset.Row) bool, bool) {
	p, ok := compile3(cond, schema)
	if !ok {
		return nil, false
	}
	return func(r rowset.Row) bool { return p(r) == tvTrue }, true
}

func compile3(e Expr, schema *rowset.Schema) (pred3, bool) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case OpAnd:
			l, ok1 := compile3(x.L, schema)
			r, ok2 := compile3(x.R, schema)
			if !ok1 || !ok2 {
				return nil, false
			}
			// AND is TRUE iff both are; FALSE dominates NULL. Short-circuit
			// order matches evalLogical (harmless here — compiled nodes
			// cannot error — but keeps the code shapes parallel).
			return func(row rowset.Row) tv {
				lv := l(row)
				if lv == tvFalse {
					return tvFalse
				}
				rv := r(row)
				if rv == tvFalse {
					return tvFalse
				}
				if lv == tvNull || rv == tvNull {
					return tvNull
				}
				return tvTrue
			}, true
		case OpOr:
			l, ok1 := compile3(x.L, schema)
			r, ok2 := compile3(x.R, schema)
			if !ok1 || !ok2 {
				return nil, false
			}
			return func(row rowset.Row) tv {
				lv := l(row)
				if lv == tvTrue {
					return tvTrue
				}
				rv := r(row)
				if rv == tvTrue {
					return tvTrue
				}
				if lv == tvNull || rv == tvNull {
					return tvNull
				}
				return tvFalse
			}, true
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return compileCmp(x, schema)
		}
		return nil, false
	case *Unary:
		if x.Op != "NOT" {
			return nil, false
		}
		p, ok := compile3(x.X, schema)
		if !ok {
			return nil, false
		}
		return func(row rowset.Row) tv {
			switch p(row) {
			case tvTrue:
				return tvFalse
			case tvFalse:
				return tvTrue
			}
			return tvNull
		}, true
	case *IsNull:
		ord, ok := compileColumn(x.X, schema)
		if !ok {
			return nil, false
		}
		neg := x.Negate
		return func(row rowset.Row) tv {
			if (row[ord] == nil) != neg {
				return tvTrue
			}
			return tvFalse
		}, true
	case *Between:
		ord, ok := compileColumn(x.X, schema)
		if !ok {
			return nil, false
		}
		lo, ok1 := literalValue(x.Lo)
		hi, ok2 := literalValue(x.Hi)
		if !ok1 || !ok2 {
			return nil, false
		}
		if lo == nil || hi == nil {
			return constNull, true // any NULL operand makes BETWEEN NULL
		}
		neg := x.Negate
		return func(row rowset.Row) tv {
			v := row[ord]
			if v == nil {
				return tvNull
			}
			res := rowset.Compare(v, lo) >= 0 && rowset.Compare(v, hi) <= 0
			if res != neg {
				return tvTrue
			}
			return tvFalse
		}, true
	case *In:
		if x.Subquery != nil {
			return nil, false
		}
		ord, ok := compileColumn(x.X, schema)
		if !ok {
			return nil, false
		}
		vals := make([]rowset.Value, 0, len(x.List))
		sawNull := false
		for _, item := range x.List {
			v, ok := literalValue(item)
			if !ok {
				return nil, false
			}
			if v == nil {
				sawNull = true
				continue
			}
			vals = append(vals, v)
		}
		neg := x.Negate
		return func(row rowset.Row) tv {
			v := row[ord]
			if v == nil {
				return tvNull
			}
			for _, lv := range vals {
				if rowset.Compare(v, lv) == 0 {
					if neg {
						return tvFalse
					}
					return tvTrue
				}
			}
			if sawNull {
				return tvNull // no match, but NULL in the list: unknown
			}
			if neg {
				return tvTrue
			}
			return tvFalse
		}, true
	}
	return nil, false
}

func constNull(rowset.Row) tv { return tvNull }

// compileCmp compiles `column op literal` (either operand order; the operator
// flips when the literal is on the left).
func compileCmp(b *Binary, schema *rowset.Schema) (pred3, bool) {
	op := b.Op
	colExpr, litExpr := b.L, b.R
	if _, isLit := b.L.(*Literal); isLit {
		colExpr, litExpr = b.R, b.L
		switch op {
		case OpLt:
			op = OpGt
		case OpLe:
			op = OpGe
		case OpGt:
			op = OpLt
		case OpGe:
			op = OpLe
		}
	}
	ord, ok := compileColumn(colExpr, schema)
	if !ok {
		return nil, false
	}
	lit, ok := literalValue(litExpr)
	if !ok {
		return nil, false
	}
	if lit == nil {
		return constNull, true // comparison with NULL is always NULL
	}
	return func(row rowset.Row) tv {
		v := row[ord]
		if v == nil {
			return tvNull
		}
		c := rowset.Compare(v, lit)
		var res bool
		switch op {
		case OpEq:
			res = c == 0
		case OpNe:
			res = c != 0
		case OpLt:
			res = c < 0
		case OpLe:
			res = c <= 0
		case OpGt:
			res = c > 0
		default: // OpGe
			res = c >= 0
		}
		if res {
			return tvTrue
		}
		return tvFalse
	}, true
}

// compileColumn resolves a ColumnRef to its source ordinal. Unresolvable
// references do not compile (Eval must surface the resolution error).
func compileColumn(e Expr, schema *rowset.Schema) (int, bool) {
	cr, ok := e.(*ColumnRef)
	if !ok {
		return 0, false
	}
	ord, err := ResolveColumn(schema, cr.Qualifier, cr.Name)
	if err != nil {
		return 0, false
	}
	return ord, true
}

// literalValue extracts a literal operand, normalized the same way Eval's
// operand would arrive at a comparison.
func literalValue(e Expr) (rowset.Value, bool) {
	l, ok := e.(*Literal)
	if !ok {
		return nil, false
	}
	return rowset.Normalize(l.Val), true
}
