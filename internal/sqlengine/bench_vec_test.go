package sqlengine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

// benchTable builds one table shaped like the dmbench warehouse scan target:
// an integer key, a low-cardinality group column, and a numeric measure.
func benchTable(b *testing.B, n int) *Engine {
	b.Helper()
	e := NewEngine(storage.NewDatabase())
	if _, err := e.Exec("CREATE TABLE T (id LONG, g TEXT, age DOUBLE)"); err != nil {
		b.Fatal(err)
	}
	var ins strings.Builder
	ins.WriteString("INSERT INTO T VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, 'g%d', %d)", i, i%2, 18+i%60)
	}
	if _, err := e.Exec(ins.String()); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkScanFilterOrderBy is the sql-scan workload shape: filter plus sort,
// so it exercises the batch pipeline but not the morsel path (ORDER BY).
func BenchmarkScanFilterOrderBy(b *testing.B) {
	e := benchTable(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT id, g, age FROM T WHERE age > 30 ORDER BY age"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanWideFilter is the scan-wide-filter workload shape: conjunctive
// predicate, no sort — morsel-eligible on multicore hosts.
func BenchmarkScanWideFilter(b *testing.B) {
	e := benchTable(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT id, g, age FROM T WHERE age > 21 AND age < 60 AND g = 'g1' AND id > 0"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByAgg is the group-by-agg workload shape: mergeable
// aggregates over a low-cardinality key.
func BenchmarkGroupByAgg(b *testing.B) {
	e := benchTable(b, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT g, COUNT(*), AVG(age), MIN(age), MAX(age) FROM T GROUP BY g"); err != nil {
			b.Fatal(err)
		}
	}
}
