package sqlengine

import (
	"fmt"
	"math"

	"repro/internal/rowset"
)

// aggregate executes a SELECT with GROUP BY and/or aggregate functions.
// Mergeable aggregates (COUNT/SUM/AVG/MIN/MAX without DISTINCT) stream: one
// pass folds each row into per-group partial states and no input row is
// retained beyond each group's representative. Two-pass (STDEV/VAR) and
// DISTINCT aggregates fall back to the materializing path, where the group
// map holds every input row until the stream ends and computeAggregate
// re-scans the group per call site.
func (e *Engine) aggregate(sel *SelectStmt, src rowset.Iterator) (*rowset.Rowset, error) {
	aggs, err := statementAggs(sel)
	if err != nil {
		return nil, err
	}
	srcSchema := src.Schema()
	if aggsMergeable(aggs) {
		acc := newAggAccum(sel, aggs, srcSchema)
		if err := e.drainInto(src, acc.observe); err != nil {
			return nil, err
		}
		return finishAggregate(sel, srcSchema, acc.finish(sel, srcSchema))
	}

	type group struct {
		first rowset.Row
		rows  []rowset.Row
	}
	env := &Env{Schema: srcSchema}
	groups := make(map[string]*group)
	var keyOrder []string
	var keyBuf []byte
	accum := func(r rowset.Row) error {
		env.Row = r
		keyBuf = keyBuf[:0]
		for _, g := range sel.GroupBy {
			v, err := Eval(g, env)
			if err != nil {
				return err
			}
			keyBuf = rowset.AppendKey(keyBuf, v)
			keyBuf = append(keyBuf, '|')
		}
		grp, ok := groups[string(keyBuf)]
		if !ok {
			grp = &group{first: r}
			k := string(keyBuf)
			groups[k] = grp
			keyOrder = append(keyOrder, k)
		}
		grp.rows = append(grp.rows, r)
		return nil
	}
	if err := e.drainInto(src, accum); err != nil {
		return nil, err
	}
	// Aggregation without GROUP BY over empty input still yields one group.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		nulls := make(rowset.Row, srcSchema.Len())
		groups[""] = &group{first: nulls}
		keyOrder = append(keyOrder, "")
	}

	finished := make([]finishedGroup, 0, len(keyOrder))
	for _, k := range keyOrder {
		grp := groups[k]
		vals := make(map[*FuncCall]rowset.Value, len(aggs))
		for _, f := range aggs {
			v, err := computeAggregate(f, grp.rows, srcSchema)
			if err != nil {
				return nil, err
			}
			vals[f] = v
		}
		finished = append(finished, finishedGroup{first: grp.first, vals: vals})
	}
	return finishAggregate(sel, srcSchema, finished)
}

// drainInto pulls src to exhaustion, feeding every row to fn. Batch-capable
// sources drain one interface call per batch (counted into the engine's batch
// metric); everything else walks row-at-a-time.
func (e *Engine) drainInto(src rowset.Iterator, fn func(r rowset.Row) error) error {
	if bc, ok := src.(rowset.BatchCursor); ok {
		var batches int64
		for {
			b, err := bc.NextBatch()
			if err != nil {
				return err
			}
			if b.Empty() {
				break
			}
			batches++
			n := b.Len()
			for i := 0; i < n; i++ {
				if err := fn(b.Row(i)); err != nil {
					return err
				}
			}
		}
		e.batches.Add(batches)
		return nil
	}
	for {
		r, err := src.Next()
		if err != nil {
			return err
		}
		if r == nil {
			return nil
		}
		if err := fn(r); err != nil {
			return err
		}
	}
}

// statementAggs collects every aggregate call site in the statement (items,
// HAVING, ORDER BY). Duplicate textual calls stay distinct pointers, so each
// site gets its own computed value.
func statementAggs(sel *SelectStmt) ([]*FuncCall, error) {
	var aggs []*FuncCall
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("sqlengine: SELECT * cannot be combined with aggregation")
		}
		collectAggs(it.Expr, &aggs)
	}
	if sel.Having != nil {
		collectAggs(sel.Having, &aggs)
	}
	for _, o := range sel.OrderBy {
		collectAggs(o.Expr, &aggs)
	}
	return aggs, nil
}

// finishedGroup is one group ready for the aggregation tail: its first input
// row (the representative non-aggregate expressions evaluate against) and the
// computed value of every aggregate call site. Both the sequential and the
// morsel-parallel paths produce these, so HAVING, projection, ORDER BY, and
// schema inference run through exactly one implementation.
type finishedGroup struct {
	first rowset.Row
	vals  map[*FuncCall]rowset.Value
}

// finishAggregate applies HAVING, evaluates the projection with aggregates
// substituted, sorts by ORDER BY, and materializes the result. Groups must
// arrive in first-seen input order.
func finishAggregate(sel *SelectStmt, srcSchema *rowset.Schema, groups []finishedGroup) (*rowset.Rowset, error) {
	names := outputNames(sel.Items)
	var outRows []rowset.Row
	var keyRows []rowset.Row
	for _, grp := range groups {
		genv := &Env{Schema: srcSchema, Row: grp.first}
		if sel.Having != nil {
			hv, err := Eval(substituteAggs(sel.Having, grp.vals), genv)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(hv)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out := make(rowset.Row, len(sel.Items))
		for i, it := range sel.Items {
			v, err := Eval(substituteAggs(it.Expr, grp.vals), genv)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		subOrder := make([]OrderItem, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			subOrder[i] = OrderItem{Expr: substituteAggs(o.Expr, grp.vals), Desc: o.Desc}
		}
		keys, err := orderKeys(subOrder, sel.Items, names, out, genv)
		if err != nil {
			return nil, err
		}
		outRows = append(outRows, out)
		keyRows = append(keyRows, keys)
	}
	if len(sel.OrderBy) > 0 {
		rowset.SortByKeys(outRows, keyRows, descFlags(sel.OrderBy))
	}

	schema, err := outputSchema(sel.Items, names, srcSchema, outRows)
	if err != nil {
		return nil, err
	}
	return rowset.FromRows(schema, outRows)
}

func collectAggs(e Expr, out *[]*FuncCall) {
	switch x := e.(type) {
	case *FuncCall:
		if aggregateFuncs[x.Name] {
			*out = append(*out, x)
			return // aggregates cannot nest
		}
		for _, a := range x.Args {
			collectAggs(a, out)
		}
	case *Binary:
		collectAggs(x.L, out)
		collectAggs(x.R, out)
	case *Unary:
		collectAggs(x.X, out)
	case *IsNull:
		collectAggs(x.X, out)
	case *Between:
		collectAggs(x.X, out)
		collectAggs(x.Lo, out)
		collectAggs(x.Hi, out)
	case *In:
		collectAggs(x.X, out)
		for _, i := range x.List {
			collectAggs(i, out)
		}
	}
}

// substituteAggs returns a copy of e with aggregate calls replaced by their
// computed values. Non-aggregate subtrees are shared, not copied.
func substituteAggs(e Expr, vals map[*FuncCall]rowset.Value) Expr {
	switch x := e.(type) {
	case *FuncCall:
		if v, ok := vals[x]; ok {
			return &Literal{Val: v}
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteAggs(a, vals)
		}
		return &FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct, Pos: x.Pos}
	case *Binary:
		return &Binary{Op: x.Op, L: substituteAggs(x.L, vals), R: substituteAggs(x.R, vals)}
	case *Unary:
		return &Unary{Op: x.Op, X: substituteAggs(x.X, vals)}
	case *IsNull:
		return &IsNull{X: substituteAggs(x.X, vals), Negate: x.Negate}
	case *Between:
		return &Between{
			X: substituteAggs(x.X, vals), Lo: substituteAggs(x.Lo, vals),
			Hi: substituteAggs(x.Hi, vals), Negate: x.Negate,
		}
	case *In:
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			list[i] = substituteAggs(it, vals)
		}
		return &In{X: substituteAggs(x.X, vals), List: list, Negate: x.Negate}
	}
	return e
}

func computeAggregate(f *FuncCall, rows []rowset.Row, schema *rowset.Schema) (rowset.Value, error) {
	if f.Name == "COUNT" && f.Star {
		return int64(len(rows)), nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("sqlengine: %s takes exactly one argument", f.Name)
	}
	env := &Env{Schema: schema}
	var vals []rowset.Value
	seen := make(map[string]bool)
	for _, r := range rows {
		env.Row = r
		v, err := Eval(f.Args[0], env)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		if f.Distinct {
			k := rowset.Key(v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch f.Name {
	case "COUNT":
		return int64(len(vals)), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := rowset.Compare(v, best)
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG", "STDEV", "VAR":
		if len(vals) == 0 {
			return nil, nil
		}
		allInt := true
		var sum float64
		var isum int64
		for _, v := range vals {
			fv, ok := rowset.ToFloat(v)
			if !ok {
				return nil, fmt.Errorf("sqlengine: %s requires numeric values, got %s", f.Name, rowset.TypeOf(v))
			}
			sum += fv
			if iv, ok := v.(int64); ok {
				isum += iv
			} else {
				allInt = false
			}
		}
		switch f.Name {
		case "SUM":
			if allInt {
				return isum, nil
			}
			return sum, nil
		case "AVG":
			return sum / float64(len(vals)), nil
		default: // STDEV, VAR: sample statistics
			if len(vals) < 2 {
				return nil, nil
			}
			mean := sum / float64(len(vals))
			var ss float64
			for _, v := range vals {
				fv, _ := rowset.ToFloat(v)
				d := fv - mean
				ss += d * d
			}
			variance := ss / float64(len(vals)-1)
			if f.Name == "VAR" {
				return variance, nil
			}
			return math.Sqrt(variance), nil
		}
	}
	return nil, fmt.Errorf("sqlengine: unknown aggregate %s", f.Name)
}
