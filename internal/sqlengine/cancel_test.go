package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rowset"
	"repro/internal/storage"
)

// newBigEngine builds an engine with a single table of n rows, big enough
// that a self cross join produces n*n candidate rows.
func newBigEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e := NewEngine(storage.NewDatabase())
	if _, err := e.Exec("CREATE TABLE Big (id LONG, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("INSERT INTO Big VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 'r%d')", i, i)
	}
	if _, err := e.Exec(b.String()); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestExecContextPreCancelledAbortsScan is the regression test for the
// uncancellable-scan bug: before the cancellation poll existed, a SELECT
// under an already-cancelled context ran the whole cross join to completion
// and returned its rowset with a nil error.
func TestExecContextPreCancelledAbortsScan(t *testing.T) {
	e := newBigEngine(t, 200)
	const q = "SELECT COUNT(*) FROM Big AS a, Big AS b WHERE a.id < b.id"

	// Sanity: the statement itself is valid and produces the expected count,
	// so the error below can only come from cancellation.
	rs, err := e.ExecContext(context.Background(), q)
	if err != nil {
		t.Fatalf("uncancelled run: %v", err)
	}
	if got := rs.Row(0)[0]; got != int64(200*199/2) {
		t.Fatalf("count = %v", got)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelCursorStopsMidStream exercises the poll point directly: cancel
// after some rows have streamed and assert the cursor surfaces the
// cancellation within one poll interval instead of draining its source.
func TestCancelCursorStopsMidStream(t *testing.T) {
	e := newBigEngine(t, 300)
	rs := mustQuery(t, e, "SELECT * FROM Big")
	ctx, cancel := context.WithCancel(context.Background())
	c := &cancelCursor{src: rs.Cursor(), ctx: ctx, done: ctx.Done()}
	defer c.Close() //nolint:errcheck

	const before = 10
	for i := 0; i < before; i++ {
		if r, err := c.Next(); err != nil || r == nil {
			t.Fatalf("row %d: r=%v err=%v", i, r, err)
		}
	}
	cancel()
	// The next poll lands within pollEvery rows of the cancellation.
	for i := 0; i <= pollEvery; i++ {
		r, err := c.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			return
		}
		if r == nil {
			t.Fatal("source drained before the cancellation was observed")
		}
	}
	t.Fatalf("no cancellation surfaced within %d rows", pollEvery+1)
}

// TestCancelCursorBatchLatency is the batching regression test for
// cancellation latency: with a batch-capable source yielding
// DefaultBatchSize-row batches, the cancel cursor must still observe a
// cancellation within pollEvery rows — it doles upstream batches out in
// sub-batch windows and polls per window, instead of letting a 1024-row batch
// stretch the poll interval 16×.
func TestCancelCursorBatchLatency(t *testing.T) {
	e := newBigEngine(t, 4*int(rowset.DefaultBatchSize))
	rs := mustQuery(t, e, "SELECT * FROM Big")
	ctx, cancel := context.WithCancel(context.Background())
	c := &cancelCursor{src: rs.Cursor(), ctx: ctx, done: ctx.Done()}
	defer c.Close() //nolint:errcheck

	// First pull: the upstream batch is DefaultBatchSize rows, but the window
	// handed downstream must not exceed the poll stride.
	b, err := c.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() == 0 || b.Len() > pollEvery {
		t.Fatalf("window = %d rows, want 1..%d", b.Len(), pollEvery)
	}
	cancel()
	// The very next pull starts with a poll, so at most one more window —
	// pollEvery rows — can flow after the cancellation.
	rows := 0
	for i := 0; i < 3; i++ {
		b, err = c.NextBatch()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if rows > pollEvery {
				t.Fatalf("%d rows flowed after cancellation, want <= %d", rows, pollEvery)
			}
			return
		}
		rows += b.Len()
	}
	t.Fatalf("no cancellation surfaced after %d rows", rows)
}

// TestCancelCursorBatchPreCancelled: a pre-cancelled context aborts the batch
// path before any row flows.
func TestCancelCursorBatchPreCancelled(t *testing.T) {
	e := newBigEngine(t, 100)
	rs := mustQuery(t, e, "SELECT * FROM Big")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &cancelCursor{src: rs.Cursor(), ctx: ctx, done: ctx.Done()}
	defer c.Close() //nolint:errcheck
	if b, err := c.NextBatch(); !errors.Is(err, context.Canceled) || b.Len() != 0 {
		t.Fatalf("NextBatch = %d rows, err %v; want 0 rows and context.Canceled", b.Len(), err)
	}
}
