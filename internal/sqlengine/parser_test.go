package sqlengine

import (
	"fmt"
	"testing"

	"repro/internal/lex"
	"repro/internal/rowset"
)

func parseSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", src, st)
	}
	return sel
}

func TestParseSelectBasic(t *testing.T) {
	sel := parseSelect(t, "SELECT [Customer ID], Gender, Age FROM Customers ORDER BY [Customer ID]")
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	cr := sel.Items[0].Expr.(*ColumnRef)
	if cr.Name != "Customer ID" {
		t.Errorf("item 0 = %q", cr.Name)
	}
	if len(sel.From) != 1 || sel.From[0].Name != "Customers" {
		t.Errorf("from = %+v", sel.From)
	}
	if len(sel.OrderBy) != 1 || sel.OrderBy[0].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
}

func TestParseSelectStarAndQualifiedStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t")
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "" {
		t.Errorf("star item = %+v", sel.Items[0])
	}
	sel = parseSelect(t, "SELECT c.*, s.Amount FROM c JOIN s ON c.id = s.id")
	if !sel.Items[0].Star || sel.Items[0].Qualifier != "c" {
		t.Errorf("qualified star = %+v", sel.Items[0])
	}
	cr := sel.Items[1].Expr.(*ColumnRef)
	if cr.Qualifier != "s" || cr.Name != "Amount" {
		t.Errorf("qualified ref = %+v", cr)
	}
}

func TestParseAliases(t *testing.T) {
	sel := parseSelect(t, "SELECT Age AS [Years], Gender Sex FROM Customers c")
	if sel.Items[0].Alias != "Years" || sel.Items[1].Alias != "Sex" {
		t.Errorf("aliases = %q %q", sel.Items[0].Alias, sel.Items[1].Alias)
	}
	if sel.From[0].Alias != "c" {
		t.Errorf("table alias = %q", sel.From[0].Alias)
	}
}

func TestParseJoins(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM a LEFT JOIN b ON a.x = b.y INNER JOIN c ON c.z = a.x, d`)
	if len(sel.From) != 4 {
		t.Fatalf("from = %d refs", len(sel.From))
	}
	if sel.From[1].Kind != JoinLeft || sel.From[2].Kind != JoinInner || sel.From[3].Kind != JoinCross {
		t.Errorf("kinds = %v %v %v", sel.From[1].Kind, sel.From[2].Kind, sel.From[3].Kind)
	}
	if sel.From[1].On == nil || sel.From[2].On == nil {
		t.Error("ON clauses missing")
	}
}

func TestParseWhereGroupHaving(t *testing.T) {
	sel := parseSelect(t, `SELECT Gender, COUNT(*) FROM c WHERE Age > 30 AND Gender <> 'M'
		GROUP BY Gender HAVING COUNT(*) >= 2 ORDER BY 2 DESC`)
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("clauses missing: %+v", sel)
	}
	if !sel.OrderBy[0].Desc {
		t.Error("DESC not parsed")
	}
	f := sel.Items[1].Expr.(*FuncCall)
	if f.Name != "COUNT" || !f.Star {
		t.Errorf("COUNT(*) = %+v", f)
	}
}

func TestParseDistinctTop(t *testing.T) {
	sel := parseSelect(t, "SELECT DISTINCT TOP 5 Gender FROM c")
	if !sel.Distinct || sel.Top != 5 {
		t.Errorf("distinct=%v top=%d", sel.Distinct, sel.Top)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e := mustParseExpr("1 + 2 * 3")
	b := e.(*Binary)
	if b.Op != OpAdd {
		t.Fatalf("top op = %v", b.Op)
	}
	if b.R.(*Binary).Op != OpMul {
		t.Error("* must bind tighter than +")
	}

	e = mustParseExpr("a = 1 OR b = 2 AND c = 3")
	if e.(*Binary).Op != OpOr {
		t.Error("OR must be top-level")
	}
	e = mustParseExpr("NOT a = 1")
	if e.(*Unary).Op != "NOT" {
		t.Error("NOT parse failed")
	}
	e = mustParseExpr("(1 + 2) * 3")
	if e.(*Binary).Op != OpMul {
		t.Error("parens not honored")
	}
}

func TestParseSpecialPredicates(t *testing.T) {
	if _, ok := mustParseExpr("x IS NULL").(*IsNull); !ok {
		t.Error("IS NULL")
	}
	n := mustParseExpr("x IS NOT NULL").(*IsNull)
	if !n.Negate {
		t.Error("IS NOT NULL")
	}
	in := mustParseExpr("x IN (1, 2, 3)").(*In)
	if len(in.List) != 3 || in.Negate {
		t.Errorf("IN = %+v", in)
	}
	nin := mustParseExpr("x NOT IN (1)").(*In)
	if !nin.Negate {
		t.Error("NOT IN")
	}
	bt := mustParseExpr("x BETWEEN 1 AND 10").(*Between)
	if bt.Negate {
		t.Error("BETWEEN")
	}
	nb := mustParseExpr("x NOT BETWEEN 1 AND 10").(*Between)
	if !nb.Negate {
		t.Error("NOT BETWEEN")
	}
	lk := mustParseExpr("x LIKE 'a%'").(*Binary)
	if lk.Op != OpLike {
		t.Error("LIKE")
	}
}

func TestParseLiterals(t *testing.T) {
	if v := mustParseExpr("42").(*Literal).Val; v != int64(42) {
		t.Errorf("int literal = %#v", v)
	}
	if v := mustParseExpr("4.5").(*Literal).Val; v != 4.5 {
		t.Errorf("float literal = %#v", v)
	}
	if v := mustParseExpr("-7").(*Literal).Val; v != int64(-7) {
		t.Errorf("negative literal = %#v", v)
	}
	if v := mustParseExpr("'it''s'").(*Literal).Val; v != "it's" {
		t.Errorf("string literal = %#v", v)
	}
	if v := mustParseExpr("NULL").(*Literal).Val; v != nil {
		t.Errorf("NULL literal = %#v", v)
	}
	if v := mustParseExpr("TRUE").(*Literal).Val; v != true {
		t.Errorf("TRUE literal = %#v", v)
	}
}

func TestParseDottedRef(t *testing.T) {
	cr := mustParseExpr("[Age Prediction].[Product Purchases].[Product Name]").(*ColumnRef)
	if cr.Qualifier != "Age Prediction.Product Purchases" || cr.Name != "Product Name" {
		t.Errorf("dotted ref = %+v", cr)
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE Customers ([Customer ID] LONG, Gender TEXT, Age DOUBLE, Active BOOL)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Name != "Customers" || len(ct.Columns) != 4 {
		t.Fatalf("create = %+v", ct)
	}
	if ct.Columns[0].Type != rowset.TypeLong || ct.Columns[2].Type != rowset.TypeDouble {
		t.Errorf("types = %+v", ct.Columns)
	}
	if _, err := Parse("CREATE TABLE t (x BLOB)"); err == nil {
		t.Error("unknown type must error")
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	st, err = Parse("INSERT INTO t SELECT * FROM u")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*InsertStmt).Query == nil {
		t.Error("insert-select missing query")
	}
	if _, err := Parse("INSERT INTO t SET x = 1"); err == nil {
		t.Error("bad insert must error")
	}
}

func TestParseDeleteUpdateDrop(t *testing.T) {
	st, err := Parse("DELETE FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteStmt).Where == nil {
		t.Error("where missing")
	}
	st, err = Parse("UPDATE t SET a = 1, b = b + 1 WHERE c IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	upd := st.(*UpdateStmt)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update = %+v", upd)
	}
	st, err = Parse("DROP TABLE t")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DropTableStmt).Name != "t" {
		t.Error("drop name")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT FROM t",
		"SELECT 1 FROM",
		"SELECT 1 extra_stuff_without_from FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP BY",
		"SELECT TOP x a FROM t",
		"SELECT a FROM t JOIN u",
		"INSERT INTO",
		"CREATE TABLE t",
		"SELECT a FROM t; SELECT b FROM u", // two statements in one Parse
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCountDistinct(t *testing.T) {
	sel := parseSelect(t, "SELECT COUNT(DISTINCT Gender) FROM c")
	f := sel.Items[0].Expr.(*FuncCall)
	if !f.Distinct || len(f.Args) != 1 {
		t.Errorf("COUNT(DISTINCT) = %+v", f)
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Rendering an expression and reparsing it yields the same rendering.
	srcs := []string{
		"a = 1 AND b < 2.5",
		"x IS NOT NULL OR y IN (1, 2)",
		"[col name] LIKE 'a%'",
		"NOT (a BETWEEN 1 AND 2)",
		"UPPER(name) = 'X'",
	}
	for _, src := range srcs {
		e1 := mustParseExpr(src)
		e2 := mustParseExpr(e1.String())
		if e1.String() != e2.String() {
			t.Errorf("round trip %q: %q != %q", src, e1.String(), e2.String())
		}
	}
}

// mustParseExpr builds an expression from source text, panicking on parse
// failure; shared by the parser and eval tests.
func mustParseExpr(src string) Expr {
	s := lex.NewScanner(src)
	e, err := ParseExpr(s)
	if err != nil {
		panic(fmt.Sprintf("mustParseExpr(%q): %v", src, err))
	}
	return e
}
