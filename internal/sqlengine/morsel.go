package sqlengine

// Morsel-driven parallel execution for order-insensitive single-table SELECTs.
//
// The table snapshot is split into fixed-size contiguous row ranges (morsels,
// see storage.MorselRanges); a bounded worker pool runs the scan → filter →
// project (or partial-aggregate) pipeline per morsel, and the sink merges the
// per-morsel results IN MORSEL ORDER. Because morsels partition the snapshot
// contiguously, morsel-order merge reproduces the sequential scan's row order
// exactly: projected rows come out byte-identical, group first-seen order and
// MIN/MAX tie winners match, and par.ForEachCtx's lowest-index-error rule
// surfaces the same error a sequential left-to-right scan would have hit
// first.
//
// Which statements opt in (everything else runs the sequential pipeline):
//
//   - single FROM entry resolving to a base table (views materialize anyway);
//   - no index pushdown chosen (an index probe is already sub-linear — fanning
//     out a full scan would be a de-optimization);
//   - non-aggregating statements must have no ORDER BY and no DISTINCT: sort
//     would re-materialize anyway, and DISTINCT's first-occurrence dedup state
//     does not merge by morsel;
//   - aggregating statements must use only mergeable aggregates — COUNT, SUM,
//     AVG, MIN, MAX without DISTINCT. STDEV/VAR are two-pass over the full
//     group and DISTINCT aggregates need global dedup state, so both stay
//     sequential. (TOP and ORDER BY are fine here: the aggregation tail
//     materializes groups before either applies.)
//
// Floating-point caveat: merging per-morsel partial sums reassociates FP
// addition, so SUM/AVG over doubles can differ from the sequential result in
// the last ulp. Integer sums are exact (isum), and the differential oracle's
// fixtures use double values that are exact in binary FP, so the three-way
// comparison stays byte-identical.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rowset"
	"repro/internal/storage"
)

// VecConfig tunes the vectorized/morsel execution paths. The zero value means
// defaults: GOMAXPROCS workers, storage.DefaultMorselSize morsels, and
// parallelism only for tables past the size threshold.
type VecConfig struct {
	// Workers bounds the scan worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// MorselSize is the scan range handed to one worker at a time; <= 0 means
	// storage.DefaultMorselSize.
	MorselSize int
	// Threshold is the minimum table cardinality before a scan fans out;
	// <= 0 means defaultVecThreshold. Below it the fan-out overhead dominates.
	Threshold int
	// Force takes the morsel path regardless of table size and worker count.
	// The differential tests use it to exercise the parallel operators on
	// small fixtures and single-core hosts.
	Force bool
}

// defaultVecThreshold is the table size below which a parallel scan is not
// worth the goroutine fan-out and per-morsel pipeline setup.
const defaultVecThreshold = 4096

func (e *Engine) vecWorkers() int {
	if e.Vec.Workers > 0 {
		return e.Vec.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) vecThreshold() int {
	if e.Vec.Threshold > 0 {
		return e.Vec.Threshold
	}
	return defaultVecThreshold
}

func (e *Engine) vecMorselSize() int {
	if e.Vec.MorselSize > 0 {
		return e.Vec.MorselSize
	}
	return storage.DefaultMorselSize
}

// tryMorsel executes sel on the morsel-parallel path when it is eligible (see
// the file comment). handled=false means the caller must run the regular
// pipeline — including for resolution errors, which the regular path surfaces
// identically.
func (e *Engine) tryMorsel(ctx context.Context, t *obs.Trace, sel *SelectStmt) (*rowset.Rowset, bool, error) {
	if len(sel.From) != 1 {
		return nil, false, nil
	}
	agg := needsAggregate(sel)
	if agg {
		if !mergeableAggregates(sel) {
			return nil, false, nil
		}
	} else if len(sel.OrderBy) > 0 || sel.Distinct {
		return nil, false, nil
	}
	tbl, ok := e.TableSource(sel.From[0].Name)
	if !ok {
		return nil, false, nil
	}
	// Size/worker gate before the scan is resolved: every SELECT passes
	// through here, and small-table statements (point lookups especially)
	// must not pay schema qualification + pushdown planning just for the
	// morsel path to decline.
	workers := e.vecWorkers()
	if !e.Vec.Force && (tbl.Len() < e.vecThreshold() || workers <= 1) {
		return nil, false, nil
	}
	cs, err := e.resolveScan(sel.From[0])
	if err != nil {
		return nil, false, nil
	}
	residual := planPushdown(sel.Where, []*compiledScan{cs})
	if cs.pushed != nil {
		return nil, false, nil
	}
	snap := cs.tbl.Snapshot()
	morsels := storage.MorselRanges(len(snap), e.vecMorselSize())

	// Span shape mirrors the sequential pipeline (scan → filter → group-by or
	// project) so EXPLAIN ANALYZE and DM_TRACE trees stay comparable; the scan
	// label additionally records the fan-out.
	spScan := t.StartSpan("scan", fmt.Sprintf("%s morsels=%d workers=%d", cs.label(), len(morsels), workers))
	spScan.SetRows(int64(len(snap)))
	t.EndSpan(spScan)
	var spF *obs.Span
	if sel.Where != nil {
		spF = t.StartSpan("filter", "")
		t.EndSpan(spF)
	}
	e.parScans.Inc()
	e.morsels.Add(int64(len(morsels)))

	var out *rowset.Rowset
	if agg {
		out, err = e.morselAggregate(ctx, t, sel, cs, residual, snap, morsels, workers, spF)
	} else {
		out, err = e.morselProject(ctx, t, sel, cs, residual, snap, morsels, workers, spF)
	}
	return out, true, err
}

// mergeableAggregates reports whether every aggregate call site in sel
// computes from mergeable partial states. Anything else — including malformed
// statements, which the sequential path must report — keeps the statement
// sequential.
func mergeableAggregates(sel *SelectStmt) bool {
	aggs, err := statementAggs(sel)
	if err != nil {
		return false // SELECT * with aggregation: sequential path reports it
	}
	return aggsMergeable(aggs)
}

// aggsMergeable: COUNT/SUM/AVG/MIN/MAX without DISTINCT, with well-formed
// arguments, compute from mergeable partial states (and, equivalently, in one
// streaming pass without retaining group rows).
func aggsMergeable(aggs []*FuncCall) bool {
	for _, f := range aggs {
		if f.Distinct {
			return false
		}
		switch f.Name {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
		default:
			return false
		}
		if f.Star {
			if f.Name != "COUNT" {
				return false // e.g. SUM(*): sequential path reports it
			}
			continue
		}
		if len(f.Args) != 1 {
			return false
		}
	}
	return true
}

// valuer produces one expression's value for a row. Plain column references
// compile to a direct index (Eval's ColumnRef case is exactly env.Row[ord]
// when resolution succeeds); everything else falls back to Eval. The closure
// owns its Env, so each goroutine must compile its own valuers.
type valuer func(r rowset.Row) (rowset.Value, error)

func compileValuer(e Expr, schema *rowset.Schema) valuer {
	if cr, ok := e.(*ColumnRef); ok {
		if ord, err := ResolveColumn(schema, cr.Qualifier, cr.Name); err == nil {
			return func(r rowset.Row) (rowset.Value, error) { return r[ord], nil }
		}
		// Unresolvable references still compile to the Eval fallback: the
		// error must surface per evaluated row (empty inputs succeed).
	}
	env := &Env{Schema: schema}
	return func(r rowset.Row) (rowset.Value, error) {
		env.Row = r
		return Eval(e, env)
	}
}

// morselPipeline opens the per-morsel operator chain: a slice scan over the
// morsel's snapshot range, plus the residual filter when the statement has a
// WHERE. The chain reuses the exact sequential operators (including their
// batch paths and compiled predicates), so per-morsel semantics are identical
// by construction.
func morselPipeline(cs *compiledScan, residual Expr, snap []rowset.Row, m storage.Morsel, hasWhere bool) rowset.Cursor {
	var cur rowset.Cursor = newSliceCursor(cs.schema, snap[m.Lo:m.Hi])
	if hasWhere {
		cur = newFilterCursor(cur, residual)
	}
	return cur
}

// morselProject is the non-aggregating morsel path: scan → filter → project
// per morsel, merged in morsel order, then TOP truncation.
func (e *Engine) morselProject(ctx context.Context, t *obs.Trace, sel *SelectStmt, cs *compiledScan, residual Expr, snap []rowset.Row, morsels []storage.Morsel, workers int, spF *obs.Span) (*rowset.Rowset, error) {
	items, err := expandStars(sel.Items, cs.schema)
	if err != nil {
		return nil, err
	}
	names := outputNames(items)
	spProj := t.StartSpan("project", "")
	t.EndSpan(spProj)

	outs := make([][]rowset.Row, len(morsels))
	var batches atomic.Int64
	err = par.ForEachCtx(ctx, len(morsels), workers, func(mi int) error {
		cur := morselPipeline(cs, residual, snap, morsels[mi], sel.Where != nil)
		proj, err := newProjectCursor(cur, items, names, nil)
		if err != nil {
			cur.Close() //nolint:errcheck // already failing
			return err
		}
		rows, nb, err := drainRowsCounted(proj)
		if err != nil {
			return err
		}
		outs[mi] = rows
		batches.Add(nb)
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.batches.Add(batches.Load())

	total := 0
	for _, part := range outs {
		total += len(part)
	}
	rows := make([]rowset.Row, 0, total)
	for _, part := range outs {
		rows = append(rows, part...)
	}
	spF.SetRows(int64(total))
	spProj.SetRows(int64(total))
	if sel.Top > 0 && len(rows) > sel.Top {
		rows = rows[:sel.Top]
	}
	schema, err := outputSchema(items, names, cs.schema, rows)
	if err != nil {
		return nil, err
	}
	return rowset.Adopt(schema, rows), nil
}

// aggState is one aggregate call site's mergeable partial state within one
// group: the non-NULL count and running sums for COUNT/SUM/AVG, the running
// winner for MIN/MAX.
type aggState struct {
	n      int64 // non-NULL values observed
	fsum   float64
	isum   int64
	allInt bool
	best   rowset.Value // MIN/MAX candidate; nil until a value arrives
}

// observe folds one evaluated argument value into the state. The caller skips
// COUNT(*) sites entirely (the group's row count covers them) and passes the
// precompiled argument valuer's result here.
func (s *aggState) observe(f *FuncCall, v rowset.Value) error {
	if v == nil {
		return nil
	}
	s.n++
	switch f.Name {
	case "MIN":
		if s.best == nil || rowset.Compare(v, s.best) < 0 {
			s.best = v
		}
	case "MAX":
		if s.best == nil || rowset.Compare(v, s.best) > 0 {
			s.best = v
		}
	case "SUM", "AVG":
		fv, ok := rowset.ToFloat(v)
		if !ok {
			return fmt.Errorf("sqlengine: %s requires numeric values, got %s", f.Name, rowset.TypeOf(v))
		}
		s.fsum += fv
		if iv, ok := v.(int64); ok {
			s.isum += iv
		} else {
			s.allInt = false
		}
	}
	return nil
}

// merge folds o — partial state from a LATER morsel — into s. Keeping the
// earlier side's best on ties reproduces the sequential scan's
// strict-improvement rule for MIN/MAX.
func (s *aggState) merge(o *aggState, f *FuncCall) {
	s.n += o.n
	s.fsum += o.fsum
	s.isum += o.isum
	s.allInt = s.allInt && o.allInt
	if o.best != nil {
		if s.best == nil {
			s.best = o.best
		} else if c := rowset.Compare(o.best, s.best); (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
			s.best = o.best
		}
	}
}

// value finalizes the state, mirroring computeAggregate for the mergeable
// subset: COUNT(*) is the group's row count, empty SUM/AVG/MIN/MAX are NULL,
// and an all-integer SUM stays integral.
func (s *aggState) value(f *FuncCall, groupRows int64) rowset.Value {
	switch f.Name {
	case "COUNT":
		if f.Star {
			return groupRows
		}
		return s.n
	case "MIN", "MAX":
		return s.best
	case "SUM":
		if s.n == 0 {
			return nil
		}
		if s.allInt {
			return s.isum
		}
		return s.fsum
	default: // AVG
		if s.n == 0 {
			return nil
		}
		return s.fsum / float64(s.n)
	}
}

// pgroup is one group's partial aggregation: its first row seen (within the
// morsel; the merge keeps the earliest morsel's), the row count, and one
// aggState per aggregate call site.
type pgroup struct {
	first  rowset.Row
	count  int64
	states []aggState
}

func newPgroup(first rowset.Row, naggs int) *pgroup {
	pg := &pgroup{first: first, states: make([]aggState, naggs)}
	for i := range pg.states {
		pg.states[i].allInt = true
	}
	return pg
}

func (g *pgroup) merge(o *pgroup, aggs []*FuncCall) {
	g.count += o.count
	for i, f := range aggs {
		g.states[i].merge(&o.states[i], f)
	}
}

// aggAccum streams rows into per-group mergeable partial states. Group-key
// expressions and aggregate arguments are compiled once (direct column index
// for plain references), so the per-row loop does no name resolution. Both
// the sequential streaming aggregate and each morsel worker use one; it is
// not goroutine-safe — one accumulator per goroutine.
type aggAccum struct {
	aggs   []*FuncCall
	keyFns []valuer
	argFns []valuer // nil entry = COUNT(*): no per-row work
	groups map[string]*pgroup
	order  []string
	rows   int64
	keyBuf []byte
}

func newAggAccum(sel *SelectStmt, aggs []*FuncCall, schema *rowset.Schema) *aggAccum {
	a := &aggAccum{
		aggs:   aggs,
		keyFns: make([]valuer, len(sel.GroupBy)),
		argFns: make([]valuer, len(aggs)),
		groups: make(map[string]*pgroup),
	}
	for i, g := range sel.GroupBy {
		a.keyFns[i] = compileValuer(g, schema)
	}
	for i, f := range aggs {
		if !f.Star {
			a.argFns[i] = compileValuer(f.Args[0], schema)
		}
	}
	return a
}

func (a *aggAccum) observe(r rowset.Row) error {
	a.keyBuf = a.keyBuf[:0]
	for _, kf := range a.keyFns {
		v, err := kf(r)
		if err != nil {
			return err
		}
		a.keyBuf = rowset.AppendKey(a.keyBuf, v)
		a.keyBuf = append(a.keyBuf, '|')
	}
	grp, ok := a.groups[string(a.keyBuf)]
	if !ok {
		grp = newPgroup(r, len(a.aggs))
		k := string(a.keyBuf)
		a.groups[k] = grp
		a.order = append(a.order, k)
	}
	grp.count++
	a.rows++
	for ai, fn := range a.argFns {
		if fn == nil {
			continue
		}
		v, err := fn(r)
		if err != nil {
			return err
		}
		if err := grp.states[ai].observe(a.aggs[ai], v); err != nil {
			return err
		}
	}
	return nil
}

// finish applies the empty-input rule (aggregation without GROUP BY over zero
// rows yields one all-NULL group) and finalizes every state into the
// finishedGroup form the shared aggregation tail consumes.
func (a *aggAccum) finish(sel *SelectStmt, schema *rowset.Schema) []finishedGroup {
	if len(sel.GroupBy) == 0 && len(a.order) == 0 {
		a.groups[""] = newPgroup(make(rowset.Row, schema.Len()), len(a.aggs))
		a.order = append(a.order, "")
	}
	groups := make([]finishedGroup, 0, len(a.order))
	for _, k := range a.order {
		pg := a.groups[k]
		vals := make(map[*FuncCall]rowset.Value, len(a.aggs))
		for ai, f := range a.aggs {
			vals[f] = pg.states[ai].value(f, pg.count)
		}
		groups = append(groups, finishedGroup{first: pg.first, vals: vals})
	}
	return groups
}

// morselAggregate is the aggregating morsel path: each worker builds partial
// per-group states over its morsels; the sink merges them in morsel order
// (first-seen group order and representative rows therefore match the
// sequential scan), finalizes each aggregate, and hands the groups to the
// shared finishing stage.
func (e *Engine) morselAggregate(ctx context.Context, t *obs.Trace, sel *SelectStmt, cs *compiledScan, residual Expr, snap []rowset.Row, morsels []storage.Morsel, workers int, spF *obs.Span) (*rowset.Rowset, error) {
	aggs, err := statementAggs(sel)
	if err != nil {
		return nil, err // unreachable: mergeableAggregates vetted the statement
	}
	spAgg := t.StartSpan("group-by", "")
	defer t.EndSpan(spAgg)

	parts := make([]*aggAccum, len(morsels))
	var batches atomic.Int64
	err = par.ForEachCtx(ctx, len(morsels), workers, func(mi int) error {
		cur := morselPipeline(cs, residual, snap, morsels[mi], sel.Where != nil)
		defer cur.Close() //nolint:errcheck // engine cursors fail only via Next
		acc := newAggAccum(sel, aggs, cs.schema)
		parts[mi] = acc
		bc := rowset.BatchCursorOf(cur)
		for {
			b, err := bc.NextBatch()
			if err != nil {
				return err
			}
			if b.Empty() {
				return nil
			}
			batches.Add(1)
			n := b.Len()
			for i := 0; i < n; i++ {
				if err := acc.observe(b.Row(i)); err != nil {
					return err
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	e.batches.Add(batches.Load())

	// Merge the per-morsel partials in morsel order into the first one, so the
	// merged accumulator's first-seen group order matches the sequential scan.
	if len(parts) == 0 { // empty snapshot under Force: no morsels at all
		parts = []*aggAccum{newAggAccum(sel, aggs, cs.schema)}
	}
	sink := parts[0]
	var rowsIn int64
	for _, part := range parts {
		rowsIn += part.rows
		if part == sink {
			continue
		}
		for _, k := range part.order {
			pg := part.groups[k]
			if got, ok := sink.groups[k]; ok {
				got.merge(pg, aggs)
				continue
			}
			sink.groups[k] = pg
			sink.order = append(sink.order, k)
		}
	}
	spF.SetRows(rowsIn)

	out, err := finishAggregate(sel, cs.schema, sink.finish(sel, cs.schema))
	if err != nil {
		return nil, err
	}
	spAgg.SetRows(int64(out.Len()))
	return finishMaterialized(out, sel)
}
