package sqlengine

// Parameter placeholders for prepared statements: '?' (positional) and
// '@name' (named). Placeholders parse into Param nodes; AssignParams gives
// every node a slot ordinal at prepare time (named parameters share the slot
// of their first occurrence), InferParamTypes fills in best-effort types from
// the columns each placeholder is compared against, and BindStatement clones
// the statement with Literal values substituted — so a cached plan is never
// mutated and can be shared across concurrent executions.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lex"
	"repro/internal/rowset"
)

// Param is a parameter placeholder: '?' or '@name'.
type Param struct {
	// Ordinal is the 0-based argument slot, assigned by AssignParams
	// (-1 until then). Named parameters repeated in one statement share it.
	Ordinal int
	// Name is the placeholder's name without the '@'; empty for '?'.
	Name string
	// TokPos is the byte offset of the placeholder token, used to order
	// slots by source position.
	TokPos int
	// Pos locates the placeholder for diagnostics.
	Pos lex.Pos
}

func (*Param) expr() {}

func (p *Param) String() string {
	if p.Name != "" {
		return "@" + p.Name
	}
	return "?"
}

// ParamSlot describes one argument slot of a prepared statement.
type ParamSlot struct {
	// Name is the slot's parameter name (without '@'); empty for positional.
	Name string
	// Type is the inferred value type; TypeNull means unknown (arguments are
	// passed through un-coerced).
	Type rowset.Type
}

// Label renders the slot for error messages ("@name" or "3" for the 1-based
// position).
func (s ParamSlot) Label(i int) string {
	if s.Name != "" {
		return "@" + s.Name
	}
	return fmt.Sprintf("%d", i+1)
}

// ---------- collection ----------

// walkExprTree visits every node of an expression preorder, descending into
// subquery statements as well.
func walkExprTree(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Binary:
		walkExprTree(x.L, f)
		walkExprTree(x.R, f)
	case *Unary:
		walkExprTree(x.X, f)
	case *IsNull:
		walkExprTree(x.X, f)
	case *Between:
		walkExprTree(x.X, f)
		walkExprTree(x.Lo, f)
		walkExprTree(x.Hi, f)
	case *In:
		walkExprTree(x.X, f)
		for _, it := range x.List {
			walkExprTree(it, f)
		}
		if x.Subquery != nil {
			walkStatementExprs(x.Subquery, f)
		}
	case *FuncCall:
		for _, a := range x.Args {
			walkExprTree(a, f)
		}
	case *Subquery:
		walkStatementExprs(x.Query, f)
	case *Exists:
		walkStatementExprs(x.Query, f)
	}
}

// walkStatementExprs visits every expression tree of a statement.
func walkStatementExprs(st Statement, f func(Expr)) {
	switch s := st.(type) {
	case *SelectStmt:
		for _, it := range s.Items {
			if !it.Star {
				walkExprTree(it.Expr, f)
			}
		}
		for _, ref := range s.From {
			walkExprTree(ref.On, f)
		}
		walkExprTree(s.Where, f)
		for _, g := range s.GroupBy {
			walkExprTree(g, f)
		}
		walkExprTree(s.Having, f)
		for _, o := range s.OrderBy {
			walkExprTree(o.Expr, f)
		}
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExprTree(e, f)
			}
		}
		if s.Query != nil {
			walkStatementExprs(s.Query, f)
		}
	case *DeleteStmt:
		walkExprTree(s.Where, f)
	case *UpdateStmt:
		for _, sc := range s.Set {
			walkExprTree(sc.Value, f)
		}
		walkExprTree(s.Where, f)
	}
}

// CollectParams returns every Param node in the statement, ordered by source
// position.
func CollectParams(st Statement) []*Param {
	var ps []*Param
	walkStatementExprs(st, func(e Expr) {
		if p, ok := e.(*Param); ok {
			ps = append(ps, p)
		}
	})
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].TokPos < ps[j].TokPos })
	return ps
}

// WalkExprParams visits every Param under the given expression roots in
// source order (the DMX layer's counterpart of CollectParams).
func WalkExprParams(roots []Expr, f func(*Param)) {
	var ps []*Param
	for _, r := range roots {
		walkExprTree(r, func(e Expr) {
			if p, ok := e.(*Param); ok {
				ps = append(ps, p)
			}
		})
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].TokPos < ps[j].TokPos })
	for _, p := range ps {
		f(p)
	}
}

// AssignOrdinals gives each collected Param its argument slot: positional
// placeholders get consecutive slots in source order; named placeholders get
// one slot per distinct (case-insensitive) name, at its first occurrence.
// Mixing the two styles in one statement is rejected — the argument order
// would be ambiguous.
func AssignOrdinals(ps []*Param) ([]ParamSlot, error) {
	if len(ps) == 0 {
		return nil, nil
	}
	named, positional := 0, 0
	for _, p := range ps {
		if p.Name != "" {
			named++
		} else {
			positional++
		}
	}
	if named > 0 && positional > 0 {
		return nil, fmt.Errorf("sqlengine: cannot mix '?' and '@name' parameters in one statement")
	}
	var slots []ParamSlot
	byName := make(map[string]int)
	for _, p := range ps {
		if p.Name == "" {
			p.Ordinal = len(slots)
			slots = append(slots, ParamSlot{})
			continue
		}
		key := strings.ToLower(p.Name)
		ord, ok := byName[key]
		if !ok {
			ord = len(slots)
			byName[key] = ord
			slots = append(slots, ParamSlot{Name: p.Name})
		}
		p.Ordinal = ord
	}
	return slots, nil
}

// AssignParams collects and assigns the statement's parameters in one step.
func AssignParams(st Statement) ([]ParamSlot, error) {
	return AssignOrdinals(CollectParams(st))
}

// ---------- type inference ----------

// InferParamTypes fills slot types from the columns parameters are compared
// against: `col = ?`, `col BETWEEN ? AND ?`, `col IN (?, ...)`, `col LIKE ?`
// (TEXT). resolve maps a column reference to its declared type; inference is
// best-effort and leaves a slot at TypeNull when nothing can be established.
// Conflicting evidence keeps the first inference (arguments still coerce or
// fail at execution).
func InferParamTypes(st Statement, slots []ParamSlot, resolve func(*ColumnRef) (rowset.Type, bool)) {
	if len(slots) == 0 || resolve == nil {
		return
	}
	note := func(p Expr, typ rowset.Type) {
		pp, ok := p.(*Param)
		if !ok || pp.Ordinal < 0 || pp.Ordinal >= len(slots) {
			return
		}
		if slots[pp.Ordinal].Type == rowset.TypeNull {
			slots[pp.Ordinal].Type = typ
		}
	}
	colType := func(e Expr) (rowset.Type, bool) {
		cr, ok := e.(*ColumnRef)
		if !ok {
			return rowset.TypeNull, false
		}
		return resolve(cr)
	}
	walkStatementExprs(st, func(e Expr) {
		switch x := e.(type) {
		case *Binary:
			switch x.Op {
			case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
				if t, ok := colType(x.L); ok {
					note(x.R, t)
				}
				if t, ok := colType(x.R); ok {
					note(x.L, t)
				}
			case OpLike:
				note(x.R, rowset.TypeText)
			}
		case *Between:
			if t, ok := colType(x.X); ok {
				note(x.Lo, t)
				note(x.Hi, t)
			}
		case *In:
			if t, ok := colType(x.X); ok {
				for _, it := range x.List {
					note(it, t)
				}
			}
		}
	})
}

// ---------- binding ----------

// BindStatement clones st with every Param replaced by the Literal value of
// its argument slot. The original statement is never mutated, so a cached
// plan can be bound concurrently. Arity must already be validated; an
// unassigned or out-of-range ordinal is an error.
func BindStatement(st Statement, args []rowset.Value) (Statement, error) {
	b := &binder{args: args}
	out := b.statement(st)
	return out, b.err
}

// BindSelect is BindStatement narrowed to SELECT (the DMX layer substitutes
// embedded source selects directly).
func BindSelect(sel *SelectStmt, args []rowset.Value) (*SelectStmt, error) {
	b := &binder{args: args}
	out := b.selectStmt(sel)
	return out, b.err
}

// BindExpr clones one expression with parameters substituted.
func BindExpr(e Expr, args []rowset.Value) (Expr, error) {
	b := &binder{args: args}
	out := b.expr(e)
	return out, b.err
}

// BindOrderBy clones ORDER BY items with parameters substituted.
func BindOrderBy(items []OrderItem, args []rowset.Value) ([]OrderItem, error) {
	b := &binder{args: args}
	out := b.orderBy(items)
	return out, b.err
}

// BindSelectItems clones projection items with parameters substituted.
func BindSelectItems(items []SelectItem, args []rowset.Value) ([]SelectItem, error) {
	b := &binder{args: args}
	out := b.items(items)
	return out, b.err
}

type binder struct {
	args []rowset.Value
	err  error
}

func (b *binder) fail(format string, a ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, a...)
	}
}

func (b *binder) statement(st Statement) Statement {
	switch s := st.(type) {
	case *SelectStmt:
		return b.selectStmt(s)
	case *InsertStmt:
		out := *s
		if len(s.Rows) > 0 {
			out.Rows = make([][]Expr, len(s.Rows))
			for i, row := range s.Rows {
				nr := make([]Expr, len(row))
				for j, e := range row {
					nr[j] = b.expr(e)
				}
				out.Rows[i] = nr
			}
		}
		if s.Query != nil {
			out.Query = b.selectStmt(s.Query)
		}
		return &out
	case *DeleteStmt:
		out := *s
		out.Where = b.expr(s.Where)
		return &out
	case *UpdateStmt:
		out := *s
		out.Set = make([]SetClause, len(s.Set))
		for i, sc := range s.Set {
			out.Set[i] = SetClause{Column: sc.Column, Value: b.expr(sc.Value)}
		}
		out.Where = b.expr(s.Where)
		return &out
	}
	return st
}

func (b *binder) selectStmt(sel *SelectStmt) *SelectStmt {
	if sel == nil {
		return nil
	}
	out := *sel
	out.Items = b.items(sel.Items)
	if len(sel.From) > 0 {
		out.From = append([]TableRef(nil), sel.From...)
		for i := range out.From {
			out.From[i].On = b.expr(out.From[i].On)
		}
	}
	out.Where = b.expr(sel.Where)
	if len(sel.GroupBy) > 0 {
		out.GroupBy = make([]Expr, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			out.GroupBy[i] = b.expr(g)
		}
	}
	out.Having = b.expr(sel.Having)
	out.OrderBy = b.orderBy(sel.OrderBy)
	return &out
}

func (b *binder) items(items []SelectItem) []SelectItem {
	if len(items) == 0 {
		return items
	}
	out := append([]SelectItem(nil), items...)
	for i := range out {
		if !out[i].Star {
			out[i].Expr = b.expr(out[i].Expr)
		}
	}
	return out
}

func (b *binder) orderBy(items []OrderItem) []OrderItem {
	if len(items) == 0 {
		return items
	}
	out := append([]OrderItem(nil), items...)
	for i := range out {
		out[i].Expr = b.expr(out[i].Expr)
	}
	return out
}

func (b *binder) expr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Param:
		if x.Ordinal < 0 || x.Ordinal >= len(b.args) {
			b.fail("sqlengine: parameter %s has no bound argument", x)
			return x
		}
		return &Literal{Val: b.args[x.Ordinal]}
	case *Binary:
		return &Binary{Op: x.Op, L: b.expr(x.L), R: b.expr(x.R)}
	case *Unary:
		return &Unary{Op: x.Op, X: b.expr(x.X)}
	case *IsNull:
		return &IsNull{X: b.expr(x.X), Negate: x.Negate}
	case *Between:
		return &Between{X: b.expr(x.X), Lo: b.expr(x.Lo), Hi: b.expr(x.Hi), Negate: x.Negate}
	case *In:
		out := &In{X: b.expr(x.X), Negate: x.Negate, Subquery: x.Subquery}
		if len(x.List) > 0 {
			out.List = make([]Expr, len(x.List))
			for i, it := range x.List {
				out.List[i] = b.expr(it)
			}
		}
		if x.Subquery != nil {
			out.Subquery = b.selectStmt(x.Subquery)
		}
		return out
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Pos: x.Pos}
		if len(x.Args) > 0 {
			out.Args = make([]Expr, len(x.Args))
			for i, a := range x.Args {
				out.Args[i] = b.expr(a)
			}
		}
		return out
	case *Subquery:
		return &Subquery{Query: b.selectStmt(x.Query)}
	case *Exists:
		return &Exists{Query: b.selectStmt(x.Query)}
	}
	return e
}

// ---------- referenced objects ----------

// ReferencedTables lists every table or view name the statement reads or
// writes, lower-cased and deduplicated — the dependency set a cached plan is
// keyed on for invalidation.
func ReferencedTables(st Statement) []string {
	seen := make(map[string]struct{})
	var out []string
	add := func(name string) {
		key := strings.ToLower(name)
		if key == "" {
			return
		}
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		out = append(out, key)
	}
	var visitStmt func(Statement)
	visitExpr := func(e Expr) {
		walkExprTree(e, func(x Expr) {
			switch sub := x.(type) {
			case *Subquery:
				visitStmt(sub.Query)
			case *Exists:
				visitStmt(sub.Query)
			case *In:
				if sub.Subquery != nil {
					visitStmt(sub.Subquery)
				}
			}
		})
	}
	visitStmt = func(st Statement) {
		switch s := st.(type) {
		case *SelectStmt:
			for _, ref := range s.From {
				add(ref.Name)
			}
			walkStatementExprs(s, visitExpr)
		case *InsertStmt:
			add(s.Table)
			if s.Query != nil {
				visitStmt(s.Query)
			}
		case *DeleteStmt:
			add(s.Table)
		case *UpdateStmt:
			add(s.Table)
		case *CreateViewStmt:
			add(s.Name)
		case *DropViewStmt:
			add(s.Name)
		case *CreateTableStmt:
			add(s.Name)
		case *DropTableStmt:
			add(s.Name)
		}
	}
	visitStmt(st)
	return out
}
