package sqlengine

import (
	"strings"
	"testing"
)

func TestScalarSubquery(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT [Customer ID] FROM Customers
		WHERE Age = (SELECT MAX(Age) FROM Customers)`)
	if rs.Len() != 1 || rs.Row(0)[0] != int64(3) {
		t.Errorf("oldest customer = %v", rs.Rows())
	}
	// Scalar subquery as a projection item.
	rs = mustQuery(t, e, "SELECT (SELECT COUNT(*) FROM Sales) AS n")
	if rs.Row(0)[0] != int64(6) {
		t.Errorf("projection subquery = %v", rs.Row(0))
	}
	// Empty scalar subquery is NULL.
	rs = mustQuery(t, e, "SELECT (SELECT Age FROM Customers WHERE Age > 1000) AS a")
	if rs.Row(0)[0] != nil {
		t.Errorf("empty scalar subquery = %v", rs.Row(0))
	}
}

func TestScalarSubqueryErrors(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Exec("SELECT (SELECT Age FROM Customers) AS a"); err == nil ||
		!strings.Contains(err.Error(), "more than one row") && !strings.Contains(err.Error(), "returned") {
		t.Errorf("multi-row scalar subquery: %v", err)
	}
	if _, err := e.Exec("SELECT (SELECT Age, Gender FROM Customers) AS a"); err == nil {
		t.Error("multi-column scalar subquery must fail")
	}
}

func TestInSubquery(t *testing.T) {
	e := newTestEngine(t)
	// Customers who bought electronics: 1 (TV, VCR) and 2 (TV).
	rs := mustQuery(t, e, `SELECT [Customer ID] FROM Customers
		WHERE [Customer ID] IN (SELECT CustID FROM Sales WHERE [Product Type] = 'Electronic')
		ORDER BY [Customer ID]`)
	if rs.Len() != 2 || rs.Row(0)[0] != int64(1) || rs.Row(1)[0] != int64(2) {
		t.Errorf("IN subquery = %v", rs.Rows())
	}
	rs = mustQuery(t, e, `SELECT [Customer ID] FROM Customers
		WHERE [Customer ID] NOT IN (SELECT CustID FROM Sales WHERE [Product Type] = 'Electronic')`)
	if rs.Len() != 1 || rs.Row(0)[0] != int64(3) {
		t.Errorf("NOT IN subquery = %v", rs.Rows())
	}
	if _, err := e.Exec(`SELECT 1 WHERE 1 IN (SELECT CustID, Quantity FROM Sales)`); err == nil {
		t.Error("multi-column IN subquery must fail")
	}
}

func TestExistsSubquery(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT COUNT(*) FROM Customers
		WHERE EXISTS (SELECT 1 FROM Cars WHERE Probability > 0.9)`)
	// EXISTS is uncorrelated: true overall, so every customer passes.
	if rs.Row(0)[0] != int64(3) {
		t.Errorf("EXISTS = %v", rs.Row(0))
	}
	rs = mustQuery(t, e, `SELECT COUNT(*) FROM Customers
		WHERE NOT EXISTS (SELECT 1 FROM Cars WHERE Probability > 99)`)
	if rs.Row(0)[0] != int64(3) {
		t.Errorf("NOT EXISTS = %v", rs.Row(0))
	}
}

func TestSubqueryInHavingAndOrderBy(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT CustID, COUNT(*) AS n FROM Sales
		GROUP BY CustID
		HAVING COUNT(*) > (SELECT 1 + 0)
		ORDER BY CustID`)
	if rs.Len() != 1 || rs.Row(0)[0] != int64(1) {
		t.Errorf("having subquery = %v", rs.Rows())
	}
}

func TestSubqueryOverView(t *testing.T) {
	e := newTestEngine(t)
	mustQuery(t, e, "CREATE VIEW Electro AS SELECT CustID FROM Sales WHERE [Product Type] = 'Electronic'")
	rs := mustQuery(t, e, `SELECT COUNT(*) FROM Customers
		WHERE [Customer ID] IN (SELECT CustID FROM Electro)`)
	if rs.Row(0)[0] != int64(2) {
		t.Errorf("subquery over view = %v", rs.Row(0))
	}
}

func TestCorrelatedSubqueryRejected(t *testing.T) {
	e := newTestEngine(t)
	// The inner query references the outer alias; unsupported, and the error
	// should say the column is unknown rather than silently misbehaving.
	_, err := e.Exec(`SELECT [Customer ID] FROM Customers c
		WHERE EXISTS (SELECT 1 FROM Sales s WHERE s.CustID = c.[Customer ID])`)
	if err == nil {
		t.Error("correlated subquery must be rejected")
	}
}
