package sqlengine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/rowset"
	"repro/internal/storage"
)

// This file is the streaming-vs-materialized differential harness: a
// test-only copy of the executor as it existed before the Volcano rewrite —
// every operator builds a complete Rowset, scans never consult indexes — used
// as the oracle for the streaming cursor pipeline. Aggregation is shared with
// the engine (it was the same function before the rewrite and is the
// materializing operator either way); everything the rewrite replaced — scan,
// join, filter, project, sort, distinct, TOP — is duplicated here verbatim.

func oracleQuery(e *Engine, sel *SelectStmt) (*rowset.Rowset, error) {
	src, err := oracleSource(e, sel.From)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		src, err = oracleFilter(src, sel.Where)
		if err != nil {
			return nil, err
		}
	}
	var out *rowset.Rowset
	if needsAggregate(sel) {
		out, err = e.aggregate(sel, src.Iter())
	} else {
		out, err = oracleProject(sel, src)
	}
	if err != nil {
		return nil, err
	}
	if sel.Distinct {
		out = oracleDistinct(out)
	}
	if sel.Top > 0 && out.Len() > sel.Top {
		trimmed := rowset.New(out.Schema())
		for i := 0; i < sel.Top; i++ {
			if err := trimmed.Append(out.Row(i)); err != nil {
				return nil, err
			}
		}
		out = trimmed
	}
	return out, nil
}

func oracleSource(e *Engine, from []TableRef) (*rowset.Rowset, error) {
	if len(from) == 0 {
		rs := rowset.New(rowset.MustSchema())
		if err := rs.AppendVals(); err != nil {
			return nil, err
		}
		return rs, nil
	}
	acc, err := oracleScan(e, from[0])
	if err != nil {
		return nil, err
	}
	for _, ref := range from[1:] {
		right, err := oracleScan(e, ref)
		if err != nil {
			return nil, err
		}
		acc, err = oracleJoin(acc, right, ref.Kind, ref.On)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func oracleScan(e *Engine, ref TableRef) (*rowset.Rowset, error) {
	var scan *rowset.Rowset
	if view, ok := e.views.get(ref.Name); ok {
		vr, err := e.Query(view)
		if err != nil {
			return nil, fmt.Errorf("sqlengine: view %s: %w", ref.Name, err)
		}
		scan = vr
	} else {
		tbl, err := e.DB.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		scan = tbl.Scan()
	}
	q := ref.AliasOrName()
	cols := make([]rowset.Column, scan.Schema().Len())
	for i, c := range scan.Schema().Columns {
		cols[i] = rowset.Column{Name: q + "." + c.Name, Type: c.Type, Nested: c.Nested}
	}
	schema, err := rowset.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("sqlengine: %w (duplicate alias %q?)", err, q)
	}
	return rowset.FromRows(schema, scan.Rows())
}

// oracleJoin always builds the hash table on the right input, as the
// materialized executor did.
func oracleJoin(left, right *rowset.Rowset, kind JoinKind, on Expr) (*rowset.Rowset, error) {
	schema, err := concatSchemas(left.Schema(), right.Schema())
	if err != nil {
		return nil, err
	}
	out := rowset.New(schema)
	appendJoined := func(l, r rowset.Row) error {
		row := make(rowset.Row, 0, len(l)+len(r))
		row = append(row, l...)
		row = append(row, r...)
		return out.Append(row)
	}
	nullRight := make(rowset.Row, right.Schema().Len())

	if kind == JoinCross {
		for _, l := range left.Rows() {
			for _, r := range right.Rows() {
				if err := appendJoined(l, r); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	if lo, ro, ok := equiJoinOrdinals(on, left.Schema(), right.Schema()); ok {
		ht := make(map[string][]rowset.Row, right.Len())
		for _, r := range right.Rows() {
			if r[ro] == nil {
				continue // NULL never matches in an equi-join
			}
			ht[rowset.Key(r[ro])] = append(ht[rowset.Key(r[ro])], r)
		}
		for _, l := range left.Rows() {
			var matches []rowset.Row
			if l[lo] != nil {
				matches = ht[rowset.Key(l[lo])]
			}
			if len(matches) == 0 {
				if kind == JoinLeft {
					if err := appendJoined(l, nullRight); err != nil {
						return nil, err
					}
				}
				continue
			}
			for _, r := range matches {
				if err := appendJoined(l, r); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	env := &Env{Schema: schema}
	probe := make(rowset.Row, 0, schema.Len())
	for _, l := range left.Rows() {
		matched := false
		for _, r := range right.Rows() {
			probe = probe[:0]
			probe = append(probe, l...)
			probe = append(probe, r...)
			env.Row = probe
			v, err := Eval(on, env)
			if err != nil {
				return nil, err
			}
			ok, err := Truthy(v)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				if err := appendJoined(l, r); err != nil {
					return nil, err
				}
			}
		}
		if !matched && kind == JoinLeft {
			if err := appendJoined(l, nullRight); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func oracleFilter(src *rowset.Rowset, cond Expr) (*rowset.Rowset, error) {
	out := rowset.New(src.Schema())
	env := &Env{Schema: src.Schema()}
	for _, r := range src.Rows() {
		env.Row = r
		v, err := Eval(cond, env)
		if err != nil {
			return nil, err
		}
		ok, err := Truthy(v)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := out.Append(r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func oracleProject(sel *SelectStmt, src *rowset.Rowset) (*rowset.Rowset, error) {
	items, err := expandStars(sel.Items, src.Schema())
	if err != nil {
		return nil, err
	}
	names := outputNames(items)
	env := &Env{Schema: src.Schema()}
	outRows := make([]rowset.Row, 0, src.Len())
	keyRows := make([]rowset.Row, 0, src.Len())
	for _, r := range src.Rows() {
		env.Row = r
		out := make(rowset.Row, len(items))
		for i, it := range items {
			v, err := Eval(it.Expr, env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		keys, err := orderKeys(sel.OrderBy, items, names, out, env)
		if err != nil {
			return nil, err
		}
		outRows = append(outRows, out)
		keyRows = append(keyRows, keys)
	}
	oracleSort(outRows, keyRows, sel.OrderBy)
	schema, err := outputSchema(items, names, src.Schema(), outRows)
	if err != nil {
		return nil, err
	}
	return rowset.FromRows(schema, outRows)
}

func oracleSort(rows []rowset.Row, keys []rowset.Row, order []OrderItem) {
	if len(order) == 0 {
		return
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for k, o := range order {
			c := rowset.Compare(keys[a][k], keys[b][k])
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	tmp := make([]rowset.Row, len(rows))
	for i, j := range idx {
		tmp[i] = rows[j]
	}
	copy(rows, tmp)
}

func oracleDistinct(rs *rowset.Rowset) *rowset.Rowset {
	out := rowset.New(rs.Schema())
	seen := make(map[string]bool, rs.Len())
	for _, r := range rs.Rows() {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(rowset.Key(v))
			b.WriteByte('|')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			_ = out.Append(r) //nolint:errcheck // rows came from a valid rowset
		}
	}
	return out
}

// differentialDB stages tables (two of them indexed), NULLs, and a view so
// the fixtures exercise index pushdown, its refusal cases, and the view path.
func differentialDB(t *testing.T) *Engine {
	t.Helper()
	db := storage.NewDatabase()
	e := NewEngine(db)
	mustOK := func(sql string) {
		t.Helper()
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustOK("CREATE TABLE C (id LONG, name TEXT, city TEXT, age LONG, score DOUBLE)")
	mustOK("CREATE TABLE O (oid LONG, cid LONG, amount DOUBLE, item TEXT)")
	cities := []string{"rome", "oslo", "lima", "kiev"}
	items := []string{"pen", "mug", "hat"}
	ct, _ := db.Table("C")
	ot, _ := db.Table("O")
	for i := 0; i < 70; i++ {
		var score rowset.Value = float64(i%13) * 1.5
		if i%9 == 0 {
			score = nil
		}
		var city rowset.Value = cities[i%len(cities)]
		if i%17 == 0 {
			city = nil
		}
		r := rowset.Row{int64(i), fmt.Sprintf("n%02d", i%25), city, int64(18 + i%50), score}
		if err := ct.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 90; i++ {
		var cid rowset.Value = int64(i % 80) // some cids match no customer
		if i%11 == 0 {
			cid = nil
		}
		r := rowset.Row{int64(1000 + i), cid, float64(i) / 3, items[i%len(items)]}
		if err := ot.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ct.CreateIndex("city"); err != nil {
		t.Fatal(err)
	}
	if err := ot.CreateIndex("cid"); err != nil {
		t.Fatal(err)
	}
	mustOK("CREATE VIEW V AS SELECT id, city, age FROM C WHERE age > 30")
	return e
}

// differentialFixtures is the query corpus: every operator the streaming
// rewrite touched, with and without index pushdown, plus the pushdown
// refusal shapes (OR, LEFT JOIN right side, views, ambiguity via self-join).
var differentialFixtures = []string{
	"SELECT * FROM C",
	"SELECT name, age FROM C",
	"SELECT id, age * 2 AS double_age, score + 1 FROM C",
	"SELECT name FROM C WHERE city = 'rome'",
	"SELECT 'rome' AS k, name FROM C WHERE 'rome' = city",
	"SELECT name, age FROM C WHERE city = 'rome' AND age > 30",
	"SELECT name FROM C WHERE city = 'rome' AND age = 40",
	"SELECT name FROM C WHERE city = 'rome' OR age > 60",
	"SELECT name FROM C WHERE age = 40",
	"SELECT name FROM C WHERE city = 'atlantis'",
	"SELECT name FROM C WHERE city = 3",
	"SELECT id FROM C WHERE score IS NULL",
	"SELECT name, age FROM C ORDER BY age",
	"SELECT name, age FROM C ORDER BY age DESC, name",
	"SELECT age AS a FROM C ORDER BY a DESC",
	"SELECT city, score FROM C ORDER BY score",
	"SELECT DISTINCT city FROM C",
	"SELECT DISTINCT city, age FROM C WHERE city = 'lima'",
	"SELECT TOP 5 name FROM C ORDER BY age DESC",
	"SELECT TOP 7 name FROM C",
	"SELECT DISTINCT TOP 3 city FROM C",
	"SELECT C.name, O.item FROM C JOIN O ON C.id = O.cid",
	"SELECT C.name, O.item, O.amount FROM C JOIN O ON C.id = O.cid WHERE city = 'rome'",
	"SELECT C.name, O.item FROM C JOIN O ON C.id = O.cid WHERE O.cid = 3",
	"SELECT C.name, O.item FROM C LEFT JOIN O ON C.id = O.cid ORDER BY C.id, O.oid",
	"SELECT C.name, O.amount FROM C LEFT JOIN O ON C.id = O.cid WHERE O.cid = 3",
	"SELECT COUNT(*) FROM C, O",
	"SELECT TOP 10 C.id, O.oid FROM C, O ORDER BY O.oid, C.id",
	"SELECT a.name, b.name FROM C AS a JOIN C AS b ON a.id = b.id WHERE a.city = 'oslo'",
	"SELECT COUNT(*) FROM C JOIN O ON C.id < O.cid",
	"SELECT C.name, O.item, V.age FROM C JOIN O ON C.id = O.cid JOIN V ON C.id = V.id",
	"SELECT city, COUNT(*), AVG(age) FROM C GROUP BY city ORDER BY city",
	"SELECT city, SUM(score) FROM C GROUP BY city HAVING COUNT(*) > 10 ORDER BY city",
	"SELECT COUNT(*), MAX(score), MIN(age) FROM C",
	"SELECT COUNT(*) FROM C WHERE city = 'rome'",
	"SELECT * FROM V WHERE city = 'rome'",
	"SELECT id, city FROM V ORDER BY id",
	"SELECT 1 + 2 AS three, 'x' AS s",
}

// TestDifferentialStreamingVsMaterialized runs every fixture through the
// streaming cursor pipeline and through the pre-rewrite materialized oracle
// and requires byte-identical results: same column names, same declared
// types, same rows in the same order.
func TestDifferentialStreamingVsMaterialized(t *testing.T) {
	e := differentialDB(t)
	for _, q := range differentialFixtures {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: parse: %v", q, err)
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			t.Fatalf("%s: not a SELECT", q)
		}
		want, err := oracleQuery(e, sel)
		if err != nil {
			t.Fatalf("%s: oracle: %v", q, err)
		}
		got, err := e.Query(sel)
		if err != nil {
			t.Fatalf("%s: engine: %v", q, err)
		}
		diffRowsets(t, q, got, want)
	}
}

func diffRowsets(t *testing.T, q string, got, want *rowset.Rowset) {
	t.Helper()
	if gn, wn := got.Schema().Names(), want.Schema().Names(); fmt.Sprint(gn) != fmt.Sprint(wn) {
		t.Errorf("%s: columns %v, oracle %v", q, gn, wn)
		return
	}
	for i, wc := range want.Schema().Columns {
		if gc := got.Schema().Column(i); gc.Type != wc.Type {
			t.Errorf("%s: column %s type %v, oracle %v", q, wc.Name, gc.Type, wc.Type)
			return
		}
	}
	if got.Len() != want.Len() {
		t.Errorf("%s: %d rows, oracle %d", q, got.Len(), want.Len())
		return
	}
	for i := 0; i < want.Len(); i++ {
		gr, wr := got.Row(i), want.Row(i)
		for j := range wr {
			if rowset.Key(gr[j]) != rowset.Key(wr[j]) {
				t.Errorf("%s: row %d col %d = %v, oracle %v", q, i, j, gr[j], wr[j])
				return
			}
		}
	}
	if gs, ws := got.String(), want.String(); gs != ws {
		t.Errorf("%s: rendered rowset differs from oracle:\n--- engine ---\n%s--- oracle ---\n%s", q, gs, ws)
	}
}

// TestDifferentialErrorsAgree checks that queries the materialized executor
// rejected are still rejected by the streaming pipeline — pushdown and lazy
// column resolution must not mask ambiguity or unknown-column errors.
func TestDifferentialErrorsAgree(t *testing.T) {
	e := differentialDB(t)
	for _, q := range []string{
		"SELECT name FROM C AS a, C AS b WHERE city = 'rome'", // ambiguous everywhere
		"SELECT nope FROM C",
		"SELECT name FROM C WHERE nope = 'rome'",
		"SELECT name FROM C JOIN O ON C.id = O.cid WHERE id = 3 AND bogus = 1",
	} {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: parse: %v", q, err)
		}
		sel := stmt.(*SelectStmt)
		_, oErr := oracleQuery(e, sel)
		_, gErr := e.Query(sel)
		if oErr == nil || gErr == nil {
			t.Errorf("%s: oracle err=%v, engine err=%v (want both non-nil)", q, oErr, gErr)
			continue
		}
		if oErr.Error() != gErr.Error() {
			t.Errorf("%s: error mismatch\n  oracle: %v\n  engine: %v", q, oErr, gErr)
		}
	}
}
