package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/rowset"
)

// Env is the evaluation environment: a row and the schema describing it.
// The two optional hooks let embedders (the DMX prediction-join evaluator)
// extend resolution: External answers column references the schema cannot,
// and Funcs intercepts function calls before the builtin scalar functions —
// receiving the raw call so it can treat arguments as names, not values.
type Env struct {
	Schema *rowset.Schema
	Row    rowset.Row

	// External resolves a column reference not found in Schema. It returns
	// handled=false to fall through to the normal unknown-column error.
	External func(qualifier, name string) (v rowset.Value, handled bool, err error)
	// Funcs intercepts a function call. It returns handled=false to fall
	// through to the builtin functions.
	Funcs func(f *FuncCall, env *Env) (v rowset.Value, handled bool, err error)
}

// ResolveColumn resolves a (possibly qualified) column name against a schema
// whose columns may themselves carry "alias.name" qualified names (as built
// by joins). Resolution tries, in order: exact match of the full name; for
// unqualified names, a unique suffix match on the last dot component.
// Ambiguous unqualified names are an error.
func ResolveColumn(schema *rowset.Schema, qualifier, name string) (int, error) {
	full := name
	if qualifier != "" {
		full = qualifier + "." + name
	}
	// Exact (case-insensitive) match first.
	for i, c := range schema.Columns {
		if strings.EqualFold(c.Name, full) {
			return i, nil
		}
	}
	if qualifier == "" {
		found := -1
		for i, c := range schema.Columns {
			cn := c.Name
			if dot := strings.LastIndex(cn, "."); dot >= 0 {
				cn = cn[dot+1:]
			}
			if strings.EqualFold(cn, name) {
				if found >= 0 {
					return 0, fmt.Errorf("sqlengine: ambiguous column %q", name)
				}
				found = i
			}
		}
		if found >= 0 {
			return found, nil
		}
	}
	return 0, fmt.Errorf("sqlengine: unknown column %q", full)
}

// Eval evaluates an expression against env. Aggregate function calls are
// rejected here; the executor rewrites them before projection.
func Eval(e Expr, env *Env) (rowset.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		i, err := ResolveColumn(env.Schema, x.Qualifier, x.Name)
		if err != nil {
			if env.External != nil {
				v, handled, eerr := env.External(x.Qualifier, x.Name)
				if eerr != nil {
					return nil, eerr
				}
				if handled {
					return v, nil
				}
			}
			return nil, err
		}
		return env.Row[i], nil
	case *Binary:
		return evalBinary(x, env)
	case *Unary:
		return evalUnary(x, env)
	case *IsNull:
		v, err := Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Negate, nil
	case *In:
		return evalIn(x, env)
	case *Between:
		return evalBetween(x, env)
	case *FuncCall:
		return evalFunc(x, env)
	}
	return nil, fmt.Errorf("sqlengine: cannot evaluate %T", e)
}

// Truthy interprets a value as a WHERE-clause condition: only boolean true
// passes; NULL and false do not. Non-boolean values are an error.
func Truthy(v rowset.Value) (bool, error) {
	switch x := v.(type) {
	case nil:
		return false, nil
	case bool:
		return x, nil
	default:
		return false, fmt.Errorf("sqlengine: condition is %s, not BOOL", rowset.TypeOf(v))
	}
}

func evalBinary(b *Binary, env *Env) (rowset.Value, error) {
	// AND/OR implement SQL three-valued logic with short-circuiting.
	if b.Op == OpAnd || b.Op == OpOr {
		return evalLogical(b, env)
	}
	l, err := Eval(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := Eval(b.R, env)
	if err != nil {
		return nil, err
	}
	if l == nil || r == nil {
		return nil, nil // NULL propagates
	}
	switch b.Op {
	case OpEq:
		return rowset.Compare(l, r) == 0, nil
	case OpNe:
		return rowset.Compare(l, r) != 0, nil
	case OpLt:
		return rowset.Compare(l, r) < 0, nil
	case OpLe:
		return rowset.Compare(l, r) <= 0, nil
	case OpGt:
		return rowset.Compare(l, r) > 0, nil
	case OpGe:
		return rowset.Compare(l, r) >= 0, nil
	case OpLike:
		ls, lok := l.(string)
		rs, rok := r.(string)
		if !lok || !rok {
			return nil, fmt.Errorf("sqlengine: LIKE requires TEXT operands")
		}
		return likeMatch(ls, rs), nil
	case OpConcat:
		return rowset.FormatValue(l) + rowset.FormatValue(r), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		return evalArith(b.Op, l, r)
	}
	return nil, fmt.Errorf("sqlengine: unknown operator")
}

func evalLogical(b *Binary, env *Env) (rowset.Value, error) {
	l, err := Eval(b.L, env)
	if err != nil {
		return nil, err
	}
	lb, lIsBool := l.(bool)
	if l != nil && !lIsBool {
		return nil, fmt.Errorf("sqlengine: %s requires BOOL operands", binOpNames[b.Op])
	}
	if b.Op == OpAnd && l != nil && !lb {
		return false, nil
	}
	if b.Op == OpOr && l != nil && lb {
		return true, nil
	}
	r, err := Eval(b.R, env)
	if err != nil {
		return nil, err
	}
	rb, rIsBool := r.(bool)
	if r != nil && !rIsBool {
		return nil, fmt.Errorf("sqlengine: %s requires BOOL operands", binOpNames[b.Op])
	}
	switch {
	case b.Op == OpAnd && r != nil && !rb:
		return false, nil
	case b.Op == OpOr && r != nil && rb:
		return true, nil
	case l == nil || r == nil:
		return nil, nil
	case b.Op == OpAnd:
		return lb && rb, nil
	default:
		return lb || rb, nil
	}
}

func evalArith(op BinaryOp, l, r rowset.Value) (rowset.Value, error) {
	// Integer arithmetic stays integral except division, which follows SQL
	// Server semantics only loosely: we promote to DOUBLE to avoid the
	// surprise of silent truncation in mining workloads.
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt && op != OpDiv {
		switch op {
		case OpAdd:
			return li + ri, nil
		case OpSub:
			return li - ri, nil
		case OpMul:
			return li * ri, nil
		}
	}
	lf, lok := rowset.ToFloat(l)
	rf, rok := rowset.ToFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("sqlengine: arithmetic on non-numeric values (%s, %s)",
			rowset.TypeOf(l), rowset.TypeOf(r))
	}
	switch op {
	case OpAdd:
		return lf + rf, nil
	case OpSub:
		return lf - rf, nil
	case OpMul:
		return lf * rf, nil
	case OpDiv:
		if rf == 0 {
			return nil, nil // SQL: division by zero yields NULL here
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("sqlengine: unknown arithmetic operator")
}

func evalUnary(u *Unary, env *Env) (rowset.Value, error) {
	v, err := Eval(u.X, env)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	switch u.Op {
	case "NOT":
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("sqlengine: NOT requires BOOL")
		}
		return !b, nil
	case "-":
		switch x := v.(type) {
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		default:
			return nil, fmt.Errorf("sqlengine: cannot negate %s", rowset.TypeOf(v))
		}
	}
	return nil, fmt.Errorf("sqlengine: unknown unary operator %q", u.Op)
}

func evalIn(in *In, env *Env) (rowset.Value, error) {
	if in.Subquery != nil {
		return nil, fmt.Errorf("sqlengine: unresolved IN subquery (execute through the engine)")
	}
	x, err := Eval(in.X, env)
	if err != nil {
		return nil, err
	}
	if x == nil {
		return nil, nil
	}
	sawNull := false
	for _, item := range in.List {
		v, err := Eval(item, env)
		if err != nil {
			return nil, err
		}
		if v == nil {
			sawNull = true
			continue
		}
		if rowset.Compare(x, v) == 0 {
			return !in.Negate, nil
		}
	}
	if sawNull {
		return nil, nil
	}
	return in.Negate, nil
}

func evalBetween(b *Between, env *Env) (rowset.Value, error) {
	x, err := Eval(b.X, env)
	if err != nil {
		return nil, err
	}
	lo, err := Eval(b.Lo, env)
	if err != nil {
		return nil, err
	}
	hi, err := Eval(b.Hi, env)
	if err != nil {
		return nil, err
	}
	if x == nil || lo == nil || hi == nil {
		return nil, nil
	}
	res := rowset.Compare(x, lo) >= 0 && rowset.Compare(x, hi) <= 0
	return res != b.Negate, nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one character),
// case-insensitively (SQL Server default collation behaviour).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// aggregateFuncs are handled by the executor's GROUP BY machinery, never by
// scalar evaluation.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"STDEV": true, "VAR": true,
}

// IsAggregate reports whether e is a call to an aggregate function.
func IsAggregate(e Expr) bool {
	f, ok := e.(*FuncCall)
	return ok && aggregateFuncs[f.Name]
}

// ContainsAggregate reports whether the expression tree contains an
// aggregate function call.
func ContainsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if aggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if ContainsAggregate(a) {
				return true
			}
		}
	case *Binary:
		return ContainsAggregate(x.L) || ContainsAggregate(x.R)
	case *Unary:
		return ContainsAggregate(x.X)
	case *IsNull:
		return ContainsAggregate(x.X)
	case *Between:
		return ContainsAggregate(x.X) || ContainsAggregate(x.Lo) || ContainsAggregate(x.Hi)
	case *In:
		if ContainsAggregate(x.X) {
			return true
		}
		for _, i := range x.List {
			if ContainsAggregate(i) {
				return true
			}
		}
	}
	return false
}

func evalFunc(f *FuncCall, env *Env) (rowset.Value, error) {
	if env.Funcs != nil {
		v, handled, err := env.Funcs(f, env)
		if err != nil {
			return nil, err
		}
		if handled {
			return v, nil
		}
	}
	if aggregateFuncs[f.Name] {
		return nil, fmt.Errorf("sqlengine: aggregate %s used outside GROUP BY context", f.Name)
	}
	args := make([]rowset.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := Eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return callScalar(f.Name, args)
}

func callScalar(name string, args []rowset.Value) (rowset.Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlengine: %s takes %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "LEN", "LENGTH":
		if err := arity(1); err != nil {
			return nil, err
		}
		if args[0] == nil {
			return nil, nil
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sqlengine: LEN requires TEXT")
		}
		return int64(len(s)), nil
	case "UPPER":
		if err := arity(1); err != nil {
			return nil, err
		}
		return textFn(args[0], strings.ToUpper)
	case "LOWER":
		if err := arity(1); err != nil {
			return nil, err
		}
		return textFn(args[0], strings.ToLower)
	case "TRIM":
		if err := arity(1); err != nil {
			return nil, err
		}
		return textFn(args[0], strings.TrimSpace)
	case "SUBSTRING":
		if err := arity(3); err != nil {
			return nil, err
		}
		if args[0] == nil {
			return nil, nil
		}
		s, ok := args[0].(string)
		start, ok2 := args[1].(int64)
		length, ok3 := args[2].(int64)
		if !ok || !ok2 || !ok3 {
			return nil, fmt.Errorf("sqlengine: SUBSTRING(text, long, long)")
		}
		// SQL is 1-based.
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			return "", nil
		}
		j := i + int(length)
		if j > len(s) {
			j = len(s)
		}
		if j < i {
			j = i
		}
		return s[i:j], nil
	case "ABS":
		if err := arity(1); err != nil {
			return nil, err
		}
		switch x := args[0].(type) {
		case nil:
			return nil, nil
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		default:
			return nil, fmt.Errorf("sqlengine: ABS requires a number")
		}
	case "ROUND":
		if len(args) == 1 {
			args = append(args, int64(0))
		}
		if err := arity(2); err != nil {
			return nil, err
		}
		if args[0] == nil {
			return nil, nil
		}
		f, ok := rowset.ToFloat(args[0])
		d, ok2 := args[1].(int64)
		if !ok || !ok2 {
			return nil, fmt.Errorf("sqlengine: ROUND(number, long)")
		}
		p := math.Pow(10, float64(d))
		return math.Round(f*p) / p, nil
	case "FLOOR":
		if err := arity(1); err != nil {
			return nil, err
		}
		return floatFn(args[0], math.Floor)
	case "CEILING", "CEIL":
		if err := arity(1); err != nil {
			return nil, err
		}
		return floatFn(args[0], math.Ceil)
	case "SQRT":
		if err := arity(1); err != nil {
			return nil, err
		}
		return floatFn(args[0], math.Sqrt)
	case "COALESCE":
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	case "IIF":
		if err := arity(3); err != nil {
			return nil, err
		}
		cond, err := Truthy(args[0])
		if err != nil {
			return nil, err
		}
		if cond {
			return args[1], nil
		}
		return args[2], nil
	}
	return nil, fmt.Errorf("sqlengine: unknown function %s", name)
}

func textFn(v rowset.Value, fn func(string) string) (rowset.Value, error) {
	if v == nil {
		return nil, nil
	}
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("sqlengine: function requires TEXT, got %s", rowset.TypeOf(v))
	}
	return fn(s), nil
}

func floatFn(v rowset.Value, fn func(float64) float64) (rowset.Value, error) {
	if v == nil {
		return nil, nil
	}
	f, ok := rowset.ToFloat(v)
	if !ok {
		return nil, fmt.Errorf("sqlengine: function requires a number, got %s", rowset.TypeOf(v))
	}
	return fn(f), nil
}
