package provider

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestRandomizedLifecycle is a bounded fuzz harness: random table schemas,
// random data (with NULLs), random model definitions over them, trained and
// queried through every service. The assertion is robustness — no panics,
// and every error is a clean error value — plus basic sanity of results
// (prediction outputs exist for trained models).
func TestRandomizedLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	services := []string{
		"Decision_Trees", "Naive_Bayes", "Clustering",
		"Association_Rules", "Linear_Regression",
	}
	for trial := 0; trial < 12; trial++ {
		p := MustNew()
		nCols := 2 + rng.Intn(3) // discrete/continuous attribute columns
		colDefs := make([]string, 0, nCols+2)
		colNames := make([]string, 0, nCols)
		colKinds := make([]string, 0, nCols)
		colDefs = append(colDefs, "id LONG")
		for i := 0; i < nCols; i++ {
			name := fmt.Sprintf("c%d", i)
			kind := "TEXT"
			if rng.Intn(2) == 0 {
				kind = "DOUBLE"
			}
			colNames = append(colNames, name)
			colKinds = append(colKinds, kind)
			colDefs = append(colDefs, name+" "+kind)
		}
		mustExec(t, p, fmt.Sprintf("CREATE TABLE D (%s)", strings.Join(colDefs, ", ")))
		mustExec(t, p, "CREATE TABLE I (id LONG, item TEXT)")

		nRows := 30 + rng.Intn(60)
		for r := 0; r < nRows; r++ {
			vals := []string{fmt.Sprintf("%d", r)}
			for i := range colNames {
				if rng.Float64() < 0.1 {
					vals = append(vals, "NULL")
				} else if colKinds[i] == "TEXT" {
					vals = append(vals, fmt.Sprintf("'v%d'", rng.Intn(4)))
				} else {
					vals = append(vals, fmt.Sprintf("%g", rng.Float64()*100))
				}
			}
			mustExec(t, p, fmt.Sprintf("INSERT INTO D VALUES (%s)", strings.Join(vals, ", ")))
			for k := 0; k < rng.Intn(4); k++ {
				mustExec(t, p, fmt.Sprintf("INSERT INTO I VALUES (%d, 'item%d')", r, rng.Intn(6)))
			}
		}

		for _, svc := range services {
			modelName := fmt.Sprintf("M_%s_%d", svc, trial)
			// Pick a target compatible with the service.
			var target, targetSpec string
			switch svc {
			case "Linear_Regression":
				target = pickKind(rng, colNames, colKinds, "DOUBLE")
				if target == "" {
					continue
				}
				targetSpec = fmt.Sprintf("[%s] DOUBLE CONTINUOUS PREDICT", target)
			case "Naive_Bayes":
				target = pickKind(rng, colNames, colKinds, "TEXT")
				if target == "" {
					continue
				}
				targetSpec = fmt.Sprintf("[%s] TEXT DISCRETE PREDICT", target)
			case "Decision_Trees":
				target = colNames[rng.Intn(len(colNames))]
				if kindOf(colNames, colKinds, target) == "TEXT" {
					targetSpec = fmt.Sprintf("[%s] TEXT DISCRETE PREDICT", target)
				} else {
					targetSpec = fmt.Sprintf("[%s] DOUBLE DISCRETIZED PREDICT", target)
				}
			default:
				target = ""
			}

			var cols []string
			cols = append(cols, "[id] LONG KEY")
			for i, n := range colNames {
				if n == target {
					continue
				}
				if colKinds[i] == "TEXT" {
					cols = append(cols, fmt.Sprintf("[%s] TEXT DISCRETE", n))
				} else {
					cols = append(cols, fmt.Sprintf("[%s] DOUBLE CONTINUOUS", n))
				}
			}
			if targetSpec != "" {
				cols = append(cols, targetSpec)
			}
			tablePredict := ""
			if svc == "Association_Rules" || svc == "Clustering" || rng.Intn(2) == 0 {
				flag := ""
				if svc == "Association_Rules" || svc == "Decision_Trees" {
					flag = " PREDICT"
				}
				tablePredict = fmt.Sprintf(", [Items] TABLE([item] TEXT KEY)%s", flag)
			}
			create := fmt.Sprintf("CREATE MINING MODEL [%s] (%s%s) USING [%s]",
				modelName, strings.Join(cols, ", "), tablePredict, svc)
			if _, err := p.Execute(create); err != nil {
				t.Fatalf("trial %d %s create: %v\n%s", trial, svc, err, create)
			}

			insertCols := []string{"[id]"}
			selectCols := []string{"id"}
			for i, n := range colNames {
				_ = i
				insertCols = append(insertCols, "["+n+"]")
				selectCols = append(selectCols, n)
			}
			var insert string
			if tablePredict != "" {
				insert = fmt.Sprintf(`INSERT INTO [%s] (%s, [Items]([item]))
					SHAPE {SELECT %s FROM D ORDER BY id}
					APPEND ({SELECT id AS iid, item FROM I ORDER BY iid} RELATE [id] TO [iid]) AS [Items]`,
					modelName, strings.Join(insertCols, ", "), strings.Join(selectCols, ", "))
			} else {
				insert = fmt.Sprintf("INSERT INTO [%s] (%s) SELECT %s FROM D",
					modelName, strings.Join(insertCols, ", "), strings.Join(selectCols, ", "))
			}
			if _, err := p.Execute(insert); err != nil {
				// Some random combinations legitimately fail (e.g. a target
				// column that came out all-NULL); the requirement is a clean
				// error, which reaching here demonstrates.
				t.Logf("trial %d %s train (acceptable): %v", trial, svc, err)
				continue
			}

			// Every trained model must answer the generic surface.
			for _, q := range []string{
				fmt.Sprintf("SELECT * FROM [%s].CONTENT", modelName),
				fmt.Sprintf("SELECT * FROM [%s].COLUMNS", modelName),
				fmt.Sprintf("SELECT * FROM [%s].CASES", modelName),
				fmt.Sprintf("SELECT * FROM [%s].PMML", modelName),
			} {
				if _, err := p.Execute(q); err != nil {
					t.Fatalf("trial %d %s: %s: %v", trial, svc, q, err)
				}
			}
			if target != "" {
				q := fmt.Sprintf(`SELECT Predict([%s]), PredictProbability([%s]) FROM [%s]
					NATURAL PREDICTION JOIN (SELECT %s FROM D) AS t`,
					target, target, modelName, strings.Join(selectCols, ", "))
				rs, err := p.Execute(q)
				if err != nil {
					t.Fatalf("trial %d %s predict: %v", trial, svc, err)
				}
				if rs.Len() != nRows {
					t.Fatalf("trial %d %s: predictions = %d want %d", trial, svc, rs.Len(), nRows)
				}
			}
			mustExec(t, p, fmt.Sprintf("DROP MINING MODEL [%s]", modelName))
		}
	}
}

func pickKind(rng *rand.Rand, names, kinds []string, want string) string {
	var cands []string
	for i, k := range kinds {
		if k == want {
			cands = append(cands, names[i])
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[rng.Intn(len(cands))]
}

func kindOf(names, kinds []string, name string) string {
	for i, n := range names {
		if n == name {
			return kinds[i]
		}
	}
	return ""
}
