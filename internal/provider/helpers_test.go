package provider

// MustNew is New for this package's tests; it panics on error. The exported
// equivalent for other packages is providertest.MustNew.
func MustNew(opts ...Option) *Provider {
	p, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return p
}
