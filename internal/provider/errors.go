package provider

import "fmt"

// NestedColumnTypeError reports a source column that is bound to a nested
// TABLE model column but whose cell value is not a nested rowset. Before this
// error existed, a mistyped nested column was silently treated as an empty
// nested table, which yields wrong predictions instead of a diagnosis.
type NestedColumnTypeError struct {
	// Column is the model's TABLE column name.
	Column string
	// Got is the rowset type name of the offending value.
	Got string
}

func (e *NestedColumnTypeError) Error() string {
	return fmt.Sprintf("provider: column %q is bound to a nested TABLE column but the source value is %s, not a nested table",
		e.Column, e.Got)
}
