package provider

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/rowset"
)

// TestSessionPreparedScoped proves prepared-statement names are per-session:
// the same name on two sessions binds two different statements, and
// deallocating on one session leaves the other's handle intact.
func TestSessionPreparedScoped(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE T (ID LONG, V DOUBLE)")
	mustExec(t, p, "INSERT INTO T VALUES (1, 10), (2, 20)")
	ctx := context.Background()

	s1, s2 := p.NewSession(), p.NewSession()
	defer s1.Close() //nolint:errcheck
	defer s2.Close() //nolint:errcheck
	if _, err := s1.Prepare(ctx, "q", "SELECT V FROM T WHERE ID = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Prepare(ctx, "q", "SELECT V FROM T WHERE ID = 2"); err != nil {
		t.Fatal(err)
	}

	want := func(s *Session, exp float64) {
		t.Helper()
		rs, err := s.ExecutePrepared(ctx, "q", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := rs.Row(0)[0]; got != exp {
			t.Fatalf("ExecutePrepared(q) = %v, want %v", got, exp)
		}
	}
	want(s1, 10.0)
	want(s2, 20.0)

	if err := s1.Deallocate("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.ExecutePrepared(ctx, "q", nil); err == nil {
		t.Fatal("s1 still executes q after Deallocate")
	}
	want(s2, 20.0) // the sibling session's handle survives

	// The provider-level flat wrappers run on their own internal session and
	// never saw "q".
	if names := p.PreparedNames(); len(names) != 0 {
		t.Fatalf("provider internal session has prepared statements %v, want none", names)
	}
}

// TestSessionClosed pins the closed-session surface: every entry point
// returns ErrSessionClosed and Close is idempotent.
func TestSessionClosed(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE C (ID LONG)")
	ctx := context.Background()
	s := p.NewSession()
	if _, err := s.Prepare(ctx, "q", "SELECT ID FROM C"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Execute(ctx, "SELECT ID FROM C"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Execute after Close: %v, want ErrSessionClosed", err)
	}
	if _, err := s.Prepare(ctx, "q2", "SELECT ID FROM C"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Prepare after Close: %v, want ErrSessionClosed", err)
	}
	if _, err := s.ExecutePrepared(ctx, "q", nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("ExecutePrepared after Close: %v, want ErrSessionClosed", err)
	}
}

// TestSessionAdmissionBusy drives the admission gate directly: with
// max-in-flight 1, one statement holds the slot, one waits in the queue, and
// the third is shed with a typed BusyError while the queue-depth and
// rejection metrics track each transition.
func TestSessionAdmissionBusy(t *testing.T) {
	p := MustNew()
	s := p.NewSession(WithSessionMaxInFlight(1))
	defer s.Close() //nolint:errcheck
	ctx := context.Background()

	if err := s.adm.acquire(ctx); err != nil { // occupies the single slot
		t.Fatal(err)
	}
	if got := p.admInFlight.Value(); got != 1 {
		t.Fatalf("admission_inflight = %d, want 1", got)
	}

	// Second acquire parks in the queue until the slot frees.
	waited := make(chan error, 1)
	go func() { waited <- s.adm.acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for p.admQueueDepth.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never reached the wait queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Slot taken, queue full: the third caller is shed immediately.
	err := s.adm.acquire(ctx)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("third acquire: %v, want *BusyError", err)
	}
	if !IsBusy(err) || busy.MaxInFlight != 1 {
		t.Fatalf("BusyError = %+v, IsBusy = %v", busy, IsBusy(err))
	}
	if got := p.admRejected.Value(); got != 1 {
		t.Fatalf("admission_rejected_total = %d, want 1", got)
	}

	s.adm.release() // frees the slot; the queued caller takes it
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	s.adm.release()
	if got := p.admInFlight.Value(); got != 0 {
		t.Fatalf("admission_inflight after release = %d, want 0", got)
	}
	if got := p.admQueueDepth.Value(); got != 0 {
		t.Fatalf("admission_queue_depth after release = %d, want 0", got)
	}
}

// TestSessionAdmissionQueueRespectsCancel: a caller parked in the wait queue
// leaves when its context is cancelled instead of waiting forever.
func TestSessionAdmissionQueueRespectsCancel(t *testing.T) {
	p := MustNew()
	s := p.NewSession(WithSessionMaxInFlight(1))
	defer s.Close() //nolint:errcheck
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release()

	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan error, 1)
	go func() { waited <- s.adm.acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for p.admQueueDepth.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waited; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued acquire: %v, want context.Canceled", err)
	}
	if got := p.admQueueDepth.Value(); got != 0 {
		t.Fatalf("admission_queue_depth after cancel = %d, want 0", got)
	}
}

// TestNamesSorted pins the ordering contract on both catalogs: ModelNames
// and PreparedNames return ascending order regardless of insertion order.
func TestNamesSorted(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE N (ID LONG, V DOUBLE)")
	for _, m := range []string{"Zeta", "Alpha", "Mid"} {
		mustExec(t, p, fmt.Sprintf(`CREATE MINING MODEL [%s] (
			[ID] LONG KEY, [V] DOUBLE CONTINUOUS PREDICT) USING [Decision_Trees]`, m))
	}
	if names := p.ModelNames(); !sort.StringsAreSorted(names) || len(names) != 3 {
		t.Fatalf("ModelNames() = %v, want 3 sorted names", names)
	}

	ctx := context.Background()
	s := p.NewSession()
	defer s.Close() //nolint:errcheck
	for _, n := range []string{"zq", "aq", "mq"} {
		if _, err := s.Prepare(ctx, n, "SELECT V FROM N"); err != nil {
			t.Fatal(err)
		}
	}
	if names := s.PreparedNames(); !sort.StringsAreSorted(names) || len(names) != 3 {
		t.Fatalf("PreparedNames() = %v, want 3 sorted names", names)
	}
}

// TestSnapshotReadersUnderTrainingLoop is the snapshot/epoch stress test:
// eight reader sessions issue point predictions and $SYSTEM catalog reads
// while a training loop drops, re-creates, and retrains a second model. On
// the copy-on-write catalog the readers must (a) never fail, (b) never see a
// torn snapshot — predictions stay inside the training envelope, the
// catalog rowset always lists coherent rows — and (c) keep completing while
// training commits are in flight. Run under -race this also proves the
// snapshot swap itself is race-clean.
func TestSnapshotReadersUnderTrainingLoop(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE People (ID LONG, Gender TEXT, Age DOUBLE)")
	var vals []string
	for i := 1; i <= 40; i++ {
		g := "Male"
		if i%2 == 0 {
			g = "Female"
		}
		vals = append(vals, fmt.Sprintf("(%d, '%s', %d)", i, g, 20+i%30))
	}
	mustExec(t, p, "INSERT INTO People VALUES "+joinStrs(vals))

	const stableDDL = `CREATE MINING MODEL [Stable] (
		[ID] LONG KEY, [Gender] TEXT DISCRETE, [Age] DOUBLE CONTINUOUS PREDICT
	) USING [Decision_Trees]`
	const churnDDL = `CREATE MINING MODEL [Churn] (
		[ID] LONG KEY, [Gender] TEXT DISCRETE, [Age] DOUBLE CONTINUOUS PREDICT
	) USING [Decision_Trees]`
	const trainStable = `INSERT INTO [Stable] ([ID], [Gender], [Age]) SELECT ID, Gender, Age FROM People`
	const trainChurn = `INSERT INTO [Churn] ([ID], [Gender], [Age]) SELECT ID, Gender, Age FROM People`
	mustExec(t, p, stableDDL)
	mustExec(t, p, trainStable)
	mustExec(t, p, churnDDL)

	const lo, hi = 20.0, 50.0
	predictQ := `SELECT t.ID, Predict([Age]) AS est FROM [Stable]
		NATURAL PREDICTION JOIN (SELECT ID, Gender FROM People WHERE ID = %d) AS t`

	const readers = 8
	const opsPerReader = 40
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	trainingDone := make(chan struct{})

	// Training loop: catalog churn (drop + create = two snapshot swaps per
	// round) plus full training commits, all serialized on commitMu.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(trainingDone)
		sess := p.NewSession(WithSessionOrigin("trainer"))
		defer sess.Close() //nolint:errcheck
		ctx := context.Background()
		for i := 0; i < 10; i++ {
			for _, stmt := range []string{trainChurn, "DROP MINING MODEL [Churn]", churnDDL} {
				if _, err := sess.Execute(ctx, stmt); err != nil {
					errc <- fmt.Errorf("trainer: %w", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := p.NewSession(WithSessionOrigin(fmt.Sprintf("reader-%d", r)))
			defer sess.Close() //nolint:errcheck
			ctx := context.Background()
			var worst time.Duration
			for i := 0; i < opsPerReader; i++ {
				begin := time.Now()
				if i%4 == 3 {
					// Catalog read: the model list must always be coherent
					// and sorted, whatever swap interleaving we land on.
					rs, err := sess.Execute(ctx, "SELECT * FROM $SYSTEM.MINING_MODELS")
					if err != nil {
						errc <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
					if n := rs.Len(); n < 1 || n > 2 {
						errc <- fmt.Errorf("reader %d: torn catalog: %d models listed", r, n)
						return
					}
				} else {
					rs, err := sess.Execute(ctx, fmt.Sprintf(predictQ, i%40+1))
					if err != nil {
						errc <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
					f, ok := rowset.ToFloat(rs.Row(0)[1])
					if !ok || f < lo || f >= hi {
						errc <- fmt.Errorf("reader %d: torn prediction %v outside [%v, %v)", r, rs.Row(0)[1], lo, hi)
						return
					}
				}
				if d := time.Since(begin); d > worst {
					worst = d
				}
			}
			// Readers never block behind a training commit, so even under
			// -race on a loaded host no single read should take seconds. The
			// bound is deliberately loose: it catches lock-convoy regressions
			// (reads queueing behind training), not scheduler jitter.
			if worst > 5*time.Second {
				errc <- fmt.Errorf("reader %d: slowest read took %v — readers are blocking on training", r, worst)
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	<-trainingDone
	if names := p.ModelNames(); !sort.StringsAreSorted(names) {
		t.Errorf("ModelNames() after churn = %v, want sorted", names)
	}
}
