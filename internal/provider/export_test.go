package provider

import (
	"context"

	"repro/internal/dmx"
	"repro/internal/rowset"
)

// Context-free execution shims, compiled only into the test binary. The
// production surface is context-first (Session.Execute and the deprecated
// Provider.ExecuteContext wrappers); tests exercising statement behavior
// rather than cancellation keep the short spelling.

func (p *Provider) Execute(command string) (*rowset.Rowset, error) {
	return p.ExecuteContext(context.Background(), command)
}

func (p *Provider) ExecuteScript(script string) (*rowset.Rowset, error) {
	return p.ExecuteScriptContext(context.Background(), script)
}

func (p *Provider) ExecuteDMX(st dmx.Statement) (*rowset.Rowset, error) {
	return p.session.execDMXChecked(context.Background(), st)
}
