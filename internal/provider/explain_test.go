package provider

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rowset"
)

const predictAgeQuery = `SELECT t.[Customer ID], Predict([Age]) FROM [Age Prediction]
	NATURAL PREDICTION JOIN
	(SELECT [Customer ID], Gender, Age FROM Customers) AS t`

// explainRows decodes an EXPLAIN result into a convenient struct list.
type explainRow struct {
	spanID, parentID, depth int64
	parentNull              bool
	operator, label         string
	elapsedUS, rows         rowset.Value // nil for plan-only
}

func decodeExplain(t *testing.T, rs *rowset.Rowset) []explainRow {
	t.Helper()
	for _, want := range []string{"SPAN_ID", "PARENT_ID", "DEPTH", "OPERATOR", "LABEL", "ELAPSED_US", "ROWS"} {
		if _, ok := rs.Schema().Lookup(want); !ok {
			t.Fatalf("EXPLAIN result misses column %s (have %v)", want, rs.Schema().Names())
		}
	}
	ord := func(name string) int {
		o, _ := rs.Schema().Lookup(name)
		return o
	}
	var out []explainRow
	for _, r := range rs.Rows() {
		er := explainRow{
			spanID:    r[ord("SPAN_ID")].(int64),
			depth:     r[ord("DEPTH")].(int64),
			operator:  r[ord("OPERATOR")].(string),
			label:     r[ord("LABEL")].(string),
			elapsedUS: r[ord("ELAPSED_US")],
			rows:      r[ord("ROWS")],
		}
		if r[ord("PARENT_ID")] == nil {
			er.parentNull = true
		} else {
			er.parentID = r[ord("PARENT_ID")].(int64)
		}
		out = append(out, er)
	}
	return out
}

func operators(rows []explainRow) string {
	ops := make([]string, len(rows))
	for i, r := range rows {
		ops[i] = r.operator
	}
	return strings.Join(ops, ",")
}

func findOp(rows []explainRow, op string) *explainRow {
	for i := range rows {
		if rows[i].operator == op {
			return &rows[i]
		}
	}
	return nil
}

// TestExplainPlanOnly: bare EXPLAIN renders the operator plan without running
// the statement — ELAPSED_US/ROWS are NULL and no model training happens.
func TestExplainPlanOnly(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 40)
	mustExec(t, p, createAgeModel)

	rs := mustExec(t, p, "EXPLAIN "+insertAgeModel)
	rows := decodeExplain(t, rs)
	if len(rows) < 5 {
		t.Fatalf("EXPLAIN INSERT plan has %d spans (%s), want several", len(rows), operators(rows))
	}
	if rows[0].operator != "statement" || !rows[0].parentNull || rows[0].depth != 0 {
		t.Fatalf("first row is %+v, want depth-0 statement root with NULL parent", rows[0])
	}
	for _, op := range []string{"caseset", "shape", "append", "select", "scan", "bind", "train", "tokenize"} {
		if findOp(rows, op) == nil {
			t.Errorf("plan misses operator %q (have %s)", op, operators(rows))
		}
	}
	if tr := findOp(rows, "train"); tr != nil && !strings.Contains(tr.label, "Decision_Trees_101") {
		t.Errorf("train span label = %q, want the algorithm name", tr.label)
	}
	for _, r := range rows {
		if r.elapsedUS != nil || r.rows != nil {
			t.Fatalf("plan-only span %s has measured values %v/%v, want NULL", r.operator, r.elapsedUS, r.rows)
		}
	}
	// The statement was planned, not run: the model must still be untrained.
	if _, err := p.Execute(predictAgeQuery); err == nil ||
		!strings.Contains(err.Error(), "not populated") {
		t.Fatalf("model trained by bare EXPLAIN (predict err = %v)", err)
	}
}

// TestExplainAnalyzePredict is the acceptance path: EXPLAIN ANALYZE of a
// PREDICTION JOIN returns a measured span tree whose per-operator times are
// consistent with the query log's elapsed time for the statement.
func TestExplainAnalyzePredict(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 60)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	rs := mustExec(t, p, "EXPLAIN ANALYZE "+predictAgeQuery)
	rows := decodeExplain(t, rs)
	if rows[0].operator != "statement" || !rows[0].parentNull {
		t.Fatalf("root row = %+v", rows[0])
	}
	for _, op := range []string{"caseset", "select", "scan", "predict"} {
		if findOp(rows, op) == nil {
			t.Fatalf("measured tree misses operator %q (have %s)", op, operators(rows))
		}
	}
	pr := findOp(rows, "predict")
	if !strings.Contains(pr.label, "model=Age Prediction") {
		t.Errorf("predict span label = %q, want model name", pr.label)
	}
	if pr.rows.(int64) != 60 {
		t.Errorf("predict span rows = %v, want 60", pr.rows)
	}
	if sc := findOp(rows, "scan"); sc.rows.(int64) != 60 {
		t.Errorf("scan span rows = %v, want 60", sc.rows)
	}

	// Every span is measured, children nest inside their parents' time, and
	// the direct children of the root sum to no more than the root.
	byID := map[int64]explainRow{}
	for _, r := range rows {
		if r.elapsedUS == nil || r.rows == nil {
			t.Fatalf("ANALYZE span %s has NULL measurements", r.operator)
		}
		byID[r.spanID] = r
	}
	var childSum int64
	for _, r := range rows[1:] {
		parent := byID[r.parentID]
		if r.elapsedUS.(int64) > parent.elapsedUS.(int64)+1000 {
			t.Errorf("span %s (%dus) exceeds parent %s (%dus)",
				r.operator, r.elapsedUS, parent.operator, parent.elapsedUS)
		}
		if r.depth == 1 {
			childSum += r.elapsedUS.(int64)
		}
	}
	rootUS := rows[0].elapsedUS.(int64)
	if childSum > rootUS+1000 {
		t.Errorf("depth-1 spans sum to %dus, exceeding the root's %dus", childSum, rootUS)
	}

	// The query log recorded the EXPLAIN statement itself; the span tree's
	// root must account for (nearly all of) that elapsed time.
	var logged bool
	for _, rec := range p.Obs().QueryLog().Snapshot() {
		if rec.Kind != "EXPLAIN" || !strings.HasPrefix(rec.Statement, "EXPLAIN ANALYZE") {
			continue
		}
		logged = true
		if rootUS > rec.Elapsed.Microseconds()+1000 {
			t.Errorf("root span %dus exceeds query-log elapsed %dus", rootUS, rec.Elapsed.Microseconds())
		}
		if rec.Elapsed-time.Duration(rootUS)*time.Microsecond > 250*time.Millisecond {
			t.Errorf("query-log elapsed %v far exceeds root span %dus", rec.Elapsed, rootUS)
		}
	}
	if !logged {
		t.Fatal("EXPLAIN ANALYZE statement missing from DM_QUERY_LOG")
	}
}

// TestExplainAnalyzeInsertExecutes: ANALYZE really runs the statement — the
// model is trained afterwards and the train span carries the case count.
func TestExplainAnalyzeInsertExecutes(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 30)
	mustExec(t, p, createAgeModel)

	rs := mustExec(t, p, "EXPLAIN ANALYZE "+insertAgeModel)
	rows := decodeExplain(t, rs)
	tr := findOp(rows, "train")
	if tr == nil {
		t.Fatalf("measured INSERT tree misses train span (have %s)", operators(rows))
	}
	if tr.rows.(int64) != 30 {
		t.Errorf("train span rows = %v, want 30", tr.rows)
	}
	if findOp(rows, "tokenize") == nil || findOp(rows, "bind") == nil {
		t.Errorf("INSERT tree misses bind/tokenize spans (have %s)", operators(rows))
	}
	mustExec(t, p, predictAgeQuery) // trained: predicts without error
}

// TestExplainSQLAndShape: non-DMX commands explain too, re-dispatched by
// prefix exactly like unprefixed execution.
func TestExplainSQLAndShape(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 20)

	rows := decodeExplain(t, mustExec(t, p,
		"EXPLAIN SELECT Gender, COUNT(*) FROM Customers WHERE Age > 30 GROUP BY Gender"))
	for _, op := range []string{"select", "scan", "filter", "group-by"} {
		if findOp(rows, op) == nil {
			t.Errorf("SQL plan misses %q (have %s)", op, operators(rows))
		}
	}
	if rows[0].label != "SQL" {
		t.Errorf("root label = %q, want SQL", rows[0].label)
	}

	rows = decodeExplain(t, mustExec(t, p, `EXPLAIN ANALYZE SHAPE
		{SELECT [Customer ID] FROM Customers}
		APPEND ({SELECT CustID, Quantity FROM Sales} RELATE [Customer ID] TO [CustID]) AS [Purchases]`))
	for _, op := range []string{"shape", "append", "select", "scan"} {
		if findOp(rows, op) == nil {
			t.Errorf("SHAPE tree misses %q (have %s)", op, operators(rows))
		}
	}
	if sh := findOp(rows, "shape"); sh.rows.(int64) != 20 {
		t.Errorf("shape span rows = %v, want 20", sh.rows)
	}
}

// TestExplainErrors: malformed EXPLAIN forms are rejected at parse time.
func TestExplainErrors(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 5)
	for _, src := range []string{
		"EXPLAIN",
		"EXPLAIN ANALYZE",
		"EXPLAIN EXPLAIN SELECT Gender FROM Customers",
		"EXPLAIN ANALYZE EXPLAIN SELECT Gender FROM Customers",
	} {
		if _, err := p.Execute(src); err == nil {
			t.Errorf("Execute(%q) succeeded, want parse error", src)
		}
	}
}

// TestDMTraceRowset: $SYSTEM.DM_TRACE retains recent statements' span trees
// and joins DM_QUERY_LOG on SEQ.
func TestDMTraceRowset(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 40)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	mustExec(t, p, predictAgeQuery)

	rs := mustExec(t, p, "SELECT * FROM $SYSTEM.DM_TRACE")
	ord := func(name string) int {
		o, ok := rs.Schema().Lookup(name)
		if !ok {
			t.Fatalf("DM_TRACE misses column %s", name)
		}
		return o
	}
	seqs := map[int64]map[string]bool{}
	for _, r := range rs.Rows() {
		seq := r[ord("SEQ")].(int64)
		if seqs[seq] == nil {
			seqs[seq] = map[string]bool{}
		}
		seqs[seq][r[ord("OPERATOR")].(string)] = true
	}
	// Every logged statement so far must have a retained span tree whose SEQ
	// matches a DM_QUERY_LOG record. (The DM_TRACE select itself is not yet
	// finished, so it is absent.)
	var predictSeq int64
	for _, rec := range p.Obs().QueryLog().Snapshot() {
		if rec.Kind == "PREDICT" {
			predictSeq = rec.Seq
		}
	}
	if predictSeq == 0 {
		t.Fatal("no PREDICT record in query log")
	}
	ops := seqs[predictSeq]
	for _, op := range []string{"statement", "caseset", "predict", "scan"} {
		if !ops[op] {
			t.Errorf("PREDICT trace (seq %d) misses operator %q (have %v)", predictSeq, op, ops)
		}
	}
	if len(seqs) < 4 {
		t.Errorf("DM_TRACE retains %d statements, want at least 4", len(seqs))
	}
}
