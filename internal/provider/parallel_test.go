package provider

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dmx"
	"repro/internal/rowset"
	"repro/internal/sqlengine"
)

// predictionQueries covers the prediction-join surface the parallel scan must
// keep byte-identical: natural and ON joins, nested-table inputs, prediction
// functions, WHERE filters, ORDER BY, and TOP (with and without ORDER BY).
var predictionQueries = []string{
	`SELECT t.[Customer ID], Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t`,
	`SELECT t.[Customer ID], Predict([Age]), PredictProbability([Age]) FROM [Age Prediction]
		PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t
		ON [Age Prediction].Gender = t.Gender`,
	`SELECT t.[Customer ID], Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t
		WHERE t.Gender = 'Male'`,
	`SELECT TOP 7 t.[Customer ID], Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t
		ORDER BY Predict([Age]) DESC`,
	`SELECT TOP 5 t.[Customer ID] FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t`,
	`SELECT t.[Customer ID], PredictHistogram([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t`,
}

// trainedProvider builds a provider at the given parallelism with identical
// data and a populated [Age Prediction] model.
func trainedProviderWorkers(t *testing.T, workers, n int) *Provider {
	t.Helper()
	p := MustNew(WithParallelism(workers))
	setupCustomerData(t, p, n)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	return p
}

// TestParallelPredictionMatchesSequential asserts the parallel scan produces
// byte-identical rowsets to the sequential path (ISSUE acceptance criterion).
func TestParallelPredictionMatchesSequential(t *testing.T) {
	seq := trainedProviderWorkers(t, 1, 60)
	parl := trainedProviderWorkers(t, 8, 60)
	for _, q := range predictionQueries {
		want := mustExec(t, seq, q)
		got := mustExec(t, parl, q)
		var wb, gb bytes.Buffer
		if err := want.Encode(&wb); err != nil {
			t.Fatal(err)
		}
		if err := got.Encode(&gb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
			t.Errorf("query %.60q...: parallel rowset differs from sequential (%d vs %d rows)",
				q, got.Len(), want.Len())
		}
	}
}

// TestParallelInsertMatchesSequential asserts that training through the
// parallel row-reshaping path yields the same model content as sequential.
func TestParallelInsertMatchesSequential(t *testing.T) {
	seq := trainedProviderWorkers(t, 1, 60)
	parl := trainedProviderWorkers(t, 8, 60)
	q := "SELECT * FROM [Age Prediction].CONTENT"
	want, got := mustExec(t, seq, q), mustExec(t, parl, q)
	var wb, gb bytes.Buffer
	if err := want.Encode(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.Encode(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Errorf("model content differs between sequential and parallel training scans")
	}
}

// TestParallelErrorIsDeterministic plants a failure in the WHERE clause that
// only some rows trigger and checks both paths report the same (first) error.
func TestParallelErrorIsDeterministic(t *testing.T) {
	q := `SELECT t.[Customer ID] FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t
		WHERE PredictProbability([Nope]) > 0`
	seq := trainedProviderWorkers(t, 1, 40)
	parl := trainedProviderWorkers(t, 8, 40)
	_, errSeq := seq.Execute(q)
	_, errPar := parl.Execute(q)
	if errSeq == nil || errPar == nil {
		t.Fatalf("expected errors, got seq=%v par=%v", errSeq, errPar)
	}
	if errSeq.Error() != errPar.Error() {
		t.Errorf("error mismatch:\n  sequential: %v\n  parallel:   %v", errSeq, errPar)
	}
}

// TestPredictionNestedColumnTypeError covers the former silent-empty bug: a
// source cell bound to a nested TABLE column whose value is not a rowset must
// surface a typed error naming the column, not predict from an empty basket.
func TestPredictionNestedColumnTypeError(t *testing.T) {
	p := trainedProviderWorkers(t, 1, 30)
	e, err := p.entry("Age Prediction")
	if err != nil {
		t.Fatal(err)
	}
	nestedSrc := rowset.MustSchema(rowset.Column{Name: "Product Name", Type: rowset.TypeText})
	srcSchema := rowset.MustSchema(
		rowset.Column{Name: "Gender", Type: rowset.TypeText},
		rowset.Column{Name: "Product Purchases", Type: rowset.TypeTable, Nested: nestedSrc},
	)
	bindings := naturalBindings(e.model.Def, srcSchema)
	plan, outCols, err := bindColumns(e.model.Def.Name, e.model.Def.Columns, bindings, srcSchema, true)
	if err != nil {
		t.Fatal(err)
	}
	modelSchema, err := rowset.NewSchema(outCols...)
	if err != nil {
		t.Fatal(err)
	}
	frozen := *e.tokenizer
	frozen.Freeze()
	binder, err := frozen.NewCaseBinder(modelSchema)
	if err != nil {
		t.Fatal(err)
	}
	pp := &predictPlan{
		provider: p,
		entry:    e,
		ps:       &dmx.PredictionSelect{Model: "Age Prediction"},
		plan:     plan,
		binder:   binder,
		schema:   srcSchema,
		items:    []sqlengine.SelectItem{{Expr: &sqlengine.ColumnRef{Name: "Gender"}}},
	}
	// The schema claims a nested table but the cell carries a string.
	_, err = pp.evalCase(rowset.Row{"Male", "not-a-rowset"})
	var nte *NestedColumnTypeError
	if !errors.As(err, &nte) {
		t.Fatalf("err = %v, want *NestedColumnTypeError", err)
	}
	if nte.Column != "Product Purchases" {
		t.Errorf("error names column %q, want Product Purchases", nte.Column)
	}
	// A nil cell still means an empty basket, not an error.
	if _, err := pp.evalCase(rowset.Row{"Male", nil}); err != nil {
		t.Errorf("nil nested cell: %v", err)
	}
}
