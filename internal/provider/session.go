package provider

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rowset"
)

// ErrSessionClosed is returned by every Session method after Close.
var ErrSessionClosed = errors.New("provider: session is closed")

// BusyError reports that a session's admission gate rejected a statement:
// the in-flight limit was reached and the wait queue was full. It is a
// back-pressure signal — the caller should retry later or shed load — and is
// recorded in the query log with error class "busy".
type BusyError struct {
	// MaxInFlight is the session's concurrent-statement limit.
	MaxInFlight int
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("provider: session is busy (%d statements in flight and the wait queue is full); retry later", e.MaxInFlight)
}

// IsBusy reports whether err is an admission-control rejection.
func IsBusy(err error) bool {
	var be *BusyError
	return errors.As(err, &be)
}

// Session is one consumer's handle onto the provider — the session object of
// the OLE DB model, where commands execute in the context of the session that
// created them. Sessions are cheap to create (one per connection, tool, or
// actor) and independent: prepared-statement names are scoped to the session
// that PREPAREd them, the session's origin label flows into the query log,
// and admission control bounds how many statements the session may have in
// flight at once. All execution methods are context-first; cancellation
// aborts the statement.
//
// A Session serializes nothing by itself: concurrent Execute calls on one
// session (or many) proceed in parallel against the provider's immutable
// catalog snapshots.
type Session struct {
	p      *Provider
	origin string
	adm    *admission

	// inFlight counts statements currently executing past the admission
	// gate, surfaced per connection as DM_CONNECTIONS.ADMISSION_INFLIGHT.
	inFlight atomic.Int64

	// mu guards the session-scoped prepared-statement registry and the
	// closed flag; execution itself never holds it.
	//
	//dmlint:guard mu: Session.prepared, Session.closed, preparedStmt.plan
	mu       sync.Mutex
	closed   bool
	prepared map[string]*preparedStmt // keyed by lower-cased handle name
}

// Origin returns the session's origin label.
func (s *Session) Origin() string { return s.origin }

// InFlight returns the number of statements the session is currently
// executing past admission.
func (s *Session) InFlight() int64 { return s.inFlight.Load() }

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	origin      string
	maxInFlight int
}

// WithSessionOrigin labels every statement the session executes (a remote
// address, a tool name) in the query log, unless a per-call WithOrigin
// overrides it.
func WithSessionOrigin(origin string) SessionOption {
	return func(c *sessionConfig) { c.origin = origin }
}

// WithSessionMaxInFlight overrides the provider-level in-flight statement
// limit for this session. n <= 0 means unbounded.
func WithSessionMaxInFlight(n int) SessionOption {
	return func(c *sessionConfig) { c.maxInFlight = n }
}

// NewSession opens a session. The zero configuration inherits the provider's
// origin-less query log labeling and its WithMaxInFlight admission limit.
// Close the session when its connection ends; closing releases its prepared
// statements.
func (p *Provider) NewSession(opts ...SessionOption) *Session {
	cfg := sessionConfig{maxInFlight: p.maxInFlight}
	for _, o := range opts {
		o(&cfg)
	}
	return &Session{
		p:        p,
		origin:   cfg.origin,
		adm:      newAdmission(cfg.maxInFlight, p),
		prepared: make(map[string]*preparedStmt),
	}
}

// Close marks the session closed and drops its prepared statements.
// Statements already in flight finish normally; new calls return
// ErrSessionClosed. Close is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.prepared = make(map[string]*preparedStmt)
	return nil
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Execute runs one DMX or SQL statement (standalone SHAPE included) and
// returns its result rowset. It is the primary execution entry point: ctx
// cancellation aborts the statement (checked inside the worker-pool scan
// loops, so a runaway PREDICTION JOIN stops promptly), and every statement is
// timed per stage and recorded in the query log and the provider metrics —
// queryable afterwards as $SYSTEM.DM_QUERY_LOG and
// $SYSTEM.DM_PROVIDER_METRICS.
func (s *Session) Execute(ctx context.Context, command string, opts ...ExecOption) (*rowset.Rowset, error) {
	return s.run(ctx, command, opts, func(ctx context.Context, t *obs.Trace) (*rowset.Rowset, error) {
		return s.executeTracedArgs(ctx, t, command, nil, false)
	})
}

// ExecuteScript runs a multi-statement script (statements separated by
// semicolons) and returns the last statement's result. Each statement passes
// through Execute, so all of them land in the query log and cancellation is
// honoured between and inside statements.
func (s *Session) ExecuteScript(ctx context.Context, script string, opts ...ExecOption) (*rowset.Rowset, error) {
	stmts, err := splitStatements(script)
	if err != nil {
		return nil, err
	}
	var last *rowset.Rowset
	for _, st := range stmts {
		last, err = s.Execute(ctx, st, opts...)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecuteParams runs one command with positional arguments bound to its
// placeholders — server-side parameters without a named handle (the wire
// protocol's one-shot parameterized execution).
func (s *Session) ExecuteParams(ctx context.Context, command string, args []rowset.Value, opts ...ExecOption) (*rowset.Rowset, error) {
	return s.run(ctx, command, opts, func(ctx context.Context, t *obs.Trace) (*rowset.Rowset, error) {
		return s.executeTracedArgs(ctx, t, command, args, true)
	})
}

// Prepare compiles command and registers it under name in this session,
// returning the number of parameter placeholders the statement declares. It
// is the API form of PREPARE <name> AS <command> and records a query-log
// entry like any other statement. Handles are session-scoped: the same name
// on two sessions names two independent statements.
func (s *Session) Prepare(ctx context.Context, name, command string, opts ...ExecOption) (int, error) {
	n := 0
	_, err := s.run(ctx, "PREPARE "+name+" AS "+command, opts, func(ctx context.Context, t *obs.Trace) (*rowset.Rowset, error) {
		t.SetKind("PREPARE")
		pl, err := s.prepareNamed(ctx, t, name, command)
		if err != nil {
			return nil, err
		}
		n = len(pl.params)
		return status("statement prepared")
	})
	return n, err
}

// ExecutePrepared runs the prepared statement name with args bound to its
// placeholders, by position. It is the API form of EXECUTE <name> (...).
func (s *Session) ExecutePrepared(ctx context.Context, name string, args []rowset.Value, opts ...ExecOption) (*rowset.Rowset, error) {
	return s.run(ctx, "EXECUTE "+name, opts, func(ctx context.Context, t *obs.Trace) (*rowset.Rowset, error) {
		t.SetKind("EXECUTE")
		return s.runPrepared(ctx, t, name, args, true)
	})
}

// Deallocate drops the prepared statement name from this session. Unknown
// names are a no-op, so statement Close paths can call it unconditionally.
func (s *Session) Deallocate(name string) error {
	s.removePrepared(name)
	return nil
}

// run wraps one statement execution with the admission gate plus the trace,
// query-log, and metrics plumbing shared by every execution entry point.
// label is what the query log records as the statement text. Rejections —
// already-cancelled contexts, a closed session, admission busy — still get a
// query-log record, so the log accounts for every submission.
func (s *Session) run(ctx context.Context, label string, opts []ExecOption, fn func(context.Context, *obs.Trace) (*rowset.Rowset, error)) (*rowset.Rowset, error) {
	p := s.p
	var cfg execConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.origin == "" {
		cfg.origin = s.origin
	}
	var t *obs.Trace
	if p.obs != nil {
		t = obs.NewTrace(label, cfg.origin)
		// The flight recorder flips on per-operator detail while a statement
		// class is running hot; SetKind consults it during dispatch.
		t.SetDetailSource(p.obs.FlightRecorder())
		ctx = obs.WithTrace(ctx, t)
	}
	var rs *rowset.Rowset
	err := ctx.Err()
	if err == nil && s.isClosed() {
		err = ErrSessionClosed
	}
	admitted := false
	if err == nil {
		if err = s.adm.acquire(ctx); err == nil {
			admitted = true
			s.inFlight.Add(1)
			rs, err = fn(ctx, t)
			s.inFlight.Add(-1)
		}
	}
	if admitted {
		s.adm.release()
	}
	if p.obs != nil {
		if rs != nil {
			t.SetRowsOut(int64(rs.Len()))
		}
		rec := t.Finish(errorClass(t, err))
		seq := p.obs.QueryLog().Append(rec)
		if cfg.seqOut != nil {
			*cfg.seqOut = seq
		}
		p.obs.FlightRecorder().Consider(obs.FlightRecord{
			Seq:       seq,
			Start:     rec.Start,
			Statement: rec.Statement,
			Kind:      rec.Kind,
			Origin:    rec.Origin,
			ErrClass:  rec.ErrClass,
			Elapsed:   rec.Elapsed,
			Root:      t.Root(),
		})
		p.execTotal.Inc()
		p.latency.Observe(rec.Elapsed.Microseconds())
		p.stmtsByClass.With(classLabel(rec.Kind)).Inc()
		p.latByClass.With(classLabel(rec.Kind)).Observe(rec.Elapsed.Microseconds())
		if rec.Origin != "" {
			p.stmtsByOrigin.With(rec.Origin).Inc()
		}
		if err != nil {
			p.execErrors.Inc()
			if rec.ErrClass == "cancelled" {
				p.execCancels.Inc()
			}
		} else {
			p.rowsOut.Add(rec.RowsOut)
		}
	}
	return rs, err
}

// classLabel maps a statement kind onto the vec label space; unclassified
// statements group under "unknown" rather than an empty label.
func classLabel(kind string) string {
	if kind == "" {
		return "unknown"
	}
	return kind
}

// admission is a session's statement gate: at most max statements in flight,
// at most max more waiting. The gate exists so one flooding connection
// degrades into typed BusyErrors instead of unbounded goroutine and memory
// growth inside the provider — the queue absorbs bursts, the busy error sheds
// sustained overload.
type admission struct {
	slots chan struct{} // in-flight tokens; buffered to max
	queue chan struct{} // waiting tokens; buffered to max
	max   int

	inFlight   *obs.Gauge
	queueDepth *obs.Gauge
	rejected   *obs.Counter
}

// newAdmission builds a gate for max concurrent statements; max <= 0 means
// unbounded (acquire and release become no-ops). Gauges and counters live on
// the provider registry so $SYSTEM.DM_PROVIDER_METRICS aggregates the gate
// state across sessions.
func newAdmission(max int, p *Provider) *admission {
	if max <= 0 {
		return nil
	}
	return &admission{
		slots:      make(chan struct{}, max),
		queue:      make(chan struct{}, max),
		max:        max,
		inFlight:   p.admInFlight,
		queueDepth: p.admQueueDepth,
		rejected:   p.admRejected,
	}
}

// acquire takes an in-flight slot, waiting in the bounded queue if none is
// free. It returns a *BusyError when the queue is full, and the context
// error if ctx is cancelled while waiting.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Inc()
		return nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejected.Inc()
		return &BusyError{MaxInFlight: a.max}
	}
	a.queueDepth.Inc()
	defer func() {
		<-a.queue
		a.queueDepth.Dec()
	}()
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Inc()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	if a == nil {
		return
	}
	<-a.slots
	a.inFlight.Dec()
}
