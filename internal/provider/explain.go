package provider

import (
	"context"
	"fmt"

	"repro/internal/dmx"
	"repro/internal/lex"
	"repro/internal/obs"
	"repro/internal/rowset"
	"repro/internal/schemarowset"
	"repro/internal/shape"
	"repro/internal/sqlengine"
)

// explainStmt executes EXPLAIN [ANALYZE]. Bare EXPLAIN builds the operator
// plan as a span tree without running the statement and renders it with NULL
// times and row counts. EXPLAIN ANALYZE runs the wrapped statement under the
// statement's trace and renders the measured span tree — per-operator wall
// time and rows — as the result rowset.
func (s *Session) explainStmt(ctx context.Context, ex *dmx.Explain) (*rowset.Rowset, error) {
	if !ex.Analyze {
		root, err := s.p.planSpan(ex)
		if err != nil {
			return nil, err
		}
		return schemarowset.Explain(root, false)
	}
	t := obs.FromContext(ctx)
	if t == nil {
		// Observability is disabled (or the caller bypassed ExecuteContext):
		// ANALYZE still needs a span collector, so run under a local trace
		// that lives only for this statement.
		t = obs.NewTrace(ex.Command, "")
		t.SetKind("EXPLAIN")
		ctx = obs.WithTrace(ctx, t)
	}
	// Per-operator wall time is sampled only under ANALYZE: detailed mode
	// makes streaming operators read the clock around every row, a cost
	// normal traced execution must not pay (spans there count rows only).
	t.SetDetailed(true)
	rs, err := s.executeExplained(ctx, t, ex)
	if err != nil {
		return nil, err
	}
	return schemarowset.Explain(t.SpanTree(int64(rs.Len())), true)
}

// executeExplained dispatches the wrapped statement exactly as
// executeTracedArgs would have dispatched it unprefixed: parsed DMX runs
// through the checked DMX path, a SHAPE source through the shaping service,
// anything else through the SQL engine. The parser rejects nested EXPLAIN,
// so this cannot recurse.
func (s *Session) executeExplained(ctx context.Context, t *obs.Trace, ex *dmx.Explain) (*rowset.Rowset, error) {
	p := s.p
	if ex.Stmt != nil {
		return s.execDMXChecked(ctx, ex.Stmt)
	}
	if sc := lex.NewScanner(ex.Command); sc.Peek().Is("SHAPE") {
		defer t.StartStage(obs.StageSource)()
		return shape.ExecuteStringContext(ctx, p.Engine, ex.Command)
	}
	defer t.StartStage(obs.StageScan)()
	return p.Engine.ExecContext(ctx, ex.Command)
}

// planSpan builds the plan-only span tree for a statement that has not run:
// the same operator nodes execution would record, in execution order, with
// zero Elapsed/Rows.
func (p *Provider) planSpan(ex *dmx.Explain) (*obs.Span, error) {
	root := obs.NewSpan("statement", "")
	switch st := ex.Stmt.(type) {
	case nil:
		if sc := lex.NewScanner(ex.Command); sc.Peek().Is("SHAPE") {
			q, err := shape.ParseString(ex.Command)
			if err != nil {
				return nil, err
			}
			root.SetLabel("SHAPE")
			root.Add(q.PlanSpan())
			return root, nil
		}
		root.SetLabel("SQL")
		sql, err := sqlengine.Parse(ex.Command)
		if err != nil {
			return nil, err
		}
		if sel, ok := sql.(*sqlengine.SelectStmt); ok {
			// The engine's plan span resolves real tables, so it carries the
			// cost-based choices (scan estimates, index pushdown, join
			// build side) rather than the shape-only fallback.
			root.Add(p.Engine.PlanSpan(sel))
		} else {
			root.Add(obs.NewSpan("sql", fmt.Sprintf("%T", sql)))
		}
		return root, nil
	case *dmx.PredictionSelect:
		root.SetLabel("PREDICT")
		root.Add(sourcePlanSpan(st.Source))
		root.Add(obs.NewSpan("predict", "model="+st.Model))
		return root, nil
	case *dmx.InsertInto:
		root.SetLabel("INSERT MODEL")
		root.Add(sourcePlanSpan(st.Source))
		root.Add(obs.NewSpan("bind", ""))
		train := obs.NewSpan("train", "")
		if def, err := p.ModelDef(st.Model); err == nil {
			train.SetLabel("algorithm=" + def.Algorithm)
		}
		train.Add(obs.NewSpan("tokenize", ""))
		root.Add(train)
		return root, nil
	default:
		// Catalogue and metadata statements have no operator pipeline; the
		// plan is the statement itself.
		root.SetLabel(statementKind(st))
		root.Add(obs.NewSpan("dmx", statementKind(st)))
		return root, nil
	}
}

// sourcePlanSpan plans the caseset assembly feeding a mining statement.
func sourcePlanSpan(src dmx.Source) *obs.Span {
	sp := obs.NewSpan("caseset", "")
	switch {
	case src.Shape != nil:
		sp.Add(src.Shape.PlanSpan())
	case src.Select != nil:
		sp.Add(src.Select.PlanSpan())
	}
	return sp
}
