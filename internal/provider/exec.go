package provider

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dmx"
	"repro/internal/dmx/sem"
	"repro/internal/lex"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/rowset"
	"repro/internal/schemarowset"
	"repro/internal/shape"
)

// ExecOption configures one execution call.
type ExecOption func(*execConfig)

type execConfig struct {
	origin string
	seqOut *int64
}

// WithOrigin labels where the statement came from (a remote address, a tool
// name); the label is recorded in the $SYSTEM.DM_QUERY_LOG rowset. It
// overrides the session's WithSessionOrigin label for this call.
func WithOrigin(origin string) ExecOption {
	return func(c *execConfig) { c.origin = origin }
}

// WithSeqOut asks the execution to write the statement's query-log sequence
// number into *seq when the statement completes (success or failure). The
// seq correlates the caller's view of a statement with its DM_QUERY_LOG and
// DM_FLIGHT_RECORDER rows — dmserver forwards it to clients in the stats
// trailer. With observability disabled *seq is left untouched.
func WithSeqOut(seq *int64) ExecOption {
	return func(c *execConfig) { c.seqOut = seq }
}

// ---------- flat Provider entry points (wrappers over an internal session) ----------
//
// The Session API is the primary surface; these delegate to a provider-owned
// session so existing embedders keep working. They share that one session's
// prepared-statement namespace and admission gate.

// ExecuteContext runs one statement on the provider's internal session.
//
// Deprecated: use [Provider.NewSession] and [Session.Execute]; sessions scope
// prepared statements and admission per consumer.
func (p *Provider) ExecuteContext(ctx context.Context, command string, opts ...ExecOption) (*rowset.Rowset, error) {
	return p.session.Execute(ctx, command, opts...)
}

// ExecuteScriptContext runs a multi-statement script on the provider's
// internal session.
//
// Deprecated: use [Provider.NewSession] and [Session.ExecuteScript].
func (p *Provider) ExecuteScriptContext(ctx context.Context, script string, opts ...ExecOption) (*rowset.Rowset, error) {
	return p.session.ExecuteScript(ctx, script, opts...)
}

// ExecuteParamsContext runs one command with positional arguments on the
// provider's internal session.
//
// Deprecated: use [Provider.NewSession] and [Session.ExecuteParams].
func (p *Provider) ExecuteParamsContext(ctx context.Context, command string, args []rowset.Value, opts ...ExecOption) (*rowset.Rowset, error) {
	return p.session.ExecuteParams(ctx, command, args, opts...)
}

// ---------- statement pipeline (session-scoped) ----------

// executeTracedArgs dispatches one command, attributing stage time to the
// trace carried by ctx (t may be nil: every trace method is a no-op then).
// Plannable statements go through the plan cache: the normalized command text
// is the key, so keyword case and insignificant whitespace hit the same
// entry. args bind the command's placeholders; hasArgs distinguishes "zero
// arguments supplied" from plain (unparameterized) execution.
func (s *Session) executeTracedArgs(ctx context.Context, t *obs.Trace, command string, args []rowset.Value, hasArgs bool) (*rowset.Rowset, error) {
	p := s.p
	if sc := lex.NewScanner(command); sc.Peek().Is("SHAPE") {
		if hasArgs && len(args) > 0 {
			return nil, fmt.Errorf("provider: SHAPE statements take no parameters")
		}
		t.SetKind("SHAPE")
		defer t.StartStage(obs.StageSource)()
		return shape.ExecuteStringContext(ctx, p.Engine, command)
	}
	// PREPARE / EXECUTE / DEALLOCATE manage the cache rather than live in it:
	// dispatch them directly so control statements never pollute hit/miss
	// counters (and a PREPARE's raw text is never a cache key).
	if sc := lex.NewScanner(command); sc.Peek().Is("PREPARE") || sc.Peek().Is("EXECUTE") || sc.Peek().Is("DEALLOCATE") {
		if hasArgs && len(args) > 0 {
			return nil, fmt.Errorf("provider: %s statements take no separate arguments", strings.ToUpper(sc.Peek().Text))
		}
		stopParse := t.StartStage(obs.StageParse)
		st, err := dmx.Parse(command, p.IsModel)
		stopParse()
		if err != nil {
			t.SetErrClass("parse")
			return nil, err
		}
		t.SetKind(statementKind(st))
		return s.execDMXChecked(ctx, st)
	}
	key := plancache.Normalize(command)
	if v, ok := p.planCache.Get(key); ok {
		pl := v.(*plan)
		return s.runPlan(ctx, t, pl, args, hasArgs)
	}
	// Snapshot the DDL epoch before compiling: if any DDL lands while this
	// plan is being built, Put drops the store rather than caching a plan
	// that may already be stale.
	epoch := p.versions.Epoch()
	pl, err := p.compileCommand(ctx, t, command)
	if err != nil {
		return nil, err
	}
	if pl.cacheable {
		p.planCache.Put(key, pl, pl.deps, epoch)
	}
	return s.runPlan(ctx, t, pl, args, hasArgs)
}

// execDMXChecked runs a parsed DMX statement. Statements are bound by the
// semantic checker first, so name and type errors surface with source
// positions before any execution work starts.
func (s *Session) execDMXChecked(ctx context.Context, st dmx.Statement) (*rowset.Rowset, error) {
	t := obs.FromContext(ctx)
	stopBind := t.StartStage(obs.StageBind)
	err := sem.Check(st, s.p)
	stopBind()
	if err != nil {
		return nil, err
	}
	return s.execDMX(ctx, st)
}

// execDMX dispatches an already-checked DMX statement. Plans run through
// here directly: they were semantic-checked at compile time and dependency
// versioning guarantees the catalog they were checked against still stands,
// so re-checking on every (cached or prepared) execution would only buy
// latency. Catalog reads resolve against the current immutable snapshot, so
// no dispatch arm takes a lock.
func (s *Session) execDMX(ctx context.Context, st dmx.Statement) (*rowset.Rowset, error) {
	p := s.p
	t := obs.FromContext(ctx)
	switch st := st.(type) {
	case *dmx.Explain:
		return s.explainStmt(ctx, st)
	case *dmx.CreateModel:
		return p.createModel(st.Def)
	case *dmx.InsertInto:
		return p.insertInto(ctx, st)
	case *dmx.PredictionSelect:
		return p.predictionSelect(ctx, st)
	case *dmx.ContentSelect:
		e, err := p.entry(st.Model)
		if err != nil {
			return nil, err
		}
		trained := e.model.Trained
		if trained == nil {
			return nil, fmt.Errorf("provider: model %q is not populated; INSERT INTO it first", st.Model)
		}
		return content.Rowset(e.model.Def.Name, trained.Content())
	case *dmx.ColumnsSelect:
		e, err := p.entry(st.Model)
		if err != nil {
			return nil, err
		}
		return schemarowset.ModelColumns(e.model)
	case *dmx.CasesSelect:
		return p.casesRowset(st.Model)
	case *dmx.PMMLSelect:
		return p.pmmlRowset(st.Model)
	case *dmx.SchemaRowsetSelect:
		// allModels hands back entries from one atomic snapshot: Build sees a
		// consistent catalog even while a training commit publishes the next
		// one, and never blocks behind it.
		return schemarowset.Build(st.Rowset, p.allModels(), p.Registry, p.obs)
	case *dmx.DeleteFrom:
		return p.deleteFrom(st.Model)
	case *dmx.DropModel:
		return p.dropModel(st.Name)
	case *dmx.Prepare:
		if _, err := s.prepareNamed(ctx, t, st.Name, st.Command); err != nil {
			return nil, err
		}
		return status("statement prepared")
	case *dmx.ExecutePrepared:
		return s.runPrepared(ctx, t, st.Name, st.Args, true)
	case *dmx.Deallocate:
		return s.deallocateRS(st.Name)
	}
	return nil, fmt.Errorf("provider: unsupported DMX statement %T", st)
}

// statementKind labels a DMX statement class for the query log.
func statementKind(st dmx.Statement) string {
	switch st.(type) {
	case *dmx.Explain:
		return "EXPLAIN"
	case *dmx.CreateModel:
		return "CREATE MODEL"
	case *dmx.InsertInto:
		return "INSERT MODEL"
	case *dmx.PredictionSelect:
		return "PREDICT"
	case *dmx.ContentSelect:
		return "CONTENT"
	case *dmx.ColumnsSelect:
		return "COLUMNS"
	case *dmx.CasesSelect:
		return "CASES"
	case *dmx.PMMLSelect:
		return "PMML"
	case *dmx.SchemaRowsetSelect:
		return "SCHEMA ROWSET"
	case *dmx.DeleteFrom:
		return "DELETE MODEL"
	case *dmx.DropModel:
		return "DROP MODEL"
	case *dmx.Prepare:
		return "PREPARE"
	case *dmx.ExecutePrepared:
		return "EXECUTE"
	case *dmx.Deallocate:
		return "DEALLOCATE"
	}
	return "DMX"
}

// errorClass buckets an execution error for the query log: parse (set by the
// parse stage), semantic (binder diagnostics), not_found (catalogue misses),
// cancelled (context cancellation or deadline), busy (admission rejection),
// or exec for everything else.
func errorClass(t *obs.Trace, err error) string {
	if err == nil {
		return ""
	}
	if c := t.ErrClass(); c != "" {
		return c
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "cancelled"
	}
	if IsBusy(err) {
		return "busy"
	}
	if core.IsNotFound(err) {
		return "not_found"
	}
	var diags sem.Diagnostics
	if errors.As(err, &diags) {
		return "semantic"
	}
	return "exec"
}
