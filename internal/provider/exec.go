package provider

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dmx"
	"repro/internal/dmx/sem"
	"repro/internal/lex"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/rowset"
	"repro/internal/schemarowset"
	"repro/internal/shape"
)

// ExecOption configures one ExecuteContext call.
type ExecOption func(*execConfig)

type execConfig struct {
	origin string
}

// WithOrigin labels where the statement came from (a remote address, a tool
// name); the label is recorded in the $SYSTEM.DM_QUERY_LOG rowset.
func WithOrigin(origin string) ExecOption {
	return func(c *execConfig) { c.origin = origin }
}

// ExecuteContext runs one DMX or SQL statement and returns its result
// rowset; standalone SHAPE statements are also accepted and return the
// hierarchical rowset they assemble. It is the provider's primary entry
// point: ctx cancellation aborts the statement (checked inside the
// worker-pool scan loops, so a runaway PREDICTION JOIN stops promptly), and
// every statement is timed per stage and recorded in the query log and the
// provider metrics — queryable afterwards as $SYSTEM.DM_QUERY_LOG and
// $SYSTEM.DM_PROVIDER_METRICS.
func (p *Provider) ExecuteContext(ctx context.Context, command string, opts ...ExecOption) (*rowset.Rowset, error) {
	return p.run(ctx, command, opts, func(ctx context.Context, t *obs.Trace) (*rowset.Rowset, error) {
		return p.executeTracedArgs(ctx, t, command, nil, false)
	})
}

// run wraps one statement execution with the trace, query-log, and metrics
// plumbing shared by every public execution entry point. label is what the
// query log records as the statement text.
func (p *Provider) run(ctx context.Context, label string, opts []ExecOption, fn func(context.Context, *obs.Trace) (*rowset.Rowset, error)) (*rowset.Rowset, error) {
	var cfg execConfig
	for _, o := range opts {
		o(&cfg)
	}
	var t *obs.Trace
	if p.obs != nil {
		t = obs.NewTrace(label, cfg.origin)
		ctx = obs.WithTrace(ctx, t)
	}
	var rs *rowset.Rowset
	// A statement arriving already cancelled still gets a query-log record
	// (class "cancelled"), so the log accounts for every submission.
	err := ctx.Err()
	if err == nil {
		rs, err = fn(ctx, t)
	}
	if p.obs != nil {
		if rs != nil {
			t.SetRowsOut(int64(rs.Len()))
		}
		rec := t.Finish(errorClass(t, err))
		seq := p.obs.QueryLog().Append(rec)
		p.obs.Traces().Append(obs.TraceRecord{
			Seq:       seq,
			Start:     rec.Start,
			Statement: rec.Statement,
			Kind:      rec.Kind,
			ErrClass:  rec.ErrClass,
			Root:      t.Root(),
		})
		p.execTotal.Inc()
		p.latency.Observe(rec.Elapsed.Microseconds())
		if err != nil {
			p.execErrors.Inc()
			if rec.ErrClass == "cancelled" {
				p.execCancels.Inc()
			}
		} else {
			p.rowsOut.Add(rec.RowsOut)
		}
	}
	return rs, err
}

// Execute runs one statement without cancellation or an origin label. It is
// ExecuteContext with a background context, kept as the convenience form for
// callers that have no context to thread.
func (p *Provider) Execute(command string) (*rowset.Rowset, error) {
	return p.ExecuteContext(context.Background(), command) //dmlint:allow ctxflow — documented context-free convenience form; ExecuteContext is the primary API.
}

// ExecuteScriptContext runs a multi-statement script (statements separated
// by semicolons) and returns the last statement's result. Each statement
// passes through ExecuteContext, so all of them land in the query log and
// cancellation is honoured between and inside statements.
func (p *Provider) ExecuteScriptContext(ctx context.Context, script string, opts ...ExecOption) (*rowset.Rowset, error) {
	stmts, err := splitStatements(script)
	if err != nil {
		return nil, err
	}
	var last *rowset.Rowset
	for _, s := range stmts {
		last, err = p.ExecuteContext(ctx, s, opts...)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecuteScript is ExecuteScriptContext with a background context.
func (p *Provider) ExecuteScript(script string) (*rowset.Rowset, error) {
	return p.ExecuteScriptContext(context.Background(), script) //dmlint:allow ctxflow — documented context-free convenience form; ExecuteScriptContext is the primary API.
}

// executeTracedArgs dispatches one command, attributing stage time to the
// trace carried by ctx (t may be nil: every trace method is a no-op then).
// Plannable statements go through the plan cache: the normalized command text
// is the key, so keyword case and insignificant whitespace hit the same
// entry. args bind the command's placeholders; hasArgs distinguishes "zero
// arguments supplied" from plain (unparameterized) execution.
func (p *Provider) executeTracedArgs(ctx context.Context, t *obs.Trace, command string, args []rowset.Value, hasArgs bool) (*rowset.Rowset, error) {
	if sc := lex.NewScanner(command); sc.Peek().Is("SHAPE") {
		if hasArgs && len(args) > 0 {
			return nil, fmt.Errorf("provider: SHAPE statements take no parameters")
		}
		t.SetKind("SHAPE")
		defer t.StartStage(obs.StageSource)()
		return shape.ExecuteStringContext(ctx, p.Engine, command)
	}
	// PREPARE / EXECUTE / DEALLOCATE manage the cache rather than live in it:
	// dispatch them directly so control statements never pollute hit/miss
	// counters (and a PREPARE's raw text is never a cache key).
	if sc := lex.NewScanner(command); sc.Peek().Is("PREPARE") || sc.Peek().Is("EXECUTE") || sc.Peek().Is("DEALLOCATE") {
		if hasArgs && len(args) > 0 {
			return nil, fmt.Errorf("provider: %s statements take no separate arguments", strings.ToUpper(sc.Peek().Text))
		}
		stopParse := t.StartStage(obs.StageParse)
		st, err := dmx.Parse(command, p.IsModel)
		stopParse()
		if err != nil {
			t.SetErrClass("parse")
			return nil, err
		}
		t.SetKind(statementKind(st))
		return p.ExecuteDMXContext(ctx, st)
	}
	key := plancache.Normalize(command)
	if v, ok := p.planCache.Get(key); ok {
		pl := v.(*plan)
		return p.runPlan(ctx, t, pl, args, hasArgs)
	}
	// Snapshot the DDL epoch before compiling: if any DDL lands while this
	// plan is being built, Put drops the store rather than caching a plan
	// that may already be stale.
	epoch := p.versions.Epoch()
	pl, err := p.compileCommand(ctx, t, command)
	if err != nil {
		return nil, err
	}
	if pl.cacheable {
		p.planCache.Put(key, pl, pl.deps, epoch)
	}
	return p.runPlan(ctx, t, pl, args, hasArgs)
}

// ExecuteDMXContext runs a parsed DMX statement. Statements are bound by the
// semantic checker first, so name and type errors surface with source
// positions before any execution work starts.
func (p *Provider) ExecuteDMXContext(ctx context.Context, st dmx.Statement) (*rowset.Rowset, error) {
	t := obs.FromContext(ctx)
	stopBind := t.StartStage(obs.StageBind)
	err := sem.Check(st, p)
	stopBind()
	if err != nil {
		return nil, err
	}
	return p.execDMX(ctx, st)
}

// execDMX dispatches an already-checked DMX statement. Plans run through
// here directly: they were semantic-checked at compile time and dependency
// versioning guarantees the catalog they were checked against still stands,
// so re-checking on every (cached or prepared) execution would only buy
// latency.
func (p *Provider) execDMX(ctx context.Context, st dmx.Statement) (*rowset.Rowset, error) {
	t := obs.FromContext(ctx)
	switch s := st.(type) {
	case *dmx.Explain:
		return p.explainStmt(ctx, s)
	case *dmx.CreateModel:
		return p.createModel(s.Def)
	case *dmx.InsertInto:
		return p.insertInto(ctx, s)
	case *dmx.PredictionSelect:
		return p.predictionSelect(ctx, s)
	case *dmx.ContentSelect:
		e, err := p.entry(s.Model)
		if err != nil {
			return nil, err
		}
		p.mu.RLock()
		trained := e.model.Trained
		p.mu.RUnlock()
		if trained == nil {
			return nil, fmt.Errorf("provider: model %q is not populated; INSERT INTO it first", s.Model)
		}
		return content.Rowset(e.model.Def.Name, trained.Content())
	case *dmx.ColumnsSelect:
		e, err := p.entry(s.Model)
		if err != nil {
			return nil, err
		}
		return schemarowset.ModelColumns(e.model)
	case *dmx.CasesSelect:
		return p.casesRowset(s.Model)
	case *dmx.PMMLSelect:
		return p.pmmlRowset(s.Model)
	case *dmx.SchemaRowsetSelect:
		// Build reads Trained/Space/CaseCount off every model, so the read
		// lock must cover the build itself, not just the catalogue snapshot —
		// a concurrent INSERT INTO rewrites those fields under the write lock.
		// The obs registry has its own locks and never takes p.mu, so holding
		// p.mu across the observability rowsets cannot deadlock.
		p.mu.RLock()
		defer p.mu.RUnlock()
		return schemarowset.Build(s.Rowset, p.modelsLocked(), p.Registry, p.obs)
	case *dmx.DeleteFrom:
		return p.deleteFrom(s.Model)
	case *dmx.DropModel:
		return p.dropModel(s.Name)
	case *dmx.Prepare:
		if _, err := p.prepareNamed(ctx, t, s.Name, s.Command); err != nil {
			return nil, err
		}
		return status("statement prepared")
	case *dmx.ExecutePrepared:
		return p.runPrepared(ctx, t, s.Name, s.Args, true)
	case *dmx.Deallocate:
		return p.deallocateRS(s.Name)
	}
	return nil, fmt.Errorf("provider: unsupported DMX statement %T", st)
}

// ExecuteDMX is ExecuteDMXContext with a background context.
func (p *Provider) ExecuteDMX(st dmx.Statement) (*rowset.Rowset, error) {
	return p.ExecuteDMXContext(context.Background(), st) //dmlint:allow ctxflow — documented context-free convenience form; ExecuteDMXContext is the primary API.
}

// statementKind labels a DMX statement class for the query log.
func statementKind(st dmx.Statement) string {
	switch st.(type) {
	case *dmx.Explain:
		return "EXPLAIN"
	case *dmx.CreateModel:
		return "CREATE MODEL"
	case *dmx.InsertInto:
		return "INSERT MODEL"
	case *dmx.PredictionSelect:
		return "PREDICT"
	case *dmx.ContentSelect:
		return "CONTENT"
	case *dmx.ColumnsSelect:
		return "COLUMNS"
	case *dmx.CasesSelect:
		return "CASES"
	case *dmx.PMMLSelect:
		return "PMML"
	case *dmx.SchemaRowsetSelect:
		return "SCHEMA ROWSET"
	case *dmx.DeleteFrom:
		return "DELETE MODEL"
	case *dmx.DropModel:
		return "DROP MODEL"
	case *dmx.Prepare:
		return "PREPARE"
	case *dmx.ExecutePrepared:
		return "EXECUTE"
	case *dmx.Deallocate:
		return "DEALLOCATE"
	}
	return "DMX"
}

// errorClass buckets an execution error for the query log: parse (set by the
// parse stage), semantic (binder diagnostics), not_found (catalogue misses),
// cancelled (context cancellation or deadline), or exec for everything else.
func errorClass(t *obs.Trace, err error) string {
	if err == nil {
		return ""
	}
	if c := t.ErrClass(); c != "" {
		return c
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return "cancelled"
	}
	if core.IsNotFound(err) {
		return "not_found"
	}
	var diags sem.Diagnostics
	if errors.As(err, &diags) {
		return "semantic"
	}
	return "exec"
}
