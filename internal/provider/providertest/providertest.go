// Package providertest holds test-only helpers for packages that exercise a
// provider: the panicking constructor lives here, outside the library proper,
// so production code paths surface errors instead of panicking (the dmlint
// nopanic rule).
package providertest

import "repro/internal/provider"

// MustNew is provider.New for tests and benchmarks; it panics on error.
func MustNew(opts ...provider.Option) *provider.Provider {
	p, err := provider.New(opts...)
	if err != nil {
		panic(err)
	}
	return p
}
