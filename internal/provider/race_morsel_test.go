package provider

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Morsel-eligible shapes (single table, no index pushdown): the GROUP BY
// statement takes the morselAggregate path, the filter statement the
// morselProject path. The JOIN statement exercises the hash-join build +
// batch probe under the same concurrency.
const (
	morselGroupBy = `SELECT Gender, COUNT(*), AVG(Age), MIN(Age), MAX(Age)
		FROM Customers GROUP BY Gender ORDER BY Gender`
	morselFilter = `SELECT [Customer ID], Gender, Age FROM Customers
		WHERE Age > 21 AND Age < 60 AND Gender = 'Male'`
	hashJoinQ = `SELECT c.[Customer ID], s.[Product Name], s.Quantity
		FROM Customers c JOIN Sales s ON c.[Customer ID] = s.CustID
		ORDER BY c.[Customer ID], s.[Product Name], s.Quantity`
)

// forcedMorselProvider returns a provider whose engine always takes the
// morsel-parallel path: Vec.Force overrides both the table-size threshold and
// the single-core worker gate, so the fan-out machinery runs even on hosts
// where GOMAXPROCS would disable it.
func forcedMorselProvider(t testing.TB, rows int) *Provider {
	t.Helper()
	p := MustNew(WithParallelism(4))
	p.Engine.Vec.Force = true
	setupCustomerData(t, p, rows)
	return p
}

// TestMorselParallelUnderConcurrentTraining runs morsel-parallel GROUP BY and
// scans plus hash-join builds from eight concurrent sessions while a training
// loop churns the model catalog (train, drop, re-create — two snapshot swaps
// per round). Under -race this proves the per-morsel aggregation workers, the
// shared table snapshot, and the join build side are race-clean against
// catalog commits; the byte comparison against single-threaded baselines
// proves the morsel-order merge keeps results deterministic under any
// interleaving.
func TestMorselParallelUnderConcurrentTraining(t *testing.T) {
	p := forcedMorselProvider(t, 300)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	queries := []string{morselGroupBy, morselFilter, hashJoinQ}
	baseline := make([][]byte, len(queries))
	for i, q := range queries {
		var buf bytes.Buffer
		if err := mustExec(t, p, q).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		baseline[i] = buf.Bytes()
	}

	const churnDDL = `CREATE MINING MODEL [Churn] (
		[Customer ID] LONG KEY, [Gender] TEXT DISCRETE, [Age] DOUBLE CONTINUOUS PREDICT
	) USING [Decision_Trees]`
	const trainChurn = `INSERT INTO [Churn] ([Customer ID], [Gender], [Age])
		SELECT [Customer ID], Gender, Age FROM Customers`
	mustExec(t, p, churnDDL)

	const readers = 8
	const opsPerReader = 24
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := p.NewSession(WithSessionOrigin("trainer"))
		defer sess.Close() //nolint:errcheck
		ctx := context.Background()
		for i := 0; i < 8; i++ {
			for _, stmt := range []string{trainChurn, "DROP MINING MODEL [Churn]", churnDDL} {
				if _, err := sess.Execute(ctx, stmt); err != nil {
					errc <- fmt.Errorf("trainer: %w", err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := p.NewSession(WithSessionOrigin(fmt.Sprintf("reader-%d", r)))
			defer sess.Close() //nolint:errcheck
			ctx := context.Background()
			for i := 0; i < opsPerReader; i++ {
				qi := (r + i) % len(queries)
				rs, err := sess.Execute(ctx, queries[qi])
				if err != nil {
					errc <- fmt.Errorf("reader %d: %.50q: %w", r, queries[qi], err)
					return
				}
				var buf bytes.Buffer
				if err := rs.Encode(&buf); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(buf.Bytes(), baseline[qi]) {
					errc <- fmt.Errorf("reader %d: %.50q: result differs from baseline (%d rows)",
						r, queries[qi], rs.Len())
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestMorselEarlyAbandonNoGoroutineLeak abandons morsel-parallel statements
// partway — contexts cancelled at staggered points over the scan's lifetime,
// plus TOP statements whose consumer closes the batch pipeline early after
// the first few rows — and asserts every fan-out worker exits: the goroutine
// count settles back to the pre-stress baseline.
func TestMorselEarlyAbandonNoGoroutineLeak(t *testing.T) {
	p := forcedMorselProvider(t, 300)
	baseline := runtime.NumGoroutine()

	// TOP without ORDER BY streams: the drain stops pulling after 5 rows and
	// closes the cursor with batches still unconsumed.
	const earlyClose = `SELECT TOP 5 [Customer ID], Age FROM Customers WHERE Age > 20`

	sess := p.NewSession(WithSessionOrigin("abandoner"))
	defer sess.Close() //nolint:errcheck
	stmts := []string{morselGroupBy, morselFilter, earlyClose}
	for i := 0; i < 48; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(i%12) * 100 * time.Microsecond
		timer := time.AfterFunc(delay, cancel)
		_, err := sess.Execute(ctx, stmts[i%len(stmts)])
		timer.Stop()
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("statement %d: unexpected error class: %v", i, err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
