package provider

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rowset"
)

// TestConcurrentPredictAndRetrain hammers one provider with concurrent
// PREDICTION JOIN readers while writers retrain the same model via INSERT
// INTO. Run under -race it proves the frozen-tokenizer copies and the
// provider RWMutex keep the parallel scan race-clean; the assertions prove
// every query observed a coherent model — old or new, never a torn one.
func TestConcurrentPredictAndRetrain(t *testing.T) {
	p := MustNew(WithParallelism(4))
	mustExec(t, p, "CREATE TABLE People (ID LONG, Gender TEXT, Age DOUBLE)")
	var ins []string
	for i := 1; i <= 30; i++ {
		g := "Male"
		if i%2 == 0 {
			g = "Female"
		}
		ins = append(ins, fmt.Sprintf("(%d, '%s', %d)", i, g, 20+i%30))
	}
	mustExec(t, p, "INSERT INTO People VALUES "+joinStrs(ins))
	mustExec(t, p, `CREATE MINING MODEL [Race Age] (
		[ID] LONG KEY, [Gender] TEXT DISCRETE, [Age] DOUBLE CONTINUOUS PREDICT
	) USING [Decision_Trees]`)
	const retrain = `INSERT INTO [Race Age] ([ID], [Gender], [Age]) SELECT ID, Gender, Age FROM People`
	mustExec(t, p, retrain)

	// All training ages live in [20, 50); whatever interleaving of retrains a
	// query observes, a coherent decision tree can only predict within that
	// envelope. A torn model (half-written trees, a space mid-growth) shows
	// up as an error, a panic under -race, or an out-of-envelope estimate.
	const lo, hi = 20.0, 50.0
	predictQ := `SELECT t.ID, Predict([Age]) AS est FROM [Race Age]
		NATURAL PREDICTION JOIN (SELECT ID, Gender FROM People) AS t`

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				rs, err := p.Execute(predictQ)
				if err != nil {
					errc <- err
					return
				}
				for r := 0; r < rs.Len(); r++ {
					v, err := rs.Value(r, "est")
					if err != nil {
						errc <- err
						return
					}
					f, ok := rowset.ToFloat(v)
					if !ok || f < lo || f >= hi {
						errc <- fmt.Errorf("torn prediction: Predict([Age]) = %v outside [%v, %v)", v, lo, hi)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := p.Execute(retrain); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func joinStrs(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
