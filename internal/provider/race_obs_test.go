package provider

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestConcurrentSessionsWithHistoryAndRecorder drives several sessions at
// once while the metrics-history ticker snapshots the registry and every
// finished statement passes through the flight recorder — with concurrent
// readers rendering $SYSTEM.DM_FLIGHT_RECORDER and DM_METRICS_HISTORY in the
// middle of it. Run under -race this pins the locking of the history ring,
// the recorder's class trackers, and the vec children maps.
func TestConcurrentSessionsWithHistoryAndRecorder(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE Nums (ID LONG, N DOUBLE)")
	var ins []string
	for i := 1; i <= 20; i++ {
		ins = append(ins, fmt.Sprintf("(%d, %d)", i, i*i))
	}
	mustExec(t, p, "INSERT INTO Nums VALUES "+joinStrs(ins))

	// An aggressive ticker so several snapshots land inside the test window.
	stop := p.Obs().StartHistoryTicker(time.Millisecond)
	defer stop()

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := p.NewSession(WithSessionOrigin(fmt.Sprintf("race-%d", w)))
			defer sess.Close()
			for i := 0; i < 25; i++ {
				if _, err := sess.Execute(ctx, "SELECT N FROM Nums WHERE ID = 7"); err != nil {
					errc <- err
					return
				}
				// Mix in failures so the recorder's always-keep path runs
				// concurrently with the reservoir path.
				if i%8 == 3 {
					if _, err := sess.Execute(ctx, "THIS IS NOT SQL"); err == nil {
						errc <- fmt.Errorf("garbage statement succeeded")
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, stmt := range []string{
					"SELECT * FROM $SYSTEM.DM_FLIGHT_RECORDER",
					"SELECT * FROM $SYSTEM.DM_METRICS_HISTORY",
					"SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS",
				} {
					if _, err := p.Execute(stmt); err != nil {
						errc <- fmt.Errorf("%s: %w", stmt, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The window was long enough for the ticker to have fired at least once,
	// and every error statement must have been retained.
	if p.Obs().History().Snapshot() == nil {
		t.Error("history ticker recorded no snapshots")
	}
	errs := 0
	for _, rec := range p.Obs().FlightRecorder().Snapshot() {
		if rec.Reason == obs.KeepError {
			errs++
		}
	}
	if errs == 0 {
		t.Error("flight recorder retained no error statements")
	}
}

// TestSeqRetrievableAfterBurst pins the tail-retention acceptance property:
// a statement kept for cause (here, an error) stays retrievable by its SEQ
// after far more than a ring's worth of faster, unremarkable statements run
// behind it.
func TestSeqRetrievableAfterBurst(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE T (ID LONG)")
	mustExec(t, p, "INSERT INTO T VALUES (1)")

	ctx := context.Background()
	sess := p.NewSession()
	defer sess.Close()

	var seq int64
	if _, err := sess.Execute(ctx, "THIS IS NOT SQL", WithSeqOut(&seq)); err == nil {
		t.Fatal("garbage statement succeeded")
	}
	if seq <= 0 {
		t.Fatalf("WithSeqOut recorded seq %d, want > 0", seq)
	}

	// 2x the recorder capacity of fast statements behind it (> 256).
	for i := 0; i < 2*obs.DefaultFlightRecorderCap; i++ {
		if _, err := sess.Execute(ctx, "SELECT ID FROM T"); err != nil {
			t.Fatal(err)
		}
	}

	rec, ok := p.Obs().FlightRecorder().Find(seq)
	if !ok {
		t.Fatalf("seq %d no longer in the flight recorder after %d statements",
			seq, 2*obs.DefaultFlightRecorderCap)
	}
	if rec.Reason != obs.KeepError {
		t.Errorf("retained reason = %q, want %q", rec.Reason, obs.KeepError)
	}
	if rec.Statement != "THIS IS NOT SQL" {
		t.Errorf("retained statement = %q", rec.Statement)
	}
}
