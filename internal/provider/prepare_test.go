package provider_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/provider/providertest"
	"repro/internal/rowset"
)

func newPrepProvider(t *testing.T, opts ...provider.Option) *provider.Provider {
	t.Helper()
	p := providertest.MustNew(opts...)
	steps := []string{
		"CREATE TABLE People (id LONG, name TEXT, age DOUBLE)",
		"INSERT INTO People VALUES (1, 'Ann', 30), (2, 'O''Brien', 41), (3, 'Bea', 52)",
	}
	for _, s := range steps {
		if _, err := p.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPrepareExecuteDeallocateStatements(t *testing.T) {
	p := newPrepProvider(t)
	if _, err := p.Execute("PREPARE by_id AS SELECT name FROM People WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	rs, err := p.Execute("EXECUTE by_id (2)")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Row(0)[0] != "O'Brien" {
		t.Errorf("EXECUTE by_id (2) = %v", rs)
	}
	// Wrong arity is a clean error.
	if _, err := p.Execute("EXECUTE by_id (1, 2)"); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Errorf("arity mismatch = %v", err)
	}
	// Duplicate PREPARE is rejected.
	if _, err := p.Execute("PREPARE by_id AS SELECT 1"); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Errorf("duplicate prepare = %v", err)
	}
	if _, err := p.Execute("DEALLOCATE by_id"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("EXECUTE by_id (2)"); !core.IsNotFound(err) {
		t.Errorf("execute after deallocate = %v, want not-found", err)
	}
	if _, err := p.Execute("DEALLOCATE by_id"); !core.IsNotFound(err) {
		t.Errorf("double deallocate = %v, want not-found", err)
	}
}

func TestExecuteStringArgsCarryQuotes(t *testing.T) {
	p := newPrepProvider(t)
	if _, err := p.Execute("PREPARE by_name AS SELECT id FROM People WHERE name = ?"); err != nil {
		t.Fatal(err)
	}
	rs, err := p.Execute("EXECUTE by_name ('O''Brien')")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Row(0)[0] != int64(2) {
		t.Errorf("quoted-name lookup = %v", rs)
	}
	// Through the API the value carries its quote with no escaping at all.
	rs, err = p.ExecutePreparedContext(context.Background(), "by_name", []rowset.Value{"O'Brien"})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Row(0)[0] != int64(2) {
		t.Errorf("API quoted-name lookup = %v", rs)
	}
}

func TestPrepareReportsParamCountAndTypeErrors(t *testing.T) {
	p := newPrepProvider(t)
	n, err := p.PrepareContext(context.Background(), "q1", "SELECT name FROM People WHERE id = ? AND age > ?")
	if err != nil || n != 2 {
		t.Fatalf("PrepareContext = %d, %v; want 2 params", n, err)
	}
	// Arguments coerce to the inferred column type; an uncoercible value is
	// a parameter error naming the slot.
	if _, err := p.ExecutePreparedContext(context.Background(), "q1", []rowset.Value{"not a number", 0.0}); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Errorf("uncoercible arg = %v", err)
	}
	// Statements that cannot parse are rejected at prepare time.
	if _, err := p.PrepareContext(context.Background(), "q2", "SELECT FROM WHERE"); err == nil {
		t.Error("prepare must parse the statement")
	}
	// Unknown columns surface as a clean error on execution, never a panic
	// or wrong rows.
	if _, err := p.PrepareContext(context.Background(), "q3", "SELECT nope FROM People"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExecutePreparedContext(context.Background(), "q3", nil); err == nil {
		t.Error("executing a statement with an unknown column must error")
	}
	// Executing a parameterized statement without arguments is an error.
	if _, err := p.Execute("SELECT name FROM People WHERE id = ?"); err == nil || !strings.Contains(err.Error(), "PREPARE") {
		t.Errorf("bare parameterized statement = %v", err)
	}
}

func TestPreparedDMXPredictionWithParams(t *testing.T) {
	p := newPrepProvider(t)
	steps := []string{
		`CREATE MINING MODEL [AgeModel] ([id] LONG KEY, [name] TEXT DISCRETE,
			[age] DOUBLE DISCRETIZED PREDICT) USING [Decision_Trees]`,
		`INSERT INTO [AgeModel] ([id], [name], [age]) SELECT id, name, age FROM People`,
	}
	for _, s := range steps {
		if _, err := p.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	n, err := p.PrepareContext(context.Background(), "predict_one",
		`SELECT Predict([age]) FROM [AgeModel]
		NATURAL PREDICTION JOIN (SELECT name FROM People WHERE name = ?) AS t`)
	if err != nil || n != 1 {
		t.Fatalf("prepare prediction = %d, %v", n, err)
	}
	rs, err := p.ExecutePreparedContext(context.Background(), "predict_one", []rowset.Value{"Ann"})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Errorf("prediction rows = %d", rs.Len())
	}
}

// TestStalePlanReplansAfterSchemaChange is the stale-plan regression test:
// prepare against one schema, drop and recreate the table with a different
// schema, then execute — the statement must replan against the new catalog
// (or fail with the new schema's real error), never return rows shaped by
// the old plan.
func TestStalePlanReplansAfterSchemaChange(t *testing.T) {
	p := newPrepProvider(t)
	if _, err := p.Execute("PREPARE all_people AS SELECT * FROM People"); err != nil {
		t.Fatal(err)
	}
	rs, err := p.Execute("EXECUTE all_people")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Schema().Len() != 3 {
		t.Fatalf("pre-drop columns = %d", rs.Schema().Len())
	}
	for _, s := range []string{
		"DROP TABLE People",
		"CREATE TABLE People (id LONG, city TEXT)", // different shape
		"INSERT INTO People VALUES (1, 'Oslo')",
	} {
		if _, err := p.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	rs, err = p.Execute("EXECUTE all_people")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Schema().Len() != 2 || rs.Len() != 1 || rs.Row(0)[1] != "Oslo" {
		t.Errorf("post-recreate result = %v (schema %v), want the new schema's rows", rs, rs.Schema().Names())
	}
	// A prepared statement whose column vanished with the old schema now
	// fails with the new schema's real error, not the old plan's rows.
	if _, err := p.Execute("PREPARE by_age AS SELECT age FROM People WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("EXECUTE by_age (1)"); err == nil {
		t.Error("age is gone from the new schema; execute must error, not serve the old plan")
	}
}

func TestStalePlanDroppedObjectErrors(t *testing.T) {
	p := newPrepProvider(t)
	if _, err := p.Execute("PREPARE all_people AS SELECT * FROM People"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("DROP TABLE People"); err != nil {
		t.Fatal(err)
	}
	replans := metricValue(t, p, "prepared_replans_total")
	_, err := p.Execute("EXECUTE all_people")
	if err == nil || !strings.Contains(err.Error(), "People") {
		t.Errorf("execute after drop = %v, want the dropped table's error", err)
	}
	// The stale plan was detected and replanned (the replan compiles — table
	// resolution is lazy — and execution then reports the missing table).
	if got := metricValue(t, p, "prepared_replans_total"); got != replans+1 {
		t.Errorf("prepared_replans_total = %d, want %d", got, replans+1)
	}
}

func TestStalePreparedModelReplans(t *testing.T) {
	p := newPrepProvider(t)
	model := `CREATE MINING MODEL [M] ([id] LONG KEY, [name] TEXT DISCRETE,
		[age] DOUBLE DISCRETIZED PREDICT) USING [Decision_Trees]`
	train := `INSERT INTO [M] ([id], [name], [age]) SELECT id, name, age FROM People`
	for _, s := range []string{model, train} {
		if _, err := p.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Execute("PREPARE content AS SELECT * FROM [M].CONTENT"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("EXECUTE content"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("DROP MINING MODEL [M]"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("EXECUTE content"); err == nil {
		t.Error("execute after model drop must fail")
	}
	// Recreating and retraining the model heals the handle via replan.
	for _, s := range []string{model, train} {
		if _, err := p.Execute(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Execute("EXECUTE content"); err != nil {
		t.Errorf("execute after recreate = %v, want replanned success", err)
	}
}

// metricValue reads one counter from the provider's registry. Deliberately
// out of band: a $SYSTEM query would itself travel through the plan cache and
// perturb the very counters under test.
func metricValue(t *testing.T, p *provider.Provider, name string) int64 {
	t.Helper()
	return p.Obs().Counter(name).Value()
}

// TestPlanCacheMetricsQueryable asserts the ISSUE acceptance surface: the
// cache counters show up as rows in $SYSTEM.DM_PROVIDER_METRICS.
func TestPlanCacheMetricsQueryable(t *testing.T) {
	p := newPrepProvider(t)
	if _, err := p.Execute("SELECT name FROM People"); err != nil {
		t.Fatal(err)
	}
	rs, err := p.Execute("SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"plan_cache_hits_total":          false,
		"plan_cache_misses_total":        false,
		"plan_cache_evictions_total":     false,
		"plan_cache_invalidations_total": false,
		"prepared_statements_total":      false,
		"prepared_exec_total":            false,
		"prepared_replans_total":         false,
	}
	for i := 0; i < rs.Len(); i++ {
		name, _ := rs.Row(i)[0].(string)
		if _, tracked := want[name]; tracked {
			want[name] = true
			if _, ok := rs.Row(i)[3].(int64); !ok {
				t.Errorf("metric %s VALUE = %T, want int64", name, rs.Row(i)[3])
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("DM_PROVIDER_METRICS missing %s", name)
		}
	}
}

func TestPlanCacheMetricsAndNormalization(t *testing.T) {
	p := newPrepProvider(t)
	base := metricValue(t, p, "plan_cache_hits_total")
	if _, err := p.Execute("SELECT name FROM People WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// Same statement, different keyword case and whitespace: same plan.
	if _, err := p.Execute("select   name from people WHERE id=1"); err != nil {
		t.Fatal(err)
	}
	if hits := metricValue(t, p, "plan_cache_hits_total"); hits != base+1 {
		t.Errorf("hits = %d, want %d (normalized re-execution must hit)", hits, base+1)
	}
	// A different string literal is a different plan: quoted text must not
	// case-fold into a collision.
	misses := metricValue(t, p, "plan_cache_misses_total")
	if _, err := p.Execute("SELECT id FROM People WHERE name = 'Ann'"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("SELECT id FROM People WHERE name = 'ANN'"); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, p, "plan_cache_misses_total"); got < misses+2 {
		t.Errorf("misses = %d, want >= %d (literal case must not share a plan)", got, misses+2)
	}
	// DDL invalidates cached plans for the table.
	if _, err := p.Execute("DROP TABLE People"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("CREATE TABLE People (id LONG, name TEXT, age DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	inv := metricValue(t, p, "plan_cache_invalidations_total")
	if _, err := p.Execute("SELECT name FROM People WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, p, "plan_cache_invalidations_total"); got != inv+1 {
		t.Errorf("invalidations = %d, want %d", got, inv+1)
	}
}

func TestPreparedMetricsVisible(t *testing.T) {
	p := newPrepProvider(t)
	if _, err := p.Execute("PREPARE q AS SELECT name FROM People WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute("EXECUTE q (1)"); err != nil {
		t.Fatal(err)
	}
	if n := metricValue(t, p, "prepared_statements_total"); n != 1 {
		t.Errorf("prepared_statements_total = %d", n)
	}
	if n := metricValue(t, p, "prepared_exec_total"); n != 1 {
		t.Errorf("prepared_exec_total = %d", n)
	}
}

// TestConcurrentExecuteUnderEvictionPressure hammers a capacity-2 plan cache
// from many goroutines mixing EXECUTE, ad-hoc statements, and DDL bumps; run
// under -race this is the plan-cache thread-safety test. Cached and prepared
// plans are shared across goroutines, so any mutation of a bound AST would
// trip the race detector.
func TestConcurrentExecuteUnderEvictionPressure(t *testing.T) {
	p := newPrepProvider(t, provider.WithPlanCacheCap(2))
	for i := 0; i < 3; i++ {
		if _, err := p.Execute(fmt.Sprintf("PREPARE q%d AS SELECT name FROM People WHERE id = ?", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				switch i % 4 {
				case 0, 1:
					rs, err := p.ExecutePreparedContext(context.Background(), fmt.Sprintf("q%d", i%3), []rowset.Value{int64(i%3 + 1)})
					if err != nil {
						t.Errorf("execute: %v", err)
						return
					}
					if rs.Len() != 1 {
						t.Errorf("rows = %d", rs.Len())
						return
					}
				case 2:
					// Ad-hoc statements churn the tiny cache.
					if _, err := p.Execute(fmt.Sprintf("SELECT id FROM People WHERE age > %d", i+g)); err != nil {
						t.Errorf("adhoc: %v", err)
						return
					}
				case 3:
					// Unrelated DDL moves the epoch under compiling plans.
					name := fmt.Sprintf("Scratch_%d_%d", g, i)
					if _, err := p.Execute("CREATE TABLE " + name + " (x LONG)"); err != nil {
						t.Errorf("ddl: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := metricValue(t, p, "plan_cache_evictions_total"); n == 0 {
		t.Error("capacity-2 cache under churn must evict")
	}
}

func TestShapeStatementsRejectParameters(t *testing.T) {
	p := newPrepProvider(t)
	shape := `SHAPE {SELECT id FROM People ORDER BY id}
	APPEND ({SELECT id AS pid, name FROM People WHERE name = ? ORDER BY pid}
	RELATE id TO pid) AS Kids`
	if _, err := p.Execute("PREPARE s AS " + shape); err == nil || !strings.Contains(err.Error(), "SHAPE") {
		t.Errorf("shape with params = %v, want unsupported error", err)
	}
}
