package provider

// Prepared statements and the plan cache. Every plannable statement (SQL
// SELECT/DML, DMX prediction and browsing selects, INSERT INTO a model)
// compiles into a *plan: the parsed AST plus its parameter slots and the
// catalog objects it references at their current versions. Plans are
// immutable once built — parameter binding clones the AST — so one plan can
// serve concurrent executions out of the LRU cache or a PREPARE handle.
// DROP/CREATE of any referenced model, table, or view bumps that name's
// version, which invalidates cached plans on lookup and makes prepared
// statements replan (or fail with the new schema's real error) instead of
// executing against a stale view of the catalog.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dmx"
	"repro/internal/dmx/sem"
	"repro/internal/lex"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/rowset"
	"repro/internal/shape"
	"repro/internal/sqlengine"
)

// plan is one compiled statement. Exactly one of dmxStmt, sqlStmt, or
// shapeCmd is set. A plan is immutable after compilation: the plan cache
// hands the same *plan to concurrent executions, so any post-construction
// write is a data race. Enforced by the planimmut analyzer.
//
//dmlint:immutable
type plan struct {
	kind     string                // statement class for traces and the query log
	dmxStmt  dmx.Statement         // parsed DMX statement
	sqlStmt  sqlengine.Statement   // parsed SQL statement
	shapeCmd string                // raw standalone SHAPE command
	params   []sqlengine.ParamSlot // placeholder slots, in argument order
	deps     []plancache.Dep       // referenced catalog objects at compile versions
	// cacheable marks plans worth keeping: statements that re-execute
	// meaningfully (queries, DML, model population). DDL and control
	// statements compile but are never cached.
	cacheable bool
}

// preparedStmt is one PREPARE handle, owned by the session that PREPAREd it.
// The plan pointer is swapped under Session.mu when a stale plan is
// recompiled.
type preparedStmt struct {
	name    string
	command string
	plan    *plan
}

// compileCommand parses and compiles one command — DMX, SQL, or SHAPE — into
// a plan, attributing parse and bind time to t.
func (p *Provider) compileCommand(ctx context.Context, t *obs.Trace, command string) (*plan, error) {
	if sc := lex.NewScanner(command); sc.Peek().Is("SHAPE") {
		if commandHasParams(command) {
			return nil, fmt.Errorf("provider: parameters are not supported inside SHAPE statements")
		}
		return &plan{kind: "SHAPE", shapeCmd: command}, nil
	}
	stopParse := t.StartStage(obs.StageParse)
	st, err := dmx.Parse(command, p.IsModel)
	stopParse()
	if err != nil {
		t.SetErrClass("parse")
		return nil, err
	}
	if st == nil {
		stopParse = t.StartStage(obs.StageParse)
		sqlSt, err := sqlengine.Parse(command)
		stopParse()
		if err != nil {
			t.SetErrClass("parse")
			return nil, err
		}
		return p.compileSQL(sqlSt)
	}
	return p.compileDMX(ctx, t, st)
}

// compileSQL assigns parameter slots, infers their types from the columns
// they are compared against, and snapshots the referenced tables' versions.
func (p *Provider) compileSQL(st sqlengine.Statement) (*plan, error) {
	pl := &plan{kind: "SQL", sqlStmt: st}
	switch st.(type) {
	case *sqlengine.SelectStmt, *sqlengine.InsertStmt, *sqlengine.DeleteStmt, *sqlengine.UpdateStmt:
		pl.cacheable = true
	default:
		// DDL compiles (so it can be prepared and re-run) but is never cached
		// and takes no parameters.
		if len(sqlengine.CollectParams(st)) > 0 {
			return nil, fmt.Errorf("provider: parameters are not supported in DDL statements")
		}
		return pl, nil
	}
	slots, err := sqlengine.AssignParams(st)
	if err != nil {
		return nil, err
	}
	tables := sqlengine.ReferencedTables(st)
	sqlengine.InferParamTypes(st, slots, p.columnTypeResolver(tables))
	pl.params = slots
	pl.deps = p.versions.Snapshot(tables)
	return pl, nil
}

// compileDMX semantic-checks the statement (so PREPARE surfaces name and
// type errors immediately), assigns parameter slots where DMX admits
// placeholders, and snapshots dependency versions.
func (p *Provider) compileDMX(ctx context.Context, t *obs.Trace, st dmx.Statement) (*plan, error) {
	_ = ctx
	pl := &plan{kind: statementKind(st), dmxStmt: st}
	stopBind := t.StartStage(obs.StageBind)
	err := sem.Check(st, p)
	stopBind()
	if err != nil {
		return nil, err
	}
	deps := func(names ...string) []plancache.Dep { return p.versions.Snapshot(names) }
	switch s := st.(type) {
	case *dmx.PredictionSelect:
		if s.Source.Shape != nil && shapeHasParams(s.Source.Shape) {
			return nil, fmt.Errorf("provider: parameters are not supported inside SHAPE sources")
		}
		var roots []sqlengine.Expr
		for _, it := range s.Items {
			if !it.Star {
				roots = append(roots, it.Expr)
			}
		}
		roots = append(roots, s.On, s.Where)
		for _, o := range s.OrderBy {
			roots = append(roots, o.Expr)
		}
		slots, tables, err := p.dmxParams(roots, s.Source.Select)
		if err != nil {
			return nil, err
		}
		pl.params = slots
		pl.deps = deps(append([]string{s.Model}, append(tables, shapeTables(s.Source.Shape)...)...)...)
		pl.cacheable = true
	case *dmx.InsertInto:
		if s.Source.Shape != nil && shapeHasParams(s.Source.Shape) {
			return nil, fmt.Errorf("provider: parameters are not supported inside SHAPE sources")
		}
		slots, tables, err := p.dmxParams(nil, s.Source.Select)
		if err != nil {
			return nil, err
		}
		pl.params = slots
		pl.deps = deps(append([]string{s.Model}, append(tables, shapeTables(s.Source.Shape)...)...)...)
		pl.cacheable = true
	case *dmx.ContentSelect:
		pl.deps, pl.cacheable = deps(s.Model), true
	case *dmx.ColumnsSelect:
		pl.deps, pl.cacheable = deps(s.Model), true
	case *dmx.CasesSelect:
		pl.deps, pl.cacheable = deps(s.Model), true
	case *dmx.PMMLSelect:
		pl.deps, pl.cacheable = deps(s.Model), true
	case *dmx.SchemaRowsetSelect:
		pl.cacheable = true
	default:
		// EXPLAIN, model DDL, DELETE FROM, and control statements compile but
		// are not cached and take no parameters.
	}
	return pl, nil
}

// dmxParams collects placeholder slots from the given expression roots plus
// an optional embedded source SELECT (wrapped as a subquery so statement-wide
// collection sees it), inferring types from the source tables. It returns the
// slots and the tables the source references.
func (p *Provider) dmxParams(roots []sqlengine.Expr, src *sqlengine.SelectStmt) ([]sqlengine.ParamSlot, []string, error) {
	var tables []string
	if src != nil {
		roots = append(roots, &sqlengine.Subquery{Query: src})
		tables = sqlengine.ReferencedTables(src)
	}
	var ps []*sqlengine.Param
	sqlengine.WalkExprParams(roots, func(pp *sqlengine.Param) { ps = append(ps, pp) })
	slots, err := sqlengine.AssignOrdinals(ps)
	if err != nil {
		return nil, nil, err
	}
	if src != nil && len(slots) > 0 {
		sqlengine.InferParamTypes(src, slots, p.columnTypeResolver(tables))
	}
	return slots, tables, nil
}

// columnTypeResolver resolves a column reference to its declared type by
// bare-name lookup across the given tables — best-effort input to parameter
// type inference.
func (p *Provider) columnTypeResolver(tables []string) func(*sqlengine.ColumnRef) (rowset.Type, bool) {
	return func(cr *sqlengine.ColumnRef) (rowset.Type, bool) {
		for _, name := range tables {
			tbl, err := p.DB.Table(name)
			if err != nil {
				continue
			}
			if ord, ok := tbl.Schema().Lookup(cr.Name); ok {
				return tbl.Schema().Column(ord).Type, true
			}
		}
		return rowset.TypeNull, false
	}
}

// shapeTables lists the tables a SHAPE query tree references (lower-cased).
func shapeTables(q *shape.Query) []string {
	var out []string
	var walk func(q *shape.Query)
	walk = func(q *shape.Query) {
		if q == nil {
			return
		}
		if q.Root != nil {
			out = append(out, sqlengine.ReferencedTables(q.Root)...)
		}
		for _, a := range q.Appends {
			walk(a.Child)
		}
	}
	walk(q)
	return out
}

// shapeHasParams reports whether any SELECT inside a SHAPE query tree
// contains a parameter placeholder.
func shapeHasParams(q *shape.Query) bool {
	if q == nil {
		return false
	}
	if q.Root != nil && len(sqlengine.CollectParams(q.Root)) > 0 {
		return true
	}
	for _, a := range q.Appends {
		if shapeHasParams(a.Child) {
			return true
		}
	}
	return false
}

// commandHasParams scans raw command text for '?' or '@name' placeholder
// tokens (quoted strings and bracketed identifiers are skipped by the lexer).
func commandHasParams(command string) bool {
	toks, err := lex.Tokenize(command)
	if err != nil {
		return false
	}
	for _, t := range toks {
		if t.Kind == lex.Punct && t.Text == "?" {
			return true
		}
		if t.Kind == lex.Ident && !t.Quoted && len(t.Text) > 1 && strings.HasPrefix(t.Text, "@") {
			return true
		}
	}
	return false
}

// ---------- execution ----------

// runPlan validates and coerces arguments against the plan's parameter
// slots, binds them into a cloned AST, and dispatches. hasArgs distinguishes
// "EXECUTE p ()" (zero arguments supplied) from plain execution of a
// parameterized statement, which is an error.
func (s *Session) runPlan(ctx context.Context, t *obs.Trace, pl *plan, args []rowset.Value, hasArgs bool) (*rowset.Rowset, error) {
	p := s.p
	if len(pl.params) > 0 && !hasArgs {
		return nil, fmt.Errorf("provider: statement has %d parameter(s); use PREPARE/EXECUTE to bind them", len(pl.params))
	}
	if len(args) > 0 && len(pl.params) == 0 {
		return nil, fmt.Errorf("provider: statement has no parameters but %d argument(s) were supplied", len(args))
	}
	var bound []rowset.Value
	if len(pl.params) > 0 {
		if len(args) != len(pl.params) {
			return nil, fmt.Errorf("provider: statement has %d parameter(s), got %d argument(s)", len(pl.params), len(args))
		}
		bound = make([]rowset.Value, len(args))
		for i, a := range args {
			v := rowset.Normalize(a)
			if typ := pl.params[i].Type; typ != rowset.TypeNull && v != nil {
				cv, err := rowset.Coerce(v, typ)
				if err != nil {
					return nil, fmt.Errorf("provider: parameter %s: %w", pl.params[i].Label(i), err)
				}
				v = cv
			}
			bound[i] = v
		}
	}
	switch {
	case pl.shapeCmd != "":
		t.SetKind("SHAPE")
		defer t.StartStage(obs.StageSource)()
		return shape.ExecuteStringContext(ctx, p.Engine, pl.shapeCmd)
	case pl.sqlStmt != nil:
		st := pl.sqlStmt
		if len(pl.params) > 0 {
			var err error
			if st, err = sqlengine.BindStatement(st, bound); err != nil {
				return nil, err
			}
		}
		t.SetKind("SQL")
		defer t.StartStage(obs.StageScan)()
		return p.Engine.ExecStmtContext(ctx, st)
	default:
		st := pl.dmxStmt
		if len(pl.params) > 0 {
			var err error
			if st, err = bindDMX(st, bound); err != nil {
				return nil, err
			}
		}
		t.SetKind(pl.kind)
		return s.execDMX(ctx, st)
	}
}

// bindDMX clones a DMX statement with parameter values substituted for
// placeholders. Statements without placeholder positions pass through
// unchanged (they are shared, immutable plan state).
func bindDMX(st dmx.Statement, args []rowset.Value) (dmx.Statement, error) {
	switch s := st.(type) {
	case *dmx.PredictionSelect:
		out := *s
		var err error
		if out.Items, err = sqlengine.BindSelectItems(s.Items, args); err != nil {
			return nil, err
		}
		if out.On, err = sqlengine.BindExpr(s.On, args); err != nil {
			return nil, err
		}
		if out.Where, err = sqlengine.BindExpr(s.Where, args); err != nil {
			return nil, err
		}
		if out.OrderBy, err = sqlengine.BindOrderBy(s.OrderBy, args); err != nil {
			return nil, err
		}
		if s.Source.Select != nil {
			sel, err := sqlengine.BindSelect(s.Source.Select, args)
			if err != nil {
				return nil, err
			}
			out.Source = dmx.Source{Shape: s.Source.Shape, Select: sel}
		}
		return &out, nil
	case *dmx.InsertInto:
		if s.Source.Select == nil {
			return st, nil
		}
		sel, err := sqlengine.BindSelect(s.Source.Select, args)
		if err != nil {
			return nil, err
		}
		out := *s
		out.Source = dmx.Source{Shape: s.Source.Shape, Select: sel}
		return &out, nil
	}
	return st, nil
}

// planStale reports whether any dependency moved since the plan compiled.
func (p *Provider) planStale(pl *plan) bool {
	for _, d := range pl.deps {
		if p.versions.Get(d.Name) != d.Version {
			return true
		}
	}
	return false
}

// ---------- PREPARE / EXECUTE / DEALLOCATE ----------

// prepareNamed compiles command and registers it under name in this
// session, returning the compiled plan. Names are session-scoped — the same
// handle name on two sessions never collides. Duplicate names within a
// session are an error: silently replacing a handle a concurrent statement
// on this session is executing would be a trap (DEALLOCATE first, or pick a
// fresh name).
func (s *Session) prepareNamed(ctx context.Context, t *obs.Trace, name, command string) (*plan, error) {
	key := strings.ToLower(name)
	s.mu.Lock()
	_, dup := s.prepared[key]
	s.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("provider: prepared statement %q already exists", name)
	}
	pl, err := s.p.compileCommand(ctx, t, command)
	if err != nil {
		return nil, err
	}
	ps := &preparedStmt{name: name, command: command, plan: pl}
	s.mu.Lock()
	if _, dup := s.prepared[key]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("provider: prepared statement %q already exists", name)
	}
	s.prepared[key] = ps
	s.mu.Unlock()
	s.p.preparedTotal.Inc()
	return pl, nil
}

// runPrepared executes a prepared statement, replanning first when any
// referenced catalog object changed since compilation — a plan bound to a
// dropped or re-created schema never executes.
func (s *Session) runPrepared(ctx context.Context, t *obs.Trace, name string, args []rowset.Value, hasArgs bool) (*rowset.Rowset, error) {
	p := s.p
	key := strings.ToLower(name)
	s.mu.Lock()
	ps, ok := s.prepared[key]
	var pl *plan
	if ok {
		pl = ps.plan
	}
	s.mu.Unlock()
	if !ok {
		return nil, &core.NotFoundError{Kind: "prepared statement", Name: name}
	}
	if p.planStale(pl) {
		p.preparedReplans.Inc()
		fresh, err := p.compileCommand(ctx, t, ps.command)
		if err != nil {
			return nil, fmt.Errorf("provider: prepared statement %q is stale (a referenced object changed) and failed to replan: %w", name, err)
		}
		s.mu.Lock()
		ps.plan = fresh
		s.mu.Unlock()
		pl = fresh
	}
	p.preparedExec.Inc()
	return s.runPlan(ctx, t, pl, args, hasArgs)
}

// removePrepared drops a handle from this session, reporting whether it
// existed.
func (s *Session) removePrepared(name string) bool {
	key := strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.prepared[key]; !ok {
		return false
	}
	delete(s.prepared, key)
	return true
}

// deallocateRS is the DEALLOCATE statement body: unknown names are an error
// at the statement surface (the Deallocate method is the idempotent form).
func (s *Session) deallocateRS(name string) (*rowset.Rowset, error) {
	if !s.removePrepared(name) {
		return nil, &core.NotFoundError{Kind: "prepared statement", Name: name}
	}
	return status("statement deallocated")
}

// PreparedNames lists the session's registered prepared statements, sorted
// ascending (primarily for tests and diagnostics).
func (s *Session) PreparedNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.prepared))
	for _, ps := range s.prepared {
		names = append(names, ps.name)
	}
	sort.Strings(names)
	return names
}

// ---------- flat Provider entry points (wrappers over the internal session) ----------

// PrepareContext compiles command and registers it on the provider's
// internal session.
//
// Deprecated: use [Provider.NewSession] and [Session.Prepare]; handles are
// session-scoped.
func (p *Provider) PrepareContext(ctx context.Context, name, command string, opts ...ExecOption) (int, error) {
	return p.session.Prepare(ctx, name, command, opts...)
}

// ExecutePreparedContext runs a statement prepared on the provider's
// internal session.
//
// Deprecated: use [Provider.NewSession] and [Session.ExecutePrepared].
func (p *Provider) ExecutePreparedContext(ctx context.Context, name string, args []rowset.Value, opts ...ExecOption) (*rowset.Rowset, error) {
	return p.session.ExecutePrepared(ctx, name, args, opts...)
}

// Deallocate drops a prepared statement from the provider's internal
// session. Unknown names are a no-op.
//
// Deprecated: use [Provider.NewSession] and [Session.Deallocate].
func (p *Provider) Deallocate(name string) error {
	return p.session.Deallocate(name)
}

// PreparedNames lists the internal session's prepared statements, sorted.
//
// Deprecated: use [Provider.NewSession] and [Session.PreparedNames].
func (p *Provider) PreparedNames() []string {
	return p.session.PreparedNames()
}
