package provider

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// predictionJoinQuery is a scan heavy enough that cancellation usually lands
// mid-flight rather than before the first poll.
const cancelStressQuery = `SELECT t.[Customer ID], Predict([Age]), PredictProbability([Age])
	FROM [Age Prediction]
	NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t`

// TestCancelledContextAbortsBeforeWork covers the cheap guarantee: an
// already-cancelled context never reaches execution and classifies as
// cancelled in the query log.
func TestCancelledContextAbortsBeforeWork(t *testing.T) {
	p := trainedProviderWorkers(t, 4, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := p.Obs().QueryLog().Total()
	_, err := p.ExecuteContext(ctx, cancelStressQuery)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	recs := p.Obs().QueryLog().Snapshot()
	if p.Obs().QueryLog().Total() != before+1 {
		t.Fatalf("query log total = %d, want %d", p.Obs().QueryLog().Total(), before+1)
	}
	last := recs[len(recs)-1]
	if last.ErrClass != "cancelled" {
		t.Errorf("ErrClass = %q, want cancelled", last.ErrClass)
	}
}

// TestConcurrentCancellationStress hammers ExecuteContext from many
// goroutines while their contexts are cancelled mid-PREDICTION JOIN. Run
// under -race, it asserts three properties: every call returns (either the
// rowset or a cancellation/deadline error, never anything else), no worker
// goroutines leak, and the DM_QUERY_LOG stays consistent — one record per
// statement, monotonically increasing sequence numbers.
func TestConcurrentCancellationStress(t *testing.T) {
	p := trainedProviderWorkers(t, 8, 120)
	baseline := runtime.NumGoroutine()
	logBefore := p.Obs().QueryLog().Total()

	const (
		callers  = 8
		perCall  = 6
		attempts = callers * perCall
	)
	var wg sync.WaitGroup
	errCh := make(chan error, attempts)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCall; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				// Stagger the cancellation over the scan's lifetime: some
				// fire immediately, some mid-scan, some likely after.
				delay := time.Duration((c*perCall+i)%12) * 200 * time.Microsecond
				timer := time.AfterFunc(delay, cancel)
				_, err := p.ExecuteContext(ctx, cancelStressQuery)
				timer.Stop()
				cancel()
				if err != nil && !errors.Is(err, context.Canceled) {
					errCh <- err
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("unexpected error class: %v", err)
	}

	// Every statement must have produced exactly one query-log record, with
	// strictly increasing sequence numbers (ring buffer consistency).
	if got := p.Obs().QueryLog().Total() - logBefore; got != attempts {
		t.Errorf("query log grew by %d records, want %d", got, attempts)
	}
	recs := p.Obs().QueryLog().Snapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("query log sequence not increasing: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
	var cancelled int
	for _, r := range recs {
		if r.ErrClass == "cancelled" {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no cancellations recorded; stress test exercised nothing")
	}
	t.Logf("%d/%d statements cancelled", cancelled, attempts)

	// All scan workers must have exited: the goroutine count settles back
	// to (near) the pre-stress baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineExceededClassifiesCancelled asserts timeouts share the
// cancelled error class, per the query-log taxonomy.
func TestDeadlineExceededClassifiesCancelled(t *testing.T) {
	p := trainedProviderWorkers(t, 4, 60)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Microsecond) // ensure the deadline has passed
	_, err := p.ExecuteContext(ctx, cancelStressQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	recs := p.Obs().QueryLog().Snapshot()
	if last := recs[len(recs)-1]; last.ErrClass != "cancelled" {
		t.Errorf("ErrClass = %q, want cancelled", last.ErrClass)
	}
}
