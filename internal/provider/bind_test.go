package provider

import (
	"strings"
	"testing"

	"repro/internal/dmx/sem"
)

// TestBindTimeDiagnostics verifies that semantic errors surface through
// Provider.Execute as positioned sem.Diagnostics before the executor touches
// the model — the full parse → bind → reject path a client sees.
func TestBindTimeDiagnostics(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 40)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	tests := []struct {
		name, src, want string
	}{
		{
			name: "unknown model column in prediction function",
			src:  "SELECT Predict([Shoe Size]) FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT Gender FROM Customers) AS t",
			want: `1:16: unknown column "Shoe Size" in model Age Prediction`,
		},
		{
			name: "TABLE column as scalar",
			src:  "SELECT PredictSupport([Product Purchases]) FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT Gender FROM Customers) AS t",
			want: `1:23: PREDICTSUPPORT: column "Product Purchases" of model Age Prediction is a TABLE column`,
		},
		{
			name: "arity",
			src:  "SELECT Cluster(Age) FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT Gender FROM Customers) AS t",
			want: "1:8: CLUSTER takes 0 arguments, got 1",
		},
		{
			name: "ON clause type mismatch",
			src: "SELECT Predict(Age) FROM [Age Prediction] PREDICTION JOIN " +
				"(SELECT [Customer ID], Gender AS Age FROM Customers) AS t ON [Age Prediction].[Age] = t.[Age]",
			want: "incompatible types",
		},
		{
			name: "insert binding against missing model column",
			src:  "INSERT INTO [Age Prediction] ([Customer ID], [Bogus]) SELECT [Customer ID], Gender FROM Customers",
			want: `1:46: unknown column "Bogus" in model Age Prediction`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := p.Execute(tt.src)
			if err == nil {
				t.Fatalf("Execute(%q) succeeded, want bind error", tt.src)
			}
			if _, ok := err.(sem.Diagnostics); !ok {
				t.Fatalf("Execute(%q) error is %T (%v), want sem.Diagnostics", tt.src, err, err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Execute(%q) = %q, want substring %q", tt.src, err, tt.want)
			}
		})
	}

	// A statement the binder cannot fully see through (SHAPE source) must
	// still execute; the clean path stays clean.
	clean := "SELECT [Customer ID], Predict(Age) FROM [Age Prediction] NATURAL PREDICTION JOIN " +
		"(SELECT [Customer ID], Gender FROM Customers) AS t"
	if _, err := p.Execute(clean); err != nil {
		t.Fatalf("clean prediction join rejected: %v", err)
	}
}
