package provider

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/algo/discretize"
	"repro/internal/core"
	"repro/internal/dmx"
	"repro/internal/lex"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rowset"
)

func splitStatements(script string) ([]string, error) {
	return lex.SplitStatements(script)
}

// insertInto populates a mining model (paper Section 3.3): execute the
// source, bind its columns to the model's columns, tokenize into cases, run
// the discretization pipeline, and (re)train the model's algorithm over all
// cases consumed so far.
func (p *Provider) insertInto(ctx context.Context, ins *dmx.InsertInto) (*rowset.Rowset, error) {
	t := obs.FromContext(ctx)
	e, err := p.entry(ins.Model)
	if err != nil {
		return nil, err
	}
	p.trainsByModel.With(e.model.Def.Name).Inc()
	spSource := t.StartSpanStage(obs.StageSource, "caseset", "")
	src, err := p.executeSource(ctx, ins.Source)
	if err != nil {
		t.EndSpan(spSource)
		return nil, err
	}
	spSource.SetRows(int64(src.Len()))
	t.EndSpan(spSource)
	t.AddRowsIn(int64(src.Len()))
	workers := p.workers()
	t.SetParallelism(workers)
	// Like the predict scan, the bind span brackets the worker fork/join; the
	// workers themselves never touch the trace.
	spBind := t.StartSpan("bind", fmt.Sprintf("workers=%d", workers))
	bound, err := applyBindings(ctx, e.model.Def, ins.Bindings, src, workers)
	if err != nil {
		t.EndSpan(spBind)
		return nil, err
	}
	spBind.SetRows(int64(bound.Len()))
	t.EndSpan(spBind)

	spTrain := t.StartSpanStage(obs.StageTrain, "train", "algorithm="+e.model.Def.Algorithm)
	// The deferred EndSpan covers every error return below; any "tokenize"
	// child abandoned by an early return is closed by EndSpan's defensive pop.
	defer t.EndSpan(spTrain)
	// Copy-on-write training commit: writers serialize on commitMu, but
	// readers never wait — they keep using the published snapshot while this
	// run tokenizes, discretizes, and trains against private clones, and see
	// the new model only when the finished entry is published atomically.
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	// Re-resolve under the commit lock: the model may have been dropped or
	// reset while the source query ran.
	key := strings.ToLower(ins.Model)
	cur, ok := p.catalog[key]
	if !ok {
		return nil, &core.NotFoundError{Kind: "mining model", Name: ins.Model}
	}
	def := cur.model.Def
	if def != e.model.Def {
		// Dropped and re-created while the source ran: the bindings above were
		// resolved against the old definition and may not fit the new one.
		return nil, fmt.Errorf("provider: mining model %q was re-created while the training source was executing; retry", ins.Model)
	}

	// Clone the published space and cases before touching them: tokenization
	// grows the attribute space and discretization rewrites case values in
	// place, and both would otherwise reach through the live snapshot into a
	// concurrent prediction's working state.
	space := cur.tokenizer.Space.Clone()
	tok := core.NewTokenizerWithSpace(def, space)
	cases := core.CloneCases(cur.cases)

	// Tokenization stays on this single consumer goroutine: it grows the
	// cloned attribute space, and state dictionaries are built in first-seen
	// order, so a parallel tokenize would make attribute indexes depend on
	// scheduling. The parallelizable part of the training scan — per-row
	// binding and nested reshaping — already ran above, outside the lock.
	spTok := t.StartSpan("tokenize", "")
	cs, err := tok.Tokenize(bound)
	if err != nil {
		t.EndSpan(spTok)
		return nil, err
	}
	spTok.SetRows(int64(len(cs.Cases)))
	t.EndSpan(spTok)
	cases = append(cases, cs.Cases...)
	full := &core.Caseset{Space: space, Cases: cases}

	if err := p.discretizePipeline(def, full); err != nil {
		return nil, err
	}

	algo, err := p.Registry.Lookup(def.Algorithm)
	if err != nil {
		return nil, err
	}
	targets := full.Space.Targets()
	trained, err := algo.Train(full, targets, def.Params)
	if err != nil {
		return nil, err
	}
	fresh := &modelEntry{
		model:     &core.Model{Def: def, Space: space, Trained: trained, CaseCount: len(cases)},
		tokenizer: tok,
		cases:     cases,
	}
	if err := p.saveModel(fresh); err != nil {
		return nil, err
	}
	p.catalog[key] = fresh
	p.publishLocked()

	spTrain.SetRows(int64(len(cs.Cases)))
	rs := rowset.New(rowset.MustSchema(rowset.Column{Name: "cases consumed", Type: rowset.TypeLong}))
	if err := rs.AppendVals(int64(len(cs.Cases))); err != nil {
		return nil, err
	}
	return rs, nil
}

// executeSource runs a SHAPE or SELECT source against the SQL engine.
func (p *Provider) executeSource(ctx context.Context, src dmx.Source) (*rowset.Rowset, error) {
	switch {
	case src.Shape != nil:
		return src.Shape.ExecuteContext(ctx, p.Engine)
	case src.Select != nil:
		return p.Engine.QueryContext(ctx, src.Select)
	}
	return nil, fmt.Errorf("provider: statement has no data source")
}

// discretizePipeline installs cut points for every DISCRETIZED column that
// does not have them yet. Cut points are computed once, from the first
// training batch that mentions the attribute, and frozen thereafter —
// prediction inputs bucket through the same cuts.
func (p *Provider) discretizePipeline(def *core.ModelDef, full *core.Caseset) error {
	for i := range def.Columns {
		col := &def.Columns[i]
		if col.Content != core.ContentAttribute || col.AttrType != core.AttrDiscretized {
			continue
		}
		idx, ok := full.Space.Lookup(col.Name)
		if !ok {
			continue
		}
		attr := full.Space.Attr(idx)
		if len(attr.Cuts) > 0 {
			continue // already discretized in an earlier INSERT
		}
		var values []float64
		for ci := range full.Cases {
			if v, ok := full.Cases[ci].Continuous(idx); ok {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			continue
		}
		labels := p.entropyLabels(full, idx)
		cuts, err := discretize.Cuts(col.DiscretizeMethod, values, labels, col.DiscretizeBuckets)
		if err != nil {
			return fmt.Errorf("provider: column %q: %w", col.Name, err)
		}
		full.DiscretizeAttr(idx, cuts)
	}
	return nil
}

// entropyLabels supplies class labels for supervised (ENTROPY) discretization
// when the model has a discrete target other than the column being cut.
func (p *Provider) entropyLabels(full *core.Caseset, exclude int) []int {
	var labelAttr = -1
	for _, t := range full.Space.Targets() {
		if t == exclude {
			continue
		}
		if full.Space.Attr(t).Kind == core.KindDiscrete {
			labelAttr = t
			break
		}
	}
	if labelAttr < 0 {
		return nil
	}
	labels := make([]int, 0, full.Len())
	for ci := range full.Cases {
		if _, ok := full.Cases[ci].Continuous(exclude); !ok {
			continue
		}
		st := full.Cases[ci].Discrete(labelAttr)
		if st < 0 {
			st = 0
		}
		labels = append(labels, st)
	}
	return labels
}

// applyBindings reshapes the source rowset into the model's caseset layout.
// With an explicit binding list, bindings map positionally onto the source
// columns when the counts line up (SKIP entries consume unbound source
// columns, the DMX idiom for RELATE keys); otherwise, and when no bindings
// are given, columns bind by name. The per-row projection (including nested
// reshaping, the expensive part of a hierarchical training scan) runs on the
// workers pool; rows keep their source order.
func applyBindings(ctx context.Context, def *core.ModelDef, bindings []dmx.Binding, src *rowset.Rowset, workers int) (*rowset.Rowset, error) {
	if len(bindings) == 0 {
		bindings = make([]dmx.Binding, 0, len(def.Columns))
		for i := range def.Columns {
			bindings = append(bindings, dmx.Binding{Name: def.Columns[i].Name})
		}
	}
	plan, outCols, err := bindColumns(def.Name, def.Columns, bindings, src.Schema(), false)
	if err != nil {
		return nil, err
	}
	outSchema, err := rowset.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}
	srcRows := src.Rows()
	// Identity plan — every model column binds the same-ordinal scalar source
	// column — passes the source rows through unshaped: the caseset shares the
	// executor's rows under the model-named schema, no per-row copy at all.
	if len(plan) == src.Schema().Len() {
		identity := true
		for i, b := range plan {
			if b.srcOrd != i || b.nestedSchema != nil {
				identity = false
				break
			}
		}
		if identity {
			return rowset.Adopt(outSchema, srcRows), nil
		}
	}
	rows := make([]rowset.Row, len(srcRows))
	err = par.ForEachCtx(ctx, len(srcRows), workers, func(i int) error {
		r := srcRows[i]
		row := make(rowset.Row, 0, len(plan))
		for _, b := range plan {
			v := r[b.srcOrd]
			if b.nestedSchema != nil {
				nested, ok := v.(*rowset.Rowset)
				if v == nil {
					nested = rowset.New(b.nestedSrcSchema)
					ok = true
				}
				if !ok {
					return &NestedColumnTypeError{Column: b.name, Got: rowset.TypeOf(v).String()}
				}
				nv, err := reshapeNested(nested, b)
				if err != nil {
					return err
				}
				v = nv
			}
			row = append(row, v)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The projected rows reuse values straight out of the (already canonical)
	// source rowset, so the result adopts them instead of re-normalizing every
	// cell a second time.
	return rowset.Adopt(outSchema, rows), nil
}

// boundCol is one resolved binding: which source ordinal feeds which model
// column, plus the nested projection for TABLE columns.
type boundCol struct {
	name            string
	srcOrd          int
	nestedSchema    *rowset.Schema // output nested schema (model names)
	nestedSrcSchema *rowset.Schema // source nested schema
	nestedOrds      []int          // source ordinals inside the nested table
}

// bindColumns resolves a binding list against model columns and a source
// schema, returning the projection plan and the output columns. INSERT INTO
// binds positionally when the binding list covers every source column (the
// DMX convention, with SKIP consuming unbound columns) and by name
// otherwise; prediction joins pass byNameOnly because their bindings are
// derived from names in the first place.
func bindColumns(model string, cols []core.ColumnDef, bindings []dmx.Binding, src *rowset.Schema, byNameOnly bool) ([]boundCol, []rowset.Column, error) {
	positional := !byNameOnly && len(bindings) == len(src.Columns)
	var plan []boundCol
	var outCols []rowset.Column
	for bi, b := range bindings {
		if b.Skip {
			if !positional {
				return nil, nil, fmt.Errorf("provider: model %s: SKIP requires the binding list to match the source column count", model)
			}
			continue
		}
		mc, ok := findColumnDef(cols, b.Name)
		if !ok {
			return nil, nil, fmt.Errorf("provider: model %s has no column %q", model, b.Name)
		}
		var srcOrd int
		if positional {
			srcOrd = bi
		} else {
			srcOrd, ok = src.Lookup(b.Name)
			if !ok {
				return nil, nil, fmt.Errorf("provider: source has no column %q for model %s (source columns: %v)",
					b.Name, model, src.Names())
			}
		}
		bc := boundCol{name: mc.Name, srcOrd: srcOrd}
		outCol := rowset.Column{Name: mc.Name, Type: src.Column(srcOrd).Type, Nested: src.Column(srcOrd).Nested}
		if mc.Content == core.ContentTable {
			nestedSrc := src.Column(srcOrd).Nested
			if nestedSrc == nil {
				return nil, nil, fmt.Errorf("provider: model %s column %q: source column is not a nested table", model, mc.Name)
			}
			nb := b.Nested
			if len(nb) == 0 {
				nb = make([]dmx.Binding, 0, len(mc.Table))
				for i := range mc.Table {
					nb = append(nb, dmx.Binding{Name: mc.Table[i].Name})
				}
			}
			nplan, ncols, err := bindColumns(model, mc.Table, nb, nestedSrc, byNameOnly)
			if err != nil {
				return nil, nil, err
			}
			nschema, err := rowset.NewSchema(ncols...)
			if err != nil {
				return nil, nil, err
			}
			bc.nestedSchema = nschema
			bc.nestedSrcSchema = nestedSrc
			for _, np := range nplan {
				bc.nestedOrds = append(bc.nestedOrds, np.srcOrd)
			}
			outCol.Type = rowset.TypeTable
			outCol.Nested = nschema
		}
		plan = append(plan, bc)
		outCols = append(outCols, outCol)
	}
	if len(plan) == 0 {
		return nil, nil, fmt.Errorf("provider: model %s: binding list binds no columns", model)
	}
	return plan, outCols, nil
}

func findColumnDef(cols []core.ColumnDef, name string) (*core.ColumnDef, bool) {
	for i := range cols {
		if strings.EqualFold(cols[i].Name, name) {
			return &cols[i], true
		}
	}
	return nil, false
}

// reshapeNested projects a nested source rowset through the nested binding.
// Identity projections share the nested rows under the model-named schema;
// either way the values are adopted, not re-normalized — they came out of the
// executor canonical.
func reshapeNested(nested *rowset.Rowset, b boundCol) (*rowset.Rowset, error) {
	src := nested.Rows()
	if len(b.nestedOrds) == nested.Schema().Len() {
		identity := true
		for i, o := range b.nestedOrds {
			if o != i {
				identity = false
				break
			}
		}
		if identity {
			return rowset.Adopt(b.nestedSchema, src), nil
		}
	}
	rows := make([]rowset.Row, len(src))
	for i, r := range src {
		row := make(rowset.Row, len(b.nestedOrds))
		for j, o := range b.nestedOrds {
			row[j] = r[o]
		}
		rows[i] = row
	}
	return rowset.Adopt(b.nestedSchema, rows), nil
}
