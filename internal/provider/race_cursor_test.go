package provider

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/rowset"
)

// TestConcurrentCursorsUnderParallelPredict drives every streaming surface at
// once against one provider: parallel PREDICTION JOIN scans (whose workers
// share the materialized source and auto-create the key-column index),
// indexed point-lookup SELECTs (scan cursors + index pushdown probes), and
// SHAPE statements whose RELATE fast path auto-creates and reads the Sales
// index. Run under -race it proves the cursor pipeline, the shared table
// snapshots, and concurrent CreateIndex calls are race-clean; the byte
// comparison against a pre-computed baseline proves no interleaving perturbs
// any result.
func TestConcurrentCursorsUnderParallelPredict(t *testing.T) {
	p := MustNew(WithParallelism(4))
	setupCustomerData(t, p, 60)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	queries := []string{
		`SELECT t.[Customer ID], Predict([Age]) FROM [Age Prediction]
			NATURAL PREDICTION JOIN (SELECT * FROM Customers) AS t`,
		`SELECT TOP 9 t.[Customer ID], Predict([Age]) FROM [Age Prediction]
			NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t
			ORDER BY Predict([Age]) DESC`,
		"SELECT Age FROM Customers WHERE [Customer ID] = 7",
		"SELECT [Product Name], Quantity FROM Sales WHERE CustID = 9 ORDER BY [Product Name]",
		"SELECT Gender, COUNT(*) FROM Customers GROUP BY Gender ORDER BY Gender",
		`SHAPE {SELECT [Customer ID], Gender, Age FROM Customers ORDER BY [Customer ID]}
			APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
			RELATE [Customer ID] TO [CustID]) AS [Product Purchases]`,
	}

	// Baselines first, single-threaded. The predict statement has already
	// auto-indexed the Customers key and the SHAPE statement the Sales relate
	// column, so the concurrent phase exercises index reads as well as the
	// idempotent re-create path.
	baseline := make([][]byte, len(queries))
	for i, q := range queries {
		var buf bytes.Buffer
		if err := mustExec(t, p, q).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		baseline[i] = buf.Bytes()
	}

	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*len(queries))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				rs, err := p.Execute(queries[qi])
				if err != nil {
					errc <- fmt.Errorf("%.60q: %w", queries[qi], err)
					return
				}
				var buf bytes.Buffer
				if err := rs.Encode(&buf); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(buf.Bytes(), baseline[qi]) {
					errc <- fmt.Errorf("%.60q: concurrent result differs from baseline (%d rows)",
						queries[qi], rs.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPredictionJoinAutoIndexesKey pins the auto-index behaviour: a
// prediction join whose source is a bare single-table SELECT leaves a hash
// index behind on the table column bound to the model's KEY column, and only
// on that column.
func TestPredictionJoinAutoIndexesKey(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 20)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	tbl, ok := p.Engine.TableSource("Customers")
	if !ok {
		t.Fatal("Customers is not a table source")
	}
	if tbl.HasIndex("Customer ID") {
		t.Fatal("key index exists before any prediction join")
	}
	mustExec(t, p, `SELECT t.[Customer ID], Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t`)
	if !tbl.HasIndex("Customer ID") {
		t.Error("prediction join did not auto-create the key-column index")
	}
	if tbl.HasIndex("Gender") || tbl.HasIndex("Age") {
		t.Error("prediction join indexed a non-key column")
	}
	// The indexed table must answer a pushed-down point lookup identically.
	rs := mustExec(t, p, "SELECT Gender FROM Customers WHERE [Customer ID] = 3")
	if rs.Len() != 1 {
		t.Errorf("indexed point lookup returned %d rows, want 1", rs.Len())
	}
	var _ rowset.Value = rs.Row(0)[0]
}
