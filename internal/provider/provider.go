// Package provider implements the OLE DB for Data Mining provider: the
// component that accepts DMX/SQL command text and exposes mining models as
// first-class objects next to relational tables (Figure 1 of the paper).
//
// A Provider owns a relational database (storage + sqlengine), a mining
// model catalog, and an algorithm registry. Execute dispatches command text:
// DMX statements (CREATE MINING MODEL, INSERT INTO a model, PREDICTION JOIN,
// SELECT FROM <model>.CONTENT, DELETE FROM a model, DROP MINING MODEL, and
// $SYSTEM schema rowsets) run on the mining engine; everything else runs on
// the SQL engine. This mirrors the paper's design: "the mining model can
// participate in interaction with other objects using the primitives listed
// above" without leaving the SQL surface.
package provider

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/algo/assoc"
	"repro/internal/algo/cluster"
	"repro/internal/algo/dtree"
	"repro/internal/algo/linreg"
	"repro/internal/algo/markov"
	"repro/internal/algo/nbayes"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dmx"
	"repro/internal/lex"
	"repro/internal/rowset"
	"repro/internal/schemarowset"
	"repro/internal/shape"
	"repro/internal/sqlengine"
	"repro/internal/storage"
)

// Provider is an in-process OLE DB DM provider instance.
type Provider struct {
	// DB is the relational substrate holding source tables.
	DB *storage.Database
	// Engine executes the SQL subset over DB.
	Engine *sqlengine.Engine
	// Registry holds the installed mining services.
	Registry *core.Registry

	mu     sync.RWMutex
	models map[string]*modelEntry // keyed by lower-cased model name

	// dir enables persistence when non-empty (see persist.go).
	dir string

	// parallelism bounds the worker pool used by the per-case scan loops
	// (PREDICTION JOIN evaluation, INSERT INTO row reshaping). Defaults to
	// runtime.GOMAXPROCS(0); 1 forces the sequential path.
	parallelism int
}

// workers returns the effective worker-pool bound.
func (p *Provider) workers() int {
	if p.parallelism > 0 {
		return p.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// modelEntry couples a catalogued model with its tokenizer and accumulated
// training cases (INSERT INTO may run repeatedly; each run retrains over
// everything consumed so far).
type modelEntry struct {
	model     *core.Model
	tokenizer *core.Tokenizer
	cases     []core.Case
}

// Option configures a Provider.
type Option func(*Provider)

// WithDirectory enables disk persistence: tables under dir/tables, models
// under dir/models. Existing state is loaded by New.
func WithDirectory(dir string) Option {
	return func(p *Provider) { p.dir = dir }
}

// WithParallelism bounds the worker pool for the parallel scan paths.
// n <= 0 restores the default (runtime.GOMAXPROCS(0)); n == 1 forces
// sequential execution.
func WithParallelism(n int) Option {
	return func(p *Provider) { p.parallelism = n }
}

// New creates a provider with the six reference mining services installed
// (Decision_Trees, Naive_Bayes, Clustering, Association_Rules,
// Linear_Regression, Sequence_Analysis).
func New(opts ...Option) (*Provider, error) {
	db := storage.NewDatabase()
	p := &Provider{
		DB:       db,
		Engine:   sqlengine.NewEngine(db),
		Registry: core.NewRegistry(),
		models:   make(map[string]*modelEntry),
	}
	p.Registry.Register(dtree.New())
	p.Registry.Register(nbayes.New())
	p.Registry.Register(cluster.New())
	p.Registry.Register(assoc.New())
	p.Registry.Register(linreg.New())
	p.Registry.Register(markov.New())
	// The paper's running example names its service [Decision_Trees_101].
	p.Registry.RegisterAs("Decision_Trees_101", dtree.New())
	for _, o := range opts {
		o(p)
	}
	if p.dir != "" {
		if err := p.load(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustNew is New for tests and examples; it panics on error.
func MustNew(opts ...Option) *Provider {
	p, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// IsModel reports whether name refers to a catalogued mining model.
func (p *Provider) IsModel(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.models[strings.ToLower(name)]
	return ok
}

// Model returns the catalogued model by name.
func (p *Provider) Model(name string) (*core.Model, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	return e.model, nil
}

func (p *Provider) entry(name string) (*modelEntry, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.models[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("provider: no mining model named %q", name)
	}
	return e, nil
}

// ModelNames lists catalogued models, sorted.
func (p *Provider) ModelNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.models))
	for _, e := range p.models {
		names = append(names, e.model.Def.Name)
	}
	sort.Strings(names)
	return names
}

func (p *Provider) allModels() []*core.Model {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.modelsLocked()
}

// modelsLocked lists the catalogued models; p.mu must be held.
func (p *Provider) modelsLocked() []*core.Model {
	out := make([]*core.Model, 0, len(p.models))
	for _, e := range p.models {
		out = append(out, e.model)
	}
	return out
}

// Execute runs one DMX or SQL statement and returns its result rowset.
// Standalone SHAPE statements are also accepted and return the hierarchical
// rowset they assemble.
func (p *Provider) Execute(command string) (*rowset.Rowset, error) {
	if sc := lex.NewScanner(command); sc.Peek().Is("SHAPE") {
		return shape.ExecuteString(p.Engine, command)
	}
	st, err := dmx.Parse(command, p.IsModel)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return p.Engine.Exec(command)
	}
	return p.ExecuteDMX(st)
}

// ExecuteScript runs a multi-statement script (statements separated by
// semicolons) and returns the last statement's result.
func (p *Provider) ExecuteScript(script string) (*rowset.Rowset, error) {
	stmts, err := splitStatements(script)
	if err != nil {
		return nil, err
	}
	var last *rowset.Rowset
	for _, s := range stmts {
		last, err = p.Execute(s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecuteDMX runs a parsed DMX statement.
func (p *Provider) ExecuteDMX(st dmx.Statement) (*rowset.Rowset, error) {
	switch s := st.(type) {
	case *dmx.CreateModel:
		return p.createModel(s.Def)
	case *dmx.InsertInto:
		return p.insertInto(s)
	case *dmx.PredictionSelect:
		return p.predictionSelect(s)
	case *dmx.ContentSelect:
		e, err := p.entry(s.Model)
		if err != nil {
			return nil, err
		}
		p.mu.RLock()
		trained := e.model.Trained
		p.mu.RUnlock()
		if trained == nil {
			return nil, fmt.Errorf("provider: model %q is not populated; INSERT INTO it first", s.Model)
		}
		return content.Rowset(e.model.Def.Name, trained.Content()), nil
	case *dmx.ColumnsSelect:
		e, err := p.entry(s.Model)
		if err != nil {
			return nil, err
		}
		return schemarowset.ModelColumns(e.model), nil
	case *dmx.CasesSelect:
		return p.casesRowset(s.Model)
	case *dmx.PMMLSelect:
		return p.pmmlRowset(s.Model)
	case *dmx.SchemaRowsetSelect:
		// Build reads Trained/Space/CaseCount off every model, so the read
		// lock must cover the build itself, not just the catalogue snapshot —
		// a concurrent INSERT INTO rewrites those fields under the write lock.
		p.mu.RLock()
		defer p.mu.RUnlock()
		return schemarowset.Build(s.Rowset, p.modelsLocked(), p.Registry)
	case *dmx.DeleteFrom:
		return p.deleteFrom(s.Model)
	case *dmx.DropModel:
		return p.dropModel(s.Name)
	}
	return nil, fmt.Errorf("provider: unsupported DMX statement %T", st)
}

// createModel registers a validated model definition.
func (p *Provider) createModel(def *core.ModelDef) (*rowset.Rowset, error) {
	if _, err := p.Registry.Lookup(def.Algorithm); err != nil {
		return nil, err
	}
	p.mu.Lock()
	key := strings.ToLower(def.Name)
	if _, dup := p.models[key]; dup {
		p.mu.Unlock()
		return nil, fmt.Errorf("provider: mining model %q already exists", def.Name)
	}
	e := &modelEntry{
		model:     &core.Model{Def: def},
		tokenizer: core.NewTokenizer(def),
	}
	e.model.Space = e.tokenizer.Space
	p.models[key] = e
	p.mu.Unlock()
	if err := p.saveModel(e); err != nil {
		return nil, err
	}
	return status("model created"), nil
}

// deleteFrom resets a model (the paper's "emptied (reset) via DELETE").
func (p *Provider) deleteFrom(name string) (*rowset.Rowset, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	e.model.Reset()
	e.tokenizer = core.NewTokenizer(e.model.Def)
	e.model.Space = e.tokenizer.Space
	e.cases = nil
	p.mu.Unlock()
	if err := p.saveModel(e); err != nil {
		return nil, err
	}
	return status("model reset"), nil
}

func (p *Provider) dropModel(name string) (*rowset.Rowset, error) {
	p.mu.Lock()
	key := strings.ToLower(name)
	_, ok := p.models[key]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("provider: no mining model named %q", name)
	}
	delete(p.models, key)
	p.mu.Unlock()
	if err := p.removeModelFile(name); err != nil {
		return nil, err
	}
	return status("model dropped"), nil
}

// status renders a one-cell result for DDL-style statements.
func status(msg string) *rowset.Rowset {
	rs := rowset.New(rowset.MustSchema(rowset.Column{Name: "status", Type: rowset.TypeText}))
	rs.MustAppend(msg)
	return rs
}
