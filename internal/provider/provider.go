// Package provider implements the OLE DB for Data Mining provider: the
// component that accepts DMX/SQL command text and exposes mining models as
// first-class objects next to relational tables (Figure 1 of the paper).
//
// A Provider owns a relational database (storage + sqlengine), a mining
// model catalog, and an algorithm registry. Execute dispatches command text:
// DMX statements (CREATE MINING MODEL, INSERT INTO a model, PREDICTION JOIN,
// SELECT FROM <model>.CONTENT, DELETE FROM a model, DROP MINING MODEL, and
// $SYSTEM schema rowsets) run on the mining engine; everything else runs on
// the SQL engine. This mirrors the paper's design: "the mining model can
// participate in interaction with other objects using the primitives listed
// above" without leaving the SQL surface.
package provider

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/algo/assoc"
	"repro/internal/algo/cluster"
	"repro/internal/algo/dtree"
	"repro/internal/algo/linreg"
	"repro/internal/algo/markov"
	"repro/internal/algo/nbayes"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dmx"
	"repro/internal/dmx/sem"
	"repro/internal/lex"
	"repro/internal/rowset"
	"repro/internal/schemarowset"
	"repro/internal/shape"
	"repro/internal/sqlengine"
	"repro/internal/storage"
)

// Provider is an in-process OLE DB DM provider instance.
type Provider struct {
	// DB is the relational substrate holding source tables.
	DB *storage.Database
	// Engine executes the SQL subset over DB.
	Engine *sqlengine.Engine
	// Registry holds the installed mining services.
	Registry *core.Registry

	// mu guards the model catalogue and every trained model's mutable state;
	// the annotation below is machine-checked by tools/dmlint (lockcheck).
	//
	//dmlint:guard mu: Provider.models, modelEntry.cases, modelEntry.tokenizer, core.Model.Trained, core.Model.Space, core.Model.CaseCount
	mu     sync.RWMutex
	models map[string]*modelEntry // keyed by lower-cased model name

	// dir enables persistence when non-empty (see persist.go).
	dir string

	// parallelism bounds the worker pool used by the per-case scan loops
	// (PREDICTION JOIN evaluation, INSERT INTO row reshaping). Defaults to
	// runtime.GOMAXPROCS(0); 1 forces the sequential path.
	parallelism int
}

// workers returns the effective worker-pool bound.
func (p *Provider) workers() int {
	if p.parallelism > 0 {
		return p.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// modelEntry couples a catalogued model with its tokenizer and accumulated
// training cases (INSERT INTO may run repeatedly; each run retrains over
// everything consumed so far).
type modelEntry struct {
	model     *core.Model
	tokenizer *core.Tokenizer
	cases     []core.Case
}

// Option configures a Provider.
type Option func(*Provider)

// WithDirectory enables disk persistence: tables under dir/tables, models
// under dir/models. Existing state is loaded by New.
func WithDirectory(dir string) Option {
	return func(p *Provider) { p.dir = dir }
}

// WithParallelism bounds the worker pool for the parallel scan paths.
// n <= 0 restores the default (runtime.GOMAXPROCS(0)); n == 1 forces
// sequential execution.
func WithParallelism(n int) Option {
	return func(p *Provider) { p.parallelism = n }
}

// New creates a provider with the six reference mining services installed
// (Decision_Trees, Naive_Bayes, Clustering, Association_Rules,
// Linear_Regression, Sequence_Analysis).
func New(opts ...Option) (*Provider, error) {
	db := storage.NewDatabase()
	p := &Provider{
		DB:       db,
		Engine:   sqlengine.NewEngine(db),
		Registry: core.NewRegistry(),
		models:   make(map[string]*modelEntry),
	}
	p.Registry.Register(dtree.New())
	p.Registry.Register(nbayes.New())
	p.Registry.Register(cluster.New())
	p.Registry.Register(assoc.New())
	p.Registry.Register(linreg.New())
	p.Registry.Register(markov.New())
	// The paper's running example names its service [Decision_Trees_101].
	p.Registry.RegisterAs("Decision_Trees_101", dtree.New())
	for _, o := range opts {
		o(p)
	}
	if p.dir != "" {
		if err := p.load(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// IsModel reports whether name refers to a catalogued mining model.
func (p *Provider) IsModel(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.models[strings.ToLower(name)]
	return ok
}

// Model returns the catalogued model by name.
func (p *Provider) Model(name string) (*core.Model, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	return e.model, nil
}

func (p *Provider) entry(name string) (*modelEntry, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.models[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("provider: no mining model named %q", name)
	}
	return e, nil
}

// ModelNames lists catalogued models, sorted.
func (p *Provider) ModelNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.models))
	for _, e := range p.models {
		names = append(names, e.model.Def.Name)
	}
	sort.Strings(names)
	return names
}

func (p *Provider) allModels() []*core.Model {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.modelsLocked()
}

// modelsLocked lists the catalogued models; p.mu must be held.
func (p *Provider) modelsLocked() []*core.Model {
	out := make([]*core.Model, 0, len(p.models))
	for _, e := range p.models {
		out = append(out, e.model)
	}
	return out
}

// Execute runs one DMX or SQL statement and returns its result rowset.
// Standalone SHAPE statements are also accepted and return the hierarchical
// rowset they assemble.
func (p *Provider) Execute(command string) (*rowset.Rowset, error) {
	if sc := lex.NewScanner(command); sc.Peek().Is("SHAPE") {
		return shape.ExecuteString(p.Engine, command)
	}
	st, err := dmx.Parse(command, p.IsModel)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return p.Engine.Exec(command)
	}
	return p.ExecuteDMX(st)
}

// ExecuteScript runs a multi-statement script (statements separated by
// semicolons) and returns the last statement's result.
func (p *Provider) ExecuteScript(script string) (*rowset.Rowset, error) {
	stmts, err := splitStatements(script)
	if err != nil {
		return nil, err
	}
	var last *rowset.Rowset
	for _, s := range stmts {
		last, err = p.Execute(s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ModelDef implements sem.Catalog: the definition of a catalogued model.
func (p *Provider) ModelDef(name string) (*core.ModelDef, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.models[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return e.model.Def, true
}

// TableSchema implements sem.Catalog: the schema of a relational table.
func (p *Provider) TableSchema(name string) (*rowset.Schema, bool) {
	t, err := p.DB.Table(name)
	if err != nil {
		return nil, false
	}
	return t.Schema(), true
}

// ExecuteDMX runs a parsed DMX statement. Statements are bound by the
// semantic checker first, so name and type errors surface with source
// positions before any execution work starts.
func (p *Provider) ExecuteDMX(st dmx.Statement) (*rowset.Rowset, error) {
	if err := sem.Check(st, p); err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *dmx.CreateModel:
		return p.createModel(s.Def)
	case *dmx.InsertInto:
		return p.insertInto(s)
	case *dmx.PredictionSelect:
		return p.predictionSelect(s)
	case *dmx.ContentSelect:
		e, err := p.entry(s.Model)
		if err != nil {
			return nil, err
		}
		p.mu.RLock()
		trained := e.model.Trained
		p.mu.RUnlock()
		if trained == nil {
			return nil, fmt.Errorf("provider: model %q is not populated; INSERT INTO it first", s.Model)
		}
		return content.Rowset(e.model.Def.Name, trained.Content())
	case *dmx.ColumnsSelect:
		e, err := p.entry(s.Model)
		if err != nil {
			return nil, err
		}
		return schemarowset.ModelColumns(e.model)
	case *dmx.CasesSelect:
		return p.casesRowset(s.Model)
	case *dmx.PMMLSelect:
		return p.pmmlRowset(s.Model)
	case *dmx.SchemaRowsetSelect:
		// Build reads Trained/Space/CaseCount off every model, so the read
		// lock must cover the build itself, not just the catalogue snapshot —
		// a concurrent INSERT INTO rewrites those fields under the write lock.
		p.mu.RLock()
		defer p.mu.RUnlock()
		return schemarowset.Build(s.Rowset, p.modelsLocked(), p.Registry)
	case *dmx.DeleteFrom:
		return p.deleteFrom(s.Model)
	case *dmx.DropModel:
		return p.dropModel(s.Name)
	}
	return nil, fmt.Errorf("provider: unsupported DMX statement %T", st)
}

// createModel registers a validated model definition.
func (p *Provider) createModel(def *core.ModelDef) (*rowset.Rowset, error) {
	if _, err := p.Registry.Lookup(def.Algorithm); err != nil {
		return nil, err
	}
	// The lock covers the save too: the entry is visible in the catalogue the
	// moment it is inserted, and persisting it outside the lock would race a
	// concurrent INSERT INTO mutating the very state being encoded.
	p.mu.Lock()
	defer p.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, dup := p.models[key]; dup {
		return nil, fmt.Errorf("provider: mining model %q already exists", def.Name)
	}
	e := &modelEntry{
		model:     &core.Model{Def: def},
		tokenizer: core.NewTokenizer(def),
	}
	e.model.Space = e.tokenizer.Space
	p.models[key] = e
	if err := p.saveModelLocked(e); err != nil {
		return nil, err
	}
	return status("model created")
}

// deleteFrom resets a model (the paper's "emptied (reset) via DELETE").
func (p *Provider) deleteFrom(name string) (*rowset.Rowset, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e.model.Reset()
	e.tokenizer = core.NewTokenizer(e.model.Def)
	e.model.Space = e.tokenizer.Space
	e.cases = nil
	if err := p.saveModelLocked(e); err != nil {
		return nil, err
	}
	return status("model reset")
}

func (p *Provider) dropModel(name string) (*rowset.Rowset, error) {
	p.mu.Lock()
	key := strings.ToLower(name)
	_, ok := p.models[key]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("provider: no mining model named %q", name)
	}
	delete(p.models, key)
	p.mu.Unlock()
	if err := p.removeModelFile(name); err != nil {
		return nil, err
	}
	return status("model dropped")
}

// status renders a one-cell result for DDL-style statements.
func status(msg string) (*rowset.Rowset, error) {
	rs := rowset.New(rowset.MustSchema(rowset.Column{Name: "status", Type: rowset.TypeText}))
	if err := rs.AppendVals(msg); err != nil {
		return nil, err
	}
	return rs, nil
}
