// Package provider implements the OLE DB for Data Mining provider: the
// component that accepts DMX/SQL command text and exposes mining models as
// first-class objects next to relational tables (Figure 1 of the paper).
//
// A Provider owns a relational database (storage + sqlengine), a mining
// model catalog, and an algorithm registry. Execute dispatches command text:
// DMX statements (CREATE MINING MODEL, INSERT INTO a model, PREDICTION JOIN,
// SELECT FROM <model>.CONTENT, DELETE FROM a model, DROP MINING MODEL, and
// $SYSTEM schema rowsets) run on the mining engine; everything else runs on
// the SQL engine. This mirrors the paper's design: "the mining model can
// participate in interaction with other objects using the primitives listed
// above" without leaving the SQL surface.
package provider

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/algo/assoc"
	"repro/internal/algo/cluster"
	"repro/internal/algo/dtree"
	"repro/internal/algo/linreg"
	"repro/internal/algo/markov"
	"repro/internal/algo/nbayes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/rowset"
	"repro/internal/sqlengine"
	"repro/internal/storage"
)

// Provider is an in-process OLE DB DM provider instance.
type Provider struct {
	// DB is the relational substrate holding source tables.
	DB *storage.Database
	// Engine executes the SQL subset over DB.
	Engine *sqlengine.Engine
	// Registry holds the installed mining services.
	Registry *core.Registry

	// snap is the published model-catalog snapshot. Readers (predictions,
	// content browsing, $SYSTEM rowsets, semantic checks) load it once and
	// never lock: a snapshot and every modelEntry reachable from it are
	// immutable after publication. Writers build replacement entries off to
	// the side under commitMu and swap in a fresh snapshot atomically, so a
	// long training run never blocks a single read.
	snap atomic.Pointer[catalogSnapshot]

	// commitMu is the snapshot-swap mutex: it serializes catalog writers
	// (CREATE/DROP/DELETE FROM/INSERT INTO a model, persistence load) and
	// guards the writer-owned working map below; the annotation is
	// machine-checked by tools/dmlint (lockcheck).
	//
	//dmlint:guard commitMu: Provider.catalog
	commitMu sync.Mutex
	catalog  map[string]*modelEntry // keyed by lower-cased model name

	// session is the provider's internal default session, behind the
	// deprecated flat Execute* wrappers. Real consumers create their own
	// (NewSession), which scopes prepared-statement names per consumer.
	session *Session

	// versions tracks catalog-object versions (models, tables, and views in
	// one namespace) and planCache maps normalized statement text to compiled
	// plans validated against those versions. planCacheCap overrides the
	// cache's LRU capacity when positive.
	versions     *plancache.Versions
	planCache    *plancache.Cache
	planCacheCap int

	// dir enables persistence when non-empty (see persist.go).
	dir string

	// parallelism bounds the worker pool used by the per-case scan loops
	// (PREDICTION JOIN evaluation, INSERT INTO row reshaping). Defaults to
	// runtime.GOMAXPROCS(0); 1 forces the sequential path.
	parallelism int

	// maxInFlight bounds concurrently executing statements per session
	// (admission control). 0 means unbounded. Sessions may override it with
	// WithSessionMaxInFlight.
	maxInFlight int

	// obs is the observability registry behind the $SYSTEM.DM_QUERY_LOG,
	// DM_PROVIDER_METRICS, and DM_CONNECTIONS schema rowsets. nil disables
	// instrumentation entirely (all handles below become no-ops).
	obs    *obs.Registry
	obsSet bool // an option supplied obs explicitly (possibly nil)
	logCap int  // query-log ring capacity for the default registry

	// Cached hot-path metric handles (nil-safe when obs is nil).
	execTotal       *obs.Counter
	execErrors      *obs.Counter
	execCancels     *obs.Counter
	rowsOut         *obs.Counter
	latency         *obs.Histogram
	preparedTotal   *obs.Counter
	preparedExec    *obs.Counter
	preparedReplans *obs.Counter
	admInFlight     *obs.Gauge
	admQueueDepth   *obs.Gauge
	admRejected     *obs.Counter

	// Dimensional handles: per-statement-class and per-origin families
	// (bounded-cardinality labels; see obs.DefaultVecMaxLabels).
	stmtsByClass  *obs.CounterVec
	latByClass    *obs.HistogramVec
	stmtsByOrigin *obs.CounterVec
	predsByModel  *obs.CounterVec
	trainsByModel *obs.CounterVec
}

// workers returns the effective worker-pool bound.
func (p *Provider) workers() int {
	if p.parallelism > 0 {
		return p.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// catalogSnapshot is one published, immutable view of the model catalog.
// The map and every entry in it are read-only after the snapshot is stored;
// a catalog change builds a new map (sharing unchanged entries) and swaps
// the pointer.
type catalogSnapshot struct {
	models map[string]*modelEntry // keyed by lower-cased model name
}

// modelEntry couples a catalogued model with its tokenizer and accumulated
// training cases (INSERT INTO may run repeatedly; each run retrains over
// everything consumed so far). Entries are immutable once published in a
// snapshot: training clones the space and cases, trains on the clones, and
// publishes a replacement entry, so concurrent readers keep a consistent
// (model, tokenizer, cases) triple for as long as they hold the pointer.
type modelEntry struct {
	model     *core.Model
	tokenizer *core.Tokenizer
	cases     []core.Case
}

// Option configures a Provider.
type Option func(*Provider)

// WithDirectory enables disk persistence: tables under dir/tables, models
// under dir/models. Existing state is loaded by New.
func WithDirectory(dir string) Option {
	return func(p *Provider) { p.dir = dir }
}

// WithParallelism bounds the worker pool for the parallel scan paths.
// n <= 0 restores the default (runtime.GOMAXPROCS(0)); n == 1 forces
// sequential execution.
func WithParallelism(n int) Option {
	return func(p *Provider) { p.parallelism = n }
}

// WithObsRegistry installs an externally owned observability registry, so
// several providers (or a provider and its server) can share one metrics
// namespace. Passing nil disables observability: no counters, no latency
// histograms, no query log — the instrumentation hooks degrade to no-ops.
func WithObsRegistry(r *obs.Registry) Option {
	return func(p *Provider) { p.obs, p.obsSet = r, true }
}

// WithQueryLogCapacity bounds the $SYSTEM.DM_QUERY_LOG ring buffer of the
// provider's default registry (obs.DefaultQueryLogCap when n <= 0). It has
// no effect when WithObsRegistry supplied a registry.
func WithQueryLogCapacity(n int) Option {
	return func(p *Provider) { p.logCap = n }
}

// WithPlanCacheCap bounds the plan cache's LRU capacity
// (plancache.DefaultCap when n <= 0). Small caps are mainly useful in tests
// that need eviction pressure.
func WithPlanCacheCap(n int) Option {
	return func(p *Provider) { p.planCacheCap = n }
}

// WithMaxInFlight bounds the number of statements a session executes
// concurrently (admission control). A statement arriving at a full session
// waits in a bounded queue (at most n waiters); when the queue is also full
// it is rejected immediately with a *BusyError. n <= 0 (the default) leaves
// sessions unbounded. Individual sessions may override the bound with
// WithSessionMaxInFlight.
func WithMaxInFlight(n int) Option {
	return func(p *Provider) { p.maxInFlight = n }
}

// New creates a provider with the six reference mining services installed
// (Decision_Trees, Naive_Bayes, Clustering, Association_Rules,
// Linear_Regression, Sequence_Analysis).
func New(opts ...Option) (*Provider, error) {
	db := storage.NewDatabase()
	p := &Provider{
		DB:       db,
		Engine:   sqlengine.NewEngine(db),
		Registry: core.NewRegistry(),
		catalog:  make(map[string]*modelEntry),
	}
	p.snap.Store(&catalogSnapshot{models: map[string]*modelEntry{}})
	p.Registry.Register(dtree.New())
	p.Registry.Register(nbayes.New())
	p.Registry.Register(cluster.New())
	p.Registry.Register(assoc.New())
	p.Registry.Register(linreg.New())
	p.Registry.Register(markov.New())
	// The paper's running example names its service [Decision_Trees_101].
	p.Registry.RegisterAs("Decision_Trees_101", dtree.New())
	for _, o := range opts {
		o(p)
	}
	// The SQL engine's morsel-parallel scans and hash-join key builds share
	// the provider's worker bound (<= 0 means GOMAXPROCS there too).
	p.Engine.Vec.Workers = p.parallelism
	if !p.obsSet {
		p.obs = obs.NewRegistry(p.logCap)
	}
	p.execTotal = p.obs.Counter(obs.MetricStatementsTotal)
	p.execErrors = p.obs.Counter(obs.MetricErrorsTotal)
	p.execCancels = p.obs.Counter(obs.MetricCancelledTotal)
	p.rowsOut = p.obs.Counter(obs.MetricRowsOutTotal)
	p.latency = p.obs.Histogram(obs.MetricStatementLatency)
	p.preparedTotal = p.obs.Counter(obs.MetricPreparedTotal)
	p.preparedExec = p.obs.Counter(obs.MetricPreparedExecTotal)
	p.preparedReplans = p.obs.Counter(obs.MetricPreparedReplans)
	p.admInFlight = p.obs.Gauge(obs.MetricAdmissionInFlight)
	p.admQueueDepth = p.obs.Gauge(obs.MetricAdmissionQueueDepth)
	p.admRejected = p.obs.Counter(obs.MetricAdmissionRejected)
	p.stmtsByClass = p.obs.CounterVec(obs.MetricStatementsByClass, obs.LabelClass)
	p.latByClass = p.obs.HistogramVec(obs.MetricLatencyByClass, obs.LabelClass)
	p.stmtsByOrigin = p.obs.CounterVec(obs.MetricStatementsByOrigin, obs.LabelOrigin)
	p.predsByModel = p.obs.CounterVec(obs.MetricPredictionsByModel, obs.LabelModel)
	p.trainsByModel = p.obs.CounterVec(obs.MetricTrainingsByModel, obs.LabelModel)
	p.Engine.Instrument(p.obs)
	p.versions = plancache.NewVersions()
	p.planCache = plancache.NewCache(p.versions, p.planCacheCap)
	p.planCache.SetMetrics(plancache.Metrics{
		Hits:          p.obs.Counter(obs.MetricPlanCacheHits),
		Misses:        p.obs.Counter(obs.MetricPlanCacheMisses),
		Evictions:     p.obs.Counter(obs.MetricPlanCacheEvictions),
		Invalidations: p.obs.Counter(obs.MetricPlanCacheInvalidations),
	})
	// Table and view DDL executed by the SQL engine invalidates dependent
	// cached plans; model DDL bumps versions in createModel/dropModel.
	p.Engine.SetDDLHook(p.versions.Bump)
	p.session = p.NewSession()
	if p.dir != "" {
		if err := p.load(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Obs returns the provider's observability registry (nil when disabled).
// The same data is queryable in-band through the $SYSTEM.DM_QUERY_LOG,
// DM_PROVIDER_METRICS, and DM_CONNECTIONS schema rowsets.
func (p *Provider) Obs() *obs.Registry { return p.obs }

// IsModel reports whether name refers to a catalogued mining model.
func (p *Provider) IsModel(name string) bool {
	_, ok := p.snap.Load().models[strings.ToLower(name)]
	return ok
}

// Model returns the catalogued model by name. A miss reports a
// *core.NotFoundError. The returned model is an immutable snapshot: a
// concurrent INSERT INTO publishes a replacement rather than mutating it.
func (p *Provider) Model(name string) (*core.Model, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	return e.model, nil
}

// entry resolves a model against the current catalog snapshot, lock-free.
func (p *Provider) entry(name string) (*modelEntry, error) {
	e, ok := p.snap.Load().models[strings.ToLower(name)]
	if !ok {
		return nil, &core.NotFoundError{Kind: "mining model", Name: name}
	}
	return e, nil
}

// ModelNames lists catalogued models, sorted.
func (p *Provider) ModelNames() []string {
	snap := p.snap.Load()
	names := make([]string, 0, len(snap.models))
	for _, e := range snap.models {
		names = append(names, e.model.Def.Name)
	}
	sort.Strings(names)
	return names
}

// allModels lists the catalogued models from the current snapshot, sorted by
// name so $SYSTEM rowsets render deterministically.
func (p *Provider) allModels() []*core.Model {
	snap := p.snap.Load()
	out := make([]*core.Model, 0, len(snap.models))
	for _, e := range snap.models {
		out = append(out, e.model)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Def.Name < out[j].Def.Name })
	return out
}

// ModelDef implements sem.Catalog: the definition of a catalogued model.
// A miss reports a *core.NotFoundError.
func (p *Provider) ModelDef(name string) (*core.ModelDef, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	return e.model.Def, nil
}

// TableSchema implements sem.Catalog: the schema of a relational table.
// A miss reports a *core.NotFoundError.
func (p *Provider) TableSchema(name string) (*rowset.Schema, error) {
	t, err := p.DB.Table(name)
	if err != nil {
		return nil, &core.NotFoundError{Kind: "table", Name: name}
	}
	return t.Schema(), nil
}

// publishLocked swaps in a fresh catalog snapshot built from the writer's
// working map. commitMu must be held.
func (p *Provider) publishLocked() {
	models := make(map[string]*modelEntry, len(p.catalog))
	for k, v := range p.catalog {
		models[k] = v
	}
	p.snap.Store(&catalogSnapshot{models: models})
}

// createModel registers a validated model definition.
func (p *Provider) createModel(def *core.ModelDef) (*rowset.Rowset, error) {
	if _, err := p.Registry.Lookup(def.Algorithm); err != nil {
		return nil, err
	}
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	key := strings.ToLower(def.Name)
	if _, dup := p.catalog[key]; dup {
		return nil, fmt.Errorf("provider: mining model %q already exists", def.Name)
	}
	e := &modelEntry{
		model:     &core.Model{Def: def},
		tokenizer: core.NewTokenizer(def),
	}
	e.model.Space = e.tokenizer.Space
	// Persist before publishing: a snapshot never exposes an entry whose
	// save failed, and the entry is still writer-private here.
	if err := p.saveModel(e); err != nil {
		return nil, err
	}
	p.catalog[key] = e
	p.publishLocked()
	// A new model changes DMX/SQL dispatch for statements naming it (INSERT
	// INTO <name> now trains instead of inserting rows), so cached plans on
	// the name must die.
	p.versions.Bump(def.Name)
	return status("model created")
}

// deleteFrom resets a model (the paper's "emptied (reset) via DELETE") by
// publishing a fresh, untrained entry. In-flight readers keep the old
// trained snapshot until they finish — the copy-on-write analogue of a
// reader holding a read lock across its statement.
func (p *Provider) deleteFrom(name string) (*rowset.Rowset, error) {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	key := strings.ToLower(name)
	old, ok := p.catalog[key]
	if !ok {
		return nil, &core.NotFoundError{Kind: "mining model", Name: name}
	}
	e := &modelEntry{
		model:     &core.Model{Def: old.model.Def},
		tokenizer: core.NewTokenizer(old.model.Def),
	}
	e.model.Space = e.tokenizer.Space
	if err := p.saveModel(e); err != nil {
		return nil, err
	}
	p.catalog[key] = e
	p.publishLocked()
	return status("model reset")
}

func (p *Provider) dropModel(name string) (*rowset.Rowset, error) {
	p.commitMu.Lock()
	key := strings.ToLower(name)
	_, ok := p.catalog[key]
	if !ok {
		p.commitMu.Unlock()
		return nil, &core.NotFoundError{Kind: "mining model", Name: name}
	}
	delete(p.catalog, key)
	p.publishLocked()
	p.commitMu.Unlock()
	p.versions.Bump(name)
	if err := p.removeModelFile(name); err != nil {
		return nil, err
	}
	return status("model dropped")
}

// status renders a one-cell result for DDL-style statements.
func status(msg string) (*rowset.Rowset, error) {
	rs := rowset.New(rowset.MustSchema(rowset.Column{Name: "status", Type: rowset.TypeText}))
	if err := rs.AppendVals(msg); err != nil {
		return nil, err
	}
	return rs, nil
}
