// Package provider implements the OLE DB for Data Mining provider: the
// component that accepts DMX/SQL command text and exposes mining models as
// first-class objects next to relational tables (Figure 1 of the paper).
//
// A Provider owns a relational database (storage + sqlengine), a mining
// model catalog, and an algorithm registry. Execute dispatches command text:
// DMX statements (CREATE MINING MODEL, INSERT INTO a model, PREDICTION JOIN,
// SELECT FROM <model>.CONTENT, DELETE FROM a model, DROP MINING MODEL, and
// $SYSTEM schema rowsets) run on the mining engine; everything else runs on
// the SQL engine. This mirrors the paper's design: "the mining model can
// participate in interaction with other objects using the primitives listed
// above" without leaving the SQL surface.
package provider

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/algo/assoc"
	"repro/internal/algo/cluster"
	"repro/internal/algo/dtree"
	"repro/internal/algo/linreg"
	"repro/internal/algo/markov"
	"repro/internal/algo/nbayes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/rowset"
	"repro/internal/sqlengine"
	"repro/internal/storage"
)

// Provider is an in-process OLE DB DM provider instance.
type Provider struct {
	// DB is the relational substrate holding source tables.
	DB *storage.Database
	// Engine executes the SQL subset over DB.
	Engine *sqlengine.Engine
	// Registry holds the installed mining services.
	Registry *core.Registry

	// mu guards the model catalogue, the prepared-statement registry, and
	// every trained model's mutable state; the annotation below is
	// machine-checked by tools/dmlint (lockcheck).
	//
	//dmlint:guard mu: Provider.models, Provider.prepared, preparedStmt.plan, modelEntry.cases, modelEntry.tokenizer, core.Model.Trained, core.Model.Space, core.Model.CaseCount
	mu       sync.RWMutex
	models   map[string]*modelEntry   // keyed by lower-cased model name
	prepared map[string]*preparedStmt // keyed by lower-cased statement name

	// versions tracks catalog-object versions (models, tables, and views in
	// one namespace) and planCache maps normalized statement text to compiled
	// plans validated against those versions. planCacheCap overrides the
	// cache's LRU capacity when positive.
	versions     *plancache.Versions
	planCache    *plancache.Cache
	planCacheCap int

	// dir enables persistence when non-empty (see persist.go).
	dir string

	// parallelism bounds the worker pool used by the per-case scan loops
	// (PREDICTION JOIN evaluation, INSERT INTO row reshaping). Defaults to
	// runtime.GOMAXPROCS(0); 1 forces the sequential path.
	parallelism int

	// obs is the observability registry behind the $SYSTEM.DM_QUERY_LOG,
	// DM_PROVIDER_METRICS, and DM_CONNECTIONS schema rowsets. nil disables
	// instrumentation entirely (all handles below become no-ops).
	obs    *obs.Registry
	obsSet bool // an option supplied obs explicitly (possibly nil)
	logCap int  // query-log ring capacity for the default registry

	// Cached hot-path metric handles (nil-safe when obs is nil).
	execTotal       *obs.Counter
	execErrors      *obs.Counter
	execCancels     *obs.Counter
	rowsOut         *obs.Counter
	latency         *obs.Histogram
	preparedTotal   *obs.Counter
	preparedExec    *obs.Counter
	preparedReplans *obs.Counter
}

// workers returns the effective worker-pool bound.
func (p *Provider) workers() int {
	if p.parallelism > 0 {
		return p.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// modelEntry couples a catalogued model with its tokenizer and accumulated
// training cases (INSERT INTO may run repeatedly; each run retrains over
// everything consumed so far).
type modelEntry struct {
	model     *core.Model
	tokenizer *core.Tokenizer
	cases     []core.Case
}

// Option configures a Provider.
type Option func(*Provider)

// WithDirectory enables disk persistence: tables under dir/tables, models
// under dir/models. Existing state is loaded by New.
func WithDirectory(dir string) Option {
	return func(p *Provider) { p.dir = dir }
}

// WithParallelism bounds the worker pool for the parallel scan paths.
// n <= 0 restores the default (runtime.GOMAXPROCS(0)); n == 1 forces
// sequential execution.
func WithParallelism(n int) Option {
	return func(p *Provider) { p.parallelism = n }
}

// WithObsRegistry installs an externally owned observability registry, so
// several providers (or a provider and its server) can share one metrics
// namespace. Passing nil disables observability: no counters, no latency
// histograms, no query log — the instrumentation hooks degrade to no-ops.
func WithObsRegistry(r *obs.Registry) Option {
	return func(p *Provider) { p.obs, p.obsSet = r, true }
}

// WithQueryLogCapacity bounds the $SYSTEM.DM_QUERY_LOG ring buffer of the
// provider's default registry (obs.DefaultQueryLogCap when n <= 0). It has
// no effect when WithObsRegistry supplied a registry.
func WithQueryLogCapacity(n int) Option {
	return func(p *Provider) { p.logCap = n }
}

// WithPlanCacheCap bounds the plan cache's LRU capacity
// (plancache.DefaultCap when n <= 0). Small caps are mainly useful in tests
// that need eviction pressure.
func WithPlanCacheCap(n int) Option {
	return func(p *Provider) { p.planCacheCap = n }
}

// New creates a provider with the six reference mining services installed
// (Decision_Trees, Naive_Bayes, Clustering, Association_Rules,
// Linear_Regression, Sequence_Analysis).
func New(opts ...Option) (*Provider, error) {
	db := storage.NewDatabase()
	p := &Provider{
		DB:       db,
		Engine:   sqlengine.NewEngine(db),
		Registry: core.NewRegistry(),
		models:   make(map[string]*modelEntry),
	}
	p.Registry.Register(dtree.New())
	p.Registry.Register(nbayes.New())
	p.Registry.Register(cluster.New())
	p.Registry.Register(assoc.New())
	p.Registry.Register(linreg.New())
	p.Registry.Register(markov.New())
	// The paper's running example names its service [Decision_Trees_101].
	p.Registry.RegisterAs("Decision_Trees_101", dtree.New())
	for _, o := range opts {
		o(p)
	}
	if !p.obsSet {
		p.obs = obs.NewRegistry(p.logCap)
	}
	p.execTotal = p.obs.Counter("provider_statements_total")
	p.execErrors = p.obs.Counter("provider_errors_total")
	p.execCancels = p.obs.Counter("provider_cancelled_total")
	p.rowsOut = p.obs.Counter("provider_rows_out_total")
	p.latency = p.obs.Histogram("provider_statement_latency_us")
	p.preparedTotal = p.obs.Counter("prepared_statements_total")
	p.preparedExec = p.obs.Counter("prepared_exec_total")
	p.preparedReplans = p.obs.Counter("prepared_replans_total")
	p.Engine.Instrument(p.obs)
	//dmlint:allow lockcheck — constructor; the provider is not shared yet.
	p.prepared = make(map[string]*preparedStmt)
	p.versions = plancache.NewVersions()
	p.planCache = plancache.NewCache(p.versions, p.planCacheCap)
	p.planCache.SetMetrics(plancache.Metrics{
		Hits:          p.obs.Counter("plan_cache_hits_total"),
		Misses:        p.obs.Counter("plan_cache_misses_total"),
		Evictions:     p.obs.Counter("plan_cache_evictions_total"),
		Invalidations: p.obs.Counter("plan_cache_invalidations_total"),
	})
	// Table and view DDL executed by the SQL engine invalidates dependent
	// cached plans; model DDL bumps versions in createModel/dropModel.
	p.Engine.SetDDLHook(p.versions.Bump)
	if p.dir != "" {
		if err := p.load(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Obs returns the provider's observability registry (nil when disabled).
// The same data is queryable in-band through the $SYSTEM.DM_QUERY_LOG,
// DM_PROVIDER_METRICS, and DM_CONNECTIONS schema rowsets.
func (p *Provider) Obs() *obs.Registry { return p.obs }

// IsModel reports whether name refers to a catalogued mining model.
func (p *Provider) IsModel(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.models[strings.ToLower(name)]
	return ok
}

// Model returns the catalogued model by name. A miss reports a
// *core.NotFoundError.
func (p *Provider) Model(name string) (*core.Model, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	return e.model, nil
}

func (p *Provider) entry(name string) (*modelEntry, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.models[strings.ToLower(name)]
	if !ok {
		return nil, &core.NotFoundError{Kind: "mining model", Name: name}
	}
	return e, nil
}

// ModelNames lists catalogued models, sorted.
func (p *Provider) ModelNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.models))
	for _, e := range p.models {
		names = append(names, e.model.Def.Name)
	}
	sort.Strings(names)
	return names
}

func (p *Provider) allModels() []*core.Model {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.modelsLocked()
}

// modelsLocked lists the catalogued models; p.mu must be held.
func (p *Provider) modelsLocked() []*core.Model {
	out := make([]*core.Model, 0, len(p.models))
	for _, e := range p.models {
		out = append(out, e.model)
	}
	return out
}

// ModelDef implements sem.Catalog: the definition of a catalogued model.
// A miss reports a *core.NotFoundError.
func (p *Provider) ModelDef(name string) (*core.ModelDef, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e, ok := p.models[strings.ToLower(name)]
	if !ok {
		return nil, &core.NotFoundError{Kind: "mining model", Name: name}
	}
	return e.model.Def, nil
}

// TableSchema implements sem.Catalog: the schema of a relational table.
// A miss reports a *core.NotFoundError.
func (p *Provider) TableSchema(name string) (*rowset.Schema, error) {
	t, err := p.DB.Table(name)
	if err != nil {
		return nil, &core.NotFoundError{Kind: "table", Name: name}
	}
	return t.Schema(), nil
}

// createModel registers a validated model definition.
func (p *Provider) createModel(def *core.ModelDef) (*rowset.Rowset, error) {
	if _, err := p.Registry.Lookup(def.Algorithm); err != nil {
		return nil, err
	}
	// The lock covers the save too: the entry is visible in the catalogue the
	// moment it is inserted, and persisting it outside the lock would race a
	// concurrent INSERT INTO mutating the very state being encoded.
	p.mu.Lock()
	defer p.mu.Unlock()
	key := strings.ToLower(def.Name)
	if _, dup := p.models[key]; dup {
		return nil, fmt.Errorf("provider: mining model %q already exists", def.Name)
	}
	e := &modelEntry{
		model:     &core.Model{Def: def},
		tokenizer: core.NewTokenizer(def),
	}
	e.model.Space = e.tokenizer.Space
	p.models[key] = e
	if err := p.saveModelLocked(e); err != nil {
		return nil, err
	}
	// A new model changes DMX/SQL dispatch for statements naming it (INSERT
	// INTO <name> now trains instead of inserting rows), so cached plans on
	// the name must die.
	p.versions.Bump(def.Name)
	return status("model created")
}

// deleteFrom resets a model (the paper's "emptied (reset) via DELETE").
func (p *Provider) deleteFrom(name string) (*rowset.Rowset, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e.model.Reset()
	e.tokenizer = core.NewTokenizer(e.model.Def)
	e.model.Space = e.tokenizer.Space
	e.cases = nil
	if err := p.saveModelLocked(e); err != nil {
		return nil, err
	}
	return status("model reset")
}

func (p *Provider) dropModel(name string) (*rowset.Rowset, error) {
	p.mu.Lock()
	key := strings.ToLower(name)
	_, ok := p.models[key]
	if !ok {
		p.mu.Unlock()
		return nil, &core.NotFoundError{Kind: "mining model", Name: name}
	}
	delete(p.models, key)
	p.mu.Unlock()
	p.versions.Bump(name)
	if err := p.removeModelFile(name); err != nil {
		return nil, err
	}
	return status("model dropped")
}

// status renders a one-cell result for DDL-style statements.
func status(msg string) (*rowset.Rowset, error) {
	rs := rowset.New(rowset.MustSchema(rowset.Column{Name: "status", Type: rowset.TypeText}))
	if err := rs.AppendVals(msg); err != nil {
		return nil, err
	}
	return rs, nil
}
