package provider

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/content"
	"repro/internal/rowset"
)

// setupCustomerData stages the paper's Customers/Sales schema with a planted
// signal: males are older (~45) and buy Beer; females are younger (~25) and
// buy Wine; everyone may buy a TV.
func setupCustomerData(t testing.TB, p *Provider, n int) {
	t.Helper()
	mustExec(t, p, "CREATE TABLE Customers ([Customer ID] LONG, Gender TEXT, Age DOUBLE)")
	mustExec(t, p, "CREATE TABLE Sales (CustID LONG, [Product Name] TEXT, Quantity DOUBLE, [Product Type] TEXT)")
	rng := rand.New(rand.NewSource(77))
	var cust, sales strings.Builder
	cust.WriteString("INSERT INTO Customers VALUES ")
	sales.WriteString("INSERT INTO Sales VALUES ")
	firstSale := true
	for i := 1; i <= n; i++ {
		gender, age, drink := "Male", 45+rng.NormFloat64()*4, "Beer"
		if i%2 == 0 {
			gender, age, drink = "Female", 25+rng.NormFloat64()*4, "Wine"
		}
		if i > 1 {
			cust.WriteString(", ")
		}
		fmt.Fprintf(&cust, "(%d, '%s', %.2f)", i, gender, age)
		if !firstSale {
			sales.WriteString(", ")
		}
		firstSale = false
		fmt.Fprintf(&sales, "(%d, '%s', %d, 'Beverage')", i, drink, 1+rng.Intn(5))
		if rng.Float64() < 0.5 {
			fmt.Fprintf(&sales, ", (%d, 'TV', 1, 'Electronic')", i)
		}
	}
	mustExec(t, p, cust.String())
	mustExec(t, p, sales.String())
}

func mustExec(t testing.TB, p *Provider, cmd string) *rowset.Rowset {
	t.Helper()
	rs, err := p.Execute(cmd)
	if err != nil {
		t.Fatalf("Execute(%.80q...): %v", cmd, err)
	}
	return rs
}

const createAgeModel = `CREATE MINING MODEL [Age Prediction] (
	[Customer ID] LONG KEY,
	[Gender] TEXT DISCRETE,
	[Age] DOUBLE DISCRETIZED PREDICT,
	[Product Purchases] TABLE(
		[Product Name] TEXT KEY,
		[Quantity] DOUBLE NORMAL CONTINUOUS,
		[Product Type] TEXT DISCRETE RELATED TO [Product Name]
	)
) USING [Decision_Trees_101]`

const insertAgeModel = `INSERT INTO [Age Prediction] (
	[Customer ID], [Gender], [Age],
	[Product Purchases]([Product Name], [Quantity], [Product Type]))
SHAPE
	{SELECT [Customer ID], [Gender], [Age] FROM Customers ORDER BY [Customer ID]}
	APPEND (
		{SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales ORDER BY [CustID]}
		RELATE [Customer ID] To [CustID]) AS [Product Purchases]`

// TestPaperRunningExample executes, nearly verbatim, every statement of the
// paper's running example (Sections 3.2 and 3.3): create, populate via
// SHAPE, and prediction-join with the multi-part ON clause.
func TestPaperRunningExample(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 200)

	mustExec(t, p, createAgeModel)
	rs := mustExec(t, p, insertAgeModel)
	if rs.Row(0)[0] != int64(200) {
		t.Fatalf("cases consumed = %v", rs.Row(0))
	}

	out := mustExec(t, p, `SELECT t.[Customer ID], [Age Prediction].[Age]
FROM [Age Prediction]
PREDICTION JOIN (SHAPE {
	SELECT [Customer ID], [Gender] FROM Customers ORDER BY [Customer ID]}
	APPEND ({SELECT [CustID], [Product Name], [Quantity] FROM Sales ORDER BY [CustID]}
	RELATE [Customer ID] To [CustID]) AS [Product Purchases]) as t
ON [Age Prediction].Gender = t.Gender and
	[Age Prediction].[Product Purchases].[Product Name] = t.[Product Purchases].[Product Name] and
	[Age Prediction].[Product Purchases].[Quantity] = t.[Product Purchases].[Quantity]`)
	if out.Len() != 200 {
		t.Fatalf("prediction rows = %d", out.Len())
	}
	// The Age column is DISCRETIZED: predictions are bucket labels. Check
	// that male and female customers land in different age buckets.
	maleBucket, femaleBucket := "", ""
	for i := 0; i < out.Len(); i++ {
		id := out.Row(i)[0].(int64)
		bucket := out.Row(i)[1].(string)
		if id%2 == 1 && maleBucket == "" {
			maleBucket = bucket
		}
		if id%2 == 0 && femaleBucket == "" {
			femaleBucket = bucket
		}
	}
	if maleBucket == femaleBucket {
		t.Errorf("male and female age buckets identical (%q); model learned nothing", maleBucket)
	}
}

func TestNaturalPredictionJoinWithUDFs(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 200)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	out := mustExec(t, p, `SELECT
		Predict([Age]) AS est,
		PredictProbability([Age]) AS prob,
		PredictSupport([Age]) AS supp,
		t.Gender
	FROM [Age Prediction] NATURAL PREDICTION JOIN
		(SELECT 'Male' AS Gender) AS t`)
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	r := out.Row(0)
	prob := r[1].(float64)
	if prob <= 0.3 || prob > 1 {
		t.Errorf("prob = %v", prob)
	}
	if r[2].(float64) <= 0 {
		t.Errorf("support = %v", r[2])
	}
	if r[3] != "Male" {
		t.Errorf("passthrough gender = %v", r[3])
	}
}

func TestPredictHistogramAndTopCount(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 200)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	out := mustExec(t, p, `SELECT PredictHistogram([Age]) AS h
	FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT 'Female' AS Gender) AS t`)
	h := out.Row(0)[0].(*rowset.Rowset)
	if h.Len() < 2 {
		t.Fatalf("histogram rows = %d", h.Len())
	}
	var sum float64
	for _, r := range h.Rows() {
		sum += r[1].(float64)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("histogram prob sum = %v", sum)
	}

	out = mustExec(t, p, `SELECT TopCount(PredictHistogram([Age]), [$PROBABILITY], 2) AS top2
	FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT 'Female' AS Gender) AS t`)
	top := out.Row(0)[0].(*rowset.Rowset)
	if top.Len() != 2 {
		t.Fatalf("top2 rows = %d", top.Len())
	}
	if top.Row(0)[1].(float64) < top.Row(1)[1].(float64) {
		t.Error("TopCount not sorted by probability")
	}
}

func TestPredictionWhereAndTop(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 100)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)

	all := mustExec(t, p, `SELECT t.[Customer ID] FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t
		WHERE PredictProbability([Age]) > 0.3`)
	if all.Len() == 0 {
		t.Fatal("where filtered everything")
	}
	top := mustExec(t, p, `SELECT TOP 5 t.[Customer ID] FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t`)
	if top.Len() != 5 {
		t.Errorf("top rows = %d", top.Len())
	}
}

func TestMarketBasketAssociation(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE Orders (OrderID LONG, Item TEXT)")
	var b strings.Builder
	b.WriteString("INSERT INTO Orders VALUES ")
	for i := 1; i <= 120; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		if i%2 == 0 {
			fmt.Fprintf(&b, "(%d, 'beer'), (%d, 'chips')", i, i)
		} else {
			fmt.Fprintf(&b, "(%d, 'milk')", i)
		}
	}
	mustExec(t, p, b.String())
	mustExec(t, p, `CREATE MINING MODEL [Basket] (
		[OrderID] LONG KEY,
		[Items] TABLE([Item] TEXT KEY) PREDICT
	) USING [Association_Rules] (MINIMUM_SUPPORT = 0.1, MINIMUM_PROBABILITY = 0.5)`)
	mustExec(t, p, `INSERT INTO [Basket] ([OrderID], [Items]([Item]))
		SHAPE {SELECT DISTINCT OrderID FROM Orders ORDER BY OrderID}
		APPEND ({SELECT OrderID AS OID, Item FROM Orders ORDER BY OID}
			RELATE [OrderID] TO [OID]) AS [Items]`)

	// "The set of products the customer is likely to buy."
	out := mustExec(t, p, `SELECT Predict([Items], 2) AS recs
	FROM [Basket] NATURAL PREDICTION JOIN
		(SHAPE {SELECT 1 AS OrderID}
		 APPEND ({SELECT 1 AS OID, 'beer' AS Item} RELATE [OrderID] TO [OID]) AS [Items]) AS t`)
	recs := out.Row(0)[0].(*rowset.Rowset)
	if recs.Len() == 0 || recs.Row(0)[0] != "chips" {
		t.Fatalf("recommendations = %v", recs.Rows())
	}
	if recs.Len() > 2 {
		t.Errorf("max rows not applied: %d", recs.Len())
	}
}

func TestClusteringUDFs(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 100)
	mustExec(t, p, `CREATE MINING MODEL [Segments] (
		[Customer ID] LONG KEY,
		[Gender] TEXT DISCRETE,
		[Age] DOUBLE CONTINUOUS
	) USING [Clustering] (CLUSTER_COUNT = 2)`)
	mustExec(t, p, `INSERT INTO [Segments] ([Customer ID], [Gender], [Age])
		SELECT [Customer ID], Gender, Age FROM Customers`)

	out := mustExec(t, p, `SELECT Cluster() AS c, ClusterProbability() AS cp
	FROM [Segments] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender, 46.0 AS Age) AS t`)
	c := out.Row(0)[0].(string)
	if !strings.HasPrefix(c, "Cluster ") {
		t.Errorf("cluster = %v", c)
	}
	if cp := out.Row(0)[1].(float64); cp <= 0.5 {
		t.Errorf("cluster probability = %v", cp)
	}
	// Different inputs land in different clusters.
	out2 := mustExec(t, p, `SELECT Cluster() AS c
	FROM [Segments] NATURAL PREDICTION JOIN (SELECT 'Female' AS Gender, 24.0 AS Age) AS t`)
	if out2.Row(0)[0] == out.Row(0)[0] {
		t.Error("male/female landed in the same cluster")
	}
	// Cluster() on a non-clustering model errors.
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	if _, err := p.Execute(`SELECT Cluster() FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`); err == nil {
		t.Error("Cluster() on tree model must fail")
	}
}

func TestContentAndColumnsSelect(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 100)
	mustExec(t, p, createAgeModel)

	if _, err := p.Execute("SELECT * FROM [Age Prediction].CONTENT"); err == nil {
		t.Error("content of unpopulated model must fail")
	}
	cols := mustExec(t, p, "SELECT * FROM [Age Prediction].COLUMNS")
	if cols.Len() != 7 { // 4 top-level + 3 nested
		t.Errorf("columns rows = %d", cols.Len())
	}

	mustExec(t, p, insertAgeModel)
	content := mustExec(t, p, "SELECT * FROM [Age Prediction].CONTENT")
	if content.Len() < 3 {
		t.Fatalf("content rows = %d", content.Len())
	}
	if v, _ := content.Value(0, "MODEL_NAME"); v != "Age Prediction" {
		t.Errorf("model name = %v", v)
	}
	if _, ok := content.Schema().Lookup("NODE_DISTRIBUTION"); !ok {
		t.Error("NODE_DISTRIBUTION column missing")
	}
}

func TestSchemaRowsets(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 50)
	mustExec(t, p, createAgeModel)

	models := mustExec(t, p, "SELECT * FROM [$SYSTEM].[MINING_MODELS]")
	if models.Len() != 1 {
		t.Fatalf("models = %d", models.Len())
	}
	if v, _ := models.Value(0, "IS_POPULATED"); v != false {
		t.Error("unpopulated model reported as populated")
	}
	mustExec(t, p, insertAgeModel)
	models = mustExec(t, p, "SELECT * FROM $SYSTEM.MINING_MODELS")
	if v, _ := models.Value(0, "IS_POPULATED"); v != true {
		t.Error("populated model reported as unpopulated")
	}
	if v, _ := models.Value(0, "CASE_COUNT"); v != int64(50) {
		t.Errorf("case count = %v", v)
	}

	services := mustExec(t, p, "SELECT * FROM $SYSTEM.MINING_SERVICES")
	if services.Len() < 4 {
		t.Errorf("services = %d", services.Len())
	}
	params := mustExec(t, p, "SELECT * FROM $SYSTEM.SERVICE_PARAMETERS")
	if params.Len() < 10 {
		t.Errorf("service parameters = %d", params.Len())
	}
	funcs := mustExec(t, p, "SELECT * FROM $SYSTEM.MINING_FUNCTIONS")
	if funcs.Len() < 8 {
		t.Errorf("functions = %d", funcs.Len())
	}
	allCols := mustExec(t, p, "SELECT * FROM $SYSTEM.MINING_COLUMNS")
	if allCols.Len() != 7 {
		t.Errorf("mining columns = %d", allCols.Len())
	}
	if _, err := p.Execute("SELECT * FROM $SYSTEM.NOPE"); err == nil {
		t.Error("unknown schema rowset must fail")
	}
}

func TestDeleteFromResetsModel(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 60)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	if m, _ := p.Model("Age Prediction"); !m.IsTrained() {
		t.Fatal("model should be trained")
	}
	mustExec(t, p, "DELETE FROM [Age Prediction]")
	m, _ := p.Model("Age Prediction")
	if m.IsTrained() || m.CaseCount != 0 {
		t.Error("DELETE FROM must reset the model")
	}
	// Repopulate after reset.
	mustExec(t, p, insertAgeModel)
	if m, _ := p.Model("Age Prediction"); !m.IsTrained() {
		t.Error("reset model must retrain")
	}
}

func TestIncrementalInsertAccumulates(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 40)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	mustExec(t, p, insertAgeModel) // same data again: cases double
	m, _ := p.Model("Age Prediction")
	if m.CaseCount != 80 {
		t.Errorf("case count after two inserts = %d want 80", m.CaseCount)
	}
}

func TestDropModel(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 30)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, "DROP MINING MODEL [Age Prediction]")
	if p.IsModel("Age Prediction") {
		t.Error("model still catalogued after drop")
	}
	if _, err := p.Execute("DROP MINING MODEL [Age Prediction]"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestCreateModelErrors(t *testing.T) {
	p := MustNew()
	if _, err := p.Execute(`CREATE MINING MODEL m ([ID] LONG KEY, [X] TEXT DISCRETE) USING [NoSuchAlgo]`); err == nil {
		t.Error("unknown algorithm must fail")
	}
	mustExec(t, p, `CREATE MINING MODEL m ([ID] LONG KEY, [X] TEXT DISCRETE PREDICT) USING [Naive_Bayes]`)
	if _, err := p.Execute(`CREATE MINING MODEL [M] ([ID] LONG KEY, [X] TEXT DISCRETE PREDICT) USING [Naive_Bayes]`); err == nil {
		t.Error("duplicate model (case-insensitive) must fail")
	}
}

func TestPredictBeforeTrainFails(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 10)
	mustExec(t, p, createAgeModel)
	if _, err := p.Execute(`SELECT Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`); err == nil {
		t.Error("prediction on unpopulated model must fail")
	}
}

func TestSQLPassThrough(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 20)
	rs := mustExec(t, p, "SELECT COUNT(*) FROM Customers")
	if rs.Row(0)[0] != int64(20) {
		t.Errorf("sql passthrough = %v", rs.Row(0))
	}
}

func TestExecuteScript(t *testing.T) {
	p := MustNew()
	last, err := p.ExecuteScript(`
		CREATE TABLE T (a LONG);
		INSERT INTO T VALUES (1), (2);
		SELECT COUNT(*) FROM T;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if last.Row(0)[0] != int64(2) {
		t.Errorf("script result = %v", last.Row(0))
	}
	if _, err := p.ExecuteScript("SELECT 1; BOGUS"); err == nil {
		t.Error("bad script must fail")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := MustNew(WithDirectory(dir))
	setupCustomerData(t, p, 80)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	if err := p.Save(); err != nil {
		t.Fatal(err)
	}
	want := mustExec(t, p, `SELECT Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`)

	// Reopen from disk: tables, model, and trained state must survive.
	p2, err := New(WithDirectory(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !p2.IsModel("Age Prediction") {
		t.Fatal("model not loaded")
	}
	m, _ := p2.Model("Age Prediction")
	if !m.IsTrained() || m.CaseCount != 80 {
		t.Fatalf("loaded model: trained=%v cases=%d", m.IsTrained(), m.CaseCount)
	}
	got := mustExec(t, p2, `SELECT Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`)
	if got.Row(0)[0] != want.Row(0)[0] {
		t.Errorf("prediction after reload = %v want %v", got.Row(0)[0], want.Row(0)[0])
	}
	// Tables loaded too.
	rs := mustExec(t, p2, "SELECT COUNT(*) FROM Customers")
	if rs.Row(0)[0] != int64(80) {
		t.Errorf("customers after reload = %v", rs.Row(0))
	}
	// Dropping removes the file; a third open must not see the model.
	mustExec(t, p2, "DROP MINING MODEL [Age Prediction]")
	p3, err := New(WithDirectory(dir))
	if err != nil {
		t.Fatal(err)
	}
	if p3.IsModel("Age Prediction") {
		t.Error("dropped model resurrected on reload")
	}
}

func TestNaiveBayesModelViaDMX(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 200)
	mustExec(t, p, `CREATE MINING MODEL [Gender Model] (
		[Customer ID] LONG KEY,
		[Age] DOUBLE CONTINUOUS,
		[Gender] TEXT DISCRETE PREDICT
	) USING [Naive_Bayes]`)
	mustExec(t, p, `INSERT INTO [Gender Model] ([Customer ID], [Age], [Gender])
		SELECT [Customer ID], Age, Gender FROM Customers`)
	out := mustExec(t, p, `SELECT Predict([Gender]) AS g, PredictProbability([Gender], 'Male') AS pm
	FROM [Gender Model] NATURAL PREDICTION JOIN (SELECT 46.0 AS Age) AS t`)
	if out.Row(0)[0] != "Male" {
		t.Errorf("gender(46) = %v", out.Row(0)[0])
	}
	if pm := out.Row(0)[1].(float64); pm < 0.8 {
		t.Errorf("P(Male|46) = %v", pm)
	}
}

func TestBindingBySkip(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE Src (junk TEXT, id LONG, g TEXT)")
	mustExec(t, p, "INSERT INTO Src VALUES ('x', 1, 'a'), ('y', 2, 'b'), ('z', 3, 'a'), ('w', 4, 'a')")
	mustExec(t, p, `CREATE MINING MODEL [SkipModel] (
		[ID] LONG KEY, [G] TEXT DISCRETE PREDICT
	) USING [Naive_Bayes]`)
	// Positional binding with SKIP: junk is skipped, id→ID, g→G.
	mustExec(t, p, `INSERT INTO [SkipModel] (SKIP, [ID], [G]) SELECT junk, id, g FROM Src`)
	m, _ := p.Model("SkipModel")
	if m.CaseCount != 4 {
		t.Errorf("cases = %d", m.CaseCount)
	}
}

func TestCasesAccessor(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 30)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	rs := mustExec(t, p, "SELECT * FROM [Age Prediction].CASES")
	if rs.Len() == 0 {
		t.Fatal("no case rows")
	}
	// One row per (case, present attribute); every case key appears.
	keys := map[string]bool{}
	sawPresent, sawBucket := false, false
	for _, r := range rs.Rows() {
		keys[r[0].(string)] = true
		if r[2] == "present" {
			sawPresent = true
		}
		if s, ok := r[2].(string); ok && strings.HasPrefix(s, "<=") {
			sawBucket = true
		}
		if r[4].(float64) <= 0 {
			t.Fatalf("non-positive weight: %v", r)
		}
	}
	if len(keys) != 30 {
		t.Errorf("distinct case keys = %d", len(keys))
	}
	if !sawPresent {
		t.Error("no existence attribute rendered as 'present'")
	}
	if !sawBucket {
		t.Error("no discretized bucket label rendered")
	}
	// Unknown model errors.
	if _, err := p.Execute("SELECT * FROM [Nope].CASES"); err == nil {
		t.Error("cases of unknown model must fail")
	}
}

func TestRangeFunctions(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 200)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	out := mustExec(t, p, `SELECT RangeMin([Age]) AS lo, RangeMid([Age]) AS mid, RangeMax([Age]) AS hi
	FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`)
	lo := out.Row(0)[0].(float64)
	mid := out.Row(0)[1].(float64)
	hi := out.Row(0)[2].(float64)
	if !(lo < mid && mid < hi) {
		t.Errorf("range = %v %v %v", lo, mid, hi)
	}
	// Bounds stay within the data range (ages ~20..60).
	if lo < 15 || hi > 65 {
		t.Errorf("bounds outside data range: %v %v", lo, hi)
	}
	// RangeMid on a non-discretized column fails.
	if _, err := p.Execute(`SELECT RangeMid([Gender]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`); err == nil {
		t.Error("RangeMid on non-discretized column must fail")
	}
}

func TestConcurrentInsertAndPredict(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 120)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := p.Execute(`SELECT Predict([Age]) FROM [Age Prediction]
					NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := p.Execute(insertAgeModel); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := p.Execute("SELECT * FROM $SYSTEM.MINING_MODELS"); err != nil {
				errs <- err
				return
			}
			if _, err := p.Execute("SELECT * FROM [Age Prediction].CONTENT"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLinearRegressionViaDMX(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE Houses (ID LONG, Sqft DOUBLE, Rooms DOUBLE, Price DOUBLE)")
	var b strings.Builder
	b.WriteString("INSERT INTO Houses VALUES ")
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		sqft := 50 + rng.Float64()*150
		rooms := float64(1 + rng.Intn(5))
		price := 1000*sqft + 20000*rooms + rng.NormFloat64()*5000
		fmt.Fprintf(&b, "(%d, %.1f, %.0f, %.0f)", i, sqft, rooms, price)
	}
	mustExec(t, p, b.String())
	mustExec(t, p, `CREATE MINING MODEL [Price Model] (
		[ID] LONG KEY,
		[Sqft] DOUBLE CONTINUOUS,
		[Rooms] DOUBLE CONTINUOUS,
		[Price] DOUBLE CONTINUOUS PREDICT
	) USING [Linear_Regression]`)
	mustExec(t, p, `INSERT INTO [Price Model] ([ID], [Sqft], [Rooms], [Price])
		SELECT ID, Sqft, Rooms, Price FROM Houses`)

	out := mustExec(t, p, `SELECT Predict([Price]) AS est, PredictStdev([Price]) AS rmse
	FROM [Price Model] NATURAL PREDICTION JOIN (SELECT 100.0 AS Sqft, 3.0 AS Rooms) AS t`)
	est := out.Row(0)[0].(float64)
	want := 1000*100.0 + 20000*3.0
	if est < want*0.95 || est > want*1.05 {
		t.Errorf("price(100sqft, 3rooms) = %v want ~%v", est, want)
	}
	if rmse := out.Row(0)[1].(float64); rmse > 10000 {
		t.Errorf("rmse = %v", rmse)
	}
	// The fitted equation is browsable.
	content := mustExec(t, p, "SELECT * FROM [Price Model].CONTENT")
	found := false
	for _, r := range content.Rows() {
		if s, ok := r[3].(string); ok && strings.Contains(s, "R²") {
			found = true
		}
	}
	if !found {
		t.Error("equation caption missing from content")
	}
}

func TestLoadRejectsCorruptModelFile(t *testing.T) {
	dir := t.TempDir()
	p := MustNew(WithDirectory(dir))
	mustExec(t, p, `CREATE MINING MODEL [Good] ([ID] LONG KEY, [X] TEXT DISCRETE PREDICT) USING [Naive_Bayes]`)
	// Corrupt the file on disk; reopening must fail loudly, not silently
	// drop the model.
	files, err := filepath.Glob(filepath.Join(dir, "models", "*.dmm"))
	if err != nil || len(files) != 1 {
		t.Fatalf("model files = %v, %v", files, err)
	}
	if err := os.WriteFile(files[0], []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithDirectory(dir)); err == nil {
		t.Error("corrupt model file must fail the load")
	}
}

func TestSaveWithoutDirectoryErrors(t *testing.T) {
	p := MustNew()
	if err := p.Save(); err == nil {
		t.Error("Save without a directory must fail")
	}
}

func TestSequenceAnalysisViaDMX(t *testing.T) {
	p := MustNew()
	mustExec(t, p, "CREATE TABLE Visits (SessionID LONG, Step LONG, Page TEXT)")
	// Planted navigation pattern: home → search → product → checkout.
	pages := []string{"home", "search", "product", "checkout"}
	var b strings.Builder
	b.WriteString("INSERT INTO Visits VALUES ")
	first := true
	for s := 1; s <= 80; s++ {
		length := 2 + s%3
		for step := 0; step <= length; step++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "(%d, %d, '%s')", s, step, pages[(s+step)%4])
		}
	}
	mustExec(t, p, b.String())
	mustExec(t, p, `CREATE MINING MODEL [Nav] (
		[SessionID] LONG KEY,
		[Pages] TABLE(
			[Page] TEXT KEY,
			[Step] LONG SEQUENCE_TIME
		) PREDICT
	) USING [Sequence_Analysis]`)
	mustExec(t, p, `INSERT INTO [Nav] ([SessionID], [Pages]([Page], [Step]))
		SHAPE {SELECT DISTINCT SessionID FROM Visits ORDER BY SessionID}
		APPEND ({SELECT SessionID AS SID, Page, Step FROM Visits ORDER BY SID}
			RELATE [SessionID] TO [SID]) AS [Pages]`)

	// A session currently on "search" should be headed to "product".
	mustExec(t, p, "CREATE TABLE Current (SID LONG, Page TEXT, Step LONG)")
	mustExec(t, p, "INSERT INTO Current VALUES (1, 'home', 0), (1, 'search', 1)")
	out := mustExec(t, p, `SELECT Predict([Pages], 2) AS nxt FROM [Nav]
	NATURAL PREDICTION JOIN
		(SHAPE {SELECT 1 AS SessionID}
		 APPEND ({SELECT SID, Page, Step FROM Current ORDER BY SID}
			RELATE [SessionID] TO [SID]) AS [Pages]) AS t`)
	nxt := out.Row(0)[0].(*rowset.Rowset)
	if nxt.Len() == 0 || nxt.Row(0)[0] != "product" {
		t.Fatalf("next page = %v", nxt.Rows())
	}
	if prob := nxt.Row(0)[1].(float64); prob < 0.8 {
		t.Errorf("transition prob = %v", prob)
	}
	// The transition graph is browsable.
	content := mustExec(t, p, "SELECT * FROM [Nav].CONTENT")
	if content.Len() < 5 {
		t.Errorf("content nodes = %d", content.Len())
	}
}

func TestPMMLAccessor(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 40)
	mustExec(t, p, createAgeModel)
	if _, err := p.Execute("SELECT * FROM [Age Prediction].PMML"); err == nil {
		t.Error("PMML of unpopulated model must fail")
	}
	mustExec(t, p, insertAgeModel)
	rs := mustExec(t, p, "SELECT * FROM [Age Prediction].PMML")
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
	xmlDoc := rs.Row(0)[0].(string)
	for _, want := range []string{"<MiningModel", `name="Age Prediction"`, "<Node"} {
		if !strings.Contains(xmlDoc, want) {
			t.Errorf("PMML missing %q", want)
		}
	}
	// The document round-trips through the content reader.
	name, _, _, root, err := content.ReadXML(strings.NewReader(xmlDoc))
	if err != nil || name != "Age Prediction" || root.Count() < 3 {
		t.Errorf("PMML reparse: %v %v", name, err)
	}
}

func TestTrainFromView(t *testing.T) {
	// Section 3.1 of the paper: views are the mechanism that consolidates
	// entity data before mining. Define the caseset base as a view and
	// train through it — both as a SHAPE root and as a plain source.
	p := MustNew()
	setupCustomerData(t, p, 120)
	mustExec(t, p, `CREATE VIEW AdultCustomers AS
		SELECT [Customer ID], Gender, Age FROM Customers WHERE Age >= 21`)
	mustExec(t, p, `CREATE MINING MODEL [ViewModel] (
		[Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
		[Age] DOUBLE DISCRETIZED PREDICT,
		[Product Purchases] TABLE([Product Name] TEXT KEY)
	) USING [Decision_Trees]`)
	rs := mustExec(t, p, `INSERT INTO [ViewModel] ([Customer ID], [Gender], [Age],
		[Product Purchases]([Product Name]))
	SHAPE {SELECT [Customer ID], Gender, Age FROM AdultCustomers ORDER BY [Customer ID]}
	APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
		RELATE [Customer ID] TO [CustID]) AS [Product Purchases]`)
	consumed := rs.Row(0)[0].(int64)
	if consumed == 0 || consumed > 120 {
		t.Fatalf("cases consumed via view = %d", consumed)
	}
	// Prediction join can source from the view too.
	out := mustExec(t, p, `SELECT TOP 3 t.[Customer ID], Predict([Age]) FROM [ViewModel]
		NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM AdultCustomers) AS t`)
	if out.Len() != 3 {
		t.Errorf("view-sourced predictions = %d", out.Len())
	}
}

func TestSequenceModelPersistence(t *testing.T) {
	dir := t.TempDir()
	p := MustNew(WithDirectory(dir))
	mustExec(t, p, "CREATE TABLE V (SID LONG, Step LONG, Page TEXT)")
	mustExec(t, p, `INSERT INTO V VALUES
		(1,0,'a'), (1,1,'b'), (2,0,'a'), (2,1,'b'), (3,0,'b'), (3,1,'c')`)
	mustExec(t, p, `CREATE MINING MODEL [SeqP] (
		[SID] LONG KEY,
		[Pages] TABLE([Page] TEXT KEY, [Step] LONG SEQUENCE_TIME) PREDICT
	) USING [Sequence_Analysis]`)
	mustExec(t, p, `INSERT INTO [SeqP] ([SID], [Pages]([Page], [Step]))
		SHAPE {SELECT DISTINCT SID FROM V ORDER BY SID}
		APPEND ({SELECT SID AS S2, Page, Step FROM V ORDER BY S2} RELATE [SID] TO [S2]) AS [Pages]`)
	if err := p.Save(); err != nil {
		t.Fatal(err)
	}

	p2, err := New(WithDirectory(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, p2, "CREATE TABLE Probe (S LONG, Page TEXT, Step LONG)")
	mustExec(t, p2, "INSERT INTO Probe VALUES (1, 'a', 0)")
	out := mustExec(t, p2, `SELECT Predict([Pages], 1) AS n FROM [SeqP]
		NATURAL PREDICTION JOIN
		(SHAPE {SELECT 1 AS SID}
		 APPEND ({SELECT S AS S2, Page, Step FROM Probe ORDER BY S2} RELATE [SID] TO [S2]) AS [Pages]) AS t`)
	nxt := out.Row(0)[0].(*rowset.Rowset)
	if nxt.Len() == 0 || nxt.Row(0)[0] != "b" {
		t.Errorf("reloaded sequence model prediction = %v", nxt.Rows())
	}
}
