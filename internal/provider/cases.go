package provider

import (
	"bytes"
	"fmt"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/rowset"
)

// casesRowset renders the training cases a model has consumed (SELECT *
// FROM <model>.CASES) in tokenized attribute/value form: one row per
// (case, present attribute). This is the case-browsing accessor of the
// OLE DB DM specification; it also makes the tokenizer's work inspectable —
// useful when debugging why a model sees the data the way it does.
func (p *Provider) casesRowset(name string) (*rowset.Rowset, error) {
	// e is an immutable snapshot entry; its cases and space never change
	// after publication, so the render needs no lock.
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	schema := rowset.MustSchema(
		rowset.Column{Name: "CASE_KEY", Type: rowset.TypeText},
		rowset.Column{Name: "ATTRIBUTE", Type: rowset.TypeText},
		rowset.Column{Name: "VALUE", Type: rowset.TypeText},
		rowset.Column{Name: "PROBABILITY", Type: rowset.TypeDouble},
		rowset.Column{Name: "WEIGHT", Type: rowset.TypeDouble},
	)
	out := rowset.New(schema)
	space := e.tokenizer.Space
	for ci := range e.cases {
		c := &e.cases[ci]
		key := rowset.FormatValue(c.Key)
		// Deterministic attribute order: space index order.
		for idx := 0; idx < space.Len(); idx++ {
			v, ok := c.Values[idx]
			if !ok {
				continue
			}
			a := space.Attr(idx)
			if err := out.AppendVals(key, a.Name, renderCaseValue(a, v), c.ProbOf(idx), c.Weight); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// renderCaseValue maps a tokenized value back to its display form.
func renderCaseValue(a *core.Attribute, v rowset.Value) string {
	switch a.Kind {
	case core.KindExistence:
		return "present"
	case core.KindDiscrete:
		if st, ok := v.(int64); ok && int(st) >= 0 && int(st) < len(a.States) {
			return a.States[st]
		}
	}
	return rowset.FormatValue(v)
}

// pmmlRowset renders a trained model's content graph as a single-cell XML
// document (SELECT * FROM <model>.PMML).
func (p *Provider) pmmlRowset(name string) (*rowset.Rowset, error) {
	e, err := p.entry(name)
	if err != nil {
		return nil, err
	}
	// Immutable snapshot entry: Trained/CaseCount are fixed at publication.
	trained := e.model.Trained
	caseCount := e.model.CaseCount
	if trained == nil {
		return nil, fmt.Errorf("provider: model %q is not populated; INSERT INTO it first", name)
	}
	var buf bytes.Buffer
	if err := content.WriteXML(&buf, e.model.Def.Name, trained.AlgorithmName(), caseCount, trained.Content()); err != nil {
		return nil, err
	}
	out := rowset.New(rowset.MustSchema(rowset.Column{Name: "PMML", Type: rowset.TypeText}))
	if err := out.AppendVals(buf.String()); err != nil {
		return nil, err
	}
	return out, nil
}
