package provider

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dmx"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rowset"
	"repro/internal/sqlengine"
)

// predictionSelect executes SELECT ... FROM <model> PREDICTION JOIN
// (<source>) — the paper's Section 3.3 prediction operation. Each source
// case is bound to the model (by the ON clause or by name for NATURAL
// joins), tokenized through the model's frozen attribute space, and the
// select items are evaluated with the DMX prediction functions available.
func (p *Provider) predictionSelect(ctx context.Context, ps *dmx.PredictionSelect) (*rowset.Rowset, error) {
	t := obs.FromContext(ctx)
	e, err := p.entry(ps.Model)
	if err != nil {
		return nil, err
	}
	// e is an immutable catalog-snapshot entry: a concurrent INSERT INTO
	// trains against private clones and publishes a replacement entry, so
	// this statement reads a consistent (model, tokenizer, cases) triple for
	// its whole lifetime without taking any lock.
	if !e.model.IsTrained() {
		return nil, fmt.Errorf("provider: model %q is not populated; INSERT INTO it first", ps.Model)
	}
	p.predsByModel.With(e.model.Def.Name).Inc()
	spSource := t.StartSpanStage(obs.StageSource, "caseset", "")
	src, err := p.executeSource(ctx, ps.Source)
	if err != nil {
		t.EndSpan(spSource)
		return nil, err
	}
	spSource.SetRows(int64(src.Len()))
	t.EndSpan(spSource)
	t.AddRowsIn(int64(src.Len()))

	var bindings []dmx.Binding
	if ps.Natural {
		bindings = naturalBindings(e.model.Def, src.Schema())
	} else {
		bindings, err = onClauseBindings(e.model.Def, ps.Model, ps.Alias, ps.On, src.Schema())
		if err != nil {
			return nil, err
		}
	}
	if len(bindings) == 0 {
		return nil, fmt.Errorf("provider: prediction join binds no model columns (source columns: %v)",
			src.Schema().Names())
	}
	// Repeated prediction joins (and singleton WHERE <key> = ... statements)
	// probe the source table by case key; make sure the key column is indexed
	// so those probes are bucket lookups, not heap scans.
	p.indexPredictionKeys(ps.Source, e.model.Def, bindings)
	plan, outCols, err := bindColumns(e.model.Def.Name, e.model.Def.Columns, bindings, src.Schema(), true)
	if err != nil {
		return nil, err
	}
	modelSchema, err := rowset.NewSchema(outCols...)
	if err != nil {
		return nil, err
	}

	// Frozen tokenizer view: prediction never grows the attribute space.
	frozen := *e.tokenizer
	frozen.Freeze()

	// Qualify the source schema with the join alias so t.[col] resolves.
	evalSchema := src.Schema()
	if ps.Alias != "" {
		cols := make([]rowset.Column, evalSchema.Len())
		for i, c := range evalSchema.Columns {
			cols[i] = rowset.Column{Name: ps.Alias + "." + c.Name, Type: c.Type, Nested: c.Nested}
		}
		evalSchema, err = rowset.NewSchema(cols...)
		if err != nil {
			return nil, err
		}
	}

	items, err := expandPredictionItems(ps.Items, e.model.Def, evalSchema)
	if err != nil {
		return nil, err
	}
	names := itemNames(items)

	// Uncorrelated SQL subqueries in the WHERE/ORDER BY clauses resolve once
	// against the relational engine before the per-case loop.
	where, err := p.Engine.ResolveSubqueries(ps.Where)
	if err != nil {
		return nil, err
	}
	orderBy := append([]sqlengine.OrderItem(nil), ps.OrderBy...)
	for i := range orderBy {
		if orderBy[i].Expr, err = p.Engine.ResolveSubqueries(orderBy[i].Expr); err != nil {
			return nil, err
		}
	}

	// The binding is resolved once and shared read-only by every worker;
	// each case gets its own predictionContext (prediction cache) and Env.
	binder, err := frozen.NewCaseBinder(modelSchema)
	if err != nil {
		return nil, err
	}
	pp := &predictPlan{
		provider: p,
		entry:    e,
		ps:       ps,
		plan:     plan,
		binder:   binder,
		schema:   evalSchema,
		items:    items,
		where:    where,
		orderBy:  orderBy,
	}

	rows := src.Rows()
	results := make([]caseResult, len(rows))
	workers := p.workers()
	// The scan span is opened before the worker fork and closed after the
	// join: workers never touch the trace (spans are statement-goroutine
	// owned); the fan-out is recorded in the span label instead.
	spScan := t.StartSpanStage(obs.StageScan, "predict", "model="+ps.Model)
	if workers > 1 && len(rows) >= minParallelCases {
		t.SetParallelism(workers)
		spScan.SetLabel(fmt.Sprintf("model=%s workers=%d", ps.Model, workers))
		// Parallel scan: contiguous chunks, merged back in source order below,
		// so output (and therefore ORDER BY/TOP semantics) is byte-identical
		// to the sequential path. TOP without ORDER BY cannot short-circuit a
		// chunked scan; every case is evaluated and the merge truncates.
		err = par.ForEachCtx(ctx, len(rows), workers, func(i int) error {
			r, cerr := pp.evalCase(rows[i])
			if cerr != nil {
				return cerr
			}
			results[i] = r
			return nil
		})
		if err != nil {
			t.EndSpan(spScan)
			return nil, err
		}
	} else {
		t.SetParallelism(1)
		done := ctx.Done()
		kept := 0
		for i, srcRow := range rows {
			if done != nil && i&31 == 0 {
				select {
				case <-done:
					t.EndSpan(spScan)
					return nil, ctx.Err()
				default:
				}
			}
			r, cerr := pp.evalCase(srcRow)
			if cerr != nil {
				t.EndSpan(spScan)
				return nil, cerr
			}
			results[i] = r
			if r.keep {
				kept++
			}
			// Without ORDER BY, TOP short-circuits the scan; with it, every
			// row must be seen before the sort decides the winners.
			if len(orderBy) == 0 && ps.Top > 0 && kept >= ps.Top {
				break
			}
		}
	}
	t.EndSpan(spScan)

	// Merge in source order.
	out := make([]rowset.Row, 0, len(rows))
	var orderKeys []rowset.Row
	for i := range results {
		if !results[i].keep {
			continue
		}
		out = append(out, results[i].row)
		if len(orderBy) > 0 {
			orderKeys = append(orderKeys, results[i].keys)
		}
		if len(orderBy) == 0 && ps.Top > 0 && len(out) >= ps.Top {
			break
		}
	}

	if len(orderBy) > 0 {
		sortPredictionRows(out, orderKeys, orderBy)
		if ps.Top > 0 && len(out) > ps.Top {
			out = out[:ps.Top]
		}
	}
	spScan.SetRows(int64(len(out)))

	schema, err := predictionOutputSchema(items, names, evalSchema, out)
	if err != nil {
		return nil, err
	}
	// evalCase normalized every projected cell; adopt the rows rather than
	// normalizing them all a second time.
	return rowset.Adopt(schema, out), nil
}

// minParallelCases is the source size below which the goroutine fan-out costs
// more than the scan; tiny inputs stay on the calling goroutine.
const minParallelCases = 8

// indexPredictionKeys auto-creates a hash index on each source-table column
// bound to one of the model's KEY columns. Best-effort: only a bare
// single-table source names a table to index, and a failure to build the
// index never fails the statement — the scan path works without it.
func (p *Provider) indexPredictionKeys(src dmx.Source, def *core.ModelDef, bindings []dmx.Binding) {
	if src.Select == nil || len(src.Select.From) != 1 {
		return
	}
	tbl, ok := p.Engine.TableSource(src.Select.From[0].Name)
	if !ok {
		return
	}
	for _, b := range bindings {
		mc, ok := def.Column(b.Name)
		if !ok || mc.Content != core.ContentKey {
			continue
		}
		ord, ok := tbl.Schema().Lookup(b.Name)
		if !ok {
			continue
		}
		name := tbl.Schema().Column(ord).Name
		if !tbl.HasIndex(name) {
			_ = tbl.CreateIndex(name) //nolint:errcheck // advisory index; lookups fall back to scanning
		}
	}
}

// predictPlan is the per-statement read-only state shared by every prediction
// worker: resolved bindings, frozen-tokenizer case binder, pre-resolved
// WHERE/ORDER BY expressions, and the projection items.
type predictPlan struct {
	provider *Provider
	entry    *modelEntry
	ps       *dmx.PredictionSelect
	plan     []boundCol
	binder   *core.CaseBinder
	schema   *rowset.Schema // alias-qualified source schema
	items    []sqlengine.SelectItem
	where    sqlengine.Expr
	orderBy  []sqlengine.OrderItem
}

// caseResult is one source row's evaluated output: whether WHERE kept it, the
// projected row, and its ORDER BY keys.
type caseResult struct {
	keep bool
	row  rowset.Row
	keys rowset.Row
}

// evalCase tokenizes and evaluates one source row. It reads only shared
// immutable state (plan, binder, trained model) and is safe to call from
// concurrent workers.
func (pp *predictPlan) evalCase(srcRow rowset.Row) (caseResult, error) {
	modelRow := make(rowset.Row, 0, len(pp.plan))
	for _, b := range pp.plan {
		v := srcRow[b.srcOrd]
		if b.nestedSchema != nil {
			nested, ok := v.(*rowset.Rowset)
			switch {
			case v == nil:
				nested = rowset.New(b.nestedSrcSchema)
			case !ok:
				return caseResult{}, &NestedColumnTypeError{Column: b.name, Got: rowset.TypeOf(v).String()}
			}
			nv, nerr := reshapeNested(nested, b)
			if nerr != nil {
				return caseResult{}, nerr
			}
			v = nv
		}
		modelRow = append(modelRow, v)
	}
	c, err := pp.binder.TokenizeRow(modelRow)
	if err != nil {
		return caseResult{}, err
	}

	pc := &predictionContext{
		provider: pp.provider,
		entry:    pp.entry,
		c:        c,
		cache:    make(map[string]core.Prediction),
	}
	env := &sqlengine.Env{
		Schema:   pp.schema,
		Row:      srcRow,
		External: pc.resolveExternal(pp.ps.Model, pp.ps.Alias),
		Funcs:    pc.callUDF,
	}
	if pp.where != nil {
		v, err := sqlengine.Eval(pp.where, env)
		if err != nil {
			return caseResult{}, err
		}
		keep, err := sqlengine.Truthy(v)
		if err != nil {
			return caseResult{}, err
		}
		if !keep {
			return caseResult{}, nil
		}
	}
	row := make(rowset.Row, len(pp.items))
	for i, it := range pp.items {
		v, err := sqlengine.Eval(it.Expr, env)
		if err != nil {
			return caseResult{}, err
		}
		row[i] = rowset.Normalize(v)
	}
	res := caseResult{keep: true, row: row}
	if len(pp.orderBy) > 0 {
		keys := make(rowset.Row, len(pp.orderBy))
		for i, o := range pp.orderBy {
			v, err := sqlengine.Eval(o.Expr, env)
			if err != nil {
				return caseResult{}, err
			}
			keys[i] = rowset.Normalize(v)
		}
		res.keys = keys
	}
	return res, nil
}

// sortPredictionRows stable-sorts rows by the precomputed key columns through
// the module-wide key sort (single-key fast path, shared NULL/numeric
// comparison semantics).
func sortPredictionRows(rows []rowset.Row, keys []rowset.Row, order []sqlengine.OrderItem) {
	desc := make([]bool, len(order))
	for i, o := range order {
		desc[i] = o.Desc
	}
	rowset.SortByKeys(rows, keys, desc)
}

// naturalBindings binds model columns to same-named source columns; nested
// tables bind their nested columns by name too. Missing columns are simply
// absent (prediction inputs are partial by design).
func naturalBindings(def *core.ModelDef, src *rowset.Schema) []dmx.Binding {
	var out []dmx.Binding
	for i := range def.Columns {
		mc := &def.Columns[i]
		ord, ok := src.Lookup(mc.Name)
		if !ok {
			continue
		}
		b := dmx.Binding{Name: mc.Name}
		if mc.Content == core.ContentTable {
			nestedSrc := src.Column(ord).Nested
			if nestedSrc == nil {
				continue
			}
			for j := range mc.Table {
				if _, ok := nestedSrc.Lookup(mc.Table[j].Name); ok {
					b.Nested = append(b.Nested, dmx.Binding{Name: mc.Table[j].Name})
				}
			}
			if len(b.Nested) == 0 {
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// onClauseBindings interprets the ON clause: a conjunction of equalities
// between model column paths ([Model].[Col] or [Model].[Table].[Col]) and
// source column paths (t.[Col] or t.[Table].[Col]).
func onClauseBindings(def *core.ModelDef, model, alias string, on sqlengine.Expr, src *rowset.Schema) ([]dmx.Binding, error) {
	pairs, err := equalityPairs(on)
	if err != nil {
		return nil, err
	}
	var scalars []dmx.Binding
	nestedBy := make(map[string][]dmx.Binding) // lower table name → nested bindings
	var nestedOrder []string
	for _, pr := range pairs {
		mPath, sPath, err := classifySides(model, alias, pr)
		if err != nil {
			return nil, err
		}
		if len(mPath) == 1 {
			mc, ok := def.Column(mPath[0])
			if !ok {
				return nil, fmt.Errorf("provider: model %s has no column %q", model, mPath[0])
			}
			if len(sPath) != 1 {
				return nil, fmt.Errorf("provider: ON clause binds scalar %q to nested source path %v", mc.Name, sPath)
			}
			if _, ok := src.Lookup(sPath[0]); !ok {
				return nil, fmt.Errorf("provider: source has no column %q", sPath[0])
			}
			// bindColumns binds by the model column name; requiring source
			// columns to share it keeps the semantics of the paper's
			// examples without a separate rename layer.
			if !strings.EqualFold(mc.Name, sPath[0]) {
				return nil, fmt.Errorf("provider: ON clause binds model column %q to differently-named source column %q; "+
					"alias the source column to the model column name", mc.Name, sPath[0])
			}
			scalars = append(scalars, dmx.Binding{Name: mc.Name})
			continue
		}
		// Nested: mPath = [table, col].
		tableCol, ok := def.Column(mPath[0])
		if !ok || tableCol.Content != core.ContentTable {
			return nil, fmt.Errorf("provider: model %s has no nested table %q", model, mPath[0])
		}
		if len(sPath) != 2 {
			return nil, fmt.Errorf("provider: ON clause binds nested %s.%s to non-nested source path %v",
				mPath[0], mPath[1], sPath)
		}
		if !strings.EqualFold(mPath[1], sPath[1]) {
			return nil, fmt.Errorf("provider: ON clause binds nested column %q to differently-named source column %q",
				mPath[1], sPath[1])
		}
		key := strings.ToLower(tableCol.Name)
		if _, seen := nestedBy[key]; !seen {
			nestedOrder = append(nestedOrder, tableCol.Name)
		}
		nestedBy[key] = append(nestedBy[key], dmx.Binding{Name: mPath[1]})
	}
	out := scalars
	for _, tname := range nestedOrder {
		out = append(out, dmx.Binding{Name: tname, Nested: nestedBy[strings.ToLower(tname)]})
	}
	return out, nil
}

// equalityPairs flattens an AND-tree of equality comparisons.
func equalityPairs(e sqlengine.Expr) ([][2]*sqlengine.ColumnRef, error) {
	b, ok := e.(*sqlengine.Binary)
	if !ok {
		return nil, fmt.Errorf("provider: ON clause must be a conjunction of equalities, found %s", e)
	}
	switch b.Op {
	case sqlengine.OpAnd:
		l, err := equalityPairs(b.L)
		if err != nil {
			return nil, err
		}
		r, err := equalityPairs(b.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case sqlengine.OpEq:
		lc, ok1 := b.L.(*sqlengine.ColumnRef)
		rc, ok2 := b.R.(*sqlengine.ColumnRef)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("provider: ON clause equality must compare columns, found %s", b)
		}
		return [][2]*sqlengine.ColumnRef{{lc, rc}}, nil
	}
	return nil, fmt.Errorf("provider: unsupported ON clause operator in %s", b)
}

// classifySides determines which side of an equality names the model and
// returns (model path, source path) with qualifiers stripped.
func classifySides(model, alias string, pr [2]*sqlengine.ColumnRef) (mPath, sPath []string, err error) {
	a := refPath(pr[0])
	b := refPath(pr[1])
	switch {
	case pathHasPrefix(a, model):
		return a[1:], stripAlias(b, alias), nil
	case pathHasPrefix(b, model):
		return b[1:], stripAlias(a, alias), nil
	}
	return nil, nil, fmt.Errorf("provider: ON clause equality does not reference model %q: %s = %s",
		model, pr[0], pr[1])
}

func refPath(c *sqlengine.ColumnRef) []string {
	var parts []string
	if c.Qualifier != "" {
		parts = strings.Split(c.Qualifier, ".")
	}
	return append(parts, c.Name)
}

func pathHasPrefix(path []string, name string) bool {
	return len(path) > 1 && strings.EqualFold(path[0], name)
}

func stripAlias(path []string, alias string) []string {
	if alias != "" && len(path) > 1 && strings.EqualFold(path[0], alias) {
		return path[1:]
	}
	return path
}

// predictionContext evaluates the DMX prediction functions for one case.
type predictionContext struct {
	provider *Provider
	entry    *modelEntry
	c        core.Case
	cache    map[string]core.Prediction
}

// predictFor resolves a model column name to a Prediction, caching per case.
func (pc *predictionContext) predictFor(column string) (core.Prediction, error) {
	key := strings.ToLower(column)
	if p, ok := pc.cache[key]; ok {
		return p, nil
	}
	def := pc.entry.model.Def
	mc, ok := def.Column(column)
	if !ok {
		return core.Prediction{}, fmt.Errorf("provider: model %s has no column %q", def.Name, column)
	}
	var p core.Prediction
	var err error
	if mc.Content == core.ContentTable {
		p, err = pc.entry.model.Trained.PredictTable(pc.c, mc.Name)
	} else {
		idx, ok := pc.entry.model.Space.Lookup(mc.Name)
		if !ok {
			return core.Prediction{}, fmt.Errorf("provider: column %q has no trained attribute", column)
		}
		p, err = pc.entry.model.Trained.Predict(pc.c, idx)
	}
	if err != nil {
		return core.Prediction{}, err
	}
	pc.cache[key] = p
	return p, nil
}

// resolveExternal answers column references outside the source schema:
// [Model].[Col] and bare references to the model's PREDICT columns yield the
// prediction estimate.
func (pc *predictionContext) resolveExternal(model, alias string) func(string, string) (rowset.Value, bool, error) {
	return func(qualifier, name string) (rowset.Value, bool, error) {
		def := pc.entry.model.Def
		switch {
		case strings.EqualFold(qualifier, model):
		case qualifier == "":
			mc, ok := def.Column(name)
			if !ok || !mc.IsOutput() {
				return nil, false, nil
			}
		default:
			return nil, false, nil
		}
		mc, ok := def.Column(name)
		if !ok {
			return nil, false, nil
		}
		if mc.Content == core.ContentTable {
			return pc.predictTableRowset(mc, 0)
		}
		p, err := pc.predictFor(name)
		if err != nil {
			return nil, false, err
		}
		return p.Estimate, true, nil
	}
}

// callUDF dispatches the DMX prediction functions.
func (pc *predictionContext) callUDF(f *sqlengine.FuncCall, env *sqlengine.Env) (rowset.Value, bool, error) {
	if !dmx.IsPredictionFunc(f.Name) {
		return nil, false, nil
	}
	argColumn := func() (string, error) {
		if len(f.Args) < 1 {
			return "", fmt.Errorf("provider: %s needs a model column argument", f.Name)
		}
		cr, ok := f.Args[0].(*sqlengine.ColumnRef)
		if !ok {
			return "", fmt.Errorf("provider: %s: first argument must be a model column reference", f.Name)
		}
		return cr.Name, nil
	}
	switch f.Name {
	case dmx.FuncPredict, dmx.FuncPredictAssociation:
		col, err := argColumn()
		if err != nil {
			return nil, false, err
		}
		def := pc.entry.model.Def
		mc, ok := def.Column(col)
		if !ok {
			return nil, false, fmt.Errorf("provider: model %s has no column %q", def.Name, col)
		}
		if mc.Content == core.ContentTable {
			maxRows := 0
			if len(f.Args) > 1 {
				n, err := intArg(f.Args[1], env)
				if err != nil {
					return nil, false, err
				}
				maxRows = n
			}
			v, _, err := pc.predictTableRowset(mc, maxRows)
			return v, true, err
		}
		p, err := pc.predictFor(col)
		if err != nil {
			return nil, false, err
		}
		return p.Estimate, true, nil
	case dmx.FuncPredictProbability:
		col, err := argColumn()
		if err != nil {
			return nil, false, err
		}
		p, err := pc.predictFor(col)
		if err != nil {
			return nil, false, err
		}
		if len(f.Args) > 1 {
			want, err := sqlengine.Eval(f.Args[1], env)
			if err != nil {
				return nil, false, err
			}
			for _, b := range p.Histogram {
				if rowset.Equal(b.Value, rowset.Normalize(want)) {
					return b.Prob, true, nil
				}
			}
			return 0.0, true, nil
		}
		return p.Prob, true, nil
	case dmx.FuncPredictSupport:
		col, err := argColumn()
		if err != nil {
			return nil, false, err
		}
		p, err := pc.predictFor(col)
		if err != nil {
			return nil, false, err
		}
		return p.Support, true, nil
	case dmx.FuncPredictStdev:
		col, err := argColumn()
		if err != nil {
			return nil, false, err
		}
		p, err := pc.predictFor(col)
		if err != nil {
			return nil, false, err
		}
		return p.Stdev, true, nil
	case dmx.FuncPredictVariance:
		col, err := argColumn()
		if err != nil {
			return nil, false, err
		}
		p, err := pc.predictFor(col)
		if err != nil {
			return nil, false, err
		}
		return p.Stdev * p.Stdev, true, nil
	case dmx.FuncPredictHistogram:
		col, err := argColumn()
		if err != nil {
			return nil, false, err
		}
		p, err := pc.predictFor(col)
		if err != nil {
			return nil, false, err
		}
		hs, err := histogramRowset(col, p)
		if err != nil {
			return nil, false, err
		}
		return hs, true, nil
	case dmx.FuncTopCount:
		if len(f.Args) != 3 {
			return nil, false, fmt.Errorf("provider: TopCount(<table>, <rank column>, <n>)")
		}
		tv, err := sqlengine.Eval(f.Args[0], env)
		if err != nil {
			return nil, false, err
		}
		table, ok := tv.(*rowset.Rowset)
		if !ok {
			return nil, false, fmt.Errorf("provider: TopCount: first argument is %s, not a table", rowset.TypeOf(tv))
		}
		rankRef, ok := f.Args[1].(*sqlengine.ColumnRef)
		if !ok {
			return nil, false, fmt.Errorf("provider: TopCount: second argument must be a column of the table")
		}
		n, err := intArg(f.Args[2], env)
		if err != nil {
			return nil, false, err
		}
		ord, ok := table.Schema().Lookup(rankRef.Name)
		if !ok {
			return nil, false, fmt.Errorf("provider: TopCount: table has no column %q", rankRef.Name)
		}
		sorted := table.Clone()
		sorted.Sort([]int{ord}, []bool{true})
		out := rowset.New(sorted.Schema())
		for i := 0; i < sorted.Len() && i < n; i++ {
			if err := out.Append(sorted.Row(i)); err != nil {
				return nil, false, err
			}
		}
		return out, true, nil
	case dmx.FuncRangeMid, dmx.FuncRangeMin, dmx.FuncRangeMax:
		col, err := argColumn()
		if err != nil {
			return nil, false, err
		}
		return pc.rangeOf(f.Name, col)
	case dmx.FuncCluster, dmx.FuncClusterProbability:
		cp, ok := pc.entry.model.Trained.(core.ClusterPredictor)
		if !ok {
			return nil, false, fmt.Errorf("provider: model %s (%s) is not a clustering model",
				pc.entry.model.Def.Name, pc.entry.model.Trained.AlgorithmName())
		}
		p, err := cp.PredictCluster(pc.c)
		if err != nil {
			return nil, false, err
		}
		if f.Name == dmx.FuncCluster {
			return p.Estimate, true, nil
		}
		return p.Prob, true, nil
	}
	return nil, false, nil
}

func intArg(e sqlengine.Expr, env *sqlengine.Env) (int, error) {
	v, err := sqlengine.Eval(e, env)
	if err != nil {
		return 0, err
	}
	n, ok := rowset.Normalize(v).(int64)
	if !ok {
		return 0, fmt.Errorf("provider: expected an integer argument, got %s", rowset.TypeOf(v))
	}
	return int(n), nil
}

// rangeOf implements RangeMin/RangeMid/RangeMax: the numeric bounds of the
// predicted DISCRETIZED bucket, turning a bucket label back into a usable
// number (the open first/last buckets close over the observed data range).
func (pc *predictionContext) rangeOf(fn, column string) (rowset.Value, bool, error) {
	idx, ok := pc.entry.model.Space.Lookup(column)
	if !ok {
		return nil, false, fmt.Errorf("provider: column %q has no trained attribute", column)
	}
	a := pc.entry.model.Space.Attr(idx)
	if len(a.Cuts) == 0 {
		return nil, false, fmt.Errorf("provider: %s requires a DISCRETIZED column, %q is not", fn, column)
	}
	p, err := pc.predictFor(column)
	if err != nil {
		return nil, false, err
	}
	label, _ := p.Estimate.(string)
	bucket := a.StateIndex(label)
	lo, hi, ok := a.BucketBounds(bucket)
	if !ok {
		return nil, true, nil
	}
	switch fn {
	case dmx.FuncRangeMin:
		return lo, true, nil
	case dmx.FuncRangeMax:
		return hi, true, nil
	default:
		return (lo + hi) / 2, true, nil
	}
}

// predictTableRowset renders a nested-table prediction as a rowset whose key
// column carries the model's nested key column name.
func (pc *predictionContext) predictTableRowset(mc *core.ColumnDef, maxRows int) (rowset.Value, bool, error) {
	p, err := pc.predictFor(mc.Name)
	if err != nil {
		return nil, false, err
	}
	keyName := "KEY"
	for i := range mc.Table {
		if mc.Table[i].Content == core.ContentKey {
			keyName = mc.Table[i].Name
			break
		}
	}
	schema := rowset.MustSchema(
		rowset.Column{Name: keyName, Type: rowset.TypeText},
		rowset.Column{Name: "$PROBABILITY", Type: rowset.TypeDouble},
		rowset.Column{Name: "$SUPPORT", Type: rowset.TypeDouble},
	)
	out := rowset.New(schema)
	for i, b := range p.Histogram {
		if maxRows > 0 && i >= maxRows {
			break
		}
		if err := out.AppendVals(rowset.FormatValue(b.Value), b.Prob, b.Support); err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

// histogramRowset renders PredictHistogram output (Section 3.2.4: "a
// histogram provides multiple possible prediction values, each accompanied
// by a probability and other statistics").
func histogramRowset(column string, p core.Prediction) (*rowset.Rowset, error) {
	valueType := rowset.TypeText
	if len(p.Histogram) > 0 && rowset.TypeOf(p.Histogram[0].Value) != rowset.TypeNull {
		valueType = rowset.TypeOf(p.Histogram[0].Value)
	}
	schema := rowset.MustSchema(
		rowset.Column{Name: column, Type: valueType},
		rowset.Column{Name: "$PROBABILITY", Type: rowset.TypeDouble},
		rowset.Column{Name: "$SUPPORT", Type: rowset.TypeDouble},
		rowset.Column{Name: "$VARIANCE", Type: rowset.TypeDouble},
	)
	out := rowset.New(schema)
	for _, b := range p.Histogram {
		if err := out.AppendVals(b.Value, b.Prob, b.Support, b.Variance); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// expandPredictionItems expands * into the source columns.
func expandPredictionItems(items []sqlengine.SelectItem, def *core.ModelDef, evalSchema *rowset.Schema) ([]sqlengine.SelectItem, error) {
	var out []sqlengine.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, c := range evalSchema.Columns {
			name := c.Name
			if dot := strings.LastIndex(name, "."); dot >= 0 {
				name = name[dot+1:]
			}
			out = append(out, sqlengine.SelectItem{
				Expr:  &sqlengine.ColumnRef{Name: c.Name},
				Alias: name,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("provider: prediction select has no items")
	}
	return out, nil
}

func itemNames(items []sqlengine.SelectItem) []string {
	names := make([]string, len(items))
	seen := map[string]int{}
	for i, it := range items {
		n := it.Alias
		if n == "" {
			if cr, ok := it.Expr.(*sqlengine.ColumnRef); ok {
				n = cr.Name
			} else {
				n = it.Expr.String()
			}
		}
		key := strings.ToLower(n)
		if c := seen[key]; c > 0 {
			seen[key] = c + 1
			n = fmt.Sprintf("%s_%d", n, c+1)
			key = strings.ToLower(n)
		}
		seen[key]++
		names[i] = n
	}
	return names
}

func predictionOutputSchema(items []sqlengine.SelectItem, names []string, evalSchema *rowset.Schema, rows []rowset.Row) (*rowset.Schema, error) {
	cols := make([]rowset.Column, len(items))
	for i, it := range items {
		col := rowset.Column{Name: names[i], Type: rowset.TypeNull}
		if cr, ok := it.Expr.(*sqlengine.ColumnRef); ok {
			if ord, err := sqlengine.ResolveColumn(evalSchema, cr.Qualifier, cr.Name); err == nil {
				col.Type = evalSchema.Column(ord).Type
				col.Nested = evalSchema.Column(ord).Nested
			}
		}
		if col.Type == rowset.TypeNull {
			for _, r := range rows {
				if r[i] != nil {
					col.Type = rowset.TypeOf(r[i])
					if nested, ok := r[i].(*rowset.Rowset); ok {
						col.Nested = nested.Schema()
					}
					break
				}
			}
		}
		if col.Type == rowset.TypeNull {
			col.Type = rowset.TypeText
		}
		cols[i] = col
	}
	return rowset.NewSchema(cols...)
}
