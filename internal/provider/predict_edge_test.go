package provider

import (
	"strings"
	"testing"

	"repro/internal/rowset"
)

// trainedProvider returns a provider with the running-example model trained.
func trainedProvider(t *testing.T, n int) *Provider {
	t.Helper()
	p := MustNew()
	setupCustomerData(t, p, n)
	mustExec(t, p, createAgeModel)
	mustExec(t, p, insertAgeModel)
	return p
}

func TestPredictionSelectStar(t *testing.T) {
	p := trainedProvider(t, 50)
	out := mustExec(t, p, `SELECT *, Predict([Age]) AS est FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t`)
	if out.Len() != 50 {
		t.Fatalf("rows = %d", out.Len())
	}
	// Star expands to the source columns plus the explicit item.
	names := out.Schema().Names()
	if len(names) != 3 {
		t.Fatalf("columns = %v", names)
	}
	if _, ok := out.Schema().Lookup("est"); !ok {
		t.Errorf("est column missing: %v", names)
	}
}

func TestPredictionBareModelColumnRef(t *testing.T) {
	p := trainedProvider(t, 50)
	// Bare [Age] (a PREDICT column, absent from the source) resolves to the
	// prediction estimate via the External hook.
	out := mustExec(t, p, `SELECT [Age] FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`)
	if _, ok := out.Row(0)[0].(string); !ok { // discretized bucket label
		t.Errorf("bare Age ref = %#v", out.Row(0)[0])
	}
}

func TestPredictionUDFErrors(t *testing.T) {
	p := trainedProvider(t, 50)
	bad := []struct{ name, q string }{
		{"unknown column", `SELECT Predict([Nope]) FROM [Age Prediction]
			NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`},
		{"Predict without args", `SELECT Predict() FROM [Age Prediction]
			NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`},
		{"Predict on literal", `SELECT Predict(1) FROM [Age Prediction]
			NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`},
		{"TopCount arity", `SELECT TopCount(PredictHistogram([Age]), [$PROBABILITY])
			FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`},
		{"TopCount non-table", `SELECT TopCount(1, [$PROBABILITY], 2)
			FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`},
		{"TopCount bad rank column", `SELECT TopCount(PredictHistogram([Age]), [$NOPE], 2)
			FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`},
		{"TopCount non-integer n", `SELECT TopCount(PredictHistogram([Age]), [$PROBABILITY], 'x')
			FROM [Age Prediction] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`},
	}
	for _, c := range bad {
		if _, err := p.Execute(c.q); err == nil {
			t.Errorf("%s: must fail", c.name)
		}
	}
}

func TestPredictionOnClauseErrors(t *testing.T) {
	p := trainedProvider(t, 50)
	bad := []struct{ name, q string }{
		{"no model reference", `SELECT t.Gender FROM [Age Prediction]
			PREDICTION JOIN (SELECT 'Male' AS Gender) AS t ON t.Gender = t.Gender`},
		{"non-equality", `SELECT t.Gender FROM [Age Prediction]
			PREDICTION JOIN (SELECT 'Male' AS Gender) AS t ON [Age Prediction].Gender < t.Gender`},
		{"literal comparison", `SELECT t.Gender FROM [Age Prediction]
			PREDICTION JOIN (SELECT 'Male' AS Gender) AS t ON [Age Prediction].Gender = 'Male'`},
		{"unknown model column", `SELECT t.Gender FROM [Age Prediction]
			PREDICTION JOIN (SELECT 'Male' AS Gender) AS t ON [Age Prediction].Nope = t.Gender`},
		{"name mismatch", `SELECT t.G FROM [Age Prediction]
			PREDICTION JOIN (SELECT 'Male' AS G) AS t ON [Age Prediction].Gender = t.G`},
		{"unknown source column", `SELECT t.Gender FROM [Age Prediction]
			PREDICTION JOIN (SELECT 'Male' AS Gender) AS t ON [Age Prediction].Gender = t.Zzz`},
	}
	for _, c := range bad {
		if _, err := p.Execute(c.q); err == nil {
			t.Errorf("%s: must fail", c.name)
		}
	}
}

func TestPredictionNoBindableColumns(t *testing.T) {
	p := trainedProvider(t, 50)
	_, err := p.Execute(`SELECT 1 FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT 'x' AS Unrelated) AS t`)
	if err == nil || !strings.Contains(err.Error(), "binds no model columns") {
		t.Errorf("err = %v", err)
	}
}

func TestPredictVarianceMatchesStdev(t *testing.T) {
	p := MustNew()
	setupCustomerData(t, p, 200)
	mustExec(t, p, `CREATE MINING MODEL [CAge] (
		[Customer ID] LONG KEY, [Gender] TEXT DISCRETE,
		[Age] DOUBLE CONTINUOUS PREDICT
	) USING [Decision_Trees]`)
	mustExec(t, p, `INSERT INTO [CAge] ([Customer ID], [Gender], [Age])
		SELECT [Customer ID], Gender, Age FROM Customers`)
	out := mustExec(t, p, `SELECT PredictStdev([Age]) AS sd, PredictVariance([Age]) AS v
	FROM [CAge] NATURAL PREDICTION JOIN (SELECT 'Male' AS Gender) AS t`)
	sd := out.Row(0)[0].(float64)
	v := out.Row(0)[1].(float64)
	if sd <= 0 || v <= 0 {
		t.Fatalf("sd=%v v=%v", sd, v)
	}
	if diff := v - sd*sd; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("variance %v != stdev² %v", v, sd*sd)
	}
}

func TestPredictionJoinNestedTableCellInOutput(t *testing.T) {
	p := trainedProvider(t, 50)
	// Selecting the raw nested source column passes the nested rowset
	// through to the output schema.
	out := mustExec(t, p, `SELECT t.[Customer ID], t.[Product Purchases] FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SHAPE {SELECT [Customer ID], Gender FROM Customers ORDER BY [Customer ID]}
		APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
			RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t`)
	if _, ok := out.Row(0)[1].(*rowset.Rowset); !ok {
		t.Errorf("nested passthrough = %T", out.Row(0)[1])
	}
	i, _ := out.Schema().Lookup("Product Purchases")
	if out.Schema().Column(i).Type != rowset.TypeTable {
		t.Error("output schema lost the TABLE type")
	}
}

func TestSourceErrorsPropagate(t *testing.T) {
	p := trainedProvider(t, 10)
	if _, err := p.Execute(`SELECT Predict([Age]) FROM [Age Prediction]
		NATURAL PREDICTION JOIN (SELECT Gender FROM NoSuchTable) AS t`); err == nil {
		t.Error("bad source must fail")
	}
	if _, err := p.Execute(`INSERT INTO [Age Prediction] ([Customer ID], [Gender], [Age])
		SELECT x FROM NoSuchTable`); err == nil {
		t.Error("bad insert source must fail")
	}
}

func TestModelAndTableNamespacesCoexist(t *testing.T) {
	// A mining model and a table may share a name context-free; the DMX
	// dispatcher routes by catalog. Create a table named like the model's
	// output and query both.
	p := trainedProvider(t, 20)
	mustExec(t, p, "CREATE TABLE Results (k LONG)")
	mustExec(t, p, "INSERT INTO Results VALUES (1)")
	rs := mustExec(t, p, "SELECT COUNT(*) FROM Results")
	if rs.Row(0)[0] != int64(1) {
		t.Errorf("table query = %v", rs.Row(0))
	}
}

func TestPredictionOrderBy(t *testing.T) {
	p := trainedProvider(t, 60)
	out := mustExec(t, p, `SELECT TOP 5 t.[Customer ID], PredictProbability([Age]) AS prob
	FROM [Age Prediction]
	NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t
	ORDER BY PredictProbability([Age]) DESC, t.[Customer ID]`)
	if out.Len() != 5 {
		t.Fatalf("rows = %d", out.Len())
	}
	prev := out.Row(0)[1].(float64)
	for i := 1; i < out.Len(); i++ {
		cur := out.Row(i)[1].(float64)
		if cur > prev {
			t.Fatalf("not sorted desc: %v after %v", cur, prev)
		}
		prev = cur
	}
	// Ascending by source column.
	out = mustExec(t, p, `SELECT t.[Customer ID] FROM [Age Prediction]
	NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers) AS t
	ORDER BY t.[Customer ID] DESC`)
	if out.Row(0)[0].(int64) != 60 {
		t.Errorf("desc order head = %v", out.Row(0)[0])
	}
}
