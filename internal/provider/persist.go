package provider

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
)

// Model persistence: each model is one gob file under <dir>/models holding
// the definition, the attribute space, and the accumulated training cases.
// On load, populated models are retrained from their cases — deterministic
// for every bundled algorithm — so the provider resumes exactly where it
// stopped. Relational tables persist separately under <dir>/tables via the
// storage engine's binary format; call Save to snapshot them.

func init() {
	// Case.Values carries rowset.Value (any); register the concrete types.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register(time.Time{})
}

// modelFile is the on-disk model representation.
type modelFile struct {
	Def       *core.ModelDef
	Space     *core.AttributeSpace
	Cases     []core.Case
	CaseCount int
}

func (p *Provider) modelsDir() string { return filepath.Join(p.dir, "models") }
func (p *Provider) tablesDir() string { return filepath.Join(p.dir, "tables") }

func modelFileName(name string) string {
	// Model names may contain spaces and punctuation; keep letters/digits,
	// map the rest to '_'.
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String() + ".dmm"
}

// saveModel persists one model entry; a no-op without a directory. Entries
// passed here are either writer-private (freshly built, not yet published)
// or already-published and therefore immutable, so encoding them cannot
// observe a torn model; writers serialize on commitMu, which keeps the
// file writes ordered.
func (p *Provider) saveModel(e *modelEntry) error {
	if p.dir == "" {
		return nil
	}
	if err := os.MkdirAll(p.modelsDir(), 0o755); err != nil {
		return fmt.Errorf("provider: save model: %w", err)
	}
	path := filepath.Join(p.modelsDir(), modelFileName(e.model.Def.Name))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("provider: save model: %w", err)
	}
	mf := modelFile{
		Def:       e.model.Def,
		Space:     e.tokenizer.Space,
		Cases:     e.cases,
		CaseCount: e.model.CaseCount,
	}
	if err := gob.NewEncoder(f).Encode(&mf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("provider: save model %s: %w", e.model.Def.Name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func (p *Provider) removeModelFile(name string) error {
	if p.dir == "" {
		return nil
	}
	err := os.Remove(filepath.Join(p.modelsDir(), modelFileName(name)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Save snapshots the relational tables (models persist on every change).
func (p *Provider) Save() error {
	if p.dir == "" {
		return fmt.Errorf("provider: no persistence directory configured")
	}
	return p.DB.Save(p.tablesDir())
}

// load restores tables and models from the persistence directory.
func (p *Provider) load() error {
	if err := p.DB.Load(p.tablesDir()); err != nil {
		return err
	}
	entries, err := os.ReadDir(p.modelsDir())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("provider: load models: %w", err)
	}
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".dmm") {
			continue
		}
		if err := p.loadModel(filepath.Join(p.modelsDir(), de.Name())); err != nil {
			return err
		}
	}
	return nil
}

func (p *Provider) loadModel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("provider: load model: %w", err)
	}
	defer f.Close()
	var mf modelFile
	if err := gob.NewDecoder(f).Decode(&mf); err != nil {
		return fmt.Errorf("provider: load model %s: %w", path, err)
	}
	if err := mf.Def.Validate(); err != nil {
		return fmt.Errorf("provider: load model %s: %w", path, err)
	}
	e := &modelEntry{
		model:     &core.Model{Def: mf.Def, Space: mf.Space, CaseCount: mf.CaseCount},
		tokenizer: core.NewTokenizerWithSpace(mf.Def, mf.Space),
		cases:     mf.Cases,
	}
	if len(e.cases) > 0 {
		algo, err := p.Registry.Lookup(mf.Def.Algorithm)
		if err != nil {
			return fmt.Errorf("provider: load model %s: %w", mf.Def.Name, err)
		}
		full := &core.Caseset{Space: mf.Space, Cases: e.cases}
		trained, err := algo.Train(full, mf.Space.Targets(), mf.Def.Params)
		if err != nil {
			return fmt.Errorf("provider: load model %s: retrain: %w", mf.Def.Name, err)
		}
		e.model.Trained = trained
	}
	p.commitMu.Lock()
	p.catalog[strings.ToLower(mf.Def.Name)] = e
	p.publishLocked()
	p.commitMu.Unlock()
	return nil
}
