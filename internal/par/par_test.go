package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		counts := make([]atomic.Int32, n)
		err := ForEach(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty index space")
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Errors at several indexes; the lowest one must win regardless of
	// scheduling, matching what a sequential scan would report.
	bad := map[int]bool{5: true, 20: true, 41: true}
	for _, workers := range []int{2, 4, 16} {
		err := ForEach(50, workers, func(i int) error {
			if bad[i] {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 5" {
			t.Fatalf("workers=%d: err = %v, want fail at 5", workers, err)
		}
	}
}

func TestForEachSequentialStopsAtFirstError(t *testing.T) {
	var ran []int
	sentinel := errors.New("stop")
	err := ForEach(10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %v, want [0 1 2 3]", ran)
	}
}
