// Package par provides the bounded worker pool used by the provider's
// parallel scan paths (PREDICTION JOIN case evaluation, INSERT INTO row
// reshaping). The index space is split into contiguous chunks, one goroutine
// per chunk up to the worker bound, so results keep their source order and
// callers can merge deterministically.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// cancelPollMask sets how often workers poll for cancellation: every
// (cancelPollMask+1) iterations. Polling a cancel context takes a lock, so
// per-row checks would serialize the very scan the pool parallelizes; every
// 32 rows keeps cancellation prompt (a row is a full model evaluation) at
// negligible cost.
const cancelPollMask = 31

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines.
// It is ForEachCtx without a cancellation context.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn) //dmlint:allow ctxflow — documented context-free convenience form; ForEachCtx is the primary API.
}

// ForEachCtx runs fn(i) for every i in [0, n) on up to workers goroutines.
// workers <= 0 means runtime.GOMAXPROCS(0). The index space is partitioned
// into contiguous chunks; fn must therefore be safe to call concurrently for
// distinct i but may assume it is called at most once per index.
//
// On error, remaining work is cancelled best-effort and the error with the
// LOWEST index is returned — the same error a sequential left-to-right scan
// would have surfaced first, keeping error reporting deterministic.
//
// Cancelling ctx stops the scan promptly (workers poll every few dozen
// iterations) and ForEachCtx returns ctx.Err(); an fn error found before the
// cancellation was observed still wins, keeping the deterministic-error
// contract for races between failure and cancellation.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers == 1 {
		for i := 0; i < n; i++ {
			if done != nil && i&cancelPollMask == 0 {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	// firstIdx holds the lowest failing index seen so far (n = none).
	// Workers stop once every index they could contribute is above it.
	var (
		firstIdx  atomic.Int64
		mu        sync.Mutex
		firstErr  error
		cancelled atomic.Bool
	)
	firstIdx.Store(int64(n))
	fail := func(i int, err error) {
		mu.Lock()
		if int64(i) < firstIdx.Load() {
			firstIdx.Store(int64(i))
			firstErr = err
		}
		mu.Unlock()
	}

	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start, end := w*chunk, (w+1)*chunk
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				if done != nil && (i-start)&cancelPollMask == 0 {
					select {
					case <-done:
						cancelled.Store(true)
						return
					default:
					}
				}
				if int64(i) > firstIdx.Load() {
					return // a lower index already failed; our results past it are moot
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}
