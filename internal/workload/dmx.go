// DMX traffic generation for cmd/dmload: a deterministic mixed-statement
// stream (point predictions, point SELECTs, $SYSTEM rowset reads) plus the
// model DDL and retrain script the harness drives against a live server,
// and the JSON report types dmload emits.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Mining models owned by the load harness. [Load Model] is trained once at
// setup and serves the predict stream; [Load Train] is retrained in a loop
// by the trainer connections so catalog snapshots keep swapping under the
// readers.
const (
	LoadModelName = "Load Model"
	LoadTrainName = "Load Train"
)

// OpKind classifies a generated operation for per-class latency reporting.
type OpKind string

const (
	OpPredict OpKind = "predict" // point PREDICTION JOIN against [Load Model]
	OpSelect  OpKind = "select"  // point SQL SELECT on Customers
	OpSystem  OpKind = "system"  // $SYSTEM schema rowset read
	OpTrain   OpKind = "train"   // drop/create/retrain of [Load Train]
)

// Op is one generated unit of work. Its statements run in order on one
// connection and the whole unit is timed as a single operation.
type Op struct {
	Kind       OpKind
	Statements []string
}

// MixWeights sets the relative frequency of the read-side statement classes.
// Train traffic is not part of the mix: dedicated trainer connections loop
// TrainOp so the read/train ratio is set by connection counts, not dice.
type MixWeights struct {
	Predict int
	Select  int
	System  int
}

// DefaultMixWeights is the 5:3:2 predict/select/system mix.
func DefaultMixWeights() MixWeights { return MixWeights{Predict: 5, Select: 3, System: 2} }

func (w MixWeights) total() int { return w.Predict + w.Select + w.System }

// LoadMix deterministically generates the read-side operation stream for one
// load connection. Two mixes built with the same seed yield the same stream,
// so a run is reproducible given (seed, connections, duration).
type LoadMix struct {
	rng       *rand.Rand
	customers int
	w         MixWeights
	sys       int
}

// NewLoadMix returns a generator over a warehouse of the given customer
// count. Non-positive weights fall back to DefaultMixWeights.
func NewLoadMix(seed int64, customers int, w MixWeights) *LoadMix {
	if w.total() <= 0 {
		w = DefaultMixWeights()
	}
	if customers < 1 {
		customers = 1
	}
	return &LoadMix{rng: rand.New(rand.NewSource(seed)), customers: customers, w: w}
}

// Next returns the next operation in the stream.
func (m *LoadMix) Next() Op {
	id := m.rng.Intn(m.customers) + 1
	switch n := m.rng.Intn(m.w.total()); {
	case n < m.w.Predict:
		return Op{Kind: OpPredict, Statements: []string{PredictStatement(id)}}
	case n < m.w.Predict+m.w.Select:
		return Op{Kind: OpSelect, Statements: []string{SelectStatement(id)}}
	default:
		m.sys++
		return Op{Kind: OpSystem, Statements: []string{systemRowsets[m.sys%len(systemRowsets)]}}
	}
}

// PredictStatement is a single-customer prediction against [Load Model]: the
// source is a point query, so the statement exercises parse, plan, index
// probe, and one model evaluation.
func PredictStatement(id int) string {
	return fmt.Sprintf(`SELECT t.[Customer ID], [%s].Age FROM [%s]
	NATURAL PREDICTION JOIN (SELECT [Customer ID], Gender FROM Customers WHERE [Customer ID] = %d) AS t`,
		LoadModelName, LoadModelName, id)
}

// SelectStatement is the plain-SQL point query over the Customers table.
func SelectStatement(id int) string {
	return fmt.Sprintf(`SELECT [Customer ID], Gender, Age FROM Customers WHERE [Customer ID] = %d`, id)
}

// systemRowsets are the $SYSTEM reads the mix rotates through — catalog and
// metrics rowsets that read the provider's snapshot without touching tables.
var systemRowsets = []string{
	"SELECT * FROM $SYSTEM.MINING_MODELS",
	"SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS",
	"SELECT * FROM $SYSTEM.MINING_COLUMNS",
}

const loadModelColumns = `(
	[Customer ID] LONG KEY,
	[Gender] TEXT DISCRETE,
	[Hair Color] TEXT DISCRETE,
	[Age] DOUBLE DISCRETIZED PREDICT
) USING [Decision_Trees]`

const loadTrainSource = `SELECT [Customer ID], Gender, [Hair Color], Age FROM Customers ORDER BY [Customer ID]`

// LoadSetupStatements creates and trains [Load Model] (the predict target)
// and creates [Load Train] for the retrain loop. Run once before traffic.
func LoadSetupStatements() []string {
	return []string{
		fmt.Sprintf(`CREATE MINING MODEL [%s] %s`, LoadModelName, loadModelColumns),
		fmt.Sprintf(`INSERT INTO [%s] ([Customer ID], [Gender], [Hair Color], [Age])
	%s`, LoadModelName, loadTrainSource),
		fmt.Sprintf(`CREATE MINING MODEL [%s] %s`, LoadTrainName, loadModelColumns),
	}
}

// TrainOp is one trainer iteration: drop and re-create [Load Train], then a
// full training pass. The drop/create pair forces two catalog snapshot swaps
// and the INSERT holds the training commit for the length of a scan+train.
func TrainOp() Op {
	return Op{Kind: OpTrain, Statements: []string{
		fmt.Sprintf(`DROP MINING MODEL [%s]`, LoadTrainName),
		fmt.Sprintf(`CREATE MINING MODEL [%s] %s`, LoadTrainName, loadModelColumns),
		fmt.Sprintf(`INSERT INTO [%s] ([Customer ID], [Gender], [Hair Color], [Age])
	%s`, LoadTrainName, loadTrainSource),
	}}
}

// LoadClass summarizes one latency class of a load run. Quantiles are exact
// (computed over every recorded sample, not a sketch).
type LoadClass struct {
	Name      string  `json:"name"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros int64   `json:"p50_micros"`
	P95Micros int64   `json:"p95_micros"`
	P99Micros int64   `json:"p99_micros"`
}

// LoadReport is the machine-readable result of a cmd/dmload run. The
// "read-idle" and "read-training" classes aggregate every read operation
// (predict/select/system) by phase; TrainingReadP95Ratio is the headline
// number — how much training traffic inflates read tail latency.
type LoadReport struct {
	Connections      int     `json:"connections"`
	TrainConnections int     `json:"train_connections"`
	Scale            int     `json:"scale"`
	Seed             int64   `json:"seed"`
	Seconds          float64 `json:"seconds"`
	OpenLoopRate     float64 `json:"open_loop_rate,omitempty"`

	Ops            int64   `json:"ops"`
	Errors         int64   `json:"errors"`
	BusyRejections int64   `json:"busy_rejections"`
	OpsPerSec      float64 `json:"ops_per_sec"`

	Classes []LoadClass `json:"classes"`

	ReadP95IdleMicros     int64   `json:"read_p95_idle_micros"`
	ReadP95TrainingMicros int64   `json:"read_p95_training_micros"`
	TrainingReadP95Ratio  float64 `json:"training_read_p95_ratio"`
}

// SummarizeClass builds a LoadClass from raw samples. The sample slice is
// sorted in place.
func SummarizeClass(name string, samples []time.Duration, elapsed time.Duration) LoadClass {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	c := LoadClass{
		Name:      name,
		Ops:       int64(len(samples)),
		P50Micros: QuantileMicros(samples, 0.50),
		P95Micros: QuantileMicros(samples, 0.95),
		P99Micros: QuantileMicros(samples, 0.99),
	}
	if s := elapsed.Seconds(); s > 0 {
		c.OpsPerSec = float64(len(samples)) / s
	}
	return c
}

// QuantileMicros returns the q-quantile of an ascending-sorted sample set in
// microseconds, 0 when empty.
func QuantileMicros(sorted []time.Duration, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Microseconds()
}
