package workload

import (
	"reflect"
	"testing"
	"time"
)

func TestLoadMixDeterministic(t *testing.T) {
	a := NewLoadMix(7, 100, DefaultMixWeights())
	b := NewLoadMix(7, 100, DefaultMixWeights())
	for i := 0; i < 200; i++ {
		x, y := a.Next(), b.Next()
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("op %d diverges with equal seeds: %v vs %v", i, x, y)
		}
	}
	c := NewLoadMix(8, 100, DefaultMixWeights())
	same := true
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(NewLoadMix(7, 100, DefaultMixWeights()).Next(), c.Next()) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-op streams")
	}
}

func TestLoadMixRespectsWeights(t *testing.T) {
	m := NewLoadMix(1, 50, MixWeights{Predict: 1, Select: 1, System: 0})
	counts := map[OpKind]int{}
	for i := 0; i < 500; i++ {
		counts[m.Next().Kind]++
	}
	if counts[OpSystem] != 0 {
		t.Fatalf("zero system weight still produced %d system ops", counts[OpSystem])
	}
	if counts[OpPredict] == 0 || counts[OpSelect] == 0 {
		t.Fatalf("mix starved a weighted class: %v", counts)
	}
}

func TestSummarizeClassQuantiles(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	c := SummarizeClass("x", samples, 10*time.Second)
	if c.Ops != 100 || c.OpsPerSec != 10 {
		t.Fatalf("ops = %d, ops/sec = %v", c.Ops, c.OpsPerSec)
	}
	if c.P50Micros != 50_000 || c.P95Micros != 95_000 || c.P99Micros != 99_000 {
		t.Fatalf("quantiles = %d/%d/%d µs", c.P50Micros, c.P95Micros, c.P99Micros)
	}
	if empty := SummarizeClass("e", nil, time.Second); empty.P95Micros != 0 || empty.Ops != 0 {
		t.Fatalf("empty class = %+v", empty)
	}
}

func TestTrainOpShape(t *testing.T) {
	op := TrainOp()
	if op.Kind != OpTrain || len(op.Statements) != 3 {
		t.Fatalf("TrainOp = %+v, want drop/create/insert triple", op)
	}
	if len(LoadSetupStatements()) != 3 {
		t.Fatalf("LoadSetupStatements = %d statements, want 3", len(LoadSetupStatements()))
	}
}
