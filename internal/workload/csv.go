package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/rowset"
	"repro/internal/storage"
)

// CSV export/import models the pre-provider workflow the paper argues
// against (Section 1): "data is dumped or sampled out of the database, and
// then a series of Perl, Awk, and special purpose programs are used for data
// preparation ... creating an entire new data management problem outside the
// database". Experiment E2 uses these helpers to measure that pipeline
// against in-provider mining.

// ExportCSV writes each named table to <dir>/<table>.csv and returns the
// total bytes written (the data movement cost of the export pipeline).
// The header row encodes "name:TYPE" so the files round-trip.
func ExportCSV(db *storage.Database, dir string, tables ...string) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	for _, name := range tables {
		tbl, err := db.Table(name)
		if err != nil {
			return 0, err
		}
		n, err := exportTable(tbl, filepath.Join(dir, name+".csv"))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func exportTable(tbl *storage.Table, path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := csv.NewWriter(f)
	scan := tbl.Scan()
	header := make([]string, scan.Schema().Len())
	for i, c := range scan.Schema().Columns {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return 0, err
	}
	record := make([]string, scan.Schema().Len())
	for _, r := range scan.Rows() {
		for i, v := range r {
			if v == nil {
				record[i] = ""
			} else {
				record[i] = rowset.FormatValue(v)
			}
		}
		if err := w.Write(record); err != nil {
			f.Close()
			return 0, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// ImportCSV reads a file written by ExportCSV back into a rowset, parsing
// values through the types recorded in the header — the "re-parse it all"
// step of the export pipeline.
func ImportCSV(path string) (*rowset.Rowset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read csv header: %w", err)
	}
	cols := make([]rowset.Column, len(header))
	for i, h := range header {
		colon := strings.LastIndex(h, ":")
		if colon < 0 {
			return nil, fmt.Errorf("workload: csv header %q lacks a type", h)
		}
		t, ok := rowset.ParseType(h[colon+1:])
		if !ok {
			return nil, fmt.Errorf("workload: csv header %q has unknown type", h)
		}
		cols[i] = rowset.Column{Name: h[:colon], Type: t}
	}
	schema, err := rowset.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := rowset.New(schema)
	for {
		record, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		row := make(rowset.Row, len(record))
		for i, field := range record {
			if field == "" {
				continue
			}
			v, err := rowset.Coerce(field, cols[i].Type)
			if err != nil {
				return nil, fmt.Errorf("workload: csv field %q: %w", field, err)
			}
			row[i] = v
		}
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}
