// Package workload generates the synthetic customer warehouse used by the
// examples and the experiment harness. The paper's examples run against a
// Customers / Product-Purchases / Car-Ownership star schema that we cannot
// obtain (it was Microsoft's internal demo data), so this package plants a
// controlled equivalent with known structure:
//
//   - three customer archetypes (family / student / professional) with
//     distinct age distributions, product baskets, and car ownership;
//   - a deterministic association rule (Beer buyers also buy Chips);
//   - product → product-type relations (the paper's RELATED TO example).
//
// The planted structure gives the accuracy experiments ground truth: an
// algorithm that works recovers the archetypes, the age/gender split, and
// the basket rule.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/rowset"
	"repro/internal/storage"
)

// Config sizes the generated warehouse.
type Config struct {
	// Customers is the number of customer cases.
	Customers int
	// Seed makes generation deterministic.
	Seed int64
	// ExtraNoiseProducts adds unrelated catalog items bought at random,
	// inflating the attribute space (used by scalability sweeps).
	ExtraNoiseProducts int
}

// Archetype identifies the planted customer segment.
type Archetype int

// The planted segments.
const (
	Family Archetype = iota
	Student
	Professional
)

func (a Archetype) String() string {
	switch a {
	case Family:
		return "family"
	case Student:
		return "student"
	case Professional:
		return "professional"
	}
	return fmt.Sprintf("Archetype(%d)", int(a))
}

// Truth records the generator's ground truth for evaluation.
type Truth struct {
	// ArchetypeOf maps customer ID → planted archetype.
	ArchetypeOf map[int64]Archetype
	// AgeOf maps customer ID → true age.
	AgeOf map[int64]float64
	// GenderOf maps customer ID → gender string.
	GenderOf map[int64]string
	// BeerBuyers lists customers whose baskets contain Beer; ChipsBuyers
	// likewise — the planted rule is Beer ⇒ Chips with ~0.9 confidence.
	BeerBuyers, ChipsBuyers map[int64]bool
	// NextPage is the planted most-likely transition of the Visits
	// clickstream (home→search→product→checkout with noise).
	NextPage map[string]string
}

// product catalog: name → type (the RELATED TO relation).
var catalog = []struct{ name, ptype string }{
	{"TV", "Electronic"}, {"VCR", "Electronic"}, {"Laptop", "Electronic"},
	{"Ham", "Food"}, {"Milk", "Food"}, {"Bread", "Food"}, {"Diapers", "Baby"},
	{"Beer", "Beverage"}, {"Wine", "Beverage"}, {"Soda", "Beverage"},
	{"Chips", "Snack"}, {"Candy", "Snack"},
}

// basket probabilities per archetype, in fixed order so generation is
// deterministic for a given seed.
type productProb struct {
	product string
	prob    float64
}

var basketProb = map[Archetype][]productProb{
	Family: {
		{"Milk", 0.9}, {"Bread", 0.8}, {"Diapers", 0.7}, {"Ham", 0.6}, {"TV", 0.3}, {"Soda", 0.4},
	},
	Student: {
		{"Beer", 0.8}, {"Chips", 0.2}, {"Soda", 0.6}, {"Candy", 0.5}, {"Bread", 0.3},
	},
	Professional: {
		{"Wine", 0.7}, {"Laptop", 0.6}, {"TV", 0.5}, {"Ham", 0.4}, {"Beer", 0.25},
	},
}

// carProb maps archetype → (car, ownership probability).
var carProb = map[Archetype][]struct {
	car  string
	prob float64
}{
	Family:       {{"Van", 0.8}, {"Truck", 0.3}},
	Student:      {{"Bike", 0.5}},
	Professional: {{"Sedan", 0.9}, {"Truck", 0.15}},
}

// Populate creates Customers, Sales, Cars, and Visits tables in db and
// fills them according to cfg, returning the ground truth. Existing tables
// with those names are an error (use a fresh database per run).
func Populate(db *storage.Database, cfg Config) (*Truth, error) {
	if cfg.Customers <= 0 {
		return nil, fmt.Errorf("workload: Customers must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	customers, err := db.CreateTable("Customers", rowset.MustSchema(
		rowset.Column{Name: "Customer ID", Type: rowset.TypeLong},
		rowset.Column{Name: "Gender", Type: rowset.TypeText},
		rowset.Column{Name: "Hair Color", Type: rowset.TypeText},
		rowset.Column{Name: "Age", Type: rowset.TypeDouble},
		rowset.Column{Name: "Age Prob", Type: rowset.TypeDouble},
	))
	if err != nil {
		return nil, err
	}
	sales, err := db.CreateTable("Sales", rowset.MustSchema(
		rowset.Column{Name: "CustID", Type: rowset.TypeLong},
		rowset.Column{Name: "Product Name", Type: rowset.TypeText},
		rowset.Column{Name: "Quantity", Type: rowset.TypeDouble},
		rowset.Column{Name: "Product Type", Type: rowset.TypeText},
	))
	if err != nil {
		return nil, err
	}
	cars, err := db.CreateTable("Cars", rowset.MustSchema(
		rowset.Column{Name: "CustID", Type: rowset.TypeLong},
		rowset.Column{Name: "Car", Type: rowset.TypeText},
		rowset.Column{Name: "Probability", Type: rowset.TypeDouble},
	))
	if err != nil {
		return nil, err
	}
	visits, err := db.CreateTable("Visits", rowset.MustSchema(
		rowset.Column{Name: "CustID", Type: rowset.TypeLong},
		rowset.Column{Name: "Step", Type: rowset.TypeLong},
		rowset.Column{Name: "Page", Type: rowset.TypeText},
	))
	if err != nil {
		return nil, err
	}

	ptype := make(map[string]string, len(catalog))
	for _, c := range catalog {
		ptype[c.name] = c.ptype
	}
	noise := make([]string, cfg.ExtraNoiseProducts)
	for i := range noise {
		noise[i] = fmt.Sprintf("Gadget%03d", i)
		ptype[noise[i]] = "Gadget"
	}

	truth := &Truth{
		ArchetypeOf: make(map[int64]Archetype, cfg.Customers),
		AgeOf:       make(map[int64]float64, cfg.Customers),
		GenderOf:    make(map[int64]string, cfg.Customers),
		BeerBuyers:  make(map[int64]bool),
		ChipsBuyers: make(map[int64]bool),
		NextPage: map[string]string{
			"home": "search", "search": "product", "product": "checkout",
		},
	}
	hairColors := []string{"Black", "Brown", "Blond", "Red"}

	for i := 0; i < cfg.Customers; i++ {
		id := int64(i + 1)
		arch := Archetype(rng.Intn(3))
		truth.ArchetypeOf[id] = arch

		var age float64
		var gender string
		switch arch {
		case Family:
			age = 38 + rng.NormFloat64()*6
			gender = pick(rng, "Male", "Female")
		case Student:
			age = 22 + rng.NormFloat64()*3
			gender = pick(rng, "Male", "Female")
		case Professional:
			age = 48 + rng.NormFloat64()*7
			// Planted gender skew so Gender is informative about Age.
			if rng.Float64() < 0.7 {
				gender = "Male"
			} else {
				gender = "Female"
			}
		}
		if age < 18 {
			age = 18
		}
		truth.AgeOf[id] = age
		truth.GenderOf[id] = gender
		if err := customers.Insert(rowset.Row{
			id, gender, hairColors[rng.Intn(len(hairColors))], age, 0.9 + 0.1*rng.Float64(),
		}); err != nil {
			return nil, err
		}

		// Basket.
		boughtBeer := false
		for _, pp := range basketProb[arch] {
			if rng.Float64() >= pp.prob {
				continue
			}
			qty := float64(1 + rng.Intn(6))
			if err := sales.Insert(rowset.Row{id, pp.product, qty, ptype[pp.product]}); err != nil {
				return nil, err
			}
			if pp.product == "Beer" {
				boughtBeer = true
				truth.BeerBuyers[id] = true
			}
			if pp.product == "Chips" {
				truth.ChipsBuyers[id] = true
			}
		}
		// The planted rule: Beer ⇒ Chips at 90%.
		if boughtBeer && !truth.ChipsBuyers[id] && rng.Float64() < 0.9 {
			if err := sales.Insert(rowset.Row{id, "Chips", float64(1 + rng.Intn(3)), ptype["Chips"]}); err != nil {
				return nil, err
			}
			truth.ChipsBuyers[id] = true
		}
		for _, n := range noise {
			if rng.Float64() < 0.05 {
				if err := sales.Insert(rowset.Row{id, n, 1.0, ptype[n]}); err != nil {
					return nil, err
				}
			}
		}

		// Clickstream: home → search → product → checkout with wandering.
		page, step := "home", int64(0)
		if err := visits.Insert(rowset.Row{id, step, page}); err != nil {
			return nil, err
		}
		for page != "checkout" && step < 8 {
			step++
			switch page {
			case "home":
				page = "search"
			case "search":
				if rng.Float64() < 0.75 {
					page = "product"
				} else {
					page = "home"
				}
			case "product":
				if rng.Float64() < 0.6 {
					page = "checkout"
				} else {
					page = "search"
				}
			}
			if err := visits.Insert(rowset.Row{id, step, page}); err != nil {
				return nil, err
			}
		}

		// Cars.
		for _, cp := range carProb[arch] {
			if rng.Float64() < cp.prob {
				certainty := 1.0
				if rng.Float64() < 0.2 {
					certainty = 0.5 // the paper's "believed to own a van (50%)"
				}
				if err := cars.Insert(rowset.Row{id, cp.car, certainty}); err != nil {
					return nil, err
				}
			}
		}
	}
	return truth, nil
}

func pick(rng *rand.Rand, a, b string) string {
	if rng.Float64() < 0.5 {
		return a
	}
	return b
}

// PaperShape is the SHAPE statement assembling the full caseset over the
// generated warehouse — Table 1 of the paper as a query.
const PaperShape = `SHAPE
	{SELECT [Customer ID], [Gender], [Hair Color], [Age], [Age Prob] FROM Customers ORDER BY [Customer ID]}
	APPEND (
		{SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales ORDER BY [CustID]}
		RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
	APPEND (
		{SELECT [CustID], [Car], [Probability] FROM Cars ORDER BY [CustID]}
		RELATE [Customer ID] TO [CustID]) AS [Car Ownership]`
