package workload

import (
	"path/filepath"
	"testing"

	"repro/internal/shape"
	"repro/internal/sqlengine"
	"repro/internal/storage"
)

func TestPopulateDeterministic(t *testing.T) {
	db1 := storage.NewDatabase()
	tr1, err := Populate(db1, Config{Customers: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db2 := storage.NewDatabase()
	tr2, err := Populate(db2, Config{Customers: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range tr1.ArchetypeOf {
		if tr2.ArchetypeOf[id] != a {
			t.Fatalf("same seed must give same archetypes (id %d)", id)
		}
	}
	t1, _ := db1.Table("Sales")
	t2, _ := db2.Table("Sales")
	if t1.Len() != t2.Len() {
		t.Errorf("sales rows differ: %d vs %d", t1.Len(), t2.Len())
	}
}

func TestPopulateStructure(t *testing.T) {
	db := storage.NewDatabase()
	truth, err := Populate(db, Config{Customers: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	customers, _ := db.Table("Customers")
	if customers.Len() != 500 {
		t.Fatalf("customers = %d", customers.Len())
	}
	// Every archetype appears with reasonable frequency.
	counts := map[Archetype]int{}
	for _, a := range truth.ArchetypeOf {
		counts[a]++
	}
	for a := Family; a <= Professional; a++ {
		if counts[a] < 100 {
			t.Errorf("archetype %v count = %d", a, counts[a])
		}
	}
	// The planted rule holds: most beer buyers bought chips.
	beer, both := 0, 0
	for id := range truth.BeerBuyers {
		beer++
		if truth.ChipsBuyers[id] {
			both++
		}
	}
	if beer < 50 {
		t.Fatalf("beer buyers = %d", beer)
	}
	if conf := float64(both) / float64(beer); conf < 0.8 {
		t.Errorf("planted rule confidence = %v", conf)
	}
	// Ages respect archetype ranges on average.
	var studentSum, profSum float64
	var studentN, profN int
	for id, a := range truth.ArchetypeOf {
		switch a {
		case Student:
			studentSum += truth.AgeOf[id]
			studentN++
		case Professional:
			profSum += truth.AgeOf[id]
			profN++
		}
	}
	if studentSum/float64(studentN) > 30 || profSum/float64(profN) < 40 {
		t.Errorf("age means: students %v, professionals %v",
			studentSum/float64(studentN), profSum/float64(profN))
	}
}

func TestPaperShapeRuns(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := Populate(db, Config{Customers: 50, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	rs, err := shape.ExecuteString(sqlengine.NewEngine(db), PaperShape)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 50 {
		t.Fatalf("caseset rows = %d", rs.Len())
	}
	if _, ok := rs.Schema().Lookup("Product Purchases"); !ok {
		t.Error("nested purchases column missing")
	}
	if _, ok := rs.Schema().Lookup("Car Ownership"); !ok {
		t.Error("nested cars column missing")
	}
}

func TestNoiseProducts(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := Populate(db, Config{Customers: 200, Seed: 5, ExtraNoiseProducts: 20}); err != nil {
		t.Fatal(err)
	}
	e := sqlengine.NewEngine(db)
	rs, err := e.Exec("SELECT COUNT(DISTINCT [Product Name]) FROM Sales WHERE [Product Type] = 'Gadget'")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Row(0)[0].(int64) < 10 {
		t.Errorf("noise products observed = %v", rs.Row(0)[0])
	}
}

func TestPopulateErrors(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := Populate(db, Config{Customers: 0}); err == nil {
		t.Error("zero customers must fail")
	}
	if _, err := Populate(db, Config{Customers: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Populate(db, Config{Customers: 10, Seed: 1}); err == nil {
		t.Error("double populate must fail (tables exist)")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := storage.NewDatabase()
	if _, err := Populate(db, Config{Customers: 80, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bytes, err := ExportCSV(db, dir, "Customers", "Sales", "Cars")
	if err != nil {
		t.Fatal(err)
	}
	if bytes <= 0 {
		t.Error("no bytes exported")
	}
	rs, err := ImportCSV(filepath.Join(dir, "Customers.csv"))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := db.Table("Customers")
	if rs.Len() != orig.Len() {
		t.Fatalf("imported %d rows, want %d", rs.Len(), orig.Len())
	}
	// Types survive: Customer ID is LONG, Age DOUBLE.
	if _, ok := rs.Row(0)[0].(int64); !ok {
		t.Errorf("id type = %T", rs.Row(0)[0])
	}
	if _, ok := rs.Row(0)[3].(float64); !ok {
		t.Errorf("age type = %T", rs.Row(0)[3])
	}
}

func TestImportCSVErrors(t *testing.T) {
	if _, err := ImportCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestVisitsClickstream(t *testing.T) {
	db := storage.NewDatabase()
	truth, err := Populate(db, Config{Customers: 200, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	visits, err := db.Table("Visits")
	if err != nil {
		t.Fatal(err)
	}
	if visits.Len() < 400 { // every customer has at least home + one step
		t.Fatalf("visit rows = %d", visits.Len())
	}
	// The planted argmax transitions are the declared truth.
	if truth.NextPage["home"] != "search" || truth.NextPage["product"] != "checkout" {
		t.Errorf("NextPage = %v", truth.NextPage)
	}
	// Count empirical home→search transitions: every home is followed by
	// search (deterministic in the generator).
	e := sqlengine.NewEngine(db)
	rs, err := e.Exec(`SELECT a.CustID FROM Visits a JOIN Visits b
		ON a.CustID = b.CustID
		WHERE a.Page = 'home' AND b.Page = 'search' AND b.Step = a.Step + 1`)
	if err != nil {
		t.Fatal(err)
	}
	homes, err := e.Exec("SELECT COUNT(*) FROM Visits WHERE Page = 'home'")
	if err != nil {
		t.Fatal(err)
	}
	// Every non-terminal home transitions to search; a session can end on
	// home only at the step cap, so at most one home per customer lacks a
	// successor.
	h := homes.Row(0)[0].(int64)
	got := int64(rs.Len())
	if got > h || got < h-200 {
		t.Errorf("home→search transitions %d vs home visits %d", got, h)
	}
	if got == 0 {
		t.Error("no home→search transitions observed")
	}
}
