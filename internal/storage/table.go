// Package storage implements the relational substrate under the provider:
// an in-memory heap-table engine with a catalog, optional hash indexes, and
// binary disk persistence. It plays the role of the "core relational engine"
// in Figure 1 of the paper — the thing that stores training data and answers
// the SELECT queries embedded in SHAPE statements.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/rowset"
)

// Table is a heap table: an append-ordered collection of rows plus optional
// hash indexes. All methods are safe for concurrent use.
type Table struct {
	name   string
	schema *rowset.Schema

	// version counts data mutations (Insert/Replace/Truncate); see stats.go.
	version atomic.Uint64

	mu      sync.RWMutex
	rows    []rowset.Row
	indexes map[string]*hashIndex // keyed by lower-cased column name

	// statsSnap holds the immutable cardinality summary last computed, tagged
	// with the data version it reflects. Readers swap in fresh snapshots
	// atomically (see stats.go), so the planner reads statistics without ever
	// taking the write lock — a stats lookup never blocks behind an insert
	// burst, and vice versa.
	statsSnap atomic.Pointer[statsSnapshot]
}

// NewTable creates an empty table.
func NewTable(name string, schema *rowset.Schema) *Table {
	return &Table{name: name, schema: schema, indexes: make(map[string]*hashIndex)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *rowset.Schema { return t.schema }

// Len returns the current row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row. Values are coerced to the column types; arity and
// coercion failures are errors and leave the table unchanged.
func (t *Table) Insert(r rowset.Row) error {
	if len(r) != t.schema.Len() {
		return fmt.Errorf("storage: table %s: row has %d values, want %d", t.name, len(r), t.schema.Len())
	}
	row := make(rowset.Row, len(r))
	for i, v := range r {
		cv, err := rowset.Coerce(rowset.Normalize(v), t.schema.Column(i).Type)
		if err != nil {
			return fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema.Column(i).Name, err)
		}
		row[i] = cv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := len(t.rows)
	t.rows = append(t.rows, row)
	for _, idx := range t.indexes {
		idx.add(row[idx.ord], pos)
	}
	t.bumpVersion()
	return nil
}

// InsertMany appends rows, stopping at the first error.
func (t *Table) InsertMany(rows []rowset.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Replace atomically substitutes the table's contents with rows (used by
// UPDATE and predicated DELETE). Rows are validated and coerced like Insert;
// on any error the table is left unchanged.
func (t *Table) Replace(rows []rowset.Row) error {
	coerced := make([]rowset.Row, len(rows))
	for i, r := range rows {
		if len(r) != t.schema.Len() {
			return fmt.Errorf("storage: table %s: row has %d values, want %d", t.name, len(r), t.schema.Len())
		}
		row := make(rowset.Row, len(r))
		for j, v := range r {
			cv, err := rowset.Coerce(rowset.Normalize(v), t.schema.Column(j).Type)
			if err != nil {
				return fmt.Errorf("storage: table %s column %s: %w", t.name, t.schema.Column(j).Name, err)
			}
			row[j] = cv
		}
		coerced[i] = row
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = coerced
	for _, idx := range t.indexes {
		idx.reset()
		for pos, r := range t.rows {
			idx.add(r[idx.ord], pos)
		}
	}
	t.bumpVersion()
	return nil
}

// Truncate removes all rows (DELETE FROM with no predicate).
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	for _, idx := range t.indexes {
		idx.reset()
	}
	t.bumpVersion()
}

// Scan returns a point-in-time snapshot of the table as a Rowset. The rows
// are shared (not copied); callers must not mutate them.
func (t *Table) Scan() *rowset.Rowset {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rs, err := rowset.FromRows(t.schema, t.rows)
	if err != nil {
		// Rows were validated on insert, so a failure here means the in-memory
		// table was corrupted (e.g. a caller mutated a shared row). That is a
		// sanctioned corruption panic, not a recoverable error.
		//
		//dmlint:allow nopanic — documented corruption path: rows were validated on insert, so failure means in-memory state was corrupted.
		panic(fmt.Sprintf("storage: corrupt table %s: %v", t.name, err))
	}
	return rs
}

// Cursor returns a streaming point-in-time snapshot of the table. Rows are
// shared with the table, not copied or re-normalized: inserted rows are
// immutable once stored, appends land beyond the snapshot's length, and
// Replace/Truncate swap in a fresh slice, so the snapshot stays consistent
// without holding the lock while the caller drains it.
func (t *Table) Cursor() rowset.Cursor {
	t.mu.RLock()
	rows := t.rows
	t.mu.RUnlock()
	return &tableCursor{schema: t.schema, rows: rows}
}

type tableCursor struct {
	schema *rowset.Schema
	rows   []rowset.Row
	i      int
}

func (c *tableCursor) Next() (rowset.Row, error) {
	if c.i >= len(c.rows) {
		return nil, nil
	}
	r := c.rows[c.i]
	c.i++
	return r, nil
}

func (c *tableCursor) Schema() *rowset.Schema { return c.schema }

// Size reports the snapshot's exact row count, a cardinality hint join
// planners use to pick the smaller hash-join build side.
func (c *tableCursor) Size() int { return len(c.rows) }

func (c *tableCursor) Close() error {
	c.i = len(c.rows)
	c.rows = nil
	return nil
}

// CreateIndex builds a hash index on the named column. Indexing an already
// indexed column is a no-op.
func (t *Table) CreateIndex(col string) error {
	ord, ok := t.schema.Lookup(col)
	if !ok {
		return fmt.Errorf("storage: table %s: unknown column %q", t.name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.schema.Column(ord).Name
	if _, exists := t.indexes[key]; exists {
		return nil
	}
	idx := newHashIndex(ord)
	for pos, r := range t.rows {
		idx.add(r[ord], pos)
	}
	t.indexes[key] = idx
	return nil
}

// HasIndex reports whether a hash index exists on the named column.
func (t *Table) HasIndex(col string) bool {
	ord, ok := t.schema.Lookup(col)
	if !ok {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, exists := t.indexes[t.schema.Column(ord).Name]
	return exists
}

// LookupEqual returns the rows whose indexed column equals v. It falls back
// to a scan when no index exists on col.
func (t *Table) LookupEqual(col string, v rowset.Value) (*rowset.Rowset, error) {
	rows, err := t.LookupEqualRows(col, v)
	if err != nil {
		return nil, err
	}
	out := rowset.New(t.schema)
	for _, r := range rows {
		if err := out.Append(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LookupEqualRows is LookupEqual without the Rowset: it returns the matching
// rows directly (shared, read-only), in insertion order, doing O(bucket) work
// when an index exists on col. It is the streaming executor's point-lookup
// primitive, so it avoids both materialization and per-row re-normalization.
func (t *Table) LookupEqualRows(col string, v rowset.Value) ([]rowset.Row, error) {
	ord, ok := t.schema.Lookup(col)
	if !ok {
		return nil, fmt.Errorf("storage: table %s: unknown column %q", t.name, col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[t.schema.Column(ord).Name]; ok {
		positions := idx.lookup(v)
		if len(positions) == 0 {
			return nil, nil
		}
		out := make([]rowset.Row, len(positions))
		for i, pos := range positions {
			out[i] = t.rows[pos]
		}
		return out, nil
	}
	var out []rowset.Row
	for _, r := range t.rows {
		if rowset.Equal(r[ord], v) {
			out = append(out, r)
		}
	}
	return out, nil
}

// hashIndex maps value keys to row positions.
type hashIndex struct {
	ord  int
	rows map[string][]int
}

func newHashIndex(ord int) *hashIndex {
	return &hashIndex{ord: ord, rows: make(map[string][]int)}
}

func (ix *hashIndex) add(v rowset.Value, pos int) {
	k := rowset.Key(v)
	ix.rows[k] = append(ix.rows[k], pos)
}

// lookup probes via an AppendKey scratch buffer and a map[string(bytes)]
// access, which the compiler compiles without materializing the key string —
// the probe itself does not allocate (the small stack buffer escapes only if
// the key is unusually long).
func (ix *hashIndex) lookup(v rowset.Value) []int {
	var scratch [48]byte
	return ix.rows[string(rowset.AppendKey(scratch[:0], v))]
}

func (ix *hashIndex) reset() {
	ix.rows = make(map[string][]int)
}
