package storage

import "repro/internal/rowset"

// Morsel-driven scan support. A morsel is a fixed-size contiguous row range
// of a table snapshot; parallel scan consumers pull the snapshot once, split
// it into morsels, and hand each morsel to a worker. Because morsels
// partition the snapshot in row order, a consumer that merges per-morsel
// results in morsel order reconstructs exactly the sequential scan order —
// the property the engine leans on for byte-identical parallel GROUP BY.

// DefaultMorselSize is the row count per morsel: big enough that per-morsel
// scheduling overhead is noise, small enough to load-balance skewed filters
// across workers.
const DefaultMorselSize = 4096

// Morsel is a half-open row range [Lo, Hi) over a snapshot.
type Morsel struct {
	Lo, Hi int
}

// MorselRanges splits n rows into contiguous morsels of at most size rows
// (DefaultMorselSize when size <= 0). n == 0 yields no morsels.
func MorselRanges(n, size int) []Morsel {
	if size <= 0 {
		size = DefaultMorselSize
	}
	if n <= 0 {
		return nil
	}
	out := make([]Morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Morsel{Lo: lo, Hi: hi})
	}
	return out
}

// Snapshot returns the table's current rows as a point-in-time snapshot with
// the same consistency argument as Cursor: rows are immutable once stored,
// appends land beyond the snapshot's length, and Replace/Truncate swap in a
// fresh slice. Callers must treat the slice and its rows as read-only.
func (t *Table) Snapshot() []rowset.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// NextBatch makes the table scan batch-native: each batch is a zero-copy
// subslice of the snapshot. Interleaving Next and NextBatch pulls is
// undefined, per the rowset.BatchCursor contract.
func (c *tableCursor) NextBatch() (rowset.Batch, error) {
	if c.i >= len(c.rows) {
		return rowset.Batch{}, nil
	}
	hi := c.i + rowset.DefaultBatchSize
	if hi > len(c.rows) {
		hi = len(c.rows)
	}
	b := rowset.Batch{Rows: c.rows[c.i:hi]}
	c.i = hi
	return b, nil
}
