package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rowset"
)

func TestReplaceValidatesAtomically(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if err := tbl.Insert(rowset.Row{int64(1), "a", 1.0}); err != nil {
		t.Fatal(err)
	}
	// Second row is bad: nothing changes.
	err := tbl.Replace([]rowset.Row{
		{int64(2), "b", 2.0},
		{int64(3), "c"},
	})
	if err == nil {
		t.Fatal("bad arity must fail")
	}
	if tbl.Len() != 1 || tbl.Scan().Row(0)[0] != int64(1) {
		t.Error("failed Replace must leave the table unchanged")
	}
	// Coercion failure also aborts.
	err = tbl.Replace([]rowset.Row{{int64(2), "b", "not-a-number"}})
	if err == nil {
		t.Fatal("bad coercion must fail")
	}
	if tbl.Len() != 1 {
		t.Error("failed Replace must leave the table unchanged")
	}
}

func TestReplaceRebuildsIndexes(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(rowset.Row{int64(1), "old", 1.0}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Replace([]rowset.Row{
		{int64(2), "new", 2.0},
		{int64(3), "new", 3.0},
	}); err != nil {
		t.Fatal(err)
	}
	rs, err := tbl.LookupEqual("name", "new")
	if err != nil || rs.Len() != 2 {
		t.Errorf("index after replace = %d rows, %v", rs.Len(), err)
	}
	rs, _ = tbl.LookupEqual("name", "old")
	if rs.Len() != 0 {
		t.Error("stale index entry survived Replace")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "Broken.tbl"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if err := db.Load(dir); err == nil {
		t.Error("corrupt table file must fail to load")
	}
}

func TestLoadSkipsNonTableFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.tbl"), 0o755); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if err := db.Load(dir); err != nil {
		t.Errorf("unrelated files must be skipped: %v", err)
	}
}

func TestSaveReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase()
	tbl, _ := db.CreateTable("T", testSchema())
	tbl.Insert(rowset.Row{int64(1), "a", 1.0})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	tbl.Insert(rowset.Row{int64(2), "b", 2.0})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	// No leftover temp files.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	db2 := NewDatabase()
	if err := db2.Load(dir); err != nil {
		t.Fatal(err)
	}
	got, _ := db2.Table("T")
	if got.Len() != 2 {
		t.Errorf("reloaded rows = %d", got.Len())
	}
}
