package storage

import (
	"strings"

	"repro/internal/rowset"
)

// TableStats is a point-in-time cardinality summary of one table: the row
// count plus the number of distinct values per column. The cost-based parts
// of the SQL planner use it to estimate the selectivity of an equality
// predicate (rows / distinct) and to pick hash-join build sides when exact
// cursor sizes are unknown.
type TableStats struct {
	// Rows is the table's row count when the stats were computed.
	Rows int
	// Distinct maps lower-cased bare column names to their distinct value
	// counts (NULL counts as one value).
	Distinct map[string]int
}

// DistinctCount returns the distinct value count for col (case-insensitive),
// or 0 when the column is unknown.
func (s *TableStats) DistinctCount(col string) int {
	if s == nil {
		return 0
	}
	return s.Distinct[strings.ToLower(col)]
}

// EqEstimate estimates how many rows an equality predicate on col selects:
// rows divided by the column's distinct count (at least 1 while the table is
// non-empty), or the full row count when the column has no stats.
func (s *TableStats) EqEstimate(col string) int {
	if s == nil {
		return 0
	}
	d := s.DistinctCount(col)
	if d <= 0 {
		return s.Rows
	}
	est := s.Rows / d
	if est < 1 && s.Rows > 0 {
		est = 1
	}
	return est
}

// Version returns the table's data version: a counter bumped by every
// Insert, Replace, and Truncate. Plan caches key cardinality stats (and plan
// validity) on it.
func (t *Table) Version() uint64 { return t.version.Load() }

// Stats returns cardinality statistics for the table, recomputing them only
// when the data version moved since the last computation. The returned value
// is a shared immutable snapshot; callers must not mutate it.
func (t *Table) Stats() *TableStats {
	v := t.version.Load()
	t.mu.RLock()
	if t.stats != nil && t.statsVersion == v {
		s := t.stats
		t.mu.RUnlock()
		return s
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	// Recheck under the write lock: a concurrent caller may have computed the
	// stats while we waited, and the version may have moved again.
	v = t.version.Load()
	if t.stats != nil && t.statsVersion == v {
		return t.stats
	}
	t.stats = t.computeStatsLocked()
	t.statsVersion = v
	return t.stats
}

// computeStatsLocked scans the table once, counting distinct values per
// column via the same key encoding the hash indexes use. t.mu must be held.
func (t *Table) computeStatsLocked() *TableStats {
	s := &TableStats{Rows: len(t.rows), Distinct: make(map[string]int, t.schema.Len())}
	var scratch [48]byte
	for ord := 0; ord < t.schema.Len(); ord++ {
		seen := make(map[string]struct{})
		for _, r := range t.rows {
			key := rowset.AppendKey(scratch[:0], r[ord])
			if _, dup := seen[string(key)]; !dup {
				seen[string(key)] = struct{}{}
			}
		}
		s.Distinct[strings.ToLower(t.schema.Column(ord).Name)] = len(seen)
	}
	return s
}

// bumpVersion invalidates cached statistics after a data mutation.
func (t *Table) bumpVersion() { t.version.Add(1) }
