package storage

import (
	"strings"

	"repro/internal/rowset"
)

// TableStats is a point-in-time cardinality summary of one table: the row
// count plus the number of distinct values per column. The cost-based parts
// of the SQL planner use it to estimate the selectivity of an equality
// predicate (rows / distinct) and to pick hash-join build sides when exact
// cursor sizes are unknown.
type TableStats struct {
	// Rows is the table's row count when the stats were computed.
	Rows int
	// Distinct maps lower-cased bare column names to their distinct value
	// counts (NULL counts as one value).
	Distinct map[string]int
}

// DistinctCount returns the distinct value count for col (case-insensitive),
// or 0 when the column is unknown.
func (s *TableStats) DistinctCount(col string) int {
	if s == nil {
		return 0
	}
	return s.Distinct[strings.ToLower(col)]
}

// EqEstimate estimates how many rows an equality predicate on col selects:
// rows divided by the column's distinct count (at least 1 while the table is
// non-empty), or the full row count when the column has no stats.
func (s *TableStats) EqEstimate(col string) int {
	if s == nil {
		return 0
	}
	d := s.DistinctCount(col)
	if d <= 0 {
		return s.Rows
	}
	est := s.Rows / d
	if est < 1 && s.Rows > 0 {
		est = 1
	}
	return est
}

// Version returns the table's data version: a counter bumped by every
// Insert, Replace, and Truncate. Plan caches key cardinality stats (and plan
// validity) on it.
func (t *Table) Version() uint64 { return t.version.Load() }

// statsSnapshot pairs an immutable cardinality summary with the data version
// it reflects.
type statsSnapshot struct {
	version uint64
	stats   *TableStats
}

// Stats returns cardinality statistics for the table, recomputing them only
// when the data version moved since the last computation. The returned value
// is a shared immutable snapshot; callers must not mutate it.
//
// The cache is a copy-on-write snapshot swapped atomically: the fast path is
// one atomic load, and recomputation takes only the read lock (the scan does
// not mutate), so a planner asking for statistics never serializes behind —
// or blocks — concurrent writers for longer than the scan itself.
func (t *Table) Stats() *TableStats {
	if snap := t.statsSnap.Load(); snap != nil && snap.version == t.version.Load() {
		return snap.stats
	}
	// Read the version inside the lock so the tag matches the rows scanned:
	// writers bump it under the write lock.
	t.mu.RLock()
	v := t.version.Load()
	s := t.computeStatsRLocked()
	t.mu.RUnlock()
	// Publish unless someone already published stats for a newer version —
	// concurrent computes are idempotent per version, but an older result
	// must not clobber a fresher one.
	for {
		old := t.statsSnap.Load()
		if old != nil && old.version > v {
			return s
		}
		if t.statsSnap.CompareAndSwap(old, &statsSnapshot{version: v, stats: s}) {
			return s
		}
	}
}

// computeStatsRLocked scans the table once, counting distinct values per
// column via the same key encoding the hash indexes use. t.mu must be held
// (read or write).
func (t *Table) computeStatsRLocked() *TableStats {
	s := &TableStats{Rows: len(t.rows), Distinct: make(map[string]int, t.schema.Len())}
	var scratch [48]byte
	for ord := 0; ord < t.schema.Len(); ord++ {
		seen := make(map[string]struct{})
		for _, r := range t.rows {
			key := rowset.AppendKey(scratch[:0], r[ord])
			if _, dup := seen[string(key)]; !dup {
				seen[string(key)] = struct{}{}
			}
		}
		s.Distinct[strings.ToLower(t.schema.Column(ord).Name)] = len(seen)
	}
	return s
}

// bumpVersion invalidates cached statistics after a data mutation.
func (t *Table) bumpVersion() { t.version.Add(1) }
