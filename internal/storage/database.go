package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/rowset"
)

// Database is a named collection of tables — the provider's relational
// catalog. All methods are safe for concurrent use.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table // keyed by lower-cased name
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable adds a new table. Duplicate names (case-insensitive) error.
func (db *Database) CreateTable(name string, schema *rowset.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[key] = t
	return t, nil
}

// Table looks up a table by name, case-insensitively.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no table named %q", name)
	}
	return t, nil
}

// DropTable removes a table.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("storage: no table named %q", name)
	}
	delete(db.tables, key)
	return nil
}

// Names returns all table names in sorted order.
func (db *Database) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}

// Save persists every table to dir as one <name>.tbl file each, in the rowset
// binary format. dir is created if missing. Tables removed since the last
// save are not cleaned up; Load only reads .tbl files present.
func (db *Database) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: save: %w", err)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		if err := saveTable(dir, t); err != nil {
			return err
		}
	}
	return nil
}

func saveTable(dir string, t *Table) error {
	path := filepath.Join(dir, t.Name()+".tbl")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: save table %s: %w", t.Name(), err)
	}
	if err := t.Scan().Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: save table %s: %w", t.Name(), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads every .tbl file in dir into the database, replacing any table
// with the same name. A missing directory loads nothing and is not an error.
func (db *Database) Load(dir string) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: load: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tbl") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".tbl")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("storage: load table %s: %w", name, err)
		}
		rs, err := rowset.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("storage: load table %s: %w", name, err)
		}
		t := NewTable(name, rs.Schema())
		if err := t.InsertMany(rs.Rows()); err != nil {
			return fmt.Errorf("storage: load table %s: %w", name, err)
		}
		db.mu.Lock()
		db.tables[strings.ToLower(name)] = t
		db.mu.Unlock()
	}
	return nil
}
