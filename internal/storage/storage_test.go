package storage

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/rowset"
)

func testSchema() *rowset.Schema {
	return rowset.MustSchema(
		rowset.Column{Name: "id", Type: rowset.TypeLong},
		rowset.Column{Name: "name", Type: rowset.TypeText},
		rowset.Column{Name: "score", Type: rowset.TypeDouble},
	)
}

func TestInsertCoercion(t *testing.T) {
	tbl := NewTable("t", testSchema())
	// "7" coerces to LONG; int 3 coerces to DOUBLE.
	if err := tbl.Insert(rowset.Row{"7", "a", 3}); err != nil {
		t.Fatal(err)
	}
	got := tbl.Scan().Row(0)
	if got[0] != int64(7) || got[2] != float64(3) {
		t.Errorf("coercion wrong: %#v", got)
	}
}

func TestInsertErrors(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if err := tbl.Insert(rowset.Row{int64(1)}); err == nil {
		t.Error("arity mismatch must error")
	}
	if err := tbl.Insert(rowset.Row{"abc", "a", 1.0}); err == nil {
		t.Error("uncoercible value must error")
	}
	if tbl.Len() != 0 {
		t.Error("failed insert must not add rows")
	}
}

func TestTruncate(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if err := tbl.Insert(rowset.Row{int64(1), "a", 1.0}); err != nil {
		t.Fatal(err)
	}
	tbl.Truncate()
	if tbl.Len() != 0 {
		t.Error("truncate must empty table")
	}
}

func TestIndexLookup(t *testing.T) {
	tbl := NewTable("t", testSchema())
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(rowset.Row{int64(i), fmt.Sprintf("n%d", i%10), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	rs, err := tbl.LookupEqual("name", "n3")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 10 {
		t.Errorf("indexed lookup = %d rows, want 10", rs.Len())
	}
	// Unindexed lookup falls back to scan with same answer.
	rs2, err := tbl.LookupEqual("score", 42.0)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Len() != 1 || rs2.Row(0)[0] != int64(42) {
		t.Errorf("scan lookup wrong: %v", rs2.Rows())
	}
	// Index stays consistent after more inserts.
	if err := tbl.Insert(rowset.Row{int64(100), "n3", 1.5}); err != nil {
		t.Fatal(err)
	}
	rs3, _ := tbl.LookupEqual("name", "n3")
	if rs3.Len() != 11 {
		t.Errorf("index not maintained: %d", rs3.Len())
	}
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Error("index on unknown column must error")
	}
	if _, err := tbl.LookupEqual("nope", 1); err == nil {
		t.Error("lookup on unknown column must error")
	}
}

func TestIndexAfterTruncate(t *testing.T) {
	tbl := NewTable("t", testSchema())
	if err := tbl.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(rowset.Row{int64(1), "a", 1.0}); err != nil {
		t.Fatal(err)
	}
	tbl.Truncate()
	rs, err := tbl.LookupEqual("id", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Error("index must be reset on truncate")
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	tbl := NewTable("t", testSchema())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = tbl.Insert(rowset.Row{int64(w*100 + i), "x", 0.0})
				_ = tbl.Scan()
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != 400 {
		t.Errorf("len = %d want 400", tbl.Len())
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable("Customers", testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("customers", testSchema()); err == nil {
		t.Error("duplicate table (case-insensitive) must error")
	}
	if _, err := db.Table("CUSTOMERS"); err != nil {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("missing table must error")
	}
	if _, err := db.CreateTable("Sales", testSchema()); err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "Customers" || names[1] != "Sales" {
		t.Errorf("Names = %v", names)
	}
	if err := db.DropTable("Sales"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("Sales"); err == nil {
		t.Error("dropping missing table must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase()
	tbl, err := db.CreateTable("People", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := tbl.Insert(rowset.Row{int64(i), fmt.Sprintf("p%d", i), float64(i) / 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}

	db2 := NewDatabase()
	if err := db2.Load(dir); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Table("People")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 25 {
		t.Fatalf("loaded %d rows, want 25", got.Len())
	}
	r := got.Scan().Row(24)
	if r[0] != int64(24) || r[1] != "p24" || r[2] != 12.0 {
		t.Errorf("row = %#v", r)
	}
}

func TestLoadMissingDir(t *testing.T) {
	db := NewDatabase()
	if err := db.Load(filepath.Join(t.TempDir(), "nothere")); err != nil {
		t.Errorf("missing dir must not error: %v", err)
	}
}
