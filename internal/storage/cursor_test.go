package storage

import (
	"fmt"
	"testing"

	"repro/internal/rowset"
)

func TestTableCursorSnapshot(t *testing.T) {
	tbl := NewTable("t", testSchema())
	for i := 0; i < 5; i++ {
		if err := tbl.Insert(rowset.Row{int64(i), fmt.Sprintf("n%d", i), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c := tbl.Cursor()
	// Rows inserted after the cursor was taken are not visible to it.
	if err := tbl.Insert(rowset.Row{int64(99), "late", 99.0}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		r, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
		if r[0] != int64(n) {
			t.Fatalf("row %d: id = %v", n, r[0])
		}
		n++
	}
	if n != 5 {
		t.Fatalf("cursor saw %d rows, want the 5-row snapshot", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if r, _ := c.Next(); r != nil {
		t.Fatalf("Next after Close yielded %v", r)
	}
}

func TestLookupEqualRows(t *testing.T) {
	tbl := NewTable("t", testSchema())
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(rowset.Row{int64(i), fmt.Sprintf("n%d", i%10), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	check := func(label string) {
		t.Helper()
		rows, err := tbl.LookupEqualRows("name", "n3")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 10 {
			t.Fatalf("%s: %d rows, want 10", label, len(rows))
		}
		// Insertion order is preserved either way.
		for i, r := range rows {
			if want := int64(i*10 + 3); r[0] != want {
				t.Fatalf("%s: row %d id = %v, want %d", label, i, r[0], want)
			}
		}
	}
	check("scan fallback")
	if tbl.HasIndex("name") {
		t.Fatal("HasIndex true before CreateIndex")
	}
	if err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex("name") {
		t.Fatal("HasIndex false after CreateIndex")
	}
	check("indexed")

	if rows, err := tbl.LookupEqualRows("name", "absent"); err != nil || rows != nil {
		t.Fatalf("missing key: (%v, %v), want (nil, nil)", rows, err)
	}
	if _, err := tbl.LookupEqualRows("nosuch", int64(1)); err == nil {
		t.Fatal("unknown column must error")
	}
}

// BenchmarkPointLookup pins the acceptance claim that an indexed lookup does
// O(bucket) work instead of O(table): the same point query over tables of
// 1e3/1e4/1e5 rows must cost roughly the same with an index (bucket size is
// constant) while the unindexed scan grows linearly.
func BenchmarkPointLookup(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000} {
		tbl := NewTable("t", testSchema())
		rows := make([]rowset.Row, size)
		for i := range rows {
			rows[i] = rowset.Row{int64(i), fmt.Sprintf("n%d", i), float64(i)}
		}
		if err := tbl.InsertMany(rows); err != nil {
			b.Fatal(err)
		}
		target := int64(size / 2)
		b.Run(fmt.Sprintf("scan/rows=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := tbl.LookupEqualRows("id", target)
				if err != nil || len(got) != 1 {
					b.Fatalf("lookup: %v (%d rows)", err, len(got))
				}
			}
		})
		if err := tbl.CreateIndex("id"); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("indexed/rows=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := tbl.LookupEqualRows("id", target)
				if err != nil || len(got) != 1 {
					b.Fatalf("lookup: %v (%d rows)", err, len(got))
				}
			}
		})
	}
}
