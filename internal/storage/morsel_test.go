package storage

import (
	"testing"

	"repro/internal/rowset"
)

func TestMorselRanges(t *testing.T) {
	cases := []struct {
		n, size int
		want    []Morsel
	}{
		{0, 10, nil},
		{-3, 10, nil},
		{5, 10, []Morsel{{0, 5}}},
		{10, 5, []Morsel{{0, 5}, {5, 10}}},
		{11, 5, []Morsel{{0, 5}, {5, 10}, {10, 11}}},
	}
	for _, c := range cases {
		got := MorselRanges(c.n, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("MorselRanges(%d, %d) = %v, want %v", c.n, c.size, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("MorselRanges(%d, %d)[%d] = %v, want %v", c.n, c.size, i, got[i], c.want[i])
			}
		}
	}
	// Default size kicks in for size <= 0 and partitions the full range.
	ms := MorselRanges(DefaultMorselSize+1, 0)
	if len(ms) != 2 || ms[0].Hi != DefaultMorselSize || ms[1] != (Morsel{DefaultMorselSize, DefaultMorselSize + 1}) {
		t.Fatalf("default-size morsels wrong: %v", ms)
	}
}

func TestSnapshotIsPointInTime(t *testing.T) {
	tbl := NewTable("T", rowset.MustSchema(rowset.Column{Name: "A", Type: rowset.TypeLong}))
	for i := 0; i < 4; i++ {
		if err := tbl.Insert(rowset.Row{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := tbl.Snapshot()
	if err := tbl.Insert(rowset.Row{int64(99)}); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 4 {
		t.Fatalf("snapshot grew after insert: %d rows", len(snap))
	}
	if err := tbl.Replace(nil); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 4 || rowset.Compare(snap[3][0], int64(3)) != 0 {
		t.Fatalf("snapshot changed after Replace: %v", snap)
	}
}

func TestTableCursorNextBatch(t *testing.T) {
	tbl := NewTable("T", rowset.MustSchema(rowset.Column{Name: "A", Type: rowset.TypeLong}))
	n := rowset.DefaultBatchSize + 7
	for i := 0; i < n; i++ {
		if err := tbl.Insert(rowset.Row{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	bc := rowset.BatchCursorOf(tbl.Cursor())
	snap := tbl.Snapshot()
	total, batches := 0, 0
	for {
		b, err := bc.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b.Empty() {
			break
		}
		if b.Sel != nil {
			t.Fatal("table scan batch should have nil Sel")
		}
		// Zero-copy: batch rows alias the snapshot.
		if &b.Rows[0][0] != &snap[total][0] {
			t.Fatalf("batch %d is not a view of the table snapshot", batches)
		}
		total += b.Len()
		batches++
	}
	if total != n || batches != 2 {
		t.Fatalf("drained %d rows in %d batches, want %d in 2", total, batches, n)
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err := bc.NextBatch(); err != nil || !b.Empty() {
		t.Fatalf("NextBatch after Close = %d rows, err %v", b.Len(), err)
	}
}
