// Package dmclient is the TCP client for a dmserver provider: the consumer
// half of the paper's Figure 1 deployment. A Client is safe for concurrent
// use; requests serialize over one connection.
package dmclient

import (
	"bufio"
	"net"
	"sync"
	"time"

	"repro/internal/dmserver"
	"repro/internal/rowset"
)

// DefaultDialTimeout bounds connection establishment unless WithDialTimeout
// overrides it.
const DefaultDialTimeout = 10 * time.Second

// Option configures a Client before it connects.
type Option func(*config)

type config struct {
	dialTimeout    time.Duration
	requestTimeout time.Duration
	plainProtocol  bool
}

// WithDialTimeout bounds connection establishment (DefaultDialTimeout when
// unset; zero or negative disables the bound).
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) { c.dialTimeout = d }
}

// WithRequestTimeout bounds each Execute round trip: the connection's I/O
// deadline is set d past the moment the request is written. Zero (the
// default) means no per-request deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.requestTimeout = d }
}

// WithPlainProtocol makes the client speak protocol v1 (no stats trailer),
// for servers predating the v2 marker. Stats() then never reports.
func WithPlainProtocol() Option {
	return func(c *config) { c.plainProtocol = true }
}

// Client is a connection to a remote provider.
type Client struct {
	requestTimeout time.Duration
	plain          bool

	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	stats    dmserver.ExecStats
	hasStats bool
}

// New connects to a dmserver at addr.
func New(addr string, opts ...Option) (*Client, error) {
	cfg := config{dialTimeout: DefaultDialTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	var conn net.Conn
	var err error
	if cfg.dialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, cfg.dialTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return &Client{
		requestTimeout: cfg.requestTimeout,
		plain:          cfg.plainProtocol,
		conn:           conn,
		br:             bufio.NewReader(conn),
		bw:             bufio.NewWriter(conn),
	}, nil
}

// Dial connects to a dmserver at addr.
//
// Deprecated: use New, which takes Options.
func Dial(addr string) (*Client, error) {
	return New(addr)
}

// DialTimeout connects with a dial timeout.
//
// Deprecated: use New(addr, WithDialTimeout(timeout)).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return New(addr, WithDialTimeout(timeout))
}

// Execute runs one DMX/SQL command on the remote provider.
func (c *Client) Execute(command string) (*rowset.Rowset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.requestTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.requestTimeout)); err != nil {
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if c.plain {
		if err := dmserver.WriteRequest(c.bw, command); err != nil {
			return nil, err
		}
		return dmserver.ReadResponse(c.br)
	}
	if err := dmserver.WriteRequestStats(c.bw, command); err != nil {
		return nil, err
	}
	rs, stats, err := dmserver.ReadResponseStats(c.br)
	if stats != nil {
		c.stats, c.hasStats = *stats, true
	}
	return rs, err
}

// Stats returns the server-side execution summary (elapsed time, row count)
// of the most recent Execute that carried one — failed statements report
// too, with Rows 0, since the server trailers errors as well (StatusErrStats).
// It reports false before the first completed request, when the server
// predates the v2 error trailer, or when the client was configured with
// WithPlainProtocol.
func (c *Client) Stats() (dmserver.ExecStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, c.hasStats
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
