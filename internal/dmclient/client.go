// Package dmclient is the TCP client for a dmserver provider: the consumer
// half of the paper's Figure 1 deployment. A Client is safe for concurrent
// use; requests serialize over one connection.
package dmclient

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/dmserver"
	"repro/internal/rowset"
)

// DefaultDialTimeout bounds connection establishment unless WithDialTimeout
// overrides it.
const DefaultDialTimeout = 10 * time.Second

// Option configures a Client before it connects.
type Option func(*config)

type config struct {
	dialTimeout    time.Duration
	requestTimeout time.Duration
	plainProtocol  bool
}

// WithDialTimeout bounds connection establishment (DefaultDialTimeout when
// unset; zero or negative disables the bound).
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) { c.dialTimeout = d }
}

// WithRequestTimeout bounds each Execute round trip: the connection's I/O
// deadline is set d past the moment the request is written. Zero (the
// default) means no per-request deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.requestTimeout = d }
}

// WithPlainProtocol makes the client speak protocol v1 (no stats trailer),
// for servers predating the v2 marker. Stats() then never reports.
func WithPlainProtocol() Option {
	return func(c *config) { c.plainProtocol = true }
}

// Client is a connection to a remote provider.
type Client struct {
	requestTimeout time.Duration
	plain          bool

	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	stats    dmserver.ExecStats
	hasStats bool
}

// New connects to a dmserver at addr.
func New(addr string, opts ...Option) (*Client, error) {
	cfg := config{dialTimeout: DefaultDialTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	var conn net.Conn
	var err error
	if cfg.dialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, cfg.dialTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	return &Client{
		requestTimeout: cfg.requestTimeout,
		plain:          cfg.plainProtocol,
		conn:           conn,
		br:             bufio.NewReader(conn),
		bw:             bufio.NewWriter(conn),
	}, nil
}

// Dial connects to a dmserver at addr.
//
// Deprecated: use New, which takes Options.
func Dial(addr string) (*Client, error) {
	return New(addr)
}

// DialTimeout connects with a dial timeout.
//
// Deprecated: use New(addr, WithDialTimeout(timeout)).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return New(addr, WithDialTimeout(timeout))
}

// Execute runs one DMX/SQL command on the remote provider.
func (c *Client) Execute(command string) (*rowset.Rowset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.requestTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.requestTimeout)); err != nil {
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if c.plain {
		if err := dmserver.WriteRequest(c.bw, command); err != nil {
			return nil, err
		}
		return dmserver.ReadResponse(c.br)
	}
	if err := dmserver.WriteRequestStats(c.bw, command); err != nil {
		return nil, err
	}
	rs, stats, err := dmserver.ReadResponseStats(c.br)
	if stats != nil {
		c.stats, c.hasStats = *stats, true
	}
	return rs, err
}

// roundTrip serializes one request/response exchange: write sends the framed
// request, then one response is read and its stats (if any) recorded.
func (c *Client) roundTrip(write func(*bufio.Writer) error) (*rowset.Rowset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.requestTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.requestTimeout)); err != nil {
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := write(c.bw); err != nil {
		return nil, err
	}
	rs, stats, err := dmserver.ReadResponseStats(c.br)
	if stats != nil {
		c.stats, c.hasStats = *stats, true
	}
	return rs, err
}

// Prepare registers command on the remote provider under name, for later
// ExecutePrepared calls. It is sugar for executing PREPARE <name> AS
// <command>; the name is bracket-quoted, so any identifier is safe.
func (c *Client) Prepare(name, command string) error {
	_, err := c.Execute("PREPARE " + quoteName(name) + " AS " + command)
	return err
}

// Deallocate drops the prepared statement name on the remote provider.
func (c *Client) Deallocate(name string) error {
	_, err := c.Execute("DEALLOCATE " + quoteName(name))
	return err
}

// ExecutePrepared runs the remote prepared statement name with args bound to
// its placeholders by position. Arguments travel in the protocol's binary
// codec — never spliced into command text — so string values with quotes
// round-trip exactly. Requires protocol v3 (any current server); clients
// configured WithPlainProtocol cannot send parameters.
func (c *Client) ExecutePrepared(name string, args ...rowset.Value) (*rowset.Rowset, error) {
	if c.plain {
		return nil, fmt.Errorf("dmclient: server-side parameters require protocol v3 (client configured WithPlainProtocol)")
	}
	return c.roundTrip(func(bw *bufio.Writer) error {
		return dmserver.WriteRequestExecutePrepared(bw, name, args)
	})
}

// ExecuteParams runs command with positional args bound to its '?' or
// '@name' placeholders — one-shot server-side parameters without a named
// prepared statement. Requires protocol v3.
func (c *Client) ExecuteParams(command string, args ...rowset.Value) (*rowset.Rowset, error) {
	if c.plain {
		return nil, fmt.Errorf("dmclient: server-side parameters require protocol v3 (client configured WithPlainProtocol)")
	}
	return c.roundTrip(func(bw *bufio.Writer) error {
		return dmserver.WriteRequestExecParams(bw, command, args)
	})
}

// quoteName brackets an identifier, escaping closing brackets, so arbitrary
// names survive statement splicing.
func quoteName(name string) string {
	return "[" + strings.ReplaceAll(name, "]", "]]") + "]"
}

// Stats returns the server-side execution summary (elapsed time, row count)
// of the most recent Execute that carried one — failed statements report
// too, with Rows 0, since the server trailers errors as well (StatusErrStats).
// It reports false before the first completed request, when the server
// predates the v2 error trailer, or when the client was configured with
// WithPlainProtocol.
func (c *Client) Stats() (dmserver.ExecStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, c.hasStats
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
