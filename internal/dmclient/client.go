// Package dmclient is the TCP client for a dmserver provider: the consumer
// half of the paper's Figure 1 deployment. A Client is safe for concurrent
// use; requests serialize over one connection.
package dmclient

import (
	"bufio"
	"net"
	"sync"
	"time"

	"repro/internal/dmserver"
	"repro/internal/rowset"
)

// Client is a connection to a remote provider.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a dmserver at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Execute runs one DMX/SQL command on the remote provider.
func (c *Client) Execute(command string) (*rowset.Rowset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := dmserver.WriteRequest(c.bw, command); err != nil {
		return nil, err
	}
	return dmserver.ReadResponse(c.br)
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
