package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("same name must resolve to the same counter")
	}
	if r.Counter("y") == c {
		t.Error("different names must resolve to different counters")
	}
}

func TestNilSafety(t *testing.T) {
	// Every handle chained off a nil registry must be a usable no-op.
	var r *Registry
	r.Counter("c").Inc()
	r.Histogram("h").Observe(7)
	if r.Counter("c").Value() != 0 {
		t.Error("nil counter must read 0")
	}
	if s := r.Histogram("h").Snapshot(); s.Count != 0 {
		t.Error("nil histogram must snapshot empty")
	}
	if seq := r.QueryLog().Append(Record{}); seq != 0 {
		t.Errorf("nil log Append = %d, want 0", seq)
	}
	if r.QueryLog().Snapshot() != nil || r.QueryLog().Total() != 0 || r.QueryLog().Cap() != 0 {
		t.Error("nil log must be empty")
	}
	cs := r.Connections().Open("addr")
	cs.Request(true)
	r.Connections().Close(cs)
	if r.Connections().Snapshot() != nil {
		t.Error("nil tracker must snapshot nil")
	}
	if r.Counters() != nil || r.Histograms() != nil {
		t.Error("nil registry must list no metrics")
	}

	var tr *Trace
	tr.StartStage(StageScan)()
	tr.SetKind("SQL")
	tr.AddRowsIn(1)
	tr.SetRowsOut(1)
	tr.SetParallelism(2)
	tr.SetErrClass("x")
	if tr.ErrClass() != "" {
		t.Error("nil trace ErrClass must be empty")
	}
	if rec := tr.Finish(""); rec.Seq != 0 || rec.Elapsed != 0 {
		t.Errorf("nil trace Finish = %+v, want zero Record", rec)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// v == 0 → bucket 0 (bound 0); v in [2^(i-1), 2^i) → bucket i.
	cases := []struct {
		v     int64
		bound int64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{3, 3},
		{4, 7},
		{1000, 1023},
		{-5, 0}, // negatives clamp to zero
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	if s.Sum != 0+1+2+3+4+1000+0 {
		t.Errorf("Sum = %d", s.Sum)
	}
	got := map[int64]int64{}
	for _, b := range s.Buckets {
		got[b.UpperBound] = b.Count
	}
	want := map[int64]int64{0: 2, 1: 1, 3: 2, 7: 1, 1023: 1}
	for bound, n := range want {
		if got[bound] != n {
			t.Errorf("bucket ≤%d count = %d, want %d (buckets %v)", bound, got[bound], n, s.Buckets)
		}
	}
	// Bounds come back ascending.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].UpperBound <= s.Buckets[i-1].UpperBound {
			t.Errorf("bucket bounds not ascending: %v", s.Buckets)
		}
	}
}

func TestHistogramOverflowClampsToLastBucket(t *testing.T) {
	var h Histogram
	h.Observe(1 << 62)
	s := h.Snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.Buckets[0].UpperBound != BucketUpperBound(histBuckets-1) {
		t.Errorf("overflow bound = %d, want %d", s.Buckets[0].UpperBound, BucketUpperBound(histBuckets-1))
	}
}

func TestQueryLogRingWraparound(t *testing.T) {
	l := NewQueryLog(4)
	for i := 1; i <= 10; i++ {
		seq := l.Append(Record{Statement: fmt.Sprintf("q%d", i)})
		if seq != int64(i) {
			t.Fatalf("Append #%d returned seq %d", i, seq)
		}
	}
	if l.Total() != 10 || l.Cap() != 4 {
		t.Errorf("Total = %d Cap = %d", l.Total(), l.Cap())
	}
	recs := l.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot = %d records", len(recs))
	}
	// Oldest first: q7..q10 with seq 7..10.
	for i, r := range recs {
		if r.Seq != int64(7+i) || r.Statement != fmt.Sprintf("q%d", 7+i) {
			t.Errorf("record %d = seq %d %q", i, r.Seq, r.Statement)
		}
	}
}

func TestQueryLogTruncatesStatement(t *testing.T) {
	l := NewQueryLog(2)
	l.Append(Record{Statement: strings.Repeat("x", maxStatementLen+100)})
	if got := len(l.Snapshot()[0].Statement); got != maxStatementLen {
		t.Errorf("stored statement length = %d, want %d", got, maxStatementLen)
	}
}

func TestQueryLogDefaultCap(t *testing.T) {
	if NewQueryLog(0).Cap() != DefaultQueryLogCap {
		t.Error("capacity <= 0 must fall back to DefaultQueryLogCap")
	}
}

func TestTraceStagesAndContext(t *testing.T) {
	tr := NewTrace("SELECT 1", "test")
	stop := tr.StartStage(StageScan)
	time.Sleep(time.Millisecond)
	stop()
	// Accumulation: a second burst adds to the same stage.
	stop = tr.StartStage(StageScan)
	time.Sleep(time.Millisecond)
	stop()
	tr.SetKind("SQL")
	tr.AddRowsIn(3)
	tr.AddRowsIn(2)
	tr.SetRowsOut(4)
	tr.SetParallelism(8)

	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace must round-trip through the context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("background context must carry no trace")
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Error("nil trace must not wrap the context")
	}

	rec := tr.Finish("")
	if rec.Kind != "SQL" || rec.Origin != "test" || rec.Statement != "SELECT 1" {
		t.Errorf("record = %+v", rec)
	}
	if rec.RowsIn != 5 || rec.RowsOut != 4 || rec.Parallelism != 8 {
		t.Errorf("rows/parallelism = %d %d %d", rec.RowsIn, rec.RowsOut, rec.Parallelism)
	}
	if rec.Stages[StageScan] < 2*time.Millisecond {
		t.Errorf("scan stage = %v, want >= 2ms", rec.Stages[StageScan])
	}
	if rec.Elapsed < rec.Stages[StageScan] {
		t.Errorf("Elapsed %v < scan stage %v", rec.Elapsed, rec.Stages[StageScan])
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageParse: "parse", StageBind: "bind", StageSource: "source",
		StageTrain: "train", StageScan: "scan", NumStages: "unknown",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
}

func TestConnTracker(t *testing.T) {
	var ct ConnTracker
	a := ct.Open("1.1.1.1:1")
	b := ct.Open("2.2.2.2:2")
	a.Request(false)
	a.Request(true)
	snap := ct.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("connections = %d", len(snap))
	}
	// Snapshot is ordered by connection ID.
	if snap[0].Remote != "1.1.1.1:1" || snap[1].Remote != "2.2.2.2:2" {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap[0].Requests != 2 || snap[0].Errors != 1 {
		t.Errorf("requests/errors = %d/%d", snap[0].Requests, snap[0].Errors)
	}
	ct.Close(a)
	if remaining := ct.Snapshot(); len(remaining) != 1 || remaining[0].Remote != "2.2.2.2:2" {
		t.Errorf("after close: %+v", remaining)
	}
	ct.Close(b)
	if len(ct.Snapshot()) != 0 {
		t.Error("tracker must be empty after closing all connections")
	}
}

// TestConcurrentRegistryAccess exercises handle resolution, observation, and
// snapshotting from many goroutines; run under -race this validates the
// locking scheme the dmlint guard annotation documents.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("c%d", g%3)).Add(2)
				r.Histogram("lat").Observe(int64(i))
				r.QueryLog().Append(Record{Statement: "q"})
				cs := r.Connections().Open("x")
				cs.Request(false)
				r.Connections().Close(cs)
				if i%50 == 0 {
					r.Counters()
					r.Histograms()
					r.QueryLog().Snapshot()
					r.Connections().Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*200 {
		t.Errorf("shared counter = %d, want %d", got, 8*200)
	}
	if got := r.QueryLog().Total(); got != 8*200 {
		t.Errorf("query log total = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("lat").Snapshot().Count; got != 8*200 {
		t.Errorf("histogram count = %d, want %d", got, 8*200)
	}
}
