package obs

import (
	"sync"
	"time"
)

// Stage identifies one timed phase of statement execution. The stages mirror
// the provider's pipeline: lex/parse, semantic bind, source assembly (the SQL
// or SHAPE query feeding a mining statement, or a standalone SHAPE), model
// training, and the per-case scan (PREDICTION JOIN evaluation, or plain SQL
// execution for relational statements).
type Stage int

const (
	StageParse Stage = iota
	StageBind
	StageSource
	StageTrain
	StageScan
	// NumStages is the number of stages; Record.Stages is indexed by Stage.
	NumStages
)

var stageNames = [NumStages]string{"parse", "bind", "source", "train", "scan"}

// String returns the stage's lower-case name.
func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// maxStatementLen bounds the statement text kept in a query-log record so a
// pathological multi-megabyte statement cannot pin memory through the ring.
const maxStatementLen = 512

// Record is one completed statement in the query log.
type Record struct {
	// Seq is the statement's 1-based position in the provider's lifetime
	// statement sequence; it keeps ordering stable across ring wraparound.
	Seq int64
	// Start is when execution began.
	Start time.Time
	// Statement is the command text, truncated to maxStatementLen bytes.
	Statement string
	// Kind labels the statement class (SQL, SHAPE, PREDICT, INSERT, ...).
	Kind string
	// Origin labels where the statement came from (e.g. a remote address for
	// server connections); empty for in-process calls.
	Origin string
	// ErrClass is the error classification ("" on success): parse, semantic,
	// not_found, cancelled, or exec.
	ErrClass string
	// Elapsed is total wall time.
	Elapsed time.Duration
	// Stages holds per-stage wall time, indexed by Stage. Stages that did not
	// run are zero.
	Stages [NumStages]time.Duration
	// RowsIn is the number of source rows consumed (training or scan input).
	RowsIn int64
	// RowsOut is the number of result rows produced.
	RowsOut int64
	// Parallelism is the worker count used by the statement's scan loops
	// (0 when no parallel path ran).
	Parallelism int
}

// QueryLog is a bounded ring buffer of the most recent statement Records.
// Appends are O(1) and never allocate once the ring is full.
type QueryLog struct {
	// mu guards the ring and sequence counter; see the package guard
	// annotation on Registry.
	mu      sync.Mutex
	records []Record
	cap     int
	seq     int64
}

// NewQueryLog creates a log keeping the last capacity records
// (DefaultQueryLogCap when capacity <= 0).
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = DefaultQueryLogCap
	}
	return &QueryLog{cap: capacity}
}

// Append records one statement, assigning its Seq, and returns that Seq.
// Safe on a nil log (returns 0).
func (l *QueryLog) Append(r Record) int64 {
	if l == nil {
		return 0
	}
	if len(r.Statement) > maxStatementLen {
		r.Statement = r.Statement[:maxStatementLen]
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	r.Seq = l.seq
	if len(l.records) < l.cap {
		l.records = append(l.records, r)
	} else {
		l.records[int((r.Seq-1)%int64(l.cap))] = r
	}
	return r.Seq
}

// Cap returns the ring capacity.
func (l *QueryLog) Cap() int {
	if l == nil {
		return 0
	}
	return l.cap
}

// Total returns the lifetime number of appended records (not bounded by the
// ring capacity).
func (l *QueryLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Find returns the record with the given seq, if the ring still holds it.
// Seq is a ring position (Append assigns them densely), so the lookup is
// O(1). Safe on a nil log.
func (l *QueryLog) Find(seq int64) (Record, bool) {
	if l == nil || seq <= 0 {
		return Record{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.seq || seq <= l.seq-int64(len(l.records)) {
		return Record{}, false // never assigned, or already overwritten
	}
	r := l.records[int((seq-1)%int64(l.cap))]
	if r.Seq != seq {
		return Record{}, false
	}
	return r, true
}

// Snapshot returns the retained records, oldest first. A nil log snapshots
// as empty.
func (l *QueryLog) Snapshot() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.records))
	if len(l.records) < l.cap {
		return append(out, l.records...)
	}
	// Full ring: the oldest record sits just past the most recent write.
	start := int(l.seq % int64(l.cap))
	out = append(out, l.records[start:]...)
	out = append(out, l.records[:start]...)
	return out
}
