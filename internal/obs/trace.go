package obs

import (
	"context"
	"time"
)

// Trace accumulates one statement's timings while it executes; when the
// statement finishes the provider turns it into a query-log Record. A Trace
// is owned by the goroutine executing the statement — parallel scan workers
// never touch it (the scan loop reports rows and parallelism once, after the
// workers join) — so its fields need no synchronization.
//
// Besides the flat per-stage timers, a trace grows a hierarchical span tree
// (see span.go): StartSpan/EndSpan push and pop operator spans under a root
// "statement" span, and stage-attributed spans feed the flat timers on close.
//
// All methods are safe on a nil receiver: an uninstrumented provider passes
// nil traces through the same code paths at the cost of a pointer test.
type Trace struct {
	start       time.Time
	statement   string
	origin      string
	kind        string
	errClass    string
	stages      [NumStages]time.Duration
	rowsIn      int64
	rowsOut     int64
	parallelism int

	// root anchors the span tree; stack tracks the innermost open span
	// (stack[0] is always root). Statement-goroutine-owned, like the rest.
	root  *Span
	stack []*Span

	// detailed requests per-operator timing from streaming executors. The
	// streaming pipeline interleaves all operators in one drain loop, so
	// attributing wall time to individual operators costs two clock reads per
	// row per operator; EXPLAIN ANALYZE asks for that explicitly, and the
	// flight recorder (via detailSource) turns it on automatically while a
	// statement class is running hot.
	detailed bool

	// detailSource, when set, is consulted once the statement class is known
	// (SetKind) to decide whether this statement should record per-operator
	// detail. In practice it is the registry's FlightRecorder.
	detailSource Detailer
}

// Detailer decides whether a statement of the given class should record
// detailed per-operator timing. Implemented by *FlightRecorder; any
// implementation must tolerate concurrent calls.
type Detailer interface {
	ShouldDetail(class string) bool
}

// NewTrace starts a trace for one statement.
func NewTrace(statement, origin string) *Trace {
	t := &Trace{start: time.Now(), statement: statement, origin: origin}
	t.root = &Span{Kind: "statement", start: t.start, stage: spanNoStage}
	t.stack = make([]*Span, 1, 8)
	t.stack[0] = t.root
	return t
}

// StartStage begins timing a stage and returns the function that ends it.
// Stage time accumulates, so a stage that runs in several bursts (e.g. the
// per-child source queries of a SHAPE) reports their sum.
func (t *Trace) StartStage(s Stage) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.stages[s] += time.Since(begin) }
}

// SetKind labels the statement class. If a detail source is attached and
// reports the class as hot, per-operator timing switches on for the rest of
// the statement — SetKind fires during dispatch, before the heavy stages run.
func (t *Trace) SetKind(kind string) {
	if t == nil {
		return
	}
	t.kind = kind
	if !t.detailed && t.detailSource != nil && t.detailSource.ShouldDetail(kind) {
		t.detailed = true
	}
}

// SetDetailSource attaches the decider consulted by SetKind; see Detailer.
func (t *Trace) SetDetailSource(d Detailer) {
	if t != nil {
		t.detailSource = d
	}
}

// SetDetailed requests (or clears) per-operator timing on streamed operator
// spans; see the field comment. EXPLAIN ANALYZE sets it before dispatching
// the wrapped statement.
func (t *Trace) SetDetailed(on bool) {
	if t != nil {
		t.detailed = on
	}
}

// Detailed reports whether per-operator timing was requested. False on nil.
func (t *Trace) Detailed() bool { return t != nil && t.detailed }

// SetErrClass overrides the error classification derived from the error
// value (used to mark parse-stage failures).
func (t *Trace) SetErrClass(class string) {
	if t != nil {
		t.errClass = class
	}
}

// AddRowsIn accumulates source rows consumed.
func (t *Trace) AddRowsIn(n int64) {
	if t != nil {
		t.rowsIn += n
	}
}

// SetRowsOut records result rows produced.
func (t *Trace) SetRowsOut(n int64) {
	if t != nil {
		t.rowsOut = n
	}
}

// SetParallelism records the worker count used by the statement's scan.
func (t *Trace) SetParallelism(workers int) {
	if t != nil {
		t.parallelism = workers
	}
}

// ErrClass returns the explicitly set classification ("" when unset).
func (t *Trace) ErrClass() string {
	if t == nil {
		return ""
	}
	return t.errClass
}

// Finish converts the trace into a Record and seals the root span (total
// elapsed time, result rows, statement kind as its label). errClass should be
// "" for successful statements. Finish on a nil trace returns a zero Record.
func (t *Trace) Finish(errClass string) Record {
	if t == nil {
		return Record{}
	}
	elapsed := time.Since(t.start)
	t.root.Elapsed = elapsed
	t.root.Rows = t.rowsOut
	t.root.Label = t.kind
	return Record{
		Start:       t.start,
		Statement:   t.statement,
		Kind:        t.kind,
		Origin:      t.origin,
		ErrClass:    errClass,
		Elapsed:     elapsed,
		Stages:      t.stages,
		RowsIn:      t.rowsIn,
		RowsOut:     t.rowsOut,
		Parallelism: t.parallelism,
	}
}

// traceKey is the context key under which a statement's Trace travels.
type traceKey struct{}

// WithTrace returns a context carrying t. Passing a nil trace returns ctx
// unchanged, so uninstrumented executions don't allocate a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
