package obs

import (
	"time"
)

// Span is one node of a statement's hierarchical execution trace: an operator
// (scan, filter, join, group-by, sort, project, shape, append, caseset,
// predict, train, ...) with its wall time, rows emitted, and child operators.
// The flat per-stage timers of a Trace are fed from the same spans (see
// Trace.StartSpanStage), so the query log's stage breakdown and the span tree
// cannot disagree.
//
// Ownership rule: a span tree belongs to the goroutine executing the
// statement. Parallel scan workers never touch spans — the scan loop opens
// one span before the workers fork and closes it after they join, recording
// the fan-out in the span's label — so spans need no synchronization while
// they are being built. Once the statement finishes the tree is immutable and
// may be read freely (the DM_TRACE rowset and EXPLAIN ANALYZE both do).
type Span struct {
	// Kind is the operator kind (lower-case, stable: "scan", "filter", ...).
	Kind string
	// Label carries operator detail: a table name for scans, the APPEND name
	// for shape children, "model=... workers=N" for prediction scans.
	Label string
	// Elapsed is the operator's wall time; zero until the span ends (and
	// always zero in plan-only trees built for bare EXPLAIN).
	Elapsed time.Duration
	// Rows is the number of rows the operator emitted.
	Rows int64
	// Children are sub-operators in execution order.
	Children []*Span

	start time.Time
	// stage is the Trace stage this span's elapsed time accumulates into;
	// spanNoStage when the span is not stage-attributed.
	stage Stage
}

// spanNoStage marks a span that does not feed a Trace stage timer.
const spanNoStage Stage = -1

// NewSpan builds a detached span with no timing, for plan-only trees (bare
// EXPLAIN renders the operators a statement would run without running them).
func NewSpan(kind, label string) *Span {
	return &Span{Kind: kind, Label: label, stage: spanNoStage}
}

// Add appends child to s and returns s for chaining. Safe on nil (returns
// nil) so plan builders can compose optional nodes without branching.
func (s *Span) Add(child *Span) *Span {
	if s == nil || child == nil {
		return s
	}
	s.Children = append(s.Children, child)
	return s
}

// SetRows records the operator's output row count. Safe on nil.
func (s *Span) SetRows(n int64) {
	if s != nil {
		s.Rows = n
	}
}

// SetLabel replaces the span's label (used when detail — e.g. the worker
// count — is only known after the span opened). Safe on nil.
func (s *Span) SetLabel(label string) {
	if s != nil {
		s.Label = label
	}
}

// Walk visits the tree in depth-first preorder, calling fn with each span and
// its depth (0 for s itself). Safe on nil.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(sp *Span, depth int), depth int) {
	if s == nil {
		return
	}
	fn(s, depth)
	for _, c := range s.Children {
		c.walk(fn, depth+1)
	}
}

// StartSpan opens a child span under the current innermost open span and
// makes it current; EndSpan closes it. On a nil trace it returns nil without
// allocating, so uninstrumented paths pay one pointer test per operator.
func (t *Trace) StartSpan(kind, label string) *Span {
	if t == nil {
		return nil
	}
	return t.pushSpan(kind, label, spanNoStage)
}

// StartSpanStage is StartSpan for a stage-attributed operator: when the span
// ends, its elapsed time also accumulates into the trace's flat stage timer,
// keeping the query log's per-stage breakdown and the span tree consistent.
func (t *Trace) StartSpanStage(stage Stage, kind, label string) *Span {
	if t == nil {
		return nil
	}
	return t.pushSpan(kind, label, stage)
}

func (t *Trace) pushSpan(kind, label string, stage Stage) *Span {
	sp := &Span{Kind: kind, Label: label, start: time.Now(), stage: stage}
	parent := t.stack[len(t.stack)-1]
	parent.Children = append(parent.Children, sp)
	t.stack = append(t.stack, sp)
	return sp
}

// EndSpan closes sp, recording its elapsed time (and feeding the attributed
// stage timer, if any). Spans left open below sp — an error path that
// returned early — are popped with it, so a deferred EndSpan on an outer span
// keeps the stack consistent. Safe on nil trace or nil span.
func (t *Trace) EndSpan(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.Elapsed = time.Since(sp.start)
	if sp.stage >= 0 && sp.stage < NumStages {
		t.stages[sp.stage] += sp.Elapsed
	}
	for i := len(t.stack) - 1; i > 0; i-- {
		if t.stack[i] == sp {
			t.stack = t.stack[:i]
			return
		}
	}
}

// Root returns the trace's root span ("statement"), or nil on a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SpanTree closes the root span against the current clock and returns it:
// EXPLAIN ANALYZE reads the tree after the inner statement ran but before
// Finish seals the trace. rowsOut records the statement's result rows on the
// root. Safe on nil (returns nil).
func (t *Trace) SpanTree(rowsOut int64) *Span {
	if t == nil {
		return nil
	}
	t.root.Elapsed = time.Since(t.start)
	t.root.Rows = rowsOut
	t.root.Label = t.kind
	return t.root
}
