package obs

import (
	"testing"
	"time"
)

func flightRec(seq int64, kind, errClass string, elapsed time.Duration) FlightRecord {
	return FlightRecord{
		Seq:       seq,
		Start:     time.Unix(seq, 0),
		Statement: "stmt",
		Kind:      kind,
		ErrClass:  errClass,
		Elapsed:   elapsed,
		Root:      NewSpan("statement", ""),
	}
}

func TestRecorderKeepsFailures(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Consider(flightRec(1, "PREDICT", "exec", time.Millisecond))
	f.Consider(flightRec(2, "PREDICT", "busy", time.Millisecond))
	f.Consider(flightRec(3, "PREDICT", "cancelled", time.Millisecond))
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("recorder holds %d records, want 3", len(snap))
	}
	want := map[int64]KeepReason{1: KeepError, 2: KeepBusy, 3: KeepCancelled}
	for _, r := range snap {
		if r.Reason != want[r.Seq] {
			t.Fatalf("seq %d kept as %q, want %q", r.Seq, r.Reason, want[r.Seq])
		}
	}
}

func TestRecorderKeepsSlowOverMovingP95(t *testing.T) {
	f := NewFlightRecorder(0)
	// Warm the PREDICT class well past flightMinSamples with ~1ms statements.
	seq := int64(0)
	for i := 0; i < 2*flightMinSamples; i++ {
		seq++
		f.Consider(flightRec(seq, "PREDICT", "", time.Millisecond))
	}
	// A 100ms outlier must be kept as slow, with the threshold it beat.
	seq++
	f.Consider(flightRec(seq, "PREDICT", "", 100*time.Millisecond))
	got, ok := f.Find(seq)
	if !ok {
		t.Fatalf("slow statement seq %d not retained", seq)
	}
	if got.Reason != KeepSlow {
		t.Fatalf("kept as %q, want %q", got.Reason, KeepSlow)
	}
	if got.ThresholdUS <= 0 || got.ThresholdUS > 100_000 {
		t.Fatalf("threshold = %dus, want in (0, 100000]", got.ThresholdUS)
	}
	// The 2x-p95 outlier armed detailed sampling for the class.
	detailed := false
	for i := 0; i < 2*flightDetailEvery; i++ {
		if f.ShouldDetail("PREDICT") {
			detailed = true
		}
	}
	if !detailed {
		t.Fatal("hot class never asked for detail")
	}
	if f.ShouldDetail("SQL") {
		t.Fatal("cold class asked for detail")
	}
}

// TestRecorderTailRetention is the core tail-based guarantee the old FIFO
// ring lacked: one interesting statement survives hundreds of later fast
// statements.
func TestRecorderTailRetention(t *testing.T) {
	f := NewFlightRecorder(0)
	f.Consider(flightRec(1, "PREDICT", "exec", time.Millisecond))
	for i := int64(2); i <= 600; i++ {
		f.Consider(flightRec(i, "PREDICT", "", time.Millisecond))
	}
	got, ok := f.Find(1)
	if !ok {
		t.Fatal("error record evicted by fast normal traffic")
	}
	if got.Reason != KeepError {
		t.Fatalf("reason = %q, want error", got.Reason)
	}
	// Normal traffic is still represented by a bounded reservoir.
	var samples int
	for _, r := range f.Snapshot() {
		if r.Reason == KeepSample {
			samples++
		}
	}
	if samples == 0 || samples > defaultSampleCap {
		t.Fatalf("reservoir holds %d samples, want 1..%d", samples, defaultSampleCap)
	}
}

// TestRecorderEvictionPriorities: when the ring is full of high-priority
// records, a new sample is dropped rather than evicting one, and a new error
// evicts the oldest same-priority record.
func TestRecorderEvictionPriorities(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := int64(1); i <= 4; i++ {
		f.Consider(flightRec(i, "SQL", "exec", time.Millisecond))
	}
	// Full of errors: a normal statement must not displace any.
	f.Consider(flightRec(5, "SQL", "", time.Millisecond))
	if _, ok := f.Find(5); ok {
		t.Fatal("sample evicted an error record")
	}
	// A new error evicts the oldest error.
	f.Consider(flightRec(6, "SQL", "exec", time.Millisecond))
	if _, ok := f.Find(1); ok {
		t.Fatal("oldest error survived same-priority eviction")
	}
	if _, ok := f.Find(6); !ok {
		t.Fatal("new error not retained")
	}
	// Busy records rank below errors: fill a fresh ring with busy, then
	// errors push them all out.
	f2 := NewFlightRecorder(2)
	f2.Consider(flightRec(1, "SQL", "busy", time.Millisecond))
	f2.Consider(flightRec(2, "SQL", "busy", time.Millisecond))
	f2.Consider(flightRec(3, "SQL", "exec", time.Millisecond))
	f2.Consider(flightRec(4, "SQL", "exec", time.Millisecond))
	snap := f2.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 3 || snap[1].Seq != 4 {
		t.Fatalf("snapshot = %+v, want errors [3 4]", snap)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Consider(flightRec(1, "SQL", "", time.Millisecond))
	if f.Snapshot() != nil || f.Cap() != 0 || f.ShouldDetail("SQL") {
		t.Fatal("nil recorder misbehaves")
	}
	if _, ok := f.Find(1); ok {
		t.Fatal("nil recorder found a record")
	}
	// Nil roots are dropped.
	real := NewFlightRecorder(0)
	real.Consider(FlightRecord{Seq: 1, ErrClass: "exec"})
	if len(real.Snapshot()) != 0 {
		t.Fatal("nil-root record retained")
	}
}

func TestRecorderKeptCounters(t *testing.T) {
	r := NewRegistry(0)
	f := r.FlightRecorder()
	f.Consider(flightRec(1, "SQL", "exec", time.Millisecond))
	f.Consider(flightRec(2, "SQL", "", time.Millisecond))
	if got := r.Counter(MetricFlightConsidered).Value(); got != 2 {
		t.Fatalf("considered = %d, want 2", got)
	}
	kept := map[string]int64{}
	for _, s := range r.CounterVec(MetricFlightKept, LabelReason).Snapshot() {
		kept[s.Label] = s.Value
	}
	if kept["error"] != 1 || kept["sample"] != 1 {
		t.Fatalf("kept counters = %v", kept)
	}
}
