package obs

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Flight recorder: tail-based span-tree retention. The old DM_TRACE ring kept
// the last 32 statements FIFO, so 32 fast statements evicted the one slow
// trace an operator needed. The recorder instead scores every completed
// statement and retains by interest: errors, busy rejections, and
// cancellations are always kept; statements slower than their class's moving
// p95 are kept; and a small reservoir sample of normal traffic is kept so the
// ring also shows what "healthy" looks like. Interesting records evict boring
// ones, never the other way round.

// DefaultFlightRecorderCap is the ring capacity. Span trees are the heaviest
// per-statement telemetry we hold, so the ring stays deliberately small; the
// point of tail-based retention is that a small ring is enough.
const DefaultFlightRecorderCap = 128

// defaultSampleCap is the number of ring slots reserved (at most) for the
// reservoir of normal traffic.
const defaultSampleCap = 8

const (
	// flightMinSamples is how many observations a class needs before its
	// moving p95 is trusted as a slowness threshold.
	flightMinSamples = 32
	// flightDecayLimit bounds a class's histogram mass: when reached, every
	// bucket halves, so the p95 tracks load shifts instead of all history.
	flightDecayLimit = 1024
	// flightMaxClasses caps the per-class tracking map; further classes
	// collapse into OverflowLabel.
	flightMaxClasses = 32
	// flightHotWindow is how long detailed per-op sampling stays armed for a
	// class after a severe (>= 2x p95) outlier.
	flightHotWindow = 2 * time.Second
	// flightDetailEvery thins detailed sampling while a class is hot: one
	// statement in flightDetailEvery records per-operator detail.
	flightDetailEvery = 4
)

// KeepReason says why the recorder retained a statement.
type KeepReason string

const (
	KeepError     KeepReason = "error"
	KeepBusy      KeepReason = "busy"
	KeepCancelled KeepReason = "cancelled"
	KeepSlow      KeepReason = "slow"
	KeepSample    KeepReason = "sample"
)

// keepPriority orders retention classes for eviction: higher-priority records
// evict lower-priority ones; ties evict oldest-first.
func keepPriority(r KeepReason) int {
	switch r {
	case KeepSample:
		return 0
	case KeepBusy:
		return 1
	default: // error, cancelled, slow
		return 2
	}
}

// FlightRecord is one retained statement, surfaced through the
// $SYSTEM.DM_FLIGHT_RECORDER schema rowset and /debug/flightrecorder. Seq is
// the statement's query-log sequence number, so records join DM_QUERY_LOG
// rows and match the seq clients see in the wire stats trailer.
type FlightRecord struct {
	Seq       int64
	Start     time.Time
	Statement string
	Kind      string
	Origin    string
	ErrClass  string
	Elapsed   time.Duration
	// Reason is why the record was kept.
	Reason KeepReason
	// ThresholdUS is the class p95 (µs) the statement was judged against at
	// completion; 0 while the class was still warming up.
	ThresholdUS int64
	// Root is the completed, immutable span tree.
	Root *Span
}

// classTrack is the recorder's per-statement-class moving latency envelope: a
// decaying log2 histogram for the p95 threshold plus the hot-window state
// that arms detailed sampling. Guarded by the owning recorder's mu.
type classTrack struct {
	seen       int64
	buckets    [histBuckets]int64
	hotUntil   time.Time
	detailTick int64
}

func (ct *classTrack) observeLocked(us int64) {
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	ct.buckets[i]++
	ct.seen++
	if ct.seen >= flightDecayLimit {
		var kept int64
		for i := range ct.buckets {
			ct.buckets[i] /= 2
			kept += ct.buckets[i]
		}
		ct.seen = kept
	}
}

// p95Locked returns the class's current slowness threshold in µs: the upper
// bound of the log2 bucket holding the p95 rank. Using the bucket's upper
// edge (not an interpolated mid-bucket value) means "slow" requires escaping
// the latency regime 95% of traffic lives in — uniform traffic is never
// flagged against itself. Returns 0 while the class has fewer than
// flightMinSamples observations (threshold not yet trusted).
func (ct *classTrack) p95Locked() int64 {
	if ct.seen < flightMinSamples {
		return 0
	}
	target := (ct.seen*95 + 99) / 100 // ceil(0.95 * seen)
	var cum int64
	for i, n := range ct.buckets {
		cum += n
		if cum >= target {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(histBuckets - 1)
}

type flightEntry struct {
	rec  FlightRecord
	prio int
}

// FlightRecorder scores completed statements into a prioritized ring.
// All methods are safe on a nil receiver.
//
//dmlint:guard mu: FlightRecorder.records, FlightRecorder.classes, FlightRecorder.normalSeen, FlightRecorder.sampleCount, FlightRecorder.rng
type FlightRecorder struct {
	mu          sync.Mutex
	records     []flightEntry
	cap         int
	sampleCap   int
	classes     map[string]*classTrack
	normalSeen  int64
	sampleCount int
	// rng drives reservoir sampling; seeded deterministically so tests and
	// repeated runs are reproducible.
	rng *rand.Rand

	// considered / kept are wired by NewRegistry; nil (no-op) on a detached
	// recorder.
	considered *Counter
	kept       *CounterVec
}

// NewFlightRecorder creates a recorder whose ring keeps capacity records
// (DefaultFlightRecorderCap when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderCap
	}
	sc := defaultSampleCap
	if sc > capacity {
		sc = capacity
	}
	return &FlightRecorder{
		cap:       capacity,
		sampleCap: sc,
		classes:   make(map[string]*classTrack),
		rng:       rand.New(rand.NewSource(1)),
	}
}

// Cap returns the ring capacity (0 on nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return f.cap
}

func (f *FlightRecorder) classLocked(kind string) *classTrack {
	if kind == "" {
		kind = OverflowLabel
	}
	ct := f.classes[kind]
	if ct == nil {
		if len(f.classes) >= flightMaxClasses && kind != OverflowLabel {
			return f.classLocked(OverflowLabel)
		}
		ct = &classTrack{}
		f.classes[kind] = ct
	}
	return ct
}

// Consider scores one completed statement and retains it if interesting.
// Records with a nil Root are dropped. Safe on a nil recorder.
func (f *FlightRecorder) Consider(rec FlightRecord) {
	if f == nil || rec.Root == nil {
		return
	}
	if len(rec.Statement) > maxStatementLen {
		rec.Statement = rec.Statement[:maxStatementLen]
	}
	f.considered.Inc()
	us := rec.Elapsed.Microseconds()

	f.mu.Lock()
	defer f.mu.Unlock()
	ct := f.classLocked(rec.Kind)
	// Record-then-decide: the threshold is the envelope of *prior* traffic,
	// then this statement's latency joins the envelope for the next one.
	threshold := ct.p95Locked()
	ct.observeLocked(us)

	var reason KeepReason
	switch rec.ErrClass {
	case "":
		if threshold > 0 && us >= threshold {
			reason = KeepSlow
			if us >= 2*threshold {
				ct.hotUntil = time.Now().Add(flightHotWindow)
			}
		} else {
			// Normal, fast statement: reservoir-sample it.
			f.normalSeen++
			if f.sampleCount >= f.sampleCap {
				if f.rng.Int63n(f.normalSeen) >= int64(f.sampleCap) {
					return
				}
				rec.Reason = KeepSample
				rec.ThresholdUS = threshold
				f.replaceRandomSampleLocked(rec)
				f.kept.With(string(KeepSample)).Inc()
				return
			}
			reason = KeepSample
		}
	case "busy":
		reason = KeepBusy
	case "cancelled":
		reason = KeepCancelled
	default:
		reason = KeepError
	}
	rec.Reason = reason
	rec.ThresholdUS = threshold
	f.insertLocked(flightEntry{rec: rec, prio: keepPriority(reason)})
	f.kept.With(string(reason)).Inc()
}

// insertLocked places an entry in the ring, evicting the lowest-priority,
// oldest record when full. A new entry that would have to evict a
// higher-priority one is dropped instead.
func (f *FlightRecorder) insertLocked(e flightEntry) {
	if len(f.records) < f.cap {
		f.records = append(f.records, e)
		if e.prio == 0 {
			f.sampleCount++
		}
		return
	}
	vi := 0
	for i := 1; i < len(f.records); i++ {
		v, c := f.records[vi], f.records[i]
		if c.prio < v.prio || (c.prio == v.prio && c.rec.Seq < v.rec.Seq) {
			vi = i
		}
	}
	if f.records[vi].prio > e.prio {
		return
	}
	if f.records[vi].prio == 0 {
		f.sampleCount--
	}
	if e.prio == 0 {
		f.sampleCount++
	}
	f.records[vi] = e
}

// replaceRandomSampleLocked swaps a uniformly-chosen reservoir slot for rec,
// completing the reservoir-sampling step. No-op if no sample slots exist.
func (f *FlightRecorder) replaceRandomSampleLocked(rec FlightRecord) {
	n := f.rng.Intn(f.sampleCount)
	for i := range f.records {
		if f.records[i].prio != 0 {
			continue
		}
		if n == 0 {
			f.records[i] = flightEntry{rec: rec, prio: 0}
			return
		}
		n--
	}
}

// ShouldDetail reports whether a statement of the given class should record
// detailed per-operator timing: true (thinned to one in flightDetailEvery)
// while the class is hot — i.e. within flightHotWindow of a >= 2x-p95
// outlier. Safe on a nil recorder (false).
func (f *FlightRecorder) ShouldDetail(class string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if class == "" {
		class = OverflowLabel
	}
	ct := f.classes[class]
	if ct == nil || time.Now().After(ct.hotUntil) {
		return false
	}
	ct.detailTick++
	return ct.detailTick%flightDetailEvery == 1
}

// Snapshot returns the retained records sorted by Seq ascending. A nil
// recorder snapshots as empty.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]FlightRecord, 0, len(f.records))
	for _, e := range f.records {
		out = append(out, e.rec)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Find returns the retained record with the given query-log seq, if any.
// Safe on a nil recorder.
func (f *FlightRecorder) Find(seq int64) (FlightRecord, bool) {
	if f == nil {
		return FlightRecord{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range f.records {
		if e.rec.Seq == seq {
			return e.rec, true
		}
	}
	return FlightRecord{}, false
}
