package obs

import (
	"sync"
	"time"
)

// Metrics history: a bounded ring of periodic whole-registry snapshots so
// rates and deltas are computable from SQL ($SYSTEM.DM_METRICS_HISTORY)
// without an external scraper. A background ticker (see StartHistoryTicker)
// calls RecordHistory every interval; each snapshot flattens every counter,
// gauge, vec child, and histogram count/sum into (name, label, value) points.

// DefaultHistoryCap is the number of snapshots the history ring retains.
// At the default 5s interval that is ten minutes of lookback.
const DefaultHistoryCap = 120

// DefaultHistoryInterval is the snapshot period used when a server enables
// history without an explicit interval.
const DefaultHistoryInterval = 5 * time.Second

// HistoryPoint is one flattened metric sample inside a snapshot. Label is ""
// for scalar metrics; for vec children it is the child's label value; for
// histograms the Name carries a _count/_sum suffix.
type HistoryPoint struct {
	Name  string
	Label string
	Value int64
}

// HistorySnapshot is the full registry state at one instant, points sorted
// by (Name, Label).
type HistorySnapshot struct {
	TS     time.Time
	Points []HistoryPoint
}

// History is a bounded ring of snapshots.
//
//dmlint:guard mu: History.snaps, History.next, History.full
type History struct {
	mu    sync.Mutex
	snaps []HistorySnapshot
	next  int
	full  bool
}

// NewHistory creates a history ring holding cap snapshots (DefaultHistoryCap
// when cap <= 0).
func NewHistory(cap int) *History {
	if cap <= 0 {
		cap = DefaultHistoryCap
	}
	return &History{snaps: make([]HistorySnapshot, cap)}
}

// Cap returns the ring capacity (0 on nil).
func (h *History) Cap() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.snaps)
}

// Append stores one snapshot, evicting the oldest when full. Nil-safe.
func (h *History) Append(s HistorySnapshot) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.snaps[h.next] = s
	h.next++
	if h.next == len(h.snaps) {
		h.next = 0
		h.full = true
	}
	h.mu.Unlock()
}

// Snapshot returns retained snapshots oldest-first. Nil-safe.
func (h *History) Snapshot() []HistorySnapshot {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []HistorySnapshot
	if h.full {
		out = make([]HistorySnapshot, 0, len(h.snaps))
		out = append(out, h.snaps[h.next:]...)
		out = append(out, h.snaps[:h.next]...)
		return out
	}
	return append(out, h.snaps[:h.next]...)
}

// History returns the registry's snapshot ring (nil on a nil registry).
func (r *Registry) History() *History {
	if r == nil {
		return nil
	}
	return r.history
}

// RecordHistory takes one snapshot of every registered metric and appends it
// to the history ring, returning the snapshot. Scalar counters and gauges
// become single points; vec children become one point per label; histograms
// (scalar and vec) contribute <name>_count and <name>_sum points so rates of
// both volume and total time are derivable. Nil-safe.
func (r *Registry) RecordHistory(now time.Time) HistorySnapshot {
	if r == nil {
		return HistorySnapshot{}
	}
	s := HistorySnapshot{TS: now}
	for _, c := range r.Counters() {
		s.Points = append(s.Points, HistoryPoint{Name: c.Name, Value: c.Value})
	}
	for _, g := range r.Gauges() {
		s.Points = append(s.Points, HistoryPoint{Name: g.Name, Value: g.Value})
	}
	for _, h := range r.Histograms() {
		s.Points = append(s.Points,
			HistoryPoint{Name: h.Name + "_count", Value: h.Snap.Count},
			HistoryPoint{Name: h.Name + "_sum", Value: h.Snap.Sum})
	}
	for _, v := range r.CounterVecs() {
		for _, child := range v.Snapshot() {
			s.Points = append(s.Points, HistoryPoint{Name: v.Name(), Label: child.Label, Value: child.Value})
		}
	}
	for _, v := range r.HistogramVecs() {
		for _, child := range v.Snapshot() {
			s.Points = append(s.Points,
				HistoryPoint{Name: v.Name() + "_count", Label: child.Label, Value: child.Hist.Count},
				HistoryPoint{Name: v.Name() + "_sum", Label: child.Label, Value: child.Hist.Sum})
		}
	}
	// Counters()/Gauges()/Histograms()/*Vecs() each return name-sorted slices
	// and vec snapshots are label-sorted, so Points is grouped and ordered
	// without a second sort.
	r.history.Append(s)
	r.Counter(MetricHistorySnapshots).Inc()
	return s
}

// StartHistoryTicker snapshots the registry every interval
// (DefaultHistoryInterval when interval <= 0) on a background goroutine
// until the returned stop function is called. stop is idempotent and safe
// to call concurrently. On a nil registry the ticker is a no-op.
func (r *Registry) StartHistoryTicker(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				r.RecordHistory(now)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
