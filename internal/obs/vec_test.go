package obs

import "testing"

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry(0)
	v := r.CounterVec("test_by_class_total", "class")
	v.With("PREDICT").Add(3)
	v.With("SQL").Inc()
	v.With("PREDICT").Inc()
	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d labels, want 2", len(snap))
	}
	if snap[0].Label != "PREDICT" || snap[0].Value != 4 {
		t.Fatalf("snap[0] = %+v, want PREDICT=4", snap[0])
	}
	if snap[1].Label != "SQL" || snap[1].Value != 1 {
		t.Fatalf("snap[1] = %+v, want SQL=1", snap[1])
	}
	if v.Name() != "test_by_class_total" || v.Key() != "class" {
		t.Fatalf("name/key = %q/%q", v.Name(), v.Key())
	}
	// Same name resolves to the same vec; the key is fixed at creation.
	if r.CounterVec("test_by_class_total", "other") != v {
		t.Fatal("second CounterVec call returned a different vec")
	}
	if v.Key() != "class" {
		t.Fatalf("key changed to %q", v.Key())
	}
}

func TestCounterVecCardinalityCap(t *testing.T) {
	r := NewRegistry(0)
	v := r.CounterVec("test_capped_total", "label")
	for i := 0; i < DefaultVecMaxLabels+10; i++ {
		v.With(string(rune('a' + i))).Inc()
	}
	snap := v.Snapshot()
	if len(snap) != DefaultVecMaxLabels+1 {
		t.Fatalf("vec grew to %d labels, want cap %d + overflow", len(snap), DefaultVecMaxLabels)
	}
	var overflow int64
	for _, s := range snap {
		if s.Label == OverflowLabel {
			overflow = s.Value
		}
	}
	if overflow != 10 {
		t.Fatalf("overflow bucket = %d, want 10", overflow)
	}
	// The overflow bucket stays reachable even at the cap.
	v.With("zzz").Inc()
	if got := v.With(OverflowLabel).Value(); got != 11 {
		t.Fatalf("overflow after one more = %d, want 11", got)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry(0)
	v := r.HistogramVec("test_latency_us", "class")
	v.With("PREDICT").Observe(100)
	v.With("PREDICT").Observe(200)
	v.With("SQL").Observe(50)
	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d labels, want 2", len(snap))
	}
	if snap[0].Label != "PREDICT" || snap[0].Hist.Count != 2 || snap[0].Hist.Sum != 300 {
		t.Fatalf("PREDICT series = %+v", snap[0])
	}
	if snap[1].Label != "SQL" || snap[1].Hist.Count != 1 {
		t.Fatalf("SQL series = %+v", snap[1])
	}
}

func TestNilVecsSafe(t *testing.T) {
	var cv *CounterVec
	cv.With("x").Inc()
	if cv.Snapshot() != nil || cv.Name() != "" || cv.Key() != "" {
		t.Fatal("nil CounterVec misbehaves")
	}
	var hv *HistogramVec
	hv.With("x").Observe(1)
	if hv.Snapshot() != nil || hv.Name() != "" || hv.Key() != "" {
		t.Fatal("nil HistogramVec misbehaves")
	}
	var r *Registry
	if r.CounterVec("a", "b") != nil || r.HistogramVec("a", "b") != nil {
		t.Fatal("nil registry handed out a vec")
	}
	if r.CounterVecs() != nil || r.HistogramVecs() != nil {
		t.Fatal("nil registry listed vecs")
	}
}
