package obs

import (
	"fmt"
	"io"
	"runtime"
	"strings"
)

// NormalizeMetricName maps an arbitrary string onto the Prometheus metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*: invalid bytes become '_' and a
// leading digit gets a '_' prefix. Catalog names (names.go) are already
// valid; this guards names that arrive from outside the catalog, e.g. via
// tests or future dynamic registration.
func NormalizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		switch {
		case ok:
			b.WriteByte(c)
		case c >= '0' && c <= '9': // leading digit
			b.WriteByte('_')
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// EscapeLabelValue escapes a label value per the text exposition format:
// backslash, double quote, and line feed must be escaped inside the quoted
// value.
func EscapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: only backslash and line feed are special
// there (quotes are not).
func escapeHelp(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// writeHeader emits the optional # HELP line (from the names.go catalog) and
// the # TYPE line for one metric family.
func writeHeader(w io.Writer, name, typ string) error {
	if help := Help(name); help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): every counter as a counter metric, every registry
// gauge as a gauge, every log2 histogram as a cumulative-bucket histogram
// (the non-cumulative bucket counts in a HistSnapshot are summed into
// le-bounded buckets plus +Inf, as the format requires), every vec as a
// labeled family, the open-connection count as a gauge, and two process
// gauges (goroutines, heap in use) so a scrape answers "is the server
// healthy" without the wire protocol. Metric names are normalized to the
// format's charset and label values escaped per its quoting rules; HELP
// lines come from the names.go catalog. A nil registry renders only the
// process gauges. The output is deterministic (names and labels sorted) so
// tests can assert it.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, c := range r.Counters() {
		name := NormalizeMetricName(c.Name)
		if err := writeHeader(w, name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Value); err != nil {
			return err
		}
	}
	for _, v := range r.CounterVecs() {
		name := NormalizeMetricName(v.Name())
		key := NormalizeMetricName(v.Key())
		if err := writeHeader(w, name, "counter"); err != nil {
			return err
		}
		for _, s := range v.Snapshot() {
			if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", name, key, EscapeLabelValue(s.Label), s.Value); err != nil {
				return err
			}
		}
	}
	for _, g := range r.Gauges() {
		name := NormalizeMetricName(g.Name)
		if err := writeHeader(w, name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		if err := writeHistogram(w, NormalizeMetricName(h.Name), "", "", h.Snap); err != nil {
			return err
		}
	}
	for _, v := range r.HistogramVecs() {
		name := NormalizeMetricName(v.Name())
		key := NormalizeMetricName(v.Key())
		if err := writeHeader(w, name, "histogram"); err != nil {
			return err
		}
		for _, s := range v.Snapshot() {
			if err := writeHistogramSeries(w, name, key, s.Label, s.Hist); err != nil {
				return err
			}
		}
	}
	if conns := r.Connections(); conns != nil {
		if _, err := fmt.Fprintf(w, "# TYPE dm_connections_open gauge\ndm_connections_open %d\n", len(conns.Snapshot())); err != nil {
			return err
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if _, err := fmt.Fprintf(w, "# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE go_heap_inuse_bytes gauge\ngo_heap_inuse_bytes %d\n", ms.HeapInuse)
	return err
}

// writeHistogram renders one histogram family header plus its series; key
// may be "" for an unlabeled histogram.
func writeHistogram(w io.Writer, name, key, label string, s HistSnapshot) error {
	if err := writeHeader(w, name, "histogram"); err != nil {
		return err
	}
	return writeHistogramSeries(w, name, key, label, s)
}

// writeHistogramSeries renders one histogram series (cumulative le buckets,
// +Inf, sum, count), tagged with key="label" when key is non-empty.
func writeHistogramSeries(w io.Writer, name, key, label string, s HistSnapshot) error {
	extra := ""
	suffix := ""
	if key != "" {
		extra = fmt.Sprintf("%s=\"%s\",", key, EscapeLabelValue(label))
		suffix = fmt.Sprintf("{%s=\"%s\"}", key, EscapeLabelValue(label))
	}
	cum := int64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", name, extra, b.UpperBound, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, suffix, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
	return err
}
