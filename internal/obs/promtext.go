package obs

import (
	"fmt"
	"io"
	"runtime"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): every counter as a counter metric, every registry
// gauge as a gauge, every log2
// histogram as a cumulative-bucket histogram (the non-cumulative bucket
// counts in a HistSnapshot are summed into le-bounded buckets plus +Inf, as
// the format requires), the open-connection count as a gauge, and two process
// gauges (goroutines, heap in use) so a scrape answers "is the server
// healthy" without the wire protocol. A nil registry renders only the process
// gauges. The output is deterministic (names sorted) so tests can assert it.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, c := range r.Counters() {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range r.Gauges() {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.Name, g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range r.Histograms() {
		if err := writeHistogram(w, h.Name, h.Snap); err != nil {
			return err
		}
	}
	if conns := r.Connections(); conns != nil {
		if _, err := fmt.Fprintf(w, "# TYPE dm_connections_open gauge\ndm_connections_open %d\n", len(conns.Snapshot())); err != nil {
			return err
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if _, err := fmt.Fprintf(w, "# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE go_heap_inuse_bytes gauge\ngo_heap_inuse_bytes %d\n", ms.HeapInuse)
	return err
}

// writeHistogram renders one histogram: cumulative le buckets, +Inf, sum,
// count.
func writeHistogram(w io.Writer, name string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := int64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}
