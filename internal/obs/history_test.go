package obs

import (
	"testing"
	"time"
)

func TestHistoryRingWraps(t *testing.T) {
	h := NewHistory(3)
	for i := 1; i <= 5; i++ {
		h.Append(HistorySnapshot{TS: time.Unix(int64(i), 0)})
	}
	snap := h.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d snapshots, want 3", len(snap))
	}
	for i, want := range []int64{3, 4, 5} {
		if snap[i].TS.Unix() != want {
			t.Fatalf("snap[%d].TS = %d, want %d (oldest first)", i, snap[i].TS.Unix(), want)
		}
	}
	var nilH *History
	nilH.Append(HistorySnapshot{})
	if nilH.Snapshot() != nil || nilH.Cap() != 0 {
		t.Fatal("nil History misbehaves")
	}
}

func TestRecordHistoryFlattensRegistry(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("test_total").Add(7)
	r.Gauge("test_gauge").Set(3)
	r.Histogram("test_us").Observe(100)
	r.CounterVec("test_by_class_total", LabelClass).With("PREDICT").Add(2)
	r.HistogramVec("test_lat_by_class_us", LabelClass).With("SQL").Observe(40)

	now := time.Unix(1000, 0)
	s := r.RecordHistory(now)
	if !s.TS.Equal(now) {
		t.Fatalf("TS = %v, want %v", s.TS, now)
	}
	points := map[string]int64{}
	for _, p := range s.Points {
		points[p.Name+"|"+p.Label] = p.Value
	}
	for key, want := range map[string]int64{
		"test_total|":                    7,
		"test_gauge|":                    3,
		"test_us_count|":                 1,
		"test_us_sum|":                   100,
		"test_by_class_total|PREDICT":    2,
		"test_lat_by_class_us_count|SQL": 1,
		"test_lat_by_class_us_sum|SQL":   40,
		MetricHistorySnapshots + "|":     0, // counted before this snapshot's increment
		MetricFlightConsidered + "|":     0,
	} {
		got, ok := points[key]
		if !ok {
			t.Fatalf("snapshot missing point %q (have %v)", key, points)
		}
		if got != want {
			t.Fatalf("point %q = %d, want %d", key, got, want)
		}
	}
	if got := len(r.History().Snapshot()); got != 1 {
		t.Fatalf("history holds %d snapshots, want 1", got)
	}
	if r.Counter(MetricHistorySnapshots).Value() != 1 {
		t.Fatal("snapshot counter not incremented")
	}

	// Nil registry: everything no-ops.
	var nilReg *Registry
	if nilReg.History() != nil {
		t.Fatal("nil registry returned a history")
	}
	if got := nilReg.RecordHistory(now); len(got.Points) != 0 {
		t.Fatal("nil registry recorded points")
	}
}

func TestStartHistoryTicker(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("test_total").Inc()
	stop := r.StartHistoryTicker(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for len(r.History().Snapshot()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ticker took no snapshots within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	n := len(r.History().Snapshot())
	time.Sleep(25 * time.Millisecond)
	if got := len(r.History().Snapshot()); got > n+1 {
		t.Fatalf("ticker kept running after stop: %d -> %d snapshots", n, got)
	}
	// Nil registry returns a callable stop.
	var nilReg *Registry
	nilReg.StartHistoryTicker(time.Millisecond)()
}
