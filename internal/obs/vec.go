package obs

import (
	"sort"
	"sync"
)

// Dimensional metrics: a Vec is a family of counters or histograms keyed by
// exactly one label. Cardinality is bounded — once a vec holds
// DefaultVecMaxLabels distinct children, further labels collapse into the
// OverflowLabel bucket — so a client sending adversarial origins or model
// names cannot grow server memory or the /metrics payload without bound.

// OverflowLabel is the bucket that absorbs label values beyond a vec's
// cardinality cap.
const OverflowLabel = "__other__"

// DefaultVecMaxLabels is the per-vec cap on distinct label values.
const DefaultVecMaxLabels = 16

// CounterVec is a family of counters keyed by one label.
// All methods are safe on a nil receiver.
type CounterVec struct {
	name string
	key  string
	max  int

	mu       sync.RWMutex
	children map[string]*Counter
}

// HistogramVec is a family of histograms keyed by one label.
// All methods are safe on a nil receiver.
type HistogramVec struct {
	name string
	key  string
	max  int

	mu       sync.RWMutex
	children map[string]*Histogram
}

// Name returns the vec's metric name ("" on nil).
func (v *CounterVec) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// Key returns the vec's label key ("" on nil).
func (v *CounterVec) Key() string {
	if v == nil {
		return ""
	}
	return v.key
}

// With returns the counter for label, creating it if the cardinality cap
// allows and otherwise returning the OverflowLabel bucket. Nil-safe: a nil
// vec returns a nil *Counter, whose methods are themselves nil-safe.
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.children[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[label]; c != nil {
		return c
	}
	if len(v.children) >= v.max && label != OverflowLabel {
		label = OverflowLabel
		if c := v.children[label]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.children[label] = c
	return c
}

// VecSample is one (label, value) pair from a counter vec snapshot.
type VecSample struct {
	Label string
	Value int64
}

// Snapshot returns the vec's children sorted by label. Nil-safe.
func (v *CounterVec) Snapshot() []VecSample {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := make([]VecSample, 0, len(v.children))
	for label, c := range v.children {
		out = append(out, VecSample{Label: label, Value: c.Value()})
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Name returns the vec's metric name ("" on nil).
func (v *HistogramVec) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// Key returns the vec's label key ("" on nil).
func (v *HistogramVec) Key() string {
	if v == nil {
		return ""
	}
	return v.key
}

// With returns the histogram for label, creating it if the cardinality cap
// allows and otherwise returning the OverflowLabel bucket. Nil-safe.
func (v *HistogramVec) With(label string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.children[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[label]; h != nil {
		return h
	}
	if len(v.children) >= v.max && label != OverflowLabel {
		label = OverflowLabel
		if h := v.children[label]; h != nil {
			return h
		}
	}
	h = &Histogram{}
	v.children[label] = h
	return h
}

// VecHistSample is one (label, histogram) pair from a histogram vec snapshot.
type VecHistSample struct {
	Label string
	Hist  HistSnapshot
}

// Snapshot returns the vec's children sorted by label. Nil-safe.
func (v *HistogramVec) Snapshot() []VecHistSample {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := make([]VecHistSample, 0, len(v.children))
	for label, h := range v.children {
		out = append(out, VecHistSample{Label: label, Hist: h.Snapshot()})
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
