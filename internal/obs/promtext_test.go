package obs

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// validPromName reports whether s matches the exposition format's metric
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':',
			c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parsePromLabels validates and consumes a `key="value",...}` label body,
// enforcing the format's escaping rules (only \\, \", and \n are legal
// escapes inside a quoted value; raw newlines and quotes are not).
func parsePromLabels(t *testing.T, line, body string) {
	t.Helper()
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || !validPromName(body[:eq]) {
			t.Fatalf("bad label name in %q", line)
		}
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			t.Fatalf("unquoted label value in %q", line)
		}
		body = body[1:]
		for {
			if body == "" {
				t.Fatalf("unterminated label value in %q", line)
			}
			c := body[0]
			if c == '"' {
				body = body[1:]
				break
			}
			if c == '\\' {
				if len(body) < 2 || (body[1] != '\\' && body[1] != '"' && body[1] != 'n') {
					t.Fatalf("illegal escape in %q", line)
				}
				body = body[2:]
				continue
			}
			body = body[1:]
		}
		switch {
		case body == "" || body == "}":
			return
		case body[0] == ',':
			body = body[1:]
		default:
			t.Fatalf("junk after label value in %q", line)
		}
	}
}

// parsePromText is an exposition-format (0.0.4) conformance parser: every
// line must be a well-formed # HELP/# TYPE comment or a
// "name[{labels}] value" sample with a valid metric name, legally escaped
// label values, and a numeric value. It fails the test on any malformed
// line, which is the "parseable Prometheus text" acceptance check.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Fatalf("malformed comment line %q", line)
			}
			if !validPromName(fields[2]) {
				t.Fatalf("invalid metric name in comment %q", line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					t.Fatalf("malformed TYPE line %q", line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("unknown metric type in %q", line)
				}
			}
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:idx], line[idx+1:]
		if brace := strings.IndexByte(name, '{'); brace >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			parsePromLabels(t, line, name[brace+1:])
			if !validPromName(name[:brace]) {
				t.Fatalf("invalid metric name in %q", line)
			}
		} else if !validPromName(name) {
			t.Fatalf("invalid metric name in %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		samples[name] = f
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("provider_statements_total").Add(7)
	h := r.Histogram("provider_statement_latency_us")
	h.Observe(10)
	h.Observe(10)
	h.Observe(1000)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())

	if samples["provider_statements_total"] != 7 {
		t.Fatalf("counter = %v, want 7", samples["provider_statements_total"])
	}
	if samples["provider_statement_latency_us_count"] != 3 {
		t.Fatalf("histogram count = %v", samples["provider_statement_latency_us_count"])
	}
	if samples["provider_statement_latency_us_sum"] != 1020 {
		t.Fatalf("histogram sum = %v", samples["provider_statement_latency_us_sum"])
	}
	if samples[`provider_statement_latency_us_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", samples[`provider_statement_latency_us_bucket{le="+Inf"}`])
	}
	// Buckets must be cumulative: the le="15" bucket holds both 10s.
	if samples[`provider_statement_latency_us_bucket{le="15"}`] != 2 {
		t.Fatalf("le=15 bucket = %v, want 2 (cumulative)", samples[`provider_statement_latency_us_bucket{le="15"}`])
	}
	if samples["go_goroutines"] <= 0 {
		t.Fatalf("go_goroutines = %v", samples["go_goroutines"])
	}
	if samples["go_heap_inuse_bytes"] <= 0 {
		t.Fatalf("go_heap_inuse_bytes = %v", samples["go_heap_inuse_bytes"])
	}
	if _, ok := samples["dm_connections_open"]; !ok {
		t.Fatal("dm_connections_open gauge missing")
	}
}

// TestWritePrometheusEscaping drives hostile names and label values through
// the writer and asserts the output still conforms: invalid name bytes are
// normalized, and backslashes, quotes, and newlines in label values are
// escaped per the format.
func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("bad name-1.total").Add(1)
	r.Counter("0starts_with_digit").Add(2)
	v := r.CounterVec("labeled_total", "origin")
	v.With(`back\slash`).Add(1)
	v.With(`quo"te`).Add(2)
	v.With("new\nline").Add(3)
	hv := r.HistogramVec("labeled_us", "origin")
	hv.With(`evil"\value` + "\n").Observe(10)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := parsePromText(t, out)

	if samples["bad_name_1_total"] != 1 {
		t.Fatalf("normalized counter missing: %v", samples)
	}
	if samples["_0starts_with_digit"] != 2 {
		t.Fatalf("digit-led name not prefixed: %v", samples)
	}
	for _, want := range []string{
		`labeled_total{origin="back\\slash"} 1`,
		`labeled_total{origin="quo\"te"} 2`,
		`labeled_total{origin="new\nline"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "new\nline") {
		t.Fatal("raw newline leaked into a label value")
	}
	if samples[`labeled_us_count{origin="evil\"\\value\n"}`] != 1 {
		t.Fatalf("escaped histogram vec series missing: %v", samples)
	}
}

// TestWritePrometheusHelpAndVecs: catalog metrics carry HELP lines, and vec
// families render one labeled series per child under a single TYPE header.
func TestWritePrometheusHelpAndVecs(t *testing.T) {
	r := NewRegistry(0)
	r.CounterVec(MetricStatementsByClass, LabelClass).With("PREDICT").Add(5)
	r.CounterVec(MetricStatementsByClass, LabelClass).With("SQL").Add(2)
	r.HistogramVec(MetricLatencyByClass, LabelClass).With("PREDICT").Observe(100)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	samples := parsePromText(t, out)

	if !strings.Contains(out, "# HELP "+MetricStatementsByClass+" ") {
		t.Fatalf("HELP line missing for %s:\n%s", MetricStatementsByClass, out)
	}
	if n := strings.Count(out, "# TYPE "+MetricStatementsByClass+" counter"); n != 1 {
		t.Fatalf("vec family has %d TYPE headers, want 1", n)
	}
	if samples[MetricStatementsByClass+`{class="PREDICT"}`] != 5 {
		t.Fatalf("labeled counter sample missing: %v", samples)
	}
	if samples[MetricStatementsByClass+`{class="SQL"}`] != 2 {
		t.Fatalf("labeled counter sample missing: %v", samples)
	}
	if samples[MetricLatencyByClass+`_count{class="PREDICT"}`] != 1 {
		t.Fatalf("labeled histogram count missing: %v", samples)
	}
	if samples[MetricLatencyByClass+`_bucket{class="PREDICT",le="+Inf"}`] != 1 {
		t.Fatalf("labeled +Inf bucket missing: %v", samples)
	}
}

func TestNormalizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name:total": "ok_name:total",
		"bad name":      "bad_name",
		"9lives":        "_9lives",
		"":              "_",
		"a.b-c/d":       "a_b_c_d",
	} {
		if got := NormalizeMetricName(in); got != want {
			t.Fatalf("NormalizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusCumulativeMonotone(t *testing.T) {
	r := NewRegistry(0)
	h := r.Histogram("h")
	for i := int64(1); i < 5000; i *= 3 {
		h.Observe(i)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "h_bucket{") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%f", &v); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())
	if samples["go_goroutines"] <= 0 {
		t.Fatal("nil registry should still expose process gauges")
	}
}
