package obs

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// parsePromText is a minimal exposition-format parser: it checks every line
// is a comment or "name[{labels}] value" with a numeric value, and returns
// the samples. It fails the test on any malformed line, which is the
// "parseable Prometheus text" acceptance check.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:idx], line[idx+1:]
		if name == "" || strings.ContainsAny(name, " \t") && !strings.Contains(name, "{") {
			t.Fatalf("malformed metric name in %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		samples[name] = f
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("provider_statements_total").Add(7)
	h := r.Histogram("provider_statement_latency_us")
	h.Observe(10)
	h.Observe(10)
	h.Observe(1000)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())

	if samples["provider_statements_total"] != 7 {
		t.Fatalf("counter = %v, want 7", samples["provider_statements_total"])
	}
	if samples["provider_statement_latency_us_count"] != 3 {
		t.Fatalf("histogram count = %v", samples["provider_statement_latency_us_count"])
	}
	if samples["provider_statement_latency_us_sum"] != 1020 {
		t.Fatalf("histogram sum = %v", samples["provider_statement_latency_us_sum"])
	}
	if samples[`provider_statement_latency_us_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket = %v, want 3", samples[`provider_statement_latency_us_bucket{le="+Inf"}`])
	}
	// Buckets must be cumulative: the le="15" bucket holds both 10s.
	if samples[`provider_statement_latency_us_bucket{le="15"}`] != 2 {
		t.Fatalf("le=15 bucket = %v, want 2 (cumulative)", samples[`provider_statement_latency_us_bucket{le="15"}`])
	}
	if samples["go_goroutines"] <= 0 {
		t.Fatalf("go_goroutines = %v", samples["go_goroutines"])
	}
	if samples["go_heap_inuse_bytes"] <= 0 {
		t.Fatalf("go_heap_inuse_bytes = %v", samples["go_heap_inuse_bytes"])
	}
	if _, ok := samples["dm_connections_open"]; !ok {
		t.Fatal("dm_connections_open gauge missing")
	}
}

func TestWritePrometheusCumulativeMonotone(t *testing.T) {
	r := NewRegistry(0)
	h := r.Histogram("h")
	for i := int64(1); i < 5000; i *= 3 {
		h.Observe(i)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "h_bucket{") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%f", &v); err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, b.String())
	if samples["go_goroutines"] <= 0 {
		t.Fatal("nil registry should still expose process gauges")
	}
}
