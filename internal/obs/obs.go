// Package obs is the provider's observability substrate: monotonic counters,
// log-scaled latency histograms, a bounded ring-buffer query log, and a
// per-connection tracker. It exists so the provider can apply the paper's own
// core move — "a provider describes information about itself to potential
// consumers" through schema rowsets — to its runtime state: everything
// collected here is surfaced as the $SYSTEM.DM_QUERY_LOG,
// $SYSTEM.DM_PROVIDER_METRICS, and $SYSTEM.DM_CONNECTIONS rowsets and is
// therefore queryable with plain SELECT statements.
//
// The package is allocation-light by design: counters and histogram buckets
// are atomics, hot-path handles are resolved once and cached by the caller,
// and every method is nil-receiver safe so an uninstrumented provider pays a
// single pointer test per call site.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so callers can hold a
// Counter handle unconditionally and skip the "is observability on?" branch.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a level that can go up and down — queue depths, in-flight
// statement counts. Like Counter, every method is safe for concurrent use
// and a no-op on a nil receiver, so an uninstrumented provider pays one
// pointer test per call site.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log-scaled histogram buckets. Bucket i counts
// observations whose value has bit length i: bucket 0 holds v == 0, bucket i
// holds v in [2^(i-1), 2^i). 40 buckets cover microsecond latencies up to
// ~2^39 µs (≈ 6 days), far beyond any statement we serve.
const histBuckets = 40

// Histogram is a log2-bucketed histogram of non-negative int64 observations
// (the provider observes microseconds). Buckets double in width, so the full
// latency range fits in a fixed, allocation-free array of atomics.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// BucketUpperBound returns the inclusive upper bound of bucket i (0 for
// bucket 0; 2^i - 1 otherwise).
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// HistBucket is one non-empty histogram bucket in a snapshot.
type HistBucket struct {
	// UpperBound is the inclusive upper bound of the bucket's value range.
	UpperBound int64
	// Count is the number of observations that fell in the bucket.
	Count int64
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []HistBucket // non-empty buckets, ascending by bound
}

// Snapshot copies the histogram's current state. Buckets with zero count are
// omitted. A nil histogram snapshots as empty.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperBound: BucketUpperBound(i), Count: n})
		}
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed values
// from the log2 buckets, interpolating linearly within the bucket that holds
// the target rank. Bucket i spans [2^(i-1), 2^i - 1] (bucket 0 holds only 0),
// so the estimate is exact for bucket 0 and off by at most half the bucket
// width elsewhere — plenty for p50/p95/p99 health readouts. Returns 0 for an
// empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for _, b := range s.Buckets {
		prev := cum
		cum += float64(b.Count)
		if cum < rank {
			continue
		}
		lo := (b.UpperBound + 1) / 2 // bucket lower bound: 2^(i-1), or 0
		frac := (rank - prev) / float64(b.Count)
		return lo + int64(frac*float64(b.UpperBound-lo))
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// DefaultQueryLogCap is the query-log ring capacity used when a registry is
// created without an explicit bound.
const DefaultQueryLogCap = 256

// Registry is the root of one provider instance's observability state: named
// counters and histograms, the query log, and the connection tracker. The
// name tables are locked; the metric values themselves are atomics, so the
// lock is touched only when a handle is first resolved — callers cache
// handles and the hot path never sees it.
//
// Registry methods are safe on a nil receiver: a nil registry hands out nil
// handles, whose methods are no-ops, which is how observability is disabled
// wholesale.
//
//dmlint:guard mu: Registry.counters, Registry.hists, Registry.gauges, Registry.counterVecs, Registry.histVecs, QueryLog.records, QueryLog.seq, ConnTracker.conns, ConnTracker.seq
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	hists       map[string]*Histogram
	gauges      map[string]*Gauge
	counterVecs map[string]*CounterVec
	histVecs    map[string]*HistogramVec

	log      *QueryLog
	recorder *FlightRecorder
	history  *History
	conns    *ConnTracker
}

// NewRegistry creates a registry whose query log keeps the last logCap
// statements (DefaultQueryLogCap when logCap <= 0). The flight recorder
// behind $SYSTEM.DM_FLIGHT_RECORDER keeps DefaultFlightRecorderCap span
// trees; the metrics-history ring keeps DefaultHistoryCap snapshots.
func NewRegistry(logCap int) *Registry {
	r := &Registry{
		counters:    make(map[string]*Counter),
		hists:       make(map[string]*Histogram),
		gauges:      make(map[string]*Gauge),
		counterVecs: make(map[string]*CounterVec),
		histVecs:    make(map[string]*HistogramVec),
		log:         NewQueryLog(logCap),
		recorder:    NewFlightRecorder(0),
		history:     NewHistory(0),
		conns:       &ConnTracker{},
	}
	r.recorder.considered = r.Counter(MetricFlightConsidered)
	r.recorder.kept = r.CounterVec(MetricFlightKept, LabelReason)
	// Pre-register the history counter so the very first snapshot already
	// carries it (at zero) and successive snapshots show its delta.
	r.Counter(MetricHistorySnapshots)
	return r
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// QueryLog returns the registry's statement log (nil on a nil registry).
func (r *Registry) QueryLog() *QueryLog {
	if r == nil {
		return nil
	}
	return r.log
}

// CounterVec returns the named counter vec keyed by the given label key,
// creating it on first use. The key is fixed at creation; later calls with a
// different key return the existing vec unchanged. Returns nil (a no-op vec)
// on a nil registry.
func (r *Registry) CounterVec(name, key string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.counterVecs[name]; v != nil {
		return v
	}
	v = &CounterVec{name: name, key: key, max: DefaultVecMaxLabels, children: make(map[string]*Counter)}
	r.counterVecs[name] = v
	return v
}

// HistogramVec returns the named histogram vec keyed by the given label key,
// creating it on first use. Returns nil (a no-op vec) on a nil registry.
func (r *Registry) HistogramVec(name, key string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.histVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.histVecs[name]; v != nil {
		return v
	}
	v = &HistogramVec{name: name, key: key, max: DefaultVecMaxLabels, children: make(map[string]*Histogram)}
	r.histVecs[name] = v
	return v
}

// CounterVecs returns every registered counter vec, sorted by name.
func (r *Registry) CounterVecs() []*CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		out = append(out, v)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// HistogramVecs returns every registered histogram vec, sorted by name.
func (r *Registry) HistogramVecs() []*HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]*HistogramVec, 0, len(r.histVecs))
	for _, v := range r.histVecs {
		out = append(out, v)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// FlightRecorder returns the registry's tail-based trace retention ring (nil
// on a nil registry).
func (r *Registry) FlightRecorder() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.recorder
}

// Connections returns the registry's connection tracker (nil on a nil
// registry).
func (r *Registry) Connections() *ConnTracker {
	if r == nil {
		return nil
	}
	return r.conns
}

// NamedCounter pairs a counter name with its current value.
type NamedCounter struct {
	Name  string
	Value int64
}

// NamedHistogram pairs a histogram name with its snapshot.
type NamedHistogram struct {
	Name string
	Snap HistSnapshot
}

// Counters returns a sorted snapshot of every registered counter.
func (r *Registry) Counters() []NamedCounter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]NamedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, NamedCounter{Name: name, Value: c.Value()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Histograms returns a sorted snapshot of every registered histogram.
func (r *Registry) Histograms() []NamedHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]NamedHistogram, 0, len(r.hists))
	for name, h := range r.hists {
		out = append(out, NamedHistogram{Name: name, Snap: h.Snapshot()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedGauge pairs a gauge name with its current level.
type NamedGauge struct {
	Name  string
	Value int64
}

// Gauges returns a sorted snapshot of every registered gauge.
func (r *Registry) Gauges() []NamedGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]NamedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		out = append(out, NamedGauge{Name: name, Value: g.Value()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
