package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace("SELECT 1", "")
	outer := tr.StartSpan("caseset", "src")
	inner := tr.StartSpan("scan", "Customers")
	inner.SetRows(10)
	tr.EndSpan(inner)
	tr.EndSpan(outer)
	sib := tr.StartSpan("predict", "model=M")
	sib.SetRows(4)
	tr.EndSpan(sib)
	tr.SetRowsOut(4)
	tr.SetKind("PREDICT")
	rec := tr.Finish("")

	root := tr.Root()
	if root == nil || root.Kind != "statement" {
		t.Fatalf("root = %+v, want statement span", root)
	}
	if root.Label != "PREDICT" || root.Rows != 4 {
		t.Fatalf("root label/rows = %q/%d, want PREDICT/4", root.Label, root.Rows)
	}
	if root.Elapsed != rec.Elapsed {
		t.Fatalf("root elapsed %v != record elapsed %v", root.Elapsed, rec.Elapsed)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	if root.Children[0] != outer || root.Children[1] != sib {
		t.Fatalf("children out of order")
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Fatalf("nesting wrong: outer children %v", outer.Children)
	}
	if inner.Rows != 10 {
		t.Fatalf("inner rows = %d, want 10", inner.Rows)
	}
	if outer.Elapsed < inner.Elapsed {
		t.Fatalf("outer elapsed %v < inner elapsed %v", outer.Elapsed, inner.Elapsed)
	}
}

func TestSpanStageFeedsTraceTimers(t *testing.T) {
	tr := NewTrace("stmt", "")
	sp := tr.StartSpanStage(StageScan, "predict", "")
	time.Sleep(2 * time.Millisecond)
	tr.EndSpan(sp)
	rec := tr.Finish("")
	if rec.Stages[StageScan] != sp.Elapsed {
		t.Fatalf("scan stage %v != span elapsed %v", rec.Stages[StageScan], sp.Elapsed)
	}
	if rec.Stages[StageScan] <= 0 {
		t.Fatalf("scan stage not recorded")
	}
}

// TestEndSpanPopsAbandonedChildren: an error path that returns without
// closing inner spans must not corrupt the stack when a deferred EndSpan
// closes the outer span.
func TestEndSpanPopsAbandonedChildren(t *testing.T) {
	tr := NewTrace("stmt", "")
	outer := tr.StartSpan("train", "")
	tr.StartSpan("tokenize", "") // never ended: simulated early error return
	tr.EndSpan(outer)
	next := tr.StartSpan("scan", "")
	tr.EndSpan(next)
	root := tr.Root()
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (train, scan)", len(root.Children))
	}
	if root.Children[1] != next {
		t.Fatalf("span after defensive pop nested wrongly")
	}
}

func TestSpanWalkPreorder(t *testing.T) {
	root := NewSpan("statement", "SQL")
	sel := NewSpan("select", "")
	sel.Add(NewSpan("scan", "T")).Add(NewSpan("filter", ""))
	root.Add(sel)
	var kinds []string
	var depths []int
	root.Walk(func(sp *Span, depth int) {
		kinds = append(kinds, sp.Kind)
		depths = append(depths, depth)
	})
	if got, want := strings.Join(kinds, ","), "statement,select,scan,filter"; got != want {
		t.Fatalf("walk order %s, want %s", got, want)
	}
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 2 || depths[3] != 2 {
		t.Fatalf("depths = %v", depths)
	}
}

// TestNilTraceSpanZeroAlloc is the acceptance guarantee that uninstrumented
// paths allocate zero spans: the nil-trace StartSpan/EndSpan round trip must
// not allocate.
func TestNilTraceSpanZeroAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("scan", "T")
		sp.SetRows(1)
		tr.EndSpan(sp)
		sp2 := tr.StartSpanStage(StageScan, "predict", "")
		tr.EndSpan(sp2)
	})
	if allocs != 0 {
		t.Fatalf("nil-trace span round trip allocates %.1f objects, want 0", allocs)
	}
}

// BenchmarkNilTraceSpan documents the uninstrumented cost of a span site: a
// nil check and nothing else (run with -benchmem to see 0 allocs/op).
func BenchmarkNilTraceSpan(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("scan", "T")
		tr.EndSpan(sp)
	}
}

func TestRegistryFlightRecorder(t *testing.T) {
	r := NewRegistry(0)
	if r.FlightRecorder() == nil {
		t.Fatal("registry has no flight recorder")
	}
	if r.FlightRecorder().Cap() != DefaultFlightRecorderCap {
		t.Fatalf("recorder cap = %d, want %d", r.FlightRecorder().Cap(), DefaultFlightRecorderCap)
	}
	var nilReg *Registry
	if nilReg.FlightRecorder() != nil {
		t.Fatal("nil registry returned a flight recorder")
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of 10 (bucket [8,15]) and 100 of 1000 (bucket
	// [512,1023]).
	for i := 0; i < 100; i++ {
		h.Observe(10)
		h.Observe(1000)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 8 || p50 > 15 {
		t.Fatalf("p50 = %d, want within [8,15]", p50)
	}
	if p95 := s.Quantile(0.95); p95 < 512 || p95 > 1023 {
		t.Fatalf("p95 = %d, want within [512,1023]", p95)
	}
	if q := s.Quantile(1.0); q < 512 || q > 1023 {
		t.Fatalf("p100 = %d, want within [512,1023]", q)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile != 0")
	}
	var zero Histogram
	zero.Observe(0)
	if got := zero.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("all-zero histogram p99 = %d, want 0", got)
	}
}

// TestQuantileInterpolatesWithinBucket: with every observation in one bucket,
// the estimate moves monotonically across the bucket's range as q grows.
func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(600) // bucket [512,1023]
	}
	s := h.Snapshot()
	p10, p90 := s.Quantile(0.10), s.Quantile(0.90)
	if p10 >= p90 {
		t.Fatalf("interpolation not monotone: p10=%d p90=%d", p10, p90)
	}
	if p10 < 512 || p90 > 1023 {
		t.Fatalf("interpolated values escape the bucket: p10=%d p90=%d", p10, p90)
	}
}
