package obs

// This file is the project's metric-name catalog: every counter, gauge,
// histogram, and vec the provider registers is named by a constant declared
// here, and every Registry.Counter/Histogram/Gauge/CounterVec/HistogramVec
// call site in internal/ must pass one of these constants (enforced by the
// dmlint metricname analyzer). Centralizing the names kills two failure
// modes at once: a typo at one call site silently forking a metric into two
// series, and the documented name set (DESIGN.md, dashboards, promtext
// output) drifting away from what the code actually emits.

// Plain counter, gauge, and histogram names.
const (
	// Provider statement pipeline.
	MetricStatementsTotal   = "provider_statements_total"
	MetricErrorsTotal       = "provider_errors_total"
	MetricCancelledTotal    = "provider_cancelled_total"
	MetricRowsOutTotal      = "provider_rows_out_total"
	MetricStatementLatency  = "provider_statement_latency_us"
	MetricPreparedTotal     = "prepared_statements_total"
	MetricPreparedExecTotal = "prepared_exec_total"
	MetricPreparedReplans   = "prepared_replans_total"

	// Session admission control.
	MetricAdmissionInFlight   = "admission_inflight"
	MetricAdmissionQueueDepth = "admission_queue_depth"
	MetricAdmissionRejected   = "admission_rejected_total"

	// Plan cache.
	MetricPlanCacheHits          = "plan_cache_hits_total"
	MetricPlanCacheMisses        = "plan_cache_misses_total"
	MetricPlanCacheEvictions     = "plan_cache_evictions_total"
	MetricPlanCacheInvalidations = "plan_cache_invalidations_total"

	// SQL engine.
	MetricSQLStatementsTotal = "sql_statements_total"
	MetricSQLErrorsTotal     = "sql_errors_total"
	MetricSQLRowsOutTotal    = "sql_rows_out_total"

	// Vectorized / morsel-parallel execution.
	MetricSQLBatchesTotal       = "sql_batches_total"
	MetricSQLMorselsTotal       = "sql_morsels_total"
	MetricSQLParallelScansTotal = "sql_parallel_scans_total"

	// Flight recorder (registered by the registry itself; see NewRegistry).
	MetricFlightConsidered = "flight_recorder_considered_total"
	MetricFlightKept       = "flight_recorder_kept_total"

	// Metrics history ring.
	MetricHistorySnapshots = "metrics_history_snapshots_total"
)

// Dimensional (vec) metric names. Each vec is keyed by exactly one
// bounded-cardinality label; the label key is part of the catalog so the
// Prometheus series shape stays stable.
const (
	MetricStatementsByClass  = "provider_statements_by_class_total"
	MetricLatencyByClass     = "provider_statement_latency_by_class_us"
	MetricStatementsByOrigin = "provider_statements_by_origin_total"
	MetricPredictionsByModel = "provider_predictions_by_model_total"
	MetricTrainingsByModel   = "provider_trainings_by_model_total"
)

// Label keys for the vec metrics above.
const (
	LabelClass  = "class"
	LabelOrigin = "origin"
	LabelModel  = "model"
	LabelReason = "reason"
)

// helpText documents metrics for the Prometheus exposition's # HELP lines.
// Entries are optional: metrics without one render TYPE only.
var helpText = map[string]string{
	MetricStatementsTotal:       "Statements executed, successful or not.",
	MetricErrorsTotal:           "Statements that returned an error.",
	MetricCancelledTotal:        "Statements aborted by context cancellation.",
	MetricRowsOutTotal:          "Result rows produced by successful statements.",
	MetricStatementLatency:      "Statement wall time in microseconds.",
	MetricStatementsByClass:     "Statements executed, by statement class.",
	MetricLatencyByClass:        "Statement wall time in microseconds, by statement class.",
	MetricStatementsByOrigin:    "Statements executed, by session origin.",
	MetricPredictionsByModel:    "PREDICTION JOIN statements, by mining model.",
	MetricTrainingsByModel:      "Model training runs (INSERT INTO), by mining model.",
	MetricSQLBatchesTotal:       "Row batches drained by vectorized query pipelines.",
	MetricSQLMorselsTotal:       "Table morsels dispatched to parallel scan workers.",
	MetricSQLParallelScansTotal: "Queries executed via the morsel-parallel path.",
	MetricFlightConsidered:      "Completed statements offered to the flight recorder.",
	MetricFlightKept:            "Statements retained by the flight recorder, by keep reason.",
	MetricHistorySnapshots:      "Metric-history snapshots taken by the background ticker.",
}

// Help returns the catalog's HELP text for a metric name ("" when none).
func Help(name string) string { return helpText[name] }
