package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ConnStats is one live connection's counters. The handler goroutine updates
// them with atomics; the $SYSTEM.DM_CONNECTIONS rowset reads them through
// Snapshot without stopping the handler.
type ConnStats struct {
	id         int64
	remote     string
	opened     time.Time
	requests   atomic.Int64
	errors     atomic.Int64
	lastActive atomic.Int64 // unix nanoseconds; 0 = no request yet

	// session is set once by BindSession (before the connection serves
	// requests) and read by Snapshot.
	session atomic.Pointer[connSession]
}

// connSession is the provider-session state a connection binds for the
// DM_CONNECTIONS rowset: the session origin plus a live in-flight probe.
type connSession struct {
	origin   string
	inFlight func() int64
}

// BindSession attaches the connection's provider-session identity: its origin
// string and a callback reporting statements currently in flight past
// admission. Safe on nil; inFlight may be nil.
func (cs *ConnStats) BindSession(origin string, inFlight func() int64) {
	if cs == nil {
		return
	}
	cs.session.Store(&connSession{origin: origin, inFlight: inFlight})
}

// Request records one completed request on the connection.
func (cs *ConnStats) Request(failed bool) {
	if cs == nil {
		return
	}
	cs.requests.Add(1)
	if failed {
		cs.errors.Add(1)
	}
	cs.lastActive.Store(time.Now().UnixNano())
}

// ConnSnapshot is a point-in-time copy of one connection's state.
type ConnSnapshot struct {
	ID         int64
	Remote     string
	Opened     time.Time
	Requests   int64
	Errors     int64
	LastActive time.Time // zero when the connection has served no request
	// Origin is the bound provider session's origin ("" when unbound).
	Origin string
	// InFlight is the session's statements currently past admission.
	InFlight int64
}

// ConnTracker tracks the server's open connections for the
// $SYSTEM.DM_CONNECTIONS rowset; see the package guard annotation on
// Registry for the locking discipline.
type ConnTracker struct {
	mu    sync.Mutex
	seq   int64
	conns map[int64]*ConnStats
}

// Open registers a connection and returns its stats handle. Safe on a nil
// tracker (returns nil, whose methods no-op).
func (ct *ConnTracker) Open(remote string) *ConnStats {
	if ct == nil {
		return nil
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.seq++
	cs := &ConnStats{id: ct.seq, remote: remote, opened: time.Now()}
	if ct.conns == nil {
		ct.conns = make(map[int64]*ConnStats)
	}
	ct.conns[cs.id] = cs
	return cs
}

// Close removes a connection registered with Open.
func (ct *ConnTracker) Close(cs *ConnStats) {
	if ct == nil || cs == nil {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	delete(ct.conns, cs.id)
}

// Snapshot lists the open connections, ordered by connection ID.
func (ct *ConnTracker) Snapshot() []ConnSnapshot {
	if ct == nil {
		return nil
	}
	ct.mu.Lock()
	out := make([]ConnSnapshot, 0, len(ct.conns))
	for _, cs := range ct.conns {
		s := ConnSnapshot{
			ID:       cs.id,
			Remote:   cs.remote,
			Opened:   cs.opened,
			Requests: cs.requests.Load(),
			Errors:   cs.errors.Load(),
		}
		if ns := cs.lastActive.Load(); ns != 0 {
			s.LastActive = time.Unix(0, ns)
		}
		if sess := cs.session.Load(); sess != nil {
			s.Origin = sess.origin
			if sess.inFlight != nil {
				s.InFlight = sess.inFlight()
			}
		}
		out = append(out, s)
	}
	ct.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
