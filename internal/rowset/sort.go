package rowset

import "slices"

// SortByKeys stably sorts items in place by their parallel key rows: keys[i]
// holds the precomputed ORDER BY key values for items[i], and desc[k] flips
// the k-th key. The common single-key case takes a fast path whose comparator
// touches exactly one Value per side — no inner loop over key ordinals and no
// per-comparison desc lookup. Both slices are permuted together.
//
// It is the one sort used by every ORDER BY in the module (SQL SELECT, SHAPE
// children via SELECT, prediction-join output), so key semantics — NULL
// first, numeric cross-type comparison — stay identical everywhere.
func SortByKeys[T any](items []T, keys []Row, desc []bool) {
	if len(items) < 2 || len(keys) == 0 {
		return
	}
	// The index values are unique, so breaking key ties on the original index
	// reproduces stable order exactly while letting the faster unstable
	// pattern-defeating quicksort run instead of the symmerge stable sort.
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	if len(keys[0]) == 1 {
		d := len(desc) > 0 && desc[0]
		if !sortSingleTyped(idx, keys, d) {
			if d {
				slices.SortFunc(idx, func(a, b int) int {
					if c := Compare(keys[b][0], keys[a][0]); c != 0 {
						return c
					}
					return a - b
				})
			} else {
				slices.SortFunc(idx, func(a, b int) int {
					if c := Compare(keys[a][0], keys[b][0]); c != 0 {
						return c
					}
					return a - b
				})
			}
		}
	} else {
		slices.SortFunc(idx, func(a, b int) int {
			ka, kb := keys[a], keys[b]
			for k := range ka {
				c := Compare(ka[k], kb[k])
				if c == 0 {
					continue
				}
				if k < len(desc) && desc[k] {
					return -c
				}
				return c
			}
			return a - b
		})
	}
	applyPermutation(idx, items, keys)
}

// sortSingleTyped sorts idx by a homogeneous single-column key without any
// per-comparison interface dispatch: one pass extracts the key column into a
// typed slice, then the comparator reads machine values directly. It reports
// false (leaving idx untouched) when the column mixes types or contains NULLs
// — the generic Compare comparator handles those. Ordering is identical to
// Compare's: floats order NaN as tying everything (both < and > are false, so
// the index tiebreak — stable order — decides), exactly like Compare's
// float path.
func sortSingleTyped(idx []int, keys []Row, desc bool) bool {
	switch keys[0][0].(type) {
	case int64:
		vals := make([]int64, len(keys))
		for i, k := range keys {
			v, ok := k[0].(int64)
			if !ok {
				return false
			}
			vals[i] = v
		}
		sortTyped(idx, vals, desc)
	case float64:
		vals := make([]float64, len(keys))
		for i, k := range keys {
			v, ok := k[0].(float64)
			if !ok {
				return false
			}
			vals[i] = v
		}
		sortTyped(idx, vals, desc)
	case string:
		vals := make([]string, len(keys))
		for i, k := range keys {
			v, ok := k[0].(string)
			if !ok {
				return false
			}
			vals[i] = v
		}
		sortTyped(idx, vals, desc)
	default:
		return false
	}
	return true
}

func sortTyped[E int64 | float64 | string](idx []int, vals []E, desc bool) {
	if desc {
		slices.SortFunc(idx, func(a, b int) int {
			x, y := vals[b], vals[a]
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			default:
				return a - b
			}
		})
		return
	}
	slices.SortFunc(idx, func(a, b int) int {
		x, y := vals[a], vals[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return a - b
		}
	})
}

// applyPermutation reorders items and keys in place so that position i
// receives the element previously at idx[i], rotating each permutation cycle
// — no scratch slices. idx is consumed (visited entries are marked negative).
func applyPermutation[T any](idx []int, items []T, keys []Row) {
	for i := range idx {
		if idx[i] < 0 {
			continue // already placed by an earlier cycle
		}
		j := i
		tmpItem, tmpKey := items[i], keys[i]
		for {
			k := idx[j]
			idx[j] = -1 - k
			if k == i {
				items[j], keys[j] = tmpItem, tmpKey
				break
			}
			items[j], keys[j] = items[k], keys[k]
			j = k
		}
	}
}
