package rowset

import "slices"

// SortByKeys stably sorts items in place by their parallel key rows: keys[i]
// holds the precomputed ORDER BY key values for items[i], and desc[k] flips
// the k-th key. The common single-key case takes a fast path whose comparator
// touches exactly one Value per side — no inner loop over key ordinals and no
// per-comparison desc lookup. Both slices are permuted together.
//
// It is the one sort used by every ORDER BY in the module (SQL SELECT, SHAPE
// children via SELECT, prediction-join output), so key semantics — NULL
// first, numeric cross-type comparison — stay identical everywhere.
func SortByKeys[T any](items []T, keys []Row, desc []bool) {
	if len(items) < 2 || len(keys) == 0 {
		return
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	if len(keys[0]) == 1 {
		if len(desc) > 0 && desc[0] {
			slices.SortStableFunc(idx, func(a, b int) int {
				return Compare(keys[b][0], keys[a][0])
			})
		} else {
			slices.SortStableFunc(idx, func(a, b int) int {
				return Compare(keys[a][0], keys[b][0])
			})
		}
	} else {
		slices.SortStableFunc(idx, func(a, b int) int {
			ka, kb := keys[a], keys[b]
			for k := range ka {
				c := Compare(ka[k], kb[k])
				if c == 0 {
					continue
				}
				if k < len(desc) && desc[k] {
					return -c
				}
				return c
			}
			return 0
		})
	}
	applyPermutation(idx, items, keys)
}

// applyPermutation reorders items and keys so that position i receives the
// element previously at idx[i].
func applyPermutation[T any](idx []int, items []T, keys []Row) {
	outItems := make([]T, len(items))
	outKeys := make([]Row, len(keys))
	for i, j := range idx {
		outItems[i] = items[j]
		outKeys[i] = keys[j]
	}
	copy(items, outItems)
	copy(keys, outKeys)
}
