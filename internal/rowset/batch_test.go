package rowset

import (
	"fmt"
	"testing"
)

func batchTestRowset(t *testing.T, n int) *Rowset {
	t.Helper()
	s := mustSchema(t, Column{Name: "A", Type: TypeLong}, Column{Name: "B", Type: TypeText})
	rs := New(s)
	for i := 0; i < n; i++ {
		mustAppend(rs, int64(i), "r")
	}
	return rs
}

func TestBatchSelectionVector(t *testing.T) {
	rows := []Row{{int64(0)}, {int64(1)}, {int64(2)}, {int64(3)}}
	b := Batch{Rows: rows, Sel: []int{1, 3}}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if Compare(b.Row(0)[0], int64(1)) != 0 || Compare(b.Row(1)[0], int64(3)) != 0 {
		t.Fatalf("selection vector rows wrong: %v %v", b.Row(0), b.Row(1))
	}
	sub := b.Slice(1, 2)
	if sub.Len() != 1 || Compare(sub.Row(0)[0], int64(3)) != 0 {
		t.Fatalf("Slice over Sel wrong: len=%d", sub.Len())
	}
	plain := Batch{Rows: rows}
	if plain.Len() != 4 {
		t.Fatalf("plain Len = %d", plain.Len())
	}
	sub = plain.Slice(2, 4)
	if sub.Len() != 2 || Compare(sub.Row(0)[0], int64(2)) != 0 {
		t.Fatalf("Slice over Rows wrong")
	}
	if !(Batch{}).Empty() {
		t.Fatal("zero Batch should be Empty")
	}
	if plain.Empty() {
		t.Fatal("non-nil Batch reported Empty")
	}
}

func TestSliceIterNextBatch(t *testing.T) {
	rs := batchTestRowset(t, 2*DefaultBatchSize+5)
	bc := BatchCursorOf(rs.Cursor())
	// The rowset cursor is batch-native: no wrapper, zero-copy subslices.
	if _, wrapped := bc.(*rowBatcher); wrapped {
		t.Fatal("sliceIter was wrapped instead of passing through")
	}
	total, batches := 0, 0
	for {
		b, err := bc.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b.Empty() {
			break
		}
		if b.Sel != nil {
			t.Fatal("scan batch should have nil Sel")
		}
		if &b.Rows[0][0] != &rs.Rows()[total][0] {
			t.Fatal("batch rows are not zero-copy views of the rowset")
		}
		total += b.Len()
		batches++
	}
	if total != rs.Len() || batches != 3 {
		t.Fatalf("drained %d rows in %d batches, want %d in 3", total, batches, rs.Len())
	}
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAdaptersRoundTrip(t *testing.T) {
	rs := batchTestRowset(t, DefaultBatchSize+37)

	// Row → batch → row: plainIter hides both Close and NextBatch, so both
	// adapters must actually wrap.
	bc := BatchCursorOf(CursorOf(plainIter{rs.Iter()}))
	if _, ok := bc.(*rowBatcher); !ok {
		t.Fatal("expected rowBatcher wrapper for a row-only source")
	}
	rc := RowCursor(onlyBatch{bc})
	out, err := FromCursor(rc)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != rs.Len() {
		t.Fatalf("round-trip len = %d, want %d", out.Len(), rs.Len())
	}
	for i := range rs.Rows() {
		if Compare(out.Row(i)[0], rs.Row(i)[0]) != 0 {
			t.Fatalf("row %d mismatch", i)
		}
	}

	// A hybrid cursor passes through both adapters unchanged.
	c := rs.Cursor()
	if RowCursor(BatchCursorOf(c)) != c {
		t.Fatal("hybrid cursor did not pass through adapters")
	}
}

// onlyBatch hides the Next method so RowCursor sees a batch-only source.
type onlyBatch struct{ bc BatchCursor }

func (o onlyBatch) NextBatch() (Batch, error) { return o.bc.NextBatch() }
func (o onlyBatch) Schema() *Schema           { return o.bc.Schema() }
func (o onlyBatch) Close() error              { return o.bc.Close() }

func TestRowBatcherReusesBuffer(t *testing.T) {
	rs := batchTestRowset(t, DefaultBatchSize+10)
	rb := &rowBatcher{src: CursorOf(plainIter{rs.Iter()})}
	b1, err := rb.NextBatch()
	if err != nil || b1.Len() != DefaultBatchSize {
		t.Fatalf("first batch = %d rows, err %v", b1.Len(), err)
	}
	first := &b1.Rows[0]
	b2, err := rb.NextBatch()
	if err != nil || b2.Len() != 10 {
		t.Fatalf("second batch = %d rows, err %v", b2.Len(), err)
	}
	// Producer-owned: the second batch reuses the first batch's backing array.
	if &b2.Rows[0] != first {
		t.Fatal("rowBatcher allocated a fresh buffer per batch")
	}
	if b3, err := rb.NextBatch(); err != nil || !b3.Empty() {
		t.Fatalf("expected end of stream, got %d rows, err %v", b3.Len(), err)
	}
}

// FromCursor on a fresh cursor over a materialized rowset must return the
// rowset itself — same backing rows, not copies (ISSUE 10 satellite: no
// double bookkeeping).
func TestFromCursorMaterializedFastPath(t *testing.T) {
	rs := batchTestRowset(t, 8)
	out, err := FromCursor(rs.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if out != rs {
		t.Fatal("FromCursor did not return the underlying rowset")
	}
	for i := range rs.Rows() {
		if &out.Rows()[i][0] != &rs.Rows()[i][0] {
			t.Fatalf("row %d was copied", i)
		}
	}

	// A partially-consumed cursor must NOT take the fast path: the result
	// holds only the remaining rows.
	c := rs.Cursor()
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	rest, err := FromCursor(c)
	if err != nil {
		t.Fatal(err)
	}
	if rest == rs || rest.Len() != rs.Len()-1 {
		t.Fatalf("partial drain: got %d rows (same=%v), want %d", rest.Len(), rest == rs, rs.Len()-1)
	}
}

func TestFromCursorBatchDrainSelAware(t *testing.T) {
	rs := batchTestRowset(t, 6)
	// selBatches is a hybrid Cursor+BatchCursor, so FromCursor must prefer
	// the batch drain (its Next reports an error if called).
	src := &selBatches{schema: rs.Schema(), rows: rs.Rows()}
	out, err := FromCursor(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 5}
	if out.Len() != len(want) {
		t.Fatalf("len = %d, want %d", out.Len(), len(want))
	}
	for i, w := range want {
		if Compare(out.Row(i)[0], w) != 0 {
			t.Fatalf("row %d = %v, want %d", i, out.Row(i)[0], w)
		}
	}
}

// selBatches yields one batch with a selection vector picking odd rows.
type selBatches struct {
	schema *Schema
	rows   []Row
	done   bool
}

func (s *selBatches) NextBatch() (Batch, error) {
	if s.done {
		return Batch{}, nil
	}
	s.done = true
	sel := make([]int, 0, len(s.rows)/2)
	for i := 1; i < len(s.rows); i += 2 {
		sel = append(sel, i)
	}
	return Batch{Rows: s.rows, Sel: sel}, nil
}

func (s *selBatches) Next() (Row, error) {
	return nil, errUnexpectedRowPull
}

var errUnexpectedRowPull = fmt.Errorf("row-at-a-time pull on a batch-preferred source")

func (s *selBatches) Schema() *Schema { return s.schema }
func (s *selBatches) Close() error    { return nil }
