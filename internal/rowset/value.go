// Package rowset defines the tabular data model shared by every component of
// the provider: typed scalar values, hierarchical (nested-table) values,
// column schemas, and materialized or streaming rowsets.
//
// It is the Go analog of the OLE DB rowset abstraction the paper builds on:
// "any data source that can be viewed as a set of tables". A Value held in a
// column of type Table is itself a *Rowset, which is how the Data Shaping
// Service represents the hierarchical casesets of Section 3.1 of the paper.
package rowset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies the declared type of a column. The names follow the DMX
// surface syntax used in the paper (LONG, DOUBLE, TEXT, ...) rather than Go
// type names, because they appear verbatim in CREATE statements.
type Type int

const (
	// TypeNull is the type of an untyped NULL and of columns whose type is
	// not yet known (for example, computed columns before inference).
	TypeNull Type = iota
	// TypeLong is a 64-bit signed integer (DMX: LONG).
	TypeLong
	// TypeDouble is a 64-bit float (DMX: DOUBLE).
	TypeDouble
	// TypeText is a Unicode string (DMX: TEXT).
	TypeText
	// TypeBool is a boolean (DMX: BOOL).
	TypeBool
	// TypeDate is a timestamp (DMX: DATE).
	TypeDate
	// TypeTable marks a nested-table column (DMX: TABLE). Values are *Rowset.
	TypeTable
)

var typeNames = map[Type]string{
	TypeNull:   "NULL",
	TypeLong:   "LONG",
	TypeDouble: "DOUBLE",
	TypeText:   "TEXT",
	TypeBool:   "BOOL",
	TypeDate:   "DATE",
	TypeTable:  "TABLE",
}

// String returns the DMX keyword for the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// ParseType maps a DMX type keyword to a Type. It is case-insensitive and
// accepts the aliases used by SQL Server's DMX dialect.
func ParseType(s string) (Type, bool) {
	switch strings.ToUpper(s) {
	case "LONG", "INT", "INTEGER", "BIGINT":
		return TypeLong, true
	case "DOUBLE", "FLOAT", "REAL":
		return TypeDouble, true
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return TypeText, true
	case "BOOL", "BOOLEAN", "BIT":
		return TypeBool, true
	case "DATE", "DATETIME", "TIME":
		return TypeDate, true
	case "TABLE":
		return TypeTable, true
	}
	return TypeNull, false
}

// Value is a single cell. The dynamic type is one of:
//
//	nil        — SQL NULL
//	int64      — TypeLong
//	float64    — TypeDouble
//	string     — TypeText
//	bool       — TypeBool
//	time.Time  — TypeDate
//	*Rowset    — TypeTable (a nested table)
//
// All producers in this module normalize to exactly these types; Normalize
// converts the common wider set (int, int32, float32, ...) on the way in.
type Value any

// TypeOf reports the Type of v's dynamic type.
func TypeOf(v Value) Type {
	switch v.(type) {
	case nil:
		return TypeNull
	case int64:
		return TypeLong
	case float64:
		return TypeDouble
	case string:
		return TypeText
	case bool:
		return TypeBool
	case time.Time:
		return TypeDate
	case *Rowset:
		return TypeTable
	}
	return TypeNull
}

// Normalize converts v to the canonical dynamic type for its kind. It accepts
// every Go integer and float type plus the canonical types themselves.
// Unsupported dynamic types are returned unchanged.
func Normalize(v Value) Value {
	switch x := v.(type) {
	case nil, int64, float64, string, bool, time.Time, *Rowset:
		return v
	case int:
		return int64(x)
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	case uint:
		return int64(x)
	case uint8:
		return int64(x)
	case uint16:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case float32:
		return float64(x)
	case []byte:
		return string(x)
	}
	return v
}

// IsNull reports whether v is SQL NULL.
func IsNull(v Value) bool { return v == nil }

// Coerce converts v to the given type, returning an error when the conversion
// is not meaningful. NULL coerces to NULL of any type. Numeric conversions
// follow SQL rules: LONG<->DOUBLE freely, TEXT parsed on demand.
func Coerce(v Value, t Type) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TypeLong:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			return int64(x), nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				// Accept "35.0" style literals too.
				f, ferr := strconv.ParseFloat(strings.TrimSpace(x), 64)
				if ferr != nil {
					return nil, fmt.Errorf("rowset: cannot coerce %q to LONG", x)
				}
				return int64(f), nil
			}
			return n, nil
		default:
			// time.Time, *Rowset: no meaningful LONG conversion; fall through
			// to the shared cannot-coerce error below.
		}
	case TypeDouble:
		switch x := v.(type) {
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		case bool:
			if x {
				return float64(1), nil
			}
			return float64(0), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("rowset: cannot coerce %q to DOUBLE", x)
			}
			return f, nil
		default:
			// time.Time, *Rowset: no meaningful DOUBLE conversion; fall
			// through to the shared cannot-coerce error below.
		}
	case TypeText:
		return FormatValue(v), nil
	case TypeBool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case int64:
			return x != 0, nil
		case float64:
			return x != 0, nil
		case string:
			switch strings.ToLower(strings.TrimSpace(x)) {
			case "true", "t", "1", "yes":
				return true, nil
			case "false", "f", "0", "no":
				return false, nil
			}
			return nil, fmt.Errorf("rowset: cannot coerce %q to BOOL", x)
		default:
			// time.Time, *Rowset: no meaningful BOOL conversion; fall through
			// to the shared cannot-coerce error below.
		}
	case TypeDate:
		switch x := v.(type) {
		case time.Time:
			return x, nil
		case string:
			for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if ts, err := time.Parse(layout, strings.TrimSpace(x)); err == nil {
					return ts, nil
				}
			}
			return nil, fmt.Errorf("rowset: cannot coerce %q to DATE", x)
		case int64:
			return time.Unix(x, 0).UTC(), nil
		default:
			// float64, bool, *Rowset: no meaningful DATE conversion; fall
			// through to the shared cannot-coerce error below.
		}
	case TypeTable:
		if x, ok := v.(*Rowset); ok {
			return x, nil
		}
	case TypeNull:
		return v, nil
	}
	return nil, fmt.Errorf("rowset: cannot coerce %s to %s", TypeOf(v), t)
}

// ToFloat converts numeric and boolean values to float64 for use by mining
// algorithms. The second result is false for NULL and non-numeric values.
func ToFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case time.Time:
		return float64(x.Unix()), true
	default:
		// nil, string, *Rowset: not numeric.
		return 0, false
	}
}

// FormatValue renders v the way the dmsql shell and test fixtures display it:
// NULL for nil, %g for doubles, RFC 3339 for dates, and "#rows=<n>" summary
// for nested tables.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatFloat(x, 'f', 1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case time.Time:
		return x.Format(time.RFC3339)
	case *Rowset:
		return fmt.Sprintf("#rows=%d", x.Len())
	}
	return fmt.Sprintf("%v", v)
}

// Compare orders two scalar values. It returns a negative number when a<b,
// zero when equal, positive when a>b. NULL sorts before every non-NULL value.
// Cross-type numeric comparisons (LONG vs DOUBLE) compare numerically; other
// cross-type comparisons compare by type tag so sorting is total. Nested
// tables compare by length (sorting on a TABLE column is not meaningful but
// must not panic).
func Compare(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	// Same-type fast paths for the three types that dominate sort keys and
	// grouping: no ToFloat round-trip, no TypeOf. Semantics are unchanged
	// (mixed numeric pairs still fall through to the float comparison).
	switch x := a.(type) {
	case int64:
		if y, ok := b.(int64); ok {
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			default:
				return 0
			}
		}
	case float64:
		if y, ok := b.(float64); ok {
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			default:
				return 0
			}
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	default:
		// bool, time.Time, *Rowset, mixed pairs: generic path below.
	}
	af, aNum := ToFloat(a)
	bf, bNum := ToFloat(b)
	if aNum && bNum {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	ta, tb := TypeOf(a), TypeOf(b)
	if ta != tb {
		return int(ta) - int(tb)
	}
	switch x := a.(type) {
	case string:
		return strings.Compare(x, b.(string))
	case *Rowset:
		return x.Len() - b.(*Rowset).Len()
	default:
		// int64, float64, bool, and time.Time were ordered numerically via
		// ToFloat above; nil was handled first. Same-type leftovers tie.
		return 0
	}
}

// Equal reports whether two scalar values are equal under Compare semantics,
// except that NULL is not equal to NULL (SQL three-valued logic is handled by
// callers; Equal implements the equality used for grouping keys where NULLs
// do group together — use Compare(a,b)==0 for that, which this calls).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a string usable as a map key that is unique per distinct value
// under Compare semantics. Numeric values of equal magnitude share a key
// regardless of LONG/DOUBLE representation.
func Key(v Value) string {
	switch x := v.(type) {
	case nil:
		return "\x00"
	case string:
		return "s" + x
	case bool:
		if x {
			return "b1"
		}
		return "b0"
	case time.Time:
		return "t" + strconv.FormatInt(x.UnixNano(), 10)
	case *Rowset:
		return fmt.Sprintf("T%p", x)
	default:
		if f, ok := ToFloat(v); ok {
			return "n" + strconv.FormatFloat(f, 'g', -1, 64)
		}
	}
	return fmt.Sprintf("?%v", v)
}

// AppendKey appends Key(v)'s bytes to dst and returns the extended slice. It
// produces exactly the bytes of Key(v) without allocating an intermediate
// string, so hot loops (hash-join probes, index lookups, grouping) can reuse
// one scratch buffer and probe maps via the compiler's map[string(b)] fast
// path. TestAppendKeyMatchesKey pins the byte-for-byte equivalence.
func AppendKey(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, '\x00')
	case string:
		dst = append(dst, 's')
		return append(dst, x...)
	case bool:
		if x {
			return append(dst, 'b', '1')
		}
		return append(dst, 'b', '0')
	case time.Time:
		dst = append(dst, 't')
		return strconv.AppendInt(dst, x.UnixNano(), 10)
	case *Rowset:
		return fmt.Appendf(dst, "T%p", x)
	default:
		if f, ok := ToFloat(v); ok {
			dst = append(dst, 'n')
			return strconv.AppendFloat(dst, f, 'g', -1, 64)
		}
	}
	return fmt.Appendf(dst, "?%v", v)
}
