package rowset

import (
	"strings"
	"testing"
)

func custSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "Customer ID", Type: TypeLong},
		Column{Name: "Gender", Type: TypeText},
		Column{Name: "Age", Type: TypeDouble},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaDuplicate(t *testing.T) {
	_, err := NewSchema(
		Column{Name: "A", Type: TypeLong},
		Column{Name: "a", Type: TypeText},
	)
	if err == nil {
		t.Fatal("duplicate (case-insensitive) column names must error")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := custSchema(t)
	if i, ok := s.Lookup("gender"); !ok || i != 1 {
		t.Errorf("Lookup(gender) = %d,%v", i, ok)
	}
	if i, ok := s.Lookup("t.Age"); !ok || i != 2 {
		t.Errorf("Lookup(t.Age) = %d,%v", i, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

func TestSchemaProject(t *testing.T) {
	s := custSchema(t)
	p, ords, err := s.Project([]string{"Age", "Customer ID"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || ords[0] != 2 || ords[1] != 0 {
		t.Errorf("Project = %v %v", p.Names(), ords)
	}
	if _, _, err := s.Project([]string{"missing"}); err == nil {
		t.Error("Project(missing) should fail")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := custSchema(t)
	b := custSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas must be equal")
	}
	c := MustSchema(Column{Name: "Customer ID", Type: TypeLong})
	if a.Equal(c) {
		t.Error("different arity must not be equal")
	}
	nested := MustSchema(
		Column{Name: "P", Type: TypeTable, Nested: MustSchema(Column{Name: "X", Type: TypeLong})},
	)
	nested2 := MustSchema(
		Column{Name: "P", Type: TypeTable, Nested: MustSchema(Column{Name: "X", Type: TypeText})},
	)
	if nested.Equal(nested2) {
		t.Error("nested type mismatch must not be equal")
	}
}

func TestAppendAndValue(t *testing.T) {
	rs := New(custSchema(t))
	if err := rs.Append(Row{int64(1), "Male", 35.0}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Append(Row{1, "F"}); err == nil {
		t.Error("arity mismatch must error")
	}
	// int is normalized to int64.
	if err := rs.Append(Row{2, "Female", 41.0}); err != nil {
		t.Fatal(err)
	}
	v, err := rs.Value(1, "customer id")
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(2) {
		t.Errorf("Value = %#v", v)
	}
	if _, err := rs.Value(0, "zzz"); err == nil {
		t.Error("unknown column must error")
	}
}

func TestSort(t *testing.T) {
	rs := New(custSchema(t))
	mustAppend(rs, int64(3), "b", 10.0)
	mustAppend(rs, int64(1), "a", 30.0)
	mustAppend(rs, int64(2), "a", 20.0)
	rs.Sort([]int{1, 2}, []bool{false, true})
	// Gender asc, Age desc: (a,30), (a,20), (b,10)
	if rs.Row(0)[0] != int64(1) || rs.Row(1)[0] != int64(2) || rs.Row(2)[0] != int64(3) {
		t.Errorf("sort order wrong: %v", rs.Rows())
	}
}

func TestSortStable(t *testing.T) {
	s := MustSchema(Column{Name: "k", Type: TypeLong}, Column{Name: "seq", Type: TypeLong})
	rs := New(s)
	for i := 0; i < 20; i++ {
		mustAppend(rs, int64(i%3), int64(i))
	}
	rs.Sort([]int{0}, nil)
	last := map[int64]int64{}
	for _, r := range rs.Rows() {
		k, seq := r[0].(int64), r[1].(int64)
		if prev, ok := last[k]; ok && seq < prev {
			t.Fatalf("sort not stable for key %d", k)
		}
		last[k] = seq
	}
}

func TestCloneIsDeep(t *testing.T) {
	inner := New(MustSchema(Column{Name: "x", Type: TypeLong}))
	mustAppend(inner, int64(1))
	outer := New(MustSchema(Column{Name: "t", Type: TypeTable, Nested: inner.Schema()}))
	mustAppend(outer, inner)

	cl := outer.Clone()
	mustAppend(inner, int64(2))
	got := cl.Row(0)[0].(*Rowset)
	if got.Len() != 1 {
		t.Errorf("clone shares nested rowset: len=%d", got.Len())
	}
}

func TestFlatWidth(t *testing.T) {
	inner := New(MustSchema(Column{Name: "x", Type: TypeLong}, Column{Name: "y", Type: TypeText}))
	mustAppend(inner, int64(1), "a")
	mustAppend(inner, int64(2), "b")
	outer := New(MustSchema(
		Column{Name: "id", Type: TypeLong},
		Column{Name: "t", Type: TypeTable, Nested: inner.Schema()},
	))
	mustAppend(outer, int64(9), inner)
	if w := outer.FlatWidth(); w != 5 { // id + 2*2 nested cells
		t.Errorf("FlatWidth = %d want 5", w)
	}
}

func TestIteratorAndMaterialize(t *testing.T) {
	rs := New(custSchema(t))
	mustAppend(rs, int64(1), "M", 20.0)
	mustAppend(rs, int64(2), "F", 30.0)
	it := rs.Iter()
	got, err := Materialize(it)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Row(1)[2] != 30.0 {
		t.Errorf("Materialize = %v", got.Rows())
	}
	// Exhausted iterator keeps returning nil.
	r, err := it.Next()
	if r != nil || err != nil {
		t.Error("exhausted iterator must return nil,nil")
	}
}

func TestStringRendering(t *testing.T) {
	rs := New(custSchema(t))
	mustAppend(rs, int64(1), "Male", 35.0)
	out := rs.String()
	for _, want := range []string{"Customer ID", "Gender", "Age", "Male", "35.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
}

func TestStringNested(t *testing.T) {
	inner := New(MustSchema(Column{Name: "p", Type: TypeText}))
	mustAppend(inner, "TV")
	outer := New(MustSchema(Column{Name: "t", Type: TypeTable, Nested: inner.Schema()}))
	mustAppend(outer, inner)
	if !strings.Contains(outer.String(), "{(TV)}") {
		t.Errorf("nested rendering wrong:\n%s", outer.String())
	}
}

func TestFromRows(t *testing.T) {
	s := custSchema(t)
	rs, err := FromRows(s, []Row{{int64(1), "M", 1.0}, {int64(2), "F", 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Errorf("len = %d", rs.Len())
	}
	if _, err := FromRows(s, []Row{{int64(1)}}); err == nil {
		t.Error("bad arity must error")
	}
}
