package rowset

import (
	"fmt"
	"slices"
	"strings"
)

// Row is one record: one Value per schema column.
type Row []Value

// Clone returns a shallow copy of the row (nested *Rowset values are shared).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Rowset is a materialized, ordered collection of rows sharing a schema.
// It is the unit of data exchange across the provider: SQL query results,
// SHAPE output, prediction-join output, and schema rowsets are all Rowsets.
type Rowset struct {
	schema *Schema
	rows   []Row
}

// New creates an empty rowset with the given schema.
func New(schema *Schema) *Rowset {
	return &Rowset{schema: schema}
}

// Adopt creates a rowset that shares rows as-is — no copy, no arity check,
// no normalization. It is for producers whose rows are already canonical
// (storage snapshots, executor output): the streaming counterpart of FromRows
// when validation would only repeat work already done upstream.
func Adopt(schema *Schema, rows []Row) *Rowset {
	return &Rowset{schema: schema, rows: rows}
}

// FromRows creates a rowset from pre-built rows. Rows are validated for
// arity; values are normalized to canonical dynamic types.
func FromRows(schema *Schema, rows []Row) (*Rowset, error) {
	rs := New(schema)
	for _, r := range rows {
		if err := rs.Append(r); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// Schema returns the rowset's schema.
func (rs *Rowset) Schema() *Schema { return rs.schema }

// Len returns the number of rows.
func (rs *Rowset) Len() int { return len(rs.rows) }

// Row returns row i. The caller must not mutate it.
func (rs *Rowset) Row(i int) Row { return rs.rows[i] }

// Rows returns the backing slice of rows; callers must treat it as read-only.
func (rs *Rowset) Rows() []Row { return rs.rows }

// Append adds a row after normalizing values and checking arity.
func (rs *Rowset) Append(r Row) error {
	if len(r) != rs.schema.Len() {
		return fmt.Errorf("rowset: row has %d values, schema has %d columns", len(r), rs.schema.Len())
	}
	norm := make(Row, len(r))
	for i, v := range r {
		norm[i] = Normalize(v)
	}
	rs.rows = append(rs.rows, norm)
	return nil
}

// AppendVals is Append over a variadic value list, saving callers the
// Row conversion when assembling rows cell by cell.
func (rs *Rowset) AppendVals(vals ...Value) error {
	return rs.Append(Row(vals))
}

// Value returns the cell at (row, named column).
func (rs *Rowset) Value(row int, col string) (Value, error) {
	i, ok := rs.schema.Lookup(col)
	if !ok {
		return nil, fmt.Errorf("rowset: unknown column %q", col)
	}
	return rs.rows[row][i], nil
}

// Sort orders rows by the given column ordinals; desc[i] flips ordinal i.
// The sort is stable. Single-ordinal sorts — the overwhelmingly common
// ORDER BY shape — take a comparator with no inner loop.
func (rs *Rowset) Sort(ords []int, desc []bool) {
	if len(ords) == 1 {
		o := ords[0]
		if len(desc) > 0 && desc[0] {
			slices.SortStableFunc(rs.rows, func(a, b Row) int { return Compare(b[o], a[o]) })
		} else {
			slices.SortStableFunc(rs.rows, func(a, b Row) int { return Compare(a[o], b[o]) })
		}
		return
	}
	slices.SortStableFunc(rs.rows, func(a, b Row) int {
		for k, o := range ords {
			c := Compare(a[o], b[o])
			if c == 0 {
				continue
			}
			if k < len(desc) && desc[k] {
				return -c
			}
			return c
		}
		return 0
	})
}

// Clone returns a deep copy of the rowset structure. Scalar values are
// immutable and shared; nested rowsets are cloned recursively.
func (rs *Rowset) Clone() *Rowset {
	out := New(rs.schema)
	out.rows = make([]Row, len(rs.rows))
	for i, r := range rs.rows {
		nr := r.Clone()
		for j, v := range nr {
			if nested, ok := v.(*Rowset); ok {
				nr[j] = nested.Clone()
			}
		}
		out.rows[i] = nr
	}
	return out
}

// FlatWidth returns the total number of scalar cells in the rowset, counting
// nested tables recursively. Used by the experiments to quantify the size of
// hierarchical vs flattened representations.
func (rs *Rowset) FlatWidth() int {
	n := 0
	for _, r := range rs.rows {
		for _, v := range r {
			if nested, ok := v.(*Rowset); ok {
				n += nested.FlatWidth()
			} else {
				n++
			}
		}
	}
	return n
}

// String renders the rowset as an aligned text table; nested tables render
// inline in brace-delimited compact form. Intended for the shell and tests.
func (rs *Rowset) String() string {
	var b strings.Builder
	names := rs.schema.Names()
	widths := make([]int, len(names))
	cells := make([][]string, rs.Len())
	for i, n := range names {
		widths[i] = len(n)
	}
	for i, r := range rs.rows {
		cells[i] = make([]string, len(r))
		for j, v := range r {
			s := formatCell(v)
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for j, s := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			b.WriteString(strings.Repeat(" ", widths[j]-len(s)))
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	sep := make([]string, len(names))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// FormatNested renders a nested rowset in the compact single-line brace form
// used by String: {(v, v) (v, v)}. Consumers without a nested-table concept
// (database/sql, CSV export) use it to flatten TABLE cells.
func FormatNested(rs *Rowset) string { return formatCell(rs) }

func formatCell(v Value) string {
	nested, ok := v.(*Rowset)
	if !ok {
		return FormatValue(v)
	}
	parts := make([]string, nested.Len())
	for i, r := range nested.Rows() {
		vals := make([]string, len(r))
		for j, nv := range r {
			vals[j] = formatCell(nv)
		}
		parts[i] = "(" + strings.Join(vals, ", ") + ")"
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Iterator yields rows one at a time. Streaming operators accept an Iterator
// so large intermediate results need not be materialized.
type Iterator interface {
	// Next returns the next row, or (nil, nil) at end of stream.
	Next() (Row, error)
	// Schema describes the rows produced.
	Schema() *Schema
}

// Cursor is the pull-based (Volcano-style) row stream the executor pipelines
// are built from: an Iterator whose resources can be released early. Close
// must be safe to call more than once and after exhaustion; a consumer that
// stops pulling before end-of-stream (TOP, an error in a downstream operator)
// must still Close the cursor so upstream operators can release state.
//
// Rows yielded by a Cursor are owned by the producer: consumers must not
// mutate them, and must not assume a row stays valid after the next Next call
// unless the producer documents otherwise. Every producer in this module
// yields immutable rows that remain valid indefinitely.
type Cursor interface {
	Iterator
	// Close releases the cursor's resources. It is idempotent.
	Close() error
}

// Iter returns an iterator over the materialized rowset.
func (rs *Rowset) Iter() Iterator { return &sliceIter{rs: rs} }

// Cursor returns a Cursor over the materialized rowset — the adapter that
// lets fully-built rowsets (wire results, schema rowsets, tests) flow into
// streaming operators.
func (rs *Rowset) Cursor() Cursor { return &sliceIter{rs: rs} }

type sliceIter struct {
	rs *Rowset
	i  int
}

func (it *sliceIter) Next() (Row, error) {
	if it.i >= it.rs.Len() {
		return nil, nil
	}
	r := it.rs.Row(it.i)
	it.i++
	return r, nil
}

func (it *sliceIter) Schema() *Schema { return it.rs.schema }

func (it *sliceIter) Close() error {
	it.i = it.rs.Len()
	return nil
}

// CursorOf adapts an Iterator into a Cursor with a no-op Close. If it is
// already a Cursor it is returned unchanged.
func CursorOf(it Iterator) Cursor {
	if c, ok := it.(Cursor); ok {
		return c
	}
	return nopCloser{it}
}

type nopCloser struct{ Iterator }

func (nopCloser) Close() error { return nil }

// Materialize drains an iterator into a Rowset.
func Materialize(it Iterator) (*Rowset, error) {
	rs := New(it.Schema())
	for {
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return rs, nil
		}
		if err := rs.Append(r); err != nil {
			return nil, err
		}
	}
}

// FromCursor drains a cursor into a Rowset without re-normalizing values:
// the rows are adopted as-is (arity-checked only). It is the terminal
// operator of the streaming executor, whose cursors yield rows that are
// already in canonical form — storage rows are coerced on insert, computed
// rows are normalized at projection. The cursor is closed before returning.
func FromCursor(c Cursor) (*Rowset, error) {
	defer c.Close() //nolint:errcheck // Close after exhaustion is a no-op
	// Fast path: a cursor over an already-materialized rowset that has not
	// been pulled from yet hands back its backing rowset directly — no
	// row-by-row copy, no second bookkeeping of the same rows. The rowset's
	// own Append validated arity when the rows went in.
	if si, ok := c.(*sliceIter); ok && si.i == 0 {
		si.i = si.rs.Len()
		return si.rs, nil
	}
	rs := New(c.Schema())
	want := rs.schema.Len()
	if bc, ok := c.(BatchCursor); ok {
		// Batch drain: one interface call per batch instead of per row. The
		// batch buffer is producer-owned, so live rows are copied out (rows
		// themselves are immutable and safe to retain).
		for {
			b, err := bc.NextBatch()
			if err != nil {
				return nil, err
			}
			if b.Empty() {
				return rs, nil
			}
			if b.Sel == nil {
				for _, r := range b.Rows {
					if len(r) != want {
						return nil, fmt.Errorf("rowset: cursor row has %d values, schema has %d columns", len(r), want)
					}
				}
				rs.rows = append(rs.rows, b.Rows...)
				continue
			}
			for _, i := range b.Sel {
				r := b.Rows[i]
				if len(r) != want {
					return nil, fmt.Errorf("rowset: cursor row has %d values, schema has %d columns", len(r), want)
				}
				rs.rows = append(rs.rows, r)
			}
		}
	}
	for {
		r, err := c.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return rs, nil
		}
		if len(r) != want {
			return nil, fmt.Errorf("rowset: cursor row has %d values, schema has %d columns", len(r), want)
		}
		rs.rows = append(rs.rows, r)
	}
}
