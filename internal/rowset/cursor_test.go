package rowset

import (
	"testing"
	"time"
)

func TestCursorRoundTrip(t *testing.T) {
	s, err := NewSchema(Column{Name: "A", Type: TypeLong}, Column{Name: "B", Type: TypeText})
	if err != nil {
		t.Fatal(err)
	}
	rs := New(s)
	mustAppend(rs, int64(1), "x")
	mustAppend(rs, int64(2), "y")
	mustAppend(rs, nil, "z")

	c := rs.Cursor()
	out, err := FromCursor(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != rs.Len() {
		t.Fatalf("FromCursor len = %d, want %d", out.Len(), rs.Len())
	}
	for i := range rs.Rows() {
		for j := range rs.Row(i) {
			if !Equal(out.Row(i)[j], rs.Row(i)[j]) && !(out.Row(i)[j] == nil && rs.Row(i)[j] == nil) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, out.Row(i)[j], rs.Row(i)[j])
			}
		}
	}
	// Close is idempotent and terminal.
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if r, err := c.Next(); err != nil || r != nil {
		t.Fatalf("Next after Close = (%v, %v), want (nil, nil)", r, err)
	}
}

func TestCursorCloseStopsIteration(t *testing.T) {
	s, err := NewSchema(Column{Name: "A", Type: TypeLong})
	if err != nil {
		t.Fatal(err)
	}
	rs := New(s)
	mustAppend(rs, int64(1))
	mustAppend(rs, int64(2))
	c := rs.Cursor()
	if r, err := c.Next(); err != nil || r == nil {
		t.Fatalf("first Next = (%v, %v)", r, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if r, _ := c.Next(); r != nil {
		t.Fatalf("Next after Close yielded %v", r)
	}
}

func TestCursorOf(t *testing.T) {
	s, err := NewSchema(Column{Name: "A", Type: TypeLong})
	if err != nil {
		t.Fatal(err)
	}
	rs := New(s)
	mustAppend(rs, int64(7))

	// A Cursor passes through unchanged.
	c := rs.Cursor()
	if CursorOf(c) != c {
		t.Fatal("CursorOf(Cursor) did not pass through")
	}
	// A bare Iterator is wrapped with a no-op Close.
	wrapped := CursorOf(plainIter{rs.Iter()})
	if err := wrapped.Close(); err != nil {
		t.Fatalf("wrapped Close: %v", err)
	}
	r, err := wrapped.Next()
	if err != nil || r == nil {
		t.Fatalf("wrapped Next = (%v, %v)", r, err)
	}
}

// plainIter hides the Close method so CursorOf sees a bare Iterator.
type plainIter struct{ it Iterator }

func (p plainIter) Next() (Row, error) { return p.it.Next() }
func (p plainIter) Schema() *Schema    { return p.it.Schema() }

func TestFromCursorArityCheck(t *testing.T) {
	s, err := NewSchema(Column{Name: "A", Type: TypeLong}, Column{Name: "B", Type: TypeLong})
	if err != nil {
		t.Fatal(err)
	}
	bad := badArity{schema: s}
	if _, err := FromCursor(CursorOf(&bad)); err == nil {
		t.Fatal("FromCursor accepted a short row")
	}
}

type badArity struct {
	schema *Schema
	done   bool
}

func (b *badArity) Next() (Row, error) {
	if b.done {
		return nil, nil
	}
	b.done = true
	return Row{int64(1)}, nil
}

func (b *badArity) Schema() *Schema { return b.schema }

func TestAppendKeyMatchesKey(t *testing.T) {
	nested := New(mustSchema(t, Column{Name: "X", Type: TypeLong}))
	vals := []Value{
		nil,
		int64(0), int64(42), int64(-7),
		float64(3.5), float64(42), float64(-0.25), float64(1e300),
		"", "hello", "s\x00weird",
		true, false,
		time.Date(2024, 5, 1, 12, 0, 0, 123, time.UTC),
		nested,
	}
	for _, v := range vals {
		want := Key(v)
		got := string(AppendKey(nil, v))
		if got != want {
			t.Errorf("AppendKey(%v) = %q, want %q", v, got, want)
		}
		// Appending must extend, not clobber, an existing prefix.
		pre := AppendKey([]byte("pre|"), v)
		if string(pre) != "pre|"+want {
			t.Errorf("AppendKey with prefix = %q, want %q", pre, "pre|"+want)
		}
	}
	// LONG and DOUBLE of equal magnitude share a key either way.
	if string(AppendKey(nil, int64(42))) != string(AppendKey(nil, float64(42))) {
		t.Error("AppendKey: 42 (LONG) and 42.0 (DOUBLE) keys differ")
	}
}

func mustSchema(t *testing.T, cols ...Column) *Schema {
	t.Helper()
	s, err := NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSortByKeys(t *testing.T) {
	items := []string{"a", "b", "c", "d"}
	keys := []Row{{int64(3)}, {int64(1)}, {int64(2)}, {int64(1)}}
	SortByKeys(items, keys, []bool{false})
	want := []string{"b", "d", "c", "a"} // stable: b before d on equal keys
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("single-key asc: got %v, want %v", items, want)
		}
	}

	items = []string{"a", "b", "c"}
	keys = []Row{{int64(1)}, {int64(3)}, {int64(2)}}
	SortByKeys(items, keys, []bool{true})
	want = []string{"b", "c", "a"}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("single-key desc: got %v, want %v", items, want)
		}
	}

	// Multi-key: first key groups, second key (desc) orders within group.
	items = []string{"a", "b", "c", "d"}
	keys = []Row{
		{int64(1), "x"},
		{int64(0), "x"},
		{int64(1), "y"},
		{int64(0), "y"},
	}
	SortByKeys(items, keys, []bool{false, true})
	want = []string{"d", "b", "c", "a"}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("multi-key: got %v, want %v", items, want)
		}
	}
	// Keys were permuted alongside items.
	if Compare(keys[0][0], int64(0)) != 0 || keys[0][1] != "y" {
		t.Fatalf("keys not permuted with items: %v", keys[0])
	}
}

func BenchmarkAppendKey(b *testing.B) {
	vals := []Value{int64(12345), "customer-9876", float64(98.5), nil, true}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for _, v := range vals {
			buf = AppendKey(buf, v)
		}
	}
	if len(buf) == 0 {
		b.Fatal("empty key")
	}
}

func BenchmarkKeyAllocating(b *testing.B) {
	vals := []Value{int64(12345), "customer-9876", float64(98.5), nil, true}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			n += len(Key(v))
		}
	}
	if n == 0 {
		b.Fatal("empty key")
	}
}
