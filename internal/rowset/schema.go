package rowset

import (
	"fmt"
	"strings"
)

// Column describes one column of a rowset. For TypeTable columns, Nested
// holds the schema of the nested rowset carried in each cell.
type Column struct {
	Name   string
	Type   Type
	Nested *Schema // non-nil only when Type == TypeTable
}

// String renders the column as it would appear in a CREATE statement.
func (c Column) String() string {
	if c.Type == TypeTable && c.Nested != nil {
		inner := make([]string, len(c.Nested.Columns))
		for i, nc := range c.Nested.Columns {
			inner[i] = nc.String()
		}
		return fmt.Sprintf("[%s] TABLE(%s)", c.Name, strings.Join(inner, ", "))
	}
	return fmt.Sprintf("[%s] %s", c.Name, c.Type)
}

// Schema is an ordered list of columns with case-insensitive name lookup,
// matching SQL identifier semantics.
type Schema struct {
	Columns []Column
	index   map[string]int
}

// NewSchema builds a schema from columns. Duplicate names (case-insensitive)
// are an error.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, index: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("rowset: duplicate column %q", c.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error. It exists for schema
// literals whose column lists are fixed at compile time: the only failure
// mode is a duplicate column name in the literal itself, which is a
// programming error no caller can meaningfully handle.
//
//dmlint:allow nopanic — schema literals are compile-time-fixed; a duplicate column name is a programming error, not runtime input.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Lookup returns the ordinal of the named column, case-insensitively.
// It also accepts qualified names ("t.Age" matches column "Age", and matches
// a column literally named "t.Age" first).
func (s *Schema) Lookup(name string) (int, bool) {
	if i, ok := s.index[strings.ToLower(name)]; ok {
		return i, true
	}
	if dot := strings.LastIndex(name, "."); dot >= 0 {
		if i, ok := s.index[strings.ToLower(name[dot+1:])]; ok {
			return i, true
		}
	}
	return 0, false
}

// Column returns the column at ordinal i.
func (s *Schema) Column(i int) Column { return s.Columns[i] }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Equal reports structural equality of two schemas (names case-insensitive,
// types exact, nested schemas recursively).
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i, c := range s.Columns {
		oc := o.Columns[i]
		if !strings.EqualFold(c.Name, oc.Name) || c.Type != oc.Type {
			return false
		}
		if c.Type == TypeTable {
			if (c.Nested == nil) != (oc.Nested == nil) {
				return false
			}
			if c.Nested != nil && !c.Nested.Equal(oc.Nested) {
				return false
			}
		}
	}
	return true
}

// Project returns a new schema consisting of the named columns, with their
// ordinals in the source schema. Unknown names are an error.
func (s *Schema) Project(names []string) (*Schema, []int, error) {
	cols := make([]Column, 0, len(names))
	ords := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := s.Lookup(n)
		if !ok {
			return nil, nil, fmt.Errorf("rowset: unknown column %q", n)
		}
		cols = append(cols, s.Columns[i])
		ords = append(ords, i)
	}
	out, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return out, ords, nil
}

// String renders the schema as a parenthesized column list.
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
