package rowset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// Binary wire/storage format for rowsets. Used by the storage engine for
// table persistence and by the client/server protocol. The format is
// self-describing and handles nested-table values recursively:
//
//	rowset  := schema rowcount:uvarint row*
//	schema  := ncols:uvarint (name:str type:byte [schema if TABLE])*
//	row     := value*            (one per column, in schema order)
//	value   := tag:byte payload  (tag = Type; NULL has no payload)
//	str     := len:uvarint bytes
//
// Integers are varint-encoded; doubles are fixed 8-byte little-endian.

const codecVersion = 1

// Encode writes the rowset to w in the binary format.
func (rs *Rowset) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	if err := encodeSchema(bw, rs.schema); err != nil {
		return err
	}
	writeUvarint(bw, uint64(rs.Len()))
	for _, r := range rs.rows {
		for _, v := range r {
			if err := encodeValue(bw, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a rowset in the binary format.
func Decode(r io.Reader) (*Rowset, error) {
	br := bufio.NewReader(r)
	return decode(br)
}

// DecodeFrom reads a rowset from an existing buffered reader, consuming
// exactly one encoded rowset. Stream protocols (the dmclient/dmserver wire
// format) use it to read several rowsets from one connection without losing
// buffered bytes between messages.
func DecodeFrom(br *bufio.Reader) (*Rowset, error) {
	return decode(br)
}

func decode(br *bufio.Reader) (*Rowset, error) {
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("rowset: decode: %w", err)
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("rowset: decode: unsupported version %d", ver)
	}
	schema, err := decodeSchema(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rowset: decode row count: %w", err)
	}
	rs := New(schema)
	rs.rows = make([]Row, 0, n)
	for i := uint64(0); i < n; i++ {
		row := make(Row, schema.Len())
		for j := range row {
			v, err := decodeValue(br)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		rs.rows = append(rs.rows, row)
	}
	return rs, nil
}

func encodeSchema(w *bufio.Writer, s *Schema) error {
	writeUvarint(w, uint64(s.Len()))
	for _, c := range s.Columns {
		writeString(w, c.Name)
		if err := w.WriteByte(byte(c.Type)); err != nil {
			return err
		}
		if c.Type == TypeTable {
			nested := c.Nested
			if nested == nil {
				nested = MustSchema()
			}
			if err := encodeSchema(w, nested); err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeSchema(br *bufio.Reader) (*Schema, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rowset: decode schema: %w", err)
	}
	cols := make([]Column, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		col := Column{Name: name, Type: Type(tb)}
		if col.Type == TypeTable {
			nested, err := decodeSchema(br)
			if err != nil {
				return nil, err
			}
			col.Nested = nested
		}
		cols = append(cols, col)
	}
	return NewSchema(cols...)
}

func encodeValue(w *bufio.Writer, v Value) error {
	switch x := v.(type) {
	case nil:
		return w.WriteByte(byte(TypeNull))
	case int64:
		if err := w.WriteByte(byte(TypeLong)); err != nil {
			return err
		}
		writeVarint(w, x)
	case float64:
		if err := w.WriteByte(byte(TypeDouble)); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		_, err := w.Write(buf[:])
		return err
	case string:
		if err := w.WriteByte(byte(TypeText)); err != nil {
			return err
		}
		writeString(w, x)
	case bool:
		if err := w.WriteByte(byte(TypeBool)); err != nil {
			return err
		}
		b := byte(0)
		if x {
			b = 1
		}
		return w.WriteByte(b)
	case time.Time:
		if err := w.WriteByte(byte(TypeDate)); err != nil {
			return err
		}
		writeVarint(w, x.UnixNano())
	case *Rowset:
		if err := w.WriteByte(byte(TypeTable)); err != nil {
			return err
		}
		if err := w.WriteByte(codecVersion); err != nil {
			return err
		}
		if err := encodeSchema(w, x.schema); err != nil {
			return err
		}
		writeUvarint(w, uint64(x.Len()))
		for _, r := range x.rows {
			for _, nv := range r {
				if err := encodeValue(w, nv); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("rowset: encode: unsupported value type %T", v)
	}
	return nil
}

func decodeValue(br *bufio.Reader) (Value, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("rowset: decode value: %w", err)
	}
	switch Type(tag) {
	case TypeNull:
		return nil, nil
	case TypeLong:
		n, err := binary.ReadVarint(br)
		return n, err
	case TypeDouble:
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	case TypeText:
		return readString(br)
	case TypeBool:
		b, err := br.ReadByte()
		return b != 0, err
	case TypeDate:
		n, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		return time.Unix(0, n).UTC(), nil
	case TypeTable:
		return decode(br)
	}
	return nil, fmt.Errorf("rowset: decode: unknown value tag %d", tag)
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // bufio.Writer errors surface at Flush
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s) //nolint:errcheck
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("rowset: decode: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
