package rowset

// Batch-at-a-time cursors. The Volcano Cursor contract pays an interface
// call per row per operator; BatchCursor amortizes that over up to
// DefaultBatchSize rows, and a selection vector lets filters drop rows
// without copying the survivors into a fresh slice.
//
// Ownership rule (the "Batch ownership rule" dmlint's batchown analyzer
// enforces): a Batch returned by NextBatch is OWNED BY THE PRODUCER. Its
// Rows and Sel slices may be reused by the very next NextBatch call, so a
// consumer must fully process (or copy out of) a batch before pulling the
// next one, and must never store a Batch — or its Rows/Sel slices — into a
// field, append it to a slice that outlives the pull loop, or hand it to
// another goroutine. The individual Row values inside a batch are NOT
// covered by the rule: every producer in this module yields immutable rows
// that remain valid indefinitely (the same guarantee Cursor documents), so
// appending b.Row(i) to a result slice is fine; appending b.Rows is not.

// DefaultBatchSize is the row capacity batch producers use: large enough to
// amortize per-batch overhead to noise, small enough that a batch of rows
// stays cache-resident.
const DefaultBatchSize = 1024

// Batch is a producer-owned view of up to DefaultBatchSize rows. When Sel is
// non-nil it is a selection vector: only Rows[Sel[0]], Rows[Sel[1]], ... are
// live, in that order. When Sel is nil every row in Rows is live. The zero
// Batch (Rows == nil) marks end of stream; producers never yield a non-nil
// empty batch.
type Batch struct {
	Rows []Row
	Sel  []int
}

// Len returns the number of live rows in the batch.
func (b Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Rows)
}

// Row returns the i-th live row (selection-vector aware).
func (b Batch) Row(i int) Row {
	if b.Sel != nil {
		return b.Rows[b.Sel[i]]
	}
	return b.Rows[i]
}

// Empty reports end of stream.
func (b Batch) Empty() bool { return b.Rows == nil }

// Slice returns the live-row window [lo, hi) of the batch as a new view
// sharing the same backing slices (no copies). Cancellation chunking uses it
// to re-poll between sub-batches.
func (b Batch) Slice(lo, hi int) Batch {
	if b.Sel != nil {
		return Batch{Rows: b.Rows, Sel: b.Sel[lo:hi]}
	}
	return Batch{Rows: b.Rows[lo:hi]}
}

// BatchCursor is the batch-at-a-time counterpart of Cursor. NextBatch
// returns the next batch of live rows, or an empty Batch at end of stream.
// Close follows the Cursor contract (idempotent, safe after exhaustion).
// See the package comment above for the batch ownership rule.
type BatchCursor interface {
	NextBatch() (Batch, error)
	Schema() *Schema
	Close() error
}

// BatchCursorOf adapts a Cursor into a BatchCursor. Cursors that natively
// produce batches (table scans, slice cursors, the engine's vectorized
// operators) pass through unchanged; anything else is wrapped in a batcher
// that assembles reused DefaultBatchSize batches from row-at-a-time pulls.
func BatchCursorOf(c Cursor) BatchCursor {
	if bc, ok := c.(BatchCursor); ok {
		return bc
	}
	return &rowBatcher{src: c}
}

// rowBatcher assembles batches from a row-at-a-time source. The batch buffer
// is reused across NextBatch calls, honoring the producer-owned contract.
type rowBatcher struct {
	src Cursor
	buf []Row
}

func (rb *rowBatcher) NextBatch() (Batch, error) {
	if rb.buf == nil {
		rb.buf = make([]Row, 0, DefaultBatchSize)
	}
	rb.buf = rb.buf[:0]
	for len(rb.buf) < cap(rb.buf) {
		r, err := rb.src.Next()
		if err != nil {
			return Batch{}, err
		}
		if r == nil {
			break
		}
		rb.buf = append(rb.buf, r)
	}
	if len(rb.buf) == 0 {
		return Batch{}, nil
	}
	return Batch{Rows: rb.buf}, nil
}

func (rb *rowBatcher) Schema() *Schema { return rb.src.Schema() }
func (rb *rowBatcher) Close() error    { return rb.src.Close() }

// RowCursor adapts a BatchCursor into a row-at-a-time Cursor. Hybrid
// producers that already implement Cursor pass through unchanged. A consumer
// must drive a cursor through one interface only — interleaving Next and
// NextBatch pulls on the same cursor is undefined.
func RowCursor(bc BatchCursor) Cursor {
	if c, ok := bc.(Cursor); ok {
		return c
	}
	return &batchRowCursor{src: bc}
}

type batchRowCursor struct {
	src BatchCursor
	cur Batch
	i   int
}

func (c *batchRowCursor) Next() (Row, error) {
	for c.i >= c.cur.Len() {
		b, err := c.src.NextBatch()
		if err != nil {
			return nil, err
		}
		if b.Empty() {
			return nil, nil
		}
		c.cur, c.i = b, 0
	}
	r := c.cur.Row(c.i)
	c.i++
	return r, nil
}

func (c *batchRowCursor) Schema() *Schema { return c.src.Schema() }
func (c *batchRowCursor) Close() error    { return c.src.Close() }

// NextBatch makes the materialized-rowset cursor a native batch producer:
// each batch is a zero-copy subslice of the rowset's backing rows.
func (it *sliceIter) NextBatch() (Batch, error) {
	n := it.rs.Len()
	if it.i >= n {
		return Batch{}, nil
	}
	hi := it.i + DefaultBatchSize
	if hi > n {
		hi = n
	}
	b := Batch{Rows: it.rs.rows[it.i:hi]}
	it.i = hi
	return b, nil
}
