package rowset

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTypeOf(t *testing.T) {
	cases := []struct {
		v    Value
		want Type
	}{
		{nil, TypeNull},
		{int64(3), TypeLong},
		{3.5, TypeDouble},
		{"x", TypeText},
		{true, TypeBool},
		{time.Unix(0, 0), TypeDate},
		{New(MustSchema()), TypeTable},
	}
	for _, c := range cases {
		if got := TypeOf(c.v); got != c.want {
			t.Errorf("TypeOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"long": TypeLong, "LONG": TypeLong, "Integer": TypeLong,
		"double": TypeDouble, "FLOAT": TypeDouble,
		"text": TypeText, "VARCHAR": TypeText,
		"bool": TypeBool, "DATE": TypeDate, "table": TypeTable,
	}
	for s, want := range cases {
		got, ok := ParseType(s)
		if !ok || got != want {
			t.Errorf("ParseType(%q) = %v,%v want %v", s, got, ok, want)
		}
	}
	if _, ok := ParseType("blob"); ok {
		t.Error("ParseType(blob) should fail")
	}
}

func TestNormalize(t *testing.T) {
	if v := Normalize(int(7)); v != int64(7) {
		t.Errorf("Normalize(int) = %#v", v)
	}
	if v := Normalize(float32(1.5)); v != float64(1.5) {
		t.Errorf("Normalize(float32) = %#v", v)
	}
	if v := Normalize(uint16(9)); v != int64(9) {
		t.Errorf("Normalize(uint16) = %#v", v)
	}
	if v := Normalize([]byte("ab")); v != "ab" {
		t.Errorf("Normalize([]byte) = %#v", v)
	}
	if v := Normalize("s"); v != "s" {
		t.Errorf("Normalize(string) = %#v", v)
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		v    Value
		t    Type
		want Value
	}{
		{int64(3), TypeDouble, float64(3)},
		{3.7, TypeLong, int64(3)},
		{"42", TypeLong, int64(42)},
		{"42.5", TypeLong, int64(42)},
		{"3.5", TypeDouble, 3.5},
		{true, TypeLong, int64(1)},
		{false, TypeDouble, float64(0)},
		{int64(0), TypeBool, false},
		{"yes", TypeBool, true},
		{"no", TypeBool, false},
		{int64(5), TypeText, "5"},
		{nil, TypeLong, nil},
	}
	for _, c := range cases {
		got, err := Coerce(c.v, c.t)
		if err != nil {
			t.Errorf("Coerce(%v,%v): %v", c.v, c.t, err)
			continue
		}
		if got != c.want {
			t.Errorf("Coerce(%v,%v) = %#v want %#v", c.v, c.t, got, c.want)
		}
	}
	if _, err := Coerce("abc", TypeLong); err == nil {
		t.Error("Coerce(abc,LONG) should fail")
	}
	if _, err := Coerce("maybe", TypeBool); err == nil {
		t.Error("Coerce(maybe,BOOL) should fail")
	}
}

func TestCoerceDate(t *testing.T) {
	got, err := Coerce("2021-03-05", TypeDate)
	if err != nil {
		t.Fatal(err)
	}
	ts := got.(time.Time)
	if ts.Year() != 2021 || ts.Month() != 3 || ts.Day() != 5 {
		t.Errorf("Coerce date = %v", ts)
	}
	if _, err := Coerce("not a date", TypeDate); err == nil {
		t.Error("bad date should fail")
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(nil, int64(0)) >= 0 {
		t.Error("NULL must sort before values")
	}
	if Compare(int64(1), 1.0) != 0 {
		t.Error("LONG 1 must equal DOUBLE 1.0")
	}
	if Compare(int64(1), 2.5) >= 0 {
		t.Error("1 < 2.5")
	}
	if Compare("a", "b") >= 0 {
		t.Error("a < b")
	}
	if Compare("b", "a") <= 0 {
		t.Error("b > a")
	}
	if Compare(nil, nil) != 0 {
		t.Error("NULL == NULL for ordering")
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	h := func(a, b string) bool {
		c1, c2 := Compare(a, b), Compare(b, a)
		return (c1 < 0) == (c2 > 0) && (c1 == 0) == (c2 == 0)
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinguishesValues(t *testing.T) {
	f := func(a, b int64) bool {
		return (Key(a) == Key(b)) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// LONG/DOUBLE of equal magnitude share a key.
	if Key(int64(3)) != Key(3.0) {
		t.Error("Key(3) != Key(3.0)")
	}
	if Key("3") == Key(int64(3)) {
		t.Error("text and number must not collide")
	}
	if Key(nil) == Key("") {
		t.Error("NULL and empty string must not collide")
	}
	if Key(true) == Key(int64(1)) {
		t.Error("bool and number keys must not collide")
	}
}

func TestToFloat(t *testing.T) {
	if f, ok := ToFloat(int64(4)); !ok || f != 4 {
		t.Error("ToFloat(4)")
	}
	if f, ok := ToFloat(true); !ok || f != 1 {
		t.Error("ToFloat(true)")
	}
	if _, ok := ToFloat("x"); ok {
		t.Error("ToFloat(text) must fail")
	}
	if _, ok := ToFloat(nil); ok {
		t.Error("ToFloat(nil) must fail")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "NULL"},
		{int64(12), "12"},
		{3.0, "3.0"},
		{2.5, "2.5"},
		{"hi", "hi"},
		{true, "true"},
		{false, "false"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%#v) = %q want %q", c.v, got, c.want)
		}
	}
}
